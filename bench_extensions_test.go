package treesim

// Benchmarks for the extension features beyond the paper's core:
// persistence, the DTD feasibility filter (footnote 2), sliding-window
// estimation, pattern containment/minimization, subscription
// aggregation and the broker-tree overlay.

import (
	"bytes"
	"testing"

	"treesim/internal/aggregate"
	"treesim/internal/dtd"
	"treesim/internal/matchset"
	"treesim/internal/pattern"
	"treesim/internal/routing"
	"treesim/internal/selectivity"
	"treesim/internal/synopsis"
	"treesim/internal/xmltree"
)

// BenchmarkEncodeDecode measures synopsis persistence round trips.
func BenchmarkEncodeDecode(b *testing.B) {
	w, _ := benchWorkloads()
	s := buildBenchSynopsis(w, matchset.KindHashes, 200)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(buf.Len()), "bytes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := s.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := synopsis.Decode(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_DTDFilter measures the negative-query improvement
// of the footnote-2 DTD feasibility filter under the error-prone
// Counters representation.
func BenchmarkAblation_DTDFilter(b *testing.B) {
	w, _ := benchWorkloads()
	d := dtd.NITFLike()
	for _, withDTD := range []bool{false, true} {
		name := "without"
		if withDTD {
			name = "with"
		}
		b.Run(name, func(b *testing.B) {
			s := buildBenchSynopsis(w, matchset.KindCounters, 0)
			est := selectivity.New(s)
			// Esqr over negatives with/without the filter.
			sum := 0.0
			for _, p := range w.Negative {
				v := est.P(p)
				if withDTD && !dtd.Feasible(d, p) {
					v = 0
				}
				sum += v * v
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := w.Negative[i%len(w.Negative)]
				if withDTD && !dtd.Feasible(d, p) {
					continue
				}
				_ = est.P(p)
			}
			b.ReportMetric(sum/float64(len(w.Negative)), "meanSqErr")
		})
	}
}

// BenchmarkWindowObserve measures sliding-window maintenance (insert +
// expiry) throughput.
func BenchmarkWindowObserve(b *testing.B) {
	w, _ := benchWorkloads()
	we := NewWindow(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		we.ObserveTree(w.Docs[i%len(w.Docs)])
	}
}

// BenchmarkContainment measures the homomorphism containment test over
// workload pattern pairs.
func BenchmarkContainment(b *testing.B) {
	w, _ := benchWorkloads()
	pairs := w.RandomPairs(256, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := pairs[i%len(pairs)]
		_ = pattern.Contains(w.Positive[pr.I], w.Positive[pr.J])
	}
}

// BenchmarkMinimize measures pattern minimization.
func BenchmarkMinimize(b *testing.B) {
	w, _ := benchWorkloads()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Positive[i%len(w.Positive)].Minimize()
	}
}

// BenchmarkAggregate measures subscription aggregation (24 → 6) with
// estimated loss attached.
func BenchmarkAggregate(b *testing.B) {
	w, _ := benchWorkloads()
	s := buildBenchSynopsis(w, matchset.KindHashes, 200)
	est := selectivity.New(s)
	subs := w.Positive[:16]
	var loss float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := aggregate.Aggregate(subs, 6, est)
		loss = res.EstimatedLoss
	}
	b.ReportMetric(loss, "estLoss")
}

// BenchmarkBrokerTree measures dissemination through the overlay with
// exact vs aggregated tables, reporting spurious link traffic.
func BenchmarkBrokerTree(b *testing.B) {
	w, _ := benchWorkloads()
	s := buildBenchSynopsis(w, matchset.KindHashes, 200)
	est := selectivity.New(s)
	subs := w.Positive[:32]
	docs := w.Docs[:64]
	for _, tc := range []struct {
		name  string
		limit int
	}{{"exact", 0}, {"aggregated", 4}} {
		b.Run(tc.name, func(b *testing.B) {
			bt, err := routing.NewBrokerTree(subs, routing.BrokerTreeOptions{
				Fanout: 3, Depth: 3, TableLimit: tc.limit, Estimator: est,
			})
			if err != nil {
				b.Fatal(err)
			}
			var spurious int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := bt.Run(docs)
				spurious = res.SpuriousLinks
			}
			b.ReportMetric(float64(bt.TableSize()), "tableEntries")
			b.ReportMetric(float64(spurious), "spuriousLinks")
		})
	}
}

// BenchmarkFeasible measures the DTD feasibility check itself.
func BenchmarkFeasible(b *testing.B) {
	w, _ := benchWorkloads()
	d := dtd.NITFLike()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dtd.Feasible(d, w.Positive[i%len(w.Positive)])
	}
}

// BenchmarkXMLParse measures the event-based XML parser on serialized
// workload documents.
func BenchmarkXMLParse(b *testing.B) {
	w, _ := benchWorkloads()
	var blobs []string
	for _, doc := range w.Docs[:32] {
		s, err := xmltree.XMLString(doc, false)
		if err != nil {
			b.Fatal(err)
		}
		blobs = append(blobs, s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xmltree.ParseString(blobs[i%len(blobs)], xmltree.ParseOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
