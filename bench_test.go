package treesim

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Section 5), plus ablations for the design choices called
// out in DESIGN.md and micro-benchmarks for the hot paths.
//
// Accuracy figures are attached to the benchmark output via
// b.ReportMetric (Erel% / Esqr), so `go test -bench` regenerates both
// the performance and the quality side of each experiment at benchmark
// scale; cmd/experiments produces the full tables.

import (
	"sync"
	"testing"

	"treesim/internal/core"
	"treesim/internal/dtd"
	"treesim/internal/experiment"
	"treesim/internal/matching"
	"treesim/internal/matchset"
	"treesim/internal/metrics"
	"treesim/internal/pattern"
	"treesim/internal/selectivity"
	"treesim/internal/synopsis"
	"treesim/internal/xmlgen"
	"treesim/internal/xmltree"
)

// Shared fixtures, built once: a bench-scale NITF-like workload and an
// xCBL-like one.
var (
	benchOnce sync.Once
	benchNITF *experiment.Workload
	benchXCBL *experiment.Workload
)

func benchWorkloads() (*experiment.Workload, *experiment.Workload) {
	benchOnce.Do(func() {
		cfg := experiment.WorkloadConfig{Docs: 500, Positive: 100, Negative: 100, Seed: 7}
		benchNITF = experiment.BuildWorkload(dtd.NITFLike(), cfg)
		benchXCBL = experiment.BuildWorkload(dtd.XCBLLike(), cfg)
	})
	return benchNITF, benchXCBL
}

func buildBenchSynopsis(w *experiment.Workload, kind matchset.Kind, size int) *synopsis.Synopsis {
	s := synopsis.New(synopsis.Options{Kind: kind, HashCapacity: size, SetCapacity: size, Seed: 5})
	for _, d := range w.Docs {
		s.Insert(d)
	}
	return s
}

// BenchmarkTable1_WorkloadBuild regenerates the experimental setup of
// Table 1: corpus generation, query generation and SP/SN classification.
func BenchmarkTable1_WorkloadBuild(b *testing.B) {
	cfg := experiment.WorkloadConfig{Docs: 150, Positive: 30, Negative: 30, Seed: 11}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := experiment.BuildWorkload(dtd.NITFLike(), cfg)
		if len(w.Positive) != 30 {
			b.Fatal("bad workload")
		}
	}
}

// BenchmarkFigure4_SelectivityPositive measures positive-query
// selectivity estimation and reports the Figure 4 error per
// representation.
func BenchmarkFigure4_SelectivityPositive(b *testing.B) {
	w, _ := benchWorkloads()
	for _, kind := range experiment.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			s := buildBenchSynopsis(w, kind, 500)
			est := selectivity.New(s)
			erel := experiment.ErelPositive(est, w) // also warms caches
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := w.Positive[i%len(w.Positive)]
				_ = est.P(p)
			}
			b.ReportMetric(100*erel, "Erel%")
		})
	}
}

// BenchmarkFigure5_SelectivityNegative measures negative-query
// estimation and reports the Figure 5 RMSE.
func BenchmarkFigure5_SelectivityNegative(b *testing.B) {
	w, _ := benchWorkloads()
	for _, kind := range experiment.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			s := buildBenchSynopsis(w, kind, 500)
			est := selectivity.New(s)
			esqr := experiment.EsqrNegative(est, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := w.Negative[i%len(w.Negative)]
				_ = est.P(p)
			}
			b.ReportMetric(esqr, "Esqr")
		})
	}
}

// BenchmarkFigure6_ErrorVsSynopsisSize reports error per unit of
// synopsis size: Sets vs Hashes at the same nominal sample bound, with
// |HS| attached (Figure 6's fair-budget comparison).
func BenchmarkFigure6_ErrorVsSynopsisSize(b *testing.B) {
	_, w := benchWorkloads() // the paper plots Figure 6 for xCBL
	for _, kind := range []matchset.Kind{matchset.KindSets, matchset.KindHashes} {
		b.Run(kind.String(), func(b *testing.B) {
			s := buildBenchSynopsis(w, kind, 250)
			est := selectivity.New(s)
			erel := experiment.ErelPositive(est, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = est.P(w.Positive[i%len(w.Positive)])
			}
			b.ReportMetric(100*erel, "Erel%")
			b.ReportMetric(float64(s.Size()), "|HS|")
		})
	}
}

func benchMetric(b *testing.B, m metrics.Metric) {
	w, _ := benchWorkloads()
	pairs := w.RandomPairs(200, 13)
	for _, kind := range experiment.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			s := buildBenchSynopsis(w, kind, 500)
			est := selectivity.New(s)
			erel, _ := experiment.MetricErel(m, est, w, pairs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pr := pairs[i%len(pairs)]
				_ = metrics.Similarity(est, m, w.Positive[pr.I], w.Positive[pr.J])
			}
			b.ReportMetric(100*erel, "Erel%")
		})
	}
}

// BenchmarkFigure7_MetricM1 measures similarity estimation under
// M1 = P(p|q) and reports the Figure 7 error.
func BenchmarkFigure7_MetricM1(b *testing.B) { benchMetric(b, metrics.M1) }

// BenchmarkFigure8_MetricM2 measures similarity estimation under
// M2 = (P(p|q)+P(q|p))/2 and reports the Figure 8 error.
func BenchmarkFigure8_MetricM2(b *testing.B) { benchMetric(b, metrics.M2) }

// BenchmarkFigure9_MetricM3 measures similarity estimation under
// M3 = P(p∧q)/P(p∨q) and reports the Figure 9 error.
func BenchmarkFigure9_MetricM3(b *testing.B) { benchMetric(b, metrics.M3) }

// BenchmarkFigure10_Compression measures the compression pipeline at
// α = 0.5 and reports the post-compression error (Figure 10).
func BenchmarkFigure10_Compression(b *testing.B) {
	w, _ := benchWorkloads()
	var erel float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := buildBenchSynopsis(w, matchset.KindHashes, 500)
		s.Compress(synopsis.CompressOptions{TargetRatio: 0.5})
		if i == 0 {
			erel = experiment.ErelPositive(selectivity.New(s), w)
		}
	}
	b.ReportMetric(100*erel, "Erel%")
}

// --- Ablations -----------------------------------------------------

// BenchmarkAblation_RootCardDenominator compares Algorithm 2's estimated
// |S(rs)| denominator with the exact stream length (DESIGN.md ablation).
func BenchmarkAblation_RootCardDenominator(b *testing.B) {
	w, _ := benchWorkloads()
	for _, exact := range []bool{false, true} {
		name := "estimated"
		if exact {
			name = "exact"
		}
		b.Run(name, func(b *testing.B) {
			s := synopsis.New(synopsis.Options{
				Kind: matchset.KindHashes, HashCapacity: 200, Seed: 5, ExactRootCard: exact,
			})
			for _, d := range w.Docs {
				s.Insert(d)
			}
			est := selectivity.New(s)
			erel := experiment.ErelPositive(est, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = est.P(w.Positive[i%len(w.Positive)])
			}
			b.ReportMetric(100*erel, "Erel%")
		})
	}
}

// BenchmarkAblation_FoldThreshold compares compression quality under
// conservative vs aggressive lossy-fold thresholds at α = 0.5.
func BenchmarkAblation_FoldThreshold(b *testing.B) {
	w, _ := benchWorkloads()
	for _, tc := range []struct {
		name string
		th   float64
	}{{"fold@0.5", 0.5}, {"fold@0.9", 0.9}} {
		b.Run(tc.name, func(b *testing.B) {
			var erel float64
			for i := 0; i < b.N; i++ {
				s := buildBenchSynopsis(w, matchset.KindHashes, 500)
				s.Compress(synopsis.CompressOptions{TargetRatio: 0.5, FoldThreshold: tc.th})
				if i == 0 {
					erel = experiment.ErelPositive(selectivity.New(s), w)
				}
			}
			b.ReportMetric(100*erel, "Erel%")
		})
	}
}

// BenchmarkAblation_SkeletonSemanticsGap quantifies the residual error
// floor of the synopsis's skeleton semantics: unbounded Sets (an exact
// estimator under skeleton semantics) vs document-level ground truth.
func BenchmarkAblation_SkeletonSemanticsGap(b *testing.B) {
	w, _ := benchWorkloads()
	s := buildBenchSynopsis(w, matchset.KindSets, 1<<20)
	est := selectivity.New(s)
	erel := experiment.ErelPositive(est, w)
	for i := 0; i < b.N; i++ {
		_ = est.P(w.Positive[i%len(w.Positive)])
	}
	b.ReportMetric(100*erel, "Erel%-floor")
}

// --- Micro-benchmarks on the hot paths ------------------------------

// BenchmarkSynopsisInsert measures streaming maintenance throughput.
func BenchmarkSynopsisInsert(b *testing.B) {
	w, _ := benchWorkloads()
	for _, kind := range experiment.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			s := synopsis.New(synopsis.Options{Kind: kind, HashCapacity: 500, SetCapacity: 500, Seed: 3})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Insert(w.Docs[i%len(w.Docs)])
			}
		})
	}
}

// BenchmarkSkeleton measures skeleton-tree construction.
func BenchmarkSkeleton(b *testing.B) {
	w, _ := benchWorkloads()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = xmltree.Skeleton(w.Docs[i%len(w.Docs)])
	}
}

// BenchmarkExactMatch measures the formal matcher used for ground
// truth.
func BenchmarkExactMatch(b *testing.B) {
	w, _ := benchWorkloads()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = pattern.Matches(w.Docs[i%len(w.Docs)], w.Positive[i%len(w.Positive)])
	}
}

// BenchmarkFilterEngine measures the multi-subscription filtering
// engine of the routing substrate.
func BenchmarkFilterEngine(b *testing.B) {
	w, _ := benchWorkloads()
	eng := matching.NewEngine(w.Positive)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.Match(w.Docs[i%len(w.Docs)])
	}
}

// BenchmarkDocumentGeneration measures the corpus generator.
func BenchmarkDocumentGeneration(b *testing.B) {
	d := dtd.NITFLike()
	opts := xmlgen.Calibrate(d, 100, 3)
	g := xmlgen.New(d, opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Generate()
	}
}

// BenchmarkSimilarityMatrix measures pairwise similarity computation
// over a subscription set (the clustering front-end): the naive
// per-pair merged-pattern evaluation vs. the factorized matrix
// (SEL(p∧q) = SEL(p) ∩ SEL(q), one evaluation per subscription).
func BenchmarkSimilarityMatrix(b *testing.B) {
	w, _ := benchWorkloads()
	subs := w.Positive[:20]
	b.Run("perPair", func(b *testing.B) {
		s := buildBenchSynopsis(w, matchset.KindHashes, 200)
		est := selectivity.New(s)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < len(subs); j++ {
				for k := j + 1; k < len(subs); k++ {
					_ = metrics.Similarity(est, metrics.M3, subs[j], subs[k])
				}
			}
		}
	})
	b.Run("factorized", func(b *testing.B) {
		est := core.NewEstimator(core.Config{Representation: matchset.KindHashes, HashCapacity: 200, Seed: 5})
		for _, d := range w.Docs {
			est.ObserveTree(d)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = est.SimilarityMatrix(metrics.M3, subs)
		}
	})
}

// BenchmarkParallelClients measures query throughput under concurrent
// load: many client goroutines issuing selectivity queries against one
// estimator. Before the RWMutex read path every query serialized on a
// single mutex; now they scale with GOMAXPROCS. The serial sub-benchmark
// is the single-client baseline for computing the speedup.
func BenchmarkParallelClients(b *testing.B) {
	w, _ := benchWorkloads()
	est := core.NewEstimator(core.Config{Representation: matchset.KindHashes, HashCapacity: 200, Seed: 5})
	for _, d := range w.Docs {
		est.ObserveTree(d)
	}
	_ = est.Selectivity(w.Positive[0]) // materialize the Full cache once
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = est.Selectivity(w.Positive[i%len(w.Positive)])
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				_ = est.Selectivity(w.Positive[i%len(w.Positive)])
				i++
			}
		})
	})
}
