// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON benchmark report, seeding the repository's
// performance trajectory (BENCH_core.json, BENCH_broker.json). Typical
// use:
//
//	go test -run='^$' -bench='Figure4|Figure5|SimilarityMatrix|ParallelClients' \
//	    -benchmem . | go run ./cmd/benchjson -o BENCH_core.json
//
// The broker snapshot merges the in-process engine benchmarks with a
// live daemon run (cmd/treesim-bench emits Benchmark-style summary
// lines for exactly this purpose):
//
//	go test -run='^$' -bench='BenchmarkBroker' -benchmem ./internal/broker \
//	    > broker.txt
//	go run ./cmd/treesim-bench -subs 1000 -publish 10000 > daemon.txt
//	go run ./cmd/benchjson -o BENCH_broker.json broker.txt daemon.txt
//
// With file arguments it reads and merges those files in order instead
// of stdin (flags must precede the file list — Go's flag parsing stops
// at the first positional argument). Unknown lines are ignored, so raw
// `go test` streams can be piped directly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line in the report.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		// Multiple files merge into one report (e.g. in-process broker
		// benchmarks + a treesim-bench daemon run).
		readers := make([]io.Reader, 0, flag.NArg())
		for _, name := range flag.Args() {
			f, err := os.Open(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}

	rep, err := Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// nameCPUs extracts the trailing -N GOMAXPROCS suffix of a benchmark
// name (1 when absent — `go test` omits the suffix at GOMAXPROCS 1).
func nameCPUs(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n < 1 {
		return 1
	}
	return n
}

// Parse reads `go test -bench` output and extracts benchmark results.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters}
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				v := val
				res.BytesPerOp = &v
			case "allocs/op":
				v := val
				res.AllocsPerOp = &v
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = val
			}
		}
		// `go test` suffixes benchmark names with -GOMAXPROCS when it is
		// not 1 (e.g. BenchmarkBrokerPublish-4). Surface that as a
		// per-result "cpus" extra so per-cpu snapshot entries are
		// self-describing; an explicit "N cpus" pair (emitted by
		// treesim-bench for the daemon's cpu count) wins.
		if _, ok := res.Extra["cpus"]; !ok {
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra["cpus"] = float64(nameCPUs(res.Name))
		}
		rep.Results = append(rep.Results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return rep, nil
}
