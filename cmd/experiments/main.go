// Command experiments regenerates the paper's evaluation tables and
// figures (Chand, Felber, Garofalakis — ICDE'07, Section 5).
//
// Each figure is reproduced as a text table with the same series the
// paper plots. Absolute numbers differ (synthetic DTD stand-ins, scaled
// workloads) but the qualitative shapes — which representation wins, how
// error decays with sample size, how compression trades accuracy — are
// the reproduction targets; see EXPERIMENTS.md.
//
// Usage:
//
//	experiments [--dtd nitf|xcbl|both] [--figure all|workload|4|5|6|7|8|9|10]
//	            [--docs N] [--pos N] [--neg N] [--pairs N]
//	            [--sizes 50,100,...] [--alphas 1.0,0.9,...]
//	            [--hash-size N] [--seed N] [--full]
//
// --full selects the paper's scale (10000 docs, 1000+1000 queries, 5000
// pairs); the default scale finishes in minutes and preserves shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"treesim/internal/dtd"
	"treesim/internal/experiment"
)

func main() {
	var (
		dtdFlag  = flag.String("dtd", "both", "schema: nitf, xcbl or both")
		figure   = flag.String("figure", "all", "figure to regenerate: all, workload, 4, 5, 6, 7, 8, 9, 10")
		docs     = flag.Int("docs", 2000, "corpus size |D|")
		pos      = flag.Int("pos", 300, "positive query count |SP|")
		neg      = flag.Int("neg", 300, "negative query count |SN|")
		pairs    = flag.Int("pairs", 1000, "random pattern pairs for metric figures")
		sizes    = flag.String("sizes", csvInts(experiment.DefaultSizes), "hash/set size sweep")
		alphas   = flag.String("alphas", csvFloats(experiment.DefaultAlphas), "compression ratio sweep")
		hashSize = flag.Int("hash-size", 1000, "hash size for the compression figure")
		seed     = flag.Int64("seed", 1, "workload seed")
		full     = flag.Bool("full", false, "paper scale: 10000 docs, 1000+1000 queries, 5000 pairs")
		csvDir   = flag.String("csv", "", "also write figure data as CSV files into this directory")
	)
	flag.Parse()
	if *full {
		*docs, *pos, *neg, *pairs = 10000, 1000, 1000, 5000
	}

	sizeList, err := parseInts(*sizes)
	if err != nil {
		fatal("bad --sizes: %v", err)
	}
	alphaList, err := parseFloats(*alphas)
	if err != nil {
		fatal("bad --alphas: %v", err)
	}

	var schemas []*dtd.DTD
	switch *dtdFlag {
	case "nitf":
		schemas = []*dtd.DTD{dtd.NITFLike()}
	case "xcbl":
		schemas = []*dtd.DTD{dtd.XCBLLike()}
	case "both":
		schemas = []*dtd.DTD{dtd.NITFLike(), dtd.XCBLLike()}
	default:
		fatal("unknown --dtd %q", *dtdFlag)
	}

	for _, d := range schemas {
		cfg := experiment.WorkloadConfig{
			Docs: *docs, Positive: *pos, Negative: *neg, Seed: *seed,
		}
		fmt.Printf("== building workload for %s (docs=%d, SP=%d, SN=%d) ==\n",
			d.Name, *docs, *pos, *neg)
		w := experiment.BuildWorkload(d, cfg)
		st := w.Stats()
		if *figure == "all" || *figure == "workload" {
			fmt.Printf("# Table: workload characteristics (Section 5.1)\n%s\n\n", st)
		}
		writeCSV := func(name string, write func(f *os.File) error) {
			if *csvDir == "" {
				return
			}
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal("%v", err)
			}
			path := filepath.Join(*csvDir, d.Name+"-"+name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatal("%v", err)
			}
			if err := write(f); err != nil {
				fatal("write %s: %v", path, err)
			}
			if err := f.Close(); err != nil {
				fatal("%v", err)
			}
			fmt.Printf("(CSV written to %s)\n", path)
		}
		switch *figure {
		case "all":
			selPts := experiment.SelectivitySweep(w, sizeList, *seed)
			experiment.WriteSelectivityTable(os.Stdout, d.Name, selPts)
			writeCSV("fig456", func(f *os.File) error { return experiment.WriteSelectivityCSV(f, d.Name, selPts) })
			fmt.Println()
			metPts := experiment.MetricSweep(w, sizeList, *pairs, *seed)
			experiment.WriteMetricTable(os.Stdout, d.Name, metPts)
			writeCSV("fig789", func(f *os.File) error { return experiment.WriteMetricCSV(f, d.Name, metPts) })
			fmt.Println()
			cmpPts := experiment.CompressionSweep(w, alphaList, *hashSize, *seed)
			experiment.WriteCompressionTable(os.Stdout, d.Name, cmpPts)
			writeCSV("fig10", func(f *os.File) error { return experiment.WriteCompressionCSV(f, d.Name, cmpPts) })
			fmt.Println()
		case "4", "5", "6":
			pts := experiment.SelectivitySweep(w, sizeList, *seed)
			experiment.WriteSelectivityTable(os.Stdout, d.Name, pts)
			writeCSV("fig456", func(f *os.File) error { return experiment.WriteSelectivityCSV(f, d.Name, pts) })
			fmt.Println()
		case "7", "8", "9":
			pts := experiment.MetricSweep(w, sizeList, *pairs, *seed)
			experiment.WriteMetricTable(os.Stdout, d.Name, pts)
			writeCSV("fig789", func(f *os.File) error { return experiment.WriteMetricCSV(f, d.Name, pts) })
			fmt.Println()
		case "10":
			pts := experiment.CompressionSweep(w, alphaList, *hashSize, *seed)
			experiment.WriteCompressionTable(os.Stdout, d.Name, pts)
			writeCSV("fig10", func(f *os.File) error { return experiment.WriteCompressionCSV(f, d.Name, pts) })
			fmt.Println()
		case "workload":
			// already printed
		default:
			fatal("unknown --figure %q", *figure)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func csvInts(vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

func csvFloats(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
