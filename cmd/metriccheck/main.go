// Command metriccheck validates a Prometheus text exposition from
// stdin (or files): it fails on any line the strict parser rejects,
// on required metric families that are absent, and on families whose
// summed value falls below a threshold. CI pipes a daemon's /metrics
// through it so a scrape that silently stops parsing — or a counter
// that stops counting — breaks the build instead of the dashboard.
//
//	curl -s http://127.0.0.1:8690/metrics | metriccheck \
//	    -require treesim_broker_published_total,treesim_wal_appends_total \
//	    -min treesim_wal_replayed_records_total=1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"treesim/internal/telemetry"
)

// minFlag collects repeated -min name=value thresholds.
type minFlag map[string]float64

func (m minFlag) String() string { return fmt.Sprint(map[string]float64(m)) }

func (m minFlag) Set(s string) error {
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fmt.Errorf("want name=value, got %q", part)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("threshold %q: %v", part, err)
		}
		m[name] = v
	}
	return nil
}

func main() {
	var (
		require = flag.String("require", "", "comma-separated metric families that must be present")
		mins    = minFlag{}
		quiet   = flag.Bool("q", false, "suppress the summary line on success")
	)
	flag.Var(mins, "min", "name=value[,name=value...] minimum summed value per family (repeatable)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if args := flag.Args(); len(args) > 0 {
		readers := make([]io.Reader, 0, len(args))
		for _, a := range args {
			f, err := os.Open(a)
			if err != nil {
				fail("%v", err)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}

	samples, err := telemetry.ParseText(in)
	if err != nil {
		fail("exposition does not parse: %v", err)
	}
	if len(samples) == 0 {
		fail("exposition is empty")
	}
	sums := telemetry.SumByName(samples)

	bad := 0
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		if _, ok := sums[name]; !ok {
			fmt.Fprintf(os.Stderr, "metriccheck: required family %s absent\n", name)
			bad++
		}
	}
	for name, want := range mins {
		got, ok := sums[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "metriccheck: %s absent (threshold %g)\n", name, want)
			bad++
			continue
		}
		if got < want {
			fmt.Fprintf(os.Stderr, "metriccheck: %s = %g, want >= %g\n", name, got, want)
			bad++
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("metriccheck: %d samples across %d families ok\n", len(samples), len(telemetry.Names(samples)))
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "metriccheck: "+format+"\n", args...)
	os.Exit(1)
}
