// Command querygen generates tree-pattern subscription workloads from a
// DTD with the paper's parameters (h, p*, p//, pλ, θ).
//
// Usage:
//
//	querygen [--dtd nitf|xcbl|media|<file.dtd>] [--n N] [--seed N]
//	         [--height N] [--pwild P] [--pdesc P] [--pbranch P] [--theta T]
//	         [--corpus dir]
//
// With --corpus, patterns are classified against the XML files in the
// directory and printed with a +/- prefix (positive/negative).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"treesim/internal/corpus"
	"treesim/internal/dtd"
	"treesim/internal/pattern"
	"treesim/internal/querygen"
	"treesim/internal/xmltree"
)

func main() {
	var (
		dtdFlag = flag.String("dtd", "nitf", "schema: nitf, xcbl, media, or a .dtd file path")
		n       = flag.Int("n", 20, "number of distinct patterns")
		seed    = flag.Int64("seed", 1, "generator seed")
		height  = flag.Int("height", 10, "maximum pattern height h")
		pwild   = flag.Float64("pwild", 0.1, "wildcard probability p*")
		pdesc   = flag.Float64("pdesc", 0.1, "descendant probability p//")
		pbranch = flag.Float64("pbranch", 0.1, "branching probability pλ")
		theta   = flag.Float64("theta", 1, "Zipf skew θ for tag selection")
		corpus  = flag.String("corpus", "", "directory of XML files to classify against")
	)
	flag.Parse()

	d, err := loadDTD(*dtdFlag)
	if err != nil {
		fatal("%v", err)
	}
	opts := querygen.Options{
		MaxHeight:      *height,
		WildcardProb:   *pwild,
		DescendantProb: *pdesc,
		BranchProb:     *pbranch,
		Theta:          *theta,
		Seed:           *seed,
	}
	g := querygen.New(d, opts)
	patterns := g.GenerateDistinct(*n)

	var docs []*xmltree.Tree
	if *corpus != "" {
		docs, err = loadCorpus(*corpus)
		if err != nil {
			fatal("%v", err)
		}
	}
	for _, p := range patterns {
		if docs == nil {
			fmt.Println(p)
			continue
		}
		mark := "-"
		for _, doc := range docs {
			if pattern.Matches(doc, p) {
				mark = "+"
				break
			}
		}
		fmt.Printf("%s %s\n", mark, p)
	}
}

func loadDTD(spec string) (*dtd.DTD, error) {
	switch spec {
	case "nitf":
		return dtd.NITFLike(), nil
	case "xcbl":
		return dtd.XCBLLike(), nil
	case "media":
		return dtd.Media(), nil
	}
	data, err := os.ReadFile(spec)
	if err != nil {
		return nil, fmt.Errorf("load DTD: %w", err)
	}
	return dtd.Parse(filepath.Base(spec), "", string(data))
}

func loadCorpus(dir string) ([]*xmltree.Tree, error) {
	return corpus.LoadDir(dir, xmltree.ParseOptions{})
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "querygen: "+format+"\n", args...)
	os.Exit(1)
}
