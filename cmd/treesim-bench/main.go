// Command treesim-bench is a load generator for the treesimd broker
// daemon: it subscribes a population of generated tree patterns,
// publishes a stream of schema-driven XML documents with optional
// subscription churn, drains deliveries concurrently, and reports
// end-to-end throughput plus the daemon's own stats.
//
// The publish phase is separately sizable: -publishers N runs N
// concurrent publisher workers (aggregate pub/sec is reported), and
// -batch M ships M documents per request through the daemon's JSON
// batch endpoint. Benchmark lines carry the daemon's cpu and shard
// counts, so snapshots from differently-sized daemons stay
// distinguishable.
//
// With -metrics-snapshot the daemon's GET /metrics is scraped before
// and after the workload; the counter deltas are printed and attached
// to the publish benchmark line as extra benchjson pairs, so snapshots
// record what the daemon shed, evaluated, and journaled — not just
// what the client observed. The scrape is strict: unparseable
// exposition fails the run.
//
// The summary includes `go test -bench`-style lines, so the output can
// be piped through cmd/benchjson (optionally merged with the in-process
// broker benchmarks) into a BENCH_broker.json snapshot:
//
//	go run ./cmd/treesim-bench -addr 127.0.0.1:8690 -subs 1000 -publish 10000 \
//	    | tee bench.txt
//	go run ./cmd/benchjson -o BENCH_broker.json bench.txt
//
// With -ack the population subscribes at-least-once and the drain
// workers run the full acked-delivery protocol: each batch's cursor is
// committed through POST /ack, -ack-skip N stalls every Nth batch (the
// daemon's lease expiry must redeliver it — run the daemon with a short
// -ack-lease), and the summary reports acked throughput, redeliveries,
// and lease expiries as benchjson extras.
//
// It exits nonzero if nothing was delivered (used by CI as a smoke
// assertion), if stalled batches were never redelivered under -ack-skip,
// or if the daemon is unreachable.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"treesim"
	"treesim/internal/telemetry"
)

type client struct {
	base string
	mode string // delivery mode for subscribes ("" = daemon default)
	http *http.Client
}

// latencyTransport perturbs the workload: each request sleeps a seeded
// random duration in [0, max) before reaching the wire, smearing the
// perfectly synchronized request trains a loopback benchmark produces.
// Draws come from one locked rng so a given -seed yields the same
// delay sequence (scheduling still decides which worker gets which
// draw, so it is a reproducible distribution, not a fixed schedule).
type latencyTransport struct {
	base http.RoundTripper
	max  time.Duration
	mu   sync.Mutex
	rng  *rand.Rand
}

func (t *latencyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	d := time.Duration(t.rng.Int63n(int64(t.max)))
	t.mu.Unlock()
	time.Sleep(d)
	return t.base.RoundTrip(req)
}

func (c *client) subscribe(pattern string) (uint64, error) {
	body, _ := json.Marshal(map[string]string{"pattern": pattern, "mode": c.mode})
	resp, err := c.http.Post(c.base+"/subscribe", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("subscribe: %s", resp.Status)
	}
	var out struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.ID, nil
}

func (c *client) unsubscribe(id uint64) error {
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/subscribe/%d", c.base, id), nil)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("unsubscribe %d: %s", id, resp.Status)
	}
	return nil
}

func (c *client) publish(doc string) error {
	resp, err := c.http.Post(c.base+"/publish", "application/xml", strings.NewReader(doc))
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("publish: %s", resp.Status)
	}
	return nil
}

// publishBatch posts several documents as one JSON batch (the daemon's
// pipelined publish path) and returns how many failed to parse
// daemon-side.
func (c *client) publishBatch(docs []string) (errs int, err error) {
	body, _ := json.Marshal(map[string][]string{"docs": docs})
	resp, err := c.http.Post(c.base+"/publish", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("publish batch: %s", resp.Status)
	}
	var out struct {
		Errors int `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Errors, nil
}

// drainResult is the client's view of one GET /deliveries poll: batch
// size, daemon-side backlog, and (at-least-once) the ack cursor.
type drainResult struct {
	n           int
	pending     int
	cursor      uint64
	redelivered int
}

func (c *client) drain(id uint64, max int, wait time.Duration) (drainResult, error) {
	url := fmt.Sprintf("%s/deliveries/%d?max=%d&wait=%s", c.base, id, max, wait)
	resp, err := c.http.Get(url)
	if err != nil {
		return drainResult{}, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return drainResult{}, fmt.Errorf("drain %d: %s", id, resp.Status)
	}
	var out struct {
		Deliveries  []json.RawMessage `json:"deliveries"`
		Pending     int               `json:"pending"`
		Cursor      uint64            `json:"cursor"`
		Redelivered int               `json:"redelivered"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return drainResult{}, err
	}
	return drainResult{n: len(out.Deliveries), pending: out.Pending, cursor: out.Cursor, redelivered: out.Redelivered}, nil
}

// ack commits an at-least-once batch up to cursor via POST /ack/{id}.
func (c *client) ack(id uint64, cursor uint64) error {
	body, _ := json.Marshal(map[string]uint64{"cursor": cursor})
	resp, err := c.http.Post(fmt.Sprintf("%s/ack/%d", c.base, id), "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ack %d: %s", id, resp.Status)
	}
	return nil
}

func (c *client) stats() (map[string]any, error) {
	resp, err := c.http.Get(c.base + "/stats")
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// metrics scrapes and parses the daemon's Prometheus exposition,
// returning per-family sums (label sets collapsed).
func (c *client) metrics() (map[string]float64, error) {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: %s", resp.Status)
	}
	samples, err := telemetry.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return telemetry.SumByName(samples), nil
}

func drainClose(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8690", "treesimd address (host:port)")
		nSubs    = flag.Int("subs", 1000, "subscriptions to register")
		nPublish = flag.Int("publish", 10000, "documents to publish")
		nDocs    = flag.Int("docs", 500, "distinct generated documents to cycle through")
		churn    = flag.Int("churn", 0, "unsubscribe+resubscribe operations during the publish phase")
		conc     = flag.Int("concurrency", 8, "concurrent workers (subscribe phase; publish phase unless -publishers is set)")
		pubs     = flag.Int("publishers", 0, "concurrent publishers for the publish phase (0: use -concurrency)")
		batchSz  = flag.Int("batch", 0, "documents per publish request via the JSON batch endpoint (0/1: one per request)")
		drainers = flag.Int("drainers", 4, "concurrent delivery drain workers")
		schema   = flag.String("dtd", "nitf", "workload schema: nitf|xcbl|media")
		seed     = flag.Int64("seed", 1, "workload generation seed")
		expect   = flag.Bool("expect-deliveries", true, "exit nonzero if no deliveries happened")
		metSnap  = flag.Bool("metrics-snapshot", false, "scrape /metrics before and after and report daemon-side counter deltas")
		ackMode  = flag.Bool("ack", false, "subscribe at-least-once and ack drained batches (the acked-delivery workload)")
		ackSkip  = flag.Int("ack-skip", 0, "with -ack, stall by skipping the ack on every Nth drained batch; the daemon's lease expiry must redeliver (run it with a short -ack-lease)")
		injLat   = flag.Duration("inject-latency", 0, "sleep a seeded random duration in [0, d) before every client request (perturbation harness; draws come from -seed)")
	)
	flag.Parse()
	if *ackSkip > 0 && !*ackMode {
		fmt.Fprintln(os.Stderr, "treesim-bench: -ack-skip requires -ack")
		os.Exit(2)
	}

	if *nSubs <= 0 || *nPublish <= 0 || *nDocs <= 0 {
		fmt.Fprintln(os.Stderr, "treesim-bench: -subs, -publish and -docs must be positive")
		os.Exit(2)
	}
	if *drainers > *nSubs {
		*drainers = *nSubs
	}
	if *drainers < 1 {
		*drainers = 1
	}

	var d *treesim.DTD
	switch strings.ToLower(*schema) {
	case "nitf":
		d = treesim.NITFLikeDTD()
	case "xcbl":
		d = treesim.XCBLLikeDTD()
	case "media":
		d = treesim.MediaDTD()
	default:
		fmt.Fprintf(os.Stderr, "treesim-bench: unknown dtd %q\n", *schema)
		os.Exit(2)
	}

	if *pubs <= 0 {
		*pubs = *conc
	}
	if *batchSz < 1 {
		*batchSz = 1
	}
	var rt http.RoundTripper = &http.Transport{MaxIdleConnsPerHost: *conc + *pubs + *drainers + 2}
	if *injLat > 0 {
		rt = &latencyTransport{base: rt, max: *injLat, rng: rand.New(rand.NewSource(*seed))}
	}
	c := &client{
		base: "http://" + *addr,
		http: &http.Client{Transport: rt},
	}
	if *ackMode {
		c.mode = "at-least-once"
	}
	st0, err := c.stats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "treesim-bench: daemon unreachable at %s: %v\n", *addr, err)
		os.Exit(1)
	}
	var met0 map[string]float64
	if *metSnap {
		if met0, err = c.metrics(); err != nil {
			fmt.Fprintf(os.Stderr, "treesim-bench: %v\n", err)
			os.Exit(1)
		}
	}
	// The daemon reports its own parallelism context; carry it into the
	// benchmark lines so per-cpu snapshots stay self-describing.
	daemonCPUs, daemonShards := 1, 1
	if v, ok := st0["cpus"].(float64); ok && v >= 1 {
		daemonCPUs = int(v)
	}
	if v, ok := st0["shards"].(float64); ok && v >= 1 {
		daemonShards = int(v)
	}

	fmt.Printf("workload: dtd=%s subs=%d publish=%d churn=%d concurrency=%d publishers=%d batch=%d daemon(cpus=%d shards=%d)\n",
		*schema, *nSubs, *nPublish, *churn, *conc, *pubs, *batchSz, daemonCPUs, daemonShards)
	patterns := treesim.GeneratePatterns(d, *nSubs+*churn, *seed)
	docs := make([]string, 0, *nDocs)
	for _, t := range treesim.GenerateDocuments(d, *nDocs, *seed+1) {
		s, err := treesim.XMLString(t)
		if err != nil {
			fmt.Fprintf(os.Stderr, "treesim-bench: serialize: %v\n", err)
			os.Exit(1)
		}
		docs = append(docs, s)
	}

	// Phase 1: subscribe the population.
	var (
		ids   = make([]uint64, *nSubs)
		errCt atomic.Uint64
	)
	subStart := time.Now()
	runParallel(*conc, *nSubs, func(i int) {
		id, err := c.subscribe(patterns[i].String())
		if err != nil {
			errCt.Add(1)
			return
		}
		ids[i] = id
	})
	subDur := time.Since(subStart)
	if errCt.Load() > 0 {
		fmt.Fprintf(os.Stderr, "treesim-bench: %d subscribe errors\n", errCt.Load())
		os.Exit(1)
	}
	fmt.Printf("subscribed %d in %v (%.0f subs/sec, %v/op)\n",
		*nSubs, subDur.Round(time.Millisecond),
		float64(*nSubs)/subDur.Seconds(), (subDur / time.Duration(*nSubs)).Round(time.Microsecond))

	// Phase 2: publish with concurrent drains and optional churn. The
	// churn goroutine swaps entries of ids while drain workers read
	// them, so access goes through idsMu.
	var idsMu sync.Mutex
	idAt := func(i int) uint64 {
		idsMu.Lock()
		defer idsMu.Unlock()
		return ids[i]
	}
	var drained, stalled atomic.Uint64
	// Subscriptions whose simulated consumer has wedged (-ack-skip):
	// they keep draining — leasing deliveries — but never ack again, so
	// every delivery they hold must come back via daemon lease expiry.
	// Acks are cumulative (committing cursor N discharges everything at
	// or below N), so a one-batch skip would be silently swallowed by
	// the next batch's ack; wedging the whole subscription is the only
	// stall the daemon is actually on the hook to repair.
	var wedgedMu sync.Mutex
	wedged := make(map[uint64]bool)
	stopDrain := make(chan struct{})
	var drainWG sync.WaitGroup
	for w := 0; w < *drainers; w++ {
		drainWG.Add(1)
		go func(w int) {
			defer drainWG.Done()
			batches := 0
			for i := w; ; i = (i + *drainers) % len(ids) {
				select {
				case <-stopDrain:
					return
				default:
				}
				// A short long-poll parks the worker daemon-side when
				// the queue is empty instead of spinning.
				id := idAt(i)
				r, err := c.drain(id, 1000, 50*time.Millisecond)
				if err != nil {
					continue
				}
				drained.Add(uint64(r.n))
				if *ackMode && r.n > 0 {
					batches++
					if *ackSkip > 0 {
						wedgedMu.Lock()
						stall := wedged[id] || batches%*ackSkip == 0
						if stall {
							wedged[id] = true
						}
						wedgedMu.Unlock()
						if stall {
							stalled.Add(1)
							continue
						}
					}
					if err := c.ack(id, r.cursor); err != nil {
						errCt.Add(1)
					}
				}
			}
		}(w)
	}

	var churnWG sync.WaitGroup
	if *churn > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			rng := rand.New(rand.NewSource(*seed + 7))
			for k := 0; k < *churn; k++ {
				i := rng.Intn(len(ids))
				if err := c.unsubscribe(idAt(i)); err != nil {
					errCt.Add(1)
					continue
				}
				id, err := c.subscribe(patterns[*nSubs+k].String())
				if err != nil {
					errCt.Add(1)
					continue
				}
				idsMu.Lock()
				ids[i] = id
				idsMu.Unlock()
			}
		}()
	}

	pubStart := time.Now()
	if *batchSz > 1 {
		nBatches := (*nPublish + *batchSz - 1) / *batchSz
		runParallel(*pubs, nBatches, func(b int) {
			lo := b * *batchSz
			hi := min(lo+*batchSz, *nPublish)
			batch := make([]string, 0, hi-lo)
			for i := lo; i < hi; i++ {
				batch = append(batch, docs[i%len(docs)])
			}
			n, err := c.publishBatch(batch)
			if err != nil {
				errCt.Add(uint64(len(batch)))
			} else {
				errCt.Add(uint64(n))
			}
		})
	} else {
		runParallel(*pubs, *nPublish, func(i int) {
			if err := c.publish(docs[i%len(docs)]); err != nil {
				errCt.Add(1)
			}
		})
	}
	pubDur := time.Since(pubStart)
	churnWG.Wait()

	close(stopDrain)
	drainWG.Wait()

	// Final sweep: collect what is still queued, waiting out queues with
	// leased entries. A wedged subscription's window must come back via
	// daemon lease expiry before anything there is acked — acks are
	// cumulative, so acking a later batch first would silently discharge
	// the leased window and the redelivery would never be witnessed.
	sweepDeadline := time.Now().Add(30 * time.Second)
	runParallel(*drainers, len(ids), func(i int) {
		id := idAt(i)
		wedgedMu.Lock()
		holdAcks := wedged[id]
		wedgedMu.Unlock()
		for {
			r, err := c.drain(id, 1000, 0)
			if err != nil {
				return
			}
			if r.redelivered > 0 {
				holdAcks = false
			}
			if r.n > 0 {
				drained.Add(uint64(r.n))
				if *ackMode && !holdAcks {
					if err := c.ack(id, r.cursor); err != nil {
						errCt.Add(1)
						return
					}
				}
				continue
			}
			if !*ackMode || (r.pending == 0 && !holdAcks) || time.Now().After(sweepDeadline) {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	})

	sweepDur := time.Since(pubStart)

	st, err := c.stats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "treesim-bench: stats: %v\n", err)
		os.Exit(1)
	}
	// The acked-delivery ledger, as counter deltas across this run (the
	// daemon may carry state from earlier runs).
	statDelta := func(key string) uint64 {
		after, _ := st[key].(float64)
		before, _ := st0[key].(float64)
		if after <= before {
			return 0
		}
		return uint64(after - before)
	}
	var ackExtras string
	if *ackMode {
		acked := statDelta("acked")
		redeliveries := statDelta("redeliveries")
		leaseExp := statDelta("lease_expiries")
		fmt.Printf("acked %d deliveries (%.0f acked/sec), %d batches stalled, %d redeliveries, %d lease expiries\n",
			acked, float64(acked)/sweepDur.Seconds(), stalled.Load(), redeliveries, leaseExp)
		ackExtras = fmt.Sprintf("\t%d acked\t%.0f acked/sec\t%d redeliveries\t%d lease_expiries",
			acked, float64(acked)/sweepDur.Seconds(), redeliveries, leaseExp)
		if *ackSkip > 0 && stalled.Load() > 0 && redeliveries == 0 {
			fmt.Fprintln(os.Stderr, "treesim-bench: FAIL: stalled batches but no redeliveries (is the daemon's -ack-lease longer than the run?)")
			os.Exit(1)
		}
	}
	// The workload's daemon-side footprint: counter deltas across the
	// run, attached to the publish benchmark line below. Names follow
	// the registry (see the README's Observability catalogue); families
	// a standalone in-memory daemon does not register read as zero.
	var metricExtras string
	if *metSnap {
		met1, err := c.metrics()
		if err != nil {
			fmt.Fprintf(os.Stderr, "treesim-bench: %v\n", err)
			os.Exit(1)
		}
		delta := func(name string) float64 { return met1[name] - met0[name] }
		deltas := []struct{ unit, family string }{
			{"daemon_published", "treesim_broker_published_total"},
			{"daemon_deliveries", "treesim_broker_deliveries_total"},
			{"daemon_dropped", "treesim_broker_dropped_total"},
			{"daemon_filter_evals", "treesim_broker_filter_evals_total"},
			{"daemon_remote_shed", "treesim_broker_remote_shed_total"},
			{"daemon_wal_appends", "treesim_wal_appends_total"},
			{"daemon_wal_bytes", "treesim_wal_append_bytes_total"},
			{"overlay_forwards", "treesim_overlay_forwards_sent_total"},
			{"overlay_send_errors", "treesim_overlay_send_errors_total"},
		}
		fmt.Println("daemon metric deltas (/metrics, this run):")
		for _, d := range deltas {
			fmt.Printf("  %-36s %.0f\n", d.family, delta(d.family))
			metricExtras += fmt.Sprintf("\t%.0f %s", delta(d.family), d.unit)
		}
	}
	fmt.Printf("published %d in %v (%.0f publishes/sec, %v/op), %d errors\n",
		*nPublish, pubDur.Round(time.Millisecond),
		float64(*nPublish)/pubDur.Seconds(), (pubDur / time.Duration(*nPublish)).Round(time.Microsecond),
		errCt.Load())
	fmt.Printf("drained %d deliveries; daemon stats:\n", drained.Load())
	for _, k := range []string{"live", "communities", "singletons", "rebuilds", "published",
		"docs_observed", "filter_evals", "deliveries", "dropped", "precision_proxy",
		"publish_p50_ns", "publish_p99_ns"} {
		fmt.Printf("  %-16s %v\n", k, st[k])
	}

	// Machine-readable summary, parseable by cmd/benchjson. The "cpus"
	// pair records the daemon's GOMAXPROCS (benchjson passes unknown
	// units through into each result's extras), so merged snapshots can
	// hold one entry per cpu count.
	label := fmt.Sprintf("subs=%d", *nSubs)
	if *injLat > 0 {
		// Perturbed runs get their own label (they measure jitter
		// tolerance, not throughput) and carry the delay ceiling and
		// seed as extras so any snapshot is replayable.
		label = fmt.Sprintf("%s/latency=%s", label, *injLat)
	}
	pubLabel := label
	if *pubs != *conc {
		pubLabel = fmt.Sprintf("%s/publishers=%d", label, *pubs)
	}
	if *batchSz > 1 {
		pubLabel = fmt.Sprintf("%s/batch=%d", pubLabel, *batchSz)
	}
	var latExtras string
	if *injLat > 0 {
		latExtras = fmt.Sprintf("\t%d inject_latency_ns\t%d latency_seed", injLat.Nanoseconds(), *seed)
	}
	fmt.Printf("BenchmarkTreesimdSubscribe/%s \t%d\t%d ns/op\t%d cpus\t%d shards\n",
		label, *nSubs, subDur.Nanoseconds()/int64(*nSubs), daemonCPUs, daemonShards)
	if *ackMode {
		pubLabel += "/ack"
	}
	fmt.Printf("BenchmarkTreesimdPublish/%s \t%d\t%d ns/op\t%d deliveries\t%.0f pub/sec\t%d cpus\t%d shards%s%s\n",
		pubLabel, *nPublish, pubDur.Nanoseconds()/int64(*nPublish), drained.Load(),
		float64(*nPublish)/pubDur.Seconds(), daemonCPUs, daemonShards, metricExtras, ackExtras+latExtras)

	if *expect && drained.Load() == 0 {
		fmt.Fprintln(os.Stderr, "treesim-bench: FAIL: no deliveries")
		os.Exit(1)
	}
}

// runParallel runs fn(i) for i in [0, n) across w workers.
func runParallel(w, n int, fn func(int)) {
	if w < 1 {
		w = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
