// Command treesim-inspect is the federation inspector: it scrapes every
// node of a treesimd federation over the read-only introspection
// surfaces (GET /peer/info, /introspect/routes, /introspect/links,
// /introspect/communities, /stats), assembles the topology and routing
// tables into one view, and renders it as text or Graphviz DOT. With
// -check it verifies cross-node invariants — advert versions converged,
// next-hop chains acyclic per origin, link health symmetric — and exits
// nonzero on any violation, making federation state CI-assertable:
//
//	treesim-inspect -nodes http://h1:8690,http://h2:8691,http://h3:8692
//	treesim-inspect -nodes ... -dot | dot -Tsvg > topo.svg
//	treesim-inspect -nodes ... -check || echo "federation inconsistent"
//
// The inspector only reads; it never subscribes, publishes, or peers.
// Checks are point-in-time: gossip still in flight (an advert refresh
// mid-propagation, a link probe not yet run) can fail a single -check
// honestly, so CI should poll -check until quiescence rather than
// sample once.
//
// Exit codes: 0 ok, 1 invariant violation (-check), 2 usage or scrape
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"treesim/internal/broker"
	"treesim/internal/overlay"
	"treesim/internal/overlay/wire"
)

// nodeState is everything scraped from one daemon.
type nodeState struct {
	base   string // base URL the node was scraped at
	info   wire.Info
	routes []overlay.RouteInfo
	links  []overlay.LinkInfo
	comms  []broker.CommunityInfo
	stats  broker.Stats
}

func main() {
	var (
		nodes   = flag.String("nodes", "", "comma-separated base URLs of every federation node (required)")
		timeout = flag.Duration("timeout", 5*time.Second, "per-request scrape timeout")
		dot     = flag.Bool("dot", false, "render the topology as Graphviz DOT instead of text")
		check   = flag.Bool("check", false, "verify cross-node invariants; exit 1 on violation")
	)
	flag.Parse()

	var bases []string
	for _, u := range strings.Split(*nodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			bases = append(bases, strings.TrimRight(u, "/"))
		}
	}
	if len(bases) == 0 {
		fmt.Fprintln(os.Stderr, "treesim-inspect: -nodes is required (comma-separated base URLs)")
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	states, err := scrapeAll(client, bases)
	if err != nil {
		fmt.Fprintln(os.Stderr, "treesim-inspect:", err)
		os.Exit(2)
	}

	if *dot {
		renderDOT(os.Stdout, states)
	} else {
		renderText(os.Stdout, states)
	}

	if *check {
		violations := checkInvariants(states)
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "treesim-inspect: %d invariant violation(s):\n", len(violations))
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "  -", v)
			}
			os.Exit(1)
		}
		fmt.Println("checks: advert convergence, next-hop acyclicity, link symmetry — all passed")
	}
}

// scrapeAll fetches every node concurrently; any scrape failure fails
// the whole run (a partial federation view would make -check lie).
func scrapeAll(client *http.Client, bases []string) ([]*nodeState, error) {
	states := make([]*nodeState, len(bases))
	errs := make([]error, len(bases))
	var wg sync.WaitGroup
	for i, base := range bases {
		wg.Add(1)
		go func() {
			defer wg.Done()
			states[i], errs[i] = scrapeNode(client, base)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scrape %s: %w", bases[i], err)
		}
	}
	return states, nil
}

func scrapeNode(client *http.Client, base string) (*nodeState, error) {
	st := &nodeState{base: base}
	if err := getJSON(client, base+"/peer/info", &st.info); err != nil {
		return nil, err
	}
	var routes struct {
		Routes []overlay.RouteInfo `json:"routes"`
	}
	if err := getJSON(client, base+"/introspect/routes", &routes); err != nil {
		return nil, err
	}
	st.routes = routes.Routes
	var links struct {
		Links []overlay.LinkInfo `json:"links"`
	}
	if err := getJSON(client, base+"/introspect/links", &links); err != nil {
		return nil, err
	}
	st.links = links.Links
	var comms struct {
		Communities []broker.CommunityInfo `json:"communities"`
	}
	if err := getJSON(client, base+"/introspect/communities", &comms); err != nil {
		return nil, err
	}
	st.comms = comms.Communities
	if err := getJSON(client, base+"/stats", &st.stats); err != nil {
		return nil, err
	}
	return st, nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// renderText prints one block per node: identity, links with health,
// routing table, and community summary.
func renderText(w *os.File, states []*nodeState) {
	for _, st := range states {
		fmt.Fprintf(w, "node %s (%s)\n", st.info.ID, st.base)
		fmt.Fprintf(w, "  subscriptions=%d communities=%d published=%d deliveries=%d advert_version=%d\n",
			st.stats.Live, len(st.comms), st.stats.Published, st.stats.Deliveries, st.info.AdvertVer)
		if len(st.links) == 0 {
			fmt.Fprintf(w, "  links: none\n")
		} else {
			fmt.Fprintf(w, "  links:\n")
			for _, l := range st.links {
				health := "up"
				if !l.Up {
					health = fmt.Sprintf("DOWN fails=%d backoff=%dms next_probe=%dms err=%q",
						l.Fails, l.BackoffMS, l.NextProbeMS, l.LastError)
				}
				fmt.Fprintf(w, "    %-20s %s  sends=%d errs=%d\n", l.Peer, health, l.Sends, l.Errors)
			}
		}
		if len(st.routes) == 0 {
			fmt.Fprintf(w, "  routes: none\n")
		} else {
			fmt.Fprintf(w, "  routes:\n")
			for _, r := range st.routes {
				mark := ""
				if r.Tombstone {
					mark = "  [tombstone]"
				}
				fmt.Fprintf(w, "    origin=%-20s version=%d hops=%d via=%s age=%s patterns=%d members=%d%s\n",
					r.Origin, r.Version, r.Hops, r.Via,
					(time.Duration(r.AgeMS) * time.Millisecond).String(), r.Patterns, r.Members, mark)
			}
		}
	}
}

// renderDOT emits the link topology as an undirected Graphviz graph:
// solid edges for healthy links, dashed red for links some endpoint has
// marked down, and one node label line per broker with its
// subscription and community counts.
func renderDOT(w *os.File, states []*nodeState) {
	byID := statesByID(states)
	fmt.Fprintln(w, "graph treesim {")
	fmt.Fprintln(w, "  node [shape=box];")
	for _, st := range states {
		fmt.Fprintf(w, "  %q [label=\"%s\\nsubs=%d comms=%d\"];\n",
			st.info.ID, st.info.ID, st.stats.Live, len(st.comms))
	}
	seen := map[string]bool{}
	for _, st := range states {
		for _, l := range st.links {
			a, b := st.info.ID, l.Peer
			key := a + "\x00" + b
			if b < a {
				key = b + "\x00" + a
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			attrs := ""
			if !l.Up || peerMarksDown(byID[b], a) {
				attrs = " [style=dashed, color=red]"
			}
			fmt.Fprintf(w, "  %q -- %q%s;\n", a, b, attrs)
		}
	}
	fmt.Fprintln(w, "}")
}

func peerMarksDown(st *nodeState, peer string) bool {
	if st == nil {
		return false
	}
	for _, l := range st.links {
		if l.Peer == peer {
			return !l.Up
		}
	}
	return false
}

func statesByID(states []*nodeState) map[string]*nodeState {
	byID := make(map[string]*nodeState, len(states))
	for _, st := range states {
		byID[st.info.ID] = st
	}
	return byID
}

// checkInvariants verifies the cross-node consistency a healthy,
// quiescent federation must satisfy. All checks are advisory about
// nodes outside the scrape set: a route via an unscraped node is
// followed as far as visibility reaches, never reported as a violation.
func checkInvariants(states []*nodeState) []string {
	var out []string
	byID := statesByID(states)

	// 1. Advert-version convergence: every scraped node holding a route
	// for a scraped origin must hold it at the origin's current advert
	// version (and therefore all agree with each other).
	for _, st := range states {
		for _, r := range st.routes {
			origin, ok := byID[r.Origin]
			if !ok {
				continue
			}
			if want := origin.info.AdvertVer; r.Version != want {
				out = append(out, fmt.Sprintf(
					"advert divergence: %s holds origin %s at version %d, origin advertises %d",
					st.info.ID, r.Origin, r.Version, want))
			}
		}
	}

	// 2. Next-hop acyclicity: per origin, following via-pointers from
	// any node must reach the origin without revisiting a node.
	routeOf := func(id, origin string) (overlay.RouteInfo, bool) {
		st := byID[id]
		if st == nil {
			return overlay.RouteInfo{}, false
		}
		for _, r := range st.routes {
			if r.Origin == origin {
				return r, true
			}
		}
		return overlay.RouteInfo{}, false
	}
	origins := map[string]bool{}
	for _, st := range states {
		for _, r := range st.routes {
			if !r.Tombstone {
				origins[r.Origin] = true
			}
		}
	}
	for origin := range origins {
		for _, start := range states {
			if start.info.ID == origin {
				continue
			}
			visited := map[string]bool{}
			cur := start.info.ID
			for cur != origin {
				if visited[cur] {
					out = append(out, fmt.Sprintf(
						"next-hop cycle: origin %s, walk from %s revisits %s", origin, start.info.ID, cur))
					break
				}
				visited[cur] = true
				r, ok := routeOf(cur, origin)
				if !ok || r.Tombstone {
					break // no route here (or expired): nothing to follow
				}
				if _, scraped := byID[r.Via]; !scraped {
					break // next hop outside the scrape set: visibility ends
				}
				cur = r.Via
			}
		}
	}

	// 3. Link symmetry: a link is one relationship seen from two ends —
	// both ends must list it, and a link one end trusts while the other
	// end damps is a half-open failure.
	for _, st := range states {
		for _, l := range st.links {
			peer, ok := byID[l.Peer]
			if !ok {
				continue
			}
			back := false
			for _, pl := range peer.links {
				if pl.Peer == st.info.ID {
					back = true
					if l.Up != pl.Up {
						out = append(out, fmt.Sprintf(
							"link health asymmetry: %s sees %s up=%v but %s sees %s up=%v",
							st.info.ID, l.Peer, l.Up, l.Peer, st.info.ID, pl.Up))
					}
					break
				}
			}
			if !back {
				out = append(out, fmt.Sprintf(
					"peer asymmetry: %s links %s but %s does not link back", st.info.ID, l.Peer, l.Peer))
			}
		}
	}

	sort.Strings(out)
	return out
}
