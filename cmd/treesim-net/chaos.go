package main

// Chaos mode (-chaos): the fault-injection counterpart to the
// steady-state benchmark. One run exercises the full robustness stack
// end to end on a live in-process federation:
//
//	phase 1  all brokers up — exact delivery is required. The victim's
//	         subscriptions run at-least-once: drains are leased and
//	         explicitly acked.
//	fault    one broker is snapshotted, mutated (post-snapshot churn
//	         lands only in its WAL), then killed without any shutdown
//	         path — its persist store is deliberately left open, the
//	         in-process analogue of SIGKILL. Simultaneously one
//	         survivor↔survivor link is severed in both directions.
//	         Before the kill, a consumer-kill batch is published and
//	         the victim's consumers drain it WITHOUT acking — the
//	         in-process analogue of consumers that took delivery and
//	         crashed before committing. Those hand-outs exist only as
//	         OpDeliver/OpDrained records in the WAL tail.
//	phase 2  publishing continues from the survivors. Soft-state TTLs
//	         must evict the dead broker's adverts from every routing
//	         table (lost deliveries to its subscribers are the expected
//	         cost and are reported, not hidden); severed-link endpoints
//	         must mark each other down and keep probing.
//	heal     the broker is recovered from its data directory
//	         (snapshot + WAL tail, stable subscription IDs, epoch
//	         watermark) and rewired; the severed link comes back. The
//	         run waits for convergence: no down links anywhere and every
//	         node routing for every other.
//	phase 3  before new traffic, the recovered broker must redeliver
//	         the entire unacked window — recall 1.0 over the
//	         consumer-kill batch, zero lost documents, duplicates
//	         bounded by the in-flight window — and then exact delivery
//	         is required again: recall 1.0 against pattern.Matches
//	         ground truth, zero extras — proving the overlay healed to
//	         exactly-correct routing, not merely to connectivity.
//
// Requires -threshold 2 (exact mode): with similarity clustering on,
// "recall 1.0" is not a sound invariant to assert against.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"treesim/internal/broker"
	"treesim/internal/overlay"
	"treesim/internal/overlay/wire"
	"treesim/internal/pattern"
	"treesim/internal/persist"
	"treesim/internal/xmltree"
)

// severable wraps a transport with a kill switch; severed sends fail
// like a cut cable, feeding the receiving end nothing and the sending
// end an error (which is what trips link-down marking).
type severable struct {
	inner overlay.Transport
	down  atomic.Bool
}

var errSevered = fmt.Errorf("chaos: link severed")

func (s *severable) SendAdvert(b wire.AdvertBatch) error {
	if s.down.Load() {
		return errSevered
	}
	return s.inner.SendAdvert(b)
}

func (s *severable) SendPublish(p wire.Publication) error {
	if s.down.Load() {
		return errSevered
	}
	return s.inner.SendPublish(p)
}

// chaosJournal is the same WAL adapter cmd/treesimd uses: every
// committed churn decision on the victim becomes one record.
type chaosJournal struct{ s *persist.Store }

func (j chaosJournal) Subscribed(id uint64, expr string, group int, mode broker.DeliveryMode) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpSubscribe, ID: id, Expr: expr, Group: group, Mode: uint8(mode)})
}

func (j chaosJournal) Unsubscribed(id uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpUnsubscribe, ID: id})
}

func (j chaosJournal) Rebuilt(groups [][]uint64, reps []uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpRebuild, Groups: groups, Reps: reps})
}

func (j chaosJournal) Delivered(seq uint64, xml string, subs, cursors []uint64, comms []int) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpDeliver, Seq: seq, XML: xml, Subs: subs, Cursors: cursors, Comms: comms})
}

func (j chaosJournal) Acked(id uint64, upto uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpAck, ID: id, Cursor: upto})
}

func (j chaosJournal) Drained(id uint64, upto uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpDrained, ID: id, Cursor: upto})
}

// chaosSub is one subscription's whole life: its pattern, home broker,
// stable ID (which must survive the victim's recovery), whether it is
// still registered, and its delivery contract (victim subscriptions run
// at-least-once so the recovery owes them their unacked window).
type chaosSub struct {
	pat   *pattern.Pattern
	node  int
	id    uint64
	live  bool
	acked bool
}

// victim is the broker that gets killed and recovered. Not node 0 (the
// star hub — killing it would partition everything, a different
// scenario) and not the last node, so severable survivor↔survivor
// edges exist in every topology with at least 4 nodes.
const victim = 1

func runChaos(o options) error {
	if o.threshold != 2 {
		return fmt.Errorf("-chaos requires -threshold 2 (exact mode): recall 1.0 is only an invariant without similarity clustering")
	}
	if o.nodes < 4 {
		return fmt.Errorf("-chaos needs at least 4 nodes (have %d): one victim plus a severable survivor link", o.nodes)
	}
	if o.publish < 12 {
		return fmt.Errorf("-chaos needs at least 12 documents (have %d) for four publish phases", o.publish)
	}

	w, err := buildWorkload(o)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "treesim-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	dataDir := filepath.Join(dir, "victim")

	// Aggressive liveness timings so the scenario converges in seconds;
	// a production daemon runs the same machinery with 60s TTLs.
	nodeConfig := func(i int, minEpoch uint64) overlay.Config {
		return overlay.Config{
			ID:              fmt.Sprintf("n%02d", i),
			TTL:             o.ttl,
			SeenCapacity:    2 * (o.publish + 16),
			AdvertPolicy:    broker.Never{}, // explicit rounds; refresh keepalives still run
			MaxPatternNodes: o.maxPat,
			AdvertTTL:       time.Second,
			Maintenance:     50 * time.Millisecond,
			RetryBase:       50 * time.Millisecond,
			RetryMax:        500 * time.Millisecond,
			MinEpoch:        minEpoch,
		}
	}

	store, err := persist.Open(dataDir, persist.Options{})
	if err != nil {
		return err
	}

	engines := make([]*broker.Engine, o.nodes)
	nodes := make([]*overlay.Node, o.nodes)
	for i := range nodes {
		engines[i] = broker.New(brokerConfig(o))
		if i == victim {
			engines[i].SetJournal(chaosJournal{store})
		}
		nodes[i] = overlay.New(engines[i], nodeConfig(i, 0))
	}
	defer func() {
		for i := range nodes {
			nodes[i].Close()
			engines[i].Close()
		}
	}()

	// Wire the topology through severable wrappers so any edge can be
	// cut later; remember each edge's pair of directional switches.
	type linkPair struct{ ab, ba *severable }
	links := make([]linkPair, len(w.edges))
	for ei, e := range w.edges {
		ab := &severable{inner: overlay.Inproc{Peer: nodes[e[1]]}}
		ba := &severable{inner: overlay.Inproc{Peer: nodes[e[0]]}}
		if err := overlay.ConnectTransports(nodes[e[0]], nodes[e[1]], ab, ba); err != nil {
			return err
		}
		links[ei] = linkPair{ab: ab, ba: ba}
	}
	severIdx := -1
	for ei, e := range w.edges {
		if e[0] != victim && e[1] != victim {
			severIdx = ei
			break
		}
	}
	if severIdx < 0 {
		return fmt.Errorf("no survivor↔survivor edge to sever in this topology")
	}

	// Load the workload's subscriptions onto their placed brokers.
	subs := make([]*chaosSub, 0, len(w.subs)+2)
	victimSubs := 0
	// Victim subscriptions are at-least-once: their delivery logs, acks,
	// and leases are exactly the state the crash must not lose.
	subscribeAt := func(n int, expr string) (uint64, bool, error) {
		if n == victim {
			id, err := engines[n].SubscribeOpts(expr, broker.SubscribeOptions{Mode: broker.AtLeastOnce})
			return id, true, err
		}
		id, err := engines[n].Subscribe(expr)
		return id, false, err
	}
	for i, p := range w.subs {
		n := w.nodeOf[i]
		id, acked, err := subscribeAt(n, w.exprs[i])
		if err != nil {
			return fmt.Errorf("subscribe %q: %w", w.exprs[i], err)
		}
		if n == victim {
			victimSubs++
		}
		subs = append(subs, &chaosSub{pat: p, node: n, id: id, live: true, acked: acked})
	}
	if victimSubs == 0 {
		// Clustered placement can leave a node empty; give the victim a
		// subscription so its recovery is observable in deliveries.
		p := w.qg.Generate()
		id, acked, err := subscribeAt(victim, p.String())
		if err != nil {
			return err
		}
		subs = append(subs, &chaosSub{pat: p, node: victim, id: id, live: true, acked: acked})
		victimSubs++
	}
	for _, n := range nodes {
		if err := n.Advertise(); err != nil {
			return err
		}
	}

	// expect computes ground truth directly from the patterns: every
	// (live subscription, matching document) pair exactly once.
	expect := func(docs []*xmltree.Tree) (map[pairKey]int, int) {
		m := make(map[pairKey]int)
		total := 0
		for _, d := range docs {
			key := d.Clone().Canonicalize().String()
			for si, s := range subs {
				if s.live && pattern.Matches(d, s.pat) {
					m[pairKey{sub: si, doc: key}]++
					total++
				}
			}
		}
		return m, total
	}
	publish := func(docs []*xmltree.Tree, origins []int) error {
		for i, d := range docs {
			if _, _, err := nodes[origins[i%len(origins)]].Publish(d); err != nil {
				return fmt.Errorf("publish via n%02d: %w", origins[i%len(origins)], err)
			}
		}
		return nil
	}
	// drainSub empties one subscription's delivery queue into m. For
	// at-least-once subscriptions the batch is leased; the cursor is
	// acked afterwards unless ack is false (a consumer that crashed
	// before committing). Returns deliveries taken and how many were
	// flagged Redelivered.
	drainSub := func(si int, s *chaosSub, ack bool, m map[pairKey]int) (int, int, error) {
		eng := engines[s.node]
		r, err := eng.DrainBatch(s.id, 0, 0)
		if err != nil {
			return 0, 0, fmt.Errorf("drain sub %d at n%02d: %w", si, s.node, err)
		}
		redeliv := 0
		for _, dv := range r.Deliveries {
			t := eng.Document(dv.Doc)
			if t == nil {
				return 0, 0, fmt.Errorf("delivered doc %d not retained at n%02d", dv.Doc, s.node)
			}
			m[pairKey{sub: si, doc: t.Clone().Canonicalize().String()}]++
			if dv.Redelivered {
				redeliv++
			}
		}
		if s.acked && ack && len(r.Deliveries) > 0 {
			if _, err := eng.Ack(s.id, r.Cursor); err != nil {
				return 0, 0, fmt.Errorf("ack sub %d at n%02d (cursor %d): %w", si, s.node, r.Cursor, err)
			}
		}
		return len(r.Deliveries), redeliv, nil
	}
	// drain empties every live subscription's delivery queue into one
	// multiset; sends are synchronous, so after publish returns this is
	// the complete delivery picture. At-least-once batches are acked.
	// skipVictim covers the outage window when the victim's engine is
	// closed.
	drain := func(skipVictim bool) (map[pairKey]int, int, error) {
		m := make(map[pairKey]int)
		total := 0
		for si, s := range subs {
			if !s.live || (skipVictim && s.node == victim) {
				continue
			}
			n, _, err := drainSub(si, s, true, m)
			if err != nil {
				return nil, 0, err
			}
			total += n
		}
		return m, total, nil
	}
	waitFor := func(what string, timeout time.Duration, cond func() bool) error {
		deadline := time.Now().Add(timeout)
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("timed out after %v waiting for %s", timeout, what)
			}
			time.Sleep(25 * time.Millisecond)
		}
		return nil
	}

	quarter := len(w.docs) / 4
	p1, pk, p2, p3 := w.docs[:quarter], w.docs[quarter:2*quarter],
		w.docs[2*quarter:3*quarter], w.docs[3*quarter:]
	allOrigins := make([]int, o.nodes)
	for i := range allOrigins {
		allOrigins[i] = i
	}
	survivors := make([]int, 0, o.nodes-1)
	for i := 0; i < o.nodes; i++ {
		if i != victim {
			survivors = append(survivors, i)
		}
	}
	start := time.Now()

	// Phase 1: healthy federation, exact delivery required.
	exp1, exp1Total := expect(p1)
	if err := publish(p1, allOrigins); err != nil {
		return err
	}
	got1, got1Total, err := drain(false)
	if err != nil {
		return err
	}
	_, lost1, extra1 := compare(exp1, got1)
	fmt.Printf("# phase 1 (healthy): %d docs, %d/%d deliveries, %d lost, %d extra\n",
		len(p1), got1Total, exp1Total, lost1, extra1)

	// Fault injection. Snapshot the victim first, then churn it so the
	// WAL tail beyond the snapshot carries real decisions into recovery:
	// two fresh subscriptions and one unsubscription.
	st, err := engines[victim].State()
	if err != nil {
		return err
	}
	blob, err := broker.EncodeState(st)
	if err != nil {
		return err
	}
	env := persist.Snapshot{Broker: blob}
	env.AdvertVersion, env.PubSeq = nodes[victim].Epoch()
	payload, err := env.Encode()
	if err != nil {
		return err
	}
	if err := store.WriteSnapshot(payload, st.WalLSN); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		p := w.qg.Generate()
		id, acked, err := subscribeAt(victim, p.String())
		if err != nil {
			return err
		}
		subs = append(subs, &chaosSub{pat: p, node: victim, id: id, live: true, acked: acked})
		victimSubs++
	}
	for _, s := range subs {
		if s.node == victim && s.live {
			engines[victim].Unsubscribe(s.id)
			s.live = false
			victimSubs--
			break
		}
	}
	if err := nodes[victim].Advertise(); err != nil {
		return err
	}

	// Consumer kill: publish a batch, let the victim's at-least-once
	// consumers drain it, and never ack — the consumers "crashed" with
	// the window in flight. Every one of these hand-outs lives only as
	// OpDeliver/OpDrained records in the WAL tail beyond the snapshot;
	// recovery owes them all back. Survivor subscribers process the same
	// batch normally and must be exact.
	expK, _ := expect(pk)
	if err := publish(pk, allOrigins); err != nil {
		return err
	}
	preKill := make(map[pairKey]int)
	gotKSurv := make(map[pairKey]int)
	inFlight := 0
	for si, s := range subs {
		if !s.live {
			continue
		}
		if s.node == victim {
			n, _, err := drainSub(si, s, false, preKill)
			if err != nil {
				return err
			}
			inFlight += n
		} else if _, _, err := drainSub(si, s, true, gotKSurv); err != nil {
			return err
		}
	}
	expKVict := make(map[pairKey]int)
	expKSurv := make(map[pairKey]int)
	for k, v := range expK {
		if subs[k.sub].node == victim {
			expKVict[k] = v
		} else {
			expKSurv[k] = v
		}
	}
	_, lostKSurv, extraKSurv := compare(expKSurv, gotKSurv)
	_, lostKVict, extraKVict := compare(expKVict, preKill)
	fmt.Printf("# consumer kill: %d docs, %d deliveries in flight (leased, never acked), survivors %d lost %d extra\n",
		len(pk), inFlight, lostKSurv, extraKSurv)

	// Kill. No shutdown path runs: the store stays open with whatever
	// the WAL already holds — exactly a SIGKILL's view of disk.
	nodes[victim].Close()
	engines[victim].Close()
	sever := w.edges[severIdx]
	links[severIdx].ab.down.Store(true)
	links[severIdx].ba.down.Store(true)
	fmt.Printf("# fault: killed n%02d (snapshot + WAL-tail churn and unacked delivery window), severed n%02d—n%02d\n",
		victim, sever[0], sever[1])

	// Survivors must notice on their own: the victim's origin expires
	// from every routing table via the advert TTL.
	victimID := nodes[victim].ID()
	if err := waitFor("victim adverts to expire on all survivors", 15*time.Second, func() bool {
		for _, i := range survivors {
			for _, og := range nodes[i].Info().Origins {
				if og.Origin == victimID {
					return false
				}
			}
		}
		return true
	}); err != nil {
		return err
	}

	// Phase 2: degraded. Losses to the dead broker's subscribers (and
	// across the cut, if it partitioned the graph) are expected and
	// reported; phantom deliveries are still a failure.
	exp2, exp2Total := expect(p2)
	if err := publish(p2, survivors); err != nil {
		return err
	}
	got2, got2Total, err := drain(true)
	if err != nil {
		return err
	}
	_, lost2, extra2 := compare(exp2, got2)
	fmt.Printf("# phase 2 (degraded): %d docs, %d/%d deliveries, %d lost to the outage, %d extra\n",
		len(p2), got2Total, exp2Total, lost2, extra2)

	// Heal. Recover the victim from its data directory the way a
	// restarted daemon would: snapshot, WAL tail above the watermark,
	// journal re-attached only after replay, epoch floored by the
	// persisted watermarks.
	store2, err := persist.Open(dataDir, persist.Options{})
	if err != nil {
		return err
	}
	defer store2.Close()
	snapPayload, ok, err := store2.LoadSnapshot()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("recovery: no snapshot in %s", dataDir)
	}
	env2, err := persist.DecodeSnapshot(snapPayload)
	if err != nil {
		return err
	}
	st2, err := broker.DecodeState(env2.Broker)
	if err != nil {
		return err
	}
	eng2, err := broker.Restore(brokerConfig(o), st2)
	if err != nil {
		return err
	}
	replayed := 0
	if err := store2.Replay(func(rec persist.Record) error {
		replayed++
		switch rec.Op {
		case persist.OpSubscribe:
			return eng2.ApplySubscribed(rec.ID, rec.Expr, rec.Group, broker.DeliveryMode(rec.Mode))
		case persist.OpUnsubscribe:
			return eng2.ApplyUnsubscribed(rec.ID)
		case persist.OpRebuild:
			return eng2.ApplyRebuilt(rec.Groups, rec.Reps)
		case persist.OpDeliver:
			return eng2.ApplyDelivered(rec.Seq, rec.XML, rec.Subs, rec.Cursors, rec.Comms)
		case persist.OpAck:
			return eng2.ApplyAcked(rec.ID, rec.Cursor)
		case persist.OpDrained:
			return eng2.ApplyDrained(rec.ID, rec.Cursor)
		default:
			return fmt.Errorf("unknown wal op %q", rec.Op)
		}
	}); err != nil {
		return err
	}
	eng2.SetJournal(chaosJournal{store2})
	if eng2.Live() != victimSubs {
		return fmt.Errorf("recovery: %d live subscriptions, want %d", eng2.Live(), victimSubs)
	}
	minEpoch := env2.AdvertVersion
	if env2.PubSeq > minEpoch {
		minEpoch = env2.PubSeq
	}
	engines[victim] = eng2
	nodes[victim] = overlay.New(eng2, nodeConfig(victim, minEpoch))
	for ei, e := range w.edges {
		if e[0] != victim && e[1] != victim {
			continue
		}
		ab := &severable{inner: overlay.Inproc{Peer: nodes[e[1]]}}
		ba := &severable{inner: overlay.Inproc{Peer: nodes[e[0]]}}
		if err := overlay.ConnectTransports(nodes[e[0]], nodes[e[1]], ab, ba); err != nil {
			return err
		}
		links[ei] = linkPair{ab: ab, ba: ba}
	}
	links[severIdx].ab.down.Store(false)
	links[severIdx].ba.down.Store(false)
	if err := nodes[victim].Advertise(); err != nil {
		return err
	}
	fmt.Printf("# heal: n%02d restored from %s (wal tail: %d records, %d live subs), link n%02d—n%02d reopened\n",
		victim, dataDir, replayed, eng2.Live(), sever[0], sever[1])

	// Convergence: retry probes must rediscover the healed link (the
	// probe doubles as a full-state resync) and every node must route
	// for every other again.
	if err := waitFor("all links up and all origins routed", 30*time.Second, func() bool {
		for _, n := range nodes {
			info := n.Info()
			if len(info.DownPeers) != 0 || len(info.Origins) != o.nodes-1 {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	// Redelivery: the recovered broker owes the crashed consumers their
	// entire unacked window. Drain the victim's subscriptions again —
	// acking this time, the consumers are "back" — and compare against
	// what was in flight at the kill: zero lost documents is the
	// at-least-once contract; every repeat of a delivery the dead
	// consumers already saw is a duplicate, bounded by that window.
	postHeal := make(map[pairKey]int)
	postHealTotal, redelivered := 0, 0
	for si, s := range subs {
		if !s.live || s.node != victim {
			continue
		}
		n, rd, err := drainSub(si, s, true, postHeal)
		if err != nil {
			return err
		}
		postHealTotal += n
		redelivered += rd
	}
	dupes, lostUnacked, extraUnacked := compare(preKill, postHeal)
	fmt.Printf("# redelivery: %d of %d unacked deliveries returned after recovery (%d lost, %d beyond the window, %d flagged redelivered, %d duplicates for the crashed consumers)\n",
		postHealTotal, inFlight, lostUnacked, extraUnacked, redelivered, dupes)
	if _, residue, err := drain(false); err != nil {
		return err
	} else if residue > 0 {
		fmt.Printf("# drained %d straggler deliveries before phase 3\n", residue)
	}

	// Phase 3: healed federation, exact delivery required again —
	// including to the recovered broker's (post-snapshot!) subscribers.
	exp3, exp3Total := expect(p3)
	if err := publish(p3, allOrigins); err != nil {
		return err
	}
	got3, _, err := drain(false)
	if err != nil {
		return err
	}
	matched3, lost3, extra3 := compare(exp3, got3)
	recall3 := 1.0
	if exp3Total > 0 {
		recall3 = float64(matched3) / float64(exp3Total)
	}
	elapsed := time.Since(start)

	var expired, downs, recoveries, resyncs uint64
	for _, n := range nodes {
		info := n.Info()
		expired += info.AdvertsExpired
		downs += info.LinkDowns
		recoveries += info.LinkRecoveries
		resyncs += info.Resyncs
	}

	name := fmt.Sprintf("topo=%s/nodes=%d/subs=%d/docs=%d", o.topology, o.nodes, len(subs), o.publish)
	fmt.Printf("BenchmarkOverlayChaos/%s \t%d\t%d ns/op\t%.4f recall_healed\t%d lost_healed\t%d extra_healed\t%d lost_outage\t%d lost_unacked\t%d redelivered\t%d duplicates\t%d adverts_expired\t%d link_downs\t%d link_recoveries\t%d resyncs\n",
		name, o.publish, elapsed.Nanoseconds()/int64(o.publish), recall3, lost3, extra3, lost2, lostUnacked, redelivered, dupes, expired, downs, recoveries, resyncs)
	fmt.Printf("# chaos: phase-3 recall %.4f (%d lost, %d extra of %d expected) after losing broker n%02d, its consumers (%d deliveries in flight), and link n%02d—n%02d mid-run; %d redelivered with %d lost, %d adverts expired, %d link downs, %d recoveries, %d resyncs\n",
		recall3, lost3, extra3, exp3Total, victim, inFlight, sever[0], sever[1], redelivered, lostUnacked, expired, downs, recoveries, resyncs)

	if o.check {
		if lost1 != 0 || extra1 != 0 {
			return fmt.Errorf("phase 1 (healthy) delivery mismatch: %d lost, %d extra", lost1, extra1)
		}
		if lostKSurv != 0 || extraKSurv != 0 {
			return fmt.Errorf("consumer-kill batch mismatch at survivors: %d lost, %d extra", lostKSurv, extraKSurv)
		}
		if lostKVict != 0 || extraKVict != 0 {
			return fmt.Errorf("consumer-kill batch mismatch at the victim's consumers: %d lost, %d extra", lostKVict, extraKVict)
		}
		if inFlight == 0 {
			return fmt.Errorf("consumer kill left nothing in flight: the workload routed no documents to the victim (rerun with more subs/docs)")
		}
		if extra2 != 0 {
			return fmt.Errorf("phase 2 (degraded) produced %d phantom deliveries", extra2)
		}
		if lostUnacked != 0 || extraUnacked != 0 {
			return fmt.Errorf("at-least-once contract broken across the crash: %d unacked deliveries lost, %d beyond the window", lostUnacked, extraUnacked)
		}
		if redelivered == 0 {
			return fmt.Errorf("recovery redelivered the window without Redelivered flags (got %d deliveries, 0 flagged)", postHealTotal)
		}
		if lost3 != 0 || extra3 != 0 {
			return fmt.Errorf("phase 3 (healed) delivery mismatch: %d lost, %d extra (recall %.4f)", lost3, extra3, recall3)
		}
		if expired == 0 {
			return fmt.Errorf("no adverts expired: soft-state eviction never fired")
		}
		if recoveries == 0 || resyncs == 0 {
			return fmt.Errorf("no link recoveries/resyncs recorded (recoveries %d, resyncs %d)", recoveries, resyncs)
		}
	}
	return nil
}
