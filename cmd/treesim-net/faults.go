package main

// Faults mode (-faults): the seeded crash-schedule checker. Where
// -chaos plays one fixed kill/sever/heal scenario, -faults replays a
// randomized interleaving of fault operations drawn from -seed against
// a live federation whose every link misbehaves at the message level
// (seeded duplicate + reorder + delay via fault.Transport), and checks
// the full correctness contract after every step:
//
//   - routing equivalence: each published batch reaches exactly the
//     subscriptions whose patterns match (ground truth recomputed from
//     pattern.Matches), recall 1.0 and zero extras over every node that
//     is up — duplicated and reordered wire messages must die in the
//     seen-set, never in the delivery log;
//   - fail-stop persistence: an injected disk fault latches the
//     victim's store, further at-least-once subscribes are refused with
//     ErrDegraded, and at-most-once traffic keeps flowing;
//   - ledger conservation across crashes: every at-least-once delivery
//     journaled before the crash and never acked comes back exactly
//     once (flagged Redelivered), and nothing journal-acked ever does;
//   - durable-churn recovery: the victim restarts with exactly the
//     journaled subscription set — churn lost to a failed journal is
//     resurrected or forgotten per the fail-stop contract, never
//     half-applied.
//
// Any failure prints the seed; rerunning with -faults -seed N replays
// the identical schedule, message for message. Drops are deliberately
// excluded here: with synchronous gossip and explicit advertisement
// rounds, a dropped message makes recall 1.0 unsound to assert. The
// drop fault is exercised by the fault package's own tests.
//
// Requires -threshold 2 (exact mode), like -chaos.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"treesim/internal/broker"
	"treesim/internal/fault"
	"treesim/internal/overlay"
	"treesim/internal/pattern"
	"treesim/internal/persist"
)

// fSub is one subscription's ground truth across the schedule.
type fSub struct {
	pat  *pattern.Pattern
	expr string
	node int
	id   uint64
	live bool
	alo  bool // at-least-once (victim-homed)
	// durable: the subscribe was journaled, so recovery restores it.
	durable bool
	// tomb: unsubscribed while the journal was failed — the removal was
	// lost, so recovery resurrects the subscription.
	tomb bool
	// outstanding/acked: per-document delivery counts journaled while
	// the store was healthy, keyed by canonical form. outstanding is
	// what a crash owes back; acked must never reappear.
	outstanding map[string]int
	acked       map[string]int
}

func runFaults(o options) error {
	if o.threshold != 2 {
		return fmt.Errorf("-faults requires -threshold 2 (exact mode): recall 1.0 is only an invariant without similarity clustering")
	}
	if o.nodes < 3 {
		return fmt.Errorf("-faults needs at least 3 nodes (have %d)", o.nodes)
	}
	const batch = 8
	const rounds = 30
	if o.publish < rounds*batch+batch {
		return fmt.Errorf("-faults needs at least %d documents (have %d)", rounds*batch+batch, o.publish)
	}
	failf := func(format string, args ...any) error {
		return fmt.Errorf(format+" — reproduce with: -faults -seed %d", append(args, o.seed)...)
	}

	w, err := buildWorkload(o)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(o.seed + 7))

	dir, err := os.MkdirTemp("", "treesim-faults-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	dataDir := filepath.Join(dir, "victim")

	// The victim journals through a fault-injectable filesystem with
	// sync-every-append, so an armed failpoint fires on the very next
	// journaled mutation — the schedule stays deterministic.
	inj := fault.NewInjector()
	fsys := fault.NewFS(inj)
	store, err := persist.Open(dataDir, persist.Options{FS: fsys, SyncEveryAppend: true})
	if err != nil {
		return err
	}
	var floor uint64

	nodeConfig := func(i int, minEpoch uint64) overlay.Config {
		return overlay.Config{
			ID:              fmt.Sprintf("n%02d", i),
			TTL:             o.ttl,
			SeenCapacity:    2 * (o.publish + 16),
			AdvertPolicy:    broker.Never{}, // explicit rounds; refresh keepalives still run
			MaxPatternNodes: o.maxPat,
			AdvertTTL:       time.Second,
			Maintenance:     50 * time.Millisecond,
			RetryBase:       50 * time.Millisecond,
			RetryMax:        500 * time.Millisecond,
			MinEpoch:        minEpoch,
		}
	}

	engines := make([]*broker.Engine, o.nodes)
	nodes := make([]*overlay.Node, o.nodes)
	for i := range nodes {
		engines[i] = broker.New(brokerConfig(o))
		if i == victim {
			engines[i].SetJournal(chaosJournal{store})
		}
		nodes[i] = overlay.New(engines[i], nodeConfig(i, 0))
	}
	victimUp := true
	defer func() {
		for i := range nodes {
			if i == victim && !victimUp {
				continue
			}
			nodes[i].Close()
			engines[i].Close()
		}
		store.Close()
	}()

	// Every link runs through a faulty transport: seeded duplication,
	// reordering, and delay on both adverts and publications. Victim
	// edges are rewired with fresh transports after each recovery;
	// retired ones stay in allFaulty so the final stats cover the run.
	chaosOpts := fault.TransportOptions{Duplicate: 0.35, Reorder: 0.35, DelayMax: 200 * time.Microsecond}
	type edgeLink struct{ ab, ba *fault.Transport }
	links := make([]edgeLink, len(w.edges))
	var allFaulty []*fault.Transport
	generation := int64(0)
	wire := func(ei int) error {
		e := w.edges[ei]
		seed := o.seed*1_000_000 + generation*1000 + int64(ei)*2
		ab := fault.NewTransport(overlay.Inproc{Peer: nodes[e[1]]}, seed, chaosOpts)
		ba := fault.NewTransport(overlay.Inproc{Peer: nodes[e[0]]}, seed+1, chaosOpts)
		if err := overlay.ConnectTransports(nodes[e[0]], nodes[e[1]], ab, ba); err != nil {
			return err
		}
		links[ei] = edgeLink{ab: ab, ba: ba}
		allFaulty = append(allFaulty, ab, ba)
		return nil
	}
	for ei := range w.edges {
		if err := wire(ei); err != nil {
			return err
		}
	}
	// flushAll quiesces the mesh: release reorder-held messages and wait
	// until no link has a delivery mid-execution. Releases can re-hold
	// on downstream links, and background keepalive senders can release
	// a held publication and still be mid-delivery when a single pass
	// returns — so pass until one full sweep observes every link idle.
	// Errors are ignored: a held message bound for a crashed victim
	// fails like a cut cable.
	flushAll := func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			for _, l := range links {
				if l.ab != nil {
					_ = l.ab.Flush()
					_ = l.ba.Flush()
				}
			}
			idle := true
			for _, l := range links {
				if l.ab != nil && (!l.ab.Idle() || !l.ba.Idle()) {
					idle = false
				}
			}
			if idle || time.Now().After(deadline) {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}

	subs := make([]*fSub, 0, len(w.subs)+8)
	addSub := func(p *pattern.Pattern, node int, faulted bool) error {
		expr := p.String()
		s := &fSub{pat: p, expr: expr, node: node, live: true}
		if node == victim {
			s.alo = true
			s.durable = !faulted
			s.outstanding = map[string]int{}
			s.acked = map[string]int{}
			id, err := engines[node].SubscribeOpts(expr, broker.SubscribeOptions{Mode: broker.AtLeastOnce})
			if err != nil {
				return err
			}
			s.id = id
		} else {
			id, err := engines[node].Subscribe(expr)
			if err != nil {
				return err
			}
			s.id = id
		}
		subs = append(subs, s)
		return nil
	}
	victimSubs := 0
	for i, p := range w.subs {
		if err := addSub(p, w.nodeOf[i], false); err != nil {
			return fmt.Errorf("subscribe %q: %w", w.exprs[i], err)
		}
		if w.nodeOf[i] == victim {
			victimSubs++
		}
	}
	if victimSubs == 0 {
		if err := addSub(w.qg.Generate(), victim, false); err != nil {
			return err
		}
	}
	for _, n := range nodes {
		if err := n.Advertise(); err != nil {
			return err
		}
	}
	flushAll()

	faulted := false
	docIdx := 0
	var published, delivered, faultsFired, crashes, recoveries, redeliveries int

	snapshot := func() error {
		st, err := engines[victim].State()
		if err != nil {
			return err
		}
		blob, err := broker.EncodeState(st)
		if err != nil {
			return err
		}
		env := persist.Snapshot{Broker: blob}
		env.AdvertVersion, env.PubSeq = nodes[victim].Epoch()
		payload, err := env.Encode()
		if err != nil {
			return err
		}
		upto := st.WalLSN
		if upto < floor {
			upto = floor // replayed records are in every post-recovery cut
		}
		return store.WriteSnapshot(payload, upto)
	}
	// An initial snapshot guarantees every recovery has an epoch
	// watermark to floor the restarted node's clock against.
	if err := snapshot(); err != nil {
		return err
	}

	// component labels every node with its connected component in the
	// topology minus the victim — while the victim is down, a document
	// can only reach subscribers in its origin's component (the victim
	// may be a cut vertex).
	component := func() []int {
		parent := make([]int, o.nodes)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, e := range w.edges {
			if !victimUp && (e[0] == victim || e[1] == victim) {
				continue
			}
			parent[find(e[0])] = find(e[1])
		}
		comp := make([]int, o.nodes)
		for i := range comp {
			comp[i] = find(i)
		}
		return comp
	}

	// waitRouted restores routing after a membership change. The table
	// keeps a single next hop per origin, so routes through a dead node
	// black-hole documents until the dead link is marked down and a
	// fresher advert moves them to a live one. One explicit advert round
	// from every up node floods fresh versions along live links; the
	// barrier then demands, for every up node and every same-component
	// subscribing origin, both freshness (that round's version or newer)
	// and usability — following the via chain hop by hop must reach the
	// origin over up nodes and healthy links, with live aggregates at
	// every hop and no cycle. Version freshness alone is not enough:
	// next-hop stickiness can hold a route on a link to the dead node
	// until link health catches up, with versions fully current the
	// whole time.
	waitRouted := func(label string) error {
		comp := component()
		want := map[int]uint64{}
		for i, n := range nodes {
			if i == victim && !victimUp {
				continue
			}
			if err := n.Advertise(); err != nil {
				return err
			}
			want[i] = n.Info().LocalAdvert.Version
		}
		needed := map[int]bool{}
		for _, s := range subs {
			if s.live && (s.node != victim || victimUp) {
				needed[s.node] = true
			}
		}
		type route struct {
			version uint64
			via     int // -1 when the via id is unknown or not a node
			pats    int
		}
		type nodeView struct {
			routes map[int]route // origin index -> route
			down   map[int]bool  // peer index -> link marked down
		}
		idx := map[string]int{}
		for i := 0; i < o.nodes; i++ {
			idx[fmt.Sprintf("n%02d", i)] = i
		}
		deadline := time.Now().Add(15 * time.Second)
		for {
			flushAll()
			views := make([]*nodeView, o.nodes)
			for i := range nodes {
				if i == victim && !victimUp {
					continue
				}
				inf := nodes[i].Info()
				v := &nodeView{routes: map[int]route{}, down: map[int]bool{}}
				for _, og := range inf.Origins {
					oi, ok := idx[og.Origin]
					if !ok {
						continue
					}
					vi, ok := idx[og.Via]
					if !ok {
						vi = -1
					}
					v.routes[oi] = route{version: og.Version, via: vi, pats: og.Patterns}
				}
				for _, p := range inf.DownPeers {
					if pi, ok := idx[p]; ok {
						v.down[pi] = true
					}
				}
				views[i] = v
			}
			// routed walks i's via chain for origin j: every hop must be
			// an up node holding j fresh with live aggregates, over a
			// link not marked down, reaching j without a cycle.
			routed := func(i, j int) bool {
				cur := i
				for steps := 0; cur != j; steps++ {
					if steps > o.nodes {
						return false // via cycle
					}
					v := views[cur]
					if v == nil {
						return false // chain enters a dead node
					}
					r, ok := v.routes[j]
					if !ok || r.version < want[j] || r.pats == 0 {
						return false // missing, stale, or tombstoned
					}
					if r.via < 0 || v.down[r.via] {
						return false // next hop unusable
					}
					cur = r.via
				}
				return true
			}
			converged := true
		check:
			for i := range nodes {
				if views[i] == nil {
					continue
				}
				for j := range needed {
					if j == i || comp[j] != comp[i] {
						continue
					}
					if !routed(i, j) {
						converged = false
						break check
					}
				}
			}
			if converged {
				return nil
			}
			if time.Now().After(deadline) {
				return failf("%s: routing convergence timed out", label)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	publishBatch := func() error {
		if docIdx+batch > len(w.docs) {
			return nil
		}
		docs := w.docs[docIdx : docIdx+batch]
		docIdx += batch
		origins := make([]int, 0, o.nodes)
		for i := 0; i < o.nodes; i++ {
			if i != victim || victimUp {
				origins = append(origins, i)
			}
		}
		docOrigin := make([]int, len(docs))
		docTrace := make([]string, len(docs))
		for i, d := range docs {
			docOrigin[i] = origins[i%len(origins)]
			_, _, tid, err := nodes[docOrigin[i]].PublishTraced(d)
			if err != nil {
				return fmt.Errorf("publish via n%02d: %w", docOrigin[i], err)
			}
			docTrace[i] = tid
		}
		published += len(docs)
		flushAll()

		// Ground truth for this batch: every (reachable live sub,
		// matching doc) pair exactly once. Reachable means the sub's
		// node is up and in the same component as the doc's origin.
		comp := component()
		exp := make(map[pairKey]int)
		for di, d := range docs {
			key := d.Clone().Canonicalize().String()
			for si, s := range subs {
				if s.live && (s.node != victim || victimUp) &&
					comp[s.node] == comp[docOrigin[di]] && pattern.Matches(d, s.pat) {
					exp[pairKey{sub: si, doc: key}]++
				}
			}
		}
		if os.Getenv("FAULTS_DEBUG") != "" {
			fmt.Printf("## drain begins at=%d\n", time.Now().UnixNano())
		}
		got := make(map[pairKey]int)
		for si, s := range subs {
			if !s.live || (s.node == victim && !victimUp) {
				continue
			}
			r, err := engines[s.node].DrainBatch(s.id, 0, 0)
			if err != nil {
				return fmt.Errorf("drain sub %d at n%02d: %w", si, s.node, err)
			}
			for _, dv := range r.Deliveries {
				t := engines[s.node].Document(dv.Doc)
				if t == nil {
					return fmt.Errorf("delivered doc %d not retained at n%02d", dv.Doc, s.node)
				}
				key := t.Clone().Canonicalize().String()
				got[pairKey{sub: si, doc: key}]++
				delivered++
				if dv.Redelivered {
					return failf("sub %d saw a Redelivered flag outside a recovery window", si)
				}
				if s.node == victim && s.alo && !faulted {
					s.outstanding[key]++
				}
			}
			if s.alo && len(r.Deliveries) > 0 && rng.Float64() < 0.6 {
				if _, err := engines[s.node].Ack(s.id, r.Cursor); err != nil {
					return fmt.Errorf("ack sub %d: %w", si, err)
				}
				if s.node == victim && !faulted {
					for k, n := range s.outstanding {
						s.acked[k] += n
					}
					s.outstanding = map[string]int{}
				}
			}
		}
		if _, lost, extra := compare(exp, got); lost != 0 || extra != 0 {
			if os.Getenv("FAULTS_DEBUG") != "" {
				// Two docs in one batch can canonicalize identically, so a
				// key maps to every doc index (and origin) sharing it.
				keyDocs := map[string][]int{}
				for di, d := range docs {
					k := d.Clone().Canonicalize().String()
					keyDocs[k] = append(keyDocs[k], di)
				}
				perDoc := map[string]int{}
				for k, n := range exp {
					if got[k] < n {
						perDoc[k.doc] += n - got[k]
					}
				}
				for k, n := range perDoc {
					var origins []string
					for _, di := range keyDocs[k] {
						origins = append(origins, fmt.Sprintf("doc %d@n%02d", di, docOrigin[di]))
					}
					fmt.Printf("## lost doc %s pairs=%d key=%.40q\n", strings.Join(origins, ", "), n, k)
				}
				for di, d := range docs {
					if perDoc[d.Clone().Canonicalize().String()] == 0 {
						continue
					}
					for i := range nodes {
						if i == victim && !victimUp {
							continue
						}
						for _, sp := range nodes[i].TraceSpans(docTrace[di]) {
							fmt.Printf("## span doc=%d n%02d from=%q seq=%d deliveries=%d fwd=%v at=%d\n",
								di, i, sp.From, sp.Seq, sp.Deliveries, sp.ForwardedTo, sp.StartUnixNS)
						}
					}
				}
				for k, n := range exp {
					if got[k] < n {
						s := subs[k.sub]
						fmt.Printf("## lost: sub %d node n%02d expr %q (alo=%v live=%v)\n", k.sub, s.node, s.expr, s.alo, s.live)
					}
				}
				for k, n := range got {
					if exp[k] < n {
						s := subs[k.sub]
						fmt.Printf("## extra: sub %d node n%02d expr %q\n", k.sub, s.node, s.expr)
					}
				}
				for i := range nodes {
					if i == victim && !victimUp {
						continue
					}
					inf := nodes[i].Info()
					fmt.Printf("## n%02d ttlDrops=%d sendErr=%d expired=%d linkDowns=%d downPeers=%v busyRej=%d peerBusy=%d dups=%d\n",
						i, inf.TTLDrops, inf.SendErrors, inf.AdvertsExpired, inf.LinkDowns, inf.DownPeers, inf.BusyRejected, inf.PeerBusy, inf.Duplicates)
				}
			}
			return failf("routing divergence on batch ending at doc %d: %d lost, %d extra", docIdx, lost, extra)
		}
		return nil
	}

	churn := func() error {
		if rng.Intn(2) == 0 {
			n := rng.Intn(o.nodes)
			if n == victim && !victimUp {
				n = (victim + 1) % o.nodes
			}
			p := w.qg.Generate()
			if n == victim && faulted {
				// Fail-stop contract: a degraded broker refuses new
				// at-least-once work rather than promising durability it
				// cannot journal.
				if _, err := engines[victim].SubscribeOpts(p.String(), broker.SubscribeOptions{Mode: broker.AtLeastOnce}); !errors.Is(err, broker.ErrDegraded) {
					return failf("degraded victim accepted an at-least-once subscribe (err=%v), want ErrDegraded", err)
				}
				id, err := engines[victim].Subscribe(p.String())
				if err != nil {
					return err
				}
				subs = append(subs, &fSub{pat: p, expr: p.String(), node: victim, id: id, live: true})
			} else if err := addSub(p, n, faulted); err != nil {
				return err
			}
			if err := nodes[n].Advertise(); err != nil {
				return err
			}
			flushAll()
			return nil
		}
		var candidates []int
		for si, s := range subs {
			if s.live && (s.node != victim || victimUp) {
				candidates = append(candidates, si)
			}
		}
		if len(candidates) == 0 {
			return nil
		}
		si := candidates[rng.Intn(len(candidates))]
		s := subs[si]
		if !engines[s.node].Unsubscribe(s.id) {
			return fmt.Errorf("unsubscribe %d at n%02d: not live", s.id, s.node)
		}
		s.live = false
		if s.node == victim && faulted && s.durable {
			s.tomb = true // the unsub was never journaled; recovery revives it
		} else {
			s.durable = false
		}
		if err := nodes[s.node].Advertise(); err != nil {
			return err
		}
		flushAll()
		return nil
	}

	injectFault := func() error {
		points := []string{fault.PointWALWrite, fault.PointWALSync}
		modes := []fault.Mode{fault.Fail, fault.Short, fault.NoSpace}
		point := points[rng.Intn(len(points))]
		inj.Arm(point, fault.Rule{Mode: modes[rng.Intn(len(modes))]})
		// Trigger with a throwaway subscribe: its journal append hits the
		// failpoint and latches the store.
		p, err := pattern.Parse("/zz/fault-trigger")
		if err != nil {
			return err
		}
		id, err := engines[victim].Subscribe(p.String())
		if err != nil {
			return fmt.Errorf("trigger subscribe: %w", err)
		}
		if !store.Failed() {
			return failf("armed %s but the store is still healthy", point)
		}
		if !engines[victim].Degraded() {
			return failf("store failed but the victim engine is not degraded")
		}
		// A sync-point fault means the frame hit the file intact — this
		// harness crashes the process, not the power — so the trigger
		// subscribe itself replays on recovery.
		subs = append(subs, &fSub{pat: p, expr: p.String(), node: victim, id: id,
			live: true, durable: point == fault.PointWALSync})
		faulted = true
		faultsFired++
		return nil
	}

	crash := func() error {
		// No shutdown path runs; the store stays open with whatever the
		// WAL already holds — a SIGKILL's view of disk.
		nodes[victim].Close()
		engines[victim].Close()
		victimUp = false
		crashes++
		// Survivors must reroute around the dead node before exactness
		// is asserted again.
		return waitRouted("post-crash")
	}

	recover := func() error {
		store2, err := persist.Open(dataDir, persist.Options{FS: fsys, SyncEveryAppend: true})
		if err != nil {
			return err
		}
		payload, ok, err := store2.LoadSnapshot()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("recovery: no snapshot in %s", dataDir)
		}
		env, err := persist.DecodeSnapshot(payload)
		if err != nil {
			return err
		}
		st, err := broker.DecodeState(env.Broker)
		if err != nil {
			return err
		}
		eng2, err := broker.Restore(brokerConfig(o), st)
		if err != nil {
			return err
		}
		// The epoch floor must clear every value any prior incarnation
		// emitted, not just the (possibly stale) snapshot watermarks:
		// boot-epoch records in the WAL raise it past earlier recoveries,
		// or back-to-back reboots off one snapshot would floor at the
		// identical padded epoch and replay a seq range peers' seen-sets
		// have already absorbed.
		minEpoch := env.AdvertVersion
		if env.PubSeq > minEpoch {
			minEpoch = env.PubSeq
		}
		if err := store2.Replay(func(rec persist.Record) error {
			switch rec.Op {
			case persist.OpSubscribe:
				return eng2.ApplySubscribed(rec.ID, rec.Expr, rec.Group, broker.DeliveryMode(rec.Mode))
			case persist.OpUnsubscribe:
				return eng2.ApplyUnsubscribed(rec.ID)
			case persist.OpRebuild:
				return eng2.ApplyRebuilt(rec.Groups, rec.Reps)
			case persist.OpDeliver:
				return eng2.ApplyDelivered(rec.Seq, rec.XML, rec.Subs, rec.Cursors, rec.Comms)
			case persist.OpAck:
				return eng2.ApplyAcked(rec.ID, rec.Cursor)
			case persist.OpDrained:
				return eng2.ApplyDrained(rec.ID, rec.Cursor)
			case persist.OpBootEpoch:
				if rec.Seq > minEpoch {
					minEpoch = rec.Seq
				}
				return nil
			default:
				return fmt.Errorf("unknown wal op %q", rec.Op)
			}
		}); err != nil {
			return err
		}
		eng2.SetJournal(chaosJournal{store2})
		store = store2
		floor = store.LastLSN()
		engines[victim] = eng2
		nodes[victim] = overlay.New(eng2, nodeConfig(victim, minEpoch))
		av, ps := nodes[victim].Epoch()
		if ps > av {
			av = ps
		}
		if _, err := store2.Append(persist.Record{Op: persist.OpBootEpoch, Seq: av}); err != nil {
			return fmt.Errorf("journal boot epoch: %w", err)
		}
		generation++
		for ei, e := range w.edges {
			if e[0] == victim || e[1] == victim {
				if err := wire(ei); err != nil {
					return err
				}
			}
		}
		victimUp = true
		faulted = false
		recoveries++

		// 1. Durable-churn recovery: the journaled subscription set comes
		// back exactly — tombstoned unsubs revive, unjournaled subs are
		// forgotten.
		var wantIDs []uint64
		for _, s := range subs {
			if s.node != victim {
				continue
			}
			if s.durable {
				if s.tomb {
					s.tomb = false
					s.live = true
				}
				if s.live {
					wantIDs = append(wantIDs, s.id)
				}
			} else {
				s.live = false
			}
		}
		sort.Slice(wantIDs, func(i, j int) bool { return wantIDs[i] < wantIDs[j] })
		var gotIDs []uint64
		for _, g := range eng2.CommunityIDs() {
			gotIDs = append(gotIDs, g...)
		}
		sort.Slice(gotIDs, func(i, j int) bool { return gotIDs[i] < gotIDs[j] })
		if fmt.Sprint(gotIDs) != fmt.Sprint(wantIDs) {
			return failf("recovered live set %v, want %v (fired: %v)", gotIDs, wantIDs, inj.Fired())
		}

		// Convergence: every node must route for every origin that still
		// holds live subscriptions before exactness is asserted again.
		if err := waitRouted("post-recovery"); err != nil {
			return err
		}

		// 2. Ledger conservation: the recovered broker owes each
		// at-least-once subscription its journaled-unacked window —
		// exactly once per delivery, flagged Redelivered — and must never
		// resurrect anything journal-acked.
		for si, s := range subs {
			if s.node != victim || !s.alo || !s.live {
				continue
			}
			got := map[string]int{}
			flagged, total := 0, 0
			for {
				r, err := eng2.DrainBatch(s.id, 0, 0)
				if err != nil {
					return fmt.Errorf("post-recovery drain sub %d: %w", si, err)
				}
				if len(r.Deliveries) == 0 {
					break
				}
				for _, dv := range r.Deliveries {
					t := eng2.Document(dv.Doc)
					if t == nil {
						return fmt.Errorf("post-recovery doc %d not retained", dv.Doc)
					}
					got[t.Clone().Canonicalize().String()]++
					total++
					if dv.Redelivered {
						flagged++
					}
				}
				if _, err := eng2.Ack(s.id, r.Cursor); err != nil {
					return fmt.Errorf("post-recovery ack sub %d: %w", si, err)
				}
			}
			want, owed := map[pairKey]int{}, 0
			gotPairs := map[pairKey]int{}
			for k, n := range s.outstanding {
				want[pairKey{sub: si, doc: k}] = n
				owed += n
			}
			for k, n := range got {
				gotPairs[pairKey{sub: si, doc: k}] = n
			}
			if _, lost, extra := compare(want, gotPairs); lost != 0 || extra != 0 {
				return failf("ledger conservation broken for sub %d: %d unacked deliveries lost, %d beyond the window (acked resurrected or phantom)", si, lost, extra)
			}
			if owed > 0 && flagged == 0 {
				return failf("sub %d's recovered window (%d deliveries) carried no Redelivered flags", si, owed)
			}
			redeliveries += total
			for k, n := range s.outstanding {
				s.acked[k] += n
			}
			s.outstanding = map[string]int{}
		}
		return nil
	}

	start := time.Now()
	for round := 0; round < rounds; round++ {
		r := rng.Intn(100)
		if os.Getenv("FAULTS_DEBUG") != "" {
			fmt.Printf("## round %d r=%d victimUp=%v faulted=%v docIdx=%d\n", round, r, victimUp, faulted, docIdx)
		}
		var err error
		switch {
		case r < 40:
			err = publishBatch()
		case r < 60:
			err = churn()
		case r < 70:
			if victimUp && !faulted {
				err = snapshot()
			} else {
				err = publishBatch()
			}
		case r < 80:
			switch {
			case victimUp && !faulted:
				err = injectFault()
			case victimUp:
				err = crash()
			default:
				err = recover()
			}
		case r < 90:
			if victimUp {
				err = crash()
			} else {
				err = recover()
			}
		default:
			if !victimUp {
				err = recover()
			} else {
				err = publishBatch()
			}
		}
		if err != nil {
			return err
		}
	}
	// Every schedule must exercise the whole contract at least once,
	// whatever the dice said.
	if !victimUp {
		if err := recover(); err != nil {
			return err
		}
	}
	if faultsFired == 0 {
		if err := injectFault(); err != nil {
			return err
		}
	}
	if faulted {
		if err := crash(); err != nil {
			return err
		}
		if err := recover(); err != nil {
			return err
		}
	}
	if crashes == 0 {
		if err := crash(); err != nil {
			return err
		}
		if err := recover(); err != nil {
			return err
		}
	}
	// Final verified batch on the healed federation.
	if err := publishBatch(); err != nil {
		return err
	}
	elapsed := time.Since(start)

	var dups, reorders uint64
	for _, tr := range allFaulty {
		_, d, r := tr.Stats()
		dups += d
		reorders += r
	}
	if dups == 0 || reorders == 0 {
		return failf("fault schedule idle: %d duplicates, %d reorders injected", dups, reorders)
	}

	name := fmt.Sprintf("topo=%s/nodes=%d/subs=%d/seed=%d", o.topology, o.nodes, len(subs), o.seed)
	perPub := int64(0)
	if published > 0 {
		perPub = elapsed.Nanoseconds() / int64(published)
	}
	fmt.Printf("BenchmarkOverlayFaults/%s \t%d\t%d ns/op\t%d deliveries\t%d faults\t%d crashes\t%d recoveries\t%d redelivered\t%d wire_dups\t%d wire_reorders\t%.4f recall\n",
		name, published, perPub, delivered, faultsFired, crashes, recoveries, redeliveries, dups, reorders, 1.0)
	fmt.Printf("# faults: seed %d ran %d rounds clean — %d docs, %d deliveries, %d disk faults, %d crashes, %d recoveries, %d redelivered; links injected %d duplicates and %d reorders\n",
		o.seed, rounds, published, delivered, faultsFired, crashes, recoveries, redeliveries, dups, reorders)
	fmt.Printf("# replay this exact schedule: treesim-net -faults -seed %d -nodes %d -topology %s -subs %d\n",
		o.seed, o.nodes, o.topology, o.subs)
	return nil
}
