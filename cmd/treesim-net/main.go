// Command treesim-net measures the overlay federation on an in-process
// multi-broker topology: it spins K broker nodes wired line/star/ring/
// random, loads a DTD-derived subscription workload, publishes a
// document stream round-robin from every node, and compares the
// content-based overlay against two references:
//
//   - a flooding baseline (same topology, aggregates ignored) for the
//     inter-broker forward count, and
//   - a single broker holding every subscription for delivery ground
//     truth (recall/lost/extra are multiset comparisons over
//     (subscription, document) pairs).
//
// In-process links run the real wire codec (encode+decode per message),
// so the measured message counts are exactly what HTTP peers would
// exchange.
//
// The default -threshold 2 runs every broker in exact mode (similarity
// never reaches 2, so each subscription is its own community): local
// delivery is exact matching, the overlay's covering aggregates are
// recall-preserving by construction, and the run must achieve recall
// 1.0 with zero lost deliveries — the harness exits nonzero otherwise
// (see -check). Lower thresholds turn on similarity clustering; each
// broker then routes per community representative and the harness
// simply reports the recall/precision trade honestly.
//
// Output is `go test -bench` shaped, so it pipes straight into
// cmd/benchjson:
//
//	go run ./cmd/treesim-net | go run ./cmd/benchjson -o BENCH_overlay.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"treesim/internal/broker"
	"treesim/internal/cluster"
	"treesim/internal/core"
	"treesim/internal/dtd"
	"treesim/internal/metrics"
	"treesim/internal/overlay"
	"treesim/internal/pattern"
	"treesim/internal/querygen"
	"treesim/internal/telemetry"
	"treesim/internal/xmlgen"
	"treesim/internal/xmltree"
)

type options struct {
	nodes     int
	topology  string
	degree    int
	subs      int
	publish   int
	seed      int64
	dtdName   string
	threshold float64
	ttl       int
	maxPat    int
	check     bool
	minSave   float64

	// Workload shape. The paper's querygen defaults produce very broad
	// subscriptions (every document matches ~half of them), a regime
	// where flooding is near-optimal and no router can save much; the
	// harness defaults are tuned toward selective interests, where
	// content-based forwarding earns its keep.
	stopProb  float64
	branch    float64
	wildcard  float64
	desc      float64
	values    int
	valueProb float64
	placement string

	// Chaos mode (see chaos.go): kill/restart a broker and sever/heal a
	// link mid-workload, then assert the overlay self-heals to exact
	// delivery.
	chaos bool

	// Faults mode (see faults.go): a seeded randomized crash schedule
	// over lossy-link transports and injected disk faults; any failing
	// seed replays exactly.
	faults bool
}

func main() {
	var o options
	flag.IntVar(&o.nodes, "nodes", 8, "number of brokers")
	flag.StringVar(&o.topology, "topology", "random", "line|star|ring|random")
	flag.IntVar(&o.degree, "degree", 3, "average degree for -topology random")
	flag.IntVar(&o.subs, "subs", 256, "total subscriptions (spread round-robin)")
	flag.IntVar(&o.publish, "publish", 2000, "documents to publish (round-robin origin)")
	flag.Int64Var(&o.seed, "seed", 1, "workload and topology seed")
	flag.StringVar(&o.dtdName, "dtd", "media", "workload DTD: media|news|business")
	flag.Float64Var(&o.threshold, "threshold", 2, "community similarity threshold (2 = exact mode)")
	flag.IntVar(&o.ttl, "ttl", 16, "forwarding hop budget")
	flag.IntVar(&o.maxPat, "advert-max-nodes", 0, "coarsen advertised patterns to N nodes (0: exact covers)")
	flag.BoolVar(&o.check, "check", true, "exit nonzero unless recall is 1.0 and savings beat -min-savings")
	flag.Float64Var(&o.minSave, "min-savings", 0.30, "required forward savings vs flooding (with -check)")
	flag.Float64Var(&o.stopProb, "stop-prob", 0.05, "querygen chain stop probability (lower = deeper, more selective)")
	flag.Float64Var(&o.branch, "branch-prob", 0.3, "querygen branching probability")
	flag.Float64Var(&o.wildcard, "wildcard-prob", 0.05, "querygen wildcard probability")
	flag.Float64Var(&o.desc, "descendant-prob", 0.05, "querygen descendant probability")
	flag.IntVar(&o.values, "values", 40, "shared text-value vocabulary size (0 disables value constraints)")
	flag.Float64Var(&o.valueProb, "value-prob", 0.6, "probability a text-bearing pattern element gains a value constraint")
	flag.StringVar(&o.placement, "placement", "clustered", "subscriber placement: clustered|roundrobin")
	flag.BoolVar(&o.chaos, "chaos", false, "run the fault-injection scenario (crash+recover a broker, sever+heal a link) instead of the steady-state benchmark")
	flag.BoolVar(&o.faults, "faults", false, "run the seeded crash-schedule checker (randomized churn/publish/disk-fault/crash/recover interleavings over duplicating+reordering links); failures reproduce with the same -seed")
	flag.Parse()

	exec := run
	if o.chaos {
		exec = runChaos
	}
	if o.faults {
		exec = runFaults
	}
	if err := exec(o); err != nil {
		fmt.Fprintln(os.Stderr, "treesim-net:", err)
		os.Exit(1)
	}
}

// pairKey identifies one (subscription, document) delivery for multiset
// comparison; documents are keyed by canonical structure so duplicates
// generated by the workload collapse consistently on both sides.
type pairKey struct {
	sub int
	doc string
}

// runResult is one topology execution.
type runResult struct {
	forwards   uint64
	duplicates uint64
	deliveries map[pairKey]int
	delivered  int
	advertised uint64 // advert messages sent
	advertPats int    // patterns in the final local adverts, all nodes
	elapsed    time.Duration

	// Publication tracing: every traced publish's forwarding tree is
	// re-assembled from the per-node span rings after the run (what an
	// operator does across daemons with GET /trace/{id}) and checked
	// for structural consistency.
	tracesChecked int
	traceProblems []string
}

// workload is everything one execution needs: the generated
// subscription patterns, the document stream, the topology edges, and
// the subscriber placement. The generator is kept so chaos runs can
// draw extra mid-run subscriptions from the same distribution.
type workload struct {
	d      *dtd.DTD
	qg     *querygen.Generator
	subs   []*pattern.Pattern
	exprs  []string
	docs   []*xmltree.Tree
	edges  [][2]int
	nodeOf []int
}

func buildWorkload(o options) (*workload, error) {
	var d *dtd.DTD
	switch o.dtdName {
	case "media":
		d = dtd.Media()
	case "news":
		d = dtd.NITFLike()
	case "business":
		d = dtd.XCBLLike()
	default:
		return nil, fmt.Errorf("unknown dtd %q", o.dtdName)
	}

	qopts := querygen.Defaults(o.seed)
	qopts.StopProb = o.stopProb
	qopts.BranchProb = o.branch
	qopts.WildcardProb = o.wildcard
	qopts.DescendantProb = o.desc
	xopts := xmlgen.Options{Seed: o.seed + 1}
	if o.values > 0 {
		// A shared text vocabulary: subscriptions constrain leaf values
		// (the paper's Figure 1 "Mozart"), documents draw from the same
		// pool — the workload's main selectivity lever.
		vocab := make([]string, o.values)
		for i := range vocab {
			vocab[i] = fmt.Sprintf("v%03d", i)
		}
		qopts.ValueProb = o.valueProb
		qopts.Values = vocab
		xopts.EmitText = true
		xopts.Values = vocab
	}
	w := &workload{d: d, qg: querygen.New(d, qopts)}
	w.subs = make([]*pattern.Pattern, o.subs)
	w.exprs = make([]string, o.subs)
	for i := range w.subs {
		w.subs[i] = w.qg.Generate()
		w.exprs[i] = w.subs[i].String()
	}
	w.docs = xmlgen.New(d, xopts).GenerateN(o.publish)
	var err error
	if w.edges, err = buildEdges(o); err != nil {
		return nil, err
	}
	if w.nodeOf, err = placeSubscribers(o, d, w.subs, xopts); err != nil {
		return nil, err
	}
	return w, nil
}

func run(o options) error {
	w, err := buildWorkload(o)
	if err != nil {
		return err
	}
	exprs, docs, edges, nodeOf := w.exprs, w.docs, w.edges, w.nodeOf

	truth, err := singleBroker(o, exprs, docs)
	if err != nil {
		return fmt.Errorf("single-broker reference: %w", err)
	}
	ovl, err := runTopology(o, edges, exprs, nodeOf, docs, false)
	if err != nil {
		return fmt.Errorf("overlay run: %w", err)
	}
	fld, err := runTopology(o, edges, exprs, nodeOf, docs, true)
	if err != nil {
		return fmt.Errorf("flooding run: %w", err)
	}

	matched, lost, extra := compare(truth.deliveries, ovl.deliveries)
	recall := 1.0
	if truth.delivered > 0 {
		recall = float64(matched) / float64(truth.delivered)
	}
	savings := 0.0
	if fld.forwards > 0 {
		savings = 1 - float64(ovl.forwards)/float64(fld.forwards)
	}
	_, floodLost, floodExtra := compare(fld.deliveries, ovl.deliveries)

	name := fmt.Sprintf("topo=%s/nodes=%d/subs=%d/docs=%d", o.topology, o.nodes, o.subs, o.publish)
	if o.threshold != 2 {
		name += fmt.Sprintf("/threshold=%g", o.threshold)
	}
	if o.maxPat > 0 {
		name += fmt.Sprintf("/coarse=%d", o.maxPat)
	}
	if o.placement != "clustered" {
		name += "/placement=" + o.placement
	}
	perPub := func(r runResult) int64 {
		if o.publish == 0 {
			return 0
		}
		return r.elapsed.Nanoseconds() / int64(o.publish)
	}
	fmt.Printf("BenchmarkOverlayNet/%s \t%d\t%d ns/op\t%d forwards\t%d deliveries\t%d advert_msgs\t%d advert_patterns\t%.4f recall\t%d lost\t%d extra\t%.1f savings_pct\t%d traces_ok\n",
		name, o.publish, perPub(ovl), ovl.forwards, ovl.delivered, ovl.advertised, ovl.advertPats, recall, lost, extra, savings*100, ovl.tracesChecked-len(ovl.traceProblems))
	fmt.Printf("BenchmarkOverlayNetFlood/%s \t%d\t%d ns/op\t%d forwards\t%d deliveries\t%d duplicates\n",
		name, o.publish, perPub(fld), fld.forwards, fld.delivered, fld.duplicates)
	fmt.Printf("BenchmarkOverlayNetTruth/%s \t%d\t%d ns/op\t%d deliveries\n",
		name, o.publish, perPub(truth), truth.delivered)

	fmt.Printf("# overlay: %d forwards vs %d flooding (%.1f%% saved), recall %.4f (%d lost, %d extra of %d ground-truth deliveries), %d advert msgs carrying %d patterns for %d raw subs\n",
		ovl.forwards, fld.forwards, savings*100, recall, lost, extra, truth.delivered, ovl.advertised, ovl.advertPats, o.subs)
	fmt.Printf("# traces: %d forwarding trees assembled from per-node spans, %d inconsistent\n",
		ovl.tracesChecked, len(ovl.traceProblems))
	for _, p := range ovl.traceProblems {
		fmt.Printf("# TRACE PROBLEM: %s\n", p)
	}
	if floodLost != 0 || floodExtra != 0 {
		fmt.Printf("# WARNING: overlay and flooding delivery sets differ (lost %d, extra %d vs flood)\n", floodLost, floodExtra)
	}

	if o.check {
		if lost != 0 {
			return fmt.Errorf("lost %d deliveries vs single-broker ground truth (recall %.4f)", lost, recall)
		}
		if extra != 0 {
			return fmt.Errorf("%d extra deliveries vs single-broker ground truth (duplicate routing)", extra)
		}
		if floodLost != 0 || floodExtra != 0 {
			return fmt.Errorf("overlay and flooding delivery sets differ (lost %d, extra %d)", floodLost, floodExtra)
		}
		if savings < o.minSave {
			return fmt.Errorf("savings %.1f%% below required %.1f%%", savings*100, o.minSave*100)
		}
		if len(ovl.traceProblems) > 0 {
			return fmt.Errorf("%d of %d publication traces inconsistent: %s",
				len(ovl.traceProblems), ovl.tracesChecked, ovl.traceProblems[0])
		}
		if ovl.tracesChecked != o.publish {
			return fmt.Errorf("traced %d of %d publications", ovl.tracesChecked, o.publish)
		}
	}
	return nil
}

// buildEdges returns the undirected topology as index pairs.
func buildEdges(o options) ([][2]int, error) {
	k := o.nodes
	if k < 2 {
		return nil, fmt.Errorf("need at least 2 nodes, have %d", k)
	}
	var edges [][2]int
	switch o.topology {
	case "line":
		for i := 0; i+1 < k; i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
	case "ring":
		for i := 0; i+1 < k; i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
		edges = append(edges, [2]int{k - 1, 0})
	case "star":
		for i := 1; i < k; i++ {
			edges = append(edges, [2]int{0, i})
		}
	case "random":
		rng := rand.New(rand.NewSource(o.seed + 2))
		have := make(map[[2]int]bool)
		add := func(a, b int) {
			if a > b {
				a, b = b, a
			}
			if a != b && !have[[2]int{a, b}] {
				have[[2]int{a, b}] = true
				edges = append(edges, [2]int{a, b})
			}
		}
		for i := 1; i < k; i++ {
			add(i, rng.Intn(i)) // random spanning tree: always connected
		}
		want := k * o.degree / 2
		if max := k * (k - 1) / 2; want > max {
			want = max
		}
		for len(edges) < want {
			add(rng.Intn(k), rng.Intn(k))
		}
	default:
		return nil, fmt.Errorf("unknown topology %q", o.topology)
	}
	return edges, nil
}

func brokerConfig(o options) broker.Config {
	return broker.Config{
		Threshold:     o.threshold,
		QueueCapacity: o.publish + 16,
		DocCache:      o.publish + 16,
		// Remote injection is non-blocking (overload sheds with 503);
		// the harness publishes synchronously and must never shed, so
		// size the ingest queue past the whole stream.
		IngestQueue: o.publish + 64,
		Rebuild:     broker.Never{},
	}
}

// placeSubscribers decides which broker hosts each subscription.
// "roundrobin" scatters them (the locality worst case: every broker
// holds a slice of every interest, so almost every document interests
// almost every broker). "clustered" shards by the paper's own
// machinery: an estimator trained on a held-out document sample scores
// pairwise subscription similarity, greedy clustering forms interest
// communities, and whole communities land on the least-loaded broker —
// the similarity-driven subscriber sharding a scaled federation would
// run.
func placeSubscribers(o options, d *dtd.DTD, subs []*pattern.Pattern, xopts xmlgen.Options) ([]int, error) {
	nodeOf := make([]int, len(subs))
	switch o.placement {
	case "roundrobin":
		for i := range nodeOf {
			nodeOf[i] = i % o.nodes
		}
		return nodeOf, nil
	case "clustered":
		xopts.Seed = o.seed + 3 // held-out sample, not the published stream
		sample := xmlgen.New(d, xopts).GenerateN(200)
		est := core.NewEstimator(core.Config{Seed: o.seed})
		est.ObserveTrees(sample)
		sim := est.SimilarityMatrix(metrics.M3, subs)
		groups, _ := cluster.GreedySeeded(sim, 0.5)
		load := make([]int, o.nodes)
		for _, g := range groups {
			least := 0
			for n := 1; n < o.nodes; n++ {
				if load[n] < load[least] {
					least = n
				}
			}
			for _, s := range g {
				nodeOf[s] = least
			}
			load[least] += len(g)
		}
		return nodeOf, nil
	default:
		return nil, fmt.Errorf("unknown placement %q", o.placement)
	}
}

// runTopology executes one federation run and collects its delivery
// multiset.
func runTopology(o options, edges [][2]int, exprs []string, nodeOf []int, docs []*xmltree.Tree, flood bool) (runResult, error) {
	res := runResult{deliveries: make(map[pairKey]int)}
	nodes := make([]*overlay.Node, o.nodes)
	for i := range nodes {
		eng := broker.New(brokerConfig(o))
		defer eng.Close()
		// The flooding baseline runs untraced so its forward counts and
		// timings stay a pure reference; the overlay run retains every
		// publication's spans (the ring is sized past the stream).
		traceCap := o.publish + 16
		if flood {
			traceCap = -1
		}
		nodes[i] = overlay.New(eng, overlay.Config{
			ID:              fmt.Sprintf("n%02d", i),
			TTL:             o.ttl,
			SeenCapacity:    2 * (o.publish + 16),
			AdvertPolicy:    broker.Never{}, // harness advertises explicitly once loaded
			MaxPatternNodes: o.maxPat,
			Flood:           flood,
			TraceCapacity:   traceCap,
		})
		defer nodes[i].Close()
	}
	for _, e := range edges {
		if err := overlay.Connect(nodes[e[0]], nodes[e[1]]); err != nil {
			return res, err
		}
	}

	// Load subscriptions onto their placed brokers (nodeOf, from
	// placeSubscribers: similarity-clustered by default) and remember
	// each one's home.
	type home struct {
		node int
		id   uint64
	}
	homes := make([]home, len(exprs))
	for i, expr := range exprs {
		n := nodeOf[i]
		id, err := nodes[n].Engine().Subscribe(expr)
		if err != nil {
			return res, fmt.Errorf("subscribe %q: %w", expr, err)
		}
		homes[i] = home{node: n, id: id}
	}
	// One advertisement round; synchronous gossip converges before the
	// call returns, so routing state is complete when publishing starts.
	for _, n := range nodes {
		if err := n.Advertise(); err != nil {
			return res, err
		}
	}

	start := time.Now()
	traceIDs := make([]string, 0, len(docs))
	for i, doc := range docs {
		_, _, id, err := nodes[i%o.nodes].PublishTraced(doc)
		if err != nil {
			return res, fmt.Errorf("publish %d: %w", i, err)
		}
		if id != "" {
			traceIDs = append(traceIDs, id)
		}
	}
	res.elapsed = time.Since(start)

	// Account: forwards and advert traffic from node counters, the
	// delivery multiset from draining every subscription and resolving
	// each delivery's document out of the home engine's retention ring.
	for _, n := range nodes {
		info := n.Info()
		res.forwards += info.ForwardsSent
		res.duplicates += info.Duplicates
		res.advertised += info.AdvertsSent
		for _, c := range info.LocalAdvert.Communities {
			res.advertPats += len(c.Patterns)
		}
	}
	for gi, h := range homes {
		eng := nodes[h.node].Engine()
		ds, err := eng.Drain(h.id, 0, 0)
		if err != nil {
			return res, err
		}
		for _, dv := range ds {
			t := eng.Document(dv.Doc)
			if t == nil {
				return res, fmt.Errorf("delivered doc %d not retained at node %d", dv.Doc, h.node)
			}
			// Canonicalize mutates in place and the retained tree is
			// shared with the engine's still-running ingest pipeline —
			// key a clone.
			res.deliveries[pairKey{sub: gi, doc: t.Clone().Canonicalize().String()}]++
			res.delivered++
		}
	}
	res.tracesChecked, res.traceProblems = verifyTraces(nodes, traceIDs)
	return res, nil
}

// verifyTraces re-assembles each publication's forwarding tree from
// the per-node span rings and checks it is a consistent tree: exactly
// one origin span (no arrival link), at most one span per node, and
// every non-origin span's arrival edge matching a parent span that
// lists the node among its forwards. Returns how many traces were
// checked and a bounded list of inconsistencies.
func verifyTraces(nodes []*overlay.Node, ids []string) (int, []string) {
	checked := 0
	var problems []string
	complain := func(format string, args ...any) {
		if len(problems) < 5 {
			problems = append(problems, fmt.Sprintf(format, args...))
		}
	}
	for _, id := range ids {
		var spans []telemetry.Span
		for _, n := range nodes {
			spans = append(spans, n.TraceSpans(id)...)
		}
		checked++
		byNode := make(map[string]telemetry.Span, len(spans))
		origins := 0
		dup := false
		for _, sp := range spans {
			if _, seen := byNode[sp.Node]; seen {
				complain("trace %s: node %s holds two spans", id, sp.Node)
				dup = true
				break
			}
			byNode[sp.Node] = sp
			if sp.From == "" {
				origins++
			}
		}
		if dup {
			continue
		}
		if origins != 1 {
			complain("trace %s: %d origin spans across %d spans, want 1", id, origins, len(spans))
			continue
		}
		for _, sp := range spans {
			if sp.From == "" {
				continue
			}
			parent, ok := byNode[sp.From]
			if !ok {
				complain("trace %s: span at %s arrived from %s, which holds no span", id, sp.Node, sp.From)
				continue
			}
			listed := false
			for _, to := range parent.ForwardedTo {
				if to == sp.Node {
					listed = true
					break
				}
			}
			if !listed {
				complain("trace %s: %s's span omits %s from its forwards %v", id, sp.From, sp.Node, parent.ForwardedTo)
			}
		}
	}
	return checked, problems
}

// singleBroker runs the all-subscriptions-on-one-broker reference.
func singleBroker(o options, exprs []string, docs []*xmltree.Tree) (runResult, error) {
	res := runResult{deliveries: make(map[pairKey]int)}
	eng := broker.New(brokerConfig(o))
	defer eng.Close()
	ids := make([]uint64, len(exprs))
	for i, expr := range exprs {
		id, err := eng.Subscribe(expr)
		if err != nil {
			return res, err
		}
		ids[i] = id
	}
	start := time.Now()
	for i, doc := range docs {
		if _, err := eng.Publish(doc); err != nil {
			return res, fmt.Errorf("publish %d: %w", i, err)
		}
	}
	res.elapsed = time.Since(start)
	for gi, id := range ids {
		ds, err := eng.Drain(id, 0, 0)
		if err != nil {
			return res, err
		}
		for _, dv := range ds {
			t := eng.Document(dv.Doc)
			if t == nil {
				return res, fmt.Errorf("reference doc %d not retained", dv.Doc)
			}
			res.deliveries[pairKey{sub: gi, doc: t.Clone().Canonicalize().String()}]++
			res.delivered++
		}
	}
	return res, nil
}

// compare returns the multiset intersection size, deliveries present in
// want but missing from got (lost), and deliveries in got beyond want
// (extra).
func compare(want, got map[pairKey]int) (matched, lost, extra int) {
	for k, w := range want {
		g := got[k]
		if g < w {
			matched += g
			lost += w - g
		} else {
			matched += w
		}
	}
	for k, g := range got {
		if w := want[k]; g > w {
			extra += g - w
		}
	}
	return matched, lost, extra
}
