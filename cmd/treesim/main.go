// Command treesim builds a document synopsis over a corpus of XML files
// and answers tree-pattern selectivity and similarity queries — the
// paper's system as a command-line tool.
//
// Usage:
//
//	treesim [--corpus dir | --load file] [--rep hashes|sets|counters]
//	        [--size N] [--metric m1|m2|m3] [--compress α] [--stats]
//	        [--save file] PATTERN [PATTERN...]
//
// With one pattern, prints its estimated selectivity. With two or more,
// prints each pattern's selectivity and the pairwise similarity matrix
// under the chosen metric. --save persists the synopsis; --load resumes
// from a saved synopsis (optionally ingesting more documents from
// --corpus first).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"treesim/internal/core"
	"treesim/internal/corpus"
	"treesim/internal/matchset"
	"treesim/internal/metrics"
	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

func main() {
	var (
		corpus   = flag.String("corpus", "", "directory of XML documents")
		loadPath = flag.String("load", "", "load a previously saved synopsis")
		savePath = flag.String("save", "", "save the synopsis after ingesting")
		rep      = flag.String("rep", "hashes", "matching-set representation: hashes, sets, counters")
		size     = flag.Int("size", 1000, "per-node hash size / reservoir size")
		metric   = flag.String("metric", "m3", "similarity metric: m1, m2, m3")
		compress = flag.Float64("compress", 1.0, "compress the synopsis to this ratio before querying")
		stats    = flag.Bool("stats", false, "print synopsis statistics")
		seed     = flag.Int64("seed", 1, "sampling seed")
	)
	flag.Parse()
	if (*corpus == "" && *loadPath == "") || (flag.NArg() == 0 && *savePath == "") {
		fmt.Fprintln(os.Stderr, "usage: treesim [--corpus dir | --load file] [flags] PATTERN [PATTERN...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var kind matchset.Kind
	switch strings.ToLower(*rep) {
	case "hashes":
		kind = matchset.KindHashes
	case "sets":
		kind = matchset.KindSets
	case "counters":
		kind = matchset.KindCounters
	default:
		fatal("unknown representation %q", *rep)
	}
	var m metrics.Metric
	switch strings.ToLower(*metric) {
	case "m1":
		m = metrics.M1
	case "m2":
		m = metrics.M2
	case "m3":
		m = metrics.M3
	default:
		fatal("unknown metric %q", *metric)
	}

	pats := make([]*pattern.Pattern, flag.NArg())
	for i, arg := range flag.Args() {
		p, err := pattern.Parse(arg)
		if err != nil {
			fatal("%v", err)
		}
		pats[i] = p
	}

	var est *core.Estimator
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fatal("%v", err)
		}
		est, err = core.LoadEstimator(f)
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("loaded synopsis with %d observed documents from %s\n",
			est.DocsObserved(), *loadPath)
	} else {
		est = core.NewEstimator(core.Config{
			Representation: kind,
			HashCapacity:   *size,
			SetCapacity:    *size,
			Seed:           *seed,
		})
	}
	if *corpus != "" {
		n, err := feedCorpus(est, *corpus)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("observed %d documents from %s\n", n, *corpus)
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal("%v", err)
		}
		if err := est.Save(f); err != nil {
			fatal("%v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("synopsis saved to %s\n", *savePath)
	}

	if *compress < 1 {
		achieved := est.Compress(*compress)
		fmt.Printf("synopsis compressed to %.1f%% of its size\n", 100*achieved)
	}
	if *stats {
		st := est.Stats()
		fmt.Printf("synopsis: %d nodes, %d edges, %d labels, %d entries (|HS| = %d)\n",
			st.Nodes, st.Edges, st.Labels, st.Entries, st.Size())
	}

	for i, p := range pats {
		fmt.Printf("P(%s) = %.4f\n", p, est.Selectivity(p))
		_ = i
	}
	if len(pats) > 1 {
		fmt.Printf("\nsimilarity matrix (%s):\n", m)
		sim := est.SimilarityMatrix(m, pats)
		for i := range sim {
			cells := make([]string, len(sim[i]))
			for j := range sim[i] {
				cells[j] = fmt.Sprintf("%.3f", sim[i][j])
			}
			fmt.Printf("  p%d: %s\n", i, strings.Join(cells, "  "))
		}
	}
}

func feedCorpus(est *core.Estimator, dir string) (int, error) {
	docs, err := corpus.LoadDir(dir, xmltree.ParseOptions{})
	if err != nil {
		return 0, err
	}
	for _, t := range docs {
		est.ObserveTree(t)
	}
	return len(docs), nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "treesim: "+format+"\n", args...)
	os.Exit(1)
}
