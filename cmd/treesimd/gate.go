package main

// Server gate: the listener binds before recovery so the daemon is
// live (answering /healthz) the moment the process is up, while
// readiness is withheld until the engine has recovered and the full
// handler is installed. Load balancers key off the status code;
// humans and probes get a JSON reason.

import (
	"expvar"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

const (
	phaseStarting = iota // recovering snapshot/WAL, handler not installed
	phaseReady           // serving
	phaseDraining        // shutdown in progress, reads still allowed
)

// serverGate is the daemon's root handler. It owns /healthz
// (liveness always answers; readiness is the status code) and routes
// everything else to the installed handler according to phase:
// starting refuses all traffic, draining refuses state-changing and
// federation requests but lets consumers keep reading.
type serverGate struct {
	phase  atomic.Int32
	reason atomic.Pointer[string]
	inner  atomic.Pointer[http.Handler]
	// degraded, when set, is consulted in phaseReady: a true result
	// turns /healthz into 503 "degraded" (with the returned reason)
	// while every other route keeps serving — the daemon is wounded,
	// not dead, and load balancers should drain it without killing the
	// consumers still reading from it.
	degraded atomic.Pointer[func() (bool, string)]
}

func newServerGate() *serverGate {
	g := &serverGate{}
	g.setStarting("initializing")
	return g
}

func (g *serverGate) setStarting(reason string) {
	g.reason.Store(&reason)
	g.phase.Store(phaseStarting)
}

// setReady installs the full handler and flips readiness on. The
// handler is stored before the phase so no request can observe
// phaseReady with a nil handler.
func (g *serverGate) setReady(h http.Handler) {
	g.inner.Store(&h)
	g.phase.Store(phaseReady)
}

// setDegradedCheck installs the health probe consulted while ready.
func (g *serverGate) setDegradedCheck(f func() (bool, string)) {
	g.degraded.Store(&f)
}

func (g *serverGate) setDraining() {
	reason := "shutting down"
	g.reason.Store(&reason)
	g.phase.Store(phaseDraining)
}

func (g *serverGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	phase := g.phase.Load()
	if r.URL.Path == "/healthz" {
		g.serveHealthz(w, phase)
		return
	}
	switch phase {
	case phaseStarting:
		httpError(w, http.StatusServiceUnavailable, "starting: %s", g.reasonString())
		return
	case phaseDraining:
		if r.Method != http.MethodGet {
			httpError(w, http.StatusServiceUnavailable, "shutting down")
			return
		}
	}
	(*g.inner.Load()).ServeHTTP(w, r)
}

// serveHealthz reports liveness (it always answers) and readiness
// (200 only in phaseReady; otherwise 503 with the phase and reason so
// an operator can tell a recovering daemon from a draining one).
func (g *serverGate) serveHealthz(w http.ResponseWriter, phase int32) {
	switch phase {
	case phaseReady:
		if f := g.degraded.Load(); f != nil {
			if bad, reason := (*f)(); bad {
				writeJSON(w, http.StatusServiceUnavailable,
					map[string]string{"status": "degraded", "reason": reason})
				return
			}
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	case phaseDraining:
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "draining", "reason": g.reasonString()})
	default:
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "starting", "reason": g.reasonString()})
	}
}

func (g *serverGate) reasonString() string {
	if p := g.reason.Load(); p != nil {
		return *p
	}
	return ""
}

// serveDebug exposes net/http/pprof and expvar on their own listener,
// kept off the public mux so profiling endpoints are never reachable
// through the service port. Returns the bound address.
func serveDebug(addr string, logger *slog.Logger) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "treesimd debug: /debug/pprof/ /debug/vars\n")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			logger.Warn("debug listener exited", "err", err.Error())
		}
	}()
	return ln.Addr().String(), nil
}
