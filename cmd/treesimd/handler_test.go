package main

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"treesim/internal/broker"
	"treesim/internal/telemetry"
)

// testHandler builds the real daemon mux over a fresh standalone engine
// — the same wiring main uses, minus the listener.
func testHandler(t *testing.T) (http.Handler, *broker.Engine, *telemetry.EventRing) {
	t.Helper()
	reg := telemetry.NewRegistry()
	eng := broker.New(broker.Config{Telemetry: reg})
	t.Cleanup(func() { eng.Close() })
	events := telemetry.NewEventRing(16)
	logger := slog.New(slog.DiscardHandler)
	return newHandler(eng, nil, reg, events, 1<<20, time.Second, broker.AtMostOnce, logger), eng, events
}

func do(t *testing.T, h http.Handler, method, path, contentType, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// errorBody decodes the daemon's JSON error shape and fails the test if
// the response is not {"error": "<nonempty>"}.
func errorBody(t *testing.T, w *httptest.ResponseRecorder) string {
	t.Helper()
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("error response Content-Type = %q, want application/json", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body is not JSON: %v (%q)", err, w.Body.String())
	}
	if e.Error == "" {
		t.Fatalf("error body carries no error message: %q", w.Body.String())
	}
	return e.Error
}

// TestHandlerErrorPaths is the table-driven sweep over the read and
// write surfaces' failure modes: every case must answer with the right
// status code and the daemon's uniform {"error": ...} JSON shape.
func TestHandlerErrorPaths(t *testing.T) {
	h, eng, _ := testHandler(t)
	if _, err := eng.Subscribe("/a/b"); err != nil { // id 1, keeps /deliveries/1 valid
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		method     string
		path       string
		ctype      string
		body       string
		wantStatus int
		wantSubstr string
	}{
		{"trace without overlay", "GET", "/trace/deadbeefdeadbeef", "", "", http.StatusNotFound, "tracing runs on the overlay"},
		{"doc absent", "GET", "/doc/999999", "", "", http.StatusNotFound, "not retained"},
		{"doc malformed seq", "GET", "/doc/xyz", "", "", http.StatusBadRequest, "bad seq"},
		{"subscribe malformed json", "POST", "/subscribe", "application/json", "{not json", http.StatusBadRequest, "bad request body"},
		{"subscribe bad pattern", "POST", "/subscribe", "application/json", `{"pattern": "///["}`, http.StatusBadRequest, ""},
		{"unsubscribe unknown id", "DELETE", "/subscribe/424242", "", "", http.StatusNotFound, "unknown subscription"},
		{"unsubscribe malformed id", "DELETE", "/subscribe/zz", "", "", http.StatusBadRequest, "bad id"},
		{"publish malformed xml", "POST", "/publish", "", "<unclosed>", http.StatusBadRequest, ""},
		{"publish malformed json batch", "POST", "/publish", "application/json", "{not json", http.StatusBadRequest, "bad request body"},
		{"publish json batch wrong shape", "POST", "/publish", "application/json", `42`, http.StatusBadRequest, "want a JSON array"},
		{"publish json batch all invalid", "POST", "/publish", "application/json", `["<unclosed>"]`, http.StatusBadRequest, ""},
		{"deliveries unknown id", "GET", "/deliveries/424242", "", "", http.StatusNotFound, ""},
		{"deliveries malformed max", "GET", "/deliveries/1?max=-3", "", "", http.StatusBadRequest, "bad max"},
		{"deliveries malformed wait", "GET", "/deliveries/1?wait=later", "", "", http.StatusBadRequest, "bad wait"},
		{"explain malformed xml", "POST", "/explain", "", "<unclosed>", http.StatusBadRequest, ""},
		{"introspect routes without overlay", "GET", "/introspect/routes", "", "", http.StatusNotFound, "routing tables live on the overlay"},
		{"introspect links without overlay", "GET", "/introspect/links", "", "", http.StatusNotFound, "links live on the overlay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var w *httptest.ResponseRecorder
			if tc.name == "publish json batch all invalid" {
				w = do(t, h, tc.method, tc.path, tc.ctype, tc.body)
				// Batch responses carry the error inside the summary, not
				// the uniform shape — assert the status and first_error.
				if w.Code != tc.wantStatus {
					t.Fatalf("status = %d, want %d (%s)", w.Code, tc.wantStatus, w.Body.String())
				}
				var resp batchResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					t.Fatal(err)
				}
				if resp.Errors != 1 || resp.FirstError == "" || resp.Published != 0 {
					t.Fatalf("batch error accounting wrong: %+v", resp)
				}
				return
			}
			w = do(t, h, tc.method, tc.path, tc.ctype, tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (%s)", w.Code, tc.wantStatus, w.Body.String())
			}
			msg := errorBody(t, w)
			if tc.wantSubstr != "" && !strings.Contains(msg, tc.wantSubstr) {
				t.Fatalf("error %q does not mention %q", msg, tc.wantSubstr)
			}
		})
	}
}

// TestStatsDuringDrain pins the gate contract: a draining daemon still
// answers reads (GET /stats) but refuses writes with the JSON error
// shape, and /healthz reports the draining phase.
func TestStatsDuringDrain(t *testing.T) {
	h, _, _ := testHandler(t)
	gate := newServerGate()
	gate.setReady(h)
	gate.setDraining()

	w := do(t, gate, "GET", "/stats", "", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /stats while draining = %d, want 200 (%s)", w.Code, w.Body.String())
	}
	var st broker.Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats body not decodable while draining: %v", err)
	}

	w = do(t, gate, "POST", "/publish", "", "<a/>")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("POST /publish while draining = %d, want 503", w.Code)
	}
	if msg := errorBody(t, w); !strings.Contains(msg, "shutting down") {
		t.Fatalf("drain refusal message = %q", msg)
	}

	w = do(t, gate, "GET", "/healthz", "", "")
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("healthz while draining = %d %q", w.Code, w.Body.String())
	}
}

// TestExplainEndpointAgreesWithPublish is the HTTP-level differential
// check: POST /explain's predicted delivery set must match what POST
// /publish of the same document then reports and what the consumers
// actually drain.
func TestExplainEndpointAgreesWithPublish(t *testing.T) {
	h, _, _ := testHandler(t)
	subIDs := map[uint64]bool{}
	for _, pat := range []string{"/x/y", "/x[y]", "/z", "//w"} {
		w := do(t, h, "POST", "/subscribe", "application/json", `{"pattern": "`+pat+`"}`)
		if w.Code != http.StatusOK {
			t.Fatalf("subscribe %s: %d %s", pat, w.Code, w.Body.String())
		}
		var resp struct {
			ID uint64 `json:"id"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		subIDs[resp.ID] = true
	}

	const docXML = "<x><y><w/></y></x>"
	w := do(t, h, "POST", "/explain", "", docXML)
	if w.Code != http.StatusOK {
		t.Fatalf("explain: %d %s", w.Code, w.Body.String())
	}
	var ex struct {
		Local broker.Explanation `json:"local"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.Local.Deliveries) == 0 {
		t.Fatalf("explain predicted no deliveries for %s: %s", docXML, w.Body.String())
	}

	w = do(t, h, "POST", "/publish", "", docXML)
	if w.Code != http.StatusOK {
		t.Fatalf("publish: %d %s", w.Code, w.Body.String())
	}
	var pub publishResponse
	if err := json.Unmarshal(w.Body.Bytes(), &pub); err != nil {
		t.Fatal(err)
	}
	if pub.Deliveries != len(ex.Local.Deliveries) {
		t.Fatalf("publish delivered to %d queues, explain predicted %d (%v)",
			pub.Deliveries, len(ex.Local.Deliveries), ex.Local.Deliveries)
	}
	for _, id := range ex.Local.Deliveries {
		if !subIDs[id] {
			t.Fatalf("explain predicted delivery to unknown subscription %d", id)
		}
		w := do(t, h, "GET", "/deliveries/"+strconvU(id), "", "")
		if w.Code != http.StatusOK {
			t.Fatalf("deliveries/%d: %d", id, w.Code)
		}
		var dr struct {
			Deliveries []broker.Delivery `json:"deliveries"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &dr); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, d := range dr.Deliveries {
			found = found || d.Doc == pub.Seq
		}
		if !found {
			t.Fatalf("subscription %d drained nothing for doc %d despite prediction", id, pub.Seq)
		}
	}
}

func strconvU(v uint64) string {
	const digits = "0123456789"
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = digits[v%10]
		v /= 10
	}
	return string(b[i:])
}

// TestEventsEndpoint pins the /events contract: an empty ring answers
// an empty JSON list, and captured WARN records surface with their
// attrs and lifetime total.
func TestEventsEndpoint(t *testing.T) {
	h, _, events := testHandler(t)
	w := do(t, h, "GET", "/events", "", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"events":[]`) {
		t.Fatalf("empty events = %d %q", w.Code, w.Body.String())
	}
	events.Add(telemetry.Event{Level: "WARN", Message: "link down", Attrs: map[string]string{"peer": "n2"}})
	w = do(t, h, "GET", "/events", "", "")
	var resp struct {
		Events []telemetry.Event `json:"events"`
		Total  uint64            `json:"total"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 1 || resp.Total != 1 {
		t.Fatalf("events = %+v", resp)
	}
	if e := resp.Events[0]; e.Message != "link down" || e.Attrs["peer"] != "n2" || e.Seq != 1 {
		t.Fatalf("event round-trip mangled: %+v", e)
	}
}

// TestIntrospectEndpointsStandalone exercises the broker-backed
// introspection surfaces end to end through the mux.
func TestIntrospectEndpointsStandalone(t *testing.T) {
	h, _, _ := testHandler(t)
	for _, pat := range []string{"/a/b", "/a/b[c]"} {
		if w := do(t, h, "POST", "/subscribe", "application/json", `{"pattern": "`+pat+`"}`); w.Code != http.StatusOK {
			t.Fatalf("subscribe: %d", w.Code)
		}
	}
	w := do(t, h, "GET", "/introspect/communities", "", "")
	if w.Code != http.StatusOK {
		t.Fatalf("communities: %d", w.Code)
	}
	var comms struct {
		Communities []broker.CommunityInfo `json:"communities"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &comms); err != nil {
		t.Fatal(err)
	}
	if len(comms.Communities) == 0 {
		t.Fatalf("no communities introspected: %s", w.Body.String())
	}
	w = do(t, h, "GET", "/introspect/subscriptions", "", "")
	var subs struct {
		Subscriptions []broker.SubscriptionInfo `json:"subscriptions"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &subs); err != nil {
		t.Fatal(err)
	}
	if len(subs.Subscriptions) != 2 {
		t.Fatalf("introspected %d subscriptions, want 2", len(subs.Subscriptions))
	}
}
