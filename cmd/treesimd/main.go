// Command treesimd is the live content-based pub/sub broker daemon: an
// HTTP front end over internal/broker, federating with peer daemons
// through internal/overlay. Consumers subscribe with tree patterns,
// publishers POST XML documents, and the broker maintains semantic
// communities incrementally so routing cost scales with the number of
// communities rather than subscriptions. With -peers (or -federate) the
// daemon joins a broker overlay: it gossips similarity-aggregated
// subscription advertisements and forwards publications only toward
// peers whose aggregates match.
//
// API (all bodies JSON unless noted):
//
//	POST   /subscribe          {"pattern": "/a/b[c]",
//	                            "mode": "at-least-once"}  → {"id": 7, "mode": "..."}
//	                           (mode optional; default from -delivery-mode)
//	DELETE /subscribe/{id}                                → 204
//	POST   /publish            raw XML document           → routing summary
//	POST   /publish            JSON ["<a/>", ...] or {"docs": [...]}
//	                           (Content-Type: application/json)
//	                                                      → aggregate batch summary
//	GET    /deliveries/{id}?max=100&wait=5s               → {"deliveries": [...], "mode": ...,
//	                                                         "gap": N (at-most-once: evictions since last poll),
//	                                                         "cursor"/"committed" (at-least-once)}
//	POST   /ack/{id}           {"cursor": N}              → {"acked": M}
//	                           (at-least-once only: commits every delivery with cursor ≤ N)
//	GET    /doc/{seq}                                     → raw XML of a recent publish
//	GET    /stats                                         → broker stats
//	GET    /metrics                                       → Prometheus text exposition
//	GET    /trace/{id}                                    → this node's spans for a publication trace
//	POST   /explain            raw XML document           → routing decision record (nothing published)
//	GET    /introspect/communities                        → clustering snapshot (id, shard, rep, members)
//	GET    /introspect/subscriptions                      → live subscriptions with queue depth
//	GET    /introspect/routes                             → per-origin advert routing table (federated)
//	GET    /introspect/links                              → per-link health and backoff (federated)
//	GET    /events                                        → recent WARN+ operational events (bounded ring)
//	GET    /healthz                                       → {"status":"ok"} when ready;
//	                                                        503 {"status":"starting"|"draining","reason":...}
//	POST   /peer/advert        wire.AdvertBatch           → 204   (federation)
//	POST   /peer/publish       wire.Publication           → 204   (federation)
//	GET    /peer/info                                     → overlay node snapshot
//
// /deliveries long-polls: with wait set and an empty queue it blocks up
// to that duration for the first delivery. Flags configure the
// estimator, clustering, queue and federation knobs; see -h.
//
// Every subsystem reports into one telemetry registry, so GET /metrics
// is the single scrape covering broker, persistence, and overlay (the
// metric catalogue is in the README's Observability section). With
// -debug-addr a second listener serves net/http/pprof and expvar,
// kept off the public port. Federated daemons stamp each locally
// published document with a trace ID (returned in the publish
// response); GET /trace/{id} on each node returns the hop spans it
// retains, from which a forwarding tree can be assembled.
//
// The listener binds before recovery: /healthz answers immediately,
// 503 {"status":"starting"} while the snapshot and WAL replay, 200
// {"status":"ok"} once serving, 503 {"status":"draining"} during
// shutdown.
//
// With -data-dir the broker is crash-safe: committed subscription churn
// is write-ahead logged, snapshots are taken periodically
// (-snapshot-interval) and on shutdown, and a restarted daemon —
// including after SIGKILL — recovers its subscriptions, community
// partition, estimator synopsis and overlay epoch watermarks from the
// directory before serving.
//
// Shutdown (SIGINT/SIGTERM) is ordered so a loaded daemon exits
// cleanly: first new publishes, subscribes and peer traffic are
// refused (503) and the overlay node detaches, then the engine closes —
// draining the ingest pipeline and closing every delivery queue, which
// wakes all long-polls — then the final snapshot is taken from the now-
// quiescent engine and the data dir closes, and only then the HTTP
// server waits out the in-flight handlers.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"treesim/internal/broker"
	"treesim/internal/core"
	"treesim/internal/fault"
	"treesim/internal/metrics"
	"treesim/internal/overlay"
	"treesim/internal/persist"
	"treesim/internal/telemetry"
	"treesim/internal/xmltree"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8690", "listen address")
		rep       = flag.String("representation", "hashes", "matching-set representation: counters|sets|hashes")
		hcap      = flag.Int("hash-capacity", 1000, "per-node sample bound for hashes")
		scap      = flag.Int("set-capacity", 1000, "reservoir size for sets")
		seed      = flag.Int64("seed", 1, "sampling seed")
		metric    = flag.String("metric", "m3", "clustering metric: m1|m2|m3")
		threshold = flag.Float64("threshold", 0.5, "community similarity threshold")
		shards    = flag.Int("shards", 0, "matching/delivery shards (0: scale with GOMAXPROCS, <0: single shard)")
		queueCap  = flag.Int("queue", 256, "per-consumer delivery queue capacity")
		dmode     = flag.String("delivery-mode", "at-most-once", "default delivery contract for new subscriptions: at-most-once|at-least-once")
		ackLease  = flag.Duration("ack-lease", 30*time.Second, "redelivery lease for drained-but-unacked at-least-once deliveries")
		ingestQ   = flag.Int("ingest-queue", 1024, "publish ingest pipeline depth")
		maxStale  = flag.Int("rebuild-stale", 0, "rebuild after N mutations (0: use -rebuild-fraction)")
		fraction  = flag.Float64("rebuild-fraction", 0.25, "rebuild when churn exceeds this fraction of live subscriptions")
		maxBody   = flag.Int64("max-body", 1<<20, "maximum request body bytes")

		federate  = flag.Bool("federate", false, "serve overlay peer endpoints even with no -peers")
		peers     = flag.String("peers", "", "comma-separated peer base URLs to federate with (implies -federate)")
		nodeID    = flag.String("id", "", "overlay node id (default: the listen address)")
		peerAddr  = flag.String("peer-addr", "", "callback base URL advertised to peers (default: http://<listen address>)")
		ttl       = flag.Int("ttl", 16, "forwarding hop budget for locally published documents")
		advStale  = flag.Int("advert-stale", 0, "re-advertise after N subscription mutations (0: 10% churn, min 1)")
		advMaxPat = flag.Int("advert-max-nodes", 0, "coarsen advertised patterns to at most N nodes (0: exact covers)")
		advertTTL = flag.Duration("advert-ttl", time.Minute, "soft-state TTL for peer adverts (negative disables expiry and keepalive refresh)")
		peerTO    = flag.Duration("peer-timeout", 5*time.Second, "per-request timeout for overlay peer HTTP calls")

		dataDir   = flag.String("data-dir", "", "durable state directory (snapshot + WAL); empty runs in-memory only")
		snapEvery = flag.Duration("snapshot-interval", time.Minute, "periodic snapshot period with -data-dir (0 disables; shutdown still snapshots)")
		walSync   = flag.Bool("wal-sync", false, "fsync the WAL after every subscription mutation (power-loss durability)")
		faultDisk = flag.String("fault-disk", "", "TESTING ONLY: inject disk faults, comma-separated point:mode[@nth] terms (e.g. wal.sync:fail@2); points wal.{write,sync,truncate}, snapshot.{write,sync,rename}; modes fail|short|enospc")

		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (empty disables)")
		traceCap  = flag.Int("trace-capacity", 0, "publication-trace spans retained per node (0: default 4096, negative disables tracing)")

		logLevel  = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
		logFormat = flag.String("log-format", "text", "log record format: text|json")
		eventCap  = flag.Int("event-capacity", 0, "operational events retained for GET /events (0: default 256)")
	)
	flag.Parse()

	cfg, err := buildConfig(*rep, *metric, *hcap, *scap, *seed, *threshold, *queueCap, *ingestQ, *maxStale, *fraction)
	if err != nil {
		fmt.Fprintln(os.Stderr, "treesimd:", err)
		os.Exit(2)
	}
	cfg.Shards = *shards
	cfg.AckLease = *ackLease
	defaultMode, err := broker.ParseDeliveryMode(*dmode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "treesimd:", err)
		os.Exit(2)
	}
	// One registry for the whole process: engine, store, and overlay
	// node all report into it, and GET /metrics is the single scrape.
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg

	// Bind before recovery: the daemon is live (healthz answers) while
	// readiness waits for the engine. Serving starts immediately behind
	// the gate, which refuses everything but /healthz until setReady.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "treesimd:", err)
		os.Exit(1)
	}
	// The logger and event ring exist before any subsystem: every record
	// flows through one handler chain (level filter + format + WARN-tee
	// into the ring GET /events serves), stamped with the node identity.
	nodeName := *nodeID
	if nodeName == "" {
		nodeName = ln.Addr().String()
	}
	logger, events, err := buildLogger(*logLevel, *logFormat, *eventCap, nodeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "treesimd:", err)
		os.Exit(2)
	}
	cfg.Logger = logger.With("component", "broker")

	gate := newServerGate()
	srv := &http.Server{
		Handler: gate,
		// The daemon serves untrusted input: bound header reads and
		// idle keep-alives so dribbling clients cannot pin goroutines.
		// WriteTimeout stays above the 30s long-poll cap on /deliveries.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		WriteTimeout:      60 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	if *debugAddr != "" {
		dbg, err := serveDebug(*debugAddr, logger)
		if err != nil {
			fmt.Fprintln(os.Stderr, "treesimd:", err)
			os.Exit(1)
		}
		logger.Info("debug endpoints (pprof, expvar) up", "url", "http://"+dbg+"/debug/")
	}

	var (
		eng      *broker.Engine
		pers     *daemonPersist
		minEpoch uint64
	)
	if *dataDir != "" {
		var fsys persist.FS
		if *faultDisk != "" {
			inj, err := fault.ParseSpec(*faultDisk)
			if err != nil {
				fmt.Fprintln(os.Stderr, "treesimd:", err)
				os.Exit(2)
			}
			fsys = fault.NewFS(inj)
			logger.Warn("disk fault injection armed", "schedule", *faultDisk)
		}
		gate.setStarting(fmt.Sprintf("recovering snapshot and WAL from %s", *dataDir))
		pers, eng, minEpoch, err = openDataDir(*dataDir, cfg, *walSync, fsys, reg, logger.With("component", "persist"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "treesimd:", err)
			os.Exit(1)
		}
		go pers.run(*snapEvery)
	} else {
		if *faultDisk != "" {
			fmt.Fprintln(os.Stderr, "treesimd: -fault-disk requires -data-dir")
			os.Exit(2)
		}
		eng = broker.New(cfg)
	}
	defer eng.Close()

	var stopping atomic.Bool
	peerList := splitPeers(*peers)
	var node *overlay.Node
	if *federate || len(peerList) > 0 {
		ocfg := overlay.Config{
			ID:              *nodeID,
			Addr:            *peerAddr,
			TTL:             *ttl,
			MaxPatternNodes: *advMaxPat,
			AdvertTTL:       *advertTTL,
			MinEpoch:        minEpoch,
			Telemetry:       reg,
			TraceCapacity:   *traceCap,
			Logger:          logger.With("component", "overlay"),
		}
		if ocfg.ID == "" {
			ocfg.ID = ln.Addr().String()
		}
		if ocfg.Addr == "" {
			ocfg.Addr = "http://" + ln.Addr().String()
		}
		if *advStale > 0 {
			ocfg.AdvertPolicy = broker.Staleness{MaxStale: *advStale}
		}
		node = overlay.New(eng, ocfg)
		if pers != nil {
			pers.setNode(node)
		}
		for _, u := range peerList {
			go dialPeer(node, u, *peerTO, &stopping, logger)
		}
	}

	// Ready-phase health: a failed store (or a journal error latching
	// the engine degraded) turns /healthz into 503 "degraded" while the
	// daemon keeps serving reads and at-most-once traffic.
	persRef := pers
	engRef := eng
	gate.setDegradedCheck(func() (bool, string) {
		if persRef != nil && persRef.store.Failed() {
			return true, "persistent store failed (fail-stop); serving without durability"
		}
		if engRef.Degraded() {
			return true, "journal append failed; serving without durability"
		}
		return false, ""
	})
	gate.setReady(newHandler(eng, node, reg, events, *maxBody, *peerTO, defaultMode, logger))
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutdown signal, draining")
		// Ordered shutdown: refuse new ingress (drain gate), detach the
		// overlay (peer traffic answered 503, no further forwards), close
		// the engine — which waits out in-flight handlers' commits, drains
		// the ingest pipeline and closes every delivery queue, waking all
		// long-polls — and only then take the final snapshot and close the
		// store. The engine must close before the store: handlers already
		// past the drain gate can commit (and journal) churn right up to
		// Engine.Close, so snapshotting first would let acked churn
		// post-date the final snapshot and journal against a closed store.
		// Shutdown closes the listener right away, so Serve returns while
		// handlers may still be writing; main blocks on shutdownDone
		// rather than exiting under them.
		stopping.Store(true)
		gate.setDraining()
		if node != nil {
			node.Close()
		}
		eng.Close()
		if pers != nil {
			pers.shutdown()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
	}()
	mode := "standalone"
	if node != nil {
		mode = fmt.Sprintf("federated id=%s peers=%d", node.ID(), len(peerList))
	}
	logger.Info("listening", "addr", ln.Addr().String(),
		"representation", *rep, "metric", *metric, "threshold", *threshold, "mode", mode)
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "treesimd:", err)
		os.Exit(1)
	}
	if stopping.Load() {
		<-shutdownDone // let in-flight responses finish before exiting
	}
}

// dialPeer resolves a configured peer URL to its node id and links it,
// retrying while the peer daemon comes up.
func dialPeer(node *overlay.Node, base string, timeout time.Duration, stopping *atomic.Bool, logger *slog.Logger) {
	client := overlay.NewPeerClient(timeout)
	deadline := time.Now().Add(60 * time.Second)
	for !stopping.Load() {
		err := overlay.DialPeer(node, base, client)
		if err == nil {
			logger.Info("federated with peer", "peer", base)
			return
		}
		if time.Now().After(deadline) {
			logger.Warn("giving up on peer", "peer", base, "err", err.Error())
			return
		}
		time.Sleep(500 * time.Millisecond)
	}
}

// buildLogger assembles the daemon's one logging pipeline: a level-
// filtered text or JSON handler on stderr, wrapped so WARN+ records
// also land in the bounded event ring behind GET /events (capture into
// the ring ignores the console level — a daemon logging at error still
// retains warnings for scrapes). Every record carries the node id.
func buildLogger(level, format string, eventCap int, node string) (*slog.Logger, *telemetry.EventRing, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, nil, fmt.Errorf("unknown log level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, nil, fmt.Errorf("unknown log format %q", format)
	}
	events := telemetry.NewEventRing(eventCap)
	return slog.New(telemetry.TeeEvents(h, events, slog.LevelWarn)).With("node", node), events, nil
}

func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func buildConfig(rep, metric string, hcap, scap int, seed int64, threshold float64, queueCap, ingestQ, maxStale int, fraction float64) (broker.Config, error) {
	cfg := broker.Config{
		Estimator:     core.Config{HashCapacity: hcap, SetCapacity: scap, Seed: seed},
		Threshold:     threshold,
		QueueCapacity: queueCap,
		IngestQueue:   ingestQ,
	}
	switch strings.ToLower(rep) {
	case "counters":
		cfg.Estimator.Representation = core.Counters
	case "sets":
		cfg.Estimator.Representation = core.Sets
	case "hashes":
		cfg.Estimator.Representation = core.Hashes
	default:
		return cfg, fmt.Errorf("unknown representation %q", rep)
	}
	switch strings.ToLower(metric) {
	case "m1":
		cfg.Metric = metrics.M1
	case "m2":
		cfg.Metric = metrics.M2
	case "m3":
		cfg.Metric = metrics.M3
	default:
		return cfg, fmt.Errorf("unknown metric %q", metric)
	}
	if maxStale > 0 {
		cfg.Rebuild = broker.Staleness{MaxStale: maxStale}
	} else {
		cfg.Rebuild = broker.DirtyFraction{Fraction: fraction, MinStale: 64}
	}
	return cfg, nil
}

// publishResponse is the POST /publish payload: the local routing
// summary plus how many overlay links the document was forwarded on
// and, when federated with tracing enabled, the trace ID under which
// GET /trace/{id} retrieves the hop spans at every broker it reached.
type publishResponse struct {
	broker.PublishResult
	Forwarded int    `json:"forwarded"`
	Trace     string `json:"trace,omitempty"`
}

// newHandler wires the broker (and overlay node, when federated) into a
// net/http mux (method-and-path patterns, Go ≥ 1.22).
func newHandler(eng *broker.Engine, node *overlay.Node, reg *telemetry.Registry, events *telemetry.EventRing, maxBody int64, peerTimeout time.Duration, defaultMode broker.DeliveryMode, logger *slog.Logger) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /subscribe", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Pattern string `json:"pattern"`
			Mode    string `json:"mode"`
		}
		if err := json.NewDecoder(bodyReader(r, maxBody)).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		mode := defaultMode
		if req.Mode != "" {
			var err error
			if mode, err = broker.ParseDeliveryMode(req.Mode); err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
		id, err := eng.SubscribeOpts(req.Pattern, broker.SubscribeOptions{Mode: mode})
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "mode": mode.String()})
	})

	mux.HandleFunc("DELETE /subscribe/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad id: %v", err)
			return
		}
		if !eng.Unsubscribe(id) {
			httpError(w, http.StatusNotFound, "unknown subscription %d", id)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /publish", func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
			handlePublishBatch(w, r, eng, node, maxBody)
			return
		}
		resp := publishResponse{}
		var err error
		if node != nil {
			var t *xmltree.Tree
			t, err = xmltree.Parse(bodyReader(r, maxBody), eng.Estimator().Config().ParseOptions)
			if err != nil {
				httpError(w, http.StatusBadRequest, "treesimd: publish: %v", err)
				return
			}
			resp.PublishResult, resp.Forwarded, resp.Trace, err = node.PublishTraced(t)
		} else {
			resp.PublishResult, err = eng.PublishXML(bodyReader(r, maxBody))
		}
		if err != nil {
			status := http.StatusBadRequest
			if err == broker.ErrClosed || err == overlay.ErrClosed {
				status = http.StatusServiceUnavailable
			}
			httpError(w, status, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /deliveries/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad id: %v", err)
			return
		}
		max := 1000
		if s := r.URL.Query().Get("max"); s != "" {
			if max, err = strconv.Atoi(s); err != nil || max <= 0 {
				httpError(w, http.StatusBadRequest, "bad max %q", s)
				return
			}
		}
		var wait time.Duration
		if s := r.URL.Query().Get("wait"); s != "" {
			if wait, err = time.ParseDuration(s); err != nil || wait < 0 {
				httpError(w, http.StatusBadRequest, "bad wait %q", s)
				return
			}
			if wait > 30*time.Second {
				wait = 30 * time.Second
			}
		}
		res, err := eng.DrainBatch(id, max, wait)
		if err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		ds := res.Deliveries
		if ds == nil {
			ds = []broker.Delivery{}
		}
		resp := map[string]any{
			"deliveries": ds,
			"pending":    eng.Pending(id),
			"mode":       res.Mode.String(),
		}
		if res.Mode == broker.AtLeastOnce {
			// Batch bookkeeping for the ack protocol: cursor is what the
			// consumer acks after processing, committed its durable floor.
			resp["cursor"] = res.Cursor
			resp["committed"] = res.Committed
			if res.Redelivered > 0 {
				resp["redelivered"] = res.Redelivered
			}
		} else {
			// Explicit loss marker: deliveries evicted (drop-oldest) since
			// the previous poll observed the queue.
			resp["gap"] = res.Gap
		}
		writeJSON(w, http.StatusOK, resp)
	})

	// POST /ack/{id} commits an at-least-once consumer's progress: every
	// delivery with cursor ≤ the posted cursor is discharged, never to be
	// redelivered, and its document's retention pin drops. Acks are
	// idempotent; re-acking a committed cursor is a 200 with acked 0.
	mux.HandleFunc("POST /ack/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad id: %v", err)
			return
		}
		var req struct {
			Cursor uint64 `json:"cursor"`
		}
		if err := json.NewDecoder(bodyReader(r, maxBody)).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		acked, err := eng.Ack(id, req.Cursor)
		if err != nil {
			status := http.StatusBadRequest // ErrBadCursor: cursor never issued
			switch {
			case errors.Is(err, broker.ErrNotFound):
				status = http.StatusNotFound
			case errors.Is(err, broker.ErrWrongMode):
				status = http.StatusConflict
			case errors.Is(err, broker.ErrClosed):
				status = http.StatusServiceUnavailable
			}
			httpError(w, status, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"acked": acked})
	})

	mux.HandleFunc("GET /doc/{seq}", func(w http.ResponseWriter, r *http.Request) {
		seq, err := strconv.ParseUint(r.PathValue("seq"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad seq: %v", err)
			return
		}
		t := eng.Document(seq)
		if t == nil {
			httpError(w, http.StatusNotFound, "document %d not retained", seq)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		xmltree.WriteXML(w, t, false)
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, eng.Stats())
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			logger.Error("/metrics write failed", "err", err.Error())
		}
	})

	// POST /explain dry-runs the routing decision for a document without
	// publishing it: the body is raw XML exactly as POST /publish takes
	// it, the response the structured decision record. Federated daemons
	// include the per-link forward plan; ?origin= and ?from= re-run the
	// plan as if the document were a forwarded publication from that
	// origin arriving on that link.
	mux.HandleFunc("POST /explain", func(w http.ResponseWriter, r *http.Request) {
		t, err := xmltree.Parse(bodyReader(r, maxBody), eng.Estimator().Config().ParseOptions)
		if err != nil {
			httpError(w, http.StatusBadRequest, "treesimd: explain: %v", err)
			return
		}
		if node != nil {
			ex, err := node.ExplainForward(t, r.URL.Query().Get("origin"), r.URL.Query().Get("from"))
			if err != nil {
				httpError(w, http.StatusServiceUnavailable, "%v", err)
				return
			}
			writeJSON(w, http.StatusOK, ex)
			return
		}
		ex, err := eng.Explain(t)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		// Same envelope shape as the federated answer, minus the plan.
		writeJSON(w, http.StatusOK, map[string]any{"local": ex})
	})

	mux.HandleFunc("GET /introspect/communities", func(w http.ResponseWriter, r *http.Request) {
		cs := eng.IntrospectCommunities()
		if cs == nil {
			cs = []broker.CommunityInfo{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"communities": cs})
	})

	mux.HandleFunc("GET /introspect/subscriptions", func(w http.ResponseWriter, r *http.Request) {
		ss := eng.IntrospectSubscriptions()
		if ss == nil {
			ss = []broker.SubscriptionInfo{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"subscriptions": ss})
	})

	mux.HandleFunc("GET /introspect/routes", func(w http.ResponseWriter, r *http.Request) {
		if node == nil {
			httpError(w, http.StatusNotFound, "routing tables live on the overlay; start with -federate or -peers")
			return
		}
		rs := node.IntrospectRoutes()
		if rs == nil {
			rs = []overlay.RouteInfo{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"node": node.ID(), "routes": rs})
	})

	mux.HandleFunc("GET /introspect/links", func(w http.ResponseWriter, r *http.Request) {
		if node == nil {
			httpError(w, http.StatusNotFound, "links live on the overlay; start with -federate or -peers")
			return
		}
		ls := node.IntrospectLinks()
		if ls == nil {
			ls = []overlay.LinkInfo{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"node": node.ID(), "links": ls})
	})

	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		evs := events.Snapshot()
		if evs == nil {
			evs = []telemetry.Event{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"events": evs, "total": events.Total()})
	})

	mux.HandleFunc("GET /trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		if node == nil {
			httpError(w, http.StatusNotFound, "tracing runs on the overlay; start with -federate or -peers")
			return
		}
		id := r.PathValue("id")
		spans := node.TraceSpans(id)
		if spans == nil {
			spans = []telemetry.Span{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"trace": id, "node": node.ID(), "spans": spans})
	})

	// /healthz is owned by the server gate, which answers before the
	// mux exists; nothing to register here.

	if node != nil {
		overlay.RegisterHTTP(mux, node, maxBody, overlay.NewPeerClient(peerTimeout))
	}

	return mux
}

// batchResponse summarizes a batched POST /publish: aggregate routing
// counts across the batch, plus per-batch error accounting (documents
// that fail to parse are skipped and counted, the rest are published).
type batchResponse struct {
	Published  int    `json:"published"`
	Matched    int    `json:"matched"`
	Deliveries int    `json:"deliveries"`
	Dropped    int    `json:"dropped"`
	Forwarded  int    `json:"forwarded"`
	Errors     int    `json:"errors"`
	FirstError string `json:"first_error,omitempty"`
}

// handlePublishBatch is the batched publish pipeline: the request body
// is a JSON array of XML document strings (either bare or wrapped as
// {"docs": [...]}), decoded and parsed on one goroutine while a second
// stage routes already-parsed documents — XML decoding overlaps
// matching, and the broker sees PublishBatch chunks instead of one
// engine entry per document. Federated daemons route per document
// through the overlay node (forwarding is a per-document decision) but
// keep the same parse/route overlap.
func handlePublishBatch(w http.ResponseWriter, r *http.Request, eng *broker.Engine, node *overlay.Node, maxBody int64) {
	var raw json.RawMessage
	if err := json.NewDecoder(bodyReader(r, maxBody)).Decode(&raw); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var docs []string
	if err := json.Unmarshal(raw, &docs); err != nil {
		var wrapped struct {
			Docs []string `json:"docs"`
		}
		if err := json.Unmarshal(raw, &wrapped); err != nil {
			httpError(w, http.StatusBadRequest, "want a JSON array of XML strings or {\"docs\": [...]}: %v", err)
			return
		}
		docs = wrapped.Docs
	}
	resp := batchResponse{}
	if len(docs) == 0 {
		writeJSON(w, http.StatusOK, resp)
		return
	}

	// Stage 1: parse/flatten. The small buffer lets decoding run ahead
	// of routing without holding the whole batch as trees.
	parsed := make(chan *xmltree.Tree, 64)
	var parseErrs atomic.Int64
	var firstErr atomic.Pointer[string]
	opts := eng.Estimator().Config().ParseOptions
	go func() {
		defer close(parsed)
		for i, d := range docs {
			t, err := xmltree.Parse(strings.NewReader(d), opts)
			if err != nil {
				parseErrs.Add(1)
				msg := fmt.Sprintf("doc %d: %v", i, err)
				firstErr.CompareAndSwap(nil, &msg)
				continue
			}
			parsed <- t
		}
	}()

	// Stage 2: route in engine-sized chunks.
	const chunk = 32
	batch := make([]*xmltree.Tree, 0, chunk)
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		if node != nil {
			for _, t := range batch {
				res, fwd, err := node.Publish(t)
				if err != nil {
					return false
				}
				resp.Published++
				resp.Matched += res.Matched
				resp.Deliveries += res.Deliveries
				resp.Dropped += res.Dropped
				resp.Forwarded += fwd
			}
		} else {
			rs, err := eng.PublishBatch(batch)
			if err != nil {
				return false
			}
			for _, res := range rs {
				resp.Published++
				resp.Matched += res.Matched
				resp.Deliveries += res.Deliveries
				resp.Dropped += res.Dropped
			}
		}
		batch = batch[:0]
		return true
	}
	for t := range parsed {
		batch = append(batch, t)
		if len(batch) >= chunk {
			if !flush() {
				// Engine closed mid-batch: drain the parser and report
				// what landed.
				for range parsed {
				}
				httpError(w, http.StatusServiceUnavailable, "%v", broker.ErrClosed)
				return
			}
		}
	}
	if !flush() {
		httpError(w, http.StatusServiceUnavailable, "%v", broker.ErrClosed)
		return
	}
	resp.Errors = int(parseErrs.Load())
	if p := firstErr.Load(); p != nil {
		resp.FirstError = *p
	}
	status := http.StatusOK
	if resp.Published == 0 && resp.Errors > 0 {
		status = http.StatusBadRequest
	}
	writeJSON(w, status, resp)
}

// bodyReader bounds a request body.
func bodyReader(r *http.Request, maxBody int64) io.ReadCloser {
	return http.MaxBytesReader(nil, r.Body, maxBody)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
