package main

// Durability glue (-data-dir): open the data directory, recover the
// engine from its snapshot + WAL tail, journal subsequent subscription
// churn into the WAL, and snapshot periodically and on shutdown. A
// SIGKILLed daemon restarted on the same -data-dir comes back with its
// full subscription registry, community partition, estimator synopsis
// and overlay epoch watermarks.

import (
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"treesim/internal/broker"
	"treesim/internal/overlay"
	"treesim/internal/persist"
	"treesim/internal/telemetry"
)

// walJournal adapts the persist store to the broker's journal hook:
// every committed churn decision becomes one WAL record, and the
// record's LSN flows back so the engine can watermark its state cuts.
type walJournal struct{ s *persist.Store }

func (j walJournal) Subscribed(id uint64, expr string, group int, mode broker.DeliveryMode) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpSubscribe, ID: id, Expr: expr, Group: group, Mode: uint8(mode)})
}

func (j walJournal) Unsubscribed(id uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpUnsubscribe, ID: id})
}

func (j walJournal) Rebuilt(groups [][]uint64, reps []uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpRebuild, Groups: groups, Reps: reps})
}

func (j walJournal) Delivered(seq uint64, xml string, subs, cursors []uint64, comms []int) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpDeliver, Seq: seq, XML: xml, Subs: subs, Cursors: cursors, Comms: comms})
}

func (j walJournal) Acked(id uint64, upto uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpAck, ID: id, Cursor: upto})
}

func (j walJournal) Drained(id uint64, upto uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpDrained, ID: id, Cursor: upto})
}

// daemonPersist owns the store and the periodic snapshot loop.
type daemonPersist struct {
	store *persist.Store
	eng   *broker.Engine
	node  atomic.Pointer[overlay.Node]
	// floor is the WAL watermark recovery already replayed into the
	// engine. Replayed operations are not re-journaled, so the engine's
	// own State.WalLSN starts at zero; any snapshot this daemon writes
	// covers at least the recovered prefix, so the effective watermark
	// is max(State.WalLSN, floor).
	floor uint64
	log   *slog.Logger
	stop  chan struct{}
	done  chan struct{}
}

// openDataDir recovers (or initializes) a broker from the data
// directory and returns the persistence handle, the live engine, and
// the overlay epoch floor — the advert-version/publication-sequence
// watermark persisted at the last snapshot, raised by any boot-epoch
// records in the WAL tail. The floor understates the pre-crash live
// values by whatever the node issued after that snapshot; overlay.New
// pads it before flooring the boot epoch, so a restarted node outruns
// everything its peers have already seen even if the clock regressed.
// The boot records matter when the same snapshot serves several
// recoveries in a row: without them each boot would floor at the same
// padded value and replay the previous incarnation's sequence range,
// which peers' seen-sets silently swallow.
// fsys selects the filesystem the store persists through (nil: the
// real one; the -fault-disk flag injects failpoints here).
func openDataDir(dir string, cfg broker.Config, walSync bool, fsys persist.FS, reg *telemetry.Registry, logger *slog.Logger) (*daemonPersist, *broker.Engine, uint64, error) {
	store, err := persist.Open(dir, persist.Options{SyncEveryAppend: walSync, Telemetry: reg, FS: fsys})
	if err != nil {
		return nil, nil, 0, err
	}
	var (
		eng      *broker.Engine
		minEpoch uint64
		hadSnap  bool
	)
	payload, ok, err := store.LoadSnapshot()
	if err != nil {
		store.Close()
		return nil, nil, 0, err
	}
	if ok {
		hadSnap = true
		env, err := persist.DecodeSnapshot(payload)
		if err != nil {
			store.Close()
			return nil, nil, 0, err
		}
		st, err := broker.DecodeState(env.Broker)
		if err != nil {
			store.Close()
			return nil, nil, 0, err
		}
		eng, err = broker.Restore(cfg, st)
		if err != nil {
			store.Close()
			return nil, nil, 0, err
		}
		minEpoch = env.AdvertVersion
		if env.PubSeq > minEpoch {
			minEpoch = env.PubSeq
		}
	} else {
		eng = broker.New(cfg)
	}
	replayed := 0
	if err := store.Replay(func(rec persist.Record) error {
		replayed++
		switch rec.Op {
		case persist.OpSubscribe:
			return eng.ApplySubscribed(rec.ID, rec.Expr, rec.Group, broker.DeliveryMode(rec.Mode))
		case persist.OpUnsubscribe:
			return eng.ApplyUnsubscribed(rec.ID)
		case persist.OpRebuild:
			return eng.ApplyRebuilt(rec.Groups, rec.Reps)
		case persist.OpDeliver:
			return eng.ApplyDelivered(rec.Seq, rec.XML, rec.Subs, rec.Cursors, rec.Comms)
		case persist.OpAck:
			return eng.ApplyAcked(rec.ID, rec.Cursor)
		case persist.OpDrained:
			return eng.ApplyDrained(rec.ID, rec.Cursor)
		case persist.OpBootEpoch:
			if rec.Seq > minEpoch {
				minEpoch = rec.Seq
			}
			return nil
		default:
			return fmt.Errorf("unknown wal op %q", rec.Op)
		}
	}); err != nil {
		eng.Close()
		store.Close()
		return nil, nil, 0, fmt.Errorf("replay %s: %w", dir, err)
	}
	// Journal only after replay: recovered operations must not re-enter
	// the WAL.
	eng.SetJournal(walJournal{store})
	logger.Info("recovered from data dir", "dir", dir,
		"subscriptions", eng.Live(), "snapshot", hadSnap, "wal_records", replayed)
	p := &daemonPersist{
		store: store,
		eng:   eng,
		floor: store.LastLSN(),
		log:   logger,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	return p, eng, minEpoch, nil
}

// setNode attaches the overlay node whose epoch watermarks snapshots
// should carry (federated daemons only), and journals the epoch the
// node booted with so the next recovery floors above this incarnation
// even if no snapshot lands before the next crash. A journal failure
// latches the store fail-stop like any other append; the node still
// runs (degraded, at-most-once).
func (p *daemonPersist) setNode(n *overlay.Node) {
	p.node.Store(n)
	av, ps := n.Epoch()
	epoch := av
	if ps > epoch {
		epoch = ps
	}
	if _, err := p.store.Append(persist.Record{Op: persist.OpBootEpoch, Seq: epoch}); err != nil {
		p.log.Warn("journal boot epoch failed", "err", err.Error())
	}
}

// snapshot publishes a point-in-time snapshot covering exactly the
// journaled churn its state cut includes. Subscribes committing between
// the cut and the write get LSNs above the watermark, so their WAL
// records survive the snapshot and replay on recovery.
func (p *daemonPersist) snapshot() error {
	st, err := p.eng.State()
	if err != nil {
		return err
	}
	data, err := broker.EncodeState(st)
	if err != nil {
		return err
	}
	env := persist.Snapshot{Broker: data}
	if n := p.node.Load(); n != nil {
		env.AdvertVersion, env.PubSeq = n.Epoch()
	}
	payload, err := env.Encode()
	if err != nil {
		return err
	}
	upto := st.WalLSN
	if upto < p.floor {
		upto = p.floor // recovered-and-replayed records are in every cut
	}
	return p.store.WriteSnapshot(payload, upto)
}

// run is the periodic snapshot loop; a tick with no WAL growth since
// the last snapshot is skipped. interval <= 0 disables periodic
// snapshots (the WAL alone carries durability until shutdown).
func (p *daemonPersist) run(interval time.Duration) {
	defer close(p.done)
	if interval <= 0 {
		<-p.stop
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			if p.store.Pending() == 0 || p.store.Failed() {
				// A failed store is fail-stop: every further snapshot
				// attempt would just re-fail, so stop hammering it.
				continue
			}
			if err := p.snapshot(); err != nil {
				p.log.Warn("periodic snapshot failed", "err", err.Error())
			}
		}
	}
}

// shutdown stops the loop, takes a final snapshot, and closes the
// store. Call it only after Engine.Close: a closed engine is quiescent,
// so no handler can commit churn that would post-date the final
// snapshot or journal against the closed store. A failed final
// snapshot is logged, not fatal: the WAL already holds everything.
func (p *daemonPersist) shutdown() {
	close(p.stop)
	<-p.done
	if p.store.Failed() {
		p.log.Warn("store failed earlier; skipping final snapshot (wal retains the pre-fault prefix)")
	} else if err := p.snapshot(); err != nil {
		p.log.Warn("final snapshot failed (wal retains full state)", "err", err.Error())
	}
	if err := p.store.Close(); err != nil {
		p.log.Warn("close data dir failed", "err", err.Error())
	}
}
