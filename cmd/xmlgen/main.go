// Command xmlgen generates random XML document corpora from a DTD, as
// IBM's XML Generator did for the paper's evaluation.
//
// Usage:
//
//	xmlgen [--dtd nitf|xcbl|media|<file.dtd>] [--n N] [--seed N]
//	       [--target tagpairs] [--out dir] [--indent] [--stats]
//
// Without --out, documents stream to stdout separated by blank lines;
// with --out, each document is written to <dir>/doc<i>.xml.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"treesim/internal/corpus"
	"treesim/internal/dtd"
	"treesim/internal/xmlgen"
	"treesim/internal/xmltree"
)

func main() {
	var (
		dtdFlag = flag.String("dtd", "nitf", "schema: nitf, xcbl, media, or a .dtd file path")
		n       = flag.Int("n", 10, "number of documents")
		seed    = flag.Int64("seed", 1, "generator seed")
		target  = flag.Int("target", 100, "target average tag pairs per document")
		outDir  = flag.String("out", "", "output directory (default: stdout)")
		indent  = flag.Bool("indent", false, "indent XML output")
		stats   = flag.Bool("stats", false, "print corpus statistics to stderr")
	)
	flag.Parse()

	d, err := loadDTD(*dtdFlag)
	if err != nil {
		fatal("%v", err)
	}
	opts := xmlgen.Calibrate(d, *target, *seed)
	docs := xmlgen.New(d, opts).GenerateN(*n)

	if *outDir != "" {
		if err := corpus.SaveDir(*outDir, docs, *indent); err != nil {
			fatal("%v", err)
		}
	} else {
		for i, doc := range docs {
			s, err := xmltree.XMLString(doc, *indent)
			if err != nil {
				fatal("serialize doc %d: %v", i, err)
			}
			fmt.Println(s)
			fmt.Println()
		}
	}
	if *stats {
		st := xmlgen.Stats(docs)
		fmt.Fprintf(os.Stderr, "%s: %d docs, mean %.1f tag pairs (min %d, max %d), max depth %d\n",
			d.Name, st.Docs, st.MeanTagPairs, st.MinTagPairs, st.MaxTagPairs, st.MaxDepth)
	}
}

func loadDTD(spec string) (*dtd.DTD, error) {
	switch spec {
	case "nitf":
		return dtd.NITFLike(), nil
	case "xcbl":
		return dtd.XCBLLike(), nil
	case "media":
		return dtd.Media(), nil
	}
	data, err := os.ReadFile(spec)
	if err != nil {
		return nil, fmt.Errorf("load DTD: %w", err)
	}
	return dtd.Parse(filepath.Base(spec), "", string(data))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xmlgen: "+format+"\n", args...)
	os.Exit(1)
}
