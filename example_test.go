package treesim_test

import (
	"fmt"

	"treesim"
)

// The basic flow: observe a stream, then ask for selectivities and
// similarities.
func Example() {
	est := treesim.New(treesim.Config{
		Representation: treesim.Hashes,
		HashCapacity:   1000,
		Seed:           1,
	})
	stream := []string{
		`<media><CD><composer><last><Mozart/></last></composer></CD></media>`,
		`<media><CD><composer><last><Brahms/></last></composer></CD></media>`,
		`<media><book><author><last><Mozart/></last></author></book></media>`,
	}
	for _, xml := range stream {
		doc, err := treesim.ParseXMLString(xml)
		if err != nil {
			panic(err)
		}
		est.ObserveTree(doc)
	}
	p := treesim.MustParsePattern("/media/CD")
	q := treesim.MustParsePattern("//composer")
	fmt.Printf("P(p) = %.2f\n", est.Selectivity(p))
	fmt.Printf("M3(p,q) = %.2f\n", est.Similarity(treesim.M3, p, q))
	// Output:
	// P(p) = 0.67
	// M3(p,q) = 1.00
}

// Figure 1 of the paper: pa and pd are syntactically unrelated but
// select the same documents, while pb never matches.
func Example_figure1() {
	est := treesim.New(treesim.Config{Representation: treesim.Sets, SetCapacity: 1 << 16, Seed: 1})
	doc, _ := treesim.ParseXMLString(
		`<media><book><author><first><William/></first><last><Shakespeare/></last></author>` +
			`<title><Hamlet/></title></book>` +
			`<CD><composer><first><Wolfgang/></first><last><Mozart/></last></composer>` +
			`<title><Requiem/></title></CD></media>`)
	est.ObserveTree(doc)
	pa := treesim.MustParsePattern("/media/CD/*/last/Mozart")
	pb := treesim.MustParsePattern("//CD/Mozart")
	pd := treesim.MustParsePattern("//composer/last/Mozart")
	fmt.Println(treesim.Matches(doc, pa), treesim.Matches(doc, pb), treesim.Matches(doc, pd))
	fmt.Printf("M3(pa,pd) = %.0f, M3(pa,pb) = %.0f\n",
		est.Similarity(treesim.M3, pa, pd), est.Similarity(treesim.M3, pa, pb))
	// Output:
	// true false true
	// M3(pa,pd) = 1, M3(pa,pb) = 0
}

// Containment and minimization of subscriptions.
func ExampleContainsPattern() {
	p := treesim.MustParsePattern("//b")
	q := treesim.MustParsePattern("/a/b[c]")
	fmt.Println(treesim.ContainsPattern(p, q)) // every /a/b[c] doc has a b somewhere
	fmt.Println(treesim.ContainsPattern(q, p))
	fmt.Println(treesim.MinimizePattern(treesim.MustParsePattern("/a[b][b/c]")))
	// Output:
	// true
	// false
	// /a/b/c
}

// Sliding-window estimation forgets old interest regimes.
func ExampleWindowEstimator() {
	w := treesim.NewWindow(2)
	for _, xml := range []string{"<a><x/></a>", "<a><x/></a>", "<a><y/></a>", "<a><y/></a>"} {
		doc, _ := treesim.ParseXMLString(xml)
		w.ObserveTree(doc)
	}
	fmt.Printf("%.0f %.0f\n",
		w.Selectivity(treesim.MustParsePattern("//x")),
		w.Selectivity(treesim.MustParsePattern("//y")))
	// Output:
	// 0 1
}
