// Subscription aggregation in a broker overlay: the application of
// selectivity estimation pioneered by the paper's reference [4] (Chan
// et al., VLDB'02).
//
// A hierarchical broker tree routes documents toward interested
// consumers. Exact routing tables grow with the consumer population;
// aggregating each link's table into a few generalized patterns keeps
// tables small at the cost of some spurious forwarding. The estimator's
// job is to pick the merges that add the least selectivity — bad merges
// flood subtrees, good merges are nearly free.
package main

import (
	"fmt"

	"treesim"
	"treesim/internal/routing"
)

func main() {
	d := treesim.NITFLikeDTD()
	history := treesim.GenerateDocuments(d, 500, 81)
	live := treesim.GenerateDocuments(d, 150, 82)

	// Consumers with moderately selective interests (2%–50% of the
	// stream): with near-universal subscriptions in the population,
	// aggregation trivially collapses everything into them — correct,
	// but uninstructive.
	var subs []*treesim.Pattern
	for _, p := range treesim.GeneratePatterns(d, 800, 83) {
		n := 0
		for _, doc := range history {
			if treesim.Matches(doc, p) {
				n++
			}
		}
		if f := float64(n) / float64(len(history)); f >= 0.02 && f <= 0.5 {
			subs = append(subs, p)
		}
		if len(subs) == 48 {
			break
		}
	}
	est := treesim.New(treesim.Config{Representation: treesim.Hashes, HashCapacity: 400, Seed: 8})
	for _, doc := range history {
		est.ObserveTree(doc)
	}
	fmt.Printf("%d consumers on a fanout-3, depth-3 broker tree; %d live documents\n\n",
		len(subs), len(live))

	// Standalone aggregation: squeeze the whole subscription set.
	res := treesim.AggregateSubscriptions(est, subs, 8)
	fmt.Printf("aggregating %d subscriptions into %d representatives (estimated selectivity added: %.3f):\n",
		len(subs), len(res.Patterns), res.EstimatedLoss)
	for i, p := range res.Patterns {
		if len(res.Groups[i]) > 1 {
			fmt.Printf("  %2d subscriptions -> %s\n", len(res.Groups[i]), p)
		}
	}
	fmt.Println()

	// Overlay comparison: exact vs aggregated routing tables.
	estAdapter := estSels{est}
	for _, cfg := range []struct {
		name  string
		limit int
	}{
		{"exact tables", 0},
		{"aggregated (≤8/link)", 8},
		{"aggregated (≤3/link)", 3},
	} {
		bt, err := routing.NewBrokerTree(subs, routing.BrokerTreeOptions{
			Fanout: 3, Depth: 3, TableLimit: cfg.limit, Estimator: estAdapter,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-22s %s\n", cfg.name, bt.Run(live))
	}
	fmt.Println("\nSmaller tables cut per-broker state and evaluations; the spurious")
	fmt.Println("link messages are the price, kept low by selectivity-guided merging.")
}

type estSels struct{ est *treesim.Estimator }

func (s estSels) P(p *treesim.Pattern) float64       { return s.est.Selectivity(p) }
func (s estSels) PAnd(p, q *treesim.Pattern) float64 { return s.est.Joint(p, q) }
