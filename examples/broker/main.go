// Live broker walkthrough: the daemon's engine driven in-process.
//
// A broker is started with an incremental rebuild policy, a population
// of consumers subscribes at runtime (each subscribe computes only the
// new similarity row — no O(n²) rebuild), documents are published and
// fan out community-by-community, some consumers churn away, and the
// stats snapshot shows the routing economics: filter evaluations scale
// with communities, not consumers, while the precision proxy tracks
// how semantically tight the communities are.
//
// The same engine serves HTTP traffic in cmd/treesimd; this example is
// the library view of that daemon.
package main

import (
	"fmt"
	"time"

	"treesim"
)

func main() {
	d := treesim.NITFLikeDTD()
	history := treesim.GenerateDocuments(d, 400, 21) // pre-broker history
	live := treesim.GenerateDocuments(d, 300, 22)    // published traffic

	b := treesim.NewBroker(treesim.BrokerConfig{
		Threshold: 0.35,
	})
	defer b.Close()

	// Warm the estimator with history so early similarities are
	// meaningful (a cold broker starts everyone in singletons and the
	// rebuild policy repairs the clustering as evidence accumulates).
	for _, doc := range history {
		if _, err := b.Publish(doc); err != nil {
			panic(err)
		}
	}
	b.Flush()

	// Consumers arrive at runtime. Like examples/routing, keep only
	// subscriptions that match something in the history — consumers of
	// a live feed subscribe to content that actually flows.
	var subs []*treesim.Pattern
	for _, p := range treesim.GeneratePatterns(d, 800, 23) {
		for _, doc := range history {
			if treesim.Matches(doc, p) {
				subs = append(subs, p)
				break
			}
		}
		if len(subs) == 80 {
			break
		}
	}
	ids := make([]uint64, 0, len(subs))
	for _, p := range subs {
		id, err := b.SubscribePattern(p, p.String())
		if err != nil {
			panic(err)
		}
		ids = append(ids, id)
	}
	st := b.Stats()
	fmt.Printf("after %d subscribes: %d communities (%d singletons), %d rebuilds\n",
		st.Subscribes, st.Communities, st.Singletons, st.Rebuilds)

	// Publish the live stream.
	for _, doc := range live {
		if _, err := b.Publish(doc); err != nil {
			panic(err)
		}
	}

	// A quarter of the population churns away mid-stream.
	for _, id := range ids[:len(ids)/4] {
		b.Unsubscribe(id)
	}
	for _, doc := range live[:50] {
		if _, err := b.Publish(doc); err != nil {
			panic(err)
		}
	}

	// One consumer drains its queue (long-poll, like GET /deliveries).
	got, err := b.Drain(ids[len(ids)-1], 100, 100*time.Millisecond)
	if err != nil {
		panic(err)
	}
	fmt.Printf("consumer %d drained %d deliveries\n", ids[len(ids)-1], len(got))

	b.Flush()
	st = b.Stats()
	fmt.Printf("\nfinal stats:\n")
	fmt.Printf("  live=%d communities=%d singletons=%d rebuilds=%d\n",
		st.Live, st.Communities, st.Singletons, st.Rebuilds)
	fmt.Printf("  published=%d observed=%d deliveries=%d dropped=%d\n",
		st.Published, st.DocsObserved, st.Deliveries, st.Dropped)
	fmt.Printf("  filter evals=%d (vs %d for per-consumer filtering)\n",
		st.FilterEvals, uint64(st.Live)*st.Published)
	fmt.Printf("  precision proxy=%.3f over %d samples\n",
		st.PrecisionProxy, st.PrecisionSamples)
	fmt.Printf("  publish latency p50=%v p99=%v\n", st.PublishP50, st.PublishP99)
}
