// Synopsis compression walkthrough: build a synopsis over a small
// corpus, inspect it, then apply the paper's pruning operations
// (lossless folds, lossy folds, deletions, merges) and watch size and
// accuracy trade off — a narrated version of the paper's Figure 3 and
// Figure 10.
package main

import (
	"fmt"

	"treesim"
)

func main() {
	d := treesim.MediaDTD()
	docs := treesim.GenerateDocuments(d, 500, 11)
	queries := []string{
		"/media/CD",
		"/media/book/author/last",
		"//composer/last",
		"/media[book][CD]",
		"//interpreter/ensemble",
	}

	// Ground truth from the exact matcher.
	exact := make(map[string]float64)
	for _, q := range queries {
		p := treesim.MustParsePattern(q)
		n := 0
		for _, doc := range docs {
			if treesim.Matches(doc, p) {
				n++
			}
		}
		exact[q] = float64(n) / float64(len(docs))
	}

	for _, alpha := range []float64{1.0, 0.6, 0.3} {
		est := treesim.New(treesim.Config{
			Representation: treesim.Hashes,
			HashCapacity:   200,
			Seed:           5,
		})
		for _, doc := range docs {
			est.ObserveTree(doc)
		}
		before := est.Stats()
		achieved := est.Compress(alpha)
		after := est.Stats()
		fmt.Printf("target α=%.1f: |HS| %d -> %d (achieved %.2f); nodes %d -> %d\n",
			alpha, before.Size(), after.Size(), achieved, before.Nodes, after.Nodes)
		for _, q := range queries {
			got, err := est.SelectivityXPath(q)
			if err != nil {
				panic(err)
			}
			fmt.Printf("   P(%-28s) = %.3f (exact %.3f)\n", q, got, exact[q])
		}
		fmt.Println()
	}
	fmt.Println("Lossless folds (α=1.0) are free; heavier compression trades")
	fmt.Println("positive-query accuracy for space, while negative queries stay")
	fmt.Println("accurate — the paper's Figure 10.")
}
