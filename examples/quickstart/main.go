// Quickstart: feed a handful of XML documents to the estimator and ask
// for tree-pattern selectivities and similarities — the paper's
// Figure 1 scenario (media libraries, CD subscriptions).
package main

import (
	"fmt"
	"log"

	"treesim"
)

func main() {
	est := treesim.New(treesim.Config{
		Representation: treesim.Hashes,
		HashCapacity:   1000,
		Seed:           1,
	})

	// A small stream of media documents. Text values (composer names,
	// titles) are modeled as leaf elements, as in the paper's Figure 1.
	stream := []string{
		`<media><CD><composer><first/><last><Mozart/></last></composer><title><Requiem/></title></CD></media>`,
		`<media><CD><composer><first/><last><Mozart/></last></composer><title><Jupiter/></title></CD></media>`,
		`<media><CD><composer><first/><last><Brahms/></last></composer><title><Requiem/></title></CD></media>`,
		`<media><book><author><first/><last><Shakespeare/></last></author><title><Hamlet/></title></book></media>`,
		`<media><book><author><first/><last><Mozart/></last></author><title><Letters/></title></book></media>`,
	}
	for _, doc := range stream {
		t, err := treesim.ParseXMLString(doc)
		if err != nil {
			log.Fatal(err)
		}
		est.ObserveTree(t)
	}
	fmt.Printf("observed %d documents\n\n", est.DocsObserved())

	// The four subscriptions of the paper's Figure 1.
	subs := map[string]string{
		"pa": "/media/CD/*/last/Mozart",
		"pb": "//CD/Mozart",
		"pc": "/.[//CD]//Mozart",
		"pd": "//composer/last/Mozart",
	}
	for _, name := range []string{"pa", "pb", "pc", "pd"} {
		sel, err := est.SelectivityXPath(subs[name])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P(%s = %s) = %.2f\n", name, subs[name], sel)
	}

	// pa and pd look unrelated syntactically but select the same
	// documents on this stream — exactly the insight the paper's
	// similarity metrics capture.
	fmt.Println()
	for _, pair := range [][2]string{{"pa", "pd"}, {"pa", "pb"}, {"pa", "pc"}} {
		sim, err := est.SimilarityXPath(treesim.M3, subs[pair[0]], subs[pair[1]])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("M3(%s, %s) = %.2f\n", pair[0], pair[1], sim)
	}
}
