// Semantic-community routing: the paper's motivating application.
//
// A population of consumers subscribes with tree patterns; the estimator
// watches the document stream and computes pairwise subscription
// similarities; consumers are clustered into semantic communities; and a
// dissemination simulation compares flooding, exact per-consumer
// filtering, and community-based routing on traffic and accuracy.
//
// The clustering threshold is the knob: strict thresholds keep delivery
// precise but fragment the population (many communities to test per
// document); loose thresholds cut routing work at the cost of precision
// and recall. Accurate similarity estimation is what makes the strict
// end of that trade-off reachable at all.
package main

import (
	"fmt"

	"treesim"
	"treesim/internal/cluster"
	"treesim/internal/routing"
)

func main() {
	d := treesim.NITFLikeDTD()
	history := treesim.GenerateDocuments(d, 600, 21) // observed history
	live := treesim.GenerateDocuments(d, 200, 22)    // traffic to route

	// Consumer subscriptions: generated patterns that match something.
	var subs []*treesim.Pattern
	for _, p := range treesim.GeneratePatterns(d, 600, 23) {
		for _, doc := range history {
			if treesim.Matches(doc, p) {
				subs = append(subs, p)
				break
			}
		}
		if len(subs) == 60 {
			break
		}
	}
	fmt.Printf("%d consumers, %d history docs, %d live docs\n\n", len(subs), len(history), len(live))

	// Estimate similarities over the observed history.
	est := treesim.New(treesim.Config{Representation: treesim.Hashes, HashCapacity: 500, Seed: 3})
	for _, doc := range history {
		est.ObserveTree(doc)
	}
	sim := est.SimilarityMatrix(treesim.M3, subs)

	net := routing.NewNetwork(subs)
	fmt.Println("baselines:")
	fmt.Println("  " + net.Run(live, routing.Flood).String())
	fmt.Println("  " + net.Run(live, routing.Filtered).String())
	fmt.Printf("  (naive per-consumer filtering would cost %d evaluations)\n\n", len(live)*len(subs))

	for _, threshold := range []float64{0.75, 0.5, 0.25} {
		communities := cluster.Greedy(sim, threshold)
		net.SetCommunities(communities)
		res := net.Run(live, routing.Communities)
		q := cluster.Evaluate(sim, communities)
		fmt.Printf("threshold %.2f: %d communities (%d singletons)\n", threshold, q.Communities, q.Singletons)
		fmt.Println("  " + res.String())
	}
	fmt.Println("\nStrict thresholds keep precision/recall near the exact router;")
	fmt.Println("looser ones cut per-document community tests toward flooding —")
	fmt.Println("the trade-off that makes accurate similarity estimation matter.")
}
