// Selectivity estimation at scale: generate a news-like corpus and
// workload (as in the paper's evaluation), build synopses under all
// three matching-set representations, and compare estimated vs. exact
// selectivities — a miniature of the paper's Figure 4.
package main

import (
	"fmt"

	"treesim"
)

func main() {
	d := treesim.NITFLikeDTD()
	fmt.Printf("schema: %s (%d elements)\n", d.Name, d.Len())

	docs := treesim.GenerateDocuments(d, 800, 42)
	patterns := treesim.GeneratePatterns(d, 400, 43)

	// Keep the patterns that match at least one document, with their
	// exact selectivities as ground truth.
	type ground struct {
		p     *treesim.Pattern
		exact float64
	}
	var positives []ground
	for _, p := range patterns {
		n := 0
		for _, doc := range docs {
			if treesim.Matches(doc, p) {
				n++
			}
		}
		if n > 0 {
			positives = append(positives, ground{p, float64(n) / float64(len(docs))})
		}
		if len(positives) == 60 {
			break
		}
	}
	fmt.Printf("corpus: %d documents, %d positive patterns\n\n", len(docs), len(positives))

	for _, cfg := range []struct {
		name string
		conf treesim.Config
	}{
		{"Counters", treesim.Config{Representation: treesim.Counters, Seed: 7}},
		{"Sets(500)", treesim.Config{Representation: treesim.Sets, SetCapacity: 500, Seed: 7}},
		{"Hashes(500)", treesim.Config{Representation: treesim.Hashes, HashCapacity: 500, Seed: 7}},
	} {
		est := treesim.New(cfg.conf)
		for _, doc := range docs {
			est.ObserveTree(doc)
		}
		var errSum float64
		worst, worstIdx := 0.0, 0
		for i, g := range positives {
			got := est.Selectivity(g.p)
			rel := abs(got-g.exact) / g.exact
			errSum += rel
			if rel > worst {
				worst, worstIdx = rel, i
			}
		}
		st := est.Stats()
		fmt.Printf("%-12s Erel = %5.1f%%   |HS| = %-7d worst pattern: %s (%.0f%% off)\n",
			cfg.name, 100*errSum/float64(len(positives)), st.Size(),
			positives[worstIdx].p, 100*worst)
	}
	fmt.Println("\nHashes should achieve the lowest error at a comparable budget —")
	fmt.Println("the paper's central selectivity result (Figure 4).")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
