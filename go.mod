module treesim

go 1.24
