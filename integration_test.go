package treesim

// Integration tests: end-to-end scenarios crossing module boundaries —
// stream ingestion → synopsis → (compression | persistence) → queries →
// clustering → routing — at small but non-trivial scale.

import (
	"bytes"
	"math"
	"testing"

	"treesim/internal/cluster"
	"treesim/internal/dtd"
	"treesim/internal/experiment"
	"treesim/internal/matchset"
	"treesim/internal/metrics"
	"treesim/internal/pattern"
	"treesim/internal/routing"
	"treesim/internal/selectivity"
	"treesim/internal/synopsis"
	"treesim/internal/xmlgen"
)

// TestEndToEndAccuracyPipeline drives the full estimation pipeline on a
// generated corpus and checks estimated selectivities and similarities
// against exact ground truth within sane bands.
func TestEndToEndAccuracyPipeline(t *testing.T) {
	d := dtd.NITFLike()
	w := experiment.BuildWorkload(d, experiment.WorkloadConfig{
		Docs: 400, Positive: 80, Negative: 80, Seed: 21,
	})
	est := New(Config{Representation: Hashes, HashCapacity: 600, Seed: 5})
	for _, doc := range w.Docs {
		est.ObserveTree(doc)
	}
	// Selectivity accuracy on mid/high-selectivity patterns.
	checked := 0
	for i, p := range w.Positive {
		exact := float64(w.MatchSets[i].Count()) / float64(len(w.Docs))
		if exact < 0.05 {
			continue
		}
		got := est.Selectivity(p)
		if rel := math.Abs(got-exact) / exact; rel > 0.5 {
			t.Errorf("P(%s) = %v, exact %v (rel %v)", p, got, exact, rel)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("too few mid-selectivity patterns: %d", checked)
	}
	// Negative patterns must be near zero.
	for _, p := range w.Negative[:20] {
		if got := est.Selectivity(p); got > 0.05 {
			t.Errorf("negative pattern P = %v: %s", got, p)
		}
	}
	// Similarity: estimated M3 close to exact M3 on random pairs.
	exactSrc := experiment.ExactSource{W: w}
	pairs := w.RandomPairs(80, 3)
	var errSum float64
	n := 0
	for _, pr := range pairs {
		p, q := w.Positive[pr.I], w.Positive[pr.J]
		truth := metrics.Similarity(exactSrc, metrics.M3, p, q)
		if truth < 0.05 {
			continue
		}
		got := est.Similarity(M3, p, q)
		errSum += math.Abs(got-truth) / truth
		n++
	}
	if n > 0 && errSum/float64(n) > 0.4 {
		t.Errorf("average M3 relative error %v over %d pairs", errSum/float64(n), n)
	}
}

// TestPersistenceMidStream saves an estimator mid-stream, restores it,
// feeds both the original and the restored copy the same remaining
// stream, and verifies they answer identically (Hashes mode is fully
// deterministic given the seed).
func TestPersistenceMidStream(t *testing.T) {
	d := dtd.XCBLLike()
	docs := GenerateDocuments(d, 200, 31)
	queries := GeneratePatterns(d, 30, 32)

	orig := New(Config{Representation: Hashes, HashCapacity: 200, Seed: 9})
	for _, doc := range docs[:100] {
		orig.ObserveTree(doc)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs[100:] {
		orig.ObserveTree(doc)
		restored.ObserveTree(doc)
	}
	if orig.DocsObserved() != restored.DocsObserved() {
		t.Fatalf("docs: %d vs %d", orig.DocsObserved(), restored.DocsObserved())
	}
	for _, q := range queries {
		a, b := orig.Selectivity(q), restored.Selectivity(q)
		if a != b {
			t.Errorf("P(%s): original %v, restored %v", q, a, b)
		}
	}
}

// TestCompressionPreservesHighSelectivityAnswers compresses moderately
// and checks that frequent patterns keep sane estimates.
func TestCompressionPreservesHighSelectivityAnswers(t *testing.T) {
	d := dtd.XCBLLike()
	docs := GenerateDocuments(d, 300, 41)
	est := New(Config{Representation: Hashes, HashCapacity: 300, Seed: 11})
	for _, doc := range docs {
		est.ObserveTree(doc)
	}
	// Pick frequent patterns from the generated set.
	type pe struct {
		p     *Pattern
		exact float64
	}
	var frequent []pe
	for _, p := range GeneratePatterns(d, 200, 42) {
		n := 0
		for _, doc := range docs {
			if Matches(doc, p) {
				n++
			}
		}
		if f := float64(n) / float64(len(docs)); f > 0.3 {
			frequent = append(frequent, pe{p, f})
		}
		if len(frequent) == 15 {
			break
		}
	}
	if len(frequent) < 5 {
		t.Skip("workload produced too few frequent patterns")
	}
	est.Compress(0.7)
	var absErrSum float64
	for _, f := range frequent {
		got := est.Selectivity(f.p)
		absErrSum += math.Abs(got - f.exact)
		// No frequent pattern may be wiped out entirely.
		if got == 0 {
			t.Errorf("after compression: frequent pattern erased: %s (exact %v)", f.p, f.exact)
		}
	}
	if avg := absErrSum / float64(len(frequent)); avg > 0.35 {
		t.Errorf("after compression: mean |ΔP| over frequent patterns = %v", avg)
	}
}

// TestClusteringRoutingPipeline checks that communities built from
// *estimated* similarities route almost as well as communities built
// from *exact* similarities — the end-to-end claim of the paper.
func TestClusteringRoutingPipeline(t *testing.T) {
	d := dtd.NITFLike()
	history := GenerateDocuments(d, 300, 51)
	live := GenerateDocuments(d, 100, 52)
	var subs []*Pattern
	for _, p := range GeneratePatterns(d, 300, 53) {
		for _, doc := range history {
			if Matches(doc, p) {
				subs = append(subs, p)
				break
			}
		}
		if len(subs) == 40 {
			break
		}
	}
	est := New(Config{Representation: Hashes, HashCapacity: 400, Seed: 13})
	for _, doc := range history {
		est.ObserveTree(doc)
	}
	estSim := est.SimilarityMatrix(metrics.M3, subs)

	// Exact similarity matrix over the same history.
	exactSim := make([][]float64, len(subs))
	match := make([][]bool, len(subs))
	for i, p := range subs {
		match[i] = make([]bool, len(history))
		for k, doc := range history {
			match[i][k] = Matches(doc, p)
		}
		_ = p
	}
	count := func(i, j int) (and, or int) {
		for k := range history {
			a, b := match[i][k], match[j][k]
			if a && b {
				and++
			}
			if a || b {
				or++
			}
		}
		return
	}
	for i := range subs {
		exactSim[i] = make([]float64, len(subs))
		for j := range subs {
			and, or := count(i, j)
			if or > 0 {
				exactSim[i][j] = float64(and) / float64(or)
			}
		}
	}

	net := routing.NewNetwork(subs)
	run := func(sim [][]float64) routing.Result {
		net.SetCommunities(cluster.Greedy(sim, 0.6))
		return net.Run(live, routing.Communities)
	}
	estRes := run(estSim)
	exactRes := run(exactSim)
	if estRes.Recall() < exactRes.Recall()-0.15 {
		t.Errorf("estimated-similarity routing recall %v far below exact %v",
			estRes.Recall(), exactRes.Recall())
	}
	if estRes.Precision() < exactRes.Precision()-0.15 {
		t.Errorf("estimated-similarity routing precision %v far below exact %v",
			estRes.Precision(), exactRes.Precision())
	}
}

// TestCountersVsSamplesOnBranchingQueries verifies at integration scale
// that the paper's motivating failure of counters (independence at
// branches) shows up while sample-based schemes stay accurate.
func TestCountersVsSamplesOnBranchingQueries(t *testing.T) {
	// Corpus with strong anti-correlation: u-docs have x, v-docs have y,
	// never both.
	var docs []*Tree
	for i := 0; i < 100; i++ {
		spec := "r(u(x))"
		if i%2 == 1 {
			spec = "r(v(y))"
		}
		doc, err := ParseXMLString(compactToXML(spec))
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, doc)
	}
	q := MustParsePattern("/r[u][v]") // never matches

	counters := New(Config{Representation: Counters, Seed: 1})
	hashes := New(Config{Representation: Hashes, HashCapacity: 500, Seed: 1})
	for _, doc := range docs {
		counters.ObserveTree(doc)
		hashes.ObserveTree(doc)
	}
	if got := counters.Selectivity(q); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("counters P = %v, want 0.25 (independence estimate)", got)
	}
	if got := hashes.Selectivity(q); got != 0 {
		t.Errorf("hashes P = %v, want 0", got)
	}
}

// compactToXML converts "a(b,c)" into "<a><b/><c/></a>" for the public
// ParseXMLString API.
func compactToXML(spec string) string {
	var out bytes.Buffer
	var name bytes.Buffer
	var stack []string
	flushOpen := func(selfClose bool) {
		if name.Len() == 0 {
			return
		}
		tag := name.String()
		name.Reset()
		if selfClose {
			out.WriteString("<" + tag + "/>")
		} else {
			out.WriteString("<" + tag + ">")
			stack = append(stack, tag)
		}
	}
	for _, r := range spec {
		switch r {
		case '(':
			flushOpen(false)
		case ',':
			flushOpen(true)
		case ')':
			flushOpen(true)
			out.WriteString("</" + stack[len(stack)-1] + ">")
			stack = stack[:len(stack)-1]
		default:
			name.WriteRune(r)
		}
	}
	flushOpen(true)
	return out.String()
}

// TestWindowedVsUnboundedEstimator cross-checks the sliding-window
// estimator against an unbounded exact estimator over the same suffix.
func TestWindowedVsUnboundedEstimator(t *testing.T) {
	d := dtd.Media()
	gen := xmlgen.New(d, xmlgen.Options{Seed: 61})
	const window = 50
	we := NewWindow(window)
	var suffix []*Tree
	for i := 0; i < 200; i++ {
		doc := gen.Generate()
		we.ObserveTree(doc)
		suffix = append(suffix, doc)
		if len(suffix) > window {
			suffix = suffix[1:]
		}
	}
	// Reference: unbounded Sets estimator fed only the suffix.
	ref := synopsis.New(synopsis.Options{Kind: matchset.KindSets, NoReservoir: true})
	for _, doc := range suffix {
		ref.Insert(doc)
	}
	refEst := selectivity.New(ref)
	for _, q := range []string{"/media/CD", "//composer/last", "/media[book][CD]", "//soloist"} {
		p := pattern.MustParse(q)
		a, b := we.Selectivity(p), refEst.P(p)
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("window P(%s) = %v, reference %v", q, a, b)
		}
	}
}

// TestMinimizeBeforeClustering checks the containment/minimization
// extension composes with the estimator: a redundant subscription and
// its minimized form get identical selectivities.
func TestMinimizeBeforeClustering(t *testing.T) {
	est := New(Config{Representation: Sets, SetCapacity: 1 << 16, Seed: 1})
	for _, doc := range GenerateDocuments(dtd.Media(), 120, 71) {
		est.ObserveTree(doc)
	}
	p := MustParsePattern("/media[CD][CD/title]") // CD/title implies CD
	q := MinimizePattern(p)
	if q.Size() >= p.Size() {
		t.Fatalf("minimization did not shrink %s -> %s", p, q)
	}
	if !ContainsPattern(p, q) || !ContainsPattern(q, p) {
		t.Fatal("minimized pattern not equivalent")
	}
	a, b := est.Selectivity(p), est.Selectivity(q)
	if a != b {
		t.Errorf("P(original) = %v, P(minimized) = %v", a, b)
	}
}
