// Package aggregate implements tree-pattern subscription aggregation:
// replacing a set of subscriptions by a smaller set of more general
// patterns, bounding the precision lost. This is the technique of Chan,
// Fan, Felber, Garofalakis & Rastogi, "Tree Pattern Aggregation for
// Scalable XML Data Dissemination" (VLDB'02) — reference [4] of the
// paper — whose whole premise is exactly what the similarity estimator
// enables: aggregation decisions guided by selectivity estimates over
// the observed document stream.
//
// The aggregation operator is a structural upper bound: Generalize(p, q)
// returns a pattern that contains both p and q (every document matching
// either also matches the result). The aggregator greedily merges the
// pair whose upper bound has the least estimated selectivity increase
// until the subscription set fits the target size.
package aggregate

import (
	"sort"

	"treesim/internal/pattern"
)

// Generalize returns a pattern containing both p and q. The bound is
// built structurally: shared root constraints are merged recursively;
// constraints present on only one side are dropped (dropping constraints
// generalizes); label disagreements unify to wildcards; child/descendant
// disagreements unify to descendants. The result is minimized.
func Generalize(p, q *pattern.Pattern) *pattern.Pattern {
	// Containment shortcuts keep the bound tight.
	if pattern.Contains(p, q) {
		return p.Clone()
	}
	if pattern.Contains(q, p) {
		return q.Clone()
	}
	out := pattern.New()
	out.Root.Children = mergeChildLists(p.Root.Children, q.Root.Children, true)
	return out.Minimize()
}

// mergeChildLists pairs up the two child lists and merges each pair into
// an upper bound; unpaired children are dropped (dropping a constraint
// generalizes). atRoot tracks the special root semantics (a tag child
// constrains the document root itself).
func mergeChildLists(a, b []*pattern.Node, atRoot bool) []*pattern.Node {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	// Work on sorted copies for determinism.
	as := sortedNodes(a)
	bs := sortedNodes(b)
	usedA := make([]bool, len(as))
	usedB := make([]bool, len(bs))
	var out []*pattern.Node
	// Pass 1: pair children whose (descendant-unwrapped) labels agree.
	for i, an := range as {
		_, ai := splitDesc(an)
		for j, bn := range bs {
			if usedB[j] {
				continue
			}
			_, bi := splitDesc(bn)
			if ai.Label != bi.Label {
				continue
			}
			usedA[i], usedB[j] = true, true
			if m := mergePair(an, bn, atRoot); m != nil {
				out = append(out, m)
			}
			break
		}
	}
	// Pass 2: leftovers pair in sorted order, unifying labels to
	// wildcards.
	j := 0
	for i := range as {
		if usedA[i] {
			continue
		}
		for j < len(bs) && usedB[j] {
			j++
		}
		if j >= len(bs) {
			break
		}
		usedA[i], usedB[j] = true, true
		if m := mergePair(as[i], bs[j], atRoot); m != nil {
			out = append(out, m)
		}
	}
	return out
}

// mergePair merges two sibling constraints into an upper bound, or
// returns nil when no useful bound exists (the pair contributes no
// constraint).
func mergePair(a, b *pattern.Node, atRoot bool) *pattern.Node {
	ad, an := splitDesc(a)
	bd, bn := splitDesc(b)
	label := an.Label
	switch {
	case an.Label == bn.Label:
		// keep label
	case an.Label == pattern.Wildcard || bn.Label == pattern.Wildcard:
		label = pattern.Wildcard
	default:
		// Distinct tags unify to a wildcard.
		label = pattern.Wildcard
	}
	node := &pattern.Node{Label: label}
	node.Children = mergeChildLists(an.Children, bn.Children, false)
	// At the root, a bare wildcard constraint ("some root exists") is
	// vacuous and a descendant wildcard likewise.
	if atRoot && label == pattern.Wildcard && len(node.Children) == 0 {
		return nil
	}
	if ad || bd {
		// Either side reaches its node via a descendant edge: the bound
		// must too.
		return &pattern.Node{Label: pattern.Descendant, Children: []*pattern.Node{node}}
	}
	return node
}

// splitDesc unwraps a descendant operator: returns whether the
// constraint is descendant-reached and the underlying node.
func splitDesc(n *pattern.Node) (bool, *pattern.Node) {
	if n.Label == pattern.Descendant {
		return true, n.Children[0]
	}
	return false, n
}

func sortedNodes(ns []*pattern.Node) []*pattern.Node {
	out := append([]*pattern.Node{}, ns...)
	sort.Slice(out, func(i, j int) bool {
		return nodeKey(out[i]) < nodeKey(out[j])
	})
	return out
}

func nodeKey(n *pattern.Node) string {
	p := &pattern.Pattern{Root: &pattern.Node{Label: pattern.Root, Children: []*pattern.Node{n}}}
	return p.Clone().Canonicalize().String()
}

// Selectivities estimates pattern match probabilities; the synopsis
// estimator satisfies it (it is exactly metrics.Source, re-declared
// here to keep the package free-standing).
type Selectivities interface {
	// P estimates the probability that a document matches p.
	P(p *pattern.Pattern) float64
	// PAnd estimates the probability that a document matches both.
	PAnd(p, q *pattern.Pattern) float64
}

// Result describes an aggregation outcome.
type Result struct {
	// Patterns is the aggregated subscription set.
	Patterns []*pattern.Pattern
	// Groups maps each aggregated pattern to the indices of the input
	// subscriptions it covers.
	Groups [][]int
	// EstimatedLoss is the total estimated selectivity increase
	// (spurious-match probability added by generalization), summed over
	// merges.
	EstimatedLoss float64
}

// Aggregate reduces the subscription set to at most target patterns by
// greedily merging the pair whose upper bound adds the least estimated
// selectivity (false-positive probability), as estimated by est over
// the observed stream. The containment relation is exploited first:
// subscriptions contained in another collapse for free.
func Aggregate(subs []*pattern.Pattern, target int, est Selectivities) Result {
	if target < 1 {
		target = 1
	}
	type entry struct {
		p     *pattern.Pattern
		group []int
		sel   float64
	}
	var entries []*entry
	for i, p := range subs {
		entries = append(entries, &entry{p: p, group: []int{i}, sel: est.P(p)})
	}
	res := Result{}

	// Phase 1: free merges via containment.
	for i := 0; i < len(entries); i++ {
		for j := len(entries) - 1; j > i; j-- {
			if pattern.Contains(entries[i].p, entries[j].p) {
				entries[i].group = append(entries[i].group, entries[j].group...)
				entries = append(entries[:j], entries[j+1:]...)
			} else if pattern.Contains(entries[j].p, entries[i].p) {
				entries[j].group = append(entries[j].group, entries[i].group...)
				entries[i] = entries[j]
				entries = append(entries[:j], entries[j+1:]...)
			}
		}
	}

	// Phase 2: greedy least-loss merging until the target is met. Pair
	// losses are cached: a merge only invalidates pairs involving the
	// merged entries, so each round costs O(n) new evaluations instead
	// of O(n²).
	type pairInfo struct {
		bound *pattern.Pattern
		loss  float64
	}
	cache := make(map[[2]*entry]pairInfo)
	evalPair := func(a, b *entry) pairInfo {
		key := [2]*entry{a, b}
		if pi, ok := cache[key]; ok {
			return pi
		}
		bound := Generalize(a.p, b.p)
		// Loss: estimated selectivity the bound adds beyond the union
		// of the two originals, P(bound) − P(pa ∨ pb).
		union := a.sel + b.sel - est.PAnd(a.p, b.p)
		if union > 1 {
			union = 1
		}
		loss := est.P(bound) - union
		if loss < 0 {
			loss = 0
		}
		pi := pairInfo{bound: bound, loss: loss}
		cache[key] = pi
		return pi
	}
	for len(entries) > target {
		bestI, bestJ := -1, -1
		var best pairInfo
		for i := 0; i < len(entries); i++ {
			for j := i + 1; j < len(entries); j++ {
				pi := evalPair(entries[i], entries[j])
				if bestI < 0 || pi.loss < best.loss {
					bestI, bestJ, best = i, j, pi
				}
			}
		}
		if bestI < 0 {
			break
		}
		merged := &entry{
			p:     best.bound,
			group: append(append([]int{}, entries[bestI].group...), entries[bestJ].group...),
			sel:   est.P(best.bound),
		}
		res.EstimatedLoss += best.loss
		entries = append(entries[:bestJ], entries[bestJ+1:]...)
		entries[bestI] = merged
		// Stale cache entries reference dead *entry pointers and are
		// simply never looked up again; no invalidation needed.
	}

	for _, e := range entries {
		sort.Ints(e.group)
		res.Patterns = append(res.Patterns, e.p)
		res.Groups = append(res.Groups, e.group)
	}
	return res
}
