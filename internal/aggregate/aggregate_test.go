package aggregate

import (
	"math/rand"
	"testing"

	"treesim/internal/matchset"
	"treesim/internal/pattern"
	"treesim/internal/selectivity"
	"treesim/internal/synopsis"
	"treesim/internal/xmltree"
)

func TestGeneralizeContainsBoth(t *testing.T) {
	cases := [][2]string{
		{"/a/b", "/a/c"},
		{"/a/b", "//b"},
		{"/a[b][c]", "/a[b][d]"},
		{"/a/b/c", "/a//c"},
		{"/media/CD", "/media/book"},
		{"/a", "/b"},
		{"/a[b/c]", "/a[b/d]"},
		{"//x[y]", "//x[z]"},
		{"/a/*/c", "/a/b/c"},
	}
	for _, c := range cases {
		p, q := pattern.MustParse(c[0]), pattern.MustParse(c[1])
		g := Generalize(p, q)
		if err := g.Validate(); err != nil {
			t.Fatalf("Generalize(%s, %s) invalid: %v", c[0], c[1], err)
		}
		if !pattern.Contains(g, p) || !pattern.Contains(g, q) {
			t.Errorf("Generalize(%s, %s) = %s does not contain both", c[0], c[1], g)
		}
	}
}

func TestGeneralizeContainmentShortcut(t *testing.T) {
	p := pattern.MustParse("//b")
	q := pattern.MustParse("/a/b")
	g := Generalize(p, q)
	if !g.Equal(p) {
		t.Errorf("Generalize(container, contained) = %s, want %s", g, p)
	}
}

func TestGeneralizeKeepsSharedStructure(t *testing.T) {
	// Shared branches must survive generalization, not collapse to "/."
	g := Generalize(pattern.MustParse("/a[b][c]"), pattern.MustParse("/a[b][d]"))
	if !pattern.Contains(g, pattern.MustParse("/a/b")) {
		t.Errorf("generalization %s lost too much structure", g)
	}
	// It must still require a and b.
	doc, _ := xmltree.ParseCompact("a(x)")
	if pattern.Matches(doc, g) {
		t.Errorf("generalization %s dropped the b constraint entirely", g)
	}
}

// TestGeneralizeSoundnessRandom: Generalize must produce a container of
// both inputs for random pattern pairs (checked both by the containment
// test and by random documents).
func TestGeneralizeSoundnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labels := []string{"a", "b", "c"}
	var randPat func() *pattern.Pattern
	randPat = func() *pattern.Pattern {
		var build func(depth int, allowDesc bool) *pattern.Node
		build = func(depth int, allowDesc bool) *pattern.Node {
			r := rng.Float64()
			var n *pattern.Node
			switch {
			case allowDesc && r < 0.15:
				n = &pattern.Node{Label: pattern.Descendant}
				n.Children = []*pattern.Node{build(depth+1, false)}
				return n
			case r < 0.25:
				n = &pattern.Node{Label: pattern.Wildcard}
			default:
				n = &pattern.Node{Label: labels[rng.Intn(len(labels))]}
			}
			if depth < 3 {
				for i := 0; i < rng.Intn(3); i++ {
					n.Children = append(n.Children, build(depth+1, true))
				}
			}
			return n
		}
		p := pattern.New()
		p.Root.Children = []*pattern.Node{build(1, true)}
		return p
	}
	var randDoc func() *xmltree.Tree
	randDoc = func() *xmltree.Tree {
		var build func(depth int) *xmltree.Node
		build = func(depth int) *xmltree.Node {
			n := &xmltree.Node{Label: labels[rng.Intn(len(labels))]}
			if depth < 4 {
				for i := 0; i < rng.Intn(3); i++ {
					n.Children = append(n.Children, build(depth+1))
				}
			}
			return n
		}
		return &xmltree.Tree{Root: build(1)}
	}
	for trial := 0; trial < 300; trial++ {
		p, q := randPat(), randPat()
		g := Generalize(p, q)
		if err := g.Validate(); err != nil {
			t.Fatalf("invalid bound for (%s, %s): %v", p, q, err)
		}
		for i := 0; i < 25; i++ {
			d := randDoc()
			if (pattern.Matches(d, p) || pattern.Matches(d, q)) && !pattern.Matches(d, g) {
				t.Fatalf("unsound bound: doc %s matches %s or %s but not %s", d, p, q, g)
			}
		}
	}
}

func buildEstimator(t *testing.T, docs []string) *selectivity.Estimator {
	t.Helper()
	s := synopsis.New(synopsis.Options{Kind: matchset.KindSets, SetCapacity: 1 << 20, Seed: 1})
	for _, spec := range docs {
		tr, err := xmltree.ParseCompact(spec)
		if err != nil {
			t.Fatal(err)
		}
		s.Insert(tr)
	}
	return selectivity.New(s)
}

func TestAggregateContainmentPhase(t *testing.T) {
	est := buildEstimator(t, []string{"a(b(c))", "a(b)", "a(x)"})
	subs := []*pattern.Pattern{
		pattern.MustParse("/a/b"),
		pattern.MustParse("/a/b/c"), // contained in the first
		pattern.MustParse("//b"),    // contains both
	}
	res := Aggregate(subs, 2, est)
	if len(res.Patterns) != 1 {
		t.Fatalf("containment phase should collapse all three into //b: %v", res.Patterns)
	}
	if !res.Patterns[0].Equal(pattern.MustParse("//b")) {
		t.Errorf("representative = %s, want //b", res.Patterns[0])
	}
	if len(res.Groups[0]) != 3 {
		t.Errorf("group = %v, want all three", res.Groups[0])
	}
	if res.EstimatedLoss != 0 {
		t.Errorf("containment merges must be free, loss = %v", res.EstimatedLoss)
	}
}

func TestAggregateGreedyMerging(t *testing.T) {
	// Corpus where /a/b and /a/c co-occur but /x/y is disjoint.
	est := buildEstimator(t, []string{
		"a(b,c)", "a(b,c)", "a(b,c)", "x(y)", "x(y)",
	})
	subs := []*pattern.Pattern{
		pattern.MustParse("/a/b"),
		pattern.MustParse("/a/c"),
		pattern.MustParse("/x/y"),
	}
	res := Aggregate(subs, 2, est)
	if len(res.Patterns) != 2 {
		t.Fatalf("aggregated to %d patterns, want 2", len(res.Patterns))
	}
	// The cheap merge is /a/b with /a/c (their bound /a[*] or similar
	// adds no documents); merging anything with /x/y would add spurious
	// matches.
	for i, g := range res.Groups {
		if len(g) == 2 {
			// The merged pair must be {0, 1}.
			if g[0] != 0 || g[1] != 1 {
				t.Errorf("merged pair = %v, want [0 1] (pattern %s)", g, res.Patterns[i])
			}
		}
	}
}

func TestAggregateCoversAllInputs(t *testing.T) {
	est := buildEstimator(t, []string{"a(b)", "a(c)", "d(e)", "d(f)"})
	subs := []*pattern.Pattern{
		pattern.MustParse("/a/b"),
		pattern.MustParse("/a/c"),
		pattern.MustParse("/d/e"),
		pattern.MustParse("/d/f"),
	}
	res := Aggregate(subs, 2, est)
	seen := make(map[int]bool)
	for gi, g := range res.Groups {
		for _, idx := range g {
			if seen[idx] {
				t.Fatalf("input %d covered twice", idx)
			}
			seen[idx] = true
			// The group's representative must contain the original.
			if !pattern.Contains(res.Patterns[gi], subs[idx]) {
				t.Errorf("representative %s does not contain input %s",
					res.Patterns[gi], subs[idx])
			}
		}
	}
	if len(seen) != len(subs) {
		t.Errorf("covered %d of %d inputs", len(seen), len(subs))
	}
}

func TestAggregateTargetOne(t *testing.T) {
	est := buildEstimator(t, []string{"a(b)", "c(d)"})
	subs := []*pattern.Pattern{
		pattern.MustParse("/a/b"),
		pattern.MustParse("/c/d"),
	}
	res := Aggregate(subs, 1, est)
	if len(res.Patterns) != 1 {
		t.Fatalf("want a single representative, got %d", len(res.Patterns))
	}
	// The only sound bound of two disjoint rooted paths is (close to)
	// the empty pattern.
	for _, doc := range []string{"a(b)", "c(d)"} {
		tr, _ := xmltree.ParseCompact(doc)
		if !pattern.Matches(tr, res.Patterns[0]) {
			t.Errorf("representative %s misses %s", res.Patterns[0], doc)
		}
	}
}
