// Package bitset provides dense fixed-universe bitsets used to hold
// exact ground-truth matching sets (the Dp document sets of the paper's
// evaluation) and to compute exact conjunction/disjunction probabilities
// quickly via word-parallel operations.
package bitset

import (
	"fmt"
	"math/bits"
)

// Set is a bitset over the universe [0, n). The zero value is an empty
// set over an empty universe.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative universe size %d", n))
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the universe size n.
func (s *Set) Len() int { return s.n }

// Add inserts i into the set. It panics if i is outside the universe.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of universe [0,%d)", i, s.n))
	}
}

// Reset removes every element without changing the universe.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Grow extends the universe to at least n (keeping current members).
// Shrinking is not supported; a smaller n is a no-op.
func (s *Set) Grow(n int) {
	if n <= s.n {
		return
	}
	s.n = n
	if need := (n + 63) / 64; need > len(s.words) {
		if need <= cap(s.words) {
			s.words = s.words[:need]
		} else {
			w := make([]uint64, need)
			copy(w, s.words)
			s.words = w
		}
	}
}

// UnionWith adds every member of t to s in place. Panics if the
// universes differ.
func (s *Set) UnionWith(t *Set) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// WordsLen returns the number of 64-bit words backing the set.
func (s *Set) WordsLen() int { return len(s.words) }

// Word returns the i-th backing word — read access for hot loops that
// iterate set bits (e.g. of an intersection) without closure overhead.
func (s *Set) Word(i int) uint64 { return s.words[i] }

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a copy of the set.
func (s *Set) Clone() *Set {
	out := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	return out
}

// And returns the intersection of s and t as a new set. Panics if the
// universes differ.
func (s *Set) And(t *Set) *Set {
	s.sameUniverse(t)
	out := New(s.n)
	for i := range s.words {
		out.words[i] = s.words[i] & t.words[i]
	}
	return out
}

// Or returns the union of s and t as a new set.
func (s *Set) Or(t *Set) *Set {
	s.sameUniverse(t)
	out := New(s.n)
	for i := range s.words {
		out.words[i] = s.words[i] | t.words[i]
	}
	return out
}

// AndCount returns |s ∩ t| without materializing the intersection.
func (s *Set) AndCount(t *Set) int {
	s.sameUniverse(t)
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// OrCount returns |s ∪ t| without materializing the union.
func (s *Set) OrCount(t *Set) int {
	s.sameUniverse(t)
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] | t.words[i])
	}
	return c
}

// Jaccard returns |s∩t| / |s∪t|, and 0 when both sets are empty.
func (s *Set) Jaccard(t *Set) float64 {
	u := s.OrCount(t)
	if u == 0 {
		return 0
	}
	return float64(s.AndCount(t)) / float64(u)
}

// Elements returns the members of the set in increasing order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

func (s *Set) sameUniverse(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.n, t.n))
	}
}
