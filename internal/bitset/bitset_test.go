package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130) // cross a word boundary
	for _, i := range []int{0, 63, 64, 65, 129} {
		s.Add(i)
	}
	if got := s.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	for _, i := range []int{0, 63, 64, 65, 129} {
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false", i)
		}
	}
	if s.Contains(1) || s.Contains(128) {
		t.Error("unexpected membership")
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 4 {
		t.Error("Remove failed")
	}
	if got := s.Elements(); !reflect.DeepEqual(got, []int{0, 63, 65, 129}) {
		t.Errorf("Elements = %v", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Count() != 1 {
		t.Errorf("Count = %d, want 1", s.Count())
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := New(200), New(200)
	for i := 0; i < 200; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 200; i += 3 {
		b.Add(i)
	}
	and := a.And(b)
	or := a.Or(b)
	for i := 0; i < 200; i++ {
		wantAnd := i%2 == 0 && i%3 == 0
		wantOr := i%2 == 0 || i%3 == 0
		if and.Contains(i) != wantAnd {
			t.Fatalf("And.Contains(%d) = %v", i, and.Contains(i))
		}
		if or.Contains(i) != wantOr {
			t.Fatalf("Or.Contains(%d) = %v", i, or.Contains(i))
		}
	}
	if a.AndCount(b) != and.Count() {
		t.Errorf("AndCount = %d, want %d", a.AndCount(b), and.Count())
	}
	if a.OrCount(b) != or.Count() {
		t.Errorf("OrCount = %d, want %d", a.OrCount(b), or.Count())
	}
}

func TestJaccard(t *testing.T) {
	a, b := New(10), New(10)
	if got := a.Jaccard(b); got != 0 {
		t.Errorf("empty Jaccard = %v, want 0", got)
	}
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(3)
	if got := a.Jaccard(b); got != 1.0/3 {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
}

func TestInclusionExclusion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Add(i)
			}
			if rng.Intn(3) == 0 {
				b.Add(i)
			}
		}
		return a.OrCount(b) == a.Count()+b.Count()-a.AndCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(10)
	a.Add(5)
	b := a.Clone()
	b.Add(6)
	if a.Contains(6) {
		t.Error("mutating clone affected original")
	}
}

func TestPanics(t *testing.T) {
	s := New(4)
	for _, f := range []func(){
		func() { s.Add(4) },
		func() { s.Add(-1) },
		func() { s.Contains(100) },
		func() { s.And(New(5)) },
		func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestResetGrowUnion(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(9)
	s.Reset()
	if s.Count() != 0 {
		t.Fatal("Reset left members behind")
	}
	if s.Len() != 10 {
		t.Fatalf("Reset changed universe to %d", s.Len())
	}

	s.Add(9)
	s.Grow(200)
	if s.Len() != 200 {
		t.Fatalf("Grow: Len = %d, want 200", s.Len())
	}
	if !s.Contains(9) {
		t.Fatal("Grow dropped member 9")
	}
	s.Add(130)
	s.Grow(50) // shrink is a no-op
	if s.Len() != 200 || !s.Contains(130) {
		t.Fatal("Grow(50) must be a no-op on a larger set")
	}

	t2 := New(200)
	t2.Add(64)
	s.UnionWith(t2)
	for _, want := range []int{9, 64, 130} {
		if !s.Contains(want) {
			t.Errorf("union missing %d", want)
		}
	}
	if s.Count() != 3 {
		t.Errorf("union Count = %d, want 3", s.Count())
	}
	if s.WordsLen() != 4 || s.Word(1) != 1 {
		t.Errorf("word access: len=%d word1=%d, want 4, 1 (bit 64)", s.WordsLen(), s.Word(1))
	}
}
