package broker

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"treesim/internal/persist"
)

// memJournal records delivery-plane WAL records in memory with
// sequential LSNs. The crash-point matrix replays arbitrary prefixes of
// it: every prefix is a legal crash (records are appended in commit
// order), and recovery from any of them must preserve the at-least-once
// contract — duplicates allowed, loss never.
type memJournal struct {
	mu   sync.Mutex
	recs []persist.Record
}

func (j *memJournal) append(r persist.Record) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recs = append(j.recs, r)
	return uint64(len(j.recs)), nil
}

func (j *memJournal) Subscribed(id uint64, expr string, group int, mode DeliveryMode) (uint64, error) {
	return j.append(persist.Record{Op: persist.OpSubscribe, ID: id, Expr: expr, Group: group, Mode: uint8(mode)})
}
func (j *memJournal) Unsubscribed(id uint64) (uint64, error) {
	return j.append(persist.Record{Op: persist.OpUnsubscribe, ID: id})
}
func (j *memJournal) Rebuilt(groups [][]uint64, reps []uint64) (uint64, error) {
	return j.append(persist.Record{Op: persist.OpRebuild, Groups: groups, Reps: reps})
}
func (j *memJournal) Delivered(seq uint64, xml string, subs, cursors []uint64, comms []int) (uint64, error) {
	return j.append(persist.Record{Op: persist.OpDeliver, Seq: seq, XML: xml, Subs: subs, Cursors: cursors, Comms: comms})
}
func (j *memJournal) Acked(id uint64, upto uint64) (uint64, error) {
	return j.append(persist.Record{Op: persist.OpAck, ID: id, Cursor: upto})
}
func (j *memJournal) Drained(id uint64, upto uint64) (uint64, error) {
	return j.append(persist.Record{Op: persist.OpDrained, ID: id, Cursor: upto})
}

func (j *memJournal) records() []persist.Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]persist.Record(nil), j.recs...)
}

// dropOps returns recs without any record matching op — "the crash hit
// before this decision reached the WAL".
func dropOps(recs []persist.Record, op string) []persist.Record {
	out := make([]persist.Record, 0, len(recs))
	for _, r := range recs {
		if r.Op != op {
			out = append(out, r)
		}
	}
	return out
}

// applyRecords drives records through the engine's Apply* recovery
// dispatch, exactly as a WAL replay would.
func applyRecords(t *testing.T, e *Engine, recs []persist.Record) {
	t.Helper()
	for i, rec := range recs {
		var err error
		switch rec.Op {
		case persist.OpSubscribe:
			err = e.ApplySubscribed(rec.ID, rec.Expr, rec.Group, DeliveryMode(rec.Mode))
		case persist.OpUnsubscribe:
			err = e.ApplyUnsubscribed(rec.ID)
		case persist.OpRebuild:
			err = e.ApplyRebuilt(rec.Groups, rec.Reps)
		case persist.OpDeliver:
			err = e.ApplyDelivered(rec.Seq, rec.XML, rec.Subs, rec.Cursors, rec.Comms)
		case persist.OpAck:
			err = e.ApplyAcked(rec.ID, rec.Cursor)
		case persist.OpDrained:
			err = e.ApplyDrained(rec.ID, rec.Cursor)
		default:
			err = fmt.Errorf("unknown op %q", rec.Op)
		}
		if err != nil {
			t.Fatalf("replay record %d (%s): %v", i, rec.Op, err)
		}
	}
}

func TestAckedDrainAckLifecycle(t *testing.T) {
	e := newTestEngine(t, Config{})
	id, err := e.SubscribeOpts("//b", SubscribeOptions{Mode: AtLeastOnce})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Publish(doc(t, "a(b)")); err != nil {
			t.Fatal(err)
		}
	}
	r, err := e.DrainBatch(id, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != AtLeastOnce || len(r.Deliveries) != 3 {
		t.Fatalf("DrainBatch = mode %v, %d deliveries; want at-least-once, 3", r.Mode, len(r.Deliveries))
	}
	for i, d := range r.Deliveries {
		if d.Cursor != uint64(i+1) || d.Redelivered {
			t.Fatalf("delivery %d = cursor %d redelivered %v; want cursor %d, fresh", i, d.Cursor, d.Redelivered, i+1)
		}
	}
	if r.Cursor != 3 || r.Committed != 0 {
		t.Fatalf("batch cursor %d committed %d, want 3, 0", r.Cursor, r.Committed)
	}
	// The whole batch is leased: nothing is drainable until acks or
	// lease expiry.
	if r2, _ := e.DrainBatch(id, 0, 0); len(r2.Deliveries) != 0 {
		t.Fatalf("second drain returned %d leased deliveries", len(r2.Deliveries))
	}
	if acked, err := e.Ack(id, 2); err != nil || acked != 2 {
		t.Fatalf("Ack(2) = %d, %v; want 2 acked", acked, err)
	}
	// Acks are idempotent.
	if acked, err := e.Ack(id, 2); err != nil || acked != 0 {
		t.Fatalf("re-Ack(2) = %d, %v; want 0 acked", acked, err)
	}
	// Cursor 3 is still leased; lapse the lease and it must come back
	// flagged as a redelivery.
	if n := e.SweepLeases(time.Now().Add(48 * time.Hour)); n != 1 {
		t.Fatalf("SweepLeases reclaimed %d, want 1", n)
	}
	r3, err := e.DrainBatch(id, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Deliveries) != 1 || r3.Deliveries[0].Cursor != 3 || !r3.Deliveries[0].Redelivered {
		t.Fatalf("post-expiry drain = %+v; want one redelivery of cursor 3", r3.Deliveries)
	}
	if r3.Committed != 2 {
		t.Fatalf("committed = %d, want 2", r3.Committed)
	}
	if acked, err := e.Ack(id, 3); err != nil || acked != 1 {
		t.Fatalf("Ack(3) = %d, %v; want 1 acked", acked, err)
	}
	if e.Pending(id) != 0 {
		t.Fatalf("Pending = %d after full ack, want 0", e.Pending(id))
	}
	st := e.Stats()
	if st.Acked != 3 || st.Redeliveries != 1 || st.LeaseExpiries != 1 {
		t.Fatalf("stats acked %d redeliveries %d lease expiries %d; want 3, 1, 1",
			st.Acked, st.Redeliveries, st.LeaseExpiries)
	}
}

func TestAckErrors(t *testing.T) {
	e := newTestEngine(t, Config{})
	amo, err := e.Subscribe("//b")
	if err != nil {
		t.Fatal(err)
	}
	alo, err := e.SubscribeOpts("//c", SubscribeOptions{Mode: AtLeastOnce})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ack(99999, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Ack(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := e.Ack(amo, 1); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("Ack(at-most-once sub) = %v, want ErrWrongMode", err)
	}
	// The log never issued cursor 7: acking it must be refused, not
	// silently ratcheted past deliveries the consumer never saw.
	if _, err := e.Ack(alo, 7); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("Ack(unissued cursor) = %v, want ErrBadCursor", err)
	}
	e.Close()
	if _, err := e.Ack(alo, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ack(closed engine) = %v, want ErrClosed", err)
	}
}

func TestAtMostOnceGapMarker(t *testing.T) {
	e := newTestEngine(t, Config{QueueCapacity: 4})
	id, err := e.Subscribe("//b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.Publish(doc(t, "a(b)")); err != nil {
			t.Fatal(err)
		}
	}
	r, err := e.DrainBatch(id, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != AtMostOnce || len(r.Deliveries) != 4 {
		t.Fatalf("DrainBatch = mode %v, %d deliveries; want at-most-once, 4", r.Mode, len(r.Deliveries))
	}
	// 6 deliveries were evicted drop-oldest between polls: the batch
	// must say so explicitly instead of leaving a silent hole.
	if r.Gap != 6 {
		t.Fatalf("gap = %d, want 6", r.Gap)
	}
	if r2, _ := e.DrainBatch(id, 0, 0); r2.Gap != 0 {
		t.Fatalf("gap after observing it = %d, want 0", r2.Gap)
	}
}

func TestAckedDocPinnedPastRingWrap(t *testing.T) {
	e := newTestEngine(t, Config{DocCache: 4})
	id, err := e.SubscribeOpts("//b", SubscribeOptions{Mode: AtLeastOnce})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Publish(doc(t, "a(b)"))
	if err != nil {
		t.Fatal(err)
	}
	// Wrap the retention ring with documents that match nothing.
	for i := 0; i < 8; i++ {
		if _, err := e.Publish(doc(t, "x(y)")); err != nil {
			t.Fatal(err)
		}
	}
	// The unacked delivery pins its document past the ring's horizon.
	if e.Document(res.Seq) == nil {
		t.Fatalf("document %d evicted while its delivery is unacked", res.Seq)
	}
	r, err := e.DrainBatch(id, 0, 0)
	if err != nil || len(r.Deliveries) != 1 {
		t.Fatalf("DrainBatch = %v, %v; want the pinned delivery", r.Deliveries, err)
	}
	if e.Document(res.Seq) == nil {
		t.Fatal("document unpinned while leased")
	}
	if _, err := e.Ack(id, r.Cursor); err != nil {
		t.Fatal(err)
	}
	// Acked: the pin drops, and the ring wrapped long ago.
	if e.Document(res.Seq) != nil {
		t.Fatalf("document %d still retained after ack and ring wrap", res.Seq)
	}
}

// TestCrashPointMatrix replays every interesting WAL prefix of one
// acked-delivery history: subscribe, four deliveries, a drained batch,
// an ack of the first two. Whatever the crash point, recovery must
// redeliver everything unacked (duplicates allowed) and never lose a
// delivery or resurrect an acked one past its committed cursor.
func TestCrashPointMatrix(t *testing.T) {
	cfg := Config{}
	e := newTestEngine(t, cfg)
	j := &memJournal{}
	e.SetJournal(j)
	id, err := e.SubscribeOpts("//b", SubscribeOptions{Mode: AtLeastOnce})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]uint64, 0, 4)
	for i := 0; i < 4; i++ {
		res, err := e.Publish(doc(t, "a(b)"))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, res.Seq)
	}
	if r, err := e.DrainBatch(id, 0, 0); err != nil || len(r.Deliveries) != 4 {
		t.Fatalf("drain = %v, %v; want 4", r, err)
	}
	if _, err := e.Ack(id, 2); err != nil {
		t.Fatal(err)
	}
	full := j.records()

	// recover builds a fresh engine from a record sequence and asserts
	// the redeliverable window: wantCursors come back (flagged), the
	// committed floor holds, and every redelivered document's content is
	// still retrievable.
	recover := func(t *testing.T, recs []persist.Record, wantCommitted uint64, wantCursors ...uint64) *Engine {
		t.Helper()
		e2 := newTestEngine(t, cfg)
		applyRecords(t, e2, recs)
		if e2.Live() != 1 {
			t.Fatalf("recovered %d live subs, want 1", e2.Live())
		}
		r, err := e2.DrainBatch(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Committed != wantCommitted {
			t.Fatalf("recovered committed = %d, want %d", r.Committed, wantCommitted)
		}
		if len(r.Deliveries) != len(wantCursors) {
			t.Fatalf("recovered drain = %d deliveries, want %d (%v)", len(r.Deliveries), len(wantCursors), r.Deliveries)
		}
		for i, d := range r.Deliveries {
			if d.Cursor != wantCursors[i] {
				t.Fatalf("recovered delivery %d cursor = %d, want %d", i, d.Cursor, wantCursors[i])
			}
			if !d.Redelivered {
				t.Fatalf("recovered delivery cursor %d not flagged Redelivered", d.Cursor)
			}
			if e2.Document(d.Doc) == nil {
				t.Fatalf("recovered delivery of doc %d has no retrievable content", d.Doc)
			}
		}
		return e2
	}

	t.Run("full_wal", func(t *testing.T) {
		e2 := recover(t, full, 2, 3, 4)
		// The cursor log continues where it left off.
		if _, err := e2.Publish(doc(t, "a(b)")); err != nil {
			t.Fatal(err)
		}
		if _, err := e2.Ack(id, 4); err != nil {
			t.Fatal(err)
		}
		r, err := e2.DrainBatch(id, 0, 0)
		if err != nil || len(r.Deliveries) != 1 || r.Deliveries[0].Cursor != 5 {
			t.Fatalf("post-recovery publish = %+v, %v; want fresh cursor 5", r.Deliveries, err)
		}
	})

	t.Run("ack_in_flight", func(t *testing.T) {
		// Crash before the ack reached the WAL: the committed floor
		// regresses and the acked window comes back as duplicates —
		// at-least-once trades duplicates for loss, never the reverse.
		recover(t, dropOps(full, persist.OpAck), 0, 1, 2, 3, 4)
	})

	t.Run("handout_in_flight", func(t *testing.T) {
		// Crash before the drained hand-out was journaled: the window is
		// still owed. Replayed deliveries count one prior attempt, so the
		// post-recovery drain is conservatively flagged Redelivered even
		// without the OpDrained record.
		recover(t, dropOps(dropOps(full, persist.OpAck), persist.OpDrained), 0, 1, 2, 3, 4)
	})

	t.Run("double_replay", func(t *testing.T) {
		// Replaying the same WAL twice (a snapshot that already covers a
		// prefix, a crash during recovery) must not duplicate entries:
		// cursor dedupe makes every record idempotent.
		recover(t, append(append([]persist.Record(nil), full...), full...), 2, 3, 4)
	})

	t.Run("snapshot_after_ack", func(t *testing.T) {
		st, err := e.State()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := EncodeState(st)
		if err != nil {
			t.Fatal(err)
		}
		st2, err := DecodeState(blob)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := Restore(cfg, st2)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e2.Close() })
		r, err := e2.DrainBatch(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Committed != 2 || len(r.Deliveries) != 2 {
			t.Fatalf("snapshot recovery = committed %d, %d deliveries; want 2, 2", r.Committed, len(r.Deliveries))
		}
		for _, d := range r.Deliveries {
			if !d.Redelivered || e2.Document(d.Doc) == nil {
				t.Fatalf("snapshot-recovered delivery %+v: want flagged, content retained", d)
			}
		}
		if _, err := e2.Ack(id, 4); err != nil {
			t.Fatal(err)
		}
	})
	_ = seqs
}

// TestAckedConservationHammer runs publishers, draining/acking
// consumers, a lease sweeper, and churn concurrently (meant for -race),
// then checks the per-subscription conservation law at quiescence:
// every accepted delivery is acked, shed, or still owed — none vanish.
func TestAckedConservationHammer(t *testing.T) {
	e := newTestEngine(t, Config{QueueCapacity: 8}) // ack log capacity 32: shedding is part of the test
	var ids []uint64
	for i := 0; i < 4; i++ {
		id, err := e.SubscribeOpts("//b", SubscribeOptions{Mode: AtLeastOnce})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	amo, err := e.Subscribe("//b")
	if err != nil {
		t.Fatal(err)
	}

	const docs = 300
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < docs/2; i++ {
				if _, err := e.Publish(doc(t, "a(b)")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[k%len(ids)]
				r, err := e.DrainBatch(id, 8, time.Millisecond)
				if err != nil {
					t.Error(err)
					return
				}
				// Half the batches ack; the rest stall and must be
				// reclaimed by the sweeper.
				if len(r.Deliveries) > 0 && rng.Intn(2) == 0 {
					if _, err := e.Ack(id, r.Cursor); err != nil {
						t.Error(err)
						return
					}
				}
				if k%7 == 0 {
					if _, err := e.Drain(amo, 8, 0); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.SweepLeases(time.Now().Add(time.Hour))
				time.Sleep(time.Millisecond)
			}
		}
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Publishers finish on their own; consumers and the sweeper run
	// until stopped.
	deadline := time.After(30 * time.Second)
	pubDone := make(chan struct{})
	go func() {
		for e.Stats().Published < docs {
			time.Sleep(5 * time.Millisecond)
		}
		close(pubDone)
	}()
	select {
	case <-pubDone:
	case <-deadline:
		t.Fatal("publishers did not finish")
	}
	close(stop)
	<-done

	// Deterministic epilogue — a full stall → lease-expiry → redelivery
	// → ack cycle on every subscription, so the expiry assertions below
	// never depend on how the scheduler interleaved the hammer.
	for i := 0; i < 4; i++ {
		if _, err := e.Publish(doc(t, "a(b)")); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		if _, err := e.DrainBatch(id, 0, 0); err != nil {
			t.Fatal(err) // leases everything owed; deliberately unacked
		}
	}
	if n := e.SweepLeases(time.Now().Add(48 * time.Hour)); n == 0 {
		t.Fatal("epilogue: nothing leased to expire")
	}
	for _, id := range ids {
		r, err := e.DrainBatch(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Deliveries) == 0 {
			t.Fatalf("sub %d: stalled window never redelivered", id)
		}
		if _, err := e.Ack(id, r.Cursor); err != nil {
			t.Fatal(err)
		}
	}

	// Quiescent now: no concurrent movers. The ledger must balance per
	// subscription: delivered == acked + shed + pending + in-flight.
	for _, si := range e.IntrospectSubscriptions() {
		if si.Mode != "at-least-once" {
			continue
		}
		owed := si.Acked + si.Shed + uint64(si.Pending) + uint64(si.InFlight)
		if si.Delivered != owed {
			t.Fatalf("sub %d conservation broken: delivered %d != acked %d + shed %d + pending %d + inflight %d",
				si.ID, si.Delivered, si.Acked, si.Shed, si.Pending, si.InFlight)
		}
		if si.Delivered == 0 {
			t.Fatalf("sub %d saw no deliveries; hammer degenerate", si.ID)
		}
	}
	st := e.Stats()
	if st.LeaseExpiries == 0 || st.Redeliveries == 0 {
		t.Fatalf("hammer never exercised lease expiry/redelivery (expiries %d, redeliveries %d)", st.LeaseExpiries, st.Redeliveries)
	}
}
