package broker

import (
	"sync/atomic"
	"testing"

	"treesim/internal/core"
	"treesim/internal/dtd"
	"treesim/internal/pattern"
	"treesim/internal/querygen"
	"treesim/internal/xmlgen"
	"treesim/internal/xmltree"
)

// benchWorkload builds a paper-style workload: NITF-like documents and
// generated tree-pattern subscriptions.
func benchWorkload(nDocs, nSubs int) ([]*xmltree.Tree, []*pattern.Pattern) {
	d := dtd.NITFLike()
	docs := xmlgen.New(d, xmlgen.Calibrate(d, 100, 41)).GenerateN(nDocs)
	subs := querygen.New(d, querygen.Defaults(43)).GenerateDistinct(nSubs)
	return docs, subs
}

// benchEngine returns an engine with nSubs live subscriptions and the
// history stream already ingested.
func benchEngine(b *testing.B, docs []*xmltree.Tree, subs []*pattern.Pattern) *Engine {
	b.Helper()
	e := New(Config{
		Estimator: core.Config{Representation: core.Hashes, HashCapacity: 256, Seed: 5},
		Rebuild:   DirtyFraction{Fraction: 0.25, MinStale: 64},
	})
	b.Cleanup(func() { e.Close() })
	e.est.ObserveTrees(docs)
	for _, p := range subs {
		if _, err := e.SubscribePattern(p, ""); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// drainAll empties every queue so bounded queues do not skew the
// steady-state measurement with eviction work.
func drainAll(e *Engine, ids []uint64) {
	for _, id := range ids {
		e.Drain(id, 0, 0)
	}
}

// BenchmarkBrokerPublish measures the live routing path: one published
// document against 256 subscriptions maintained as semantic
// communities (representative match → intra-community fan-out).
func BenchmarkBrokerPublish(b *testing.B) {
	docs, subs := benchWorkload(200, 256)
	e := benchEngine(b, docs, subs)
	ids := make([]uint64, 0, e.Live())
	e.mu.RLock()
	for _, s := range e.subs {
		ids = append(ids, s.id)
	}
	e.mu.RUnlock()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Publish(docs[i%len(docs)]); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			b.StopTimer()
			e.Flush()
			drainAll(e, ids)
			b.StartTimer()
		}
	}
	b.StopTimer()
	st := e.Stats()
	b.ReportMetric(float64(st.FilterEvals)/float64(b.N), "filterevals/op")
	b.ReportMetric(float64(st.Deliveries)/float64(b.N), "deliveries/op")
}

// BenchmarkBrokerPublishParallel measures multi-publisher throughput:
// GOMAXPROCS goroutines publish concurrently against the sharded
// engine (Shards scales with -cpu). This is the scaling benchmark —
// compare ns/op across -cpu 1,4 to see the sharded plane's speedup.
func BenchmarkBrokerPublishParallel(b *testing.B) {
	docs, subs := benchWorkload(200, 256)
	e := benchEngine(b, docs, subs)
	b.ReportAllocs()
	b.ResetTimer()
	var i atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := int(i.Add(1))
			if _, err := e.Publish(docs[n%len(docs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := e.Stats()
	b.ReportMetric(float64(st.FilterEvals)/float64(b.N), "filterevals/op")
	b.ReportMetric(float64(st.Deliveries)/float64(b.N), "deliveries/op")
}

// BenchmarkBrokerPublishBatch measures the batched pipeline: one
// PublishBatch call per 32 documents (the daemon's batched POST
// /publish path). ns/op is still per document.
func BenchmarkBrokerPublishBatch(b *testing.B) {
	const batchSize = 32
	docs, subs := benchWorkload(200, 256)
	e := benchEngine(b, docs, subs)
	ids := make([]uint64, 0, e.Live())
	e.mu.RLock()
	for _, s := range e.subs {
		ids = append(ids, s.id)
	}
	e.mu.RUnlock()
	batch := make([]*xmltree.Tree, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		for j := range batch {
			batch[j] = docs[(i+j)%len(docs)]
		}
		if _, err := e.PublishBatch(batch); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 0 && i > 0 {
			b.StopTimer()
			e.Flush()
			drainAll(e, ids)
			b.StartTimer()
		}
	}
}

// BenchmarkBrokerSubscribeChurn measures steady-state churn at 256 live
// subscriptions: each op subscribes a fresh pattern (incremental
// similarity row + community assignment, amortized policy rebuilds) and
// unsubscribes the oldest.
func BenchmarkBrokerSubscribeChurn(b *testing.B) {
	docs, subs := benchWorkload(200, 256)
	churn := querygen.New(dtd.NITFLike(), querygen.Defaults(97)).GenerateDistinct(512)
	e := benchEngine(b, docs, subs)
	var ids []uint64
	e.mu.RLock()
	for _, s := range e.subs {
		ids = append(ids, s.id)
	}
	e.mu.RUnlock()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := e.SubscribePattern(churn[i%len(churn)], "")
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
		e.Unsubscribe(ids[0])
		ids = ids[1:]
	}
	b.StopTimer()
	b.ReportMetric(float64(e.Stats().Rebuilds)/float64(b.N), "rebuilds/op")
}
