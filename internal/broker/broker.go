// Package broker is a live content-based pub/sub engine layered on the
// paper's similarity machinery: consumers subscribe with tree patterns
// at runtime, publishers push XML documents, and the broker keeps the
// consumers clustered into semantic communities so each document is
// matched once per community representative and flooded within the
// communities that hit (Chand, Felber, Garofalakis, ICDE'07, Section 1;
// the batch analogue is internal/routing).
//
// What makes it live rather than a simulation:
//
//   - Subscription churn. Subscribe computes only the new pattern's
//     similarity row against the existing registry (core.SimilarityRow,
//     an O(n) incremental step) and places it into the best existing
//     community (cluster.Assign); Unsubscribe drops the member in O(n).
//     No O(n²) matrix rebuild happens on the churn path.
//   - Staleness-bounded re-clustering. Incremental placement drifts
//     from what a fresh greedy clustering would produce; a pluggable
//     RebuildPolicy watches the mutation count and triggers a full
//     SimilarityMatrix + greedy rebuild when enough of the registry has
//     churned.
//   - A sharded matching plane. Communities are pinned to
//     GOMAXPROCS-scaled shards (whole communities together — placement
//     is community-aware), each shard owning its own matching forest
//     and routing table; a publish flattens the document once and all
//     shards match and deliver in parallel with no shared mutable
//     state, so routing throughput scales with cores while churn on
//     one shard never stalls matching on the others.
//   - A batched ingest pipeline. Published documents are handed to a
//     background ingester that feeds the estimator's synopsis in
//     batches (one lock acquisition per batch); publishing waits on
//     synopsis maintenance only when the bounded pipeline is full
//     (backpressure), and even then never stalls drains or stats.
//   - Per-consumer delivery queues with backpressure: bounded rings
//     that drop the oldest delivery when a slow consumer falls behind,
//     drained with long-poll semantics.
//
// Concurrency: Publish and Drain scale across goroutines (publishes
// synchronize per shard, drains per queue); Subscribe, Unsubscribe and
// policy rebuilds are exclusive on the registry but hold it only for
// the commit — the O(n) similarity row and the O(n²) rebuild matrix
// are computed from snapshots outside all locks. The estimator
// underneath has its own reader/writer discipline, so routing reads
// never block on ingest writes except at the synopsis itself.
package broker

import (
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"treesim/internal/cluster"
	"treesim/internal/core"
	"treesim/internal/intern"
	"treesim/internal/matching"
	"treesim/internal/metrics"
	"treesim/internal/pattern"
	"treesim/internal/telemetry"
	"treesim/internal/xmltree"
)

// Config configures an Engine. The zero value works: Hashes-backed
// estimator defaults, metric M3, threshold 0.5.
type Config struct {
	// Estimator configures the underlying streaming estimator.
	Estimator core.Config
	// Metric is the proximity metric for clustering (default M3).
	Metric metrics.Metric
	// Threshold is the community similarity threshold (default 0.5).
	Threshold float64
	// Shards is the number of matching/delivery shards. 0 (the default)
	// scales with GOMAXPROCS at engine creation; negative forces the
	// unsharded single-forest layout. Each community lives entirely on
	// one shard, and publishes match all shards in parallel.
	Shards int
	// QueueCapacity bounds each consumer's delivery queue (default 256).
	// When a queue is full the oldest delivery is dropped and counted.
	QueueCapacity int
	// IngestQueue bounds the publish→synopsis pipeline (default 1024
	// documents). A full pipeline applies backpressure to publishers.
	IngestQueue int
	// IngestBatch is the maximum number of documents ingested per
	// estimator lock acquisition (default 32).
	IngestBatch int
	// PrecisionSample exact-matches every Nth delivery against the
	// receiving subscription to estimate delivery precision (default 16;
	// 0 keeps the default, negative disables sampling).
	PrecisionSample int
	// Telemetry is the metrics registry the engine registers its
	// counters, gauges, and latency histograms into (nil: a private
	// registry, still readable through Stats). Give a registry to at
	// most one engine — handles are keyed by metric name, so two
	// engines sharing one registry would double-count.
	Telemetry *telemetry.Registry
	// LatencyWindow is retained for configuration compatibility; the
	// publish-latency reservoir it sized was subsumed by the
	// treesim_broker_publish_ns histogram, which has fixed buckets and
	// no window.
	LatencyWindow int
	// DocCache is how many recent published documents stay retrievable
	// by sequence number (Document; the daemon's GET /doc/{seq}), so
	// consumers can fetch the content behind a delivery. Default 4096;
	// negative disables retention. Documents referenced by unacked
	// at-least-once deliveries are pinned outside this budget and stay
	// retrievable until every referencing subscription acks, sheds, or
	// unsubscribes.
	DocCache int
	// AckQueueCapacity bounds each at-least-once cursor log (default
	// 4× QueueCapacity). A full log sheds its oldest entry — counted,
	// never silent — so a dead consumer cannot pin unbounded memory.
	AckQueueCapacity int
	// AckLease is how long a drained at-least-once delivery stays in
	// flight before a missing ack returns it to redeliverable (default
	// 30s). It is also the consumer-session lease: a consumer that
	// stops polling loses its window after AckLease and a reconnecting
	// one resumes from the committed cursor with redelivery.
	AckLease time.Duration
	// LeaseSweep is the background lease-sweeper interval (default
	// AckLease/4 clamped to [10ms, 1s]). Drains also reclaim lapsed
	// leases inline, so the sweeper only bounds how long a fully
	// in-flight queue can park a long-poller.
	LeaseSweep time.Duration
	// Rebuild decides when accumulated churn warrants a full
	// re-clustering (default: DirtyFraction{Fraction: 0.25, MinStale: 64}).
	Rebuild RebuildPolicy
	// Logger receives the engine's operational event records — full
	// re-clusterings and remote-ingest sheds (the latter rate-limited
	// to about one record per second). Events are emitted at WARN so an
	// event ring teeing WARN+ retains them even when console logging
	// runs quieter. nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Metric == 0 {
		c.Metric = metrics.M3
	}
	if c.Threshold == 0 {
		c.Threshold = 0.5
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 256
	}
	if c.IngestQueue <= 0 {
		c.IngestQueue = 1024
	}
	if c.IngestBatch <= 0 {
		c.IngestBatch = 32
	}
	if c.PrecisionSample == 0 {
		c.PrecisionSample = 16
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 1024
	}
	if c.DocCache == 0 {
		c.DocCache = 4096
	}
	if c.AckQueueCapacity <= 0 {
		c.AckQueueCapacity = 4 * c.QueueCapacity
	}
	if c.AckLease <= 0 {
		c.AckLease = 30 * time.Second
	}
	if c.LeaseSweep <= 0 {
		c.LeaseSweep = c.AckLease / 4
		if c.LeaseSweep < 10*time.Millisecond {
			c.LeaseSweep = 10 * time.Millisecond
		}
		if c.LeaseSweep > time.Second {
			c.LeaseSweep = time.Second
		}
	}
	if c.Rebuild == nil {
		c.Rebuild = DirtyFraction{Fraction: 0.25, MinStale: 64}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// DeliveryMode selects a subscription's delivery contract, fixed at
// subscribe time.
type DeliveryMode uint8

const (
	// AtMostOnce is the default: a bounded drop-oldest ring. A slow
	// consumer loses the oldest deliveries first; the loss is counted
	// and surfaces as the drain's gap marker, never silently.
	AtMostOnce DeliveryMode = iota
	// AtLeastOnce is the acked contract: deliveries are a cursor-ordered
	// log, drains lease out a window, Ack advances the committed cursor,
	// and unacked deliveries past the lease are redelivered — across
	// consumer reconnects and (with a journal) broker crashes.
	AtLeastOnce
)

// String renders the mode as its wire name.
func (m DeliveryMode) String() string {
	if m == AtLeastOnce {
		return "at-least-once"
	}
	return "at-most-once"
}

// ParseDeliveryMode parses a wire-format mode name. The empty string is
// the default (at-most-once).
func ParseDeliveryMode(s string) (DeliveryMode, error) {
	switch s {
	case "", "at-most-once":
		return AtMostOnce, nil
	case "at-least-once":
		return AtLeastOnce, nil
	}
	return AtMostOnce, fmt.Errorf("broker: unknown delivery mode %q", s)
}

// Delivery is one document delivered to one subscription.
type Delivery struct {
	// Doc is the broker-assigned publish sequence number.
	Doc uint64 `json:"doc"`
	// Community is the community index whose representative matched.
	Community int `json:"community"`
	// Cursor is the subscription-local delivery cursor (at-least-once
	// mode only; acking a cursor acknowledges every delivery up to it).
	Cursor uint64 `json:"cursor,omitempty"`
	// Redelivered marks a delivery handed out before (lease lapse or
	// crash recovery) — the duplicate the at-least-once contract allows.
	Redelivered bool `json:"redelivered,omitempty"`
}

// PublishResult summarizes the routing of one published document.
type PublishResult struct {
	// Seq is the broker-assigned publish sequence number.
	Seq uint64 `json:"seq"`
	// Matched is the number of communities whose representative matched.
	Matched int `json:"matched"`
	// Deliveries is the number of queues the document was delivered to.
	Deliveries int `json:"deliveries"`
	// Dropped counts older deliveries this document evicted from full
	// consumer queues (plus deliveries lost to closed queues). The
	// document itself still reaches a full queue — the oldest entry
	// makes room.
	Dropped int `json:"dropped"`
	// IngestWaitNS is time this publish spent blocked on the synopsis
	// ingest pipeline; MatchNS the time spent in shard routing. Both
	// feed the corresponding telemetry histograms and the overlay's
	// per-hop trace spans. Additive fields: older clients ignore them.
	IngestWaitNS int64 `json:"ingest_wait_ns,omitempty"`
	MatchNS      int64 `json:"match_ns,omitempty"`
}

// subscriber is one live subscription.
type subscriber struct {
	id   uint64
	pat  *pattern.Pattern
	expr string
	// mode is the delivery contract, fixed at subscribe time.
	mode DeliveryMode
	// shard is the index of the shard holding the subscription's
	// community; fh is its handle in that shard's forest.
	shard int
	fh    int
	q     *queue
}

// Engine is the live broker. Create with New, stop with Close.
type Engine struct {
	cfg Config
	est *core.Estimator

	// mu guards the subscription registry and clustering. Publishes do
	// NOT take it: the routing state they need is maintained per shard.
	mu   sync.RWMutex
	subs []*subscriber
	byID map[uint64]int
	// comms is the global clustering; commShard pins each community
	// group to a shard (index-aligned with comms.Groups) and shardLive
	// tracks per-shard subscription counts for placement.
	comms     *cluster.Communities
	commShard []int
	shardLive []int
	nextID    uint64
	stale     int // registry mutations since the last full rebuild
	regVer    uint64
	// walLSN is the LSN of the newest successfully journaled mutation
	// (see Journal). Updated inside the same registry critical sections
	// that commit and journal, so a State cut under the registry lock
	// reads a watermark exactly consistent with the registry it copies.
	walLSN uint64
	closed bool

	// tbl is the label table shared by every shard forest, so one Flat
	// document load serves the whole fan-out. procs caches GOMAXPROCS
	// at creation: querying it per publish takes the runtime's global
	// sched lock, a serialization point on the exact path sharding
	// parallelizes.
	tbl    *intern.Table
	shards []*shard
	procs  int

	// routeMu orders publishes against Close (shared by routing,
	// exclusive to close the delivery queues under). Registry mutations
	// do not touch it.
	routeMu     sync.RWMutex
	routeClosed bool

	// rebuildBusy lets exactly one goroutine run the (expensive,
	// lock-free) similarity-matrix phase of a policy rebuild at a time.
	rebuildBusy atomic.Bool

	// shedLogNS is the unix-nano timestamp of the last shed event
	// record, the CAS gate rate-limiting shed logging to ~1/s — a
	// saturated pipeline sheds thousands of times per second and must
	// not turn the logger into a second bottleneck.
	shedLogNS atomic.Int64

	// churnHook, when set, observes committed registry mutations
	// (SetChurnHook; the overlay layer's re-advertisement trigger).
	churnHook atomic.Pointer[func(ChurnEvent)]

	// pipeMu guards the ingest pipeline's lifecycle separately from the
	// registry lock: a publisher blocked on a full pipeline (holding
	// pipeMu.RLock during the send) must not stall registry readers —
	// otherwise one pending Subscribe would freeze Drain/Stats behind
	// the RWMutex writer gate until the ingester caught up.
	pipeMu     sync.RWMutex
	pipeClosed bool
	ingest     chan ingestItem
	ingestWG   sync.WaitGroup

	// flatPool recycles the per-publish document arenas, fanPool the
	// parallel fan-out scratch, rowPool/patsPool the subscribe path's
	// similarity-row and registry-snapshot buffers.
	flatPool sync.Pool
	fanPool  sync.Pool
	rowPool  sync.Pool
	patsPool sync.Pool

	// journal, when set, records committed registry mutations for crash
	// recovery (SetJournal). Append failures are counted and latch
	// degraded: the store underneath is fail-stop, so the first error
	// means every later append would fail too — the engine keeps
	// serving reads and at-most-once traffic but refuses new
	// at-least-once subscriptions, whose redelivery contract it could
	// no longer honor across a crash.
	journal  atomic.Pointer[Journal]
	degraded atomic.Bool

	// deliveryLSN is the highest journaled delivery-plane LSN
	// (OpDeliver/OpAck/OpDrained), maintained as a CAS max. Delivery
	// records are journaled outside the registry lock, so they get
	// their own watermark; State folds it into WalLSN, reading it
	// BEFORE copying any queue — every delivery record at or below the
	// fold provably has its queue effect in the cut (effects precede
	// appends), and everything above it replays idempotently.
	deliveryLSN atomic.Uint64

	// sweepStop/sweepWG bound the background lease sweeper that
	// returns lapsed at-least-once leases to redeliverable and wakes
	// parked long-polls.
	sweepStop chan struct{}
	sweepWG   sync.WaitGroup

	pubSeq   atomic.Uint64
	counters counters
	// tel is the metrics registry (cfg.Telemetry or a private one);
	// pubLat/ingestWait are the publish-path latency histograms, read
	// back by Stats for p50/p99.
	tel        *telemetry.Registry
	pubLat     *telemetry.Histogram
	ingestWait *telemetry.Histogram
	docs       *docRing
}

// New starts an engine (including its background ingester).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return newEngine(cfg, core.NewEstimator(cfg.Estimator))
}

// newEngine assembles an engine around an existing estimator — the
// shared constructor of New (fresh estimator) and Restore (estimator
// loaded from a snapshot). cfg already has defaults applied.
func newEngine(cfg Config, est *core.Estimator) *Engine {
	nsh := resolveShards(cfg.Shards)
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	e := &Engine{
		cfg:       cfg,
		est:       est,
		byID:      make(map[uint64]int),
		comms:     &cluster.Communities{Threshold: cfg.Threshold},
		shardLive: make([]int, nsh),
		tbl:       intern.NewTable(),
		shards:    make([]*shard, nsh),
		procs:     runtime.GOMAXPROCS(0),
		ingest:    make(chan ingestItem, cfg.IngestQueue),
		tel:       tel,
		counters:  newCounters(tel),
		sweepStop: make(chan struct{}),
	}
	lb := telemetry.DefaultLatencyBuckets()
	e.pubLat = tel.Histogram("treesim_broker_publish_ns", "End-to-end publish latency (ingest enqueue + shard routing), nanoseconds.", lb)
	e.ingestWait = tel.Histogram("treesim_broker_ingest_wait_ns", "Time a publish spent blocked on the synopsis ingest pipeline, nanoseconds.", lb)
	for i := range e.shards {
		e.shards[i] = &shard{
			forest: matching.NewForestShared(e.tbl),
			matchNS: tel.Histogram("treesim_broker_shard_match_ns",
				"Per-shard time to match one document and fan it out, nanoseconds.", lb,
				"shard", strconv.Itoa(i)),
		}
	}
	e.registerGauges()
	if cfg.DocCache > 0 {
		e.docs = &docRing{buf: make([]docEntry, cfg.DocCache), pinned: make(map[uint64]*pinnedDoc)}
	}
	e.ingestWG.Add(1)
	go e.runIngest()
	e.sweepWG.Add(1)
	go e.runLeaseSweeper()
	return e
}

// runLeaseSweeper periodically reclaims lapsed at-least-once leases.
// Drains reclaim inline too; the sweeper exists so a long-poller parked
// on a fully in-flight queue is woken when a lease lapses, and so
// lease-expiry metrics move without consumer traffic.
func (e *Engine) runLeaseSweeper() {
	defer e.sweepWG.Done()
	t := time.NewTicker(e.cfg.LeaseSweep)
	defer t.Stop()
	for {
		select {
		case <-e.sweepStop:
			return
		case <-t.C:
			e.SweepLeases(time.Now())
		}
	}
}

// SweepLeases reclaims every at-least-once lease lapsed as of now and
// returns the number of deliveries flipped back to redeliverable.
// The background sweeper calls it on a timer; tests call it directly
// for deterministic expiry.
func (e *Engine) SweepLeases(now time.Time) int {
	e.mu.RLock()
	qs := make([]*queue, 0, len(e.subs))
	for _, s := range e.subs {
		if s.mode == AtLeastOnce {
			qs = append(qs, s.q)
		}
	}
	e.mu.RUnlock()
	n := 0
	for _, q := range qs {
		n += q.expire(now)
	}
	if n > 0 {
		e.counters.leaseExpiries.Add(uint64(n))
	}
	return n
}

// Estimator exposes the underlying streaming estimator (shared; follow
// its concurrency rules).
func (e *Engine) Estimator() *core.Estimator { return e.est }

// Telemetry returns the engine's metrics registry — the configured one
// or the private registry created when Config.Telemetry was nil.
func (e *Engine) Telemetry() *telemetry.Registry { return e.tel }

// Shards returns the number of matching/delivery shards the engine
// runs with.
func (e *Engine) Shards() int { return len(e.shards) }

// Close stops the ingest pipeline after draining it and closes every
// delivery queue. Publish/Subscribe after Close return ErrClosed.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	subs := make([]*subscriber, len(e.subs))
	copy(subs, e.subs)
	e.mu.Unlock()
	// Quiesce the routing plane before closing queues: holding routeMu
	// exclusively waits out in-flight publishes, so no fan-out races the
	// queue closes (a post-Close publish routes to nobody). Closing an
	// at-least-once queue releases its retention pins — the delivery
	// contract ends with the engine; durable cursors live in the WAL.
	e.routeMu.Lock()
	e.routeClosed = true
	for _, s := range subs {
		if seqs := s.q.close(); len(seqs) > 0 {
			e.docs.unpin(seqs)
		}
	}
	e.routeMu.Unlock()
	close(e.sweepStop)
	e.sweepWG.Wait()
	// Acquiring pipeMu exclusively waits out any publisher mid-send, so
	// the channel close below cannot race a send.
	e.pipeMu.Lock()
	e.pipeClosed = true
	close(e.ingest)
	e.pipeMu.Unlock()
	e.ingestWG.Wait()
	return nil
}

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = fmt.Errorf("broker: engine closed")

// ErrNotFound is returned (wrapped) by operations naming a subscription
// id that is not live — including one that has just been unsubscribed,
// so a drain racing an unsubscribe resolves to a definitive not-found.
var ErrNotFound = fmt.Errorf("broker: unknown subscription")

// ErrWrongMode is returned (wrapped) by Ack on a subscription that is
// not at-least-once: an at-most-once consumer has nothing to ack.
var ErrWrongMode = fmt.Errorf("broker: subscription is not at-least-once")

// ErrBadCursor is returned by Ack for a cursor the subscription's log
// never assigned — a consumer can only acknowledge what it was handed.
var ErrBadCursor = fmt.Errorf("broker: cursor was never issued")

// ErrDegraded is returned by operations that need a working journal —
// new at-least-once subscriptions — after a journal append has failed.
// The fail-stop store never recovers in-process, so neither does this.
var ErrDegraded = fmt.Errorf("broker: journal failed, durability degraded")

// noteJournalError records a journal append failure and latches the
// engine degraded.
func (e *Engine) noteJournalError() {
	e.counters.journalErrors.Add(1)
	e.degraded.Store(true)
}

// Degraded reports whether a journal append has ever failed. While
// degraded the engine routes and delivers normally, but mutations are
// no longer durable and new at-least-once subscriptions are refused.
func (e *Engine) Degraded() bool { return e.degraded.Load() }

// ChurnEvent describes one committed registry mutation, delivered to
// the churn hook. The overlay federation layer uses the stream to
// decide when accumulated churn warrants re-advertising its aggregates
// to peer brokers (the same staleness calculus as rebuild policies).
type ChurnEvent struct {
	// Stale is the number of registry mutations since the last full
	// rebuild, after this event.
	Stale int
	// Live is the number of live subscriptions after this event.
	Live int
	// Rebuilt marks a completed full re-clustering (community structure
	// may have changed wholesale; Stale is 0).
	Rebuilt bool
}

// SetChurnHook installs f to be called after every committed registry
// mutation (subscribe, unsubscribe) and every full rebuild. f runs on
// the mutating goroutine outside all engine locks, so it may call back
// into the engine (e.g. CommunityViews); it must not block for long —
// it stalls the mutator that triggered it. A nil f uninstalls the hook.
func (e *Engine) SetChurnHook(f func(ChurnEvent)) {
	if f == nil {
		e.churnHook.Store(nil)
		return
	}
	e.churnHook.Store(&f)
}

func (e *Engine) notifyChurn(ev ChurnEvent) {
	if f := e.churnHook.Load(); f != nil {
		(*f)(ev)
	}
}

// SubscribeOptions selects per-subscription behavior beyond the
// pattern. The zero value is today's default contract (at-most-once).
type SubscribeOptions struct {
	// Mode is the delivery contract (default AtMostOnce).
	Mode DeliveryMode
}

// Subscribe registers a tree-pattern subscription given as an XPath
// expression and returns its id. The new subscription's similarity row
// against the live registry is computed incrementally (no full-matrix
// rebuild) and the subscription joins the best existing community, or
// founds its own; accumulated churn may then trigger a policy rebuild.
func (e *Engine) Subscribe(expr string) (uint64, error) {
	return e.SubscribeOpts(expr, SubscribeOptions{})
}

// SubscribeOpts is Subscribe with explicit options.
func (e *Engine) SubscribeOpts(expr string, opt SubscribeOptions) (uint64, error) {
	p, err := pattern.Parse(expr)
	if err != nil {
		return 0, err
	}
	return e.SubscribePatternOpts(p, expr, opt)
}

// SubscribePattern is Subscribe for a pre-parsed pattern.
func (e *Engine) SubscribePattern(p *pattern.Pattern, expr string) (uint64, error) {
	return e.SubscribePatternOpts(p, expr, SubscribeOptions{})
}

// SubscribePatternOpts is the full subscribe entry point.
//
// The O(n) similarity row — the dominant cost — is computed from a
// registry snapshot without holding the registry lock, so concurrent
// publishes and drains keep flowing; the result commits only if the
// registry has not churned meanwhile. After bounded retries under
// sustained churn it falls back to computing under the exclusive lock,
// guaranteeing progress.
func (e *Engine) SubscribePatternOpts(p *pattern.Pattern, expr string, opt SubscribeOptions) (uint64, error) {
	if opt.Mode == AtLeastOnce && e.degraded.Load() {
		// The redelivery contract is backed by the journal; without it a
		// crash would silently void every unacked delivery. Existing
		// at-least-once subscriptions keep draining what the log holds,
		// but new contracts are refused.
		return 0, ErrDegraded
	}
	pats, _ := e.patsPool.Get().(*[]*pattern.Pattern)
	if pats == nil {
		pats = new([]*pattern.Pattern)
	}
	rowBuf, _ := e.rowPool.Get().(*[]float64)
	if rowBuf == nil {
		rowBuf = new([]float64)
	}
	defer func() {
		clear(*pats)
		e.patsPool.Put(pats)
		e.rowPool.Put(rowBuf)
	}()
	for attempt := 0; attempt < 3; attempt++ {
		e.mu.RLock()
		if e.closed {
			e.mu.RUnlock()
			return 0, ErrClosed
		}
		ver := e.regVer
		*pats = e.patternsLocked((*pats)[:0])
		e.mu.RUnlock()

		row := e.est.SimilarityRowInto(*rowBuf, e.cfg.Metric, p, *pats)
		*rowBuf = row

		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return 0, ErrClosed
		}
		if e.regVer == ver {
			id := e.commitSubscribeLocked(p, expr, row, opt)
			ev := ChurnEvent{Stale: e.stale, Live: len(e.subs)}
			e.mu.Unlock()
			e.notifyChurn(ev)
			e.maybeRebuild(false)
			return id, nil
		}
		e.mu.Unlock() // registry churned mid-compute; re-snapshot
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	*pats = e.patternsLocked((*pats)[:0])
	row := e.est.SimilarityRowInto(*rowBuf, e.cfg.Metric, p, *pats)
	*rowBuf = row
	id := e.commitSubscribeLocked(p, expr, row, opt)
	ev := ChurnEvent{Stale: e.stale, Live: len(e.subs)}
	e.mu.Unlock()
	e.notifyChurn(ev)
	e.maybeRebuild(false)
	return id, nil
}

// commitSubscribeLocked installs a new subscription given its
// similarity row against the current registry. Caller holds the write
// lock and has validated the row's registry version.
func (e *Engine) commitSubscribeLocked(p *pattern.Pattern, expr string, row []float64, opt SubscribeOptions) uint64 {
	g := e.comms.Assign(row)
	if g == len(e.commShard) {
		// A freshly founded community: pin it to the least-loaded shard.
		e.commShard = append(e.commShard, e.placeCommunityLocked())
	}
	si := e.commShard[g]
	sh := e.shards[si]
	// Forest mutation and routing-table rebuild share one shard
	// critical section: Add may reuse a freed handle, and a publish
	// matching between the two would consult a table that maps that
	// handle to the wrong community.
	sh.mu.Lock()
	fh := sh.forest.Add(p)
	e.nextID++
	id := e.nextID
	e.byID[id] = len(e.subs)
	e.subs = append(e.subs, &subscriber{
		id:    id,
		pat:   p,
		expr:  expr,
		mode:  opt.Mode,
		shard: si,
		fh:    fh,
		q:     e.newSubQueue(opt.Mode),
	})
	e.shardLive[si]++
	e.counters.subscribes.Add(1)
	e.stale++
	e.regVer++
	// Assign only appends (community indices are stable), so only the
	// receiving shard's routing table changes.
	e.rebuildShardRoutingInner(si)
	sh.mu.Unlock()
	// Journal inside the registry critical section so the WAL order is
	// the commit order (a µs-scale write syscall; fsync policy lives in
	// the journal implementation).
	if j := e.journal.Load(); j != nil {
		if lsn, err := (*j).Subscribed(id, expr, g, opt.Mode); err != nil {
			e.noteJournalError()
		} else if lsn > e.walLSN {
			e.walLSN = lsn
		}
	}
	return id
}

// Unsubscribe removes a subscription and closes its delivery queue.
// It reports whether the id was live.
func (e *Engine) Unsubscribe(id uint64) bool {
	e.mu.Lock()
	if !e.removeSubLocked(id) {
		e.mu.Unlock()
		return false
	}
	e.counters.unsubscribes.Add(1)
	if j := e.journal.Load(); j != nil {
		if lsn, err := (*j).Unsubscribed(id); err != nil {
			e.noteJournalError()
		} else if lsn > e.walLSN {
			e.walLSN = lsn
		}
	}
	ev := ChurnEvent{Stale: e.stale, Live: len(e.subs)}
	e.mu.Unlock()
	e.notifyChurn(ev)
	e.maybeRebuild(false)
	return true
}

// removeSubLocked is the unsubscribe commit: it drops the subscription
// from the registry, clustering, and its shard's forest/routing table.
// Caller holds the registry lock exclusively. Reports whether the id
// was live.
func (e *Engine) removeSubLocked(id uint64) bool {
	idx, ok := e.byID[id]
	if !ok {
		return false
	}
	s := e.subs[idx]
	// Closing the queue discharges any remaining at-least-once entries:
	// an unsubscribe is the consumer's explicit exit from the delivery
	// contract, so the documents' retention pins drop with it.
	if seqs := s.q.close(); len(seqs) > 0 {
		e.docs.unpin(seqs)
	}
	delete(e.byID, id)
	g := e.comms.Find(idx)
	groupsBefore := len(e.comms.Groups)
	e.comms.Remove(idx)
	dissolved := len(e.comms.Groups) < groupsBefore
	if dissolved && g >= 0 {
		e.commShard = append(e.commShard[:g], e.commShard[g+1:]...)
	}
	e.subs = append(e.subs[:idx], e.subs[idx+1:]...)
	for i := idx; i < len(e.subs); i++ {
		e.byID[e.subs[i].id] = i
	}
	e.shardLive[s.shard]--
	e.stale++
	e.regVer++
	// Remove the pattern and rebuild routing in ONE critical section:
	// once the handle is freed, a stale table would silently skip this
	// community (dead rep handle) for any publish slipping between the
	// two steps. When the community dissolved, every later community's
	// index shifted down, so ALL shard tables must swap atomically with
	// respect to routing — under routeMu held exclusively, because a
	// publish reads the shards one at a time across its fan-out and
	// would otherwise stamp deliveries with pre-shift community ids
	// from shards it visited before the swap.
	if dissolved {
		e.routeMu.Lock()
		for _, sh := range e.shards {
			sh.mu.Lock()
		}
		e.shards[s.shard].forest.Remove(s.fh)
		for si := range e.shards {
			e.rebuildShardRoutingInner(si)
		}
		for _, sh := range e.shards {
			sh.mu.Unlock()
		}
		e.routeMu.Unlock()
	} else {
		sh := e.shards[s.shard]
		sh.mu.Lock()
		sh.forest.Remove(s.fh)
		e.rebuildShardRoutingInner(s.shard)
		sh.mu.Unlock()
	}
	return true
}

// maybeRebuild performs a full greedy re-clustering when the policy
// (or force) asks for one. The O(n²) similarity matrix is computed
// from a registry snapshot WITHOUT holding the registry lock — only
// the estimator's shared read lock — so publishes and drains keep
// flowing during a rebuild; the result is swapped in only if the
// registry has not churned in the meantime (a bounded number of
// retries otherwise; persistent churn leaves stale set, so the next
// mutation tries again).
func (e *Engine) maybeRebuild(force bool) {
	if !e.rebuildBusy.CompareAndSwap(false, true) {
		return // another goroutine is already rebuilding
	}
	defer e.rebuildBusy.Store(false)
	for attempt := 0; attempt < 3; attempt++ {
		e.mu.RLock()
		if e.closed || (!force && !e.cfg.Rebuild.ShouldRebuild(e.stale, len(e.subs))) {
			e.mu.RUnlock()
			return
		}
		ver := e.regVer
		pats := e.patternsLocked(nil)
		e.mu.RUnlock()

		sim := e.est.SimilarityMatrix(e.cfg.Metric, pats)

		e.mu.Lock()
		if e.regVer == ver {
			e.replaceClusteringLocked(cluster.BuildGreedy(sim, e.cfg.Threshold))
			e.stale = 0
			e.counters.rebuilds.Add(1)
			if j := e.journal.Load(); j != nil {
				groups, reps := e.partitionIDsLocked()
				if lsn, err := (*j).Rebuilt(groups, reps); err != nil {
					e.noteJournalError()
				} else if lsn > e.walLSN {
					e.walLSN = lsn
				}
			}
			live := len(e.subs)
			communities := len(e.comms.Groups)
			e.mu.Unlock()
			e.cfg.Logger.Warn("registry reclustered", "live", live, "communities", communities)
			e.notifyChurn(ChurnEvent{Live: live, Rebuilt: true})
			return
		}
		e.mu.Unlock() // registry churned mid-compute; re-snapshot
	}
}

// Rebuild forces a full re-clustering immediately (ops escape hatch).
// If a policy rebuild is already in flight, that rebuild serves the
// request.
func (e *Engine) Rebuild() {
	e.maybeRebuild(true)
}

func (e *Engine) patternsLocked(dst []*pattern.Pattern) []*pattern.Pattern {
	for _, s := range e.subs {
		dst = append(dst, s.pat)
	}
	return dst
}

// newSubQueue builds the delivery queue for a subscription's mode.
func (e *Engine) newSubQueue(mode DeliveryMode) *queue {
	if mode == AtLeastOnce {
		return newAckQueue(e.cfg.AckQueueCapacity)
	}
	return newQueue(e.cfg.QueueCapacity)
}

// DrainResult is one drain's batch plus the delivery-contract context
// the plain []Delivery return never carried.
type DrainResult struct {
	// Deliveries is the batch, in cursor order for at-least-once
	// subscriptions.
	Deliveries []Delivery
	// Mode is the subscription's delivery contract.
	Mode DeliveryMode
	// Cursor is the highest cursor in the batch (at-least-once; 0 on an
	// empty batch). Acking it acknowledges the whole batch and every
	// earlier delivery.
	Cursor uint64
	// Committed is the subscription's committed (acked) cursor.
	Committed uint64
	// Redelivered counts batch entries handed out before (lease lapse
	// or crash recovery).
	Redelivered int
	// Gap counts at-most-once deliveries evicted (drop-oldest) since
	// the previous drain observed them — the explicit marker that the
	// consumer missed documents between polls.
	Gap uint64
}

// Drain removes and returns up to max queued deliveries for the given
// subscription. If the queue is empty it long-polls up to wait before
// returning an empty batch. Unknown ids error. For at-least-once
// subscriptions the batch is leased, not discharged — pair with Ack
// (DrainBatch exposes the cursor bookkeeping).
func (e *Engine) Drain(id uint64, max int, wait time.Duration) ([]Delivery, error) {
	r, err := e.DrainBatch(id, max, wait)
	return r.Deliveries, err
}

// DrainBatch is Drain with the full delivery-contract envelope: the
// batch cursor and committed watermark (at-least-once) or the eviction
// gap marker (at-most-once). At-least-once batches go in flight under
// the configured lease; the hand-out is journaled (OpDrained) so a
// broker crash still owes the window — the recovered log redelivers it,
// flagged Redelivered.
func (e *Engine) DrainBatch(id uint64, max int, wait time.Duration) (DrainResult, error) {
	e.mu.RLock()
	idx, ok := e.byID[id]
	var s *subscriber
	closed := e.closed
	if ok {
		s = e.subs[idx]
	}
	e.mu.RUnlock()
	if !ok {
		return DrainResult{}, fmt.Errorf("%w %d", ErrNotFound, id)
	}
	r := DrainResult{Mode: s.mode}
	if s.mode == AtLeastOnce {
		ds, committed, redelivered := s.q.drainAcked(max, wait, e.cfg.AckLease, &e.counters)
		r.Deliveries, r.Committed, r.Redelivered = ds, committed, redelivered
		if redelivered > 0 {
			e.counters.redeliveries.Add(uint64(redelivered))
		}
		if n := len(ds); n > 0 {
			r.Cursor = ds[n-1].Cursor
			e.counters.drained.Add(uint64(n))
			// Journal the hand-out (skipped on a closed engine — the
			// store may already be sealed behind the final snapshot). A
			// lost OpDrained only costs the redelivered flag, never the
			// redelivery itself.
			if !closed {
				if j := e.journal.Load(); j != nil {
					if lsn, err := (*j).Drained(id, r.Cursor); err != nil {
						e.noteJournalError()
					} else {
						e.bumpDeliveryLSN(lsn)
					}
				}
			}
		}
		return r, nil
	}
	ds, gap := s.q.drain(max, wait)
	r.Deliveries, r.Gap = ds, gap
	e.counters.drained.Add(uint64(len(ds)))
	return r, nil
}

// Ack acknowledges every delivery of subscription id with cursor ≤
// upto: the committed cursor advances, the discharged documents'
// retention pins drop, and none of the acked window is ever redelivered
// — the advance is journaled (OpAck) before Ack returns, so it holds
// across a crash. Returns the number of deliveries discharged (0 when
// re-acking an already-committed cursor — acks are idempotent).
// Errors: unknown id (ErrNotFound), an at-most-once subscription
// (ErrWrongMode), a cursor the log never issued (ErrBadCursor), or a
// closed engine (ErrClosed — acks are mutations).
func (e *Engine) Ack(id uint64, upto uint64) (int, error) {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return 0, ErrClosed
	}
	idx, ok := e.byID[id]
	var s *subscriber
	if ok {
		s = e.subs[idx]
	}
	e.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w %d", ErrNotFound, id)
	}
	if s.mode != AtLeastOnce {
		return 0, fmt.Errorf("%w (id %d)", ErrWrongMode, id)
	}
	acked, advanced, unpin, err := s.q.ack(upto, true)
	if err != nil {
		return 0, fmt.Errorf("%w (id %d, cursor %d)", err, id, upto)
	}
	e.docs.unpin(unpin)
	if acked > 0 {
		e.counters.acked.Add(uint64(acked))
	}
	if advanced {
		if j := e.journal.Load(); j != nil {
			if lsn, err := (*j).Acked(id, upto); err != nil {
				e.noteJournalError()
			} else {
				e.bumpDeliveryLSN(lsn)
			}
		}
	}
	return acked, nil
}

// bumpDeliveryLSN raises the delivery-plane WAL watermark (CAS max —
// delivery records are journaled outside the registry lock, so appends
// can complete out of order relative to each other).
func (e *Engine) bumpDeliveryLSN(lsn uint64) {
	for {
		cur := e.deliveryLSN.Load()
		if lsn <= cur || e.deliveryLSN.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// CommunityView is a read-only snapshot of one community: the
// representative (greedy seed) and every member's pattern, in registry
// order. Patterns are shared with the engine and must not be mutated.
type CommunityView struct {
	// Rep is the representative's pattern and RepExpr its subscription
	// expression as registered.
	Rep     *pattern.Pattern
	RepExpr string
	// Members holds every member pattern (including the representative);
	// Exprs are the matching expressions, index-aligned.
	Members []*pattern.Pattern
	Exprs   []string
}

// CommunityViews snapshots the current clustering with full member
// patterns — the export the overlay layer aggregates into
// advertisements (cluster.Cover over each view's members yields the
// recall-preserving covering patterns).
func (e *Engine) CommunityViews() []CommunityView {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]CommunityView, 0, len(e.comms.Groups))
	for g, members := range e.comms.Groups {
		rep := e.subs[e.comms.Reps[g]]
		v := CommunityView{
			Rep:     rep.pat,
			RepExpr: rep.expr,
			Members: make([]*pattern.Pattern, len(members)),
			Exprs:   make([]string, len(members)),
		}
		for i, m := range members {
			v.Members[i] = e.subs[m].pat
			v.Exprs[i] = e.subs[m].expr
		}
		out = append(out, v)
	}
	return out
}

// Document returns the published document with the given sequence
// number, or nil if it has aged out of the retention ring (Config
// .DocCache) or never existed. Consumers resolve a Delivery.Doc to
// content through this (the daemon's GET /doc/{seq}).
func (e *Engine) Document(seq uint64) *xmltree.Tree {
	return e.docs.get(seq)
}

// Pending returns the queue depth of a subscription (0 for unknown ids).
func (e *Engine) Pending(id uint64) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if idx, ok := e.byID[id]; ok {
		return e.subs[idx].q.len()
	}
	return 0
}

// Live returns the number of live subscriptions.
func (e *Engine) Live() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.subs)
}

// CommunityIDs returns the current communities as sets of subscription
// ids, largest first — the broker-level view of cluster.Communities.
func (e *Engine) CommunityIDs() [][]uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([][]uint64, 0, len(e.comms.Groups))
	for _, g := range e.comms.Groups {
		ids := make([]uint64, 0, len(g))
		for _, idx := range g {
			ids = append(ids, e.subs[idx].id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out = append(out, ids)
	}
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) > len(out[j]) })
	return out
}
