package broker

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"treesim/internal/core"
	"treesim/internal/xmltree"
)

func doc(t testing.TB, compact string) *xmltree.Tree {
	t.Helper()
	d, err := xmltree.ParseCompact(compact)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newTestEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	t.Cleanup(func() { e.Close() })
	return e
}

func TestSubscribePublishDrainRoundtrip(t *testing.T) {
	e := newTestEngine(t, Config{Estimator: core.Config{Representation: core.Sets, Seed: 1}})
	idB, err := e.Subscribe("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	idC, err := e.Subscribe("/a/c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Subscribe("///"); err == nil {
		t.Fatal("invalid pattern should error")
	}
	if e.Live() != 2 {
		t.Fatalf("Live = %d, want 2", e.Live())
	}

	res, err := e.Publish(doc(t, "a(b)"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Deliveries == 0 || res.Matched == 0 {
		t.Fatalf("publish routed nothing: %+v", res)
	}

	got, err := e.Drain(idB, 10, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Doc != res.Seq {
		t.Fatalf("Drain(idB) = %v, want one delivery of doc %d", got, res.Seq)
	}
	// /a/c's community representative did not match a(b): nothing queued.
	if n := e.Pending(idC); n != 0 {
		t.Fatalf("Pending(idC) = %d, want 0", n)
	}
	if _, err := e.Drain(99999, 1, 0); err == nil {
		t.Fatal("unknown id should error")
	}

	e.Flush()
	if got := e.Stats().DocsObserved; got != 1 {
		t.Fatalf("DocsObserved = %d, want 1 after Flush", got)
	}
}

func TestPublishXMLAndParseError(t *testing.T) {
	e := newTestEngine(t, Config{})
	id, err := e.Subscribe("//b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.PublishXML(strings.NewReader("<a><b/></a>")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PublishXML(strings.NewReader("<unclosed>")); err == nil {
		t.Fatal("bad XML should error")
	}
	ds, err := e.Drain(id, 10, time.Second)
	if err != nil || len(ds) != 1 {
		t.Fatalf("Drain = %v, %v; want one delivery", ds, err)
	}
}

func TestUnsubscribeStopsDeliveries(t *testing.T) {
	e := newTestEngine(t, Config{})
	id1, _ := e.Subscribe("//b")
	id2, _ := e.Subscribe("//b")
	if !e.Unsubscribe(id1) {
		t.Fatal("Unsubscribe(live id) = false")
	}
	if e.Unsubscribe(id1) {
		t.Fatal("double Unsubscribe = true")
	}
	res, err := e.Publish(doc(t, "a(b)"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Deliveries != 1 {
		t.Fatalf("Deliveries = %d, want 1 (only id2 live)", res.Deliveries)
	}
	if ds, _ := e.Drain(id2, 10, time.Second); len(ds) != 1 {
		t.Fatalf("id2 deliveries = %v, want 1", ds)
	}
	if _, err := e.Drain(id1, 10, 0); err == nil {
		t.Fatal("draining a dead id should error")
	}
}

func TestQueueBackpressureDropsOldest(t *testing.T) {
	e := newTestEngine(t, Config{QueueCapacity: 4})
	id, _ := e.Subscribe("//b")
	var last PublishResult
	for i := 0; i < 10; i++ {
		var err error
		last, err = e.Publish(doc(t, "a(b)"))
		if err != nil {
			t.Fatal(err)
		}
	}
	ds, err := e.Drain(id, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 {
		t.Fatalf("drained %d deliveries, want 4 (queue capacity)", len(ds))
	}
	// Drop-oldest: the survivors are the 4 most recent documents.
	if ds[len(ds)-1].Doc != last.Seq {
		t.Fatalf("newest survivor doc %d, want %d", ds[len(ds)-1].Doc, last.Seq)
	}
	if st := e.Stats(); st.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", st.Dropped)
	}
}

func TestDrainLongPollWakesOnPublish(t *testing.T) {
	e := newTestEngine(t, Config{})
	id, _ := e.Subscribe("//b")
	got := make(chan []Delivery, 1)
	go func() {
		ds, _ := e.Drain(id, 10, 5*time.Second)
		got <- ds
	}()
	time.Sleep(20 * time.Millisecond) // let the drainer park
	if _, err := e.Publish(doc(t, "a(b)")); err != nil {
		t.Fatal(err)
	}
	select {
	case ds := <-got:
		if len(ds) != 1 {
			t.Fatalf("long-poll drained %v, want 1 delivery", ds)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke")
	}
}

func TestRebuildPolicyTriggers(t *testing.T) {
	e := newTestEngine(t, Config{Rebuild: Staleness{MaxStale: 5}, Estimator: core.Config{Representation: core.Sets, Seed: 1}})
	// Observe history first: similarity over an empty stream is 0, which
	// would leave even identical subscriptions in singleton communities.
	for i := 0; i < 4; i++ {
		if _, err := e.Publish(doc(t, "a(b)")); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	for i := 0; i < 12; i++ {
		if _, err := e.Subscribe("//b"); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Rebuilds != 2 {
		t.Fatalf("Rebuilds = %d, want 2 (12 mutations / 5)", st.Rebuilds)
	}
	if st.StaleOps != 2 {
		t.Fatalf("StaleOps = %d, want 2", st.StaleOps)
	}
	// Identical subscriptions must cluster together after the rebuild.
	if st.Communities != 1 {
		t.Fatalf("Communities = %d, want 1 (identical subscriptions)", st.Communities)
	}
}

func TestIncrementalAssignJoinsSimilarCommunity(t *testing.T) {
	// With Never rebuilds, community structure is built purely by
	// incremental assignment.
	e := newTestEngine(t, Config{Rebuild: Never{}, Estimator: core.Config{Representation: core.Sets, Seed: 1}})
	// Observe a stream so similarities are meaningful.
	for i := 0; i < 8; i++ {
		if _, err := e.Publish(doc(t, "a(b(x),c)")); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	e.Subscribe("/a/b")
	e.Subscribe("/a/b[x]") // matches the same docs → similarity 1
	e.Subscribe("//zzz")   // matches nothing → singleton
	st := e.Stats()
	if st.Communities != 2 || st.Singletons != 1 {
		t.Fatalf("communities/singletons = %d/%d, want 2/1 (%v)",
			st.Communities, st.Singletons, e.CommunityIDs())
	}
	if st.Rebuilds != 0 {
		t.Fatalf("Rebuilds = %d, want 0 under Never", st.Rebuilds)
	}
	groups := e.CommunityIDs()
	if len(groups[0]) != 2 {
		t.Fatalf("largest community %v, want the two /a/b subscriptions", groups)
	}
}

func TestPrecisionProxyAndStats(t *testing.T) {
	e := newTestEngine(t, Config{PrecisionSample: 1}) // sample every delivery
	e.Subscribe("//b")
	for i := 0; i < 5; i++ {
		if _, err := e.Publish(doc(t, "a(b)")); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.PrecisionSamples != 5 || st.PrecisionProxy != 1 {
		t.Fatalf("precision proxy %v over %d samples, want 1 over 5",
			st.PrecisionProxy, st.PrecisionSamples)
	}
	if st.Published != 5 || st.Deliveries != 5 || st.FilterEvals != 5 {
		t.Fatalf("stats %+v", st)
	}
	if st.PublishP50 <= 0 || st.PublishP99 < st.PublishP50 {
		t.Fatalf("latency percentiles p50=%v p99=%v", st.PublishP50, st.PublishP99)
	}
	// Zero-sample convention matches routing.Result.Precision: vacuous 1.
	fresh := newTestEngine(t, Config{})
	if st := fresh.Stats(); st.PrecisionProxy != 1 {
		t.Fatalf("zero-sample precision proxy = %v, want 1", st.PrecisionProxy)
	}
}

func TestDocumentRetention(t *testing.T) {
	e := newTestEngine(t, Config{DocCache: 2})
	e.Subscribe("//b")
	var seqs []uint64
	for i := 0; i < 3; i++ {
		res, err := e.Publish(doc(t, "a(b)"))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, res.Seq)
	}
	// Ring of 2: the oldest publish has aged out, the two newest resolve.
	if e.Document(seqs[0]) != nil {
		t.Fatalf("doc %d should have aged out of a 2-entry cache", seqs[0])
	}
	for _, s := range seqs[1:] {
		if e.Document(s) == nil {
			t.Fatalf("doc %d not retained", s)
		}
	}
	if e.Document(0) != nil || e.Document(99) != nil {
		t.Fatal("nonexistent sequences should resolve to nil")
	}
	// Retention disabled: every lookup is nil.
	off := newTestEngine(t, Config{DocCache: -1})
	res, _ := off.Publish(doc(t, "a(b)"))
	if off.Document(res.Seq) != nil {
		t.Fatal("DocCache<0 should disable retention")
	}
}

func TestClosedEngineErrors(t *testing.T) {
	e := New(Config{})
	id, _ := e.Subscribe("//b")
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal("double Close should be a no-op")
	}
	if _, err := e.Subscribe("//c"); err != ErrClosed {
		t.Fatalf("Subscribe after Close: %v, want ErrClosed", err)
	}
	if _, err := e.Publish(doc(t, "a(b)")); err != ErrClosed {
		t.Fatalf("Publish after Close: %v, want ErrClosed", err)
	}
	// Draining a closed queue returns immediately.
	start := time.Now()
	if ds, err := e.Drain(id, 10, 2*time.Second); err != nil || len(ds) != 0 {
		t.Fatalf("Drain after Close = %v, %v", ds, err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Drain on closed engine blocked")
	}
	e.Flush() // must not hang or panic
}

// TestHammerChurnPublish is the race-detector workout: concurrent
// subscribers, unsubscribers, publishers and drainers against one
// engine, with policy rebuilds enabled.
func TestHammerChurnPublish(t *testing.T) {
	e := newTestEngine(t, Config{
		Estimator:     core.Config{Representation: core.Hashes, HashCapacity: 64, Seed: 7},
		Rebuild:       DirtyFraction{Fraction: 0.3, MinStale: 8},
		QueueCapacity: 16,
	})
	exprs := []string{"/a/b", "/a/c", "//x", "/a[b]//x", "//c", "/a/*/x"}
	docs := []*xmltree.Tree{
		doc(t, "a(b(x),c)"), doc(t, "a(b)"), doc(t, "a(c(x))"), doc(t, "q(r)"),
	}

	const workers = 4
	const opsPerWorker = 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []uint64
			for op := 0; op < opsPerWorker; op++ {
				switch r := rng.Float64(); {
				case r < 0.35:
					id, err := e.Subscribe(exprs[rng.Intn(len(exprs))])
					if err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, id)
				case r < 0.5 && len(mine) > 0:
					i := rng.Intn(len(mine))
					e.Unsubscribe(mine[i])
					mine = append(mine[:i], mine[i+1:]...)
				case r < 0.9:
					if _, err := e.Publish(docs[rng.Intn(len(docs))]); err != nil {
						t.Error(err)
						return
					}
				default:
					if len(mine) > 0 {
						e.Drain(mine[rng.Intn(len(mine))], 8, 0)
					}
				}
			}
			for _, id := range mine {
				e.Unsubscribe(id)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	e.Flush()
	st := e.Stats()
	if st.Live != 0 {
		t.Fatalf("Live = %d after full unsubscribe, want 0", st.Live)
	}
	if st.Communities != 0 {
		t.Fatalf("Communities = %d with no subscriptions", st.Communities)
	}
	if st.IngestPending != 0 {
		t.Fatalf("IngestPending = %d after Flush", st.IngestPending)
	}
	if st.DocsObserved != int(st.Published) {
		t.Fatalf("DocsObserved %d != Published %d", st.DocsObserved, st.Published)
	}
}

func TestPolicyTable(t *testing.T) {
	cases := []struct {
		name  string
		p     RebuildPolicy
		stale int
		live  int
		want  bool
	}{
		{"staleness below", Staleness{MaxStale: 10}, 9, 100, false},
		{"staleness at", Staleness{MaxStale: 10}, 10, 100, true},
		{"staleness disabled", Staleness{}, 1000, 1, false},
		{"fraction below min", DirtyFraction{Fraction: 0.1, MinStale: 5}, 4, 10, false},
		{"fraction reached", DirtyFraction{Fraction: 0.25, MinStale: 2}, 3, 12, true},
		{"fraction not reached", DirtyFraction{Fraction: 0.5, MinStale: 2}, 3, 12, false},
		{"never", Never{}, 1 << 20, 1, false},
	}
	for _, c := range cases {
		if got := c.p.ShouldRebuild(c.stale, c.live); got != c.want {
			t.Errorf("%s: ShouldRebuild(%d, %d) = %v, want %v", c.name, c.stale, c.live, got, c.want)
		}
	}
}
