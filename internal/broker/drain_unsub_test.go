package broker

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treesim/internal/xmltree"
)

// TestDrainAfterUnsubscribeIsNotFound: once Unsubscribe returns, a new
// Drain on the same id resolves to a definitive ErrNotFound — not a
// hang, not an empty success.
func TestDrainAfterUnsubscribeIsNotFound(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	id, err := e.Subscribe("/x")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Unsubscribe(id) {
		t.Fatal("unsubscribe reported unknown id")
	}
	if _, err := e.Drain(id, 10, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("drain after unsubscribe: %v, want ErrNotFound", err)
	}
	// A long-polling drain must not block once the id is gone either.
	start := time.Now()
	if _, err := e.Drain(id, 10, 5*time.Second); !errors.Is(err, ErrNotFound) {
		t.Fatalf("long-poll drain after unsubscribe: %v, want ErrNotFound", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("long-poll drain blocked on a dead subscription")
	}
}

// TestUnsubscribeWakesLongPollingDrain: a drain parked on an empty
// queue returns promptly when the subscription is removed under it.
func TestUnsubscribeWakesLongPollingDrain(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	id, err := e.Subscribe("/x")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := e.Drain(id, 10, 30*time.Second)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the drain park
	if !e.Unsubscribe(id) {
		t.Fatal("unsubscribe failed")
	}
	select {
	case err := <-done:
		// The drain raced the unsubscribe: either it looked up the queue
		// first (empty result, nil error — the queue closed under it) or
		// after removal (not found). Both are definitive; blocking until
		// the 30s deadline is the bug this guards against.
		if err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatalf("drain woken by unsubscribe returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain still parked long after unsubscribe")
	}
}

// TestConcurrentDrainUnsubscribe hammers Drain against Unsubscribe on
// the same ids (run with -race): every drain must return either
// deliveries or ErrNotFound, and after each id's unsubscribe commits,
// the next drain on it must be ErrNotFound.
func TestConcurrentDrainUnsubscribe(t *testing.T) {
	e := New(Config{QueueCapacity: 64, PrecisionSample: -1})
	defer e.Close()
	tree, err := xmltree.ParseString("<x><y/></x>", xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const consumers = 16
	ids := make([]uint64, consumers)
	var unsubscribed [consumers]atomic.Bool
	for i := range ids {
		if ids[i], err = e.Subscribe("/x"); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Publisher keeps queues busy.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := e.Publish(tree); err != nil {
					return
				}
			}
		}
	}()
	// Drainers loop over every consumer.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i, id := range ids {
					committed := unsubscribed[i].Load()
					_, err := e.Drain(id, 8, time.Millisecond)
					if err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("drain %d: unexpected error %v", id, err)
						return
					}
					if committed && err == nil {
						t.Errorf("drain %d succeeded after unsubscribe committed", id)
						return
					}
				}
			}
		}()
	}
	// Unsubscribe each consumer partway through the storm.
	for i := range ids {
		time.Sleep(2 * time.Millisecond)
		if !e.Unsubscribe(ids[i]) {
			t.Errorf("unsubscribe %d reported unknown id", ids[i])
		}
		unsubscribed[i].Store(true)
		if _, err := e.Drain(ids[i], 1, 0); !errors.Is(err, ErrNotFound) {
			t.Errorf("drain %d right after unsubscribe: %v, want ErrNotFound", ids[i], err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestChurnHookObservesMutations: the hook sees every commit with
// consistent stale/live numbers and a Rebuilt event when the policy
// fires.
func TestChurnHookObservesMutations(t *testing.T) {
	e := New(Config{Rebuild: Staleness{MaxStale: 3}})
	defer e.Close()
	var mu sync.Mutex
	var events []ChurnEvent
	e.SetChurnHook(func(ev ChurnEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	var ids []uint64
	for i := 0; i < 3; i++ {
		id, err := e.Subscribe("/a/b")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.Unsubscribe(ids[0])
	mu.Lock()
	defer mu.Unlock()
	if len(events) < 4 {
		t.Fatalf("saw %d events, want at least 4 (3 subscribes + 1 unsubscribe)", len(events))
	}
	if events[0].Stale != 1 || events[0].Live != 1 || events[0].Rebuilt {
		t.Fatalf("first event %+v, want stale=1 live=1", events[0])
	}
	rebuilt := false
	for _, ev := range events {
		if ev.Rebuilt {
			rebuilt = true
			if ev.Stale != 0 {
				t.Fatalf("rebuild event carries stale=%d, want 0", ev.Stale)
			}
		}
	}
	if !rebuilt {
		t.Fatal("policy fired no Rebuilt event at MaxStale 3")
	}
}

// TestCommunityViewsSnapshot: views expose representative and members
// consistently with CommunityIDs.
func TestCommunityViewsSnapshot(t *testing.T) {
	e := New(Config{Threshold: -1, Rebuild: Never{}}) // everything clusters together
	defer e.Close()
	for _, expr := range []string{"/a", "/a/b", "/c"} {
		if _, err := e.Subscribe(expr); err != nil {
			t.Fatal(err)
		}
	}
	views := e.CommunityViews()
	if len(views) != 1 {
		t.Fatalf("%d views, want 1 community", len(views))
	}
	v := views[0]
	if len(v.Members) != 3 || len(v.Exprs) != 3 {
		t.Fatalf("view has %d members / %d exprs, want 3/3", len(v.Members), len(v.Exprs))
	}
	if v.RepExpr != "/a" {
		t.Fatalf("representative %q, want the first subscription /a", v.RepExpr)
	}
	for i, m := range v.Members {
		if m.String() != v.Exprs[i] {
			t.Fatalf("member %d pattern %q does not match expr %q", i, m.String(), v.Exprs[i])
		}
	}
}
