package broker

import (
	"sort"

	"treesim/internal/xmltree"
)

// This file is the broker's explainability and introspection surface:
// read-only snapshots of routing state (communities, subscriptions) and
// a side-effect-free dry run of the real publish match (Explain). The
// daemon's POST /explain and GET /introspect/* endpoints are thin JSON
// shims over it. None of it touches the publish hot path: Explain runs
// the same sharded forest match a publish would, but skips sequence
// assignment, synopsis ingest, delivery queues, and every counter.

// CommunityVerdict is one community's share of an Explain decision:
// whether the document matched its representative (and therefore would
// be delivered to every member), and which members' own patterns
// exactly matched (the precision detail a sampled publish only
// estimates).
type CommunityVerdict struct {
	// Community is the community index (as stamped into Delivery
	// .Community) and Shard the matching shard it is pinned to.
	Community int `json:"community"`
	Shard     int `json:"shard"`
	// RepExpr is the representative's subscription expression — the
	// pattern whose forest verdict decides delivery for the whole
	// community.
	RepExpr string `json:"rep"`
	// Matched reports the representative's verdict: true means every
	// member listed in MemberIDs receives the document.
	Matched bool `json:"matched"`
	// MemberIDs are the subscription ids of every member; ExactIDs the
	// subset whose own pattern matched the document. Both sorted
	// ascending. ExactIDs outside a matched community are the recall the
	// clustering preserved; MemberIDs minus ExactIDs inside one are the
	// false positives community-granularity routing accepts.
	MemberIDs []uint64 `json:"members"`
	ExactIDs  []uint64 `json:"exact,omitempty"`
}

// ShardExplainStats describes one shard's matching work for the
// explained document.
type ShardExplainStats struct {
	Shard int `json:"shard"`
	// Communities is how many communities live on the shard (each costs
	// one representative verdict — the shard's share of filter evals).
	Communities int `json:"communities"`
	// LivePatterns and ForestNodes size the shard's forest; shared
	// subtrees make ForestNodes smaller than the summed pattern sizes.
	LivePatterns int `json:"live_patterns"`
	ForestNodes  int `json:"forest_nodes"`
	// MatchedPatterns counts registered patterns (representatives and
	// members alike) the document matched on this shard.
	MatchedPatterns int `json:"matched_patterns"`
}

// Explanation is the structured decision record of one Explain call:
// what a Publish of the same document would have done, minus the side
// effects.
type Explanation struct {
	// Communities holds one verdict per community, index-ordered.
	Communities []CommunityVerdict `json:"communities"`
	// Deliveries is the predicted delivery set: the subscription ids a
	// real publish would enqueue to, sorted ascending. It equals the
	// union of MemberIDs over matched communities.
	Deliveries []uint64 `json:"deliveries"`
	// MatchedCommunities mirrors PublishResult.Matched; FilterEvals is
	// the number of representative verdicts this document cost (the
	// clustered-routing cost, = len(Communities)).
	MatchedCommunities int `json:"matched_communities"`
	FilterEvals        int `json:"filter_evals"`
	// DocNodes is the flattened document size.
	DocNodes int `json:"doc_nodes"`
	// Shards is the per-shard forest/matching breakdown (only shards
	// hosting at least one community appear).
	Shards []ShardExplainStats `json:"shards"`
}

// Explain runs the real sharded forest match for a document without
// publishing it: no sequence number, no synopsis ingest, no deliveries,
// no counter moves. The registry read lock is held across the whole
// match so the verdicts describe one consistent clustering; that lock
// is never taken by the publish path, so explaining under load stalls
// only registry churn (subscribe/unsubscribe), and only for about a
// publish's worth of matching.
func (e *Engine) Explain(t *xmltree.Tree) (*Explanation, error) {
	flat, _ := e.flatPool.Get().(*xmltree.Flat)
	if flat == nil {
		flat = &xmltree.Flat{}
	}
	defer e.flatPool.Put(flat)
	flat.Load(t, e.tbl)

	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	ex := &Explanation{
		Communities: make([]CommunityVerdict, len(e.comms.Groups)),
		FilterEvals: len(e.comms.Groups),
		DocNodes:    flat.Len(),
	}
	// One pass per shard that hosts communities, exactly like routeDoc —
	// but verdicts are collected instead of queues pushed. Registry
	// mutators hold e.mu exclusively for every forest mutation, so under
	// the read lock each shard's forest is stable and sh.mu.RLock only
	// orders us with concurrent publish matches (which is safe; matching
	// is concurrent by design). Lock order e.mu → sh.mu matches the
	// mutators'.
	for si, sh := range e.shards {
		stats := ShardExplainStats{Shard: si}
		for g := range e.comms.Groups {
			if e.commShard[g] == si {
				stats.Communities++
			}
		}
		if stats.Communities == 0 {
			continue
		}
		sh.mu.RLock()
		stats.LivePatterns = sh.forest.Live()
		stats.ForestNodes = sh.forest.NodeCount()
		ms := sh.forest.MatchFlat(t, flat)
		for g, members := range e.comms.Groups {
			if e.commShard[g] != si {
				continue
			}
			v := CommunityVerdict{
				Community: g,
				Shard:     si,
				RepExpr:   e.subs[e.comms.Reps[g]].expr,
				Matched:   ms.Has(e.subs[e.comms.Reps[g]].fh),
				MemberIDs: make([]uint64, 0, len(members)),
			}
			for _, idx := range members {
				s := e.subs[idx]
				v.MemberIDs = append(v.MemberIDs, s.id)
				if ms.Has(s.fh) {
					v.ExactIDs = append(v.ExactIDs, s.id)
					stats.MatchedPatterns++
				}
			}
			sortIDs(v.MemberIDs)
			sortIDs(v.ExactIDs)
			if v.Matched {
				ex.MatchedCommunities++
				ex.Deliveries = append(ex.Deliveries, v.MemberIDs...)
			}
			ex.Communities[g] = v
		}
		ms.Release()
		sh.mu.RUnlock()
		ex.Shards = append(ex.Shards, stats)
	}
	sortIDs(ex.Deliveries)
	return ex, nil
}

func sortIDs(ids []uint64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// CommunityInfo is one community row of IntrospectCommunities.
type CommunityInfo struct {
	Community int    `json:"community"`
	Shard     int    `json:"shard"`
	Size      int    `json:"size"`
	RepID     uint64 `json:"rep_id"`
	RepExpr   string `json:"rep"`
	// MemberIDs are the member subscription ids, sorted ascending.
	MemberIDs []uint64 `json:"members"`
}

// IntrospectCommunities snapshots the clustering: one row per
// community with its shard pin, representative, and member ids. The
// registry read lock is held only while copying.
func (e *Engine) IntrospectCommunities() []CommunityInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]CommunityInfo, 0, len(e.comms.Groups))
	for g, members := range e.comms.Groups {
		rep := e.subs[e.comms.Reps[g]]
		ci := CommunityInfo{
			Community: g,
			Shard:     e.commShard[g],
			Size:      len(members),
			RepID:     rep.id,
			RepExpr:   rep.expr,
			MemberIDs: make([]uint64, 0, len(members)),
		}
		for _, idx := range members {
			ci.MemberIDs = append(ci.MemberIDs, e.subs[idx].id)
		}
		sortIDs(ci.MemberIDs)
		out = append(out, ci)
	}
	return out
}

// SubscriptionInfo is one subscription row of IntrospectSubscriptions.
type SubscriptionInfo struct {
	ID        uint64 `json:"id"`
	Pattern   string `json:"pattern"`
	Community int    `json:"community"`
	Shard     int    `json:"shard"`
	// Mode is the delivery contract ("at-most-once" / "at-least-once").
	Mode string `json:"mode"`
	// Pending is the subscription's current delivery-queue depth:
	// ring occupancy, or redeliverable (unleased) cursor-log entries.
	Pending int `json:"pending"`
	// Dropped is the subscription's lifetime drop-oldest evictions
	// (at-most-once) — the per-consumer attribution of the aggregate
	// treesim_broker_dropped_total counter.
	Dropped uint64 `json:"dropped,omitempty"`
	// The at-least-once ledger: InFlight entries currently leased,
	// Committed/LastCursor the cursor watermarks, Delivered log
	// accepts, Acked discharges, Redelivered repeat hand-outs, Shed
	// capacity-overflow losses, LeaseExpiries lapsed leases. At every
	// quiescent point Delivered == Acked + Pending + InFlight + Shed.
	InFlight      int    `json:"in_flight,omitempty"`
	Committed     uint64 `json:"committed,omitempty"`
	LastCursor    uint64 `json:"last_cursor,omitempty"`
	Delivered     uint64 `json:"delivered,omitempty"`
	Acked         uint64 `json:"acked,omitempty"`
	Redelivered   uint64 `json:"redelivered,omitempty"`
	Shed          uint64 `json:"shed,omitempty"`
	LeaseExpiries uint64 `json:"lease_expiries,omitempty"`
}

// IntrospectSubscriptions snapshots every live subscription with its
// community, shard, delivery mode, queue depth, and per-subscription
// loss/redelivery ledger, sorted by id.
func (e *Engine) IntrospectSubscriptions() []SubscriptionInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]SubscriptionInfo, 0, len(e.subs))
	for idx, s := range e.subs {
		mode, pending, inflight, committed, lastCursor, st, dropped := s.q.info()
		out = append(out, SubscriptionInfo{
			ID:            s.id,
			Pattern:       s.expr,
			Community:     e.comms.Find(idx),
			Shard:         s.shard,
			Mode:          mode.String(),
			Pending:       pending,
			Dropped:       dropped,
			InFlight:      inflight,
			Committed:     committed,
			LastCursor:    lastCursor,
			Delivered:     st.delivered,
			Acked:         st.acked,
			Redelivered:   st.redelivered,
			Shed:          st.shed,
			LeaseExpiries: st.expired,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
