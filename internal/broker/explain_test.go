package broker

import (
	"testing"

	"treesim/internal/core"
	"treesim/internal/dtd"
	"treesim/internal/querygen"
	"treesim/internal/xmlgen"
)

// runExplainDifferential is the acceptance check for Explain: across a
// random workload, the predicted delivery set must equal — exactly, id
// for id — the deliveries a real publish of the same document produces,
// and Explain itself must leave no trace in the engine's counters.
func runExplainDifferential(t *testing.T, shards int) {
	d := dtd.Media()
	docs := xmlgen.New(d, xmlgen.Calibrate(d, 100, 7)).GenerateN(140)
	subs := querygen.New(d, querygen.Defaults(13)).GenerateDistinct(96)

	e := New(Config{
		Estimator:     core.Config{Representation: core.Hashes, HashCapacity: 256, Seed: 5},
		Shards:        shards,
		QueueCapacity: 4096, // no drop-oldest evictions to confound the diff
	})
	defer e.Close()
	e.est.ObserveTrees(docs[:40])
	ids := make([]uint64, 0, len(subs))
	for _, p := range subs {
		id, err := e.SubscribePattern(p, "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.Rebuild() // settle the clustering: Explain vs Publish on one partition

	preStats := e.Stats()
	checked, matchedDocs := 0, 0
	for _, doc := range docs[40:] {
		ex, err := e.Explain(doc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Publish(doc)
		if err != nil {
			t.Fatal(err)
		}

		if ex.MatchedCommunities != res.Matched {
			t.Fatalf("doc %d: Explain predicted %d matched communities, publish saw %d",
				res.Seq, ex.MatchedCommunities, res.Matched)
		}
		if len(ex.Deliveries) != res.Deliveries {
			t.Fatalf("doc %d: Explain predicted %d deliveries, publish made %d",
				res.Seq, len(ex.Deliveries), res.Deliveries)
		}

		// The ground truth: which subscriptions actually drained this
		// sequence number.
		actual := map[uint64]bool{}
		for _, id := range ids {
			ds, err := e.Drain(id, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, dv := range ds {
				if dv.Doc == res.Seq {
					actual[id] = true
				}
			}
		}
		if len(actual) != len(ex.Deliveries) {
			t.Fatalf("doc %d: drained %d subscriptions, Explain predicted %d (%v)",
				res.Seq, len(actual), len(ex.Deliveries), ex.Deliveries)
		}
		for _, id := range ex.Deliveries {
			if !actual[id] {
				t.Fatalf("doc %d: Explain predicted delivery to %d, which drained nothing", res.Seq, id)
			}
		}
		checked++
		if res.Matched > 0 {
			matchedDocs++
		}
	}
	if matchedDocs == 0 {
		t.Fatalf("workload produced no matching documents across %d checks; test proves nothing", checked)
	}

	// Explain ran once per document and must not have moved a counter:
	// published documents equals publishes, filter evals doubled would
	// betray Explain counting its own representative verdicts.
	st := e.Stats()
	if got, want := st.Published-preStats.Published, uint64(checked); got != want {
		t.Fatalf("published delta %d, want %d (Explain published something?)", got, want)
	}
}

func TestExplainDifferentialSingleShard(t *testing.T) {
	runExplainDifferential(t, -1)
}

func TestExplainDifferentialMultiShard(t *testing.T) {
	runExplainDifferential(t, 4)
}

// TestExplainStatsShape pins the decision-record bookkeeping: one
// verdict per community, filter evals equal to the community count,
// shard stats only for populated shards, and verdict internals
// (members, exact subset, delivery union) mutually consistent.
func TestExplainStatsShape(t *testing.T) {
	e := New(Config{Shards: 2})
	defer e.Close()
	for _, expr := range []string{"/a/b", "/a[b]", "/c/d", "//e"} {
		if _, err := e.Subscribe(expr); err != nil {
			t.Fatal(err)
		}
	}
	ex, err := e.Explain(doc(t, "a(b)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Communities) == 0 || ex.FilterEvals != len(ex.Communities) {
		t.Fatalf("filter evals %d vs %d communities", ex.FilterEvals, len(ex.Communities))
	}
	if ex.DocNodes <= 0 {
		t.Fatalf("doc nodes = %d", ex.DocNodes)
	}
	total := 0
	for _, v := range ex.Communities {
		if len(v.ExactIDs) > len(v.MemberIDs) {
			t.Fatalf("community %d: more exact matches than members: %+v", v.Community, v)
		}
		if v.Matched {
			total += len(v.MemberIDs)
		}
	}
	if total != len(ex.Deliveries) {
		t.Fatalf("delivery union %d != summed matched members %d", len(ex.Deliveries), total)
	}
	seen := map[int]bool{}
	for _, ss := range ex.Shards {
		if ss.Communities == 0 {
			t.Fatalf("empty shard %d reported stats", ss.Shard)
		}
		if seen[ss.Shard] {
			t.Fatalf("shard %d reported twice", ss.Shard)
		}
		seen[ss.Shard] = true
	}
}

// TestIntrospectSnapshotsAgree cross-checks the two registry views:
// every subscription's community assignment in IntrospectSubscriptions
// must place it in that community's member list in
// IntrospectCommunities, and shard pins must agree.
func TestIntrospectSnapshotsAgree(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	for _, expr := range []string{"/a/b", "/a/b[c]", "/x//y", "/q"} {
		if _, err := e.Subscribe(expr); err != nil {
			t.Fatal(err)
		}
	}
	comms := e.IntrospectCommunities()
	subsInfo := e.IntrospectSubscriptions()
	if len(subsInfo) != 4 {
		t.Fatalf("introspected %d subscriptions, want 4", len(subsInfo))
	}
	byComm := map[int]CommunityInfo{}
	memberCount := 0
	for _, c := range comms {
		byComm[c.Community] = c
		memberCount += c.Size
		if c.Size != len(c.MemberIDs) {
			t.Fatalf("community %d: size %d but %d member ids", c.Community, c.Size, len(c.MemberIDs))
		}
	}
	if memberCount != len(subsInfo) {
		t.Fatalf("community membership covers %d subscriptions, want %d", memberCount, len(subsInfo))
	}
	for _, s := range subsInfo {
		c, ok := byComm[s.Community]
		if !ok {
			t.Fatalf("subscription %d claims community %d, which was not introspected", s.ID, s.Community)
		}
		if c.Shard != s.Shard {
			t.Fatalf("subscription %d: shard %d but its community %d pins shard %d",
				s.ID, s.Shard, s.Community, c.Shard)
		}
		found := false
		for _, m := range c.MemberIDs {
			found = found || m == s.ID
		}
		if !found {
			t.Fatalf("subscription %d missing from community %d members %v", s.ID, s.Community, c.MemberIDs)
		}
	}
}
