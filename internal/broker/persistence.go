package broker

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"treesim/internal/cluster"
	"treesim/internal/core"
	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

// This file is the crash-recovery surface: a snapshotable State, a
// Restore constructor that rebuilds the matching plane from it without
// re-running greedy clustering, a Journal hook that records committed
// churn decisions, and the Apply* replay entry points that re-commit
// journaled decisions deterministically.
//
// The design principle is outcome logging. A subscribe's community
// placement depends on the estimator's synopsis at decision time;
// replaying the decision procedure against restored (older or newer)
// estimator state could place the subscription differently and change
// routing. So the journal records the decision itself — the chosen
// group index, or a rebuild's full partition — and replay applies it
// verbatim. A restored broker therefore routes exactly like the broker
// that crashed, whatever the estimator drift.

// stateFormat versions State for gob compatibility checks.
const stateFormat = 1

// SubEntry is one subscription in a State, identified by its stable id
// and pattern expression (registry order is the State.Subs order).
// The at-least-once fields (Mode 1) carry the delivery contract's
// durable half: the committed cursor, the cursor high-water mark, and
// the undischarged log entries. Zero values decode older snapshots as
// plain at-most-once subscriptions.
type SubEntry struct {
	ID   uint64
	Expr string
	// Mode is the delivery contract (uint8 of DeliveryMode).
	Mode uint8
	// Committed is the highest acked cursor and LastCursor the highest
	// assigned one (at-least-once only).
	Committed  uint64
	LastCursor uint64
	// Queued is the undischarged cursor log in cursor order. Lease
	// state is deliberately excluded: leases do not survive a restart,
	// every recovered entry is immediately redeliverable.
	Queued []QueuedDelivery
}

// QueuedDelivery is one undischarged at-least-once delivery in a
// snapshot.
type QueuedDelivery struct {
	Cursor    uint64
	Doc       uint64
	Community int
	// Attempts is how many times the entry was handed to a consumer —
	// recovered entries with Attempts > 0 count as redeliveries when
	// drained again.
	Attempts int
}

// State is a point-in-time snapshot of the engine's durable state:
// the subscription registry, the community partition with shard
// placement, the id/sequence watermarks, and the estimator synopsis.
// At-most-once delivery-ring contents are deliberately excluded —
// queued-but-undrained best-effort deliveries die with the process
// (documented loss window, surfaced to consumers as a gap marker).
// At-least-once cursor logs ARE included (SubEntry.Queued plus the
// Docs content map): the acked contract survives the crash.
type State struct {
	// Format is the state format version (stateFormat).
	Format int
	// Shards is the shard count the placement in CommShard was made for;
	// a restore into a different shard count re-balances instead.
	Shards int
	// Subs is the registry in index order.
	Subs []SubEntry
	// Groups/Reps are the community partition over registry indices.
	Groups [][]int
	Reps   []int
	// CommShard pins each community to a shard, parallel to Groups.
	CommShard []int
	// NextID is the id watermark; Stale the churn count since the last
	// rebuild; PubSeq the publish sequence watermark.
	NextID uint64
	Stale  int
	PubSeq uint64
	// WalLSN is the LSN of the last journal record whose effect this
	// state includes (0 when nothing has been journaled). Registry
	// records are watermarked inside the same critical sections that
	// journal them; delivery-plane records (OpDeliver/OpAck/OpDrained)
	// are folded in from a watermark read BEFORE any queue is copied,
	// so a record at or below WalLSN provably has its effect in the
	// cut and everything above replays (idempotently — cursors dedupe).
	// Pass it to persist.Store.WriteSnapshot.
	WalLSN uint64
	// Docs maps publish sequence → serialized XML for every document
	// referenced by a Queued entry, so recovery can repin content the
	// retention ring lost with the process. A referenced document
	// missing here (retention disabled, or discharged between the cut
	// and the serialization) restores as an entry without content.
	Docs map[uint64]string
	// Estimator is the synopsis serialization (core.Estimator.Save).
	Estimator []byte
}

// EncodeState serializes a State.
func EncodeState(st *State) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("broker: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeState parses a State produced by EncodeState.
func DecodeState(data []byte) (*State, error) {
	var st State
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("broker: decode state: %w", err)
	}
	if st.Format != stateFormat {
		return nil, fmt.Errorf("broker: state format %d, want %d", st.Format, stateFormat)
	}
	return &st, nil
}

// State snapshots the engine's durable state. The registry/clustering
// part is one consistent cut (taken under the registry lock); the
// estimator serialization follows outside it, so documents ingested
// concurrently may or may not be included — harmless skew, since the
// estimator only steers future clustering decisions and those are
// journaled as outcomes anyway. Call Flush first for a deterministic
// synopsis (tests do).
//
// Unlike the mutating entry points, State works on a closed engine: a
// closed engine is quiescent (no further commits can race the cut),
// which is exactly what an ordered shutdown wants for its final
// snapshot — close the engine first, then snapshot what it settled on.
func (e *Engine) State() (*State, error) {
	// Read the delivery-plane watermark BEFORE copying any queue: a
	// delivery record journaled after this read gets a higher LSN and
	// replays; one at or below it was appended — and therefore applied,
	// effects precede appends — before every copy below.
	dLSN := e.deliveryLSN.Load()
	e.mu.RLock()
	st := &State{
		Format:    stateFormat,
		Shards:    len(e.shards),
		Subs:      make([]SubEntry, len(e.subs)),
		Groups:    make([][]int, len(e.comms.Groups)),
		Reps:      append([]int(nil), e.comms.Reps...),
		CommShard: append([]int(nil), e.commShard...),
		NextID:    e.nextID,
		Stale:     e.stale,
		WalLSN:    e.walLSN,
	}
	var docSeqs []uint64
	for i, s := range e.subs {
		se := SubEntry{ID: s.id, Expr: s.expr, Mode: uint8(s.mode)}
		if s.mode == AtLeastOnce {
			se.Committed, se.LastCursor, se.Queued = s.q.snapshotEntries()
			for _, qd := range se.Queued {
				docSeqs = append(docSeqs, qd.Doc)
			}
		}
		st.Subs[i] = se
	}
	for g, members := range e.comms.Groups {
		st.Groups[g] = append([]int(nil), members...)
	}
	e.mu.RUnlock()
	if dLSN > st.WalLSN {
		st.WalLSN = dLSN
	}
	st.PubSeq = e.pubSeq.Load()
	// Serialize the referenced documents (pins keep them retrievable; a
	// concurrent ack can discharge one between the cut and here, but its
	// OpAck record then post-dates the watermark and replays, removing
	// the contentless entry again).
	if len(docSeqs) > 0 {
		st.Docs = make(map[uint64]string, len(docSeqs))
		for _, seq := range docSeqs {
			if _, ok := st.Docs[seq]; ok {
				continue
			}
			if t := e.docs.get(seq); t != nil {
				xml, err := xmltree.XMLString(t, false)
				if err != nil {
					return nil, fmt.Errorf("broker: serialize pinned doc %d: %w", seq, err)
				}
				st.Docs[seq] = xml
			}
		}
	}
	var buf bytes.Buffer
	if err := e.est.Save(&buf); err != nil {
		return nil, fmt.Errorf("broker: save estimator: %w", err)
	}
	st.Estimator = buf.Bytes()
	return st, nil
}

// Restore starts an engine from a snapshot: the estimator is loaded
// from the saved synopsis, every subscription re-enters its snapshotted
// community, and the shard forests/routing tables are rebuilt directly
// from the saved partition — no similarity computation and no greedy
// re-clustering on the recovery path. If the configured shard count
// differs from the snapshot's, communities are re-balanced (placement
// is routing-invariant; PR 5's shard tests prove delivery equality).
func Restore(cfg Config, st *State) (*Engine, error) {
	cfg = cfg.withDefaults()
	if st == nil {
		return nil, fmt.Errorf("broker: restore: nil state")
	}
	var est *core.Estimator
	if len(st.Estimator) > 0 {
		var err error
		est, err = core.LoadEstimator(bytes.NewReader(st.Estimator))
		if err != nil {
			return nil, fmt.Errorf("broker: restore estimator: %w", err)
		}
		est.SetStreamConfig(cfg.Estimator.ParseOptions, cfg.Estimator.DTD)
	} else {
		est = core.NewEstimator(cfg.Estimator)
	}
	comms, err := cluster.FromGroups(cfg.Threshold, st.Groups, st.Reps)
	if err != nil {
		return nil, fmt.Errorf("broker: restore clustering: %w", err)
	}
	if comms.Len() != len(st.Subs) {
		return nil, fmt.Errorf("broker: restore: partition covers %d items, registry has %d", comms.Len(), len(st.Subs))
	}
	e := newEngine(cfg, est)
	// Parse each pinned document once, shared across every subscription
	// that references it.
	docTrees := make(map[uint64]*xmltree.Tree, len(st.Docs))
	for seq, xml := range st.Docs {
		t, err := xmltree.Parse(bytes.NewReader([]byte(xml)), cfg.Estimator.ParseOptions)
		if err != nil {
			return nil, fmt.Errorf("broker: restore pinned doc %d: %w", seq, err)
		}
		docTrees[seq] = t
	}
	for i, se := range st.Subs {
		p, err := pattern.Parse(se.Expr)
		if err != nil {
			return nil, fmt.Errorf("broker: restore subscription %d: %w", se.ID, err)
		}
		if _, dup := e.byID[se.ID]; dup {
			return nil, fmt.Errorf("broker: restore: duplicate subscription id %d", se.ID)
		}
		mode := DeliveryMode(se.Mode)
		q := e.newSubQueue(mode)
		if mode == AtLeastOnce {
			// The engine is not shared yet; fields are set directly. All
			// recovered entries are redeliverable (no surviving leases).
			q.committed = se.Committed
			q.lastCursor = se.LastCursor
			for _, qd := range se.Queued {
				q.entries = append(q.entries, ackEntry{cursor: qd.Cursor, doc: qd.Doc, comm: qd.Community, attempts: qd.Attempts})
				q.stats.delivered++
				if t, ok := docTrees[qd.Doc]; ok {
					e.docs.pin(qd.Doc, t)
				}
			}
		}
		e.byID[se.ID] = i
		e.subs = append(e.subs, &subscriber{id: se.ID, pat: p, expr: se.Expr, mode: mode, q: q})
		if se.ID > e.nextID {
			e.nextID = se.ID
		}
	}
	if st.NextID > e.nextID {
		e.nextID = st.NextID
	}
	nsh := len(e.shards)
	commShard := st.CommShard
	reuse := st.Shards == nsh && len(commShard) == len(comms.Groups)
	for _, si := range commShard {
		if si < 0 || si >= nsh {
			reuse = false
			break
		}
	}
	if reuse {
		commShard = append([]int(nil), commShard...)
	} else {
		commShard = cluster.BalanceShards(comms.Groups, nsh)
	}
	e.comms = comms
	e.commShard = commShard
	for g, members := range comms.Groups {
		si := commShard[g]
		e.shardLive[si] += len(members)
		for _, idx := range members {
			s := e.subs[idx]
			s.shard = si
			s.fh = e.shards[si].forest.Add(s.pat)
		}
	}
	// The engine is not yet shared with any other goroutine (the
	// ingester never touches routing state), so no shard locks needed.
	for si := range e.shards {
		e.rebuildShardRoutingInner(si)
	}
	e.stale = st.Stale
	e.pubSeq.Store(st.PubSeq)
	return e, nil
}

// Journal observes committed registry mutations for write-ahead
// logging. Calls are made inside the registry critical section, in
// commit order — implementations should append fast (an unsynced write
// is enough for process-death durability) and leave fsync policy to
// their own configuration. Each call returns the log sequence number
// the record was assigned; the engine tracks the highest one and
// reports it as State.WalLSN, the watermark a snapshot of that state
// covers. Errors are counted in Stats.JournalErrors and do not fail
// the mutation.
type Journal interface {
	// Subscribed records a committed subscription with the community
	// group index the clustering chose (len(groups)-at-commit founds a
	// new community) and its delivery mode.
	Subscribed(id uint64, expr string, group int, mode DeliveryMode) (lsn uint64, err error)
	// Unsubscribed records a committed removal.
	Unsubscribed(id uint64) (lsn uint64, err error)
	// Rebuilt records a full re-clustering as the complete partition
	// keyed by subscription ids (reps parallel to groups).
	Rebuilt(groups [][]uint64, reps []uint64) (lsn uint64, err error)
	// Delivered records one published document's at-least-once fan-out:
	// the document sequence and content plus the parallel per-delivery
	// arrays (subscription id, assigned cursor, community). Called
	// outside the registry lock, after the queue appends.
	Delivered(seq uint64, xml string, subs, cursors []uint64, comms []int) (lsn uint64, err error)
	// Acked records a committed cursor advance for subscription id.
	Acked(id uint64, upto uint64) (lsn uint64, err error)
	// Drained records that deliveries up to upto were handed to a
	// consumer (the in-flight window a recovered broker still owes).
	Drained(id uint64, upto uint64) (lsn uint64, err error)
}

// SetJournal installs the journal. Install it once at boot, after
// recovery replay and before serving traffic, so replayed operations
// are not re-journaled. A nil j uninstalls.
func (e *Engine) SetJournal(j Journal) {
	if j == nil {
		e.journal.Store(nil)
		return
	}
	e.journal.Store(&j)
}

// partitionIDsLocked exports the current partition keyed by stable
// subscription ids (the Rebuilt journal payload). Caller holds the
// registry lock.
func (e *Engine) partitionIDsLocked() (groups [][]uint64, reps []uint64) {
	groups = make([][]uint64, len(e.comms.Groups))
	reps = make([]uint64, len(e.comms.Reps))
	for g, members := range e.comms.Groups {
		ids := make([]uint64, len(members))
		for i, idx := range members {
			ids[i] = e.subs[idx].id
		}
		groups[g] = ids
		reps[g] = e.subs[e.comms.Reps[g]].id
	}
	return groups, reps
}

// ApplySubscribed replays a journaled subscribe: the subscription
// re-enters exactly the community the original commit chose (via
// cluster.PlaceAt), with no similarity computation. Replaying a record
// whose id is already live is a no-op (idempotent recovery under
// snapshot/WAL overlap). Use only during recovery, before traffic.
func (e *Engine) ApplySubscribed(id uint64, expr string, group int, mode DeliveryMode) error {
	p, err := pattern.Parse(expr)
	if err != nil {
		return fmt.Errorf("broker: replay subscribe %d: %w", id, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if _, ok := e.byID[id]; ok {
		return nil // already present (snapshot covered this record)
	}
	if err := e.comms.PlaceAt(group); err != nil {
		return fmt.Errorf("broker: replay subscribe %d: %w", id, err)
	}
	if group == len(e.commShard) {
		e.commShard = append(e.commShard, e.placeCommunityLocked())
	}
	si := e.commShard[group]
	sh := e.shards[si]
	sh.mu.Lock()
	fh := sh.forest.Add(p)
	if id > e.nextID {
		e.nextID = id
	}
	e.byID[id] = len(e.subs)
	e.subs = append(e.subs, &subscriber{
		id:    id,
		pat:   p,
		expr:  expr,
		mode:  mode,
		shard: si,
		fh:    fh,
		q:     e.newSubQueue(mode),
	})
	e.shardLive[si]++
	e.stale++
	e.regVer++
	e.rebuildShardRoutingInner(si)
	sh.mu.Unlock()
	return nil
}

// ApplyDelivered replays a journaled at-least-once fan-out. Each
// (subscription, cursor) pair re-enters that subscription's cursor log
// unless the cursor was already seen — cursors are monotonic and never
// reused, so an entry at or below the restored high-water mark (or the
// committed cursor) is a snapshot/WAL overlap and is skipped, making
// double replay exactly idempotent. Re-inserted entries repin the
// document carried in the record; unknown or at-most-once subscription
// ids are skipped (unsubscribed later in the WAL, or never durable).
func (e *Engine) ApplyDelivered(seq uint64, xml string, subs, cursors []uint64, comms []int) error {
	if len(subs) != len(cursors) || len(subs) != len(comms) {
		return fmt.Errorf("broker: replay deliver %d: %d subs, %d cursors, %d comms", seq, len(subs), len(cursors), len(comms))
	}
	var t *xmltree.Tree
	if xml != "" {
		var err error
		t, err = xmltree.Parse(bytes.NewReader([]byte(xml)), e.cfg.Estimator.ParseOptions)
		if err != nil {
			return fmt.Errorf("broker: replay deliver %d: %w", seq, err)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	// Keep the sequence watermark ahead of every replayed document so a
	// recovered engine never reassigns a pinned sequence.
	for {
		cur := e.pubSeq.Load()
		if seq <= cur || e.pubSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	for i, subID := range subs {
		idx, ok := e.byID[subID]
		if !ok {
			continue
		}
		s := e.subs[idx]
		if s.mode != AtLeastOnce {
			continue
		}
		shedDoc, shed, inserted := s.q.restore(cursors[i], seq, comms[i], 1)
		if shed {
			e.docs.unpinOne(shedDoc)
		}
		if inserted && t != nil {
			e.docs.pin(seq, t)
		}
	}
	return nil
}

// ApplyAcked replays a journaled cursor advance. Lenient by design: a
// cursor above the restored high-water mark (possible after a journal
// append error dropped the OpDeliver) still advances the committed
// watermark, and re-acking an already-committed cursor is a no-op.
func (e *Engine) ApplyAcked(id uint64, upto uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	idx, ok := e.byID[id]
	if !ok {
		return nil // unsubscribed later in the WAL
	}
	s := e.subs[idx]
	if s.mode != AtLeastOnce {
		return nil
	}
	_, _, unpin, _ := s.q.ack(upto, false)
	e.docs.unpin(unpin)
	return nil
}

// ApplyDrained replays a journaled hand-out: entries at or below the
// watermark count as redeliveries when drained again. Unknown ids are
// a no-op.
func (e *Engine) ApplyDrained(id uint64, upto uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	idx, ok := e.byID[id]
	if !ok {
		return nil
	}
	s := e.subs[idx]
	if s.mode != AtLeastOnce {
		return nil
	}
	s.q.markDrained(upto)
	return nil
}

// ApplyUnsubscribed replays a journaled unsubscribe. Unknown ids are a
// no-op (the snapshot may already reflect the removal).
func (e *Engine) ApplyUnsubscribed(id uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.removeSubLocked(id)
	return nil
}

// ApplyRebuilt replays a journaled full re-clustering: the recorded
// partition (keyed by subscription ids) replaces the current one
// wholesale, exactly as the original rebuild did.
func (e *Engine) ApplyRebuilt(groups [][]uint64, reps []uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if len(groups) != len(reps) {
		return fmt.Errorf("broker: replay rebuild: %d groups, %d reps", len(groups), len(reps))
	}
	idxGroups := make([][]int, len(groups))
	idxReps := make([]int, len(reps))
	for g, ids := range groups {
		idxGroups[g] = make([]int, len(ids))
		for i, id := range ids {
			idx, ok := e.byID[id]
			if !ok {
				return fmt.Errorf("broker: replay rebuild: unknown subscription id %d", id)
			}
			idxGroups[g][i] = idx
		}
		idx, ok := e.byID[reps[g]]
		if !ok {
			return fmt.Errorf("broker: replay rebuild: unknown representative id %d", reps[g])
		}
		idxReps[g] = idx
	}
	comms, err := cluster.FromGroups(e.cfg.Threshold, idxGroups, idxReps)
	if err != nil {
		return fmt.Errorf("broker: replay rebuild: %w", err)
	}
	if comms.Len() != len(e.subs) {
		return fmt.Errorf("broker: replay rebuild: partition covers %d of %d subscriptions", comms.Len(), len(e.subs))
	}
	e.replaceClusteringLocked(comms)
	e.stale = 0
	e.regVer++
	return nil
}
