package broker

import (
	"fmt"
	"io"
	"sync"
	"time"

	"treesim/internal/xmltree"
)

// This file is the document plane: the publish entry points, the
// batched publish pipeline, the background synopsis ingester, and the
// recent-document retention ring. Routing state lives in shard.go; the
// subscription registry in broker.go.

// ingestItem is one unit of the publish→synopsis pipeline: a document
// to ingest, or a flush marker (nil tree) whose done channel is closed
// once everything queued before it has been ingested. gate, when set,
// stalls the ingester until the channel is closed — a test-only hook
// for filling the pipeline deterministically.
type ingestItem struct {
	tree *xmltree.Tree
	done chan struct{}
	gate chan struct{}
}

// ErrBusy is returned by InjectRemote when the ingest pipeline is full:
// the overlay sheds remote traffic instead of blocking a peer's
// forwarding goroutine, and the peer backs off (HTTP 503 + Retry-After
// upstream). Local Publish keeps blocking semantics — backpressure on
// the local producer, load shedding across the federation boundary.
var ErrBusy = fmt.Errorf("broker: ingest pipeline full")

// Publish routes one document: it is queued for synopsis ingestion
// (blocking only if the ingest pipeline is full — backpressure), loaded
// once into a pooled flat arena, then matched by every shard in
// parallel; communities that hit receive the document on every member's
// delivery queue. Matching per representative rather than per consumer
// is the whole point: filter evaluations scale with the number of
// communities, not subscriptions.
func (e *Engine) Publish(t *xmltree.Tree) (PublishResult, error) {
	return e.publish(t, false)
}

// InjectRemote routes a document that arrived from a peer broker in the
// overlay. It behaves like Publish — the document feeds the synopsis
// (remote traffic is part of the stream the estimator models), enters
// the retention ring, and is delivered to matching local communities —
// but is counted separately (Stats.RemoteInjected), and it never blocks
// on a full ingest pipeline: a remote injection rides a peer's
// forwarding goroutine, and stalling it would propagate one slow
// broker's backlog through the overlay. When the pipeline is full the
// document is shed (counted in Stats.RemoteShed) and ErrBusy returned,
// logShed emits a remote-ingest shed event record, at most about one
// per second (a CAS on the last-emit timestamp elects the logging
// goroutine; losers drop silently — the running total carries the
// information the skipped records would have).
func (e *Engine) logShed() {
	now := time.Now().UnixNano()
	last := e.shedLogNS.Load()
	if now-last < int64(time.Second) || !e.shedLogNS.CompareAndSwap(last, now) {
		return
	}
	e.cfg.Logger.Warn("remote publications shed: ingest pipeline full",
		"shed_total", e.counters.remoteShed.Load())
}

// so the transport can answer 503 + Retry-After and the upstream peer
// backs off.
func (e *Engine) InjectRemote(t *xmltree.Tree) (PublishResult, error) {
	start := time.Now()
	e.pipeMu.RLock()
	if e.pipeClosed {
		e.pipeMu.RUnlock()
		return PublishResult{}, ErrClosed
	}
	select {
	case e.ingest <- ingestItem{tree: t}:
		e.counters.ingestQueued.Add(1)
		e.pipeMu.RUnlock()
	default:
		e.pipeMu.RUnlock()
		e.counters.remoteShed.Add(1)
		e.logShed()
		return PublishResult{}, ErrBusy
	}
	return e.routeOne(t, true, start, time.Now()), nil
}

func (e *Engine) publish(t *xmltree.Tree, remote bool) (PublishResult, error) {
	start := time.Now()
	// Enqueue for ingestion before taking any routing lock: a full
	// pipeline blocks only publishers (and Close), never Drain/Stats.
	e.pipeMu.RLock()
	if e.pipeClosed {
		e.pipeMu.RUnlock()
		return PublishResult{}, ErrClosed
	}
	e.counters.ingestQueued.Add(1)
	e.ingest <- ingestItem{tree: t}
	e.pipeMu.RUnlock()

	return e.routeOne(t, remote, start, time.Now()), nil
}

// routeOne is the routing half shared by the blocking and non-blocking
// publish entry points: the document is already accepted into the
// ingest pipeline. start is when the publish entered the engine,
// enqueued when the pipeline accepted it — the gap is ingest-queue
// wait, the remainder shard routing; both land in the result and the
// latency histograms.
func (e *Engine) routeOne(t *xmltree.Tree, remote bool, start, enqueued time.Time) PublishResult {
	// routeMu (shared) orders routing against Close, not against
	// subscription churn: registry mutations commit under the registry
	// and per-shard locks, so a publish contends with churn only on the
	// one shard being maintained.
	e.routeMu.RLock()
	defer e.routeMu.RUnlock()
	res := PublishResult{Seq: e.pubSeq.Add(1)}
	e.docs.put(res.Seq, t)
	// A publish that raced Close past the pipeline check was already
	// accepted into the synopsis; it simply routes to nobody, keeping
	// Published == documents ingested.
	if !e.routeClosed {
		e.routeDoc(t, &res)
	}
	e.counters.published.Add(1)
	if remote {
		e.counters.remoteInjected.Add(1)
	}
	end := time.Now()
	res.IngestWaitNS = enqueued.Sub(start).Nanoseconds()
	res.MatchNS = end.Sub(enqueued).Nanoseconds()
	e.ingestWait.ObserveDuration(res.IngestWaitNS)
	e.pubLat.ObserveDuration(end.Sub(start).Nanoseconds())
	return res
}

// PublishBatch routes a batch of documents with amortized overhead: one
// ingest-pipeline acquisition and one routing epoch for the whole
// batch, with each document still fanned out to all shards in
// parallel. Results are index-aligned with ts. An empty batch is a
// no-op. This is the engine half of the daemon's batched POST /publish;
// load generators use it to amortize per-request costs the same way.
func (e *Engine) PublishBatch(ts []*xmltree.Tree) ([]PublishResult, error) {
	out := make([]PublishResult, len(ts))
	if len(ts) == 0 {
		return out, nil
	}
	e.pipeMu.RLock()
	if e.pipeClosed {
		e.pipeMu.RUnlock()
		return nil, ErrClosed
	}
	batchStart := time.Now()
	e.counters.ingestQueued.Add(uint64(len(ts)))
	for _, t := range ts {
		e.ingest <- ingestItem{tree: t}
	}
	e.pipeMu.RUnlock()
	// The pipeline wait is shared by the whole batch; record it once
	// rather than attributing it to any single document.
	e.ingestWait.ObserveDuration(time.Since(batchStart).Nanoseconds())

	e.routeMu.RLock()
	defer e.routeMu.RUnlock()
	for i, t := range ts {
		start := time.Now()
		out[i].Seq = e.pubSeq.Add(1)
		e.docs.put(out[i].Seq, t)
		if !e.routeClosed {
			e.routeDoc(t, &out[i])
		}
		e.counters.published.Add(1)
		ns := time.Since(start).Nanoseconds()
		out[i].MatchNS = ns
		e.pubLat.ObserveDuration(ns)
	}
	return out, nil
}

// PublishXML parses one XML document from r and publishes it.
func (e *Engine) PublishXML(r io.Reader) (PublishResult, error) {
	t, err := xmltree.Parse(r, e.cfg.Estimator.ParseOptions)
	if err != nil {
		return PublishResult{}, fmt.Errorf("broker: publish: %w", err)
	}
	return e.Publish(t)
}

// runIngest is the background synopsis feeder: it drains the pipeline
// in batches so the estimator's exclusive lock is taken once per batch
// instead of once per document.
func (e *Engine) runIngest() {
	defer e.ingestWG.Done()
	batch := make([]*xmltree.Tree, 0, e.cfg.IngestBatch)
	var done []chan struct{}
	for item := range e.ingest {
		if item.gate != nil {
			<-item.gate // test hook: hold the pipeline at a known depth
		}
		batch, done = batch[:0], done[:0]
		for {
			if item.tree != nil {
				batch = append(batch, item.tree)
			}
			if item.done != nil {
				done = append(done, item.done)
			}
			if len(batch) >= e.cfg.IngestBatch {
				break
			}
			var more bool
			select {
			case item, more = <-e.ingest:
				if !more {
					item = ingestItem{}
				}
			default:
				more = false
			}
			if !more || (item.tree == nil && item.done == nil) {
				break
			}
		}
		e.est.ObserveTrees(batch)
		e.counters.ingested.Add(uint64(len(batch)))
		for _, ch := range done {
			close(ch)
		}
	}
}

// Flush blocks until every document queued before the call has been
// ingested into the synopsis (tests and benchmarks use this to make
// estimator state deterministic).
func (e *Engine) Flush() {
	e.pipeMu.RLock()
	if e.pipeClosed {
		e.pipeMu.RUnlock()
		return
	}
	ch := make(chan struct{})
	e.ingest <- ingestItem{done: ch}
	e.pipeMu.RUnlock()
	<-ch
}

// journalDelivered records one published document's at-least-once
// fan-out as a single OpDeliver WAL record: the document content plus
// every (subscription, cursor) pair the routing enqueued. The queue
// appends already happened (effects precede appends — the invariant
// the snapshot watermark proof rests on), so a crash between enqueue
// and journal loses only publishes whose callers never saw success.
func (e *Engine) journalDelivered(seq uint64, t *xmltree.Tree, acked []ackedDelivery) {
	j := e.journal.Load()
	if j == nil {
		return
	}
	xml, err := xmltree.XMLString(t, false)
	if err != nil {
		e.noteJournalError()
		return
	}
	subs := make([]uint64, len(acked))
	cursors := make([]uint64, len(acked))
	comms := make([]int, len(acked))
	for i, a := range acked {
		subs[i], cursors[i], comms[i] = a.sub, a.cursor, a.comm
	}
	if lsn, err := (*j).Delivered(seq, xml, subs, cursors, comms); err != nil {
		e.noteJournalError()
	} else {
		e.bumpDeliveryLSN(lsn)
	}
}

// docRing retains the most recent published documents keyed by publish
// sequence, so a delivery's content is retrievable after routing. On
// top of the fixed-size ring sits the pin map: documents referenced by
// unacked at-least-once deliveries are pinned (refcounted, one
// reference per queued entry) and stay retrievable however far the
// ring advances — GET /doc/{seq} must not 404 a document a consumer
// can still legally be redelivered. Pins are bounded by the cursor
// logs' capacity, so the map cannot grow without bound.
type docRing struct {
	mu     sync.Mutex
	buf    []docEntry
	pinned map[uint64]*pinnedDoc
}

type docEntry struct {
	seq  uint64
	tree *xmltree.Tree
}

type pinnedDoc struct {
	tree *xmltree.Tree
	refs int
}

func (r *docRing) put(seq uint64, t *xmltree.Tree) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[seq%uint64(len(r.buf))] = docEntry{seq: seq, tree: t}
	r.mu.Unlock()
}

func (r *docRing) get(seq uint64) *xmltree.Tree {
	if r == nil || seq == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.buf[seq%uint64(len(r.buf))]; e.seq == seq {
		return e.tree
	}
	if p, ok := r.pinned[seq]; ok {
		return p.tree
	}
	return nil
}

// pin adds one reference to seq, retaining t past ring eviction.
func (r *docRing) pin(seq uint64, t *xmltree.Tree) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if p, ok := r.pinned[seq]; ok {
		p.refs++
	} else {
		r.pinned[seq] = &pinnedDoc{tree: t, refs: 1}
	}
	r.mu.Unlock()
}

// unpin drops one reference per listed sequence (ack, shed, close).
func (r *docRing) unpin(seqs []uint64) {
	if r == nil || len(seqs) == 0 {
		return
	}
	r.mu.Lock()
	for _, seq := range seqs {
		if p, ok := r.pinned[seq]; ok {
			if p.refs--; p.refs <= 0 {
				delete(r.pinned, seq)
			}
		}
	}
	r.mu.Unlock()
}

func (r *docRing) unpinOne(seq uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if p, ok := r.pinned[seq]; ok {
		if p.refs--; p.refs <= 0 {
			delete(r.pinned, seq)
		}
	}
	r.mu.Unlock()
}

// pinnedCount is the number of distinct pinned documents (gauge).
func (r *docRing) pinnedCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pinned)
}
