package broker

// RebuildPolicy decides when accumulated subscription churn warrants a
// full similarity-matrix rebuild and greedy re-clustering. It is
// consulted after every registry mutation with the number of mutations
// since the last rebuild (stale) and the current number of live
// subscriptions (live).
type RebuildPolicy interface {
	ShouldRebuild(stale, live int) bool
}

// Staleness rebuilds after a fixed number of registry mutations,
// regardless of registry size.
type Staleness struct {
	// MaxStale is the mutation budget between rebuilds (≤ 0 never
	// rebuilds).
	MaxStale int
}

// ShouldRebuild implements RebuildPolicy.
func (p Staleness) ShouldRebuild(stale, live int) bool {
	return p.MaxStale > 0 && stale >= p.MaxStale
}

// DirtyFraction rebuilds when the mutations since the last rebuild
// exceed a fraction of the live registry — churn proportional to size
// amortizes the O(n²) rebuild against O(n) incremental updates, keeping
// the per-mutation cost linear.
type DirtyFraction struct {
	// Fraction of live subscriptions that may churn before a rebuild
	// (e.g. 0.25).
	Fraction float64
	// MinStale is a floor that stops tiny registries from rebuilding on
	// every mutation.
	MinStale int
}

// ShouldRebuild implements RebuildPolicy.
func (p DirtyFraction) ShouldRebuild(stale, live int) bool {
	if stale < p.MinStale {
		return false
	}
	return float64(stale) >= p.Fraction*float64(live)
}

// Never disables policy rebuilds; communities evolve purely
// incrementally (Engine.Rebuild remains available).
type Never struct{}

// ShouldRebuild implements RebuildPolicy.
func (Never) ShouldRebuild(stale, live int) bool { return false }
