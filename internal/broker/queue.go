package broker

import (
	"sync"
	"time"
)

// queue is one consumer's delivery buffer, in one of two modes fixed at
// subscribe time:
//
//   - At-most-once (the default): a bounded ring. Pushing to a full
//     queue evicts the oldest delivery (live feeds prefer fresh
//     documents; the eviction is counted by the engine as a drop and
//     surfaces to the consumer as the drain's gap marker).
//   - At-least-once: a cursor-ordered log with explicit acknowledgment.
//     Every accepted delivery is assigned the next cursor; draining
//     hands out redeliverable entries in cursor order and puts them
//     in flight under a lease; ack(upto) discharges the prefix and
//     advances the committed cursor; a lapsed lease returns the entry
//     to redeliverable. Capacity overflow sheds the oldest entry —
//     counted, never silent — so one dead consumer cannot pin the
//     broker's memory forever.
//
// Draining long-polls in both modes: an empty drain waits for a push,
// the queue closing, or the deadline. The wake channel implements the
// wait: it is closed (waking every waiter) and replaced whenever a
// redeliverable delivery appears or the queue closes.
type queue struct {
	mu      sync.Mutex
	mode    DeliveryMode
	buf     []Delivery
	head, n int
	closed  bool
	wake    chan struct{}

	// At-most-once loss accounting: gap counts evictions since the last
	// drain observed them (reported and reset by drain — the "you
	// missed N" marker); dropped is the lifetime total.
	gap     uint64
	dropped uint64

	// At-least-once cursor log. entries is cursor-ordered; lastCursor
	// the highest cursor assigned; committed the highest acked cursor;
	// inflight the number of entries currently under a consumer lease.
	capacity   int
	entries    []ackEntry
	lastCursor uint64
	committed  uint64
	inflight   int
	stats      ackStats
}

// ackEntry is one at-least-once delivery awaiting acknowledgment. A
// zero deadline means redeliverable; a set deadline means a consumer
// holds the entry under a lease until then.
type ackEntry struct {
	cursor   uint64
	doc      uint64
	comm     int
	attempts int
	deadline time.Time
}

// ackStats is the per-subscription conservation ledger: every entry
// the log accepted is eventually acked, still queued, or shed —
// delivered == acked + len(entries) + shed at every quiescent point.
type ackStats struct {
	delivered   uint64 // entries accepted into the log
	acked       uint64 // entries discharged by ack
	shed        uint64 // entries evicted by capacity overflow
	redelivered uint64 // hand-outs of an entry already handed out before
	expired     uint64 // lease lapses (inflight → redeliverable flips)
}

func newQueue(capacity int) *queue {
	return &queue{buf: make([]Delivery, capacity), wake: make(chan struct{})}
}

// newAckQueue builds an at-least-once queue. The log starts empty and
// grows to capacity; unlike the ring there is no fixed backing array,
// since a well-behaved consumer keeps it near-empty.
func newAckQueue(capacity int) *queue {
	return &queue{mode: AtLeastOnce, capacity: capacity, wake: make(chan struct{})}
}

// wakeLocked wakes every parked drainer. Caller holds q.mu.
func (q *queue) wakeLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// push enqueues d (at-most-once mode), evicting the oldest entry when
// full. enqueued is false only when the queue is closed; evicted
// reports that an older delivery was dropped to make room (the engine
// counts it — the loss belongs to an earlier document, the new
// delivery lands).
func (q *queue) push(d Delivery) (enqueued, evicted bool) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false, false
	}
	if q.n == len(q.buf) {
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		q.gap++
		q.dropped++
		evicted = true
	}
	q.buf[(q.head+q.n)%len(q.buf)] = d
	q.n++
	// Drainers only wait after observing an empty queue, so waking is
	// needed solely on the empty→non-empty transition — pushes to an
	// already non-empty queue skip the channel churn.
	if q.n == 1 {
		q.wakeLocked()
	}
	q.mu.Unlock()
	return true, evicted
}

// pushAcked appends one at-least-once delivery and assigns its cursor.
// A full log sheds its oldest entry first (shed/shedDoc report it so
// the engine can unpin the document and count the loss). enqueued is
// false only when the queue is closed.
func (q *queue) pushAcked(doc uint64, comm int) (cursor, shedDoc uint64, shed, enqueued bool) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, 0, false, false
	}
	if len(q.entries) >= q.capacity {
		e := q.entries[0]
		q.entries = q.entries[:copy(q.entries, q.entries[1:])]
		if !e.deadline.IsZero() {
			q.inflight--
		}
		q.stats.shed++
		shedDoc, shed = e.doc, true
	}
	q.lastCursor++
	cursor = q.lastCursor
	q.entries = append(q.entries, ackEntry{cursor: cursor, doc: doc, comm: comm})
	q.stats.delivered++
	if len(q.entries)-q.inflight == 1 {
		q.wakeLocked()
	}
	q.mu.Unlock()
	return cursor, shedDoc, shed, true
}

// restore re-inserts a delivery during crash recovery (snapshot load or
// OpDeliver replay). Cursors are assigned monotonically and never
// reused, so an entry at or below the log's high-water mark — or below
// the committed cursor — was already seen (snapshot/WAL overlap) and is
// skipped, making replay exactly idempotent. Returns whether the entry
// was inserted and, like pushAcked, any shed overflow victim.
func (q *queue) restore(cursor, doc uint64, comm int, attempts int) (shedDoc uint64, shed, inserted bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || cursor <= q.lastCursor || cursor <= q.committed {
		return 0, false, false
	}
	if len(q.entries) >= q.capacity {
		e := q.entries[0]
		q.entries = q.entries[:copy(q.entries, q.entries[1:])]
		if !e.deadline.IsZero() {
			q.inflight--
		}
		q.stats.shed++
		shedDoc, shed = e.doc, true
	}
	q.lastCursor = cursor
	q.entries = append(q.entries, ackEntry{cursor: cursor, doc: doc, comm: comm, attempts: attempts})
	q.stats.delivered++
	if len(q.entries)-q.inflight == 1 {
		q.wakeLocked()
	}
	return shedDoc, shed, true
}

// markDrained replays an OpDrained record: entries at or below upto
// were handed to a consumer before the crash, so their next hand-out is
// a redelivery. Idempotent (attempts only ratchets up to 1).
func (q *queue) markDrained(upto uint64) {
	q.mu.Lock()
	for i := range q.entries {
		e := &q.entries[i]
		if e.cursor > upto {
			break
		}
		if e.attempts == 0 {
			e.attempts = 1
		}
	}
	q.mu.Unlock()
}

// drain removes up to max deliveries (at-most-once mode). If the queue
// is empty and open it waits up to the given duration for the first
// delivery. gap is the number of deliveries evicted since the last
// drain observed them — the explicit "you missed N" marker the
// drop-oldest policy owes the consumer.
func (q *queue) drain(max int, wait time.Duration) (out []Delivery, gap uint64) {
	if max <= 0 {
		max = 1 << 30
	}
	deadline := time.Now().Add(wait)
	for {
		q.mu.Lock()
		gap += q.gap
		q.gap = 0
		if q.n > 0 {
			take := q.n
			if take > max {
				take = max
			}
			out = make([]Delivery, take)
			for i := 0; i < take; i++ {
				out[i] = q.buf[(q.head+i)%len(q.buf)]
			}
			q.head = (q.head + take) % len(q.buf)
			q.n -= take
			q.mu.Unlock()
			return out, gap
		}
		if q.closed {
			q.mu.Unlock()
			return nil, gap
		}
		w := q.wake
		q.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, gap
		}
		t := time.NewTimer(remain)
		select {
		case <-w:
			t.Stop()
		case <-t.C:
			return nil, gap
		}
	}
}

// drainAcked hands out up to max redeliverable entries in cursor order,
// putting each in flight under a lease expiring lease from now. Lapsed
// leases are reclaimed inline first, so a reconnecting consumer resumes
// its window without waiting for the sweeper. redelivered counts batch
// entries handed out before (lease lapse, crash recovery, or an
// earlier drain the consumer never acked).
func (q *queue) drainAcked(max int, wait, lease time.Duration, c *counters) (out []Delivery, committed uint64, redelivered int) {
	if max <= 0 {
		max = 1 << 30
	}
	deadline := time.Now().Add(wait)
	for {
		now := time.Now()
		q.mu.Lock()
		if n := q.expireLocked(now); n > 0 && c != nil {
			c.leaseExpiries.Add(uint64(n))
		}
		if avail := len(q.entries) - q.inflight; avail > 0 {
			take := avail
			if take > max {
				take = max
			}
			out = make([]Delivery, 0, take)
			exp := now.Add(lease)
			for i := range q.entries {
				if len(out) == take {
					break
				}
				e := &q.entries[i]
				if !e.deadline.IsZero() {
					continue
				}
				e.attempts++
				e.deadline = exp
				q.inflight++
				d := Delivery{Doc: e.doc, Community: e.comm, Cursor: e.cursor}
				if e.attempts > 1 {
					d.Redelivered = true
					redelivered++
					q.stats.redelivered++
				}
				out = append(out, d)
			}
			committed = q.committed
			q.mu.Unlock()
			return out, committed, redelivered
		}
		committed = q.committed
		if q.closed {
			q.mu.Unlock()
			return nil, committed, 0
		}
		w := q.wake
		q.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, committed, 0
		}
		t := time.NewTimer(remain)
		select {
		case <-w:
			t.Stop()
		case <-t.C:
			return nil, committed, 0
		}
	}
}

// ack discharges every entry with cursor ≤ upto and advances the
// committed cursor. strict rejects a cursor the log never assigned
// (the live-API contract: you can only ack what you were handed);
// replay uses lenient mode, since a journal-error gap can legitimately
// leave an OpAck whose OpDeliver never made the WAL. advanced reports
// whether committed moved (re-acks are no-ops and are not re-journaled).
// unpin lists the discharged entries' document sequences.
func (q *queue) ack(upto uint64, strict bool) (acked int, advanced bool, unpin []uint64, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if strict && upto > q.lastCursor {
		return 0, false, nil, ErrBadCursor
	}
	i := 0
	for i < len(q.entries) && q.entries[i].cursor <= upto {
		e := q.entries[i]
		if !e.deadline.IsZero() {
			q.inflight--
		}
		unpin = append(unpin, e.doc)
		i++
	}
	if i > 0 {
		q.entries = q.entries[:copy(q.entries, q.entries[i:])]
		acked = i
		q.stats.acked += uint64(i)
	}
	if upto > q.committed {
		q.committed = upto
		advanced = true
	}
	if upto > q.lastCursor {
		q.lastCursor = upto // lenient replay: never re-issue an acked cursor
	}
	return acked, advanced, unpin, nil
}

// expireLocked flips every lapsed lease back to redeliverable and wakes
// parked drainers. Caller holds q.mu.
func (q *queue) expireLocked(now time.Time) int {
	if q.inflight == 0 {
		return 0
	}
	n := 0
	for i := range q.entries {
		e := &q.entries[i]
		if !e.deadline.IsZero() && !e.deadline.After(now) {
			e.deadline = time.Time{}
			q.inflight--
			n++
		}
	}
	if n > 0 {
		q.stats.expired += uint64(n)
		q.wakeLocked()
	}
	return n
}

// expire is the lease sweeper's entry point.
func (q *queue) expire(now time.Time) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.expireLocked(now)
}

// len is the number of undischarged deliveries: ring occupancy
// (at-most-once) or queued-plus-inflight log entries (at-least-once).
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.mode == AtLeastOnce {
		return len(q.entries)
	}
	return q.n
}

// info snapshots the queue for introspection.
func (q *queue) info() (mode DeliveryMode, pending, inflight int, committed, lastCursor uint64, st ackStats, dropped uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.mode == AtLeastOnce {
		return q.mode, len(q.entries) - q.inflight, q.inflight, q.committed, q.lastCursor, q.stats, q.dropped
	}
	return q.mode, q.n, 0, 0, 0, q.stats, q.dropped
}

// snapshotEntries copies the cursor log for a State cut (at-least-once
// queues only; lease deadlines are deliberately excluded — leases do
// not survive a restart, every recovered entry is redeliverable).
func (q *queue) snapshotEntries() (committed, lastCursor uint64, entries []QueuedDelivery) {
	q.mu.Lock()
	defer q.mu.Unlock()
	entries = make([]QueuedDelivery, len(q.entries))
	for i, e := range q.entries {
		entries[i] = QueuedDelivery{Cursor: e.cursor, Doc: e.doc, Community: e.comm, Attempts: e.attempts}
	}
	return q.committed, q.lastCursor, entries
}

// close wakes all waiters; queued deliveries remain drainable. It
// returns the document sequences of remaining at-least-once entries so
// the engine can release their retention pins — an unsubscribed or
// closed consumer no longer holds the delivery contract.
func (q *queue) close() (unpin []uint64) {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.wake)
		for _, e := range q.entries {
			unpin = append(unpin, e.doc)
		}
	}
	q.mu.Unlock()
	return unpin
}
