package broker

import (
	"sync"
	"time"
)

// queue is a bounded delivery ring for one consumer. Pushing to a full
// queue evicts the oldest delivery (live feeds prefer fresh documents;
// the eviction is counted by the engine as a drop). Draining long-polls:
// an empty drain waits for a push, the queue closing, or the deadline.
//
// The wake channel implements the wait: it is closed (waking every
// waiter) and replaced whenever a delivery arrives or the queue closes.
type queue struct {
	mu      sync.Mutex
	buf     []Delivery
	head, n int
	closed  bool
	wake    chan struct{}
}

func newQueue(capacity int) *queue {
	return &queue{buf: make([]Delivery, capacity), wake: make(chan struct{})}
}

// push enqueues d, evicting the oldest entry when full. enqueued is
// false only when the queue is closed; evicted reports that an older
// delivery was dropped to make room (the engine counts it — the loss
// belongs to an earlier document, the new delivery lands).
func (q *queue) push(d Delivery) (enqueued, evicted bool) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false, false
	}
	if q.n == len(q.buf) {
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		evicted = true
	}
	q.buf[(q.head+q.n)%len(q.buf)] = d
	q.n++
	// Drainers only wait after observing an empty queue, so waking is
	// needed solely on the empty→non-empty transition — pushes to an
	// already non-empty queue skip the channel churn.
	if q.n == 1 {
		close(q.wake)
		q.wake = make(chan struct{})
	}
	q.mu.Unlock()
	return true, evicted
}

// drain removes up to max deliveries. If the queue is empty and open it
// waits up to the given duration for the first delivery.
func (q *queue) drain(max int, wait time.Duration) []Delivery {
	if max <= 0 {
		max = 1 << 30
	}
	deadline := time.Now().Add(wait)
	for {
		q.mu.Lock()
		if q.n > 0 {
			take := q.n
			if take > max {
				take = max
			}
			out := make([]Delivery, take)
			for i := 0; i < take; i++ {
				out[i] = q.buf[(q.head+i)%len(q.buf)]
			}
			q.head = (q.head + take) % len(q.buf)
			q.n -= take
			q.mu.Unlock()
			return out
		}
		if q.closed {
			q.mu.Unlock()
			return nil
		}
		w := q.wake
		q.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil
		}
		t := time.NewTimer(remain)
		select {
		case <-w:
			t.Stop()
		case <-t.C:
			return nil
		}
	}
}

func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// close wakes all waiters; queued deliveries remain drainable.
func (q *queue) close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.wake)
	}
	q.mu.Unlock()
}
