package broker

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"treesim/internal/core"
	"treesim/internal/persist"
)

// storeJournal adapts a persist.Store to the broker Journal interface —
// the same wiring cmd/treesimd uses.
type storeJournal struct{ s *persist.Store }

func (j storeJournal) Subscribed(id uint64, expr string, group int, mode DeliveryMode) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpSubscribe, ID: id, Expr: expr, Group: group, Mode: uint8(mode)})
}
func (j storeJournal) Unsubscribed(id uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpUnsubscribe, ID: id})
}
func (j storeJournal) Rebuilt(groups [][]uint64, reps []uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpRebuild, Groups: groups, Reps: reps})
}
func (j storeJournal) Delivered(seq uint64, xml string, subs, cursors []uint64, comms []int) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpDeliver, Seq: seq, XML: xml, Subs: subs, Cursors: cursors, Comms: comms})
}
func (j storeJournal) Acked(id uint64, upto uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpAck, ID: id, Cursor: upto})
}
func (j storeJournal) Drained(id uint64, upto uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpDrained, ID: id, Cursor: upto})
}

// replayStore drives a Store's WAL tail through the engine's Apply*
// entry points — the recovery dispatch loop.
func replayStore(t *testing.T, s *persist.Store, e *Engine) {
	t.Helper()
	if err := s.Replay(func(rec persist.Record) error {
		switch rec.Op {
		case persist.OpSubscribe:
			return e.ApplySubscribed(rec.ID, rec.Expr, rec.Group, DeliveryMode(rec.Mode))
		case persist.OpUnsubscribe:
			return e.ApplyUnsubscribed(rec.ID)
		case persist.OpRebuild:
			return e.ApplyRebuilt(rec.Groups, rec.Reps)
		case persist.OpDeliver:
			return e.ApplyDelivered(rec.Seq, rec.XML, rec.Subs, rec.Cursors, rec.Comms)
		case persist.OpAck:
			return e.ApplyAcked(rec.ID, rec.Cursor)
		case persist.OpDrained:
			return e.ApplyDrained(rec.ID, rec.Cursor)
		default:
			return fmt.Errorf("unknown op %q", rec.Op)
		}
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

// canonPartition sorts a partition into comparable form.
func canonPartition(groups [][]uint64) [][]uint64 {
	out := make([][]uint64, 0, len(groups))
	for _, g := range groups {
		cp := append([]uint64(nil), g...)
		sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) == 0 || len(out[j]) == 0 {
			return len(out[i]) < len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

func partitionsEqual(a, b [][]uint64) bool {
	a, b = canonPartition(a), canonPartition(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// deliveries drains every queued delivery for id as a sorted doc-seq
// list.
func deliveries(t *testing.T, e *Engine, id uint64) []uint64 {
	t.Helper()
	ds, err := e.Drain(id, 10000, 0)
	if err != nil {
		t.Fatalf("Drain(%d): %v", id, err)
	}
	seqs := make([]uint64, len(ds))
	for i, d := range ds {
		seqs[i] = d.Doc
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

var recoveryPatterns = []string{
	"/site/regions//item", "/site/regions/africa/item", "/site//item/name",
	"/site/people/person", "/site/people/person/name", "//person//emailaddress",
	"/site/closed_auctions//price", "//price", "/site/open_auctions/open_auction",
	"//open_auction/bidder", "/site/categories/category", "//category/description",
}

var recoveryDocs = []string{
	"site(regions(africa(item(name)),asia(item)))",
	"site(people(person(name,emailaddress)))",
	"site(closed_auctions(closed_auction(price)))",
	"site(open_auctions(open_auction(bidder,bidder)))",
	"site(categories(category(description)))",
	"site(regions(europe(item(name,description))))",
	"site(people(person(emailaddress),person(name)))",
	"site(open_auctions(open_auction(price)))",
}

// publishAll publishes the shared document set, waits for ingestion,
// and returns each document's assigned sequence (index-aligned with
// recoveryDocs).
func publishAll(t *testing.T, e *Engine) []uint64 {
	t.Helper()
	seqs := make([]uint64, len(recoveryDocs))
	for i, c := range recoveryDocs {
		res, err := e.Publish(doc(t, c))
		if err != nil {
			t.Fatalf("Publish: %v", err)
		}
		seqs[i] = res.Seq
	}
	e.Flush()
	return seqs
}

// assertSameRouting publishes the doc set to both engines and demands
// identical per-subscription delivery streams. Streams are compared by
// document (position in the published batch), not raw sequence number —
// the engines' sequence counters may sit at different offsets.
func assertSameRouting(t *testing.T, orig, rec *Engine, ids []uint64) {
	t.Helper()
	docOf := func(seqs []uint64) map[uint64]int {
		m := make(map[uint64]int, len(seqs))
		for i, s := range seqs {
			m[s] = i
		}
		return m
	}
	aDocs := docOf(publishAll(t, orig))
	bDocs := docOf(publishAll(t, rec))
	toDocs := func(m map[uint64]int, seqs []uint64) []int {
		out := make([]int, len(seqs))
		for i, s := range seqs {
			d, ok := m[s]
			if !ok {
				t.Fatalf("delivery of seq %d not from this batch", s)
			}
			out[i] = d
		}
		sort.Ints(out)
		return out
	}
	for _, id := range ids {
		a := toDocs(aDocs, deliveries(t, orig, id))
		b := toDocs(bDocs, deliveries(t, rec, id))
		if len(a) != len(b) {
			t.Fatalf("subscription %d: original delivered docs %v, recovered %v", id, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("subscription %d: original delivered docs %v, recovered %v", id, a, b)
			}
		}
	}
}

func recoveryConfig() Config {
	return Config{
		Estimator: core.Config{Representation: core.Sets, Seed: 7},
		Shards:    2,
		// Small thresholds so the churn below actually crosses the rebuild
		// policy and exercises the OpRebuild journal path.
		Rebuild: DirtyFraction{Fraction: 0.5, MinStale: 6},
	}
}

// TestRecoveryEquivalence is the end-to-end crash test: journaled churn,
// a mid-life snapshot, more journaled churn (including a forced
// rebuild), then recovery from snapshot + WAL tail. The recovered
// engine must hold the identical community partition and route every
// document to the identical subscriptions.
func TestRecoveryEquivalence(t *testing.T) {
	cfg := recoveryConfig()
	store, err := persist.Open(t.TempDir(), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	e := newTestEngine(t, cfg)
	e.SetJournal(storeJournal{store})

	// Seed the estimator, then churn phase 1 (covered by the snapshot).
	publishAll(t, e)
	var ids []uint64
	for _, p := range recoveryPatterns[:8] {
		id, err := e.Subscribe(p)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	// Snapshot mid-life.
	e.Flush()
	st, err := e.State()
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeState(st)
	if err != nil {
		t.Fatal(err)
	}
	env := persist.Snapshot{Broker: data}
	payload, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteSnapshot(payload, st.WalLSN); err != nil {
		t.Fatal(err)
	}

	// Churn phase 2: WAL-tail-only. No publishes here, so the original
	// and recovered engines assign identical doc sequence numbers below.
	for _, p := range recoveryPatterns[8:] {
		id, err := e.Subscribe(p)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if !e.Unsubscribe(ids[1]) || !e.Unsubscribe(ids[4]) {
		t.Fatal("unsubscribe failed")
	}
	live := append(append([]uint64(nil), ids[:1]...), ids[2], ids[3])
	live = append(live, ids[5:]...)
	e.Rebuild() // forces a journaled OpRebuild

	// "Crash" and recover: snapshot + WAL tail.
	snap, ok, err := store.LoadSnapshot()
	if err != nil || !ok {
		t.Fatalf("LoadSnapshot: ok=%v err=%v", ok, err)
	}
	env2, err := persist.DecodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := DecodeState(env2.Broker)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Restore(cfg, st2)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	t.Cleanup(func() { rec.Close() })
	replayStore(t, store, rec)

	if rec.Live() != e.Live() {
		t.Fatalf("recovered Live = %d, original %d", rec.Live(), e.Live())
	}
	if !partitionsEqual(e.CommunityIDs(), rec.CommunityIDs()) {
		t.Fatalf("partitions differ:\noriginal:  %v\nrecovered: %v",
			canonPartition(e.CommunityIDs()), canonPartition(rec.CommunityIDs()))
	}
	assertSameRouting(t, e, rec, live)
}

// TestRecoveryWALOnly recovers with no snapshot at all: the full journal
// replayed into a fresh engine.
func TestRecoveryWALOnly(t *testing.T) {
	cfg := recoveryConfig()
	store, err := persist.Open(t.TempDir(), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	e := newTestEngine(t, cfg)
	e.SetJournal(storeJournal{store})
	var ids []uint64
	for _, p := range recoveryPatterns {
		id, err := e.Subscribe(p)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.Unsubscribe(ids[0])

	rec := newTestEngine(t, cfg)
	replayStore(t, store, rec)
	if rec.Live() != e.Live() {
		t.Fatalf("recovered Live = %d, original %d", rec.Live(), e.Live())
	}
	if !partitionsEqual(e.CommunityIDs(), rec.CommunityIDs()) {
		t.Fatalf("partitions differ:\noriginal:  %v\nrecovered: %v",
			canonPartition(e.CommunityIDs()), canonPartition(rec.CommunityIDs()))
	}
	assertSameRouting(t, e, rec, ids[1:])
}

// TestSnapshotWatermarkExcludesConcurrentChurn reproduces the lost-
// churn race: a subscribe commits and journals AFTER the State cut but
// BEFORE the snapshot write. Stamping the snapshot with the store's
// tail LSN at write time would mark that record as covered — its
// effect absent from the payload yet skipped on replay, silently
// losing acked churn. State.WalLSN is the cut's own watermark, so the
// straggler's record stays above it and replays.
func TestSnapshotWatermarkExcludesConcurrentChurn(t *testing.T) {
	cfg := recoveryConfig()
	cfg.Rebuild = Never{}
	store, err := persist.Open(t.TempDir(), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	e := newTestEngine(t, cfg)
	e.SetJournal(storeJournal{store})
	if _, err := e.Subscribe(recoveryPatterns[0]); err != nil {
		t.Fatal(err)
	}

	// The state cut (covers one subscription, WalLSN 1)...
	st, err := e.State()
	if err != nil {
		t.Fatal(err)
	}
	if st.WalLSN != 1 {
		t.Fatalf("State.WalLSN = %d, want 1", st.WalLSN)
	}
	// ...then a subscribe commits before the snapshot is written...
	straggler, err := e.Subscribe(recoveryPatterns[1])
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeState(st)
	if err != nil {
		t.Fatal(err)
	}
	env := persist.Snapshot{Broker: data}
	payload, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteSnapshot(payload, st.WalLSN); err != nil {
		t.Fatal(err)
	}

	// Crash + recover: the straggler's WAL record must replay.
	snap, ok, err := store.LoadSnapshot()
	if err != nil || !ok {
		t.Fatalf("LoadSnapshot: ok=%v err=%v", ok, err)
	}
	env2, err := persist.DecodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := DecodeState(env2.Broker)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Restore(cfg, st2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rec.Close() })
	if rec.Live() != 1 {
		t.Fatalf("restored snapshot holds %d subscriptions, want 1 (straggler excluded)", rec.Live())
	}
	replayStore(t, store, rec)
	if rec.Live() != 2 {
		t.Fatalf("recovered Live = %d, want 2 (straggler replayed from the WAL)", rec.Live())
	}
	if _, err := rec.Drain(straggler, 1, 0); err != nil {
		t.Fatalf("straggler subscription %d lost across recovery: %v", straggler, err)
	}
}

// TestReplayIdempotent replays the same WAL twice into one engine: the
// second pass must be a complete no-op (the snapshot/WAL overlap case).
func TestReplayIdempotent(t *testing.T) {
	cfg := recoveryConfig()
	store, err := persist.Open(t.TempDir(), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	e := newTestEngine(t, cfg)
	e.SetJournal(storeJournal{store})
	for _, p := range recoveryPatterns[:6] {
		if _, err := e.Subscribe(p); err != nil {
			t.Fatal(err)
		}
	}
	e.Rebuild()

	rec := newTestEngine(t, cfg)
	replayStore(t, store, rec)
	want := canonPartition(rec.CommunityIDs())
	replayStore(t, store, rec) // again
	if rec.Live() != 6 {
		t.Fatalf("Live after double replay = %d, want 6", rec.Live())
	}
	if !partitionsEqual(rec.CommunityIDs(), want) {
		t.Fatalf("double replay changed the partition")
	}
	// Unknown-id unsubscribe replay is a no-op, not an error.
	if err := rec.ApplyUnsubscribed(99999); err != nil {
		t.Fatalf("ApplyUnsubscribed(unknown) = %v", err)
	}
}

// TestRestoreShardSkew restores a snapshot into an engine with a
// different shard count: placement re-balances and routing is
// unchanged.
func TestRestoreShardSkew(t *testing.T) {
	cfg := recoveryConfig()
	e := newTestEngine(t, cfg)
	publishAll(t, e)
	var ids []uint64
	for _, p := range recoveryPatterns {
		id, err := e.Subscribe(p)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.Flush()
	st, err := e.State()
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{-1, 1, 4} {
		cfg2 := cfg
		cfg2.Shards = shards
		rec, err := Restore(cfg2, st)
		if err != nil {
			t.Fatalf("Restore into %d shards: %v", shards, err)
		}
		if !partitionsEqual(e.CommunityIDs(), rec.CommunityIDs()) {
			t.Fatalf("shards=%d: partitions differ", shards)
		}
		assertSameRouting(t, e, rec, ids)
		rec.Close()
	}
}

// TestInjectRemoteShedsWhenFull pins the ingester behind a gate, fills
// the one-slot pipeline, and verifies InjectRemote sheds with ErrBusy
// (counted) instead of blocking, while the gated document still ingests
// once released.
func TestInjectRemoteShedsWhenFull(t *testing.T) {
	e := newTestEngine(t, Config{IngestQueue: 1})
	gate := make(chan struct{})
	e.ingest <- ingestItem{gate: gate}
	// Wait for the ingester to pick the gate item up (emptying the
	// queue) so the fill below is deterministic.
	for len(e.ingest) != 0 {
		runtime.Gosched()
	}

	d := doc(t, "a(b)")
	if _, err := e.InjectRemote(d); err != nil {
		t.Fatalf("InjectRemote into free slot: %v", err)
	}
	if _, err := e.InjectRemote(d); err != ErrBusy {
		t.Fatalf("InjectRemote into full pipeline = %v, want ErrBusy", err)
	}
	st := e.Stats()
	if st.RemoteShed != 1 {
		t.Fatalf("RemoteShed = %d, want 1", st.RemoteShed)
	}
	if st.RemoteInjected != 1 {
		t.Fatalf("RemoteInjected = %d, want 1 (the accepted one routed)", st.RemoteInjected)
	}

	close(gate)
	e.Flush() // returns only after everything queued before it ingested
	if got := e.Stats().IngestPending; got != 0 {
		t.Fatalf("IngestPending = %d after gate release + Flush, want 0", got)
	}
	// Local Publish still works with normal blocking semantics.
	if _, err := e.Publish(d); err != nil {
		t.Fatalf("Publish after release: %v", err)
	}
}

// TestJournalRecordsDecisions checks the journal stream itself: commits
// emit sub/unsub/rebuild records in order with the chosen group
// indices.
func TestJournalRecordsDecisions(t *testing.T) {
	cfg := recoveryConfig()
	cfg.Rebuild = Never{}
	store, err := persist.Open(t.TempDir(), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	e := newTestEngine(t, cfg)
	e.SetJournal(storeJournal{store})
	id1, _ := e.Subscribe("/a/b")
	id2, _ := e.Subscribe("/c/d")
	e.Unsubscribe(id1)
	e.Rebuild()

	var recs []persist.Record
	if err := store.Replay(func(r persist.Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("journal has %d records, want 4: %+v", len(recs), recs)
	}
	if recs[0].Op != persist.OpSubscribe || recs[0].ID != id1 || recs[0].Expr != "/a/b" || recs[0].Group != 0 {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Op != persist.OpSubscribe || recs[1].ID != id2 {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	if recs[2].Op != persist.OpUnsubscribe || recs[2].ID != id1 {
		t.Fatalf("record 2 = %+v", recs[2])
	}
	if recs[3].Op != persist.OpRebuild || len(recs[3].Groups) == 0 || len(recs[3].Groups) != len(recs[3].Reps) {
		t.Fatalf("record 3 = %+v", recs[3])
	}
	for _, ids := range recs[3].Groups {
		for _, id := range ids {
			if id == id1 {
				t.Fatalf("rebuild partition contains unsubscribed id %d", id1)
			}
		}
	}
}
