package broker

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"treesim/internal/cluster"
	"treesim/internal/matching"
	"treesim/internal/telemetry"
	"treesim/internal/xmltree"
)

// shard is one slice of the broker's matching + delivery plane. Every
// community is pinned to exactly one shard (community-aware placement:
// co-clustered subscribers land together, so a community that matches
// fans out entirely behind one shard lock), and each shard owns a
// matching.Forest holding just its communities' patterns. A publish
// loads the document into one pooled Flat arena and matches it against
// all shards in parallel; shards share no mutable state on that path,
// so the fan-out scales with cores.
//
// Locking: sh.mu is held shared by the publish fan-out (forest Match +
// group iteration) and exclusively by forest/routing maintenance. The
// registry lock (Engine.mu) is always acquired first when both are
// held, and publishes take neither the registry lock nor other shards'
// locks — subscribing on one shard never stalls matching on another.
type shard struct {
	mu     sync.RWMutex
	forest *matching.Forest

	// matchNS is the shard's telemetry histogram (labelled shard=i):
	// time to match one document and fan it out. Observing is two
	// atomics — no allocation on the match path.
	matchNS *telemetry.Histogram

	// groups/members are the shard's routing table, rebuilt by the
	// registry mutators into reused backing arrays (the swap happens
	// under mu held exclusively, so readers never observe a partial
	// rebuild and steady-state churn does not allocate).
	groups  []shardGroup
	members []shardMember

	// nGroups mirrors len(groups) for the fan-out's lock-free skip:
	// with default sizing (one shard per core) most shards of a lightly
	// subscribed engine are empty, and spawning a goroutine just to
	// take a lock and return would be the hot path's dominant cost.
	nGroups atomic.Int64
}

// shardGroup is one community resident on the shard: the global
// community index (reported in deliveries), its representative's
// forest handle, and the member range in the shard's member arena.
type shardGroup struct {
	comm       int
	repFH      int
	start, end int
}

// shardMember is one receiving subscription: its forest handle (for
// the precision sample), stable id and delivery mode (for the
// at-least-once journal), and delivery queue.
type shardMember struct {
	fh   int
	id   uint64
	mode DeliveryMode
	q    *queue
}

// ackedDelivery is one at-least-once enqueue the fan-out committed —
// the unit the publish journals (OpDeliver) so the delivery survives a
// crash.
type ackedDelivery struct {
	sub    uint64
	cursor uint64
	comm   int
}

// route matches one document (pre-loaded into flat with the shared
// label table) against the shard's forest and fans it out to the
// members of every community whose representative matched. Counter
// updates go straight to the engine's atomic counters; the return
// values feed the publish's result merge. At-least-once members get a
// cursor-log append instead of a ring push: the document is pinned in
// retention until acked, the assigned cursor is collected into acked
// (appended to the passed slice, typically a pooled scratch) for the
// publish's OpDeliver journal record, and a full log sheds its oldest
// entry — counted, and its pin released.
func (sh *shard) route(t *xmltree.Tree, flat *xmltree.Flat, seq uint64, sample int, c *counters, ring *docRing, acked []ackedDelivery) (matched, deliveries, dropped int, outAcked []ackedDelivery) {
	outAcked = acked
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if len(sh.groups) == 0 {
		return 0, 0, 0, outAcked
	}
	matchStart := time.Now()
	ms := sh.forest.MatchFlat(t, flat)
	c.filterEvals.Add(uint64(len(sh.groups)))
	for _, g := range sh.groups {
		if !ms.Has(g.repFH) {
			continue
		}
		matched++
		for _, m := range sh.members[g.start:g.end] {
			var enqueued, evicted bool
			if m.mode == AtLeastOnce {
				var cursor, shedDoc uint64
				cursor, shedDoc, evicted, enqueued = m.q.pushAcked(seq, g.comm)
				if evicted {
					c.ackShed.Add(1)
					ring.unpinOne(shedDoc)
				}
				if enqueued {
					ring.pin(seq, t)
					outAcked = append(outAcked, ackedDelivery{sub: m.id, cursor: cursor, comm: g.comm})
				}
			} else {
				enqueued, evicted = m.q.push(Delivery{Doc: seq, Community: g.comm})
			}
			if evicted || !enqueued {
				// Evictions charge the publish that forced them; the
				// lost delivery belongs to an older document.
				dropped++
				c.dropped.Add(1)
			}
			if !enqueued {
				continue
			}
			deliveries++
			n := c.delivered.Add(1)
			if sample > 0 && n%uint64(sample) == 0 {
				c.sampled.Add(1)
				if ms.Has(m.fh) {
					c.sampledHits.Add(1)
				}
			}
		}
	}
	ms.Release()
	sh.matchNS.ObserveDuration(time.Since(matchStart).Nanoseconds())
	return matched, deliveries, dropped, outAcked
}

// routeDoc fans one document out to every shard — in parallel when
// both the shard count and GOMAXPROCS allow it — and merges the
// per-shard tallies into res. Caller holds routeMu shared.
func (e *Engine) routeDoc(t *xmltree.Tree, res *PublishResult) {
	flat, _ := e.flatPool.Get().(*xmltree.Flat)
	if flat == nil {
		flat = &xmltree.Flat{}
	}
	flat.Load(t, e.tbl)
	sample := e.cfg.PrecisionSample
	fan, _ := e.fanPool.Get().(*fanState)
	if fan == nil {
		fan = &fanState{}
	}
	// Fan out only to populated shards (advisory snapshot: a publish
	// that started before a subscribe committed need not see it).
	active := fan.active[:0]
	for _, sh := range e.shards {
		if sh.nGroups.Load() > 0 {
			active = append(active, sh)
		}
	}
	fan.active = active
	allAcked := fan.acked[:0]
	if len(active) <= 1 || e.procs == 1 {
		for _, sh := range active {
			var m, d, dr int
			m, d, dr, allAcked = sh.route(t, flat, res.Seq, sample, &e.counters, e.docs, allAcked)
			res.Matched += m
			res.Deliveries += d
			res.Dropped += dr
		}
	} else {
		if cap(fan.res) < len(active) {
			fan.res = make([]shardResult, len(active))
		}
		fan.res = fan.res[:len(active)]
		for i := 1; i < len(active); i++ {
			fan.wg.Add(1)
			go func(i int) {
				defer fan.wg.Done()
				r := &fan.res[i]
				r.matched, r.deliveries, r.dropped, r.acked = active[i].route(t, flat, res.Seq, sample, &e.counters, e.docs, r.acked[:0])
			}(i)
		}
		r0 := &fan.res[0]
		r0.matched, r0.deliveries, r0.dropped, r0.acked = active[0].route(t, flat, res.Seq, sample, &e.counters, e.docs, r0.acked[:0])
		fan.wg.Wait()
		for i := range fan.res {
			res.Matched += fan.res[i].matched
			res.Deliveries += fan.res[i].deliveries
			res.Dropped += fan.res[i].dropped
			allAcked = append(allAcked, fan.res[i].acked...)
		}
	}
	// Journal the at-least-once deliveries before the publish returns:
	// once the publisher sees success, the acked-mode fan-out is durable
	// (the WAL record carries the document itself, so recovery can repin
	// content the retention ring lost with the process).
	if len(allAcked) > 0 {
		e.journalDelivered(res.Seq, t, allAcked)
	}
	fan.acked = allAcked[:0]
	e.fanPool.Put(fan)
	e.flatPool.Put(flat)
}

// fanState is the pooled scratch of one parallel fan-out.
type fanState struct {
	wg     sync.WaitGroup
	active []*shard
	res    []shardResult
	acked  []ackedDelivery
}

type shardResult struct {
	matched, deliveries, dropped int
	acked                        []ackedDelivery
}

// resolveShards turns the configured shard count into an actual one:
// 0 scales with GOMAXPROCS (capped — beyond the core count extra
// shards only shrink per-forest sharing), negative forces the
// unsharded single-forest layout.
func resolveShards(n int) int {
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	return n
}

// placeCommunityLocked picks the shard for a newly founded community:
// the one with the fewest live subscriptions (ties toward the lower
// index, keeping placement deterministic). Caller holds the registry
// lock exclusively.
func (e *Engine) placeCommunityLocked() int {
	best := 0
	for s := 1; s < len(e.shardLive); s++ {
		if e.shardLive[s] < e.shardLive[best] {
			best = s
		}
	}
	return best
}

// rebuildShardRoutingInner rebuilds one shard's routing table from the
// global clustering into the shard's reused backing arrays. The caller
// holds the registry lock exclusively AND the shard's lock exclusively
// — forest mutations and the table swap must share one critical
// section, or a concurrent publish could match a stale table whose
// forest handles have been freed (silently skipping a community) or
// reused by a different pattern (misdelivering to the old community's
// members).
func (e *Engine) rebuildShardRoutingInner(si int) {
	sh := e.shards[si]
	sh.groups = sh.groups[:0]
	sh.members = sh.members[:0]
	for g, members := range e.comms.Groups {
		if e.commShard[g] != si {
			continue
		}
		start := len(sh.members)
		for _, idx := range members {
			s := e.subs[idx]
			sh.members = append(sh.members, shardMember{fh: s.fh, id: s.id, mode: s.mode, q: s.q})
		}
		sh.groups = append(sh.groups, shardGroup{
			comm:  g,
			repFH: e.subs[e.comms.Reps[g]].fh,
			start: start,
			end:   len(sh.members),
		})
	}
	sh.nGroups.Store(int64(len(sh.groups)))
}

// replaceClusteringLocked installs a freshly built clustering: it
// re-balances communities across shards (largest first onto the least
// loaded), moves subscriptions whose shard changed between forests, and
// rebuilds every routing table. Caller holds the registry lock
// exclusively. The swap holds routeMu exclusively — a publish keeps
// routeMu shared across its WHOLE multi-shard fan-out, so without it a
// publish could route shard A before a community moved off it and
// shard B after it arrived (double delivery), or miss the community on
// both (lost delivery). The shard locks are then taken too (ordering:
// registry → routeMu → shard) so the tables' writer invariant stays
// uniform with the single-shard churn paths. Rebuilds are
// policy-amortized, so the global stall is rare and bounded by the
// move work.
func (e *Engine) replaceClusteringLocked(comms *cluster.Communities) {
	e.routeMu.Lock()
	defer e.routeMu.Unlock()
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	e.comms = comms
	e.commShard = cluster.BalanceShards(comms.Groups, len(e.shards))
	for i := range e.shardLive {
		e.shardLive[i] = 0
	}
	for g, members := range comms.Groups {
		si := e.commShard[g]
		e.shardLive[si] += len(members)
		for _, idx := range members {
			s := e.subs[idx]
			if s.shard == si {
				continue
			}
			e.shards[s.shard].forest.Remove(s.fh)
			s.fh = e.shards[si].forest.Add(s.pat)
			s.shard = si
		}
	}
	for si := range e.shards {
		e.rebuildShardRoutingInner(si)
	}
	for _, sh := range e.shards {
		sh.mu.Unlock()
	}
}
