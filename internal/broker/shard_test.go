package broker

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treesim/internal/core"
	"treesim/internal/xmltree"
)

// TestShardedPublishChurnDrain is the sharded plane's race workout plus
// its correctness anchor, in two phases:
//
//  1. A concurrent hammer (publishers + subscribe/unsubscribe churn +
//     long-poll drains against a 4-shard engine, meant to run under
//     -race) asserting delivery-count conservation: every delivery the
//     publish results claim is accounted for by the delivered counter,
//     and everything delivered is either drained, still pending, or
//     stranded in an unsubscribed queue (bounded by churn × capacity).
//  2. A deterministic differential replay: the same serial event
//     sequence against a 1-shard and a 5-shard engine must produce
//     identical per-subscription delivery sets — sharding may only
//     change where matching runs, never what is delivered.
func TestShardedPublishChurnDrain(t *testing.T) {
	e := newTestEngine(t, Config{
		Shards:        4,
		Estimator:     core.Config{Representation: core.Hashes, HashCapacity: 64, Seed: 7},
		Rebuild:       DirtyFraction{Fraction: 0.3, MinStale: 8},
		QueueCapacity: 32,
	})
	if e.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", e.Shards())
	}
	exprs := []string{"/a/b", "/a/c", "//x", "/a[b]//x", "//c", "/a/*/x"}
	docs := []*xmltree.Tree{
		doc(t, "a(b(x),c)"), doc(t, "a(b)"), doc(t, "a(c(x))"), doc(t, "q(r)"),
	}
	// Seed the stream so similarities are meaningful, then count the
	// seed deliveries (none: no subscriptions yet).
	for _, d := range docs {
		if _, err := e.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()

	var (
		wg           sync.WaitGroup
		resDelivered atomic.Uint64 // sum of PublishResult.Deliveries
		resDropped   atomic.Uint64 // sum of PublishResult.Dropped
		unsubs       atomic.Uint64
		liveMu       sync.Mutex
		liveIDs      []uint64
	)
	for w := 0; w < 3; w++ { // publishers
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				if rng.Intn(4) == 0 { // batches exercise PublishBatch too
					batch := []*xmltree.Tree{docs[rng.Intn(len(docs))], docs[rng.Intn(len(docs))]}
					rs, err := e.PublishBatch(batch)
					if err != nil {
						t.Error(err)
						return
					}
					for _, r := range rs {
						resDelivered.Add(uint64(r.Deliveries))
						resDropped.Add(uint64(r.Dropped))
					}
					continue
				}
				r, err := e.Publish(docs[rng.Intn(len(docs))])
				if err != nil {
					t.Error(err)
					return
				}
				resDelivered.Add(uint64(r.Deliveries))
				resDropped.Add(uint64(r.Dropped))
			}
		}(int64(100 + w))
	}
	for w := 0; w < 2; w++ { // churners
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []uint64
			for i := 0; i < 100; i++ {
				if len(mine) == 0 || rng.Intn(2) == 0 {
					id, err := e.Subscribe(exprs[rng.Intn(len(exprs))])
					if err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, id)
					liveMu.Lock()
					liveIDs = append(liveIDs, id)
					liveMu.Unlock()
				} else {
					k := rng.Intn(len(mine))
					id := mine[k]
					mine = append(mine[:k], mine[k+1:]...)
					liveMu.Lock()
					for j, v := range liveIDs {
						if v == id {
							liveIDs = append(liveIDs[:j], liveIDs[j+1:]...)
							break
						}
					}
					liveMu.Unlock()
					// Best-effort drain first; a racing publish may still
					// strand deliveries (bounded below).
					e.Drain(id, 0, 0)
					if e.Unsubscribe(id) {
						unsubs.Add(1)
					}
				}
			}
		}(int64(200 + w))
	}
	for w := 0; w < 2; w++ { // drainers (long-poll path included)
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				liveMu.Lock()
				var id uint64
				if len(liveIDs) > 0 {
					id = liveIDs[rng.Intn(len(liveIDs))]
				}
				liveMu.Unlock()
				if id != 0 {
					e.Drain(id, 16, time.Millisecond)
				}
			}
		}(int64(300 + w))
	}
	wg.Wait()
	e.Flush()

	st := e.Stats()
	// Publish results and the delivered counter are two independent
	// tallies of the same fan-out.
	if got := resDelivered.Load(); got != st.Deliveries {
		t.Fatalf("sum of PublishResult.Deliveries = %d, stats.Deliveries = %d", got, st.Deliveries)
	}
	if got := resDropped.Load(); got != st.Dropped {
		t.Fatalf("sum of PublishResult.Dropped = %d, stats.Dropped = %d", got, st.Dropped)
	}
	// Everything delivered is drained, pending, or stranded behind an
	// unsubscribe; stranding is bounded by churn × queue capacity.
	pending := uint64(0)
	liveMu.Lock()
	for _, id := range liveIDs {
		pending += uint64(e.Pending(id))
	}
	liveMu.Unlock()
	accounted := st.Drained + pending
	if accounted > st.Deliveries {
		t.Fatalf("drained(%d) + pending(%d) exceeds delivered(%d)", st.Drained, pending, st.Deliveries)
	}
	if stranded := st.Deliveries - accounted; stranded > unsubs.Load()*32 {
		t.Fatalf("stranded deliveries %d exceed unsubscribe bound %d", stranded, unsubs.Load()*32)
	}
	if st.DocsObserved != int(st.Published) {
		t.Fatalf("DocsObserved %d != Published %d after Flush", st.DocsObserved, st.Published)
	}

	// Phase 2: sharded and unsharded engines must route identically.
	diffShardedVsUnsharded(t)
}

// diffShardedVsUnsharded replays one serial subscribe/publish/churn
// script against a single-shard and a 5-shard engine and requires the
// delivery streams to match per subscription id, delivery for delivery
// (sequence AND community).
func diffShardedVsUnsharded(t *testing.T) {
	type run struct {
		shards int
		got    map[uint64][]Delivery
	}
	runs := []*run{{shards: -1}, {shards: 5}}
	for _, r := range runs {
		e := newTestEngine(t, Config{
			Shards:        r.shards,
			Estimator:     core.Config{Representation: core.Hashes, HashCapacity: 128, Seed: 11},
			Rebuild:       DirtyFraction{Fraction: 0.25, MinStale: 6},
			QueueCapacity: 1024,
		})
		r.got = replayScript(t, e)
	}
	if len(runs[0].got) == 0 {
		t.Fatal("differential script produced no deliveries")
	}
	if !reflect.DeepEqual(runs[0].got, runs[1].got) {
		for id, a := range runs[0].got {
			if b := runs[1].got[id]; !reflect.DeepEqual(a, b) {
				t.Errorf("subscription %d: unsharded %v, sharded %v", id, a, b)
			}
		}
		t.Fatal("sharded delivery sets differ from unsharded")
	}
}

// replayScript drives a fixed event sequence (deterministic given the
// engine config) and returns every subscription's full delivery stream.
func replayScript(t *testing.T, e *Engine) map[uint64][]Delivery {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	exprs := []string{"/a/b", "/a/c", "//x", "/a[b]//x", "//c", "/a/*/x", "//b", "/q//r"}
	docs := []*xmltree.Tree{
		doc(t, "a(b(x),c)"), doc(t, "a(b)"), doc(t, "a(c(x))"), doc(t, "q(r)"),
		doc(t, "a(b(x,c),c(x))"), doc(t, "q(s(r))"),
	}
	collected := make(map[uint64][]Delivery)
	var live []uint64
	drain := func(id uint64) {
		ds, err := e.Drain(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		collected[id] = append(collected[id], ds...)
	}
	// Seed stream, then a fixed mixed script. Flush points make the
	// synopsis (and so every similarity decision) deterministic.
	for i := 0; i < 12; i++ {
		if _, err := e.Publish(docs[i%len(docs)]); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	for i := 0; i < 24; i++ {
		id, err := e.Subscribe(exprs[rng.Intn(len(exprs))])
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}
	for round := 0; round < 15; round++ {
		for i := 0; i < 6; i++ {
			if _, err := e.Publish(docs[rng.Intn(len(docs))]); err != nil {
				t.Fatal(err)
			}
		}
		e.Flush()
		// Churn: retire one subscription (collecting its deliveries
		// first) and admit a new one.
		k := rng.Intn(len(live))
		drain(live[k])
		if !e.Unsubscribe(live[k]) {
			t.Fatalf("unsubscribe %d failed", live[k])
		}
		live = append(live[:k], live[k+1:]...)
		id, err := e.Subscribe(exprs[rng.Intn(len(exprs))])
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}
	for _, id := range live {
		drain(id)
	}
	return collected
}

// TestShardPlacementKeepsCommunitiesTogether checks the tentpole's
// placement invariant directly: after arbitrary churn and a forced
// rebuild, every member of a community lives on the community's shard,
// and the per-shard live counts match the registry.
func TestShardPlacementKeepsCommunitiesTogether(t *testing.T) {
	e := newTestEngine(t, Config{
		Shards:    3,
		Estimator: core.Config{Representation: core.Sets, Seed: 3},
		Rebuild:   Staleness{MaxStale: 7},
	})
	for i := 0; i < 10; i++ {
		if _, err := e.Publish(doc(t, "a(b(x),c)")); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	var ids []uint64
	for i := 0; i < 30; i++ {
		id, err := e.Subscribe([]string{"/a/b", "/a/c", "//x", "//zzz" + fmt.Sprint(i%5)}[i%4])
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 10; i += 2 {
		e.Unsubscribe(ids[i])
	}
	e.Rebuild()

	e.mu.RLock()
	defer e.mu.RUnlock()
	if len(e.commShard) != len(e.comms.Groups) {
		t.Fatalf("commShard length %d != groups %d", len(e.commShard), len(e.comms.Groups))
	}
	wantLive := make([]int, len(e.shards))
	for g, members := range e.comms.Groups {
		si := e.commShard[g]
		wantLive[si] += len(members)
		for _, idx := range members {
			if e.subs[idx].shard != si {
				t.Fatalf("community %d on shard %d has member on shard %d", g, si, e.subs[idx].shard)
			}
		}
	}
	for si, want := range wantLive {
		if e.shardLive[si] != want {
			t.Fatalf("shardLive[%d] = %d, want %d", si, e.shardLive[si], want)
		}
	}
	// Each shard's routing table covers exactly its communities.
	total := 0
	for si, sh := range e.shards {
		for _, g := range sh.groups {
			if e.commShard[g.comm] != si {
				t.Fatalf("shard %d routes community %d pinned to shard %d", si, g.comm, e.commShard[g.comm])
			}
			total++
		}
	}
	if total != len(e.comms.Groups) {
		t.Fatalf("routing tables cover %d communities, want %d", total, len(e.comms.Groups))
	}
}

// TestPublishBatch covers the batched entry point: results align with
// the inputs, sequences are consecutive, deliveries match the
// per-document path, and the batch feeds the synopsis.
func TestPublishBatch(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 2})
	id, err := e.Subscribe("//b")
	if err != nil {
		t.Fatal(err)
	}
	batch := []*xmltree.Tree{doc(t, "a(b)"), doc(t, "zzz"), doc(t, "a(b(c))")}
	rs, err := e.PublishBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results, want 3", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Seq != rs[i-1].Seq+1 {
			t.Fatalf("non-consecutive batch seqs: %+v", rs)
		}
	}
	if rs[0].Deliveries != 1 || rs[1].Deliveries != 0 || rs[2].Deliveries != 1 {
		t.Fatalf("batch deliveries = %d/%d/%d, want 1/0/1", rs[0].Deliveries, rs[1].Deliveries, rs[2].Deliveries)
	}
	ds, err := e.Drain(id, 10, time.Second)
	if err != nil || len(ds) != 2 {
		t.Fatalf("Drain = %v, %v; want the 2 matching docs", ds, err)
	}
	if ds[0].Doc != rs[0].Seq || ds[1].Doc != rs[2].Seq {
		t.Fatalf("drained %v, want seqs %d and %d", ds, rs[0].Seq, rs[2].Seq)
	}
	e.Flush()
	if got := e.Stats().DocsObserved; got != 3 {
		t.Fatalf("DocsObserved = %d, want 3", got)
	}
	if rs, err := e.PublishBatch(nil); err != nil || len(rs) != 0 {
		t.Fatalf("empty batch = %v, %v", rs, err)
	}
	e.Close()
	if _, err := e.PublishBatch(batch); err != ErrClosed {
		t.Fatalf("PublishBatch after Close: %v, want ErrClosed", err)
	}
}
