package broker

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// counters are the engine's lock-free operational counters.
type counters struct {
	published      atomic.Uint64
	delivered      atomic.Uint64
	dropped        atomic.Uint64
	drained        atomic.Uint64
	filterEvals    atomic.Uint64
	subscribes     atomic.Uint64
	unsubscribes   atomic.Uint64
	rebuilds       atomic.Uint64
	ingestQueued   atomic.Uint64
	ingested       atomic.Uint64
	remoteInjected atomic.Uint64
	remoteShed     atomic.Uint64
	journalErrors  atomic.Uint64
	sampled        atomic.Uint64
	sampledHits    atomic.Uint64
}

// Stats is a point-in-time snapshot of the broker, the payload of the
// daemon's GET /stats endpoint.
type Stats struct {
	// Live is the number of live subscriptions; Communities and
	// Singletons describe the current clustering.
	Live        int `json:"live"`
	Communities int `json:"communities"`
	Singletons  int `json:"singletons"`
	// StaleOps counts registry mutations since the last full rebuild;
	// Rebuilds counts full re-clusterings.
	StaleOps int    `json:"stale_ops"`
	Rebuilds uint64 `json:"rebuilds"`

	// Shards is the engine's matching/delivery shard count and CPUs the
	// GOMAXPROCS it runs under — the parallelism context for every
	// throughput figure below (load generators carry both into their
	// benchmark reports).
	Shards int `json:"shards"`
	CPUs   int `json:"cpus"`

	Subscribes   uint64 `json:"subscribes"`
	Unsubscribes uint64 `json:"unsubscribes"`

	// Published counts routed documents (local publishes plus overlay
	// injections); RemoteInjected the subset that arrived from peer
	// brokers; RemoteShed the remote injections refused because the
	// ingest pipeline was full (the peer was told to back off);
	// DocsObserved how many the synopsis has ingested; IngestPending the
	// pipeline backlog.
	Published      uint64 `json:"published"`
	RemoteInjected uint64 `json:"remote_injected"`
	RemoteShed     uint64 `json:"remote_shed"`
	DocsObserved   int    `json:"docs_observed"`
	IngestPending  uint64 `json:"ingest_pending"`

	// JournalErrors counts write-ahead-log append failures (the
	// mutation still committed in memory; durability is degraded until
	// the next successful snapshot).
	JournalErrors uint64 `json:"journal_errors"`

	// FilterEvals counts representative match tests (the community
	// architecture's routing cost); Deliveries, Dropped and Drained
	// track the consumer queues.
	FilterEvals uint64 `json:"filter_evals"`
	Deliveries  uint64 `json:"deliveries"`
	Dropped     uint64 `json:"dropped"`
	Drained     uint64 `json:"drained"`

	// PrecisionProxy estimates delivery precision by exact-matching a
	// sample of deliveries against their subscriptions. Convention
	// (shared with routing.Result.Precision): with zero samples it is
	// vacuously 1.
	PrecisionProxy   float64 `json:"precision_proxy"`
	PrecisionSamples uint64  `json:"precision_samples"`

	// PublishP50/P99 are publish-path latency percentiles over the
	// recent-latency window.
	PublishP50 time.Duration `json:"publish_p50_ns"`
	PublishP99 time.Duration `json:"publish_p99_ns"`
}

// Stats snapshots the engine.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	live := len(e.subs)
	groups := len(e.comms.Groups)
	singles := 0
	for _, g := range e.comms.Groups {
		if len(g) == 1 {
			singles++
		}
	}
	stale := e.stale
	e.mu.RUnlock()

	c := &e.counters
	s := Stats{
		Live:             live,
		Communities:      groups,
		Singletons:       singles,
		StaleOps:         stale,
		Shards:           len(e.shards),
		CPUs:             runtime.GOMAXPROCS(0),
		Rebuilds:         c.rebuilds.Load(),
		Subscribes:       c.subscribes.Load(),
		Unsubscribes:     c.unsubscribes.Load(),
		Published:        c.published.Load(),
		RemoteInjected:   c.remoteInjected.Load(),
		RemoteShed:       c.remoteShed.Load(),
		JournalErrors:    c.journalErrors.Load(),
		DocsObserved:     e.est.DocsObserved(),
		FilterEvals:      c.filterEvals.Load(),
		Deliveries:       c.delivered.Load(),
		Dropped:          c.dropped.Load(),
		Drained:          c.drained.Load(),
		PrecisionSamples: c.sampled.Load(),
	}
	queued, ingested := c.ingestQueued.Load(), c.ingested.Load()
	if queued > ingested {
		s.IngestPending = queued - ingested
	}
	if s.PrecisionSamples == 0 {
		s.PrecisionProxy = 1 // vacuous, like routing.Result.Precision
	} else {
		s.PrecisionProxy = float64(c.sampledHits.Load()) / float64(s.PrecisionSamples)
	}
	s.PublishP50, s.PublishP99 = e.lat.percentiles()
	return s
}

// latencyStripe is one shard's ring of recent publish latencies.
// Writes take a short per-stripe mutex (a publish records one int64);
// striping keeps concurrent publishers on different shards from
// serializing on a single stats lock.
type latencyStripe struct {
	mu   sync.Mutex
	buf  []int64
	next int
	n    int
}

func (r *latencyStripe) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = int64(d)
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// appendSamples copies the stripe's current samples onto dst.
func (r *latencyStripe) appendSamples(dst []int64) []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append(dst, r.buf[:r.n]...)
}

// latencyReservoir is the sharded latency sample store: `stripes`
// independent rings whose total capacity is the configured window.
// Percentiles are computed by merging every stripe's samples into one
// pool and reading the quantiles off the sorted merge — NEVER by
// averaging per-stripe percentiles, which is statistically meaningless
// (the p99 of skewed stripes is dominated by the slowest stripe, and an
// average would dilute it).
type latencyReservoir struct {
	stripes []latencyStripe
	next    atomic.Uint64
}

func newLatencyReservoir(window, stripes int) *latencyReservoir {
	if stripes < 1 {
		stripes = 1
	}
	if stripes > window {
		stripes = window
	}
	per := (window + stripes - 1) / stripes
	r := &latencyReservoir{stripes: make([]latencyStripe, stripes)}
	for i := range r.stripes {
		r.stripes[i].buf = make([]int64, per)
	}
	return r
}

func (r *latencyReservoir) record(d time.Duration) {
	r.stripes[r.next.Add(1)%uint64(len(r.stripes))].record(d)
}

func (r *latencyReservoir) percentiles() (p50, p99 time.Duration) {
	var snap []int64
	for i := range r.stripes {
		snap = r.stripes[i].appendSamples(snap)
	}
	if len(snap) == 0 {
		return 0, 0
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	idx := func(q float64) int64 {
		i := int(q * float64(len(snap)-1))
		return snap[i]
	}
	return time.Duration(idx(0.50)), time.Duration(idx(0.99))
}
