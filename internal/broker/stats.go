package broker

import (
	"runtime"
	"time"

	"treesim/internal/telemetry"
)

// counters are the engine's lock-free operational counters — handles
// into the telemetry registry, so GET /stats and GET /metrics read the
// SAME underlying atomics rather than parallel bookkeeping paths. The
// metric names are part of the repo's stable observability surface
// (see README "Observability"); renaming one is a breaking change.
type counters struct {
	published      *telemetry.Counter
	delivered      *telemetry.Counter
	dropped        *telemetry.Counter
	drained        *telemetry.Counter
	filterEvals    *telemetry.Counter
	subscribes     *telemetry.Counter
	unsubscribes   *telemetry.Counter
	rebuilds       *telemetry.Counter
	ingestQueued   *telemetry.Counter
	ingested       *telemetry.Counter
	remoteInjected *telemetry.Counter
	remoteShed     *telemetry.Counter
	journalErrors  *telemetry.Counter
	sampled        *telemetry.Counter
	sampledHits    *telemetry.Counter
	acked          *telemetry.Counter
	redeliveries   *telemetry.Counter
	leaseExpiries  *telemetry.Counter
	ackShed        *telemetry.Counter
}

func newCounters(reg *telemetry.Registry) counters {
	return counters{
		published:      reg.Counter("treesim_broker_published_total", "Documents routed (local publishes plus overlay injections)."),
		delivered:      reg.Counter("treesim_broker_deliveries_total", "Deliveries enqueued onto consumer queues."),
		dropped:        reg.Counter("treesim_broker_dropped_total", "Deliveries evicted from full consumer queues (drop-oldest) or lost to closed queues."),
		drained:        reg.Counter("treesim_broker_drained_total", "Deliveries handed to consumers by Drain."),
		filterEvals:    reg.Counter("treesim_broker_filter_evals_total", "Community-representative match tests (the clustered routing cost)."),
		subscribes:     reg.Counter("treesim_broker_subscribes_total", "Committed subscriptions."),
		unsubscribes:   reg.Counter("treesim_broker_unsubscribes_total", "Committed unsubscriptions."),
		rebuilds:       reg.Counter("treesim_broker_rebuilds_total", "Full community re-clusterings."),
		ingestQueued:   reg.Counter("treesim_broker_ingest_queued_total", "Documents accepted into the synopsis ingest pipeline."),
		ingested:       reg.Counter("treesim_broker_ingested_total", "Documents the background ingester fed to the estimator."),
		remoteInjected: reg.Counter("treesim_broker_remote_injected_total", "Documents injected by peer brokers via the overlay."),
		remoteShed:     reg.Counter("treesim_broker_remote_shed_total", "Remote injections shed because the ingest pipeline was full."),
		journalErrors:  reg.Counter("treesim_broker_journal_errors_total", "WAL journal append failures (mutation committed in memory; durability degraded)."),
		sampled:        reg.Counter("treesim_broker_precision_samples_total", "Deliveries exact-matched for the precision proxy."),
		sampledHits:    reg.Counter("treesim_broker_precision_hits_total", "Precision samples whose subscription exactly matched."),
		acked:          reg.Counter("treesim_broker_acked_total", "At-least-once deliveries discharged by consumer acknowledgment."),
		redeliveries:   reg.Counter("treesim_broker_redeliveries_total", "At-least-once deliveries handed out more than once (lease lapse or crash recovery)."),
		leaseExpiries:  reg.Counter("treesim_broker_lease_expiries_total", "Consumer lease lapses returning in-flight deliveries to redeliverable."),
		ackShed:        reg.Counter("treesim_broker_ack_shed_total", "At-least-once deliveries shed by cursor-log capacity overflow (oldest first; counted loss)."),
	}
}

// registerGauges installs the scrape-time gauges that read engine
// state under its own locks (no second bookkeeping path).
func (e *Engine) registerGauges() {
	e.tel.GaugeFunc("treesim_broker_live_subscriptions", "Live subscriptions.", func() float64 {
		return float64(e.Live())
	})
	e.tel.GaugeFunc("treesim_broker_communities", "Current community count.", func() float64 {
		e.mu.RLock()
		defer e.mu.RUnlock()
		return float64(len(e.comms.Groups))
	})
	e.tel.GaugeFunc("treesim_broker_ingest_pending", "Synopsis ingest pipeline backlog.", func() float64 {
		return float64(e.ingestPending())
	})
	e.tel.GaugeFunc("treesim_broker_delivery_ring_occupancy", "Total deliveries waiting across consumer queues.", func() float64 {
		e.mu.RLock()
		defer e.mu.RUnlock()
		total := 0
		for _, s := range e.subs {
			total += s.q.len()
		}
		return float64(total)
	})
	e.tel.GaugeFunc("treesim_broker_pinned_docs", "Documents pinned in retention by unacked at-least-once deliveries.", func() float64 {
		return float64(e.docs.pinnedCount())
	})
	e.tel.GaugeFunc("treesim_broker_degraded", "1 after a journal append failure (durability lost, at-least-once subscribes refused), 0 while healthy.", func() float64 {
		if e.Degraded() {
			return 1
		}
		return 0
	})
}

func (e *Engine) ingestPending() uint64 {
	queued, ingested := e.counters.ingestQueued.Load(), e.counters.ingested.Load()
	if queued > ingested {
		return queued - ingested
	}
	return 0
}

// Stats is a point-in-time snapshot of the broker, the payload of the
// daemon's GET /stats endpoint.
type Stats struct {
	// Live is the number of live subscriptions; Communities and
	// Singletons describe the current clustering.
	Live        int `json:"live"`
	Communities int `json:"communities"`
	Singletons  int `json:"singletons"`
	// StaleOps counts registry mutations since the last full rebuild;
	// Rebuilds counts full re-clusterings.
	StaleOps int    `json:"stale_ops"`
	Rebuilds uint64 `json:"rebuilds"`

	// Shards is the engine's matching/delivery shard count and CPUs the
	// GOMAXPROCS it runs under — the parallelism context for every
	// throughput figure below (load generators carry both into their
	// benchmark reports).
	Shards int `json:"shards"`
	CPUs   int `json:"cpus"`

	Subscribes   uint64 `json:"subscribes"`
	Unsubscribes uint64 `json:"unsubscribes"`

	// Published counts routed documents (local publishes plus overlay
	// injections); RemoteInjected the subset that arrived from peer
	// brokers; RemoteShed the remote injections refused because the
	// ingest pipeline was full (the peer was told to back off);
	// DocsObserved how many the synopsis has ingested; IngestPending the
	// pipeline backlog.
	Published      uint64 `json:"published"`
	RemoteInjected uint64 `json:"remote_injected"`
	RemoteShed     uint64 `json:"remote_shed"`
	DocsObserved   int    `json:"docs_observed"`
	IngestPending  uint64 `json:"ingest_pending"`

	// JournalErrors counts write-ahead-log append failures (the
	// mutation still committed in memory). Degraded is the fail-stop
	// latch those failures set: once true the engine keeps routing but
	// refuses new at-least-once subscriptions and stops promising
	// durability (the store underneath never recovers in-process).
	JournalErrors uint64 `json:"journal_errors"`
	Degraded      bool   `json:"degraded"`

	// FilterEvals counts representative match tests (the community
	// architecture's routing cost); Deliveries, Dropped and Drained
	// track the consumer queues.
	FilterEvals uint64 `json:"filter_evals"`
	Deliveries  uint64 `json:"deliveries"`
	Dropped     uint64 `json:"dropped"`
	Drained     uint64 `json:"drained"`

	// The at-least-once ledger: Acked deliveries discharged by consumer
	// acknowledgment, Redeliveries hand-outs of an already-handed-out
	// delivery, LeaseExpiries in-flight windows reclaimed from lapsed
	// consumers, AckShed cursor-log overflow evictions (counted loss),
	// and PinnedDocs documents held in retention by unacked deliveries.
	Acked         uint64 `json:"acked"`
	Redeliveries  uint64 `json:"redeliveries"`
	LeaseExpiries uint64 `json:"lease_expiries"`
	AckShed       uint64 `json:"ack_shed"`
	PinnedDocs    int    `json:"pinned_docs"`

	// PrecisionProxy estimates delivery precision by exact-matching a
	// sample of deliveries against their subscriptions. Convention
	// (shared with routing.Result.Precision): with zero samples it is
	// vacuously 1.
	PrecisionProxy   float64 `json:"precision_proxy"`
	PrecisionSamples uint64  `json:"precision_samples"`

	// PublishP50/P99 are publish-path latency percentiles estimated
	// from the treesim_broker_publish_ns histogram (exact to within one
	// bucket's width, over the engine's whole lifetime).
	PublishP50 time.Duration `json:"publish_p50_ns"`
	PublishP99 time.Duration `json:"publish_p99_ns"`
}

// Stats snapshots the engine. Every counter is read from the same
// telemetry registry handle GET /metrics scrapes.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	live := len(e.subs)
	groups := len(e.comms.Groups)
	singles := 0
	for _, g := range e.comms.Groups {
		if len(g) == 1 {
			singles++
		}
	}
	stale := e.stale
	e.mu.RUnlock()

	c := &e.counters
	s := Stats{
		Live:             live,
		Communities:      groups,
		Singletons:       singles,
		StaleOps:         stale,
		Shards:           len(e.shards),
		CPUs:             runtime.GOMAXPROCS(0),
		Rebuilds:         c.rebuilds.Load(),
		Subscribes:       c.subscribes.Load(),
		Unsubscribes:     c.unsubscribes.Load(),
		Published:        c.published.Load(),
		RemoteInjected:   c.remoteInjected.Load(),
		RemoteShed:       c.remoteShed.Load(),
		JournalErrors:    c.journalErrors.Load(),
		Degraded:         e.Degraded(),
		DocsObserved:     e.est.DocsObserved(),
		FilterEvals:      c.filterEvals.Load(),
		Deliveries:       c.delivered.Load(),
		Dropped:          c.dropped.Load(),
		Drained:          c.drained.Load(),
		PrecisionSamples: c.sampled.Load(),
		IngestPending:    e.ingestPending(),
		Acked:            c.acked.Load(),
		Redeliveries:     c.redeliveries.Load(),
		LeaseExpiries:    c.leaseExpiries.Load(),
		AckShed:          c.ackShed.Load(),
		PinnedDocs:       e.docs.pinnedCount(),
	}
	if s.PrecisionSamples == 0 {
		s.PrecisionProxy = 1 // vacuous, like routing.Result.Precision
	} else {
		s.PrecisionProxy = float64(c.sampledHits.Load()) / float64(s.PrecisionSamples)
	}
	snap := e.pubLat.Snapshot()
	s.PublishP50 = time.Duration(snap.Quantile(0.50))
	s.PublishP99 = time.Duration(snap.Quantile(0.99))
	return s
}
