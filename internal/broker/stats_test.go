package broker

import (
	"testing"
	"time"
)

// TestLatencyReservoirMergedPercentiles pins the sharded reservoir's
// quantile semantics: per-stripe samples are merged into one pool and
// the quantiles read off the sorted merge. The skewed cases would give
// different (wrong) answers if stripes were summarized first and their
// percentiles averaged — the canonical sharding mistake this test
// guards against.
func TestLatencyReservoirMergedPercentiles(t *testing.T) {
	cases := []struct {
		name     string
		window   int
		stripes  int
		samples  []int64 // recorded round-robin across stripes
		p50, p99 int64
	}{
		// Quantile convention is the floor index q·(n-1) of the sorted
		// merged pool (matching the pre-sharding ring).
		{"single stripe", 8, 1, []int64{10, 20, 30, 40}, 20, 30},
		{"uniform across stripes", 8, 2, []int64{10, 20, 30, 40}, 20, 30},
		// Stripe 0 gets {1,3}, stripe 1 gets {1000, 2000}. Averaging
		// per-stripe p50s would give (1+1000)/2 ≈ 500 — nowhere in the
		// data; the merged pool {1,3,1000,2000} has p50 = 3.
		{"skewed stripes", 8, 2, []int64{1, 1000, 3, 2000}, 3, 1000},
		// One hot stripe holds the entire tail: merged p99 must surface
		// it even though 3 of 4 stripes never saw a slow publish
		// (averaging per-stripe p99s would report ≈ 2380, not 9500).
		{"tail in one stripe", 16, 4,
			[]int64{5, 5, 5, 9000, 5, 5, 5, 9500, 5, 5, 5, 9900}, 5, 9500},
		{"empty", 8, 4, nil, 0, 0},
		// More stripes than window: stripes clamp, recording still works.
		{"stripes clamp to window", 2, 8, []int64{7, 9}, 7, 7},
	}
	for _, c := range cases {
		r := newLatencyReservoir(c.window, c.stripes)
		for _, s := range c.samples {
			r.record(time.Duration(s))
		}
		p50, p99 := r.percentiles()
		if int64(p50) != c.p50 || int64(p99) != c.p99 {
			t.Errorf("%s: percentiles = (%d, %d), want (%d, %d)",
				c.name, int64(p50), int64(p99), c.p50, c.p99)
		}
	}
}

// TestLatencyReservoirWindowEviction checks that each stripe is a ring:
// old samples age out once the total window has wrapped.
func TestLatencyReservoirWindowEviction(t *testing.T) {
	r := newLatencyReservoir(4, 2)
	for i := 0; i < 4; i++ {
		r.record(time.Duration(1_000_000)) // old regime
	}
	for i := 0; i < 4; i++ {
		r.record(time.Duration(10)) // new regime fills the whole window
	}
	p50, p99 := r.percentiles()
	if int64(p50) != 10 || int64(p99) != 10 {
		t.Fatalf("percentiles after wrap = (%d, %d), want (10, 10)", int64(p50), int64(p99))
	}
}
