package broker

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"treesim/internal/telemetry"
)

// exactPercentiles is the reference the old latency reservoir computed:
// quantiles read off the sorted merged sample pool, NEVER averaged
// across shards. It returns the order statistics under both common
// rank conventions — floor-index q·(n-1) (the reservoir's) and
// nearest-rank ⌈q·n⌉ (the histogram's); at small n they differ by one
// sample, so the agreement tolerance must span both.
func exactPercentiles(samples []int64, q float64) (lo, hi int64) {
	if len(samples) == 0 {
		return 0, 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	lo = s[int(q*float64(len(s)-1))]
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	hi = s[rank-1]
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo, hi
}

// bucketEdges returns the (lower, upper] bucket interval holding v —
// the histogram's inherent resolution, and therefore the agreement
// tolerance between registry-derived stats and the exact reference.
func bucketEdges(bounds []float64, v float64) (float64, float64) {
	lower := 0.0
	for _, b := range bounds {
		if v <= b {
			return lower, b
		}
		lower = b
	}
	return lower, bounds[len(bounds)-1]
}

// TestStatsPercentilesMatchReservoirReference is the differential test
// for the reservoir→histogram migration: Stats().PublishP50/P99, now
// estimated from the treesim_broker_publish_ns histogram, must agree
// with the old merged-reservoir quantiles to within one bucket's
// width on the same sample stream — including the skewed shapes that
// made the reservoir's merge-don't-average rule matter.
func TestStatsPercentilesMatchReservoirReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cases := map[string][]int64{
		"uniform":          {10_000, 20_000, 30_000, 40_000},
		"tail in one spot": {5_000, 5_000, 5_000, 9_000_000, 5_000, 5_000, 5_000, 9_500_000, 5_000, 5_000, 5_000, 9_900_000},
	}
	spread := make([]int64, 5000)
	for i := range spread {
		spread[i] = int64(30_000 * (0.5 + rng.Float64()*20))
	}
	cases["lognormal-ish"] = spread

	bounds := telemetry.DefaultLatencyBuckets()
	for name, samples := range cases {
		e := New(Config{Shards: 2})
		for _, ns := range samples {
			e.pubLat.ObserveDuration(ns)
		}
		st := e.Stats()
		e.Close()
		for _, c := range []struct {
			got time.Duration
			q   float64
			tag string
		}{{st.PublishP50, 0.50, "p50"}, {st.PublishP99, 0.99, "p99"}} {
			refLo, refHi := exactPercentiles(samples, c.q)
			lo, _ := bucketEdges(bounds, float64(refLo))
			_, hi := bucketEdges(bounds, float64(refHi))
			if float64(c.got) < lo || float64(c.got) > hi {
				t.Errorf("%s: %s = %d outside reference buckets (%g, %g] around exact [%d, %d]",
					name, c.tag, c.got, lo, hi, refLo, refHi)
			}
		}
	}
}

// TestEngineMetricsExposition checks that a working engine's registry
// renders parseable Prometheus text covering the broker families that
// /stats reports, with matching values.
func TestEngineMetricsExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(Config{Shards: 2, Telemetry: reg})
	defer e.Close()
	id, err := e.Subscribe("//a/b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.PublishXML(strings.NewReader("<a><b/></a>")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Drain(id, 100, 0); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
	sums := telemetry.SumByName(samples)
	st := e.Stats()
	checks := map[string]float64{
		"treesim_broker_published_total":         float64(st.Published),
		"treesim_broker_deliveries_total":        float64(st.Deliveries),
		"treesim_broker_drained_total":           float64(st.Drained),
		"treesim_broker_subscribes_total":        float64(st.Subscribes),
		"treesim_broker_filter_evals_total":      float64(st.FilterEvals),
		"treesim_broker_live_subscriptions":      float64(st.Live),
		"treesim_broker_communities":             float64(st.Communities),
		"treesim_broker_publish_ns_count":        float64(st.Published),
		"treesim_broker_shard_match_ns_count":    0, // present; value checked below
		"treesim_broker_delivery_ring_occupancy": 0,
	}
	for name := range checks {
		if _, ok := sums[name]; !ok {
			t.Errorf("family %s missing from exposition", name)
		}
	}
	for _, name := range []string{
		"treesim_broker_published_total", "treesim_broker_deliveries_total",
		"treesim_broker_drained_total", "treesim_broker_subscribes_total",
		"treesim_broker_filter_evals_total", "treesim_broker_live_subscriptions",
		"treesim_broker_communities", "treesim_broker_publish_ns_count",
	} {
		if got, want := sums[name], checks[name]; got != want {
			t.Errorf("%s = %g, /stats says %g", name, got, want)
		}
	}
	// The shard match histogram carries per-shard labels and its total
	// count matches publishes times populated shards (1 populated here).
	if got := sums["treesim_broker_shard_match_ns_count"]; got != float64(st.Published) {
		t.Errorf("shard match count = %g, want %g", got, float64(st.Published))
	}
}
