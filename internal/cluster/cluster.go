// Package cluster groups subscriptions into semantic communities from a
// pairwise similarity matrix. This is the consumer of the paper's
// similarity metrics: content-based routing systems cluster consumers
// whose subscriptions are likely to match the same documents and
// disseminate within a community without per-member filtering (paper,
// Sections 1 and 7; Chand & Felber, Euro-Par'05).
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
)

// Greedy builds communities by repeatedly seeding with the unassigned
// item that has the most unassigned neighbors at or above the threshold,
// then absorbing all such neighbors. Communities are returned as index
// sets, largest first; members are sorted. Every item lands in exactly
// one community (possibly a singleton).
func Greedy(sim [][]float64, threshold float64) [][]int {
	out, _ := GreedySeeded(sim, threshold)
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) > len(out[j]) })
	return out
}

// KMedoids partitions items into k communities by a seeded PAM-style
// iteration over the dissimilarity 1−sim. It returns the index sets,
// largest first. k is clamped to [1, n].
func KMedoids(sim [][]float64, k int, seed int64) [][]int {
	n := len(sim)
	if n == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	// Initialize medoids with distinct random items.
	perm := rng.Perm(n)
	medoids := append([]int{}, perm[:k]...)
	assign := make([]int, n)
	for iter := 0; iter < 50; iter++ {
		// Assign each item to the nearest medoid.
		for i := 0; i < n; i++ {
			best, bestD := 0, 2.0
			for mi, m := range medoids {
				if d := 1 - sim[i][m]; d < bestD {
					best, bestD = mi, d
				}
			}
			assign[i] = best
		}
		// Update each medoid to the member minimizing intra-cluster
		// dissimilarity.
		changed := false
		for mi := range medoids {
			var members []int
			for i := 0; i < n; i++ {
				if assign[i] == mi {
					members = append(members, i)
				}
			}
			if len(members) == 0 {
				continue
			}
			best, bestCost := medoids[mi], costOf(sim, medoids[mi], members)
			for _, cand := range members {
				if c := costOf(sim, cand, members); c < bestCost {
					best, bestCost = cand, c
				}
			}
			if best != medoids[mi] {
				medoids[mi] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	groups := make([][]int, k)
	for i := 0; i < n; i++ {
		groups[assign[i]] = append(groups[assign[i]], i)
	}
	var out [][]int
	for _, g := range groups {
		if len(g) > 0 {
			sort.Ints(g)
			out = append(out, g)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) > len(out[j]) })
	return out
}

func costOf(sim [][]float64, medoid int, members []int) float64 {
	c := 0.0
	for _, i := range members {
		c += 1 - sim[i][medoid]
	}
	return c
}

// Quality summarizes how semantically tight a clustering is.
type Quality struct {
	// IntraSim is the mean pairwise similarity within communities
	// (singletons excluded).
	IntraSim float64
	// InterSim is the mean pairwise similarity across communities.
	InterSim float64
	// Communities and Singletons count the groups.
	Communities int
	Singletons  int
}

// Evaluate computes clustering quality from the similarity matrix.
func Evaluate(sim [][]float64, communities [][]int) Quality {
	q := Quality{Communities: len(communities)}
	comm := make([]int, len(sim))
	for ci, c := range communities {
		if len(c) == 1 {
			q.Singletons++
		}
		for _, i := range c {
			comm[i] = ci
		}
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := range sim {
		for j := i + 1; j < len(sim); j++ {
			if comm[i] == comm[j] {
				intra += sim[i][j]
				nIntra++
			} else {
				inter += sim[i][j]
				nInter++
			}
		}
	}
	if nIntra > 0 {
		q.IntraSim = intra / float64(nIntra)
	}
	if nInter > 0 {
		q.InterSim = inter / float64(nInter)
	}
	return q
}

func (q Quality) String() string {
	return fmt.Sprintf("communities=%d singletons=%d intra=%.3f inter=%.3f",
		q.Communities, q.Singletons, q.IntraSim, q.InterSim)
}
