package cluster

import (
	"reflect"
	"sort"
	"testing"
)

// blockMatrix builds a similarity matrix with two tight blocks
// {0,1,2} and {3,4} plus an outlier 5.
func blockMatrix() [][]float64 {
	n := 6
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		sim[i][i] = 1
	}
	set := func(i, j int, v float64) { sim[i][j], sim[j][i] = v, v }
	set(0, 1, 0.9)
	set(0, 2, 0.8)
	set(1, 2, 0.85)
	set(3, 4, 0.95)
	set(0, 3, 0.1)
	set(1, 4, 0.05)
	return sim
}

func TestGreedyBlocks(t *testing.T) {
	got := Greedy(blockMatrix(), 0.5)
	want := [][]int{{0, 1, 2}, {3, 4}, {5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Greedy = %v, want %v", got, want)
	}
}

func TestGreedyCoversAllExactlyOnce(t *testing.T) {
	sim := blockMatrix()
	comms := Greedy(sim, 0.5)
	seen := make(map[int]int)
	for _, c := range comms {
		for _, i := range c {
			seen[i]++
		}
	}
	if len(seen) != len(sim) {
		t.Fatalf("covered %d of %d items", len(seen), len(sim))
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("item %d appears %d times", i, c)
		}
	}
}

func TestGreedyThresholdExtremes(t *testing.T) {
	sim := blockMatrix()
	// Threshold 0: everything joins the first seed's community.
	all := Greedy(sim, 0)
	if len(all) != 1 || len(all[0]) != 6 {
		t.Errorf("threshold 0: %v", all)
	}
	// Threshold above 1: all singletons.
	solo := Greedy(sim, 1.01)
	if len(solo) != 6 {
		t.Errorf("threshold 1.01: %v", solo)
	}
}

func TestGreedyEmpty(t *testing.T) {
	if got := Greedy(nil, 0.5); len(got) != 0 {
		t.Errorf("Greedy(nil) = %v", got)
	}
}

func TestKMedoidsBlocks(t *testing.T) {
	got := KMedoids(blockMatrix(), 2, 1)
	if len(got) != 2 {
		t.Fatalf("KMedoids returned %d clusters, want 2", len(got))
	}
	// The large block must land together.
	var big []int
	for _, c := range got {
		if len(c) >= 3 {
			big = c
		}
	}
	sort.Ints(big)
	hasAll := func(c []int, want ...int) bool {
		m := make(map[int]bool)
		for _, i := range c {
			m[i] = true
		}
		for _, w := range want {
			if !m[w] {
				return false
			}
		}
		return true
	}
	if big == nil || !hasAll(big, 0, 1, 2) {
		t.Errorf("KMedoids split the tight block: %v", got)
	}
}

func TestKMedoidsClamping(t *testing.T) {
	sim := blockMatrix()
	if got := KMedoids(sim, 100, 1); len(got) > len(sim) {
		t.Errorf("k > n produced %d clusters", len(got))
	}
	if got := KMedoids(sim, 0, 1); len(got) != 1 {
		t.Errorf("k=0 should clamp to 1, got %d clusters", len(got))
	}
	if got := KMedoids(nil, 3, 1); got != nil {
		t.Errorf("empty input should return nil, got %v", got)
	}
}

func TestEvaluate(t *testing.T) {
	sim := blockMatrix()
	comms := Greedy(sim, 0.5)
	q := Evaluate(sim, comms)
	if q.Communities != 3 || q.Singletons != 1 {
		t.Errorf("Quality = %+v", q)
	}
	if q.IntraSim <= q.InterSim {
		t.Errorf("intra %v should exceed inter %v for a good clustering", q.IntraSim, q.InterSim)
	}
	if q.String() == "" {
		t.Error("empty Quality string")
	}
}
