// Representative-pattern extraction for a community: when a broker
// advertises a community to its overlay peers it must not ship the raw
// member list, but it also cannot ship only the greedy seed — the seed
// is the similarity center, not a logical superset, and routing on it
// would lose deliveries. The sound aggregate is a covering subset: the
// members whose patterns jointly contain every other member. Cover
// extracts one; the caller supplies containment (pattern.Contains for
// tree patterns), keeping this package free of pattern semantics.
package cluster

// Cover returns a subset K of items such that every item is covered by
// some element of K, minimal by inclusion under the given predicate:
// no element of K is covered by another. contains(a, b) must report
// whether item a covers item b (for subscription aggregation: every
// document matching b also matches a); it must be reflexive, and a
// sound-but-incomplete predicate (like pattern.Contains on patterns
// mixing //, * and branching) only enlarges the result, never breaks
// the covering property. Items are processed in order and the result
// preserves first occurrences, so the output is deterministic. With
// mutually-covering items (equivalent patterns) the earliest wins.
func Cover(items []int, contains func(a, b int) bool) []int {
	kept := make([]int, 0, len(items))
next:
	for _, it := range items {
		for _, k := range kept {
			if contains(k, it) {
				continue next
			}
		}
		// it survives; evict kept items it covers. Items skipped earlier
		// because an evicted k covered them stay covered: containment is
		// transitive, so it ⊇ k ⊇ skipped (even where the incomplete
		// predicate would not certify the composite directly).
		out := kept[:0]
		for _, k := range kept {
			if !contains(it, k) {
				out = append(out, k)
			}
		}
		kept = append(out, it)
	}
	return kept
}
