package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

// divides treats item a as covering item b when b is a multiple of a —
// a transitive, reflexive relation with plenty of incomparable pairs.
func divides(vals []int) func(a, b int) bool {
	return func(a, b int) bool { return vals[b]%vals[a] == 0 }
}

func TestCoverBasics(t *testing.T) {
	vals := []int{6, 2, 3, 12, 5}
	items := []int{0, 1, 2, 3, 4}
	got := Cover(items, divides(vals))
	// 2 evicts 6 and 12, 3 evicts nothing further (6 already gone but 3
	// is not covered by 2), 5 incomparable.
	want := []int{1, 2, 4} // values 2, 3, 5
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Cover = %v, want %v", got, want)
	}
}

func TestCoverEquivalentItemsKeepFirst(t *testing.T) {
	vals := []int{4, 4, 4}
	got := Cover([]int{0, 1, 2}, divides(vals))
	if !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Cover over equivalent items = %v, want [0]", got)
	}
}

func TestCoverEmpty(t *testing.T) {
	if got := Cover(nil, func(a, b int) bool { return true }); len(got) != 0 {
		t.Fatalf("Cover(nil) = %v", got)
	}
}

// TestCoverProperty checks, on random divisibility instances, that the
// result covers every input and contains no internally-covered element.
func TestCoverProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		vals := make([]int, n)
		items := make([]int, n)
		for i := range vals {
			vals[i] = 1 + rng.Intn(60)
			items[i] = i
		}
		contains := divides(vals)
		kept := Cover(items, contains)
		for _, it := range items {
			covered := false
			for _, k := range kept {
				if contains(k, it) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("trial %d: item %d (val %d) uncovered by %v (vals %v)", trial, it, vals[it], kept, vals)
			}
		}
		for i, a := range kept {
			for j, b := range kept {
				if i != j && contains(a, b) && vals[a] != vals[b] {
					t.Fatalf("trial %d: kept %d strictly covers kept %d (vals %v)", trial, a, b, vals)
				}
			}
		}
	}
}
