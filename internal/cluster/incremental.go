// Incremental community maintenance: a live broker cannot afford a
// global re-clustering on every subscription change, so communities are
// kept as an explicit structure that supports placing a new item into
// the best existing community (Assign) and deleting an item (Remove)
// in O(n) without touching the similarity matrix of the survivors. A
// full rebuild (BuildGreedy) remains the periodic ground truth; the
// broker's rebuild policy decides when staleness has accumulated enough
// to pay for one.
package cluster

import (
	"fmt"
	"sort"
)

// Communities is a maintained clustering over items 0..n-1. Groups are
// index sets (each sorted ascending); Reps holds the representative
// (seed) of each group — the member whose subscription stands for the
// group when a router tests a document against the community.
//
// The zero value with a Threshold is an empty clustering ready for
// Assign. Communities is not safe for concurrent use; callers
// serialize externally (the broker holds its registry lock).
type Communities struct {
	// Threshold is the minimum similarity to a group's representative
	// for membership.
	Threshold float64
	// Groups are the member index sets, one per community.
	Groups [][]int
	// Reps[g] is the representative item of Groups[g], always a member.
	Reps []int

	n int // number of items clustered
}

// BuildGreedy clusters all n items with the seeded greedy algorithm and
// returns the result as a maintainable Communities value whose
// representatives are the greedy seeds.
func BuildGreedy(sim [][]float64, threshold float64) *Communities {
	groups, seeds := GreedySeeded(sim, threshold)
	return &Communities{Threshold: threshold, Groups: groups, Reps: seeds, n: len(sim)}
}

// Len returns the number of items currently clustered.
func (c *Communities) Len() int { return c.n }

// Assign places a new item (index c.Len()) given its similarity column
// against the existing items: row[i] = sim(i, new), the direction
// greedy absorption tests (sim[seed][candidate]; the distinction
// matters for asymmetric metrics like M1). The item joins the group
// whose representative-to-item similarity is highest, provided it
// reaches the threshold — the same membership criterion greedy
// absorption uses — breaking ties toward the earlier group. Otherwise
// it founds a new singleton group (and becomes its representative).
// Returns the group index the item landed in.
func (c *Communities) Assign(row []float64) int {
	idx := c.n
	c.n++
	best, bestSim := -1, 0.0
	for g, rep := range c.Reps {
		if s := row[rep]; s >= c.Threshold && (best == -1 || s > bestSim) {
			best, bestSim = g, s
		}
	}
	if best == -1 {
		c.Groups = append(c.Groups, []int{idx})
		c.Reps = append(c.Reps, idx)
		return len(c.Groups) - 1
	}
	// idx is the largest index so far; appending keeps the group sorted.
	c.Groups[best] = append(c.Groups[best], idx)
	return best
}

// PlaceAt inserts the next item (index c.Len()) into group g, or
// founds a new singleton group (with the item as representative) when
// g == len(c.Groups). It is the deterministic-replay counterpart of
// Assign: a broker journals the group Assign chose and recovery applies
// that recorded decision instead of re-deriving it from similarities,
// which may have drifted since the snapshot.
func (c *Communities) PlaceAt(g int) error {
	if g < 0 || g > len(c.Groups) {
		return fmt.Errorf("cluster: place at group %d with %d groups", g, len(c.Groups))
	}
	idx := c.n
	c.n++
	if g == len(c.Groups) {
		c.Groups = append(c.Groups, []int{idx})
		c.Reps = append(c.Reps, idx)
		return nil
	}
	// idx is the largest index so far; appending keeps the group sorted.
	c.Groups[g] = append(c.Groups[g], idx)
	return nil
}

// FromGroups reconstructs a maintained clustering from explicit member
// sets and representatives — the restore path for a persisted
// clustering. It validates the partition (every index 0..n-1 appears
// exactly once, each representative is a member of its group) and sorts
// each group's members.
func FromGroups(threshold float64, groups [][]int, reps []int) (*Communities, error) {
	if len(groups) != len(reps) {
		return nil, fmt.Errorf("cluster: %d groups but %d representatives", len(groups), len(reps))
	}
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	seen := make([]bool, n)
	c := &Communities{Threshold: threshold, n: n}
	for gi, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("cluster: group %d is empty", gi)
		}
		members := make([]int, len(g))
		copy(members, g)
		sort.Ints(members)
		repOK := false
		for _, m := range members {
			if m < 0 || m >= n {
				return nil, fmt.Errorf("cluster: group %d member %d outside [0,%d)", gi, m, n)
			}
			if seen[m] {
				return nil, fmt.Errorf("cluster: item %d in more than one group", m)
			}
			seen[m] = true
			if m == reps[gi] {
				repOK = true
			}
		}
		if !repOK {
			return nil, fmt.Errorf("cluster: representative %d not a member of group %d", reps[gi], gi)
		}
		c.Groups = append(c.Groups, members)
		c.Reps = append(c.Reps, reps[gi])
	}
	return c, nil
}

// Remove deletes item idx from the clustering. Remaining items with a
// larger index are renumbered down by one, mirroring deletion from the
// broker's dense subscription slice. If the removed item was a group's
// representative, the smallest surviving member is promoted; an emptied
// group disappears.
func (c *Communities) Remove(idx int) {
	g := c.Find(idx)
	if g < 0 {
		return
	}
	members := c.Groups[g]
	pos := sort.SearchInts(members, idx)
	members = append(members[:pos], members[pos+1:]...)
	if len(members) == 0 {
		c.Groups = append(c.Groups[:g], c.Groups[g+1:]...)
		c.Reps = append(c.Reps[:g], c.Reps[g+1:]...)
	} else {
		c.Groups[g] = members
		if c.Reps[g] == idx {
			c.Reps[g] = members[0]
		}
	}
	for _, grp := range c.Groups {
		for i, m := range grp {
			if m > idx {
				grp[i] = m - 1
			}
		}
	}
	for i, r := range c.Reps {
		if r > idx {
			c.Reps[i] = r - 1
		}
	}
	c.n--
}

// Find returns the index of the group containing item idx, or -1.
func (c *Communities) Find(idx int) int {
	for g, members := range c.Groups {
		pos := sort.SearchInts(members, idx)
		if pos < len(members) && members[pos] == idx {
			return g
		}
	}
	return -1
}

// Sorted returns the groups ordered largest-first (ties by first
// member), the ordering Greedy reports — handy for display and for
// comparing against a batch clustering.
func (c *Communities) Sorted() [][]int {
	out := make([][]int, len(c.Groups))
	copy(out, c.Groups)
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) > len(out[j]) })
	return out
}

// GreedySeeded is Greedy exposing each community's seed: the item that
// was picked as the absorption center, which incremental maintenance
// and community-based routing use as the group representative. Unlike
// Greedy it does not reorder communities by size: community g was
// seeded before community g+1, the invariant the incremental replay of
// Assign relies on.
func GreedySeeded(sim [][]float64, threshold float64) (groups [][]int, seeds []int) {
	n := len(sim)
	assigned := make([]bool, n)
	for remaining := n; remaining > 0; {
		seed, bestDeg := -1, -1
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			deg := 0
			for j := 0; j < n; j++ {
				if i != j && !assigned[j] && sim[i][j] >= threshold {
					deg++
				}
			}
			if deg > bestDeg {
				seed, bestDeg = i, deg
			}
		}
		comm := []int{seed}
		assigned[seed] = true
		for j := 0; j < n; j++ {
			if !assigned[j] && sim[seed][j] >= threshold {
				comm = append(comm, j)
				assigned[j] = true
			}
		}
		sort.Ints(comm)
		groups = append(groups, comm)
		seeds = append(seeds, seed)
		remaining -= len(comm)
	}
	return groups, seeds
}
