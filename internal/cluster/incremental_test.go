package cluster

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randomSim returns a random similarity matrix with unit diagonal —
// symmetric (M2/M3-like) or asymmetric (M1-like).
func randomSim(n int, rng *rand.Rand, symmetric bool) [][]float64 {
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		sim[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sim[i][j] = rng.Float64()
			if symmetric {
				sim[j][i] = sim[i][j]
			} else {
				sim[j][i] = rng.Float64()
			}
		}
	}
	return sim
}

// canonical renders a partition as a sorted set of sorted member sets so
// two clusterings compare independent of group order.
func canonical(groups [][]int) [][]int {
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		cp := append([]int{}, g...)
		sort.Ints(cp)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// TestAssignReplaysGreedy: feeding the items of a greedy clustering to
// Assign in seed-first community order reproduces the greedy partition
// exactly. This is the no-churn agreement guarantee: every greedy
// member has ≥-threshold similarity to its seed, and sub-threshold
// similarity to every earlier seed (otherwise that seed would have
// absorbed it), so the incremental placement rule makes the same
// choice greedy absorption made.
func TestAssignReplaysGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		// Odd trials use asymmetric matrices (M1-like): the agreement
		// must hold as long as Assign is fed the greedy direction
		// sim[existing][new].
		sim := randomSim(n, rng, trial%2 == 0)
		threshold := rng.Float64()

		groups, seeds := GreedySeeded(sim, threshold)

		// Replay order: per community, seed first, then the remaining
		// members. perm[k] is the original index of the k-th item fed in.
		var perm []int
		for g, members := range groups {
			perm = append(perm, seeds[g])
			for _, m := range members {
				if m != seeds[g] {
					perm = append(perm, m)
				}
			}
		}

		inc := &Communities{Threshold: threshold}
		for k, orig := range perm {
			// row[j] = sim[existing][new]: the orientation Assign is
			// specified to consume.
			row := make([]float64, k)
			for j := 0; j < k; j++ {
				row[j] = sim[perm[j]][orig]
			}
			inc.Assign(row)
		}

		// Map incremental indices (replay positions) back to original
		// item indices before comparing.
		mapped := make([][]int, len(inc.Groups))
		for g, members := range inc.Groups {
			for _, m := range members {
				mapped[g] = append(mapped[g], perm[m])
			}
		}
		if got, want := canonical(mapped), canonical(groups); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d, threshold=%.3f): replayed partition %v != greedy %v",
				trial, n, threshold, got, want)
		}
		// The incremental representatives must be the greedy seeds.
		for g := range inc.Groups {
			if perm[inc.Reps[g]] != seeds[g] {
				t.Fatalf("trial %d: group %d rep %d != seed %d", trial, g, perm[inc.Reps[g]], seeds[g])
			}
		}
	}
}

// TestGreedyMatchesSeeded: the public Greedy is GreedySeeded reordered
// by size, nothing more.
func TestGreedyMatchesSeeded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sim := randomSim(25, rng, true)
	g1 := Greedy(sim, 0.6)
	g2, seeds := GreedySeeded(sim, 0.6)
	if !reflect.DeepEqual(canonical(g1), canonical(g2)) {
		t.Fatalf("Greedy %v and GreedySeeded %v disagree", g1, g2)
	}
	for g, members := range g2 {
		found := false
		for _, m := range members {
			if m == seeds[g] {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d not a member of its group %v", seeds[g], members)
		}
	}
}

func TestAssignBelowThresholdFoundsSingleton(t *testing.T) {
	c := &Communities{Threshold: 0.5}
	if g := c.Assign(nil); g != 0 {
		t.Fatalf("first item landed in group %d, want 0", g)
	}
	if g := c.Assign([]float64{0.2}); g != 1 {
		t.Fatalf("dissimilar item landed in group %d, want new group 1", g)
	}
	if g := c.Assign([]float64{0.9, 0.1}); g != 0 {
		t.Fatalf("similar item landed in group %d, want 0", g)
	}
	if c.Len() != 3 || len(c.Groups) != 2 {
		t.Fatalf("unexpected state: n=%d groups=%v", c.Len(), c.Groups)
	}
}

// TestAssignPrefersMostSimilarRep: with several eligible communities the
// item joins the one whose representative is most similar.
func TestAssignPrefersMostSimilarRep(t *testing.T) {
	c := &Communities{Threshold: 0.3}
	c.Assign(nil)                      // item 0 → group 0
	c.Assign([]float64{0.1})           // item 1 → group 1
	g := c.Assign([]float64{0.4, 0.8}) // eligible for both; rep 1 closer
	if g != 1 {
		t.Fatalf("item joined group %d, want 1", g)
	}
}

func TestRemoveRenumbersAndPromotes(t *testing.T) {
	c := &Communities{Threshold: 0.5}
	c.Assign(nil)                      // 0 → group 0 (rep 0)
	c.Assign([]float64{0.9})           // 1 → group 0
	c.Assign([]float64{0.1, 0.2})      // 2 → group 1 (rep 2)
	c.Assign([]float64{0.8, 0.7, 0.0}) // 3 → group 0

	// Removing the representative of group 0 promotes the smallest
	// surviving member and renumbers 2→1, 3→2.
	c.Remove(0)
	if c.Len() != 3 {
		t.Fatalf("n=%d, want 3", c.Len())
	}
	want := [][]int{{0, 2}, {1}}
	if !reflect.DeepEqual(c.Groups, want) {
		t.Fatalf("groups %v, want %v", c.Groups, want)
	}
	if c.Reps[0] != 0 || c.Reps[1] != 1 {
		t.Fatalf("reps %v, want [0 1]", c.Reps)
	}

	// Removing the last member of a group deletes the group.
	c.Remove(1)
	if len(c.Groups) != 1 || !reflect.DeepEqual(c.Groups[0], []int{0, 1}) {
		t.Fatalf("groups %v, want [[0 1]]", c.Groups)
	}
	if c.Find(5) != -1 {
		t.Fatalf("Find(5) found a group for a nonexistent item")
	}
}

// TestChurnKeepsPartitionConsistent hammers Assign/Remove with random
// churn and checks structural invariants after every operation.
func TestChurnKeepsPartitionConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := &Communities{Threshold: 0.55}
	live := 0
	for op := 0; op < 2000; op++ {
		if live == 0 || rng.Float64() < 0.6 {
			row := make([]float64, live)
			for i := range row {
				row[i] = rng.Float64()
			}
			c.Assign(row)
			live++
		} else {
			c.Remove(rng.Intn(live))
			live--
		}
		if c.Len() != live {
			t.Fatalf("op %d: Len=%d, want %d", op, c.Len(), live)
		}
		seen := make(map[int]bool)
		for g, members := range c.Groups {
			if len(members) == 0 {
				t.Fatalf("op %d: empty group %d", op, g)
			}
			if !sort.IntsAreSorted(members) {
				t.Fatalf("op %d: group %d not sorted: %v", op, g, members)
			}
			repMember := false
			for _, m := range members {
				if m < 0 || m >= live {
					t.Fatalf("op %d: member %d out of range [0,%d)", op, m, live)
				}
				if seen[m] {
					t.Fatalf("op %d: item %d in two groups", op, m)
				}
				seen[m] = true
				if m == c.Reps[g] {
					repMember = true
				}
			}
			if !repMember {
				t.Fatalf("op %d: rep %d not a member of group %d %v", op, c.Reps[g], g, members)
			}
		}
		if len(seen) != live {
			t.Fatalf("op %d: %d items covered, want %d", op, len(seen), live)
		}
	}
}

func TestSortedLargestFirst(t *testing.T) {
	c := &Communities{Threshold: 0.5}
	c.Assign(nil)
	c.Assign([]float64{0.1})
	c.Assign([]float64{0.1, 0.9})
	c.Assign([]float64{0.1, 0.9, 0.9})
	s := c.Sorted()
	for i := 1; i < len(s); i++ {
		if len(s[i]) > len(s[i-1]) {
			t.Fatalf("Sorted not largest-first: %v", s)
		}
	}
}

func TestPlaceAtReplaysAssign(t *testing.T) {
	// Drive one clustering with Assign and a twin with the recorded
	// group decisions via PlaceAt: identical structure must come out.
	rows := [][]float64{
		nil,
		{0.9},
		{0.1, 0.2},
		{0.8, 0.1, 0.1},
		{0.1, 0.1, 0.9, 0.1},
		{0.1, 0.1, 0.1, 0.1, 0.1},
	}
	orig := &Communities{Threshold: 0.5}
	var decisions []int
	for _, row := range rows {
		decisions = append(decisions, orig.Assign(row))
	}
	replay := &Communities{Threshold: 0.5}
	for i, g := range decisions {
		if err := replay.PlaceAt(g); err != nil {
			t.Fatalf("PlaceAt op %d: %v", i, err)
		}
	}
	if replay.Len() != orig.Len() {
		t.Fatalf("Len = %d, want %d", replay.Len(), orig.Len())
	}
	if len(replay.Groups) != len(orig.Groups) {
		t.Fatalf("groups = %v, want %v", replay.Groups, orig.Groups)
	}
	for g := range orig.Groups {
		if replay.Reps[g] != orig.Reps[g] {
			t.Fatalf("rep[%d] = %d, want %d", g, replay.Reps[g], orig.Reps[g])
		}
		if len(replay.Groups[g]) != len(orig.Groups[g]) {
			t.Fatalf("group %d = %v, want %v", g, replay.Groups[g], orig.Groups[g])
		}
		for i := range orig.Groups[g] {
			if replay.Groups[g][i] != orig.Groups[g][i] {
				t.Fatalf("group %d = %v, want %v", g, replay.Groups[g], orig.Groups[g])
			}
		}
	}
}

func TestPlaceAtRejectsOutOfRange(t *testing.T) {
	c := &Communities{Threshold: 0.5}
	if err := c.PlaceAt(1); err == nil {
		t.Fatal("PlaceAt(1) on empty clustering should error")
	}
	if err := c.PlaceAt(-1); err == nil {
		t.Fatal("PlaceAt(-1) should error")
	}
	if err := c.PlaceAt(0); err != nil { // founds the first group
		t.Fatalf("PlaceAt(0): %v", err)
	}
	if c.Len() != 1 || len(c.Groups) != 1 || c.Reps[0] != 0 {
		t.Fatalf("after founding: %+v", c)
	}
}

func TestFromGroupsValidates(t *testing.T) {
	ok, err := FromGroups(0.5, [][]int{{2, 0}, {1}}, []int{0, 1})
	if err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	if ok.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ok.Len())
	}
	if g := ok.Groups[0]; g[0] != 0 || g[1] != 2 {
		t.Fatalf("members not sorted: %v", g)
	}
	if ok.Find(2) != 0 || ok.Find(1) != 1 {
		t.Fatal("Find disagrees with restored partition")
	}

	cases := []struct {
		name   string
		groups [][]int
		reps   []int
	}{
		{"rep count mismatch", [][]int{{0}}, []int{0, 0}},
		{"empty group", [][]int{{0}, {}}, []int{0, 0}},
		{"duplicate item", [][]int{{0, 1}, {1}}, []int{0, 1}},
		{"missing item", [][]int{{0}, {2}}, []int{0, 2}},
		{"rep not member", [][]int{{0}, {1}}, []int{0, 0}},
		{"negative index", [][]int{{-1, 0}}, []int{0}},
	}
	for _, tc := range cases {
		if _, err := FromGroups(0.5, tc.groups, tc.reps); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestFromGroupsThenMaintain(t *testing.T) {
	// A restored clustering keeps working: PlaceAt and Remove maintain
	// the partition invariants on top of FromGroups.
	c, err := FromGroups(0.5, [][]int{{0, 2}, {1, 3}}, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PlaceAt(0); err != nil { // item 4 joins group 0
		t.Fatal(err)
	}
	if err := c.PlaceAt(2); err != nil { // item 5 founds group 2
		t.Fatal(err)
	}
	c.Remove(3) // group 1's rep; item 1 promoted, 4→3 5→4 renumber
	if c.Len() != 5 {
		t.Fatalf("Len = %d, want 5", c.Len())
	}
	seen := map[int]bool{}
	for g, members := range c.Groups {
		repMember := false
		for _, m := range members {
			if seen[m] {
				t.Fatalf("item %d in two groups: %v", m, c.Groups)
			}
			seen[m] = true
			if m == c.Reps[g] {
				repMember = true
			}
		}
		if !repMember {
			t.Fatalf("rep %d not in group %d: %v", c.Reps[g], g, c.Groups)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("partition covers %d items, want 5: %v", len(seen), c.Groups)
	}
}
