package cluster

import "sort"

// BalanceShards assigns each community group to one of `shards` shards,
// balancing by member count: groups are placed largest-first onto the
// currently least-loaded shard (LPT scheduling — within 4/3 of the
// optimal makespan). Keeping whole communities on one shard is what
// makes sharded routing cheap: a document that matches a community's
// representative fans out to members that all live behind one shard
// lock ("Balanced Dynamic Content Addressing in Trees" argues the same
// locality for tree-structured workloads).
//
// The result maps group index → shard index and is deterministic: ties
// in group size break toward the earlier group, ties in shard load
// toward the lower shard.
func BalanceShards(groups [][]int, shards int) []int {
	out := make([]int, len(groups))
	if shards <= 1 {
		return out
	}
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(groups[order[a]]) > len(groups[order[b]])
	})
	load := make([]int, shards)
	for _, g := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		out[g] = best
		load[best] += len(groups[g])
	}
	return out
}
