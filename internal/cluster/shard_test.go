package cluster

import (
	"reflect"
	"testing"
)

func TestBalanceShards(t *testing.T) {
	mk := func(sizes ...int) [][]int {
		out := make([][]int, len(sizes))
		for i, n := range sizes {
			out[i] = make([]int, n)
		}
		return out
	}
	cases := []struct {
		name   string
		groups [][]int
		shards int
		want   []int
	}{
		{"empty", nil, 4, []int{}},
		{"one shard", mk(3, 1, 2), 1, []int{0, 0, 0}},
		{"zero shards treated as one", mk(2, 2), 0, []int{0, 0}},
		// Largest-first: 5→s0, 4→s1, 3→s1(load 4 vs 5? no: loads 5,4 → s1),
		// 2→s1? loads 5,7 → s0. Final loads 7,7.
		{"lpt balance", mk(5, 4, 3, 2), 2, []int{0, 1, 1, 0}},
		// Ties in size keep group order; ties in load pick lower shard.
		{"ties deterministic", mk(1, 1, 1, 1), 2, []int{0, 1, 0, 1}},
		{"more shards than groups", mk(2, 1), 4, []int{0, 1}},
	}
	for _, c := range cases {
		got := BalanceShards(c.groups, c.shards)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: BalanceShards = %v, want %v", c.name, got, c.want)
		}
	}
	// Load spread property: max-min member load ≤ largest group size.
	groups := mk(9, 7, 5, 5, 4, 3, 3, 2, 1, 1)
	asg := BalanceShards(groups, 3)
	load := make([]int, 3)
	for g, s := range asg {
		load[s] += len(groups[g])
	}
	minL, maxL := load[0], load[0]
	for _, l := range load {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if maxL-minL > 9 {
		t.Errorf("unbalanced shards: loads %v", load)
	}
}
