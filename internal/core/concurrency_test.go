package core

import (
	"math"
	"sync"
	"testing"

	"treesim/internal/dtd"
	"treesim/internal/experiment"
	"treesim/internal/matchset"
	"treesim/internal/metrics"
	"treesim/internal/pattern"
)

// concurrencyWorkload builds a small bench-scale workload once.
var (
	concOnce sync.Once
	concW    *experiment.Workload
)

func concurrencyWorkload() *experiment.Workload {
	concOnce.Do(func() {
		concW = experiment.BuildWorkload(dtd.NITFLike(), experiment.WorkloadConfig{
			Docs: 120, Positive: 24, Negative: 8, Seed: 21,
		})
	})
	return concW
}

// TestConcurrentQueriesAndUpdates hammers the estimator with concurrent
// stream updates and every kind of query. Run under -race this is the
// regression test for the RWMutex read path: queries must be safe
// against each other and against writers.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	w := concurrencyWorkload()
	for _, kind := range []matchset.Kind{matchset.KindSets, matchset.KindHashes} {
		t.Run(kind.String(), func(t *testing.T) {
			est := NewEstimator(Config{Representation: kind, HashCapacity: 100, SetCapacity: 100, Seed: 3})
			for _, d := range w.Docs[:40] {
				est.ObserveTree(d)
			}
			const rounds = 30
			var wg sync.WaitGroup
			// Writer: keeps streaming documents.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					est.ObserveTree(w.Docs[40+i%(len(w.Docs)-40)])
				}
			}()
			// Selectivity readers.
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						p := w.Positive[(g*rounds+i)%len(w.Positive)]
						if v := est.Selectivity(p); math.IsNaN(v) || v < 0 || v > 1 {
							t.Errorf("selectivity out of range: %v", v)
							return
						}
					}
				}(g)
			}
			// Pairwise similarity reader.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					p := w.Positive[i%len(w.Positive)]
					q := w.Positive[(i+1)%len(w.Positive)]
					if v := est.Similarity(metrics.M3, p, q); math.IsNaN(v) {
						t.Error("similarity NaN")
						return
					}
					_ = est.Joint(p, q)
				}
			}()
			// Matrix reader (itself internally parallel).
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 4; i++ {
					mat := est.SimilarityMatrix(metrics.M2, w.Positive[:10])
					for r := range mat {
						for c := range mat[r] {
							if math.IsNaN(mat[r][c]) {
								t.Errorf("matrix NaN at %d,%d", r, c)
								return
							}
						}
					}
				}
			}()
			// Stats reader.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					_ = est.Stats()
					_ = est.DocsObserved()
				}
			}()
			wg.Wait()
		})
	}
}

// TestSimilarityMatrixMatchesSerial verifies the parallel matrix equals
// the serial per-pair computation cell by cell on a quiescent estimator.
func TestSimilarityMatrixMatchesSerial(t *testing.T) {
	w := concurrencyWorkload()
	est := NewEstimator(Config{Representation: matchset.KindHashes, HashCapacity: 200, Seed: 5})
	for _, d := range w.Docs {
		est.ObserveTree(d)
	}
	subs := w.Positive[:12]
	mat := est.SimilarityMatrix(metrics.M3, subs)
	serial := serialMatrix(est, metrics.M3, subs)
	for i := range mat {
		for j := range mat[i] {
			if i == j {
				continue // diagonal intentionally uses exact p∧p ≡ p
			}
			if math.Abs(mat[i][j]-serial[i][j]) > 1e-12 {
				t.Errorf("matrix[%d][%d] = %v, serial = %v", i, j, mat[i][j], serial[i][j])
			}
		}
	}
	// And the matrix must be deterministic across runs.
	again := est.SimilarityMatrix(metrics.M3, subs)
	for i := range mat {
		for j := range mat[i] {
			if mat[i][j] != again[i][j] {
				t.Errorf("matrix[%d][%d] not deterministic: %v vs %v", i, j, mat[i][j], again[i][j])
			}
		}
	}
}

// serialMatrix is the pre-parallel reference: one merged-pattern SEL
// evaluation per pair through the public pairwise API.
func serialMatrix(est *Estimator, m metrics.Metric, subs []*pattern.Pattern) [][]float64 {
	n := len(subs)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			out[i][j] = est.Similarity(m, subs[i], subs[j])
		}
	}
	return out
}
