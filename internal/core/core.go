// Package core ties the paper's pieces into one streaming estimator: it
// maintains the document synopsis over an XML stream and answers
// tree-pattern selectivity and similarity queries over it. This is the
// system a content-based router embeds to discover semantic communities
// of consumers (Chand, Felber, Garofalakis, ICDE'07).
package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"treesim/internal/dtd"
	"treesim/internal/matchset"
	"treesim/internal/metrics"
	"treesim/internal/pattern"
	"treesim/internal/selectivity"
	"treesim/internal/synopsis"
	"treesim/internal/xmltree"
)

// Representation selects the matching-set compression scheme.
type Representation = matchset.Kind

// Representation values.
const (
	// Counters is the per-node counter baseline (independence
	// assumptions at branching points).
	Counters = matchset.KindCounters
	// Sets is document-level reservoir sampling with exact ID sets.
	Sets = matchset.KindSets
	// Hashes is per-node distinct sampling (the paper's best scheme).
	Hashes = matchset.KindHashes
)

// Config configures an Estimator.
type Config struct {
	// Representation selects Counters (the zero value), Sets or Hashes.
	// Hashes is the paper's recommended scheme.
	Representation Representation
	// HashCapacity is the per-node sample bound h for Hashes (default
	// 1000, the paper's sweet spot).
	HashCapacity int
	// SetCapacity is the reservoir size k for Sets (default 1000).
	SetCapacity int
	// Seed makes all sampling deterministic.
	Seed int64
	// ExactRootCard uses the exact stream length as the selectivity
	// denominator instead of the estimated |S(rs)| (ablation knob; the
	// paper uses the estimate).
	ExactRootCard bool
	// ParseOptions controls how raw XML maps to trees (text nodes,
	// attributes).
	ParseOptions xmltree.ParseOptions
	// DTD, when set, enables the paper's footnote-2 enhancement:
	// patterns that are structurally impossible under the schema are
	// answered P = 0 without consulting the synopsis, eliminating
	// residual negative-query error for schema-valid streams.
	DTD *dtd.DTD
}

// Estimator is a streaming tree-pattern selectivity and similarity
// estimator. It is safe for concurrent use: queries (Selectivity,
// Joint, Similarity, SimilarityMatrix, Stats, Save) take a shared read
// lock and run concurrently with each other, while stream updates
// (ObserveTree, ObserveXML, Compress) take the exclusive lock.
// Query-time materialization caches synchronize internally in the
// synopsis, so the read path never mutates unguarded shared state.
type Estimator struct {
	mu  sync.RWMutex
	cfg Config
	syn *synopsis.Synopsis
	sel *selectivity.Estimator

	// vals caches one SEL evaluation per pattern pointer for the current
	// synopsis version. Live brokers re-evaluate the same registry
	// patterns on every incremental similarity row and every matrix
	// rebuild; between synopsis mutations those evaluations are
	// identical, so the cache turns the O(n) SEL passes of a subscribe
	// into O(n) cache hits plus one evaluation of the new pattern.
	// Guarded by valMu (a leaf lock under mu); reset wholesale whenever
	// the synopsis version moves on (every entry is stale then, and the
	// reset also drops entries for unsubscribed patterns).
	valMu   sync.Mutex
	valsVer int64
	vals    map[*pattern.Pattern]evalEntry
}

// evalEntry is one cached SEL evaluation: the (immutable) matching-set
// value and its normalized cardinality.
type evalEntry struct {
	val  matchset.Value
	card float64
}

// evalCacheCap bounds the eval cache between synopsis mutations: a
// static synopsis under heavy subscription churn would otherwise grow
// the map with dead pattern pointers. Exceeding the cap clears the
// whole cache (entries are independent; correctness never depends on a
// hit).
const evalCacheCap = 8192

// NewEstimator returns an estimator with the given configuration.
func NewEstimator(cfg Config) *Estimator {
	syn := synopsis.New(synopsis.Options{
		Kind:          cfg.Representation,
		HashCapacity:  cfg.HashCapacity,
		SetCapacity:   cfg.SetCapacity,
		Seed:          cfg.Seed,
		ExactRootCard: cfg.ExactRootCard,
	})
	return &Estimator{cfg: cfg, syn: syn, sel: selectivity.New(syn)}
}

// Config returns the estimator's configuration.
func (e *Estimator) Config() Config { return e.cfg }

// Synopsis exposes the underlying synopsis (for inspection, pruning
// experiments and size accounting). Callers that mutate it must not race
// with other estimator calls.
func (e *Estimator) Synopsis() *synopsis.Synopsis { return e.syn }

// ObserveTree feeds one document into the synopsis and returns its
// stream identifier.
func (e *Estimator) ObserveTree(t *xmltree.Tree) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.syn.Insert(t)
}

// ObserveTrees feeds a batch of documents under a single exclusive
// lock acquisition and returns their stream identifiers. Batching
// pipelines (the broker's publish ingester) use this to amortize lock
// traffic against concurrent queries.
func (e *Estimator) ObserveTrees(ts []*xmltree.Tree) []uint64 {
	if len(ts) == 0 {
		return nil
	}
	ids := make([]uint64, len(ts))
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, t := range ts {
		ids[i] = e.syn.Insert(t)
	}
	return ids
}

// ObserveXML parses one XML document from r and feeds it in.
func (e *Estimator) ObserveXML(r io.Reader) (uint64, error) {
	t, err := xmltree.Parse(r, e.cfg.ParseOptions)
	if err != nil {
		return 0, fmt.Errorf("core: observe: %w", err)
	}
	return e.ObserveTree(t), nil
}

// DocsObserved returns the stream length |H| so far.
func (e *Estimator) DocsObserved() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.syn.DocsObserved()
}

// Selectivity estimates P(p): the fraction of stream documents matching
// the pattern. With Config.DTD set, structurally infeasible patterns
// short-circuit to 0.
func (e *Estimator) Selectivity(p *pattern.Pattern) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.p(p)
}

// p is Selectivity with the lock already held.
func (e *Estimator) p(pat *pattern.Pattern) float64 {
	if e.cfg.DTD != nil && !dtd.Feasible(e.cfg.DTD, pat) {
		return 0
	}
	return e.sel.P(pat)
}

// SelectivityXPath is Selectivity over an XPath string.
func (e *Estimator) SelectivityXPath(xpath string) (float64, error) {
	p, err := pattern.Parse(xpath)
	if err != nil {
		return 0, err
	}
	return e.Selectivity(p), nil
}

// Joint estimates P(p ∧ q).
func (e *Estimator) Joint(p, q *pattern.Pattern) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.pAnd(p, q)
}

// pAnd is Joint with the lock already held: with a DTD configured, an
// infeasible conjunction short-circuits to 0.
func (e *Estimator) pAnd(p, q *pattern.Pattern) float64 {
	if e.cfg.DTD != nil && !dtd.Feasible(e.cfg.DTD, pattern.MergeRoots(p, q)) {
		return 0
	}
	return e.sel.PAnd(p, q)
}

// lockedSource adapts the estimator's DTD-filtered probabilities to
// metrics.Source. The caller must hold e.mu.
type lockedSource struct{ e *Estimator }

func (s lockedSource) P(p *pattern.Pattern) float64       { return s.e.p(p) }
func (s lockedSource) PAnd(p, q *pattern.Pattern) float64 { return s.e.pAnd(p, q) }

// Similarity estimates the proximity metric m between two subscriptions.
func (e *Estimator) Similarity(m metrics.Metric, p, q *pattern.Pattern) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return metrics.Similarity(lockedSource{e}, m, p, q)
}

// SimilarityXPath is Similarity over XPath strings.
func (e *Estimator) SimilarityXPath(m metrics.Metric, px, qx string) (float64, error) {
	p, err := pattern.Parse(px)
	if err != nil {
		return 0, err
	}
	q, err := pattern.Parse(qx)
	if err != nil {
		return 0, err
	}
	return e.Similarity(m, p, q), nil
}

// Compress prunes the synopsis to the target fraction of its current
// size (paper, Section 3.3) and returns the achieved ratio.
func (e *Estimator) Compress(targetRatio float64) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.syn.Compress(synopsis.CompressOptions{TargetRatio: targetRatio})
}

// Stats returns the synopsis size statistics.
func (e *Estimator) Stats() synopsis.Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.syn.Stats()
}

// Save serializes the estimator's synopsis state to w. A saved
// estimator restores with identical query answers; continued streaming
// after Load is statistically (not bitwise) equivalent because random
// sources are re-seeded.
func (e *Estimator) Save(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.syn.Encode(w)
}

// LoadEstimator reconstructs an estimator saved with Save. The
// configuration is restored from the stream; parse options revert to
// the zero value unless set afterwards via cfg overrides.
func LoadEstimator(r io.Reader) (*Estimator, error) {
	syn, err := synopsis.Decode(r)
	if err != nil {
		return nil, err
	}
	opts := syn.Options()
	cfg := Config{
		Representation: opts.Kind,
		HashCapacity:   opts.HashCapacity,
		SetCapacity:    opts.SetCapacity,
		Seed:           opts.Seed,
		ExactRootCard:  opts.ExactRootCard,
	}
	return &Estimator{cfg: cfg, syn: syn, sel: selectivity.New(syn)}, nil
}

// SetStreamConfig restores the configuration facets Save does not
// persist — parse options and the optional DTD schema filter — on a
// loaded estimator. Call it once after LoadEstimator, before serving
// queries or stream updates.
func (e *Estimator) SetStreamConfig(opts xmltree.ParseOptions, d *dtd.DTD) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.ParseOptions = opts
	e.cfg.DTD = d
}

// cachedEval returns the SEL evaluation of p (value + normalized
// cardinality), consulting the per-version cache. The caller must hold
// at least the shared read lock, so the synopsis version is stable for
// the duration of the call. Concurrent misses may evaluate the same
// pattern twice; both arrive at the same immutable value.
func (e *Estimator) cachedEval(p *pattern.Pattern) (matchset.Value, float64) {
	ver := e.syn.Version()
	e.valMu.Lock()
	if e.vals == nil || e.valsVer != ver || len(e.vals) >= evalCacheCap {
		e.valsVer = ver
		if e.vals == nil {
			e.vals = make(map[*pattern.Pattern]evalEntry)
		} else {
			clear(e.vals)
		}
	} else if ent, ok := e.vals[p]; ok {
		e.valMu.Unlock()
		return ent.val, ent.card
	}
	e.valMu.Unlock()
	v := e.sel.Evaluate(p)
	c := e.sel.EvaluateCard(v)
	e.valMu.Lock()
	if e.valsVer == ver && len(e.vals) < evalCacheCap {
		e.vals[p] = evalEntry{val: v, card: c}
	}
	e.valMu.Unlock()
	return v, c
}

// SimilarityMatrix computes the full pairwise similarity matrix of a
// subscription set under metric m. The result is row-major: result[i][j]
// = m(subs[i], subs[j]).
//
// Conjunctions factorize over SEL — SEL(p ∧ q) = SEL(p) ∩ SEL(q) — so
// the matrix needs only one SEL evaluation per subscription plus one
// matching-set intersection per pair, instead of one SEL evaluation of
// a merged pattern per pair. Both phases fan out across GOMAXPROCS
// workers: SEL evaluations are independent per subscription, and the
// pairwise phase shards by row (a dynamic counter balances the
// triangular row lengths). The whole computation holds only the shared
// read lock, so it runs concurrently with other queries.
func (e *Estimator) SimilarityMatrix(m metrics.Metric, subs []*pattern.Pattern) [][]float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := len(subs)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	if n == 0 {
		return out
	}
	// Materialize the per-version Full cache up front (one traversal
	// from the root covers every node), so the parallel evaluations
	// below hit the cache instead of racing to rebuild the same values.
	e.syn.Full(e.syn.Root())

	// Phase 1: one SEL evaluation per subscription; infeasible patterns
	// (DTD mode) evaluate to nil and contribute zero everywhere.
	vals := make([]matchset.Value, n)
	ps := make([]float64, n)
	workers := min(runtime.GOMAXPROCS(0), n)
	var next atomic.Int64
	runWorkers(workers, func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			p := subs[i]
			if e.cfg.DTD != nil && !dtd.Feasible(e.cfg.DTD, p) {
				continue
			}
			vals[i], ps[i] = e.cachedEval(p)
		}
	})

	// Phase 2: pairwise intersections, sharded by row. Worker i owns
	// every cell it writes — (i,j), (j,i) with j > i and the diagonal —
	// so no two workers touch the same cell.
	next.Store(0)
	runWorkers(workers, func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			e.matrixRow(m, subs, vals, ps, out, i)
		}
	})
	return out
}

// SimilarityRow computes the similarities of an existing subscription
// set against one new subscription p: out[i] = m(subs[i], p) — the new
// column of the similarity matrix. That orientation matters for the
// asymmetric M1: greedy community absorption tests sim[existing][new],
// so incremental assignment must consume the same direction or
// incremental placement and policy rebuilds would disagree. (For M2/M3
// the two orientations coincide.)
//
// This is the incremental path live brokers use on subscribe — instead
// of rebuilding the full O(n²) matrix, only the new column is evaluated
// (one SEL pass per pattern plus one matching-set intersection per
// existing subscription), fanned out across the same GOMAXPROCS worker
// pool as SimilarityMatrix and holding only the shared read lock.
func (e *Estimator) SimilarityRow(m metrics.Metric, p *pattern.Pattern, subs []*pattern.Pattern) []float64 {
	return e.SimilarityRowInto(nil, m, p, subs)
}

// SimilarityRowInto is SimilarityRow writing into dst (grown or
// truncated to len(subs); a fresh slice is allocated only when dst's
// capacity is short). Churn-heavy callers keep a pooled buffer and
// avoid one row allocation per subscribe.
func (e *Estimator) SimilarityRowInto(dst []float64, m metrics.Metric, p *pattern.Pattern, subs []*pattern.Pattern) []float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := len(subs)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	out := dst[:n]
	if n == 0 {
		return out
	}
	e.syn.Full(e.syn.Root())

	pFeasible := e.cfg.DTD == nil || dtd.Feasible(e.cfg.DTD, p)
	var pv matchset.Value
	var pp float64
	if pFeasible {
		pv, pp = e.cachedEval(p)
	}

	workers := min(runtime.GOMAXPROCS(0), n)
	var next atomic.Int64
	runWorkers(workers, func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			q := subs[i]
			if e.cfg.DTD != nil && !dtd.Feasible(e.cfg.DTD, q) {
				out[i] = m.Eval(metrics.Probs{Q: pp})
				continue
			}
			qv, qp := e.cachedEval(q)
			var and float64
			switch {
			case !pFeasible:
			case e.cfg.DTD != nil && !dtd.Feasible(e.cfg.DTD, pattern.MergeRoots(p, q)):
			default:
				and = e.sel.IntersectP(pv, qv)
			}
			out[i] = m.Eval(metrics.Probs{P: qp, Q: pp, And: and})
		}
	})
	return out
}

// matrixRow fills row i of the similarity matrix (diagonal, upper cells
// (i,j) and their mirrors (j,i) for j > i). The caller must hold at
// least the read lock.
func (e *Estimator) matrixRow(m metrics.Metric, subs []*pattern.Pattern, vals []matchset.Value, ps []float64, out [][]float64, i int) {
	n := len(subs)
	// The diagonal uses P(p∧p) = P(p), which is exact. (Pairwise
	// Similarity under Counters instead reports P(p)² for the
	// self-conjunction — the independence assumption does not know
	// that p∧p ≡ p.)
	out[i][i] = m.Eval(metrics.Probs{P: ps[i], Q: ps[i], And: ps[i]})
	for j := i + 1; j < n; j++ {
		var and float64
		switch {
		case vals[i] == nil || vals[j] == nil:
			and = 0
		case e.cfg.DTD != nil && !dtd.Feasible(e.cfg.DTD, pattern.MergeRoots(subs[i], subs[j])):
			and = 0
		default:
			and = e.sel.IntersectP(vals[i], vals[j])
		}
		out[i][j] = m.Eval(metrics.Probs{P: ps[i], Q: ps[j], And: and})
		if m.Symmetric() {
			out[j][i] = out[i][j]
		} else {
			out[j][i] = m.Eval(metrics.Probs{P: ps[j], Q: ps[i], And: and})
		}
	}
}

// runWorkers runs fn on w goroutines and waits for all of them.
func runWorkers(w int, fn func()) {
	if w <= 1 {
		fn()
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}
