package core

import (
	"math"
	"strings"
	"sync"
	"testing"

	"treesim/internal/dtd"
	"treesim/internal/metrics"
	"treesim/internal/pattern"
	"treesim/internal/xmlgen"
	"treesim/internal/xmltree"
)

func feedCorpus(t *testing.T, e *Estimator) {
	t.Helper()
	for _, s := range []string{
		"a(b(e))", "a(b(f))", "a(b,c(f,o))", "a(d,c(f,o))", "a(d(e))", "a(d(q))",
	} {
		tr, err := xmltree.ParseCompact(s)
		if err != nil {
			t.Fatal(err)
		}
		e.ObserveTree(tr)
	}
}

func TestEndToEndSelectivity(t *testing.T) {
	e := NewEstimator(Config{Representation: Sets, SetCapacity: 1 << 20, Seed: 1})
	feedCorpus(t, e)
	if e.DocsObserved() != 6 {
		t.Fatalf("DocsObserved = %d", e.DocsObserved())
	}
	got, err := e.SelectivityXPath("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(/a/b) = %v, want 0.5", got)
	}
	if _, err := e.SelectivityXPath("///"); err == nil {
		t.Error("invalid XPath should error")
	}
}

func TestEndToEndSimilarity(t *testing.T) {
	e := NewEstimator(Config{Representation: Sets, SetCapacity: 1 << 20, Seed: 1})
	feedCorpus(t, e)
	// //f and //o: P(f)=1/2, P(o)=1/3, P(and)=1/3.
	got, err := e.SimilarityXPath(metrics.M3, "//f", "//o")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("M3 = %v, want 2/3", got)
	}
	if _, err := e.SimilarityXPath(metrics.M1, "//f", "["); err == nil {
		t.Error("invalid second XPath should error")
	}
	if _, err := e.SimilarityXPath(metrics.M1, "[", "//f"); err == nil {
		t.Error("invalid first XPath should error")
	}
}

func TestObserveXML(t *testing.T) {
	e := NewEstimator(Config{Representation: Hashes, Seed: 2})
	id, err := e.ObserveXML(strings.NewReader("<a><b/></a>"))
	if err != nil || id != 0 {
		t.Fatalf("ObserveXML: id=%d err=%v", id, err)
	}
	if _, err := e.ObserveXML(strings.NewReader("<unclosed>")); err == nil {
		t.Error("bad XML should error")
	}
	p := pattern.MustParse("/a/b")
	if got := e.Selectivity(p); got != 1 {
		t.Errorf("P(/a/b) = %v, want 1", got)
	}
}

func TestCompressViaFacade(t *testing.T) {
	e := NewEstimator(Config{Representation: Hashes, HashCapacity: 100, Seed: 3})
	feedCorpus(t, e)
	before := e.Stats().Size()
	ratio := e.Compress(0.7)
	if ratio > 1 {
		t.Errorf("ratio %v > 1", ratio)
	}
	if e.Stats().Size() > before {
		t.Error("compression grew the synopsis")
	}
}

func TestSimilarityMatrix(t *testing.T) {
	e := NewEstimator(Config{Representation: Sets, SetCapacity: 1 << 20, Seed: 1})
	feedCorpus(t, e)
	subs := []*pattern.Pattern{
		pattern.MustParse("//f"),
		pattern.MustParse("//o"),
		pattern.MustParse("//zzz"),
	}
	m := e.SimilarityMatrix(metrics.M3, subs)
	if len(m) != 3 {
		t.Fatalf("matrix size %d", len(m))
	}
	if m[0][1] != m[1][0] {
		t.Error("M3 matrix should be symmetric")
	}
	if math.Abs(m[0][1]-2.0/3) > 1e-12 {
		t.Errorf("m[0][1] = %v, want 2/3", m[0][1])
	}
	if m[0][0] != 1 || m[1][1] != 1 {
		t.Error("diagonal should be 1 for non-empty patterns")
	}
	if m[2][2] != 0 {
		t.Errorf("diagonal of never-matching pattern = %v, want 0 (P=0)", m[2][2])
	}
	if m[0][2] != 0 {
		t.Errorf("similarity with unmatched pattern = %v, want 0", m[0][2])
	}
	// Asymmetric metric fills both triangles distinctly.
	m1 := e.SimilarityMatrix(metrics.M1, subs)
	// M1(f|o) = P(f∧o)/P(o) = 1; M1(o|f) = (1/3)/(1/2) = 2/3.
	if math.Abs(m1[0][1]-1) > 1e-12 || math.Abs(m1[1][0]-2.0/3) > 1e-12 {
		t.Errorf("M1 matrix = %v / %v, want 1 / 2/3", m1[0][1], m1[1][0])
	}
}

func TestSimilarityMatrixFactorizationParity(t *testing.T) {
	// The factorized matrix (one SEL per pattern + per-pair
	// intersections) must agree exactly with the pairwise merged-pattern
	// evaluation, for every representation.
	docs := []string{
		"a(b(e))", "a(b(f))", "a(b,c(f,o))", "a(d,c(f,o))", "a(d(e))", "a(d(q))",
		"a(b(e,f))", "a(c(o))",
	}
	subs := []*pattern.Pattern{
		pattern.MustParse("//f"),
		pattern.MustParse("//o"),
		pattern.MustParse("/a/b"),
		pattern.MustParse("/a[b][c]"),
		pattern.MustParse("//c[f][o]"),
		pattern.MustParse("//zzz"),
	}
	for _, kind := range []Representation{Counters, Sets, Hashes} {
		e := NewEstimator(Config{Representation: kind, SetCapacity: 1 << 20, HashCapacity: 1 << 20, Seed: 1})
		for _, s := range docs {
			tr, err := xmltree.ParseCompact(s)
			if err != nil {
				t.Fatal(err)
			}
			e.ObserveTree(tr)
		}
		for _, m := range metrics.All {
			fast := e.SimilarityMatrix(m, subs)
			for i := range subs {
				for j := range subs {
					if i == j && kind == Counters {
						// The matrix diagonal is exact (P(p∧p) = P(p));
						// pairwise counters instead estimate P(p)²
						// under independence. Both are documented.
						continue
					}
					slow := e.Similarity(m, subs[i], subs[j])
					if math.Abs(fast[i][j]-slow) > 1e-12 {
						t.Errorf("%v/%s [%d][%d]: fast %v != slow %v",
							kind, m, i, j, fast[i][j], slow)
					}
				}
			}
		}
	}
}

func TestSimilarityRowMatchesMatrix(t *testing.T) {
	// The incremental column (the broker's subscribe path) must agree
	// exactly with the corresponding column of the full matrix —
	// out[k] = m(subs[k], p) — for every representation and metric,
	// including the asymmetric M1.
	docs := []string{
		"a(b(e))", "a(b(f))", "a(b,c(f,o))", "a(d,c(f,o))", "a(d(e))", "a(d(q))",
		"a(b(e,f))", "a(c(o))",
	}
	subs := []*pattern.Pattern{
		pattern.MustParse("//f"),
		pattern.MustParse("//o"),
		pattern.MustParse("/a/b"),
		pattern.MustParse("/a[b][c]"),
		pattern.MustParse("//zzz"),
	}
	for _, kind := range []Representation{Counters, Sets, Hashes} {
		e := NewEstimator(Config{Representation: kind, SetCapacity: 1 << 20, HashCapacity: 1 << 20, Seed: 1})
		for _, s := range docs {
			tr, err := xmltree.ParseCompact(s)
			if err != nil {
				t.Fatal(err)
			}
			e.ObserveTree(tr)
		}
		for _, m := range metrics.All {
			full := e.SimilarityMatrix(m, subs)
			for i, p := range subs {
				others := append(append([]*pattern.Pattern{}, subs[:i]...), subs[i+1:]...)
				row := e.SimilarityRow(m, p, others)
				for k := range others {
					j := k
					if k >= i {
						j = k + 1
					}
					if math.Abs(row[k]-full[j][i]) > 1e-12 {
						t.Errorf("%v/%s row(%d)[%d] = %v, matrix[%d][%d] = %v",
							kind, m, i, k, row[k], j, i, full[j][i])
					}
				}
			}
		}
	}
	// Empty subscription set: a zero-length row, no panic.
	e := NewEstimator(Config{Representation: Sets, Seed: 1})
	if row := e.SimilarityRow(metrics.M3, subs[0], nil); len(row) != 0 {
		t.Errorf("empty row has length %d", len(row))
	}
}

func TestSimilarityRowMatchesMatrixWithDTD(t *testing.T) {
	// DTD mode exercises the row's three feasibility short-circuits:
	// infeasible new pattern, infeasible existing subscription, and a
	// feasible pair whose conjunction is infeasible. Each must agree
	// with the matrix column cell-for-cell, including under the
	// asymmetric M1.
	d := dtd.Media()
	e := NewEstimator(Config{Representation: Hashes, HashCapacity: 1 << 20, Seed: 2, DTD: d})
	for _, doc := range xmlgen.New(d, xmlgen.Options{Seed: 4}).GenerateN(100) {
		e.ObserveTree(doc)
	}
	subs := []*pattern.Pattern{
		pattern.MustParse("/media/CD"),
		pattern.MustParse("//composer/last"),
		pattern.MustParse("//composer/title"), // structurally infeasible
		pattern.MustParse("/media/book"),
		pattern.MustParse("/CD"), // wrong root: infeasible
	}
	for _, m := range metrics.All {
		full := e.SimilarityMatrix(m, subs)
		for i, p := range subs {
			others := append(append([]*pattern.Pattern{}, subs[:i]...), subs[i+1:]...)
			row := e.SimilarityRow(m, p, others)
			for k := range others {
				j := k
				if k >= i {
					j = k + 1
				}
				if math.Abs(row[k]-full[j][i]) > 1e-12 {
					t.Errorf("%s row(%d)[%d] = %v, matrix[%d][%d] = %v",
						m, i, k, row[k], j, i, full[j][i])
				}
			}
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	e := NewEstimator(Config{Representation: Hashes, HashCapacity: 64, Seed: 5})
	var wg sync.WaitGroup
	p := pattern.MustParse("/a/b")
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if w%2 == 0 {
					tr, _ := xmltree.ParseCompact("a(b,c)")
					e.ObserveTree(tr)
				} else {
					_ = e.Selectivity(p)
				}
			}
		}(w)
	}
	wg.Wait()
	if e.DocsObserved() != 100 {
		t.Errorf("DocsObserved = %d, want 100", e.DocsObserved())
	}
	if got := e.Selectivity(p); got != 1 {
		t.Errorf("P(/a/b) = %v, want 1", got)
	}
}

func TestZeroConfigWorks(t *testing.T) {
	e := NewEstimator(Config{})
	if e.Config().Representation != Counters {
		t.Fatalf("zero-value representation = %v, want Counters", e.Config().Representation)
	}
	tr, _ := xmltree.ParseCompact("a(b)")
	e.ObserveTree(tr)
	if got := e.Selectivity(pattern.MustParse("/a/b")); got != 1 {
		t.Errorf("P = %v, want 1", got)
	}
}

// TestEvalCacheTracksSynopsisMutation guards the per-version SEL value
// cache: similarity answers must be recomputed — not served stale —
// after the synopsis ingests more documents, and cached rows must agree
// with the uncached pairwise Similarity path at every version.
func TestEvalCacheTracksSynopsisMutation(t *testing.T) {
	subs := []*pattern.Pattern{
		pattern.MustParse("/a/b"),
		pattern.MustParse("//c"),
		pattern.MustParse("/a[b][c]"),
	}
	p := pattern.MustParse("//b")
	for _, kind := range []Representation{Counters, Sets, Hashes} {
		e := NewEstimator(Config{Representation: kind, SetCapacity: 1 << 20, HashCapacity: 1 << 20, Seed: 1})
		check := func(stage string) {
			// Two row computations at one synopsis version: the second is
			// all cache hits and must match both the first and the
			// uncached pairwise path.
			r1 := e.SimilarityRow(metrics.M3, p, subs)
			r2 := e.SimilarityRow(metrics.M3, p, subs)
			for i, q := range subs {
				want := e.Similarity(metrics.M3, q, p)
				if math.Abs(r1[i]-want) > 1e-12 || r1[i] != r2[i] {
					t.Errorf("%v/%s: row[%d] = %v/%v, pairwise = %v", kind, stage, i, r1[i], r2[i], want)
				}
			}
		}
		for _, s := range []string{"a(b)", "a(b,c)", "a(c)"} {
			tr, err := xmltree.ParseCompact(s)
			if err != nil {
				t.Fatal(err)
			}
			e.ObserveTree(tr)
		}
		check("warm")
		before := e.SimilarityRow(metrics.M3, p, subs)
		// Mutate the synopsis: /a/b-only documents shift every estimate.
		for i := 0; i < 16; i++ {
			tr, _ := xmltree.ParseCompact("a(b(x))")
			e.ObserveTree(tr)
		}
		check("after-ingest")
		after := e.SimilarityRow(metrics.M3, p, subs)
		same := true
		for i := range before {
			if math.Abs(before[i]-after[i]) > 1e-12 {
				same = false
			}
		}
		if same {
			t.Errorf("%v: similarity row unchanged after skewed ingest — stale cache?", kind)
		}
	}
}

// TestSimilarityRowInto exercises the caller-buffer variant: results in
// a reused buffer must equal the allocating path, with the buffer grown
// or truncated as needed.
func TestSimilarityRowInto(t *testing.T) {
	e := NewEstimator(Config{Representation: Sets, Seed: 1})
	for _, s := range []string{"a(b)", "a(b,c)", "a(c)"} {
		tr, _ := xmltree.ParseCompact(s)
		e.ObserveTree(tr)
	}
	subs := []*pattern.Pattern{pattern.MustParse("/a/b"), pattern.MustParse("//c")}
	p := pattern.MustParse("//b")
	want := e.SimilarityRow(metrics.M3, p, subs)
	buf := make([]float64, 0, 1) // too small: must be replaced
	got := e.SimilarityRowInto(buf, metrics.M3, p, subs)
	if len(got) != len(want) {
		t.Fatalf("row length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Into[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	big := make([]float64, 16)
	got = e.SimilarityRowInto(big, metrics.M3, p, subs)
	if len(got) != len(subs) || &got[0] != &big[0] {
		t.Fatal("SimilarityRowInto did not reuse an adequate buffer")
	}
}
