package core

import (
	"testing"

	"treesim/internal/dtd"
	"treesim/internal/metrics"
	"treesim/internal/pattern"
	"treesim/internal/xmlgen"
)

func TestDTDFilterZerosInfeasiblePatterns(t *testing.T) {
	d := dtd.Media()
	docs := xmlgen.New(d, xmlgen.Options{Seed: 4}).GenerateN(100)

	plain := NewEstimator(Config{Representation: Hashes, HashCapacity: 100, Seed: 2})
	filtered := NewEstimator(Config{Representation: Hashes, HashCapacity: 100, Seed: 2, DTD: d})
	for _, doc := range docs {
		plain.ObserveTree(doc)
		filtered.ObserveTree(doc)
	}

	// Feasible patterns answer identically with and without the filter.
	for _, q := range []string{"/media/CD", "//composer/last", "/media[book][CD]"} {
		p := pattern.MustParse(q)
		if a, b := plain.Selectivity(p), filtered.Selectivity(p); a != b {
			t.Errorf("feasible %s: plain %v, filtered %v", q, a, b)
		}
	}
	// Structurally impossible patterns are exactly 0 with the filter.
	impossible := pattern.MustParse("//composer/title")
	if got := filtered.Selectivity(impossible); got != 0 {
		t.Errorf("infeasible pattern P = %v, want 0", got)
	}
	// An infeasible conjunction of two feasible patterns.
	p := pattern.MustParse("/media/book")
	q := pattern.MustParse("/CD") // wrong root: infeasible alone too
	if got := filtered.Joint(p, q); got != 0 {
		t.Errorf("infeasible conjunction = %v, want 0", got)
	}
	// Similarity against an infeasible pattern is 0 for all metrics.
	for _, m := range metrics.All {
		if got := filtered.Similarity(m, p, impossible); got != 0 {
			t.Errorf("%s with infeasible operand = %v, want 0", m, got)
		}
	}
	// And the similarity matrix respects the filter.
	mtx := filtered.SimilarityMatrix(metrics.M3, []*pattern.Pattern{p, impossible})
	if mtx[0][1] != 0 || mtx[1][1] != 0 {
		t.Errorf("matrix with infeasible pattern: %v", mtx)
	}
}

func TestDTDFilterImprovesNegativeQueries(t *testing.T) {
	// For schema-valid streams, structurally infeasible negatives are
	// answered 0 even with a tiny, error-prone synopsis.
	d := dtd.Media()
	docs := xmlgen.New(d, xmlgen.Options{Seed: 9}).GenerateN(200)
	filtered := NewEstimator(Config{Representation: Counters, Seed: 2, DTD: d})
	for _, doc := range docs {
		filtered.ObserveTree(doc)
	}
	// Counters would answer > 0 for this (both paths exist separately);
	// the DTD rules the combination out entirely.
	q := pattern.MustParse("/media/book/author/first/last")
	if got := filtered.Selectivity(q); got != 0 {
		t.Errorf("infeasible deep path = %v, want 0", got)
	}
}
