package core

import (
	"fmt"
	"io"
	"sync"

	"treesim/internal/matchset"
	"treesim/internal/metrics"
	"treesim/internal/pattern"
	"treesim/internal/selectivity"
	"treesim/internal/synopsis"
	"treesim/internal/xmltree"
)

// WindowEstimator estimates tree-pattern selectivity and similarity
// over the most recent W documents of the stream — an extension beyond
// the paper for routing systems whose interest profiles drift. It keeps
// exact matching sets (Sets representation, no sampling) and expires
// the oldest document from the whole synopsis as each new one arrives,
// so answers always reflect exactly the current window.
//
// Memory is proportional to the distinct path structure of the window
// plus W set entries per path level; for bounded-memory estimation over
// unbounded history, use the standard Estimator with Hashes instead.
//
// Like Estimator, queries take a shared read lock and run concurrently;
// ObserveTree/ObserveXML take the exclusive lock.
type WindowEstimator struct {
	mu     sync.RWMutex
	window int
	syn    *synopsis.Synopsis
	sel    *selectivity.Estimator
	live   []uint64 // FIFO of document ids currently in the window
	parse  xmltree.ParseOptions
}

// NewWindowEstimator returns an estimator over a sliding window of the
// given size (≥ 1).
func NewWindowEstimator(window int, parse xmltree.ParseOptions) *WindowEstimator {
	if window < 1 {
		panic("core: window must be >= 1")
	}
	syn := synopsis.New(synopsis.Options{
		Kind:        matchset.KindSets,
		NoReservoir: true,
	})
	return &WindowEstimator{
		window: window,
		syn:    syn,
		sel:    selectivity.New(syn),
		parse:  parse,
	}
}

// Window returns the configured window size.
func (e *WindowEstimator) Window() int { return e.window }

// Len returns the number of documents currently in the window.
func (e *WindowEstimator) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.live)
}

// ObserveTree slides the window forward by one document.
func (e *WindowEstimator) ObserveTree(t *xmltree.Tree) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.syn.Insert(t)
	e.live = append(e.live, id)
	for len(e.live) > e.window {
		oldest := e.live[0]
		e.live = e.live[1:]
		if err := e.syn.RemoveDocument(oldest); err != nil {
			// Sets mode always supports removal; reaching here is a
			// programming error worth surfacing loudly.
			panic(fmt.Sprintf("core: window eviction failed: %v", err))
		}
	}
	return id
}

// ObserveXML parses one document from r and slides the window.
func (e *WindowEstimator) ObserveXML(r io.Reader) (uint64, error) {
	t, err := xmltree.Parse(r, e.parse)
	if err != nil {
		return 0, fmt.Errorf("core: window observe: %w", err)
	}
	return e.ObserveTree(t), nil
}

// Selectivity returns the exact fraction of window documents matching p
// (exact up to skeleton semantics).
func (e *WindowEstimator) Selectivity(p *pattern.Pattern) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.sel.P(p)
}

// Similarity returns metric m over the window.
func (e *WindowEstimator) Similarity(m metrics.Metric, p, q *pattern.Pattern) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return metrics.Similarity(e.sel, m, p, q)
}

// Stats returns the synopsis size statistics for the current window.
func (e *WindowEstimator) Stats() synopsis.Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.syn.Stats()
}
