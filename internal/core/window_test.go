package core

import (
	"math"
	"strings"
	"testing"

	"treesim/internal/metrics"
	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

func obs(t *testing.T, e *WindowEstimator, spec string) {
	t.Helper()
	tr, err := xmltree.ParseCompact(spec)
	if err != nil {
		t.Fatal(err)
	}
	e.ObserveTree(tr)
}

func TestWindowSlides(t *testing.T) {
	e := NewWindowEstimator(3, xmltree.ParseOptions{})
	p := pattern.MustParse("/a/x")
	// Fill with x docs.
	for i := 0; i < 3; i++ {
		obs(t, e, "a(x)")
	}
	if got := e.Selectivity(p); got != 1 {
		t.Fatalf("P = %v, want 1", got)
	}
	// Slide in y docs; x docs expire one by one.
	obs(t, e, "a(y)")
	if got := e.Selectivity(p); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("P after 1 slide = %v, want 2/3", got)
	}
	obs(t, e, "a(y)")
	obs(t, e, "a(y)")
	if got := e.Selectivity(p); got != 0 {
		t.Errorf("P after full turnover = %v, want 0", got)
	}
	if e.Len() != 3 {
		t.Errorf("Len = %d, want 3", e.Len())
	}
	// The expired structure must be pruned from the synopsis.
	if e.Stats().Nodes != 3 { // root, a, y
		t.Errorf("nodes = %d, want 3 (expired paths pruned)", e.Stats().Nodes)
	}
}

func TestWindowSimilarityDrift(t *testing.T) {
	e := NewWindowEstimator(4, xmltree.ParseOptions{})
	p := pattern.MustParse("//x")
	q := pattern.MustParse("//y")
	// Phase 1: x and y always co-occur.
	for i := 0; i < 4; i++ {
		obs(t, e, "a(x,y)")
	}
	if got := e.Similarity(metrics.M3, p, q); got != 1 {
		t.Fatalf("phase-1 M3 = %v, want 1", got)
	}
	// Phase 2: interests diverge; the window forgets the old regime.
	for i := 0; i < 4; i++ {
		obs(t, e, "a(x)")
	}
	if got := e.Similarity(metrics.M3, p, q); got != 0 {
		t.Errorf("phase-2 M3 = %v, want 0 (drift forgotten)", got)
	}
}

func TestWindowObserveXML(t *testing.T) {
	e := NewWindowEstimator(2, xmltree.ParseOptions{})
	if _, err := e.ObserveXML(strings.NewReader("<a><b/></a>")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ObserveXML(strings.NewReader("<bad")); err == nil {
		t.Error("bad XML should error")
	}
	if got := e.Selectivity(pattern.MustParse("/a/b")); got != 1 {
		t.Errorf("P = %v, want 1", got)
	}
	if e.Window() != 2 {
		t.Errorf("Window = %d", e.Window())
	}
}

func TestWindowPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewWindowEstimator(0, xmltree.ParseOptions{})
}
