// Package corpus loads and stores XML document collections on disk,
// shared by the command-line tools: a corpus is a directory of .xml
// files, read in deterministic (lexicographic) order.
package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"treesim/internal/xmltree"
)

// LoadDir parses every .xml file in dir (non-recursive), in
// lexicographic order.
func LoadDir(dir string, opts xmltree.ParseOptions) ([]*xmltree.Tree, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".xml" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("corpus: no .xml files in %s", dir)
	}
	sort.Strings(names)
	docs := make([]*xmltree.Tree, 0, len(names))
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
		t, err := xmltree.Parse(f, opts)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", name, err)
		}
		docs = append(docs, t)
	}
	return docs, nil
}

// SaveDir writes the documents as doc00000.xml … into dir, creating it
// if needed.
func SaveDir(dir string, docs []*xmltree.Tree, indent bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	for i, doc := range docs {
		s, err := xmltree.XMLString(doc, indent)
		if err != nil {
			return fmt.Errorf("corpus: doc %d: %w", i, err)
		}
		path := filepath.Join(dir, fmt.Sprintf("doc%05d.xml", i))
		if err := os.WriteFile(path, []byte(s+"\n"), 0o644); err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
	}
	return nil
}
