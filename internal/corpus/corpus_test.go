package corpus

import (
	"os"
	"path/filepath"
	"testing"

	"treesim/internal/xmltree"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var docs []*xmltree.Tree
	for _, s := range []string{"a(b,c)", "x(y(z))", "solo"} {
		tr, err := xmltree.ParseCompact(s)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, tr)
	}
	if err := SaveDir(dir, docs, false); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(docs) {
		t.Fatalf("loaded %d docs, want %d", len(got), len(docs))
	}
	for i := range docs {
		if !got[i].Root.Equal(docs[i].Root) {
			t.Errorf("doc %d: %s != %s", i, got[i], docs[i])
		}
	}
}

func TestLoadDirDeterministicOrder(t *testing.T) {
	dir := t.TempDir()
	// Write files in non-lexicographic creation order.
	for _, f := range []struct{ name, body string }{
		{"b.xml", "<b/>"},
		{"a.xml", "<a/>"},
		{"c.xml", "<c/>"},
	} {
		if err := os.WriteFile(filepath.Join(dir, f.name), []byte(f.body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	docs, err := LoadDir(dir, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i, d := range docs {
		if d.Root.Label != want[i] {
			t.Errorf("doc %d root = %q, want %q", i, d.Root.Label, want[i])
		}
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir("/nonexistent-dir-xyz", xmltree.ParseOptions{}); err == nil {
		t.Error("missing dir should error")
	}
	empty := t.TempDir()
	if _, err := LoadDir(empty, xmltree.ParseOptions{}); err == nil {
		t.Error("empty dir should error")
	}
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "bad.xml"), []byte("<unclosed"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(bad, xmltree.ParseOptions{}); err == nil {
		t.Error("malformed XML should error")
	}
}

func TestLoadDirIgnoresNonXML(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.xml"), []byte("<a/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	docs, err := LoadDir(dir, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Errorf("loaded %d docs, want 1", len(docs))
	}
}
