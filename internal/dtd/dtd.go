// Package dtd models Document Type Definitions: named elements with
// content models (sequences, choices, repetition quantifiers, PCDATA).
// It provides a parser for the <!ELEMENT …> subset of the DTD syntax, a
// serializer, and a deterministic synthesizer used to reproduce the
// paper's two evaluation schemas:
//
//   - a "NITF-like" news DTD (123 elements, choice-rich and optional,
//     mildly recursive — high structural variability), and
//   - an "xCBL-like" business-document DTD (569 elements, rigid
//     sequences — low variability).
//
// The real NITF and xCBL DTDs are not redistributable here; DESIGN.md
// documents why these synthetic stand-ins preserve the experimental
// regimes that matter (element counts, variability, selectivity ranges).
package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// Quant is an occurrence quantifier on a content particle.
type Quant int

const (
	// One means exactly once (no suffix).
	One Quant = iota
	// Opt means zero or one ("?").
	Opt
	// Star means zero or more ("*").
	Star
	// Plus means one or more ("+").
	Plus
)

func (q Quant) String() string {
	switch q {
	case Opt:
		return "?"
	case Star:
		return "*"
	case Plus:
		return "+"
	default:
		return ""
	}
}

// ContentKind discriminates content-model nodes.
type ContentKind int

const (
	// KindEmpty is the EMPTY content model.
	KindEmpty ContentKind = iota
	// KindPCData is character data (#PCDATA).
	KindPCData
	// KindAny is the ANY content model.
	KindAny
	// KindName references a child element.
	KindName
	// KindSeq is an ordered sequence "(a, b, c)".
	KindSeq
	// KindChoice is an alternation "(a | b | c)".
	KindChoice
)

// Content is a content-model node. Quant applies to the whole node.
type Content struct {
	Kind  ContentKind
	Name  string     // KindName only
	Parts []*Content // KindSeq / KindChoice only
	Quant Quant
}

// Element is a named element declaration.
type Element struct {
	Name    string
	Content *Content
}

// DTD is a set of element declarations with a designated root.
type DTD struct {
	// Name describes the DTD (e.g. "nitf-like").
	Name string
	// RootName is the document root element.
	RootName string

	elements map[string]*Element
	order    []string
}

// NewDTD returns an empty DTD with the given descriptive name and root
// element name. The root element must still be declared with Declare.
func NewDTD(name, root string) *DTD {
	return &DTD{Name: name, RootName: root, elements: make(map[string]*Element)}
}

// Declare adds an element declaration. Redeclaring a name replaces its
// content model.
func (d *DTD) Declare(name string, content *Content) *Element {
	e, ok := d.elements[name]
	if !ok {
		e = &Element{Name: name}
		d.elements[name] = e
		d.order = append(d.order, name)
	}
	e.Content = content
	return e
}

// Element returns the declaration of name, or nil.
func (d *DTD) Element(name string) *Element { return d.elements[name] }

// Len returns the number of declared elements.
func (d *DTD) Len() int { return len(d.order) }

// Names returns the declared element names in declaration order.
func (d *DTD) Names() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// Validate checks that the root and every referenced element are
// declared.
func (d *DTD) Validate() error {
	if d.RootName == "" {
		return fmt.Errorf("dtd %s: no root element", d.Name)
	}
	if d.Element(d.RootName) == nil {
		return fmt.Errorf("dtd %s: root element %q not declared", d.Name, d.RootName)
	}
	for _, name := range d.order {
		e := d.elements[name]
		if e.Content == nil {
			return fmt.Errorf("dtd %s: element %q has no content model", d.Name, name)
		}
		if err := d.validateContent(name, e.Content); err != nil {
			return err
		}
	}
	return nil
}

func (d *DTD) validateContent(owner string, c *Content) error {
	switch c.Kind {
	case KindEmpty, KindPCData, KindAny:
		return nil
	case KindName:
		if d.Element(c.Name) == nil {
			return fmt.Errorf("dtd %s: element %q references undeclared %q", d.Name, owner, c.Name)
		}
		return nil
	case KindSeq, KindChoice:
		if len(c.Parts) == 0 {
			return fmt.Errorf("dtd %s: element %q has an empty group", d.Name, owner)
		}
		for _, p := range c.Parts {
			if err := d.validateContent(owner, p); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("dtd %s: element %q has unknown content kind %d", d.Name, owner, int(c.Kind))
	}
}

// ChildNames returns the set of element names that may appear as direct
// children of the named element, sorted. The workload generator walks
// this relation.
func (d *DTD) ChildNames(name string) []string {
	e := d.Element(name)
	if e == nil || e.Content == nil {
		return nil
	}
	set := make(map[string]struct{})
	collectNames(e.Content, set)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func collectNames(c *Content, set map[string]struct{}) {
	switch c.Kind {
	case KindName:
		set[c.Name] = struct{}{}
	case KindSeq, KindChoice:
		for _, p := range c.Parts {
			collectNames(p, set)
		}
	}
}

// HasPCData reports whether the element's content model allows
// character data (text values).
func (d *DTD) HasPCData(name string) bool {
	e := d.Element(name)
	if e == nil || e.Content == nil {
		return false
	}
	var rec func(c *Content) bool
	rec = func(c *Content) bool {
		switch c.Kind {
		case KindPCData, KindAny:
			return true
		case KindSeq, KindChoice:
			for _, p := range c.Parts {
				if rec(p) {
					return true
				}
			}
		}
		return false
	}
	return rec(e.Content)
}

// Reachable returns the element names reachable from the root (root
// included), sorted.
func (d *DTD) Reachable() []string {
	seen := make(map[string]struct{})
	var rec func(name string)
	rec = func(name string) {
		if _, ok := seen[name]; ok {
			return
		}
		seen[name] = struct{}{}
		for _, c := range d.ChildNames(name) {
			rec(c)
		}
	}
	if d.Element(d.RootName) != nil {
		rec(d.RootName)
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MinDepths returns, for every element, the minimum document depth
// needed to expand it (a leaf element has depth 1). The document
// generator uses this to respect its depth budget when forced to pick
// among choice alternatives.
func (d *DTD) MinDepths() map[string]int {
	const inf = 1 << 20
	depth := make(map[string]int, len(d.order))
	for _, n := range d.order {
		depth[n] = inf
	}
	var contentDepth func(c *Content) int
	contentDepth = func(c *Content) int {
		switch c.Kind {
		case KindEmpty, KindPCData, KindAny:
			return 0
		case KindName:
			if c.Quant == Opt || c.Quant == Star {
				return 0 // may be omitted entirely
			}
			return depth[c.Name]
		case KindSeq:
			max := 0
			for _, p := range c.Parts {
				if v := contentDepth(p); v > max {
					max = v
				}
			}
			if c.Quant == Opt || c.Quant == Star {
				return 0
			}
			return max
		case KindChoice:
			min := inf
			for _, p := range c.Parts {
				if v := contentDepth(p); v < min {
					min = v
				}
			}
			if c.Quant == Opt || c.Quant == Star {
				return 0
			}
			return min
		default:
			return 0
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range d.order {
			e := d.elements[n]
			v := 1 + contentDepth(e.Content)
			if v < depth[n] {
				depth[n] = v
				changed = true
			}
		}
	}
	return depth
}

// String serializes the DTD in <!ELEMENT …> syntax.
func (d *DTD) String() string {
	var b strings.Builder
	for _, name := range d.order {
		e := d.elements[name]
		fmt.Fprintf(&b, "<!ELEMENT %s %s>\n", name, e.Content.String())
	}
	return b.String()
}

// String serializes a content model.
func (c *Content) String() string {
	var b strings.Builder
	c.write(&b, true)
	return b.String()
}

func (c *Content) write(b *strings.Builder, top bool) {
	switch c.Kind {
	case KindEmpty:
		b.WriteString("EMPTY")
	case KindAny:
		b.WriteString("ANY")
	case KindPCData:
		if top {
			b.WriteString("(#PCDATA)")
		} else {
			b.WriteString("#PCDATA")
		}
	case KindName:
		b.WriteString(c.Name)
		b.WriteString(c.Quant.String())
	case KindSeq, KindChoice:
		sep := ", "
		if c.Kind == KindChoice {
			sep = " | "
		}
		b.WriteByte('(')
		for i, p := range c.Parts {
			if i > 0 {
				b.WriteString(sep)
			}
			p.write(b, false)
		}
		b.WriteByte(')')
		b.WriteString(c.Quant.String())
	}
}

// Convenience constructors for content models.

// Name references a child element with a quantifier.
func Name(name string, q Quant) *Content { return &Content{Kind: KindName, Name: name, Quant: q} }

// Seq builds an ordered sequence.
func Seq(parts ...*Content) *Content { return &Content{Kind: KindSeq, Parts: parts} }

// SeqQ builds a quantified sequence.
func SeqQ(q Quant, parts ...*Content) *Content {
	return &Content{Kind: KindSeq, Parts: parts, Quant: q}
}

// Choice builds an alternation.
func Choice(parts ...*Content) *Content { return &Content{Kind: KindChoice, Parts: parts} }

// ChoiceQ builds a quantified alternation.
func ChoiceQ(q Quant, parts ...*Content) *Content {
	return &Content{Kind: KindChoice, Parts: parts, Quant: q}
}

// Empty is the EMPTY content model.
func Empty() *Content { return &Content{Kind: KindEmpty} }

// PCData is the (#PCDATA) content model.
func PCData() *Content { return &Content{Kind: KindPCData} }
