package dtd

import (
	"reflect"
	"strings"
	"testing"
)

func TestDeclareAndValidate(t *testing.T) {
	d := NewDTD("t", "a")
	d.Declare("a", Seq(Name("b", One), Name("c", Opt)))
	d.Declare("b", PCData())
	d.Declare("c", Empty())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
	if got := d.ChildNames("a"); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Errorf("ChildNames(a) = %v", got)
	}
}

func TestValidateErrors(t *testing.T) {
	d := NewDTD("t", "a")
	d.Declare("a", Name("missing", One))
	if err := d.Validate(); err == nil {
		t.Error("undeclared reference should fail validation")
	}
	d2 := NewDTD("t", "nope")
	d2.Declare("a", Empty())
	if err := d2.Validate(); err == nil {
		t.Error("undeclared root should fail validation")
	}
	d3 := NewDTD("t", "")
	if err := d3.Validate(); err == nil {
		t.Error("empty root should fail validation")
	}
}

func TestContentString(t *testing.T) {
	cases := []struct {
		c    *Content
		want string
	}{
		{Empty(), "EMPTY"},
		{PCData(), "(#PCDATA)"},
		{Name("a", Star), "a*"},
		{Seq(Name("a", One), Name("b", Opt)), "(a, b?)"},
		{Choice(Name("a", One), Name("b", Plus)), "(a | b+)"},
		{SeqQ(Star, Name("a", One), ChoiceQ(Opt, Name("b", One), Name("c", One))), "(a, (b | c)?)*"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `
<!-- a comment -->
<!ELEMENT media (book*, CD*)>
<!ELEMENT book (author+, title)>
<!ELEMENT CD (composer?, title, interpreter*)>
<!ELEMENT author (first?, last)>
<!ELEMENT composer (first?, last)>
<!ELEMENT interpreter (ensemble | soloist)>
<!ATTLIST book isbn CDATA #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT first (#PCDATA)>
<!ELEMENT last (#PCDATA)>
<!ELEMENT ensemble (#PCDATA)>
<!ELEMENT soloist (#PCDATA)>
`
	d, err := Parse("media", "", src)
	if err != nil {
		t.Fatal(err)
	}
	if d.RootName != "media" {
		t.Errorf("root = %q, want media", d.RootName)
	}
	if d.Len() != 11 {
		t.Errorf("Len = %d, want 11", d.Len())
	}
	if got := d.Element("CD").Content.String(); got != "(composer?, title, interpreter*)" {
		t.Errorf("CD content = %q", got)
	}
	// Serialize and reparse.
	d2, err := Parse("media2", "media", d.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if d2.Len() != d.Len() {
		t.Errorf("reparse Len = %d, want %d", d2.Len(), d.Len())
	}
	for _, n := range d.Names() {
		if d2.Element(n) == nil {
			t.Errorf("reparse lost element %q", n)
		}
	}
}

func TestParseMixedContent(t *testing.T) {
	d, err := Parse("t", "", `<!ELEMENT p (#PCDATA | em | strong)*><!ELEMENT em (#PCDATA)><!ELEMENT strong EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	c := d.Element("p").Content
	if c.Kind != KindChoice || c.Quant != Star || len(c.Parts) != 2 {
		t.Errorf("mixed content parsed as %s", c)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"<!ELEMENT >",
		"<!ELEMENT a>",
		"<!ELEMENT a (b,|c)>",
		"<!ELEMENT a (b c)>",
		"<!ELEMENT a (b",
		"garbage",
	}
	for _, src := range bad {
		if _, err := Parse("t", "", src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestMinDepths(t *testing.T) {
	d := NewDTD("t", "a")
	d.Declare("a", Seq(Name("b", One), Name("deep", Opt)))
	d.Declare("b", PCData())
	d.Declare("deep", Name("deeper", One))
	d.Declare("deeper", Empty())
	md := d.MinDepths()
	// a needs itself + mandatory b => depth 2 (deep is optional).
	if md["a"] != 2 {
		t.Errorf("MinDepth(a) = %d, want 2", md["a"])
	}
	if md["b"] != 1 || md["deeper"] != 1 {
		t.Errorf("leaf depths = %d,%d, want 1,1", md["b"], md["deeper"])
	}
	if md["deep"] != 2 {
		t.Errorf("MinDepth(deep) = %d, want 2", md["deep"])
	}
}

func TestMinDepthsRecursive(t *testing.T) {
	// Optional recursion must not blow up min depth.
	d := NewDTD("t", "block")
	d.Declare("block", Seq(Name("p", One), Name("block", Star)))
	d.Declare("p", PCData())
	md := d.MinDepths()
	if md["block"] != 2 {
		t.Errorf("MinDepth(block) = %d, want 2", md["block"])
	}
}

func TestSynthesizedShapes(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    *DTD
		n    int
	}{
		{"nitf-like", NITFLike(), 123},
		{"xcbl-like", XCBLLike(), 569},
	} {
		if err := tc.d.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := tc.d.Len(); got != tc.n {
			t.Errorf("%s: %d elements, want %d", tc.name, got, tc.n)
		}
		// Every element must be reachable from the root.
		if got := len(tc.d.Reachable()); got != tc.n {
			t.Errorf("%s: only %d/%d elements reachable", tc.name, got, tc.n)
		}
	}
}

func TestSynthesisDeterministic(t *testing.T) {
	a, b := NITFLike(), NITFLike()
	if a.String() != b.String() {
		t.Error("NITFLike is not deterministic")
	}
}

func TestSynthesisShapeDifference(t *testing.T) {
	// News DTDs must contain choices and stars; business DTDs must be
	// dominated by plain sequences.
	news, biz := NITFLike().String(), XCBLLike().String()
	if !strings.Contains(news, "|") {
		t.Error("news-like DTD has no choices")
	}
	newsOpt := strings.Count(news, "?") + strings.Count(news, "*")
	bizOpt := strings.Count(biz, "?") + strings.Count(biz, "*")
	// Normalize per element.
	newsRate := float64(newsOpt) / 123
	bizRate := float64(bizOpt) / 569
	if newsRate <= bizRate {
		t.Errorf("news optionality %.2f should exceed business %.2f", newsRate, bizRate)
	}
}

func TestMediaDTD(t *testing.T) {
	d := Media()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.ChildNames("CD"); !reflect.DeepEqual(got, []string{"composer", "interpreter", "title"}) {
		t.Errorf("ChildNames(CD) = %v", got)
	}
}

func TestSynthesizePanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Synthesize(SynthOptions{Elements: 1})
}
