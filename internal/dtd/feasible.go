package dtd

import "treesim/internal/pattern"

// Feasible reports whether any document valid for the DTD could match
// the pattern: the pattern's label structure must be embeddable in the
// DTD's parent-child graph. The check is sound and complete for the
// structural level it models (element nesting; content-model ordering
// and cardinality are ignored, so a pattern may be Feasible yet match
// no finite corpus).
//
// This implements the enhancement sketched in the paper's footnote 2:
// with a DTD at hand, structurally impossible (negative) queries can be
// rejected without consulting the synopsis at all.
func Feasible(d *DTD, p *pattern.Pattern) bool {
	if p == nil || p.Root == nil {
		return false
	}
	if err := d.Validate(); err != nil {
		return false
	}
	f := &feasibility{
		d:    d,
		kids: make(map[string][]string),
		memo: make(map[feaKey]feaState),
	}
	for _, name := range d.Names() {
		f.kids[name] = d.ChildNames(name)
	}
	for _, v := range p.Root.Children {
		if !f.rootConstraint(d.RootName, v) {
			return false
		}
	}
	return true
}

type feaKey struct {
	elem string
	node *pattern.Node
}

// feaState is the memo entry state for the least-fixed-point evaluation
// over the (possibly cyclic) DTD graph.
type feaState int8

const (
	feaUnknown feaState = iota
	feaInProgress
	feaFalse
	feaTrue
)

type feasibility struct {
	d    *DTD
	kids map[string][]string
	memo map[feaKey]feaState
}

// rootConstraint mirrors the exact matcher's root semantics over the
// DTD graph: a tag child constrains the root element's name; "//"
// re-roots at any element reachable from (or equal to) the context
// element.
func (f *feasibility) rootConstraint(elem string, v *pattern.Node) bool {
	switch v.Label {
	case pattern.Descendant:
		c := v.Children[0]
		ok := false
		f.forEachDescOrSelf(elem, func(e string) bool {
			if f.rootConstraint(e, c) {
				ok = true
				return false
			}
			return true
		})
		return ok
	case pattern.Wildcard:
		for _, v2 := range v.Children {
			if r, _ := f.sat(elem, v2); !r {
				return false
			}
		}
		return true
	default:
		if elem != v.Label {
			return false
		}
		for _, v2 := range v.Children {
			if r, _ := f.sat(elem, v2); !r {
				return false
			}
		}
		return true
	}
}

// sat reports whether constraint v can hold at some document node of
// element type elem, i.e. whether the pair is in the least fixed point
// of the feasibility equations over the (cyclic) DTD graph.
//
// The second result reports whether the computation depended on an
// in-progress (guarded) entry. In a monotone system, derived TRUE
// results are always sound and cacheable; FALSE results are cacheable
// only when they did not rely on a guard's provisional false, otherwise
// they stay uncached and are recomputed in an outer context.
func (f *feasibility) sat(elem string, v *pattern.Node) (res, provisional bool) {
	key := feaKey{elem, v}
	switch f.memo[key] {
	case feaTrue:
		return true, false
	case feaFalse:
		return false, false
	case feaInProgress:
		return false, true
	}
	f.memo[key] = feaInProgress
	res, provisional = f.satCompute(elem, v)
	switch {
	case res:
		f.memo[key] = feaTrue
		provisional = false
	case !provisional:
		f.memo[key] = feaFalse
	default:
		f.memo[key] = feaUnknown // provisional false: do not cache
	}
	return res, provisional
}

func (f *feasibility) satCompute(elem string, v *pattern.Node) (res, provisional bool) {
	// allAt evaluates the conjunction of v's children at element e.
	allAt := func(e string) (bool, bool) {
		prov := false
		for _, v2 := range v.Children {
			r, p := f.sat(e, v2)
			prov = prov || p
			if !r {
				return false, prov
			}
		}
		return true, prov
	}
	switch v.Label {
	case pattern.Descendant:
		f.forEachDescOrSelf(elem, func(e string) bool {
			r, p := allAt(e)
			provisional = provisional || p
			if r {
				res = true
				return false
			}
			return true
		})
	case pattern.Wildcard:
		for _, child := range f.kids[elem] {
			r, p := allAt(child)
			provisional = provisional || p
			if r {
				res = true
				break
			}
		}
	default:
		for _, child := range f.kids[elem] {
			if child != v.Label {
				continue
			}
			res, provisional = allAt(child)
			break
		}
	}
	if res {
		provisional = false
	}
	return res, provisional
}

// forEachDescOrSelf visits elem and every element reachable below it,
// stopping early when fn returns false.
func (f *feasibility) forEachDescOrSelf(elem string, fn func(string) bool) {
	seen := make(map[string]bool)
	stack := []string{elem}
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[e] {
			continue
		}
		seen[e] = true
		if !fn(e) {
			return
		}
		stack = append(stack, f.kids[e]...)
	}
}
