package dtd

import (
	"fmt"
	"strings"
)

// Parse reads a DTD from the <!ELEMENT …> subset of the DTD syntax.
// Attribute lists, entities, comments and conditional sections are
// skipped. The first declared element becomes the root unless rootName
// is non-empty.
//
// Supported content syntax:
//
//	EMPTY | ANY | (#PCDATA) | (#PCDATA | a | b)* | group
//	group = '(' particle (',' particle)* ')' quant?
//	      | '(' particle ('|' particle)+ ')' quant?
//	particle = name quant? | group | #PCDATA
//	quant = '?' | '*' | '+'
func Parse(name, rootName, src string) (*DTD, error) {
	p := &dtdParser{in: src}
	var decls []*Element
	for {
		p.skipIrrelevant()
		if p.eof() {
			break
		}
		e, err := p.parseElementDecl()
		if err != nil {
			return nil, fmt.Errorf("dtd %s: %w", name, err)
		}
		decls = append(decls, e)
	}
	if len(decls) == 0 {
		return nil, fmt.Errorf("dtd %s: no element declarations", name)
	}
	if rootName == "" {
		rootName = decls[0].Name
	}
	d := NewDTD(name, rootName)
	for _, e := range decls {
		d.Declare(e.Name, e.Content)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

type dtdParser struct {
	in  string
	pos int
}

func (p *dtdParser) eof() bool { return p.pos >= len(p.in) }

func (p *dtdParser) skipSpace() {
	for !p.eof() && isSpace(p.in[p.pos]) {
		p.pos++
	}
}

// skipIrrelevant advances past whitespace, comments and non-ELEMENT
// declarations until the next "<!ELEMENT" or EOF.
func (p *dtdParser) skipIrrelevant() {
	for {
		p.skipSpace()
		if p.eof() {
			return
		}
		rest := p.in[p.pos:]
		switch {
		case strings.HasPrefix(rest, "<!--"):
			end := strings.Index(rest, "-->")
			if end < 0 {
				p.pos = len(p.in)
				return
			}
			p.pos += end + 3
		case strings.HasPrefix(rest, "<!ELEMENT"):
			return
		case strings.HasPrefix(rest, "<!"):
			// Skip other declarations (<!ATTLIST, <!ENTITY, …).
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				p.pos = len(p.in)
				return
			}
			p.pos += end + 1
		default:
			// Unknown junk: stop at it so the caller reports an error.
			return
		}
	}
}

func (p *dtdParser) parseElementDecl() (*Element, error) {
	if !strings.HasPrefix(p.in[p.pos:], "<!ELEMENT") {
		return nil, fmt.Errorf("expected <!ELEMENT at offset %d", p.pos)
	}
	p.pos += len("<!ELEMENT")
	p.skipSpace()
	name := p.parseName()
	if name == "" {
		return nil, fmt.Errorf("expected element name at offset %d", p.pos)
	}
	p.skipSpace()
	c, err := p.parseContent()
	if err != nil {
		return nil, fmt.Errorf("element %s: %w", name, err)
	}
	p.skipSpace()
	if p.eof() || p.in[p.pos] != '>' {
		return nil, fmt.Errorf("element %s: expected '>' at offset %d", name, p.pos)
	}
	p.pos++
	return &Element{Name: name, Content: c}, nil
}

func (p *dtdParser) parseName() string {
	start := p.pos
	for !p.eof() && isNameChar(p.in[p.pos]) {
		p.pos++
	}
	return p.in[start:p.pos]
}

func (p *dtdParser) parseContent() (*Content, error) {
	switch {
	case strings.HasPrefix(p.in[p.pos:], "EMPTY"):
		p.pos += len("EMPTY")
		return Empty(), nil
	case strings.HasPrefix(p.in[p.pos:], "ANY"):
		p.pos += len("ANY")
		return &Content{Kind: KindAny}, nil
	case !p.eof() && p.in[p.pos] == '(':
		return p.parseGroup()
	default:
		return nil, fmt.Errorf("expected content model at offset %d", p.pos)
	}
}

func (p *dtdParser) parseGroup() (*Content, error) {
	if p.in[p.pos] != '(' {
		return nil, fmt.Errorf("expected '(' at offset %d", p.pos)
	}
	p.pos++
	var parts []*Content
	sep := byte(0)
	hasPCData := false
	for {
		p.skipSpace()
		part, err := p.parseParticle()
		if err != nil {
			return nil, err
		}
		if part.Kind == KindPCData {
			hasPCData = true
		} else {
			parts = append(parts, part)
		}
		p.skipSpace()
		if p.eof() {
			return nil, fmt.Errorf("unterminated group")
		}
		switch p.in[p.pos] {
		case ',', '|':
			if sep == 0 {
				sep = p.in[p.pos]
			} else if sep != p.in[p.pos] {
				return nil, fmt.Errorf("mixed ',' and '|' in one group at offset %d", p.pos)
			}
			p.pos++
		case ')':
			p.pos++
			q := p.parseQuant()
			var c *Content
			switch {
			case hasPCData && len(parts) == 0:
				c = PCData()
			case hasPCData:
				// Mixed content (#PCDATA | a | b)*: model as a starred
				// choice of the element parts.
				c = &Content{Kind: KindChoice, Parts: parts, Quant: Star}
				return c, nil
			case sep == '|':
				c = &Content{Kind: KindChoice, Parts: parts}
			case len(parts) == 1:
				c = parts[0]
				// A single-particle group: the group quantifier wraps
				// the particle. Compose conservatively: an outer * or ?
				// dominates.
				if q != One {
					if c.Quant == One {
						c.Quant = q
						return c, nil
					}
					return &Content{Kind: KindSeq, Parts: []*Content{c}, Quant: q}, nil
				}
				return c, nil
			default:
				c = &Content{Kind: KindSeq, Parts: parts}
			}
			c.Quant = q
			return c, nil
		default:
			return nil, fmt.Errorf("expected ',', '|' or ')' at offset %d", p.pos)
		}
	}
}

func (p *dtdParser) parseParticle() (*Content, error) {
	if p.eof() {
		return nil, fmt.Errorf("unexpected end of input in group")
	}
	if p.in[p.pos] == '(' {
		return p.parseGroup()
	}
	if strings.HasPrefix(p.in[p.pos:], "#PCDATA") {
		p.pos += len("#PCDATA")
		return PCData(), nil
	}
	name := p.parseName()
	if name == "" {
		return nil, fmt.Errorf("expected name at offset %d", p.pos)
	}
	return Name(name, p.parseQuant()), nil
}

func (p *dtdParser) parseQuant() Quant {
	if p.eof() {
		return One
	}
	switch p.in[p.pos] {
	case '?':
		p.pos++
		return Opt
	case '*':
		p.pos++
		return Star
	case '+':
		p.pos++
		return Plus
	}
	return One
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '-' || c == '_' || c == '.' || c == ':'
}
