package dtd

import (
	"fmt"
	"math/rand"
)

// Shape selects the structural character of a synthesized DTD.
type Shape int

const (
	// ShapeNews mimics document-centric news schemas (NITF): rich in
	// choices and optional/repeatable content, mildly recursive — high
	// structural variability across documents.
	ShapeNews Shape = iota
	// ShapeBusiness mimics data-centric business schemas (xCBL):
	// rigid sequences with mostly mandatory children — low variability.
	ShapeBusiness
)

// SynthOptions configures Synthesize.
type SynthOptions struct {
	// Name is the DTD's descriptive name.
	Name string
	// Elements is the number of element declarations to produce.
	Elements int
	// Levels is the depth of the element hierarchy (≥ 2).
	Levels int
	// Seed makes the construction deterministic.
	Seed int64
	// Shape selects news-like or business-like structure.
	Shape Shape
}

// Synthesize deterministically constructs a DTD with the requested
// element count and shape. Every element is reachable from the root: the
// hierarchy is built level by level with each element assigned a primary
// parent, plus shape-dependent extra references (choices, repetitions,
// and — for news — occasional optional recursion).
func Synthesize(opts SynthOptions) *DTD {
	if opts.Elements < 2 {
		panic("dtd: need at least 2 elements")
	}
	if opts.Levels < 2 {
		opts.Levels = 2
	}
	if opts.Levels > opts.Elements {
		opts.Levels = opts.Elements
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	names := elementNames(opts.Shape, opts.Elements)

	// Distribute elements over levels: root alone at level 0, the rest
	// spread with gently growing level sizes.
	sizes := levelSizes(opts.Elements, opts.Levels)
	levels := make([][]string, opts.Levels)
	idx := 0
	for l := 0; l < opts.Levels; l++ {
		levels[l] = names[idx : idx+sizes[l]]
		idx += sizes[l]
	}

	d := NewDTD(opts.Name, names[0])
	// Assign each non-root element a primary parent on the previous
	// level (round-robin keeps it deterministic and reaches everything).
	kids := make(map[string][]string)
	for l := 1; l < opts.Levels; l++ {
		parents := levels[l-1]
		for i, child := range levels[l] {
			p := parents[i%len(parents)]
			kids[p] = append(kids[p], child)
		}
	}

	for l := 0; l < opts.Levels; l++ {
		for _, name := range levels[l] {
			k := kids[name]
			var extras []string
			if l+1 < opts.Levels {
				// Shape-dependent cross references within the next level.
				extraProb := 0.30
				if opts.Shape == ShapeBusiness {
					extraProb = 0.10
				}
				for rng.Float64() < extraProb && len(levels[l+1]) > 0 {
					extras = append(extras, levels[l+1][rng.Intn(len(levels[l+1]))])
				}
			}
			var recursive string
			if opts.Shape == ShapeNews && l > 0 && rng.Float64() < 0.08 {
				// Optional recursion to an ancestor-or-self level keeps
				// news content models finitely expandable.
				rl := rng.Intn(l + 1)
				recursive = levels[rl][rng.Intn(len(levels[rl]))]
			}
			d.Declare(name, contentModel(rng, opts.Shape, k, extras, recursive))
		}
	}
	if err := d.Validate(); err != nil {
		panic(fmt.Sprintf("dtd: synthesized DTD invalid: %v", err))
	}
	return d
}

// contentModel builds the content model for one element given its
// assigned children, extra references, and optional recursive
// reference.
func contentModel(rng *rand.Rand, shape Shape, kids, extras []string, recursive string) *Content {
	all := append(append([]string{}, kids...), extras...)
	if len(all) == 0 {
		// Leaf element.
		if rng.Float64() < 0.5 {
			return PCData()
		}
		return Empty()
	}
	var parts []*Content
	if shape == ShapeNews {
		// Optionally bundle a few children into a starred choice.
		if len(all) >= 2 && rng.Float64() < 0.45 {
			n := 2 + rng.Intn(min(3, len(all)-1))
			var alts []*Content
			for _, c := range all[:n] {
				alts = append(alts, Name(c, One))
			}
			q := Star
			if rng.Float64() < 0.3 {
				q = Opt
			}
			parts = append(parts, ChoiceQ(q, alts...))
			all = all[n:]
		}
		for _, c := range all {
			parts = append(parts, Name(c, newsQuant(rng)))
		}
	} else {
		if len(all) >= 2 && rng.Float64() < 0.08 {
			parts = append(parts, Choice(Name(all[0], One), Name(all[1], One)))
			all = all[2:]
		}
		for _, c := range all {
			parts = append(parts, Name(c, businessQuant(rng)))
		}
	}
	if recursive != "" {
		parts = append(parts, Name(recursive, Star))
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return Seq(parts...)
}

func newsQuant(rng *rand.Rand) Quant {
	switch r := rng.Float64(); {
	case r < 0.25:
		return One
	case r < 0.65:
		return Opt
	case r < 0.9:
		return Star
	default:
		return Plus
	}
}

func businessQuant(rng *rand.Rand) Quant {
	// Business documents are dominated by mandatory fields; the
	// resulting high co-occurrence of sibling paths is what gives the
	// real xCBL corpus its extreme compressibility.
	switch r := rng.Float64(); {
	case r < 0.70:
		return One
	case r < 0.94:
		return Opt
	default:
		return Star
	}
}

func levelSizes(elements, levels int) []int {
	sizes := make([]int, levels)
	sizes[0] = 1
	remaining := elements - 1
	// Weight level l by l+1 so deeper levels hold more elements.
	totalW := 0
	for l := 1; l < levels; l++ {
		totalW += l + 1
	}
	assigned := 0
	for l := 1; l < levels; l++ {
		s := remaining * (l + 1) / totalW
		if s < 1 {
			s = 1
		}
		sizes[l] = s
		assigned += s
	}
	// Fix rounding drift on the last level.
	sizes[levels-1] += remaining - assigned
	if sizes[levels-1] < 1 {
		// Borrow from the largest level if rounding starved the last.
		for l := 1; l < levels-1 && sizes[levels-1] < 1; l++ {
			if sizes[l] > 1 {
				sizes[l]--
				sizes[levels-1]++
			}
		}
	}
	return sizes
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// newsVocab seeds realistic NITF-ish element names.
var newsVocab = []string{
	"nitf", "head", "title", "meta", "docdata", "doc-id", "date.issue",
	"date.release", "du-key", "urgency", "fixture", "body", "body.head",
	"hedline", "hl1", "hl2", "byline", "bytag", "distributor", "dateline",
	"location", "story.date", "abstract", "body.content", "block", "p",
	"em", "strong", "br", "hr", "a", "q", "sub", "sup", "pre", "media",
	"media-reference", "media-caption", "media-producer", "media-metadata",
	"caption", "tagline", "note", "table", "tr", "td", "th", "tbody",
	"thead", "tfoot", "col", "colgroup", "ol", "ul", "li", "dl", "dt",
	"dd", "bq", "credit", "datasource", "person", "org", "event",
	"function", "object.title", "virtloc", "classifier", "identified-content",
	"keyword", "key-list", "series", "revision-history", "rights",
	"rights.owner", "rights.startdate", "rights.enddate", "rights.agent",
	"rights.geography", "rights.type", "rights.limitations", "body.end",
	"pubdata", "ds", "fn", "lang", "num", "frac", "money", "chron",
	"postaddr", "state", "region", "country", "city", "alt-code",
	"nitf-table", "nitf-table-metadata", "nitf-table-summary", "nitf-col",
}

// businessVocab seeds realistic xCBL-ish element names.
var businessVocab = []string{
	"Order", "OrderHeader", "OrderNumber", "BuyerOrderNumber",
	"SellerOrderNumber", "OrderIssueDate", "OrderReferences",
	"AccountCode", "ContractReferences", "Contract", "ContractID",
	"OrderDates", "RequestedShipByDate", "RequestedDeliverByDate",
	"PromiseDate", "CancelAfterDate", "OrderParty", "BuyerParty",
	"SellerParty", "ShipToParty", "BillToParty", "Party", "PartyID",
	"NameAddress", "Name1", "Name2", "Street", "StreetSupplement1",
	"PostalCode", "City", "Region", "RegionCoded", "Country",
	"CountryCoded", "Contact", "ContactName", "ContactFunction",
	"ContactNumber", "ContactNumberValue", "ContactNumberTypeCoded",
	"OrderDetail", "ListOfItemDetail", "ItemDetail", "BaseItemDetail",
	"LineItemNum", "LineItemType", "ItemIdentifiers", "PartNumbers",
	"SellerPartNumber", "BuyerPartNumber", "ManufacturerPartNumber",
	"PartID", "PartNumber", "ItemDescription", "Quantity",
	"QuantityValue", "UnitOfMeasurement", "UOMCoded", "PricingDetail",
	"ListOfPrice", "Price", "UnitPrice", "UnitPriceValue", "Currency",
	"CurrencyCoded", "PriceBasisQuantity", "CalculatedPriceBasisQuantity",
	"Tax", "TaxPercent", "TaxableAmount", "TaxAmount", "TaxLocation",
	"TaxCategoryCoded", "DeliveryDetail", "ShipmentMethodOfPayment",
	"TransportRouting", "TransportMode", "TransportMeans", "CarrierName",
	"OrderSummary", "NumberOfLines", "TotalAmount", "MonetaryValue",
	"MonetaryAmount", "LanguageCoded", "PaymentTerms", "PaymentTerm",
	"DiscountPercent", "DiscountDaysDue", "NetDaysDue", "PaymentMean",
	"ListOfTransportRouting", "TermsOfDelivery", "TermsOfDeliveryFunction",
	"ShipmentPackaging", "PackageDetail", "PackageTypeCoded",
}

func elementNames(shape Shape, n int) []string {
	var vocab []string
	var pattern string
	if shape == ShapeNews {
		vocab, pattern = newsVocab, "x-sec%03d"
	} else {
		vocab, pattern = businessVocab, "Field%03d"
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if i < len(vocab) {
			out = append(out, vocab[i])
		} else {
			out = append(out, fmt.Sprintf(pattern, i-len(vocab)))
		}
	}
	return out
}

// NITFLike returns the paper's first evaluation schema stand-in: a
// news-like DTD with exactly 123 elements.
func NITFLike() *DTD {
	return Synthesize(SynthOptions{
		Name:     "nitf-like",
		Elements: 123,
		Levels:   9,
		Seed:     20070415, // ICDE'07
		Shape:    ShapeNews,
	})
}

// XCBLLike returns the paper's second evaluation schema stand-in: a
// business-like DTD with exactly 569 elements.
func XCBLLike() *DTD {
	return Synthesize(SynthOptions{
		Name:     "xcbl-like",
		Elements: 569,
		Levels:   12,
		Seed:     20020601,
		Shape:    ShapeBusiness,
	})
}

// Media returns the small hand-written DTD behind the paper's Figure 1
// examples (media libraries with books and CDs); used by the examples
// and tests.
func Media() *DTD {
	d := NewDTD("media", "media")
	d.Declare("media", Seq(Name("book", Star), Name("CD", Star)))
	d.Declare("book", Seq(Name("author", Plus), Name("title", One)))
	d.Declare("CD", Seq(Name("composer", Opt), Name("title", One), Name("interpreter", Star)))
	d.Declare("author", Seq(Name("first", Opt), Name("last", One)))
	d.Declare("composer", Seq(Name("first", Opt), Name("last", One)))
	d.Declare("interpreter", Choice(Name("ensemble", One), Name("soloist", One)))
	d.Declare("title", PCData())
	d.Declare("first", PCData())
	d.Declare("last", PCData())
	d.Declare("ensemble", PCData())
	d.Declare("soloist", PCData())
	if err := d.Validate(); err != nil {
		panic(err)
	}
	return d
}
