package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"treesim/internal/metrics"
)

// CSV export of the figure series, for external plotting. Columns match
// the text tables; one row per point.

// WriteSelectivityCSV writes Figure 4/5/6 data as CSV.
func WriteSelectivityCSV(w io.Writer, dtdName string, pts []SelectivityPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dtd", "representation", "max_size", "erel_positive", "esqr_negative", "synopsis_size"}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			dtdName,
			p.Kind.String(),
			strconv.Itoa(p.Size),
			formatFloat(p.Erel),
			formatFloat(p.Esqr),
			strconv.Itoa(p.SynopsisSize),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMetricCSV writes Figure 7/8/9 data as CSV.
func WriteMetricCSV(w io.Writer, dtdName string, pts []MetricPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dtd", "representation", "max_size", "erel_m1", "erel_m2", "erel_m3", "skipped_m1", "skipped_m2", "skipped_m3"}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			dtdName,
			p.Kind.String(),
			strconv.Itoa(p.Size),
			formatFloat(p.Erel[metrics.M1]),
			formatFloat(p.Erel[metrics.M2]),
			formatFloat(p.Erel[metrics.M3]),
			strconv.Itoa(p.Skipped[metrics.M1]),
			strconv.Itoa(p.Skipped[metrics.M2]),
			strconv.Itoa(p.Skipped[metrics.M3]),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCompressionCSV writes Figure 10 data as CSV.
func WriteCompressionCSV(w io.Writer, dtdName string, pts []CompressionPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dtd", "target_alpha", "achieved_alpha", "erel_positive", "esqr_negative", "synopsis_size"}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			dtdName,
			formatFloat(p.TargetAlpha),
			formatFloat(p.AchievedAlpha),
			formatFloat(p.Erel),
			formatFloat(p.Esqr),
			strconv.Itoa(p.SynopsisSize),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return fmt.Sprintf("%.6g", v)
}
