package experiment

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestCSVExports(t *testing.T) {
	w := buildTiny(t)
	sel := SelectivitySweep(w, []int{100}, 1)
	met := MetricSweep(w, []int{100}, 20, 1)
	cmp := CompressionSweep(w, []float64{0.8}, 100, 1)

	var b1, b2, b3 strings.Builder
	if err := WriteSelectivityCSV(&b1, "nitf-like", sel); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricCSV(&b2, "nitf-like", met); err != nil {
		t.Fatal(err)
	}
	if err := WriteCompressionCSV(&b3, "nitf-like", cmp); err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{"sel": b1.String(), "met": b2.String(), "cmp": b3.String()} {
		recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
		if err != nil {
			t.Fatalf("%s: invalid CSV: %v", name, err)
		}
		if len(recs) < 2 {
			t.Fatalf("%s: no data rows", name)
		}
		// Every row must match the header width.
		for i, r := range recs {
			if len(r) != len(recs[0]) {
				t.Fatalf("%s row %d: %d cols, want %d", name, i, len(r), len(recs[0]))
			}
		}
	}
	// Row counts: kinds — counters once + sets/hashes per size.
	recs, _ := csv.NewReader(strings.NewReader(b1.String())).ReadAll()
	if got := len(recs) - 1; got != 3 {
		t.Errorf("selectivity rows = %d, want 3 (counters + sets + hashes at one size)", got)
	}
}
