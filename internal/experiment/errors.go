package experiment

import (
	"math"

	"treesim/internal/metrics"
	"treesim/internal/selectivity"
)

// ErelPositive is the paper's average absolute relative error over
// positive queries:
//
//	Erel = (1/|SP|) Σ |P'(p) − P(p)| / P(p)
func ErelPositive(est *selectivity.Estimator, w *Workload) float64 {
	if len(w.Positive) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range w.Positive {
		exact := w.ExactP(p)
		sum += math.Abs(est.P(p)-exact) / exact
	}
	return sum / float64(len(w.Positive))
}

// EsqrNegative is the paper's root mean square error over negative
// queries (whose exact selectivity is 0):
//
//	Esqr = sqrt((1/|SN|) Σ (P'(p) − 0)²)
func EsqrNegative(est *selectivity.Estimator, w *Workload) float64 {
	if len(w.Negative) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range w.Negative {
		v := est.P(p)
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(w.Negative)))
}

// MetricErel is the paper's average absolute relative error of an
// estimated proximity metric over pattern pairs:
//
//	Erel(Mi) = (1/|pairs|) Σ |M'i(p,q) − Mi(p,q)| / Mi(p,q)
//
// Pairs whose exact metric value is 0 have an undefined relative error
// and are skipped; the second return value counts them.
func MetricErel(m metrics.Metric, est metrics.Source, w *Workload, pairs []Pair) (erel float64, skipped int) {
	exact := ExactSource{W: w}
	sum, n := 0.0, 0
	for _, pr := range pairs {
		p, q := w.Positive[pr.I], w.Positive[pr.J]
		truth := metrics.Similarity(exact, m, p, q)
		if truth == 0 {
			skipped++
			continue
		}
		got := metrics.Similarity(est, m, p, q)
		sum += math.Abs(got-truth) / truth
		n++
	}
	if n == 0 {
		return 0, skipped
	}
	return sum / float64(n), skipped
}

// The synopsis estimator must satisfy metrics.Source so estimated and
// exact similarities share one evaluation path.
var _ metrics.Source = (*selectivity.Estimator)(nil)
