package experiment

import (
	"math"
	"strings"
	"testing"

	"treesim/internal/dtd"
	"treesim/internal/matchset"
	"treesim/internal/metrics"
	"treesim/internal/pattern"
	"treesim/internal/selectivity"
)

// tinyConfig keeps unit-test workloads fast.
func tinyConfig(seed int64) WorkloadConfig {
	return WorkloadConfig{Docs: 150, Positive: 40, Negative: 40, Seed: seed}
}

func buildTiny(t *testing.T) *Workload {
	t.Helper()
	return BuildWorkload(dtd.NITFLike(), tinyConfig(3))
}

func TestBuildWorkloadInvariants(t *testing.T) {
	w := buildTiny(t)
	if len(w.Docs) != 150 || len(w.Positive) != 40 || len(w.Negative) != 40 {
		t.Fatalf("sizes: %d docs, %d pos, %d neg", len(w.Docs), len(w.Positive), len(w.Negative))
	}
	// Every positive pattern matches ≥ 1 doc; negatives match none.
	for i, p := range w.Positive {
		if w.MatchSets[i].Count() == 0 {
			t.Errorf("positive pattern %d has empty match set: %s", i, p)
		}
	}
	for _, p := range w.Negative {
		for _, d := range w.Docs {
			if pattern.Matches(d, p) {
				t.Errorf("negative pattern matches: %s", p)
				break
			}
		}
	}
}

func TestBuildWorkloadDeterministic(t *testing.T) {
	a := BuildWorkload(dtd.NITFLike(), tinyConfig(9))
	b := BuildWorkload(dtd.NITFLike(), tinyConfig(9))
	for i := range a.Positive {
		if a.Positive[i].String() != b.Positive[i].String() {
			t.Fatalf("positive %d differs", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Error("stats differ across same-seed builds")
	}
}

func TestExactSourceConsistency(t *testing.T) {
	w := buildTiny(t)
	src := ExactSource{W: w}
	p, q := w.Positive[0], w.Positive[1]
	// P(p∧q) ≤ min(P(p), P(q)).
	and := src.PAnd(p, q)
	if and > math.Min(src.P(p), src.P(q))+1e-12 {
		t.Error("exact PAnd exceeds marginals")
	}
	// PAnd(p,p) = P(p).
	if got := src.PAnd(p, p); math.Abs(got-src.P(p)) > 1e-12 {
		t.Errorf("PAnd(p,p) = %v, want %v", got, src.P(p))
	}
}

func TestErrorMetricsExactEstimatorIsZero(t *testing.T) {
	// An unbounded Sets synopsis evaluates selectivities exactly under
	// skeleton semantics. For workloads where skeleton and document
	// semantics coincide on the query set, Erel is 0; in general it is
	// the (small) skeleton gap. Assert near-zero.
	w := buildTiny(t)
	s := buildSynopsis(w, matchset.KindSets, 1<<20, 5)
	est := selectivity.New(s)
	if erel := ErelPositive(est, w); erel > 0.02 {
		t.Errorf("Erel of exact estimator = %v, want ≈ 0 (skeleton gap only)", erel)
	}
	// Negative queries: skeleton semantics can only over-approximate,
	// so Esqr may be > 0 but must be tiny.
	if esqr := EsqrNegative(est, w); esqr > 0.05 {
		t.Errorf("Esqr of exact estimator = %v, want ≈ 0", esqr)
	}
}

func TestMetricErelZeroForExactSource(t *testing.T) {
	w := buildTiny(t)
	pairs := w.RandomPairs(100, 7)
	for _, m := range metrics.All {
		erel, _ := MetricErel(m, ExactSource{W: w}, w, pairs)
		if erel != 0 {
			t.Errorf("%s: Erel of exact source vs itself = %v, want 0", m, erel)
		}
	}
}

func TestSelectivitySweepShape(t *testing.T) {
	w := buildTiny(t)
	sizes := []int{50, 400}
	pts := SelectivitySweep(w, sizes, 11)
	// counters(1) + sets(2) + hashes(2)
	if len(pts) != 5 {
		t.Fatalf("%d points, want 5", len(pts))
	}
	byKind := make(map[matchset.Kind][]SelectivityPoint)
	for _, p := range pts {
		byKind[p.Kind] = append(byKind[p.Kind], p)
		if p.SynopsisSize <= 0 {
			t.Errorf("non-positive synopsis size: %+v", p)
		}
		if p.Erel < 0 || p.Esqr < 0 {
			t.Errorf("negative error: %+v", p)
		}
	}
	// Larger hash samples must not be (much) worse.
	h := byKind[matchset.KindHashes]
	if h[1].Erel > h[0].Erel+0.10 {
		t.Errorf("hashes: error grew with size: %v -> %v", h[0].Erel, h[1].Erel)
	}
	// Synopsis size grows with sample size for hashes.
	if h[1].SynopsisSize <= h[0].SynopsisSize {
		t.Errorf("hashes synopsis size did not grow: %d -> %d", h[0].SynopsisSize, h[1].SynopsisSize)
	}
}

func TestMetricSweepShape(t *testing.T) {
	w := buildTiny(t)
	pts := MetricSweep(w, []int{400}, 60, 13)
	if len(pts) != 3 {
		t.Fatalf("%d points, want 3 (one per kind)", len(pts))
	}
	for _, p := range pts {
		for _, m := range metrics.All {
			if _, ok := p.Erel[m]; !ok {
				t.Errorf("%v size %d missing metric %s", p.Kind, p.Size, m)
			}
		}
	}
}

func TestCompressionSweepShape(t *testing.T) {
	w := buildTiny(t)
	pts := CompressionSweep(w, []float64{1.0, 0.5}, 400, 17)
	if len(pts) != 2 {
		t.Fatalf("%d points, want 2", len(pts))
	}
	if pts[1].AchievedAlpha > 0.65 {
		t.Errorf("compression to 0.5 achieved only %v", pts[1].AchievedAlpha)
	}
	// Heavier compression should not improve positive-query accuracy.
	if pts[1].Erel+0.02 < pts[0].Erel {
		t.Errorf("compressed synopsis more accurate than uncompressed: %v vs %v",
			pts[1].Erel, pts[0].Erel)
	}
}

func TestStatsString(t *testing.T) {
	w := buildTiny(t)
	st := w.Stats()
	if st.Docs != 150 || st.Positive != 40 {
		t.Errorf("stats = %+v", st)
	}
	if st.AvgSel <= 0 || st.AvgSel > 1 {
		t.Errorf("avg selectivity %v out of (0,1]", st.AvgSel)
	}
	if st.Compaction <= 0 || st.Compaction > 1 {
		t.Errorf("compaction %v out of (0,1]", st.Compaction)
	}
	if !strings.Contains(st.String(), "nitf-like") {
		t.Errorf("String() = %q", st.String())
	}
}

func TestWriteTables(t *testing.T) {
	w := buildTiny(t)
	var sb strings.Builder
	WriteSelectivityTable(&sb, "nitf-like", SelectivitySweep(w, []int{100}, 1))
	WriteMetricTable(&sb, "nitf-like", MetricSweep(w, []int{100}, 20, 1))
	WriteCompressionTable(&sb, "nitf-like", CompressionSweep(w, []float64{0.8}, 100, 1))
	out := sb.String()
	for _, want := range []string{"Figures 4/5/6", "Figures 7/8/9", "Figure 10", "Counters", "Hashes"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q:\n%s", want, out)
		}
	}
}

func TestRandomPairsDistinct(t *testing.T) {
	w := buildTiny(t)
	for _, pr := range w.RandomPairs(200, 3) {
		if pr.I == pr.J {
			t.Fatal("pair with identical indices")
		}
		if pr.I < 0 || pr.I >= len(w.Positive) || pr.J < 0 || pr.J >= len(w.Positive) {
			t.Fatal("pair index out of range")
		}
	}
}
