package experiment

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"treesim/internal/matchset"
	"treesim/internal/metrics"
	"treesim/internal/selectivity"
	"treesim/internal/synopsis"
)

// DefaultSizes is the paper's sweep over maximum hash/set sizes
// (Figures 4–9 sweep 50 < h,k < 10000).
var DefaultSizes = []int{50, 100, 250, 500, 1000, 2500, 5000, 10000}

// DefaultAlphas is the compression-ratio sweep of Figure 10.
var DefaultAlphas = []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1}

// Kinds lists the three matching-set representations in paper order.
var Kinds = []matchset.Kind{matchset.KindCounters, matchset.KindSets, matchset.KindHashes}

// buildSynopsis constructs a synopsis of the given kind/size over the
// workload corpus.
func buildSynopsis(w *Workload, kind matchset.Kind, size int, seed int64) *synopsis.Synopsis {
	s := synopsis.New(synopsis.Options{
		Kind:         kind,
		HashCapacity: size,
		SetCapacity:  size,
		Seed:         seed,
	})
	for _, d := range w.Docs {
		s.Insert(d)
	}
	return s
}

// SelectivityPoint is one point of the Figure 4/5/6 series.
type SelectivityPoint struct {
	Kind matchset.Kind
	// Size is the maximum hash/set size (irrelevant for counters).
	Size int
	// Erel is the positive-query average absolute relative error
	// (Figure 4); Esqr the negative-query RMSE (Figure 5).
	Erel, Esqr float64
	// SynopsisSize is |HS| in the paper's units (Figure 6's x-axis).
	SynopsisSize int
}

// SelectivitySweep regenerates the data behind Figures 4, 5 and 6 for
// one workload: for every representation and size bound, the positive
// and negative query errors and the synopsis size. Counters appear once
// (their synopsis has no size knob).
func SelectivitySweep(w *Workload, sizes []int, seed int64) []SelectivityPoint {
	var out []SelectivityPoint
	for _, kind := range Kinds {
		ks := sizes
		if kind == matchset.KindCounters {
			ks = sizes[:1] // counters have no size parameter
		}
		for _, size := range ks {
			s := buildSynopsis(w, kind, size, seed)
			est := selectivity.New(s)
			pt := SelectivityPoint{
				Kind:         kind,
				Size:         size,
				Erel:         ErelPositive(est, w),
				Esqr:         EsqrNegative(est, w),
				SynopsisSize: s.Size(),
			}
			if kind == matchset.KindCounters {
				pt.Size = 0
			}
			out = append(out, pt)
		}
	}
	return out
}

// MetricPoint is one point of the Figure 7/8/9 series.
type MetricPoint struct {
	Kind matchset.Kind
	Size int
	// Erel per metric (Figures 7, 8, 9 = M1, M2, M3).
	Erel map[metrics.Metric]float64
	// Skipped counts pairs with exact metric 0 (undefined relative
	// error), excluded per metric.
	Skipped map[metrics.Metric]int
}

// MetricSweep regenerates the data behind Figures 7–9: the average
// absolute relative error of the estimated proximity metrics M1, M2, M3
// over random positive-pattern pairs, for every representation and size.
func MetricSweep(w *Workload, sizes []int, nPairs int, seed int64) []MetricPoint {
	pairs := w.RandomPairs(nPairs, seed+17)
	var out []MetricPoint
	for _, kind := range Kinds {
		ks := sizes
		if kind == matchset.KindCounters {
			ks = sizes[:1]
		}
		for _, size := range ks {
			s := buildSynopsis(w, kind, size, seed)
			est := selectivity.New(s)
			pt := MetricPoint{
				Kind:    kind,
				Size:    size,
				Erel:    make(map[metrics.Metric]float64, 3),
				Skipped: make(map[metrics.Metric]int, 3),
			}
			if kind == matchset.KindCounters {
				pt.Size = 0
			}
			for _, m := range metrics.All {
				erel, skipped := MetricErel(m, est, w, pairs)
				pt.Erel[m] = erel
				pt.Skipped[m] = skipped
			}
			out = append(out, pt)
		}
	}
	return out
}

// CompressionPoint is one point of the Figure 10 series.
type CompressionPoint struct {
	// TargetAlpha and AchievedAlpha are the requested and achieved
	// compression ratios |HcS|/|HS|.
	TargetAlpha, AchievedAlpha float64
	Erel, Esqr                 float64
	SynopsisSize               int
}

// CompressionSweep regenerates Figure 10: selectivity errors on a
// Hashes synopsis (h = hashSize, the paper uses 1000) compressed to a
// range of ratios α. Each point rebuilds the synopsis from the corpus
// and compresses it with the paper's operation order.
func CompressionSweep(w *Workload, alphas []float64, hashSize int, seed int64) []CompressionPoint {
	var out []CompressionPoint
	for _, alpha := range alphas {
		s := buildSynopsis(w, matchset.KindHashes, hashSize, seed)
		achieved := 1.0
		if alpha < 1 {
			achieved = s.Compress(synopsis.CompressOptions{TargetRatio: alpha})
		} else {
			// α = 1: lossless folds only.
			achieved = s.Compress(synopsis.CompressOptions{TargetRatio: 1})
		}
		est := selectivity.New(s)
		out = append(out, CompressionPoint{
			TargetAlpha:   alpha,
			AchievedAlpha: achieved,
			Erel:          ErelPositive(est, w),
			Esqr:          EsqrNegative(est, w),
			SynopsisSize:  s.Size(),
		})
	}
	return out
}

// WriteSelectivityTable renders Figure 4/5/6 data.
func WriteSelectivityTable(out io.Writer, dtdName string, pts []SelectivityPoint) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# Figures 4/5/6 — selectivity estimation error (%s)\n", dtdName)
	fmt.Fprintln(tw, "representation\tmax size\tErel(+) %\tlog10 Esqr(-)\t|HS|")
	for _, p := range pts {
		size := fmt.Sprintf("%d", p.Size)
		if p.Size == 0 {
			size = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%s\t%d\n",
			p.Kind, size, 100*p.Erel, logOrDash(p.Esqr), p.SynopsisSize)
	}
	tw.Flush()
}

// WriteMetricTable renders Figure 7/8/9 data.
func WriteMetricTable(out io.Writer, dtdName string, pts []MetricPoint) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# Figures 7/8/9 — proximity metric error (%s)\n", dtdName)
	fmt.Fprintln(tw, "representation\tmax size\tErel(M1) %\tErel(M2) %\tErel(M3) %")
	for _, p := range pts {
		size := fmt.Sprintf("%d", p.Size)
		if p.Size == 0 {
			size = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.2f\n",
			p.Kind, size, 100*p.Erel[metrics.M1], 100*p.Erel[metrics.M2], 100*p.Erel[metrics.M3])
	}
	tw.Flush()
}

// WriteCompressionTable renders Figure 10 data.
func WriteCompressionTable(out io.Writer, dtdName string, pts []CompressionPoint) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# Figure 10 — compressed synopsis (%s, Hashes)\n", dtdName)
	fmt.Fprintln(tw, "target α\tachieved α\tErel(+) %\tlog10 Esqr(-)\t|HcS|")
	for _, p := range pts {
		fmt.Fprintf(tw, "%.2f\t%.3f\t%.2f\t%s\t%d\n",
			p.TargetAlpha, p.AchievedAlpha, 100*p.Erel, logOrDash(p.Esqr), p.SynopsisSize)
	}
	tw.Flush()
}

func logOrDash(v float64) string {
	if v <= 0 {
		return "-inf (0)"
	}
	return fmt.Sprintf("%.2f", math.Log10(v))
}
