// Package experiment reproduces the paper's evaluation (Section 5): it
// builds document corpora and classified query workloads from the two
// schema stand-ins, computes exact ground truth with the formal matcher,
// and regenerates every figure — selectivity error sweeps (Figures 4–6),
// proximity-metric error sweeps (Figures 7–9) and the compression study
// (Figure 10) — plus the workload statistics of Section 5.1.
package experiment

import (
	"fmt"
	"math/rand"

	"treesim/internal/bitset"
	"treesim/internal/dtd"
	"treesim/internal/matching"
	"treesim/internal/pattern"
	"treesim/internal/querygen"
	"treesim/internal/xmlgen"
	"treesim/internal/xmltree"
)

// WorkloadConfig sizes a workload. The paper's full scale is Docs=10000,
// Positive=Negative=1000, Pairs=5000; the defaults here are a laptop
// scale that preserves every qualitative result.
type WorkloadConfig struct {
	// Docs is the corpus size |D|.
	Docs int
	// Positive and Negative are the SP / SN workload sizes.
	Positive, Negative int
	// TargetTagPairs calibrates document size (paper: ~100).
	TargetTagPairs int
	// QueryOpts defaults to the paper's parameters (h=10, p*=0.1,
	// p//=0.1, pλ=0.1, θ=1) when zero.
	QueryOpts querygen.Options
	// Seed derives all workload randomness.
	Seed int64
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Docs == 0 {
		c.Docs = 2000
	}
	if c.Positive == 0 {
		c.Positive = 300
	}
	if c.Negative == 0 {
		c.Negative = 300
	}
	if c.TargetTagPairs == 0 {
		c.TargetTagPairs = 100
	}
	if c.QueryOpts.MaxHeight == 0 {
		c.QueryOpts = querygen.Defaults(c.Seed + 1)
	}
	return c
}

// Workload bundles a corpus, its classified query sets and exact ground
// truth for one DTD.
type Workload struct {
	DTD    *dtd.DTD
	Config WorkloadConfig
	Docs   []*xmltree.Tree
	// Positive (SP) patterns match ≥ 1 document; Negative (SN) match
	// none.
	Positive, Negative []*pattern.Pattern
	// MatchSets holds, for each positive pattern, the exact set of
	// matching document indices.
	MatchSets []*bitset.Set

	posIndex map[*pattern.Pattern]int
}

// BuildWorkload generates documents and queries for the DTD and computes
// exact ground truth. Deterministic in (DTD, config).
func BuildWorkload(d *dtd.DTD, cfg WorkloadConfig) *Workload {
	cfg = cfg.withDefaults()
	genOpts := xmlgen.Calibrate(d, cfg.TargetTagPairs, cfg.Seed)
	docs := xmlgen.New(d, genOpts).GenerateN(cfg.Docs)
	qg := querygen.New(d, cfg.QueryOpts)
	cls := qg.ClassifyWorkload(docs, cfg.Positive, cfg.Negative)

	w := &Workload{
		DTD:      d,
		Config:   cfg,
		Docs:     docs,
		Positive: cls.Positive,
		Negative: cls.Negative,
		posIndex: make(map[*pattern.Pattern]int, len(cls.Positive)),
	}
	// Exact match sets via the filtering engine (prefilter + exact
	// matcher): iterate documents once, matching all positives.
	eng := matching.NewEngine(w.Positive)
	w.MatchSets = make([]*bitset.Set, len(w.Positive))
	for i := range w.MatchSets {
		w.MatchSets[i] = bitset.New(len(docs))
	}
	for di, doc := range docs {
		for _, pi := range eng.Match(doc) {
			w.MatchSets[pi].Add(di)
		}
	}
	for i, p := range w.Positive {
		w.posIndex[p] = i
	}
	return w
}

// ExactP returns the exact selectivity of a positive pattern.
func (w *Workload) ExactP(p *pattern.Pattern) float64 {
	i, ok := w.posIndex[p]
	if !ok {
		panic("experiment: pattern is not part of the positive workload")
	}
	return float64(w.MatchSets[i].Count()) / float64(len(w.Docs))
}

// ExactPAnd returns the exact conjunction probability of two positive
// patterns.
func (w *Workload) ExactPAnd(p, q *pattern.Pattern) float64 {
	i, ok := w.posIndex[p]
	j, ok2 := w.posIndex[q]
	if !ok || !ok2 {
		panic("experiment: pattern is not part of the positive workload")
	}
	return float64(w.MatchSets[i].AndCount(w.MatchSets[j])) / float64(len(w.Docs))
}

// ExactSource adapts the workload's ground truth to the metrics.Source
// interface.
type ExactSource struct{ W *Workload }

// P returns the exact selectivity.
func (s ExactSource) P(p *pattern.Pattern) float64 { return s.W.ExactP(p) }

// PAnd returns the exact conjunction probability.
func (s ExactSource) PAnd(p, q *pattern.Pattern) float64 { return s.W.ExactPAnd(p, q) }

// Pair indexes a pattern pair within the positive workload.
type Pair struct{ I, J int }

// RandomPairs draws n random ordered pairs of distinct positive
// patterns (the paper evaluates metrics over 5000 random SP pairs).
func (w *Workload) RandomPairs(n int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pair, 0, n)
	for len(out) < n {
		i := rng.Intn(len(w.Positive))
		j := rng.Intn(len(w.Positive))
		if i != j {
			out = append(out, Pair{i, j})
		}
	}
	return out
}

// WorkloadStats reports the Section 5.1 workload characteristics.
type WorkloadStats struct {
	DTDName    string
	Elements   int
	Docs       int
	MeanTags   float64
	MaxDepth   int
	Positive   int
	Negative   int
	AvgSel     float64 // average selectivity of SP patterns
	MinSel     float64
	MaxSel     float64
	Compaction float64 // synopsis structural nodes / total corpus tags
}

// Stats computes the workload summary. Compaction is the ratio of
// distinct skeleton label paths (synopsis nodes) to total corpus tag
// count, the paper's "document compaction ratio".
func (w *Workload) Stats() WorkloadStats {
	st := WorkloadStats{
		DTDName:  w.DTD.Name,
		Elements: w.DTD.Len(),
		Docs:     len(w.Docs),
		Positive: len(w.Positive),
		Negative: len(w.Negative),
		MinSel:   1,
	}
	totalTags := 0
	paths := make(map[string]struct{})
	for _, d := range w.Docs {
		totalTags += d.TagPairs()
		if dep := d.Depth(); dep > st.MaxDepth {
			st.MaxDepth = dep
		}
		for _, p := range xmltree.Skeleton(d).LabelPaths() {
			paths[p] = struct{}{}
		}
	}
	st.MeanTags = float64(totalTags) / float64(len(w.Docs))
	if totalTags > 0 {
		st.Compaction = float64(len(paths)) / float64(totalTags)
	}
	var sum float64
	for i := range w.Positive {
		sel := float64(w.MatchSets[i].Count()) / float64(len(w.Docs))
		sum += sel
		if sel < st.MinSel {
			st.MinSel = sel
		}
		if sel > st.MaxSel {
			st.MaxSel = sel
		}
	}
	if len(w.Positive) > 0 {
		st.AvgSel = sum / float64(len(w.Positive))
	} else {
		st.MinSel = 0
	}
	return st
}

func (st WorkloadStats) String() string {
	return fmt.Sprintf(
		"%s: %d elements, %d docs (mean %.1f tags, depth ≤ %d), SP=%d SN=%d, selectivity avg=%.2f%% min=%.2f%% max=%.2f%%, compaction=%.4f%%",
		st.DTDName, st.Elements, st.Docs, st.MeanTags, st.MaxDepth,
		st.Positive, st.Negative, 100*st.AvgSel, 100*st.MinSel, 100*st.MaxSel,
		100*st.Compaction)
}
