package fault_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"treesim/internal/broker"
	"treesim/internal/fault"
	"treesim/internal/persist"
)

// journal adapts a store to the broker's journal hook — the same
// mapping cmd/treesimd uses.
type journal struct{ s *persist.Store }

func (j journal) Subscribed(id uint64, expr string, group int, mode broker.DeliveryMode) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpSubscribe, ID: id, Expr: expr, Group: group, Mode: uint8(mode)})
}
func (j journal) Unsubscribed(id uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpUnsubscribe, ID: id})
}
func (j journal) Rebuilt(groups [][]uint64, reps []uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpRebuild, Groups: groups, Reps: reps})
}
func (j journal) Delivered(seq uint64, xml string, subs, cursors []uint64, comms []int) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpDeliver, Seq: seq, XML: xml, Subs: subs, Cursors: cursors, Comms: comms})
}
func (j journal) Acked(id uint64, upto uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpAck, ID: id, Cursor: upto})
}
func (j journal) Drained(id uint64, upto uint64) (uint64, error) {
	return j.s.Append(persist.Record{Op: persist.OpDrained, ID: id, Cursor: upto})
}

// subModel is the checker's ground truth for one subscription.
type subModel struct {
	expr string
	mode broker.DeliveryMode
	// durable: the subscribe was journaled (recovery restores it).
	durable bool
	// delivered/acked track at-least-once doc keys journaled while the
	// store was healthy — the set conservation is asserted over.
	delivered map[string]bool
	acked     map[string]bool
}

// exprs maps each subscription pattern in the pool to a probe document
// matching it and nothing else in the pool.
var exprPool = []struct{ expr, probe string }{
	{"/a/b", "<a><b/>%s</a>"},
	{"/c/d", "<c><d/>%s</c>"},
	{"//e", "<x><y><e/></y>%s</x>"},
}

func brokerCfg() broker.Config {
	return broker.Config{Threshold: 2, Rebuild: broker.Never{}}
}

// recoverDir replays dir into a fresh engine exactly the way
// cmd/treesimd's openDataDir does. The injector rides along so later
// schedule steps can fault the recovered store too.
func recoverDir(t *testing.T, dir string, fsys persist.FS) (*broker.Engine, *persist.Store) {
	t.Helper()
	store, err := persist.Open(dir, persist.Options{FS: fsys, SyncEveryAppend: true})
	if err != nil {
		t.Fatalf("recover open: %v", err)
	}
	var eng *broker.Engine
	if payload, ok, err := store.LoadSnapshot(); err != nil {
		t.Fatalf("load snapshot: %v", err)
	} else if ok {
		env, err := persist.DecodeSnapshot(payload)
		if err != nil {
			t.Fatalf("decode snapshot: %v", err)
		}
		st, err := broker.DecodeState(env.Broker)
		if err != nil {
			t.Fatalf("decode state: %v", err)
		}
		eng, err = broker.Restore(brokerCfg(), st)
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
	} else {
		eng = broker.New(brokerCfg())
	}
	if err := store.Replay(func(rec persist.Record) error {
		switch rec.Op {
		case persist.OpSubscribe:
			return eng.ApplySubscribed(rec.ID, rec.Expr, rec.Group, broker.DeliveryMode(rec.Mode))
		case persist.OpUnsubscribe:
			return eng.ApplyUnsubscribed(rec.ID)
		case persist.OpRebuild:
			return eng.ApplyRebuilt(rec.Groups, rec.Reps)
		case persist.OpDeliver:
			return eng.ApplyDelivered(rec.Seq, rec.XML, rec.Subs, rec.Cursors, rec.Comms)
		case persist.OpAck:
			return eng.ApplyAcked(rec.ID, rec.Cursor)
		case persist.OpDrained:
			return eng.ApplyDrained(rec.ID, rec.Cursor)
		default:
			return fmt.Errorf("unknown wal op %q", rec.Op)
		}
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	eng.SetJournal(journal{store})
	return eng, store
}

func liveIDs(eng *broker.Engine) []uint64 {
	var ids []uint64
	for _, g := range eng.CommunityIDs() {
		ids = append(ids, g...)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestCrashSchedules replays seeded random interleavings of
// {subscribe, unsubscribe, publish+drain+ack, snapshot, inject disk
// fault, crash, recover} against a ground-truth model and asserts,
// after every recovery: the durable subscription set is restored
// exactly, routing matches the model (each probe reaches exactly the
// matching live subscriptions), acked at-least-once deliveries are
// never redelivered, and unacked ones always are — ledger
// conservation. Any failing seed reproduces exactly:
//
//	go test ./internal/fault -run TestCrashSchedules -seedstart N
func TestCrashSchedules(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCrashSchedule(t, seed)
		})
	}
}

func runCrashSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()

	inj := fault.NewInjector()
	fsys := fault.NewFS(inj)
	// SyncEveryAppend so a sync failpoint fires on the very next
	// journaled mutation, keeping the schedule deterministic.
	store, err := persist.Open(dir, persist.Options{FS: fsys, SyncEveryAppend: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	eng := broker.New(brokerCfg())
	eng.SetJournal(journal{store})

	model := map[uint64]*subModel{} // live subscriptions, ground truth
	faulted := false
	docN := 0
	var floor uint64 // WAL watermark recovery already replayed

	// sortedIDs keeps every model walk deterministic for a given seed —
	// map iteration order must never touch the rng stream.
	sortedIDs := func() []uint64 {
		ids := make([]uint64, 0, len(model))
		for id := range model {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids
	}

	subscribe := func() {
		pick := exprPool[rng.Intn(len(exprPool))]
		mode := broker.AtMostOnce
		if rng.Intn(2) == 0 {
			mode = broker.AtLeastOnce
		}
		id, err := eng.SubscribeOpts(pick.expr, broker.SubscribeOptions{Mode: mode})
		if faulted && mode == broker.AtLeastOnce {
			if !errors.Is(err, broker.ErrDegraded) {
				t.Fatalf("at-least-once subscribe on degraded engine: id=%d err=%v, want ErrDegraded", id, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("subscribe: %v", err)
		}
		model[id] = &subModel{expr: pick.expr, mode: mode, durable: !faulted,
			delivered: map[string]bool{}, acked: map[string]bool{}}
	}

	isLive := func(m *subModel) bool { return m.mode&(1<<7) == 0 }

	unsubscribe := func() {
		var live []uint64
		for _, id := range sortedIDs() {
			if isLive(model[id]) {
				live = append(live, id)
			}
		}
		if len(live) == 0 {
			return
		}
		id := live[rng.Intn(len(live))]
		if !eng.Unsubscribe(id) {
			t.Fatalf("unsubscribe %d: not live", id)
		}
		if faulted && model[id].durable {
			// The removal was not journaled; recovery resurrects a
			// durable subscription, so keep tracking it under a
			// tombstone rather than forgetting its ledger.
			model[id].mode |= 1 << 7 // mark: live=false, durable remains
		} else {
			delete(model, id)
		}
	}

	publish := func() {
		pick := exprPool[rng.Intn(len(exprPool))]
		docN++
		uniq := fmt.Sprintf("<m%d/>", docN)
		doc := parseDoc(t, fmt.Sprintf(pick.probe, uniq))
		key := doc.Clone().Canonicalize().String()
		if _, err := eng.Publish(doc); err != nil {
			t.Fatalf("publish: %v", err)
		}
		eng.Flush()
		// Drain every live subscription and check routing equivalence:
		// exactly the subs whose expr matches the probe receive it.
		for _, id := range sortedIDs() {
			m := model[id]
			if !isLive(m) {
				continue
			}
			want := m.expr == pick.expr
			r, err := eng.DrainBatch(id, 0, 0)
			if err != nil {
				t.Fatalf("drain %d: %v", id, err)
			}
			got := false
			var cursor uint64
			for _, d := range r.Deliveries {
				tree := eng.Document(d.Doc)
				if tree == nil {
					t.Fatalf("sub %d: doc %d not retrievable", id, d.Doc)
				}
				k := tree.Clone().Canonicalize().String()
				if k == key {
					got = true
				}
				cursor = d.Cursor
				if m.mode == broker.AtLeastOnce && !faulted {
					m.delivered[k] = true
				}
			}
			if got != want {
				t.Fatalf("routing divergence (seed %d, doc %d): sub %d (%s) got=%v want=%v", seed, docN, id, m.expr, got, want)
			}
			if m.mode == broker.AtLeastOnce && len(r.Deliveries) > 0 && rng.Intn(10) < 7 {
				if _, err := eng.Ack(id, cursor); err != nil {
					t.Fatalf("ack %d: %v", id, err)
				}
				if !faulted {
					for k := range m.delivered {
						if !m.acked[k] {
							m.acked[k] = true
						}
					}
				}
			}
		}
	}

	snapshot := func() {
		if faulted {
			return
		}
		st, err := eng.State()
		if err != nil {
			t.Fatalf("state: %v", err)
		}
		data, err := broker.EncodeState(st)
		if err != nil {
			t.Fatalf("encode state: %v", err)
		}
		env := persist.Snapshot{Broker: data}
		payload, err := env.Encode()
		if err != nil {
			t.Fatalf("encode envelope: %v", err)
		}
		upto := st.WalLSN
		if upto < floor {
			upto = floor // replayed records are in every post-recovery cut
		}
		if err := store.WriteSnapshot(payload, upto); err != nil {
			t.Fatalf("snapshot: %v", err)
		}
	}

	injectFault := func() {
		if faulted {
			return
		}
		points := []string{fault.PointWALWrite, fault.PointWALSync}
		modes := []fault.Mode{fault.Fail, fault.Short, fault.NoSpace}
		point := points[rng.Intn(len(points))]
		inj.Arm(point, fault.Rule{Mode: modes[rng.Intn(len(modes))]})
		// Trigger deterministically with a throwaway at-most-once
		// subscribe: committed in memory, its journal append fires the
		// failpoint and latches the store.
		id, err := eng.Subscribe("/zz/trigger")
		if err != nil {
			t.Fatalf("trigger subscribe: %v", err)
		}
		if fired := inj.Fired(); len(fired) == 0 {
			// The point may not have been hit (sync point with no
			// sync-every-append): fall back to an explicit append check.
			if _, err := store.Append(persist.Record{Op: persist.OpUnsubscribe, ID: 0}); err == nil {
				t.Fatal("fault armed but store still healthy after append")
			}
		}
		if !store.Failed() {
			t.Fatal("store not failed after fault fired")
		}
		if !eng.Degraded() {
			t.Fatal("engine not degraded after journal error")
		}
		// A sync-point fault means the frame itself hit the file intact:
		// this harness crashes the process, not the power, so the record
		// replays on reopen. Write-point faults leave nothing (fail,
		// enospc) or a torn frame that scanWAL truncates (short).
		model[id] = &subModel{expr: "/zz/trigger", mode: broker.AtMostOnce,
			durable: point == fault.PointWALSync,
			delivered: map[string]bool{}, acked: map[string]bool{}}
		faulted = true
	}

	crashRecover := func() {
		eng.Close()
		store.Close()
		eng, store = recoverDir(t, dir, fsys)
		floor = store.LastLSN()
		faulted = false

		// 1. The durable subscription set is restored exactly.
		next := map[uint64]*subModel{}
		var wantIDs []uint64
		for id, m := range model {
			if m.durable {
				m.mode &^= 1 << 7 // tombstones revive: the unsub was lost
				next[id] = m
				wantIDs = append(wantIDs, id)
			}
		}
		model = next
		sort.Slice(wantIDs, func(i, j int) bool { return wantIDs[i] < wantIDs[j] })
		gotIDs := liveIDs(eng)
		if fmt.Sprint(gotIDs) != fmt.Sprint(wantIDs) {
			t.Fatalf("recovered live set %v, want %v (fired: %v)", gotIDs, wantIDs, inj.Fired())
		}

		// 2. Ledger conservation per at-least-once subscription: every
		// journaled-but-unacked delivery comes back exactly once, and
		// nothing acked ever does.
		for _, id := range sortedIDs() {
			m := model[id]
			if m.mode != broker.AtLeastOnce {
				continue
			}
			got := map[string]int{}
			for {
				r, err := eng.DrainBatch(id, 0, 0)
				if err != nil {
					t.Fatalf("post-recovery drain %d: %v", id, err)
				}
				if len(r.Deliveries) == 0 {
					break
				}
				var cursor uint64
				for _, d := range r.Deliveries {
					tree := eng.Document(d.Doc)
					if tree == nil {
						t.Fatalf("post-recovery doc %d not retrievable", d.Doc)
					}
					got[tree.Clone().Canonicalize().String()]++
					cursor = d.Cursor
				}
				if _, err := eng.Ack(id, cursor); err != nil {
					t.Fatalf("post-recovery ack %d: %v", id, err)
				}
			}
			for k := range m.acked {
				if got[k] > 0 {
					t.Fatalf("seed %d: acked doc %q redelivered to sub %d", seed, k, id)
				}
			}
			for k := range m.delivered {
				if m.acked[k] {
					continue
				}
				if got[k] != 1 {
					t.Fatalf("seed %d: unacked doc %q delivered %d times to sub %d after recovery, want 1", seed, k, got[k], id)
				}
			}
			// Everything is acked now; reset the ledger.
			for k := range m.delivered {
				m.acked[k] = true
			}
		}
	}

	const ops = 70
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(20); {
		case r < 6:
			subscribe()
		case r < 8:
			if len(model) > 0 {
				unsubscribe()
			}
		case r < 15:
			publish()
		case r < 17:
			snapshot()
		case r < 18:
			injectFault()
		default:
			crashRecover()
		}
	}
	crashRecover() // end every schedule with a verified recovery
	eng.Close()
	store.Close()
}
