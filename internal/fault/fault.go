// Package fault is a deterministic fault-injection framework for the
// two substrates the brokers trust blindly: the disk under
// persist.Store and the links between overlay nodes.
//
// Disk faults are named failpoints armed on an Injector and fired by a
// fault.FS wrapped around the store's filesystem: a failed fsync, a
// short write that tears a WAL frame, ENOSPC mid-snapshot, a rename
// that never lands. Network faults are a fault.Transport wrapped around
// an overlay link: seeded per-message drop, duplicate, reorder, delay.
// Both are deterministic — the same seed and the same schedule replay
// the same faults — so any failing run reproduces exactly.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// ErrInjected is the root of every injected disk error. Tests match it
// with errors.Is to tell injected faults from real ones.
var ErrInjected = errors.New("fault: injected I/O error")

// ErrNoSpace is the injected ENOSPC. It wraps ErrInjected.
var ErrNoSpace = fmt.Errorf("%w: no space left on device", ErrInjected)

// Mode selects what an armed failpoint does when it fires.
type Mode int

const (
	// Fail makes the operation return ErrInjected without touching the
	// substrate — the model for a dead disk or a failed fsync whose
	// dirty pages the kernel has already dropped.
	Fail Mode = iota
	// Short makes a write persist only a prefix of its buffer before
	// erroring — the model for a torn frame at a power cut.
	Short
	// NoSpace makes the operation return ErrNoSpace without writing.
	NoSpace
)

func (m Mode) String() string {
	switch m {
	case Fail:
		return "fail"
	case Short:
		return "short"
	case NoSpace:
		return "enospc"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Rule arms one failpoint.
type Rule struct {
	// Mode is what happens when the rule fires.
	Mode Mode
	// Nth is the 1-based hit of the failpoint that fires the rule
	// (zero means the first hit). Each rule fires once, then disarms:
	// the store underneath is fail-stop, so one fault is the whole
	// story.
	Nth int
	// Bytes bounds how much of a Short write persists before the
	// error (zero: half the buffer). Ignored by other modes.
	Bytes int
}

// Injector is a registry of named failpoints. Arm rules on it, hand it
// to a fault.FS, and the next matching operation fails on schedule.
// Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rules map[string]*armed
	hits  map[string]int
	fired []string
}

type armed struct {
	rule Rule
}

// NewInjector returns an empty Injector; with no rules armed every
// operation passes through untouched.
func NewInjector() *Injector {
	return &Injector{rules: make(map[string]*armed), hits: make(map[string]int)}
}

// Arm installs a rule on the named failpoint (see the Point* constants
// in this package), replacing any rule already armed there.
func (in *Injector) Arm(point string, r Rule) {
	if r.Nth <= 0 {
		r.Nth = 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[point] = &armed{rule: r}
	in.hits[point] = 0
}

// fire records a hit on point and reports whether an armed rule fires
// on this hit. A firing rule disarms itself.
func (in *Injector) fire(point string) (Rule, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	a := in.rules[point]
	if a == nil {
		return Rule{}, false
	}
	in.hits[point]++
	if in.hits[point] < a.rule.Nth {
		return Rule{}, false
	}
	delete(in.rules, point)
	in.fired = append(in.fired, fmt.Sprintf("%s:%s@%d", point, a.rule.Mode, a.rule.Nth))
	return a.rule, true
}

// Fired returns the failpoints that have fired, in order, as
// "point:mode@nth" strings — the audit trail a checker prints when a
// seeded schedule fails.
func (in *Injector) Fired() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, len(in.fired))
	copy(out, in.fired)
	return out
}

// Armed reports whether any rule is still waiting to fire.
func (in *Injector) Armed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.rules) > 0
}

// ParseSpec builds an Injector from a comma-separated schedule of
// "point:mode[@nth]" terms, e.g. "wal.sync:fail@2,snapshot.rename:fail".
// Modes are fail, short, enospc. This is the grammar behind the
// daemon's -fault-disk flag.
func ParseSpec(spec string) (*Injector, error) {
	in := NewInjector()
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		point, rest, ok := strings.Cut(term, ":")
		if !ok || point == "" {
			return nil, fmt.Errorf("fault: bad term %q: want point:mode[@nth]", term)
		}
		modeStr, nthStr, hasNth := strings.Cut(rest, "@")
		var mode Mode
		switch modeStr {
		case "fail":
			mode = Fail
		case "short":
			mode = Short
		case "enospc":
			mode = NoSpace
		default:
			return nil, fmt.Errorf("fault: bad mode %q in %q: want fail, short, or enospc", modeStr, term)
		}
		nth := 1
		if hasNth {
			n, err := strconv.Atoi(nthStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: bad hit count %q in %q", nthStr, term)
			}
			nth = n
		}
		in.Arm(point, Rule{Mode: mode, Nth: nth})
	}
	return in, nil
}
