package fault

import (
	"os"
	"strings"

	"treesim/internal/persist"
)

// Failpoint names fired by FS. The WAL points fire on the store's log
// file, the snapshot points on the temp file a snapshot is staged in
// and the rename that publishes it.
const (
	PointWALWrite    = "wal.write"
	PointWALSync     = "wal.sync"
	PointWALTruncate = "wal.truncate"
	PointSnapWrite   = "snapshot.write"
	PointSnapSync    = "snapshot.sync"
	PointSnapRename  = "snapshot.rename"
)

// FS is a persist.FS that consults an Injector before touching the real
// filesystem. Files are classified by name — the store's WAL by its
// fixed basename, snapshot staging files by their temp pattern — so a
// rule armed on a wal.* point never trips a snapshot write.
type FS struct {
	inner persist.FS
	inj   *Injector
}

// NewFS wraps the real filesystem with inj's failpoints.
func NewFS(inj *Injector) *FS { return &FS{inner: persist.OSFS{}, inj: inj} }

func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (persist.File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(name, "wal.log") {
		return &faultFile{File: file, inj: f.inj, kind: "wal"}, nil
	}
	return file, nil
}

func (f *FS) Open(name string) (persist.File, error) { return f.inner.Open(name) }

func (f *FS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

func (f *FS) CreateTemp(dir, pattern string) (persist.File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, inj: f.inj, kind: "snapshot"}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	if _, ok := f.inj.fire(PointSnapRename); ok {
		return ErrInjected
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error { return f.inner.Remove(name) }

// faultFile intercepts Write/Sync/Truncate on a classified file.
type faultFile struct {
	persist.File
	inj  *Injector
	kind string // "wal" or "snapshot"
}

func (f *faultFile) Write(p []byte) (int, error) {
	r, ok := f.inj.fire(f.kind + ".write")
	if !ok {
		return f.File.Write(p)
	}
	switch r.Mode {
	case Short:
		// Persist a strict prefix for real — the torn frame must be on
		// disk for recovery to trip over — then report the failure.
		cut := r.Bytes
		if cut <= 0 || cut >= len(p) {
			cut = len(p) / 2
		}
		n, err := f.File.Write(p[:cut])
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	case NoSpace:
		return 0, ErrNoSpace
	default:
		return 0, ErrInjected
	}
}

func (f *faultFile) Sync() error {
	if r, ok := f.inj.fire(f.kind + ".sync"); ok {
		if r.Mode == NoSpace {
			return ErrNoSpace
		}
		return ErrInjected
	}
	return f.File.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if f.kind == "wal" {
		if r, ok := f.inj.fire(PointWALTruncate); ok {
			if r.Mode == NoSpace {
				return ErrNoSpace
			}
			return ErrInjected
		}
	}
	return f.File.Truncate(size)
}
