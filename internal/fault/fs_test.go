package fault_test

import (
	"errors"
	"os"
	"strings"
	"testing"

	"treesim/internal/fault"
	"treesim/internal/persist"
)

func openStore(t *testing.T, dir string, fsys persist.FS, sync bool) *persist.Store {
	t.Helper()
	s, err := persist.Open(dir, persist.Options{FS: fsys, SyncEveryAppend: sync})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func appendN(t *testing.T, s *persist.Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Append(persist.Record{Op: persist.OpSubscribe, ID: uint64(i + 1), Expr: "/a/b"}); err != nil {
			t.Fatalf("Append %d: %v", i+1, err)
		}
	}
}

// replayIDs reopens dir with a clean FS and returns the IDs of every
// record the recovered store replays.
func replayIDs(t *testing.T, dir string) []uint64 {
	t.Helper()
	s, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	var ids []uint64
	if err := s.Replay(func(r persist.Record) error {
		ids = append(ids, r.ID)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return ids
}

// TestFailStopShortWrite is the fail-stop regression: a short write
// tears the log mid-frame; the store must latch ErrStoreFailed — a
// later "successful" append would land behind the tear and be silently
// unrecoverable — and everything committed before the fault must
// survive reopen. Cut points walk the frame: 1 byte, mid-header,
// just past the header, and deep into the body.
func TestFailStopShortWrite(t *testing.T) {
	for _, cut := range []int{1, 4, 9, 20} {
		t.Run("cut", func(t *testing.T) {
			dir := t.TempDir()
			inj := fault.NewInjector()
			s := openStore(t, dir, fault.NewFS(inj), false)
			appendN(t, s, 3)

			inj.Arm(fault.PointWALWrite, fault.Rule{Mode: fault.Short, Bytes: cut})
			_, err := s.Append(persist.Record{Op: persist.OpSubscribe, ID: 99, Expr: "/x"})
			if !errors.Is(err, persist.ErrStoreFailed) || !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("faulted append err = %v, want ErrStoreFailed wrapping ErrInjected", err)
			}
			if !s.Failed() {
				t.Fatal("store not latched failed after short write")
			}
			// Every subsequent mutation is refused outright — nothing may
			// land behind the torn frame.
			if _, err := s.Append(persist.Record{Op: persist.OpSubscribe, ID: 100}); !errors.Is(err, persist.ErrStoreFailed) {
				t.Fatalf("append after fault err = %v, want ErrStoreFailed", err)
			}
			if err := s.WriteSnapshot([]byte("x"), 3); !errors.Is(err, persist.ErrStoreFailed) {
				t.Fatalf("snapshot after fault err = %v, want ErrStoreFailed", err)
			}
			s.Close()

			if ids := replayIDs(t, dir); len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
				t.Fatalf("recovered %v, want the 3 pre-fault records", ids)
			}
		})
	}
}

// TestFailStopFsync: with SyncEveryAppend, a failed fsync fails the
// append and latches the store. The acknowledged prefix — appends that
// returned nil — must survive reopen exactly.
func TestFailStopFsync(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector()
	s := openStore(t, dir, fault.NewFS(inj), true)
	appendN(t, s, 2)

	inj.Arm(fault.PointWALSync, fault.Rule{Mode: fault.Fail})
	if _, err := s.Append(persist.Record{Op: persist.OpSubscribe, ID: 50}); !errors.Is(err, persist.ErrStoreFailed) {
		t.Fatalf("append with failed fsync err = %v, want ErrStoreFailed", err)
	}
	if _, err := s.Append(persist.Record{Op: persist.OpSubscribe, ID: 51}); !errors.Is(err, persist.ErrStoreFailed) {
		t.Fatalf("append after fault err = %v, want ErrStoreFailed", err)
	}
	s.Close()

	ids := replayIDs(t, dir)
	if len(ids) < 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("recovered %v, want at least the 2 acknowledged records first", ids)
	}
	// The unacknowledged record may or may not have reached the page
	// cache, but nothing beyond it can exist.
	if len(ids) > 3 || (len(ids) == 3 && ids[2] != 50) {
		t.Fatalf("recovered %v: phantom records after the fault", ids)
	}
}

// TestENOSPCMidSnapshot: a snapshot that hits ENOSPC writing its temp
// file fails the store, but the previous snapshot and the full WAL are
// untouched — recovery sees exactly the pre-fault state.
func TestENOSPCMidSnapshot(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector()
	s := openStore(t, dir, fault.NewFS(inj), false)
	appendN(t, s, 3)

	inj.Arm(fault.PointSnapWrite, fault.Rule{Mode: fault.NoSpace})
	err := s.WriteSnapshot([]byte("state"), 3)
	if !errors.Is(err, persist.ErrStoreFailed) || !errors.Is(err, fault.ErrNoSpace) {
		t.Fatalf("snapshot err = %v, want ErrStoreFailed wrapping ErrNoSpace", err)
	}
	if _, err := s.Append(persist.Record{Op: persist.OpSubscribe, ID: 9}); !errors.Is(err, persist.ErrStoreFailed) {
		t.Fatalf("append after snapshot fault err = %v, want ErrStoreFailed", err)
	}
	s.Close()

	s2, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if _, ok, err := s2.LoadSnapshot(); err != nil || ok {
		t.Fatalf("LoadSnapshot after failed publish: ok=%v err=%v, want no snapshot", ok, err)
	}
	if ids := replayIDs(t, dir); len(ids) != 3 {
		t.Fatalf("recovered %v, want all 3 WAL records", ids)
	}
}

// TestSnapshotRenameFailure: the rename is the snapshot commit point; a
// failed rename keeps the old state whole and fails the store.
func TestSnapshotRenameFailure(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector()
	s := openStore(t, dir, fault.NewFS(inj), false)
	appendN(t, s, 2)
	if err := s.WriteSnapshot([]byte("v1"), 2); err != nil {
		t.Fatalf("first snapshot: %v", err)
	}
	appendN2 := func(id uint64) {
		if _, err := s.Append(persist.Record{Op: persist.OpSubscribe, ID: id, Expr: "/y"}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	appendN2(7)

	inj.Arm(fault.PointSnapRename, fault.Rule{Mode: fault.Fail})
	if err := s.WriteSnapshot([]byte("v2"), 3); !errors.Is(err, persist.ErrStoreFailed) {
		t.Fatalf("snapshot err = %v, want ErrStoreFailed", err)
	}
	s.Close()

	s2, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	payload, ok, err := s2.LoadSnapshot()
	if err != nil || !ok || string(payload) != "v1" {
		t.Fatalf("LoadSnapshot = %q ok=%v err=%v, want the v1 snapshot", payload, ok, err)
	}
	var ids []uint64
	if err := s2.Replay(func(r persist.Record) error { ids = append(ids, r.ID); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("replayed %v over v1, want just record 7", ids)
	}
	// The aborted temp file must not have leaked into the data dir
	// under the snapshot's name.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".snapshot-") {
			continue // debris from the failed publish is fine; it is never read
		}
		if e.Name() != "snapshot.snap" && e.Name() != "wal.log" {
			t.Errorf("unexpected file %s", e.Name())
		}
	}
}

// TestWALTruncateFailure: a snapshot that publishes but cannot truncate
// the covered WAL prefix latches the store; the stale records are
// skipped by the watermark on replay, so the state is still exact.
func TestWALTruncateFailure(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector()
	s := openStore(t, dir, fault.NewFS(inj), false)
	appendN(t, s, 3)

	inj.Arm(fault.PointWALTruncate, fault.Rule{Mode: fault.Fail})
	if err := s.WriteSnapshot([]byte("covers-3"), 3); !errors.Is(err, persist.ErrStoreFailed) {
		t.Fatalf("snapshot err = %v, want ErrStoreFailed", err)
	}
	s.Close()

	s2, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	payload, ok, err := s2.LoadSnapshot()
	if err != nil || !ok || string(payload) != "covers-3" {
		t.Fatalf("LoadSnapshot = %q ok=%v err=%v", payload, ok, err)
	}
	var ids []uint64
	if err := s2.Replay(func(r persist.Record) error { ids = append(ids, r.ID); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("replayed %v, want none (snapshot covers the whole log)", ids)
	}
}

// trackFS wraps a persist.FS and records whether the WAL file was
// closed — the observability hook for the Close error-path test.
type trackFS struct {
	persist.FS
	walClosed *bool
}

func (f trackFS) OpenFile(name string, flag int, perm os.FileMode) (persist.File, error) {
	file, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(name, "wal.log") {
		return trackFile{File: file, closed: f.walClosed}, nil
	}
	return file, nil
}

type trackFile struct {
	persist.File
	closed *bool
}

func (f trackFile) Close() error {
	*f.closed = true
	return f.File.Close()
}

// TestCloseAfterSyncFailure pins the Close contract: when the final
// fsync fails, the file is still closed and the sync error is reported
// unmasked.
func TestCloseAfterSyncFailure(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector()
	var walClosed bool
	fsys := trackFS{FS: fault.NewFS(inj), walClosed: &walClosed}
	s := openStore(t, dir, fsys, false)
	appendN(t, s, 1)

	inj.Arm(fault.PointWALSync, fault.Rule{Mode: fault.Fail})
	err := s.Close()
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Close err = %v, want the injected sync error", err)
	}
	if !walClosed {
		t.Fatal("Close returned the sync error but left the file open")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

// TestCloseSkipsSyncWhenFailed: once the store has latched fail-stop,
// Close must not retry fsync (the retry would falsely report the lost
// pages as flushed) — it just closes the file.
func TestCloseSkipsSyncWhenFailed(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector()
	var walClosed bool
	fsys := trackFS{FS: fault.NewFS(inj), walClosed: &walClosed}
	s := openStore(t, dir, fsys, true)
	appendN(t, s, 1)

	inj.Arm(fault.PointWALSync, fault.Rule{Mode: fault.Fail})
	if _, err := s.Append(persist.Record{Op: persist.OpSubscribe, ID: 5}); !errors.Is(err, persist.ErrStoreFailed) {
		t.Fatalf("append err = %v, want ErrStoreFailed", err)
	}
	// Re-arm: if Close retried the sync, this rule would fire and the
	// injector would show a second firing.
	inj.Arm(fault.PointWALSync, fault.Rule{Mode: fault.Fail})
	if err := s.Close(); err != nil {
		t.Fatalf("Close on failed store = %v, want nil (no sync retry, clean close)", err)
	}
	if !walClosed {
		t.Fatal("file not closed")
	}
	if !inj.Armed() {
		t.Fatal("Close retried fsync on a failed store (fsyncgate)")
	}
}

// TestParseSpec round-trips the -fault-disk grammar.
func TestParseSpec(t *testing.T) {
	in, err := fault.ParseSpec("wal.sync:fail@2, snapshot.rename:enospc")
	if err != nil {
		t.Fatal(err)
	}
	if !in.Armed() {
		t.Fatal("nothing armed")
	}
	for _, bad := range []string{"wal.sync", "wal.sync:explode", "wal.sync:fail@0", ":fail"} {
		if _, err := fault.ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
