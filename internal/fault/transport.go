package fault

import (
	"math/rand"
	"sync"
	"time"

	"treesim/internal/overlay"
	"treesim/internal/overlay/wire"
)

// TransportOptions sets the per-message misbehavior probabilities for a
// faulty link. All default to zero — a zero-value options struct is a
// clean wire.
type TransportOptions struct {
	// Drop is the probability a message silently vanishes (the send
	// reports success, UDP-style — distinct from a severed link, which
	// errors).
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Reorder is the probability a message is held back and delivered
	// after the next message on this link (or on Flush).
	Reorder float64
	// DelayMax, when positive, sleeps a seeded uniform duration in
	// [0, DelayMax) before each delivery.
	DelayMax time.Duration
	// AdvertsOnly confines the faults to advert traffic, leaving
	// publications clean — for scenarios that must keep recall exact
	// while the control plane churns.
	AdvertsOnly bool
}

// Transport wraps an overlay.Transport with seeded per-message drop,
// duplicate, reorder, and delay. Decisions come from a private
// math/rand stream, so a topology wired with the same seeds misbehaves
// identically on every run. Safe for concurrent use; decisions and
// deliveries are serialized per link, which keeps the fault schedule
// deterministic even with concurrent senders.
type Transport struct {
	mu       sync.Mutex
	rng      *rand.Rand
	inner    overlay.Transport
	opts     TransportOptions
	held     func() error // one reordered message awaiting its successor
	inflight int          // deliveries decided but not yet executed

	drops, dups, reorders uint64
}

// NewTransport wraps inner with seeded faults.
func NewTransport(inner overlay.Transport, seed int64, opts TransportOptions) *Transport {
	return &Transport{rng: rand.New(rand.NewSource(seed)), inner: inner, opts: opts}
}

// SendAdvert implements overlay.Transport.
func (t *Transport) SendAdvert(b wire.AdvertBatch) error {
	return t.send(false, func() error { return t.inner.SendAdvert(b) })
}

// SendPublish implements overlay.Transport.
func (t *Transport) SendPublish(p wire.Publication) error {
	return t.send(true, func() error { return t.inner.SendPublish(p) })
}

func (t *Transport) send(isPub bool, deliver func() error) error {
	// Decide under the lock (keeps the rng stream and the fault
	// schedule deterministic), deliver outside it: a synchronous
	// delivery can fan out through the whole overlay — re-gossip,
	// forwarding — and holding a link mutex across that walk could
	// deadlock against a concurrent chain walking the links in the
	// opposite order.
	var plan []func() error
	var delay time.Duration
	t.mu.Lock()
	switch {
	case isPub && t.opts.AdvertsOnly:
		plan = append(plan, deliver)
	default:
		if t.opts.DelayMax > 0 {
			delay = time.Duration(t.rng.Int63n(int64(t.opts.DelayMax)))
		}
		if t.rng.Float64() < t.opts.Drop {
			t.drops++
			break
		}
		// A message held for reordering is released right after its
		// successor, swapping the pair on the wire.
		if t.held == nil && t.rng.Float64() < t.opts.Reorder {
			t.reorders++
			t.held = deliver
			break
		}
		plan = append(plan, deliver)
		if t.rng.Float64() < t.opts.Duplicate {
			t.dups++
			plan = append(plan, deliver)
		}
		if t.held != nil {
			plan = append(plan, t.held)
			t.held = nil
		}
	}
	if len(plan) > 0 {
		t.inflight++
	}
	t.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if len(plan) == 0 {
		return nil
	}
	var err error
	for _, d := range plan {
		if e := d(); err == nil {
			err = e
		}
	}
	t.mu.Lock()
	t.inflight--
	t.mu.Unlock()
	return err
}

// Flush delivers any message still held for reordering. Call it when a
// scenario quiesces the link, so a reordered message is late, never
// lost.
func (t *Transport) Flush() error {
	t.mu.Lock()
	held := t.held
	t.held = nil
	if held != nil {
		t.inflight++
	}
	t.mu.Unlock()
	if held == nil {
		return nil
	}
	err := held()
	t.mu.Lock()
	t.inflight--
	t.mu.Unlock()
	return err
}

// Idle reports whether this link is quiescent: nothing held for
// reordering and no delivery mid-execution. A harness that must see
// every in-flight message land before asserting (e.g. drain-and-compare
// checkers racing background keepalive senders) flushes every link and
// then waits for all of them to be idle.
func (t *Transport) Idle() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.held == nil && t.inflight == 0
}

// Stats reports how many messages were dropped, duplicated, and
// reordered so far.
func (t *Transport) Stats() (drops, dups, reorders uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops, t.dups, t.reorders
}
