package fault_test

import (
	"fmt"
	"testing"

	"treesim/internal/broker"
	"treesim/internal/fault"
	"treesim/internal/overlay"
	"treesim/internal/xmltree"
)

func newNode(t *testing.T, id string) *overlay.Node {
	t.Helper()
	eng := broker.New(broker.Config{
		Threshold: 2, // exact mode: singleton communities, no false positives
		Rebuild:   broker.Never{},
	})
	t.Cleanup(func() { eng.Close() })
	n := overlay.New(eng, overlay.Config{ID: id, AdvertPolicy: broker.Staleness{MaxStale: 1}})
	t.Cleanup(n.Close)
	return n
}

func parseDoc(t *testing.T, s string) *xmltree.Tree {
	t.Helper()
	tree, err := xmltree.ParseString(s, xmltree.ParseOptions{})
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return tree
}

// connectFaulty links a and b through faulty transports in both
// directions and returns both wrappers for flushing.
func connectFaulty(t *testing.T, a, b *overlay.Node, seed int64, opts fault.TransportOptions) (ab, ba *fault.Transport) {
	t.Helper()
	ab = fault.NewTransport(overlay.Inproc{Peer: b}, seed, opts)
	ba = fault.NewTransport(overlay.Inproc{Peer: a}, seed+1, opts)
	if err := overlay.ConnectTransports(a, b, ab, ba); err != nil {
		t.Fatalf("connect %s-%s: %v", a.ID(), b.ID(), err)
	}
	return ab, ba
}

// TestSoakDuplicateReorder runs a 3-node line whose links duplicate and
// reorder aggressively. The overlay's seen-set and advert versioning
// must absorb all of it: every published document reaches the acked
// subscriber exactly once (no unflagged duplicates), and adverts
// converge so recall stays 1.0.
func TestSoakDuplicateReorder(t *testing.T) {
	const docs = 60
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			a := newNode(t, "a")
			b := newNode(t, "b")
			c := newNode(t, "c")
			opts := fault.TransportOptions{Duplicate: 0.4, Reorder: 0.4}
			links := make([]*fault.Transport, 0, 4)
			ab, ba := connectFaulty(t, a, b, seed*100, opts)
			bc, cb := connectFaulty(t, b, c, seed*100+2, opts)
			links = append(links, ab, ba, bc, cb)
			flush := func() {
				// Two passes: a flush can release a held message whose
				// synchronous fan-out gets held on another link.
				for i := 0; i < 2; i++ {
					for _, l := range links {
						if err := l.Flush(); err != nil {
							t.Fatalf("flush: %v", err)
						}
					}
				}
			}

			// An acked subscriber at c, a plain one at b: both must see
			// every matching document exactly once.
			subC, err := c.Engine().SubscribeOpts("/x/y", broker.SubscribeOptions{Mode: broker.AtLeastOnce})
			if err != nil {
				t.Fatalf("subscribe c: %v", err)
			}
			subB, err := b.Engine().Subscribe("//y")
			if err != nil {
				t.Fatalf("subscribe b: %v", err)
			}
			flush() // adverts may be held; release before publishing

			for i := 0; i < docs; i++ {
				doc := parseDoc(t, fmt.Sprintf("<x><y/><m%d/></x>", i))
				if _, _, err := a.Publish(doc); err != nil {
					t.Fatalf("publish %d: %v", i, err)
				}
			}
			flush()

			// c (at-least-once): drain everything, ack, and verify each
			// document arrived exactly once with no redelivery flags —
			// wire-level duplicates must die in the seen-set, never
			// reaching the ack log.
			seen := map[string]int{}
			for {
				r, err := c.Engine().DrainBatch(subC, 0, 0)
				if err != nil {
					t.Fatalf("drain c: %v", err)
				}
				if len(r.Deliveries) == 0 {
					break
				}
				for _, d := range r.Deliveries {
					if d.Redelivered {
						t.Errorf("delivery cursor %d flagged redelivered with no crash or lease lapse", d.Cursor)
					}
					tree := c.Engine().Document(d.Doc)
					if tree == nil {
						t.Fatalf("doc %d not retrievable", d.Doc)
					}
					seen[tree.Clone().Canonicalize().String()]++
				}
				if _, err := c.Engine().Ack(subC, r.Deliveries[len(r.Deliveries)-1].Cursor); err != nil {
					t.Fatalf("ack c: %v", err)
				}
			}
			if len(seen) != docs {
				t.Fatalf("c saw %d distinct documents, want %d (recall broken)", len(seen), docs)
			}
			for k, n := range seen {
				if n != 1 {
					t.Errorf("c saw %q %d times, want exactly once", k, n)
				}
			}

			// b (at-most-once): same exactness.
			ds, err := b.Engine().Drain(subB, 0, 0)
			if err != nil {
				t.Fatalf("drain b: %v", err)
			}
			if len(ds) != docs {
				t.Fatalf("b drained %d deliveries, want %d", len(ds), docs)
			}

			// Advert convergence: every node's routing table must know
			// both other origins despite duplicated/reordered adverts.
			for _, n := range []*overlay.Node{a, b, c} {
				info := n.Info()
				if len(info.Origins) != 2 {
					t.Errorf("%s routing table has %d origins, want 2", n.ID(), len(info.Origins))
				}
			}

			// The schedule must actually have misbehaved, or the soak
			// proved nothing.
			var dups, reorders uint64
			for _, l := range links {
				_, d, r := l.Stats()
				dups += d
				reorders += r
			}
			if dups == 0 || reorders == 0 {
				t.Fatalf("fault schedule idle: dups=%d reorders=%d", dups, reorders)
			}
		})
	}
}

// TestTransportDeterminism: the same seed yields the same fault
// schedule, message for message.
func TestTransportDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		a := newNode(t, "da")
		b := newNode(t, "db")
		ab, ba := connectFaulty(t, a, b, 42, fault.TransportOptions{Drop: 0.2, Duplicate: 0.3, Reorder: 0.3})
		if _, err := b.Engine().Subscribe("//y"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			if _, _, err := a.Publish(parseDoc(t, fmt.Sprintf("<x><y/><m%d/></x>", i))); err != nil {
				t.Fatal(err)
			}
		}
		ab.Flush()
		ba.Flush()
		d1, u1, r1 := ab.Stats()
		return d1, u1, r1
	}
	d1, u1, r1 := run()
	d2, u2, r2 := run()
	if d1 != d2 || u1 != u2 || r1 != r2 {
		t.Fatalf("schedules diverged: %d/%d/%d vs %d/%d/%d", d1, u1, r1, d2, u2, r2)
	}
	if d1 == 0 && u1 == 0 && r1 == 0 {
		t.Fatal("schedule idle")
	}
}
