// Package intern provides a label symbol table: a dense mapping from
// tag strings to uint32 ids, so the matching hot paths compare and set
// integers (bitset positions) instead of hashing strings.
//
// The table is asymmetric by design. Pattern labels are interned with
// ID — the vocabulary is bounded by the historically-seen subscription
// labels (ids are dense and never reclaimed) — while document labels
// are resolved with the read-only Lookup: a document label absent from
// the table cannot equal any pattern tag, so it maps to NoSym and the
// table never grows with document traffic (which may promote unbounded
// text values to labels).
package intern

import (
	"sync"
	"sync/atomic"
)

// NoSym is the id of labels not present in the table. Real symbols
// start at 1, so NoSym never collides with an interned label.
const NoSym uint32 = 0

// Table maps label strings to dense symbol ids. Lookup is lock-free
// (an atomic snapshot of an immutable map) and safe for any number of
// concurrent readers; ID and concurrent ID calls synchronize
// internally, so the table as a whole is safe for concurrent use.
type Table struct {
	mu     sync.Mutex
	labels []string // labels[id-1] = label; guarded by mu
	snap   atomic.Pointer[map[string]uint32]
}

// NewTable returns an empty table.
func NewTable() *Table {
	t := &Table{}
	m := make(map[string]uint32)
	t.snap.Store(&m)
	return t
}

// ID returns the symbol for label, interning it if new. Ids are dense
// and start at 1.
func (t *Table) ID(label string) uint32 {
	if id, ok := (*t.snap.Load())[label]; ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.snap.Load()
	if id, ok := old[label]; ok {
		return id
	}
	t.labels = append(t.labels, label)
	id := uint32(len(t.labels))
	// Copy-on-write keeps Lookup lock-free: readers always see a
	// complete, immutable map.
	next := make(map[string]uint32, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[label] = id
	t.snap.Store(&next)
	return id
}

// Lookup returns the symbol for label, or NoSym if it was never
// interned. It never grows the table.
func (t *Table) Lookup(label string) uint32 {
	return (*t.snap.Load())[label]
}

// Len returns the number of interned symbols. Valid ids are 1..Len().
func (t *Table) Len() int {
	return len(*t.snap.Load())
}

// Label returns the string for a symbol id (the inverse of ID). It
// panics on NoSym or an id that was never assigned.
func (t *Table) Label(id uint32) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.labels[id-1]
}
