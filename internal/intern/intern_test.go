package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestIDAndLookup(t *testing.T) {
	tbl := NewTable()
	a := tbl.ID("a")
	b := tbl.ID("b")
	if a != 1 || b != 2 {
		t.Fatalf("ids = %d,%d, want dense from 1", a, b)
	}
	if got := tbl.ID("a"); got != a {
		t.Errorf("re-intern a = %d, want %d", got, a)
	}
	if got := tbl.Lookup("b"); got != b {
		t.Errorf("Lookup b = %d, want %d", got, b)
	}
	if got := tbl.Lookup("never"); got != NoSym {
		t.Errorf("Lookup unseen = %d, want NoSym", got)
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d, want 2", tbl.Len())
	}
	if tbl.Label(a) != "a" || tbl.Label(b) != "b" {
		t.Errorf("Label round trip failed")
	}
}

func TestLookupDoesNotGrow(t *testing.T) {
	tbl := NewTable()
	tbl.ID("x")
	for i := 0; i < 100; i++ {
		tbl.Lookup(fmt.Sprintf("doc-label-%d", i))
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d after Lookups, want 1", tbl.Len())
	}
}

// TestConcurrent hammers ID and Lookup from many goroutines; run with
// -race to verify the copy-on-write discipline.
func TestConcurrent(t *testing.T) {
	tbl := NewTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lbl := fmt.Sprintf("l%d", i%50)
				id := tbl.ID(lbl)
				if got := tbl.Lookup(lbl); got != id {
					t.Errorf("Lookup(%q) = %d, want %d", lbl, got, id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if tbl.Len() != 50 {
		t.Errorf("Len = %d, want 50", tbl.Len())
	}
	// Every label must have a unique id.
	seen := make(map[uint32]bool)
	for i := 0; i < 50; i++ {
		id := tbl.Lookup(fmt.Sprintf("l%d", i))
		if id == NoSym || seen[id] {
			t.Fatalf("id %d for l%d duplicated or missing", id, i)
		}
		seen[id] = true
	}
}
