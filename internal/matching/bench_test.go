package matching

import (
	"fmt"
	"testing"

	"treesim/internal/dtd"
	"treesim/internal/pattern"
	"treesim/internal/querygen"
	"treesim/internal/xmlgen"
	"treesim/internal/xmltree"
)

// benchWorkload builds a paper-style workload: NITF-like documents and
// generated tree-pattern subscriptions.
func benchWorkload(nDocs, nSubs int) ([]*xmltree.Tree, []*pattern.Pattern) {
	d := dtd.NITFLike()
	docs := xmlgen.New(d, xmlgen.Calibrate(d, 100, 41)).GenerateN(nDocs)
	subs := querygen.New(d, querygen.Defaults(43)).GenerateDistinct(nSubs)
	return docs, subs
}

var benchSubTiers = []int{64, 1024, 8192}

// BenchmarkEngineMatch measures the single-pass forest engine: one
// document against the whole registered pattern set, reporting the
// matches decided per operation.
func BenchmarkEngineMatch(b *testing.B) {
	for _, n := range benchSubTiers {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			docs, subs := benchWorkload(64, n)
			f := NewForest()
			hs := make([]int, len(subs))
			for i, p := range subs {
				hs[i] = f.Add(p)
			}
			b.ReportMetric(float64(f.NodeCount()), "forestnodes")
			var matched uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ms := f.Match(docs[i%len(docs)])
				matched += uint64(ms.Count())
				ms.Release()
			}
			b.StopTimer()
			b.ReportMetric(float64(matched)/float64(b.N), "matches/op")
		})
	}
}

// BenchmarkEngineMatchOracle is the pre-forest baseline at the same
// tiers: one pattern.Matches memo per (document, pattern) pair.
func BenchmarkEngineMatchOracle(b *testing.B) {
	for _, n := range benchSubTiers {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			docs, subs := benchWorkload(64, n)
			var matched uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := docs[i%len(docs)]
				for _, p := range subs {
					if pattern.Matches(d, p) {
						matched++
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(matched)/float64(b.N), "matches/op")
		})
	}
}

// BenchmarkPrefilterEngine measures the candidate-pruning Engine
// (required-tag prefilter + exact matcher) on the same workload.
func BenchmarkPrefilterEngine(b *testing.B) {
	docs, subs := benchWorkload(64, 1024)
	eng := NewEngine(subs)
	for _, d := range docs {
		eng.Match(d) // warm the corpus statistics
	}
	eng.Rebucket()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.Match(docs[i%len(docs)])
	}
	b.StopTimer()
	docsN, cands, _ := eng.Stats()
	b.ReportMetric(float64(cands)/float64(docsN), "candidates/doc")
}

// BenchmarkForestChurn measures incremental Add/Remove on a populated
// forest (the broker's subscribe/unsubscribe path).
func BenchmarkForestChurn(b *testing.B) {
	_, subs := benchWorkload(1, 1024)
	f := NewForest()
	hs := make([]int, 0, len(subs))
	for _, p := range subs[:512] {
		hs = append(hs, f.Add(p))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hs = append(hs, f.Add(subs[512+i%512]))
		f.Remove(hs[0])
		hs = hs[1:]
	}
}
