package matching

import (
	"math/bits"
	"strconv"
	"sync"

	"treesim/internal/bitset"
	"treesim/internal/intern"
	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

// Forest is a shared single-pass multi-pattern matching engine: every
// registered pattern is merged into one hash-consed forest (a DAG with
// common-subtree sharing, in the spirit of the XFilter/YFilter/XTrie
// engines the paper cites), and one bottom-up post-order traversal of a
// document decides ALL patterns simultaneously. Per-document-node work
// is a handful of word-parallel bitset operations over the forest's
// node universe plus sparse iteration over the bits that actually
// fired, with all scratch pooled — the steady-state match path
// allocates nothing.
//
// Semantics are exactly pattern.Matches (the reference oracle, enforced
// by differential fuzzing). Patterns that fail pattern.Validate — only
// constructible by hand, never by pattern.Parse — are routed through
// the oracle per document instead of being compiled, so Add never
// rejects.
//
// For each document node t (children first), the traversal maintains
// two bitsets over forest nodes:
//
//	NS(t): v is "node-satisfied" at t — t's label is admissible for v
//	       and every child constraint of v holds relative to t.
//	SAT(t): v "holds relative to context t" — the paper's sat(t,v):
//	       for tag/"*" nodes, some child of t is node-satisfied; for
//	       "//" nodes, some descendant-or-self of t satisfies the
//	       operator's child constraint.
//
// Both are computed from the children's vectors with unions; nodes
// with child constraints are found through inverse first-kid indexes
// (only constraints whose kids fired are examined), leaf constraints
// through precomputed per-label bitsets. A pattern matches iff all its
// root children's bits are set in the root's vectors ("//" root
// children re-root and use a separate node kind, kindRootDesc).
//
// Concurrency: Match may run concurrently with Match (scratch is
// pooled per call); Add and Remove require external exclusion against
// both each other and Match — the callers (broker registry lock,
// overlay link-forest lock) already hold exactly that.
type Forest struct {
	tbl *intern.Table

	nodes   []forestNode
	freeIDs []uint32
	index   map[string]uint32 // canonical key -> node id (hash-consing)

	// Match-path indexes, maintained by compile/release. All are dense
	// slices — symbols and node ids are dense, and the match loop
	// consults these once per fired bit per document node, so a map
	// lookup (hash + probe) there costs more than the whole word-scan
	// around it. Masks share the node-id universe (grown under Add's
	// exclusivity, never from Match, which runs concurrently with
	// itself):
	//
	//	leafTag[sym]: kindTag nodes with that label and no kids —
	//	              node-satisfied by label alone. Indexed by interned
	//	              symbol; with a shared table, symbols interned by
	//	              OTHER forests may exceed this forest's slice, so
	//	              readers bounds-check (absent == nil == no leaves).
	//	wildLeaf:     kindWild nodes with no kids — satisfied anywhere.
	//	byFirstKid:   tag/wild nodes with kids, indexed by their lowest
	//	              kid id; consulted only when that kid's bit fires.
	//	byDescKid / descMask: kindDesc nodes by kid / by own id.
	//	byRdKid / rdMask: kindRootDesc nodes by kid / by own id.
	leafTag      []*bitset.Set
	wildLeaf     *bitset.Set
	byFirstKid   [][]uint32
	firstKidMask *bitset.Set
	byDescKid    [][]uint32
	descKidMask  *bitset.Set
	descMask     *bitset.Set
	byRdKid      [][]uint32
	rdKidMask    *bitset.Set
	rdMask       *bitset.Set

	pats     []patEntry
	freePats []int
	grownTo  int // universe size the masks were last grown to

	frames  sync.Pool // *frameStack
	msPool  sync.Pool // *MatchSet
	docPool sync.Pool // *xmltree.Flat
	keyBuf  []byte
}

type nodeKind uint8

const (
	kindTag      nodeKind = iota // concrete tag: label match + child constraints
	kindWild                     // "*": any label + child constraints
	kindDesc                     // "//" as an inner constraint (sat semantics)
	kindRootDesc                 // "//" as a root child (re-rooting semantics)
)

// forestNode is one hash-consed pattern node. kids are forest ids of
// the child constraints, sorted ascending; desc kinds always have
// exactly one kid (pattern.Validate guarantees it for compiled
// patterns).
type forestNode struct {
	kind nodeKind
	sym  uint32 // interned tag for kindTag
	kids []uint32
	refs int32
	key  string
}

// patEntry is one registered pattern: the forest ids of its root
// children, or the oracle fallback for non-validating patterns.
type patEntry struct {
	live     bool
	isOracle bool
	rootKids []uint32
	oracle   *pattern.Pattern // may be nil even on the oracle path (nil pattern)
}

// NewForest returns an empty forest with its own label table.
func NewForest() *Forest { return NewForestShared(intern.NewTable()) }

// NewForestShared returns an empty forest interning its pattern labels
// into the given shared table. Sharded engines give every shard's
// forest one common table so a single Flat document load (symbols
// resolved once) can be matched against all of them; the table itself
// is safe for concurrent use.
func NewForestShared(tbl *intern.Table) *Forest {
	return &Forest{
		tbl:          tbl,
		index:        make(map[string]uint32),
		wildLeaf:     bitset.New(0),
		firstKidMask: bitset.New(0),
		descKidMask:  bitset.New(0),
		descMask:     bitset.New(0),
		rdKidMask:    bitset.New(0),
		rdMask:       bitset.New(0),
	}
}

// Add registers a pattern and returns its handle (dense, reused after
// Remove). The pattern is shared, not copied: it must not be mutated
// while registered.
func (f *Forest) Add(p *pattern.Pattern) int {
	var h int
	if n := len(f.freePats); n > 0 {
		h = f.freePats[n-1]
		f.freePats = f.freePats[:n-1]
	} else {
		f.pats = append(f.pats, patEntry{})
		h = len(f.pats) - 1
	}
	e := &f.pats[h]
	e.live = true
	if p == nil || p.Root == nil || p.Validate() != nil {
		e.isOracle = true
		e.oracle = p
		return h
	}
	e.rootKids = make([]uint32, len(p.Root.Children))
	for i, c := range p.Root.Children {
		e.rootKids[i] = f.compile(c, true)
	}
	return h
}

// Remove unregisters a handle, releasing its forest nodes. Removing a
// dead handle is a no-op.
func (f *Forest) Remove(h int) {
	if h < 0 || h >= len(f.pats) || !f.pats[h].live {
		return
	}
	e := &f.pats[h]
	for _, id := range e.rootKids {
		f.release(id)
	}
	*e = patEntry{}
	f.freePats = append(f.freePats, h)
}

// Live returns the number of registered patterns.
func (f *Forest) Live() int { return len(f.pats) - len(f.freePats) }

// NodeCount returns the number of live forest nodes — with sharing,
// typically well below the summed pattern sizes.
func (f *Forest) NodeCount() int { return len(f.nodes) - len(f.freeIDs) }

// compile hash-conses one pattern subtree into the forest, returning
// its node id with an incremented reference count. root selects the
// re-rooting semantics for "//" children of the pattern root.
func (f *Forest) compile(v *pattern.Node, root bool) uint32 {
	kind, sym := kindTag, uint32(0)
	switch v.Label {
	case pattern.Descendant:
		kind = kindDesc
		if root {
			kind = kindRootDesc
		}
	case pattern.Wildcard:
		kind = kindWild
	default:
		sym = f.tbl.ID(v.Label)
	}
	kids := make([]uint32, len(v.Children))
	for i, c := range v.Children {
		// Below the root every "//" uses sat semantics, including the
		// child of a root "//" (it becomes a plain root constraint).
		kids[i] = f.compile(c, false)
	}
	// Canonical key: kind, sym, sorted kid ids. Hash-consed children
	// make structurally equal subtrees share one id, so sorting the id
	// list canonicalizes the unordered child set.
	insertionSortU32(kids)
	b := f.keyBuf[:0]
	b = strconv.AppendUint(b, uint64(kind), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(sym), 10)
	for _, k := range kids {
		b = append(b, ',')
		b = strconv.AppendUint(b, uint64(k), 10)
	}
	f.keyBuf = b
	key := string(b)
	if id, ok := f.index[key]; ok {
		// Sharing an existing node: the fresh kid references are
		// already counted in it, so give them back.
		for _, k := range kids {
			f.release(k)
		}
		f.nodes[id].refs++
		return id
	}
	var id uint32
	if n := len(f.freeIDs); n > 0 {
		id = f.freeIDs[n-1]
		f.freeIDs = f.freeIDs[:n-1]
	} else {
		f.nodes = append(f.nodes, forestNode{})
		id = uint32(len(f.nodes) - 1)
	}
	f.nodes[id] = forestNode{kind: kind, sym: sym, kids: kids, refs: 1, key: key}
	f.index[key] = id
	f.growUniverse()
	f.register(id)
	return id
}

// growUniverse extends every mask to the current node-id universe.
// Only called under Add's exclusivity: Match runs concurrently with
// Match and must never observe a mask mid-grow. Freed-id reuse keeps
// the universe stable, so the common churn case returns immediately.
func (f *Forest) growUniverse() {
	n := len(f.nodes)
	if n == f.grownTo {
		return
	}
	f.grownTo = n
	f.wildLeaf.Grow(n)
	f.firstKidMask.Grow(n)
	f.descKidMask.Grow(n)
	f.descMask.Grow(n)
	f.rdKidMask.Grow(n)
	f.rdMask.Grow(n)
	for _, s := range f.leafTag {
		if s != nil {
			s.Grow(n)
		}
	}
	for len(f.byFirstKid) < n {
		f.byFirstKid = append(f.byFirstKid, nil)
	}
	for len(f.byDescKid) < n {
		f.byDescKid = append(f.byDescKid, nil)
	}
	for len(f.byRdKid) < n {
		f.byRdKid = append(f.byRdKid, nil)
	}
}

// register enters a fresh node into the match-path indexes.
func (f *Forest) register(id uint32) {
	n := &f.nodes[id]
	switch n.kind {
	case kindTag, kindWild:
		if len(n.kids) == 0 {
			if n.kind == kindWild {
				f.wildLeaf.Add(int(id))
				return
			}
			for len(f.leafTag) <= int(n.sym) {
				f.leafTag = append(f.leafTag, nil)
			}
			lt := f.leafTag[n.sym]
			if lt == nil {
				lt = bitset.New(len(f.nodes))
				f.leafTag[n.sym] = lt
			}
			lt.Add(int(id))
			return
		}
		addKidIndex(f.byFirstKid, f.firstKidMask, n.kids[0], id)
	case kindDesc:
		f.descMask.Add(int(id))
		addKidIndex(f.byDescKid, f.descKidMask, n.kids[0], id)
	case kindRootDesc:
		f.rdMask.Add(int(id))
		addKidIndex(f.byRdKid, f.rdKidMask, n.kids[0], id)
	}
}

// unregister removes a dying node from the match-path indexes.
func (f *Forest) unregister(id uint32) {
	n := &f.nodes[id]
	switch n.kind {
	case kindTag, kindWild:
		if len(n.kids) == 0 {
			if n.kind == kindWild {
				f.wildLeaf.Remove(int(id))
			} else if lt := f.leafTag[n.sym]; lt != nil {
				lt.Remove(int(id))
				// Drop emptied label sets: growUniverse touches every
				// retained set, so dead vocabulary must not accumulate
				// in a long-lived forest under churn (register
				// re-creates the set on demand).
				if lt.Count() == 0 {
					f.leafTag[n.sym] = nil
				}
			}
			return
		}
		dropKidIndex(f.byFirstKid, f.firstKidMask, n.kids[0], id)
	case kindDesc:
		f.descMask.Remove(int(id))
		dropKidIndex(f.byDescKid, f.descKidMask, n.kids[0], id)
	case kindRootDesc:
		f.rdMask.Remove(int(id))
		dropKidIndex(f.byRdKid, f.rdKidMask, n.kids[0], id)
	}
}

// addKidIndex/dropKidIndex maintain a dense inverse-kid index (entries
// indexed by kid node id — growUniverse has already sized the slice —
// with the mask mirroring which entries are non-empty).
func addKidIndex(m [][]uint32, mask *bitset.Set, kid, id uint32) {
	m[kid] = append(m[kid], id)
	mask.Add(int(kid))
}

func dropKidIndex(m [][]uint32, mask *bitset.Set, kid, id uint32) {
	l := removeU32(m[kid], id)
	m[kid] = l
	if len(l) == 0 {
		mask.Remove(int(kid))
	}
}

// release drops one reference to a node, freeing it (and its subtree
// references) when the count reaches zero.
func (f *Forest) release(id uint32) {
	n := &f.nodes[id]
	n.refs--
	if n.refs > 0 {
		return
	}
	delete(f.index, n.key)
	f.unregister(id)
	kids := n.kids
	*n = forestNode{}
	for _, k := range kids {
		f.release(k)
	}
	f.freeIDs = append(f.freeIDs, id)
}

// MatchSet is the result of one Forest.Match: a bit per pattern
// handle. Release returns it to the forest's pool; do not use it
// afterwards.
type MatchSet struct {
	f    *Forest
	bits *bitset.Set
}

// Has reports whether the pattern with the given handle matched.
func (m *MatchSet) Has(h int) bool { return h < m.bits.Len() && m.bits.Contains(h) }

// Count returns the number of matched patterns.
func (m *MatchSet) Count() int { return m.bits.Count() }

// Release recycles the set. The caller must not use m afterwards.
func (m *MatchSet) Release() { m.f.msPool.Put(m) }

// frameStack is the pooled per-Match scratch: one slot per document
// depth, each holding the child accumulators (ns, sat) plus the
// node-satisfaction scratch vector for that depth.
type frameStack struct {
	slots []frameSlot
}

type frameSlot struct {
	ns, sat, nsOut *bitset.Set
}

// Table returns the forest's label table (shared across forests built
// with NewForestShared).
func (f *Forest) Table() *intern.Table { return f.tbl }

// Match evaluates the document against every registered pattern in one
// post-order traversal and returns the set of matching handles.
func (f *Forest) Match(t *xmltree.Tree) *MatchSet {
	if t == nil || t.Root == nil {
		return f.MatchFlat(t, nil)
	}
	doc, _ := f.docPool.Get().(*xmltree.Flat)
	if doc == nil {
		doc = &xmltree.Flat{}
	}
	doc.Load(t, f.tbl)
	ms := f.MatchFlat(t, doc)
	f.docPool.Put(doc)
	return ms
}

// MatchFlat is Match over a document already loaded into a Flat arena
// with the forest's Table (one load can serve several shard forests
// sharing a table). t is the original tree, consulted only by the
// oracle fallback for non-compiled patterns. A nil or empty doc matches
// nothing.
func (f *Forest) MatchFlat(t *xmltree.Tree, doc *xmltree.Flat) *MatchSet {
	ms, _ := f.msPool.Get().(*MatchSet)
	if ms == nil {
		ms = &MatchSet{f: f, bits: bitset.New(0)}
	}
	ms.bits.Grow(len(f.pats))
	ms.bits.Reset()
	if doc == nil || doc.Len() == 0 {
		// The empty document matches nothing, including the empty
		// pattern (oracle semantics).
		return ms
	}

	fr, _ := f.frames.Get().(*frameStack)
	if fr == nil {
		fr = &frameStack{}
	}
	universe := len(f.nodes)
	for len(fr.slots) < doc.MaxDepth+2 {
		fr.slots = append(fr.slots, frameSlot{ns: bitset.New(0), sat: bitset.New(0), nsOut: bitset.New(0)})
	}
	for i := range fr.slots {
		s := &fr.slots[i]
		s.ns.Grow(universe)
		s.sat.Grow(universe)
		s.nsOut.Grow(universe)
	}

	root := &fr.slots[0]
	root.ns.Reset()
	root.sat.Reset()
	f.eval(doc, fr, 0, 0)
	rootNS, rootSAT := root.ns, root.sat

	for h := range f.pats {
		e := &f.pats[h]
		if !e.live {
			continue
		}
		if e.isOracle {
			if oracleMatches(t, e.oracle) {
				ms.bits.Add(h)
			}
			continue
		}
		ok := true
		for _, id := range e.rootKids {
			bits := rootNS
			if f.nodes[id].kind == kindRootDesc {
				bits = rootSAT
			}
			if !bits.Contains(int(id)) {
				ok = false
				break
			}
		}
		if ok {
			ms.bits.Add(h)
		}
	}
	f.frames.Put(fr)
	return ms
}

// eval computes NS and SAT for document node i (at depth d) and ORs
// them into the parent's accumulators at fr.slots[d].
func (f *Forest) eval(doc *xmltree.Flat, fr *frameStack, i int32, d int) {
	child := &fr.slots[d+1]
	child.ns.Reset()
	child.sat.Reset()
	s, c := doc.ChildStart[i], doc.ChildCount[i]
	for k := s; k < s+c; k++ {
		f.eval(doc, fr, k, d+1)
	}

	// SAT(i), built in place over the children's NS union: a tag/"*"
	// node holds at context i iff some child is node-satisfied. Then
	// "//" nodes: v holds iff its child constraint is satisfiable at
	// some descendant-or-self — the kid's bit here (self, via the
	// inverse kid index) or v's own bit at some child (descendants,
	// via the children's SAT union). Sparse iteration: only fired bits
	// are visited, and bits added mid-iteration are "//" ids, which
	// never occur in the kid masks.
	S := child.ns
	forEachAnd(S, f.descKidMask, func(k uint32) {
		for _, v := range f.byDescKid[k] {
			S.Add(int(v))
		}
	})
	forEachAnd(child.sat, f.descMask, func(v uint32) {
		S.Add(int(v))
	})

	// NS(i): leaf constraints come from the precomputed label/wildcard
	// bitsets; constraints with kids are examined only when their
	// lowest kid fired, then label and remaining kids are checked.
	N := fr.slots[d].nsOut
	N.Reset()
	N.UnionWith(f.wildLeaf)
	sym := doc.Syms[i]
	if sym != intern.NoSym && int(sym) < len(f.leafTag) {
		// The bounds check matters under shared tables: another forest
		// may have interned symbols this one never saw.
		if lt := f.leafTag[sym]; lt != nil {
			N.UnionWith(lt)
		}
	}
	forEachAnd(S, f.firstKidMask, func(k uint32) {
		for _, v := range f.byFirstKid[k] {
			n := &f.nodes[v]
			if (n.kind == kindWild || n.sym == sym) && f.kidsIn(v, S) {
				N.Add(int(v))
			}
		}
	})

	// Root "//" re-roots at some descendant-or-self: node-satisfaction
	// of its kid here, or the bit already raised somewhere below.
	forEachAnd(N, f.rdKidMask, func(k uint32) {
		for _, v := range f.byRdKid[k] {
			S.Add(int(v))
		}
	})
	forEachAnd(child.sat, f.rdMask, func(v uint32) {
		S.Add(int(v))
	})

	fr.slots[d].ns.UnionWith(N)
	fr.slots[d].sat.UnionWith(S)
}

// forEachAnd calls fn for every member of a ∩ mask. fn must not add
// members that are themselves in mask (callers add "//" ids, which the
// kid masks never contain).
func forEachAnd(a, mask *bitset.Set, fn func(uint32)) {
	for wi, n := 0, mask.WordsLen(); wi < n; wi++ {
		w := a.Word(wi) & mask.Word(wi)
		for w != 0 {
			fn(uint32(wi*64 + bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// oracleMatches evaluates an oracle-path (non-validating) pattern,
// mapping an oracle panic to no-match: pattern.Matches mirrors the
// paper's semantics and panics on shapes like a childless "//"
// operator, but a broker must not crash its publish path because a
// caller hand-built a malformed subscription.
func oracleMatches(t *xmltree.Tree, p *pattern.Pattern) (res bool) {
	defer func() {
		if recover() != nil {
			res = false
		}
	}()
	return pattern.Matches(t, p)
}

// kidsIn reports whether every child constraint of forest node v is in S.
func (f *Forest) kidsIn(v uint32, S *bitset.Set) bool {
	for _, k := range f.nodes[v].kids {
		if !S.Contains(int(k)) {
			return false
		}
	}
	return true
}

func insertionSortU32(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func removeU32(a []uint32, x uint32) []uint32 {
	for i, v := range a {
		if v == x {
			a[i] = a[len(a)-1]
			return a[:len(a)-1]
		}
	}
	return a
}
