package matching

import (
	"math/rand"
	"sync"
	"testing"

	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

func forestOf(exprs ...string) (*Forest, []int) {
	f := NewForest()
	hs := make([]int, len(exprs))
	for i, s := range exprs {
		hs[i] = f.Add(pattern.MustParse(s))
	}
	return f, hs
}

func TestForestTableCases(t *testing.T) {
	cases := []struct {
		doc   string
		exprs []string
		want  []bool
	}{
		{
			doc:   "a(b,c)",
			exprs: []string{"/a/b", "//c", "/a[b][c]", "/x", "/*", "/.", "/a/b/c", "//*"},
			want:  []bool{true, true, true, false, true, true, false, true},
		},
		{
			// Root "//" binds the root itself; inner "//" needs a child.
			doc:   "a",
			exprs: []string{"//a", "/.[//a]", "/a[//a]", "/*[//a]"},
			want:  []bool{true, true, false, false},
		},
		{
			// Deep descendant chains and wildcards under "//".
			doc:   "r(x(y(z)),w)",
			exprs: []string{"//y/z", "//x//z", "/r/*/y", "/r[//z][w]", "//*", "//w/*"},
			want:  []bool{true, true, true, true, true, false},
		},
		{
			// Document labels colliding with operators: "*"-labeled and
			// "//"-labeled document nodes are matched by wildcards (no
			// label test) but by no tag.
			doc:   "a(*,//)",
			exprs: []string{"/a/*", "/a[//b]", "/./a"},
			want:  []bool{true, false, true},
		},
	}
	for _, tc := range cases {
		doc, err := xmltree.ParseCompact(tc.doc)
		if err != nil {
			t.Fatal(err)
		}
		f, hs := forestOf(tc.exprs...)
		ms := f.Match(doc)
		for i, h := range hs {
			p := pattern.MustParse(tc.exprs[i])
			if oracle := pattern.Matches(doc, p); oracle != tc.want[i] {
				t.Fatalf("test bug: oracle(%s, %s) = %v, want %v", tc.doc, tc.exprs[i], oracle, tc.want[i])
			}
			if got := ms.Has(h); got != tc.want[i] {
				t.Errorf("doc %s pattern %s: forest = %v, want %v", tc.doc, tc.exprs[i], got, tc.want[i])
			}
		}
		ms.Release()
	}
}

func TestForestEmptyAndNil(t *testing.T) {
	f := NewForest()
	empty := f.Add(pattern.New())
	tagged := f.Add(pattern.MustParse("/a"))
	nilPat := f.Add(nil)

	doc := xmltree.New("a")
	ms := f.Match(doc)
	if !ms.Has(empty) || !ms.Has(tagged) || ms.Has(nilPat) {
		t.Errorf("non-empty doc: empty=%v tagged=%v nil=%v", ms.Has(empty), ms.Has(tagged), ms.Has(nilPat))
	}
	ms.Release()

	for _, d := range []*xmltree.Tree{nil, {}} {
		ms := f.Match(d)
		if ms.Count() != 0 {
			t.Errorf("empty doc matched %d patterns, want 0", ms.Count())
		}
		ms.Release()
	}
}

func TestForestOracleFallback(t *testing.T) {
	// A hand-built pattern violating Validate ("//" with two children)
	// must still match correctly via the oracle path.
	p := pattern.New()
	d := p.Root.AddChild(pattern.Descendant)
	d.AddChild("a")
	d.AddChild("b")
	if p.Validate() == nil {
		t.Fatal("test bug: pattern unexpectedly valid")
	}
	f := NewForest()
	h := f.Add(p)
	hit, _ := xmltree.ParseCompact("r(x(a,b))")
	miss, _ := xmltree.ParseCompact("r(x(a),y(b))")
	for _, tc := range []struct {
		doc  *xmltree.Tree
		want bool
	}{{hit, true}, {miss, pattern.Matches(miss, p)}} {
		ms := f.Match(tc.doc)
		if got := ms.Has(h); got != tc.want {
			t.Errorf("doc %s: got %v, want %v", tc.doc, got, tc.want)
		}
		ms.Release()
	}
	f.Remove(h)
	if f.Live() != 0 {
		t.Errorf("Live = %d after removing oracle entry", f.Live())
	}

	// A childless "//" operator makes pattern.Matches panic; through
	// the forest it must degrade to a non-matching subscription, not
	// crash the match path.
	crash := pattern.New()
	crash.Root.AddChild(pattern.Descendant)
	hc := f.Add(crash)
	ms := f.Match(hit)
	if ms.Has(hc) {
		t.Error("childless descendant oracle entry matched")
	}
	ms.Release()
}

func TestForestSharingAndChurn(t *testing.T) {
	f := NewForest()
	h1 := f.Add(pattern.MustParse("/a/b/c"))
	n1 := f.NodeCount()
	h2 := f.Add(pattern.MustParse("/a/b/c")) // identical: full sharing
	if f.NodeCount() != n1 {
		t.Errorf("identical pattern grew forest: %d -> %d", n1, f.NodeCount())
	}
	h3 := f.Add(pattern.MustParse("/x/b/c")) // shares the b/c suffix
	n3 := f.NodeCount()
	if n3 != n1+1 {
		t.Errorf("suffix sharing: NodeCount = %d, want %d (one new node)", n3, n1+1)
	}

	doc, _ := xmltree.ParseCompact("a(b(c))")
	ms := f.Match(doc)
	if !ms.Has(h1) || !ms.Has(h2) || ms.Has(h3) {
		t.Errorf("shared-node match wrong: %v %v %v", ms.Has(h1), ms.Has(h2), ms.Has(h3))
	}
	ms.Release()

	// Removing one copy must not affect the survivor.
	f.Remove(h2)
	if f.NodeCount() != n3 {
		t.Errorf("removing a shared copy freed nodes: %d, want %d", f.NodeCount(), n3)
	}
	ms = f.Match(doc)
	if !ms.Has(h1) || ms.Has(h2) {
		t.Errorf("after Remove(h2): h1=%v h2=%v", ms.Has(h1), ms.Has(h2))
	}
	ms.Release()

	f.Remove(h1)
	f.Remove(h3)
	if f.NodeCount() != 0 || f.Live() != 0 {
		t.Errorf("after removing all: nodes=%d live=%d", f.NodeCount(), f.Live())
	}
	liveLeafSets := 0
	for _, s := range f.leafTag {
		if s != nil {
			liveLeafSets++
		}
	}
	if liveLeafSets != 0 {
		t.Errorf("leafTag retains %d dead label sets", liveLeafSets)
	}

	// Handle and node-id reuse after full churn.
	h4 := f.Add(pattern.MustParse("/z"))
	ms = f.Match(xmltree.New("z"))
	if !ms.Has(h4) {
		t.Error("post-churn add does not match")
	}
	ms.Release()
	f.Remove(f.Add(pattern.MustParse("/dead")))
	if f.Live() != 1 {
		t.Errorf("Live = %d, want 1", f.Live())
	}
}

// TestForestAgainstOracleRandom cross-checks the forest against
// pattern.Matches over random documents and a mixed pattern set, with
// churn in the middle.
func TestForestAgainstOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	labels := []string{"a", "b", "c", "d"}
	var randDoc func(depth int) *xmltree.Node
	randDoc = func(depth int) *xmltree.Node {
		n := &xmltree.Node{Label: labels[rng.Intn(len(labels))]}
		if depth < 4 {
			for i := 0; i < rng.Intn(3); i++ {
				n.Children = append(n.Children, randDoc(depth+1))
			}
		}
		return n
	}
	exprs := []string{
		"/a", "/a/b", "//c", "//b[c]", "/a[b][c]", "/*/d", "//a//d",
		"/b/*", "//d[a][b]", "/.", "/.[//c][//d]", "//*", "/a//*",
		"/*[a/b]", "//b/*/d", "/a[//d]/b",
	}
	pats := make([]*pattern.Pattern, len(exprs))
	f := NewForest()
	hs := make([]int, len(exprs))
	for i, s := range exprs {
		pats[i] = pattern.MustParse(s)
		hs[i] = f.Add(pats[i])
	}
	check := func(trials int) {
		for trial := 0; trial < trials; trial++ {
			doc := &xmltree.Tree{Root: randDoc(1)}
			ms := f.Match(doc)
			for i := range pats {
				if hs[i] < 0 {
					continue // removed
				}
				want := pattern.Matches(doc, pats[i])
				if got := ms.Has(hs[i]); got != want {
					t.Fatalf("doc %s pattern %s: forest = %v, oracle = %v", doc, exprs[i], got, want)
				}
			}
			ms.Release()
		}
	}
	check(200)
	// Churn: drop every other pattern, re-check, re-add.
	for i := 0; i < len(hs); i += 2 {
		f.Remove(hs[i])
		hs[i] = -1
	}
	check(100)
	for i := 0; i < len(hs); i += 2 {
		hs[i] = f.Add(pats[i])
	}
	check(100)
}

// TestForestConcurrentMatch exercises concurrent Match calls (pooled
// scratch) under -race.
func TestForestConcurrentMatch(t *testing.T) {
	f, hs := forestOf("/a/b", "//c", "/.", "//*", "/a[b][c]")
	docs := []*xmltree.Tree{}
	for _, s := range []string{"a(b,c)", "a(b(c))", "x", "c"} {
		d, _ := xmltree.ParseCompact(s)
		docs = append(docs, d)
	}
	want := make([][]bool, len(docs))
	for di, d := range docs {
		ms := f.Match(d)
		row := make([]bool, len(hs))
		for i, h := range hs {
			row[i] = ms.Has(h)
		}
		want[di] = row
		ms.Release()
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				di := (g + i) % len(docs)
				ms := f.Match(docs[di])
				for j, h := range hs {
					if ms.Has(h) != want[di][j] {
						t.Errorf("concurrent mismatch doc %d pattern %d", di, j)
						ms.Release()
						return
					}
				}
				ms.Release()
			}
		}(g)
	}
	wg.Wait()
}
