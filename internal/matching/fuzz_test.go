package matching

import (
	"reflect"
	"strings"
	"testing"

	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

// FuzzEngineVsMatches differentially tests the single-pass forest
// engine (and the prefiltering Engine) against the pattern.Matches
// oracle: a random document in compact form and a newline-separated
// pattern set must produce identical match sets through every path,
// including after removal/re-add churn (exercising the forest's
// hash-cons reference counting).
func FuzzEngineVsMatches(f *testing.F) {
	seeds := [][2]string{
		{"a(b,c)", "/a/b\n//c\n/a[b][c]\n/x\n/*"},
		// Root-"//" binds the document root itself; "/." is the empty
		// pattern (matches every non-empty document).
		{"a", "//a\n/.\n/*\n/.[//a]"},
		// Operator-colliding document labels: nodes literally labeled
		// "*" and "//" meet wildcards (match) and tags (never match).
		{"a(*,//)", "/a/*\n/a[//b]\n/.[//a]\n//*"},
		{"r(x(y(z)),w)", "//x//z\n/r[//z][w]\n/r/*/y\n/.[//y][//w]\n//w/*"},
		{"a(b(c),b(d))", "/a//c\n/a/b[c][d]\n//b[c]\n//b/d"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, docStr, patsStr string) {
		doc, err := xmltree.ParseCompact(docStr)
		if err != nil || doc.Size() > 300 {
			t.Skip()
		}
		var pats []*pattern.Pattern
		for _, ln := range strings.Split(patsStr, "\n") {
			p, err := pattern.Parse(ln)
			if err != nil || p.Size() > 30 {
				continue
			}
			pats = append(pats, p)
			if len(pats) == 24 {
				break
			}
		}
		if len(pats) == 0 {
			t.Skip()
		}

		want := make([]bool, len(pats))
		for i, p := range pats {
			want[i] = pattern.Matches(doc, p)
		}

		forest := NewForest()
		hs := make([]int, len(pats))
		for i, p := range pats {
			hs[i] = forest.Add(p)
		}
		check := func(stage string) {
			ms := forest.Match(doc)
			defer ms.Release()
			for i := range pats {
				if hs[i] < 0 {
					continue
				}
				if got := ms.Has(hs[i]); got != want[i] {
					t.Fatalf("%s: doc %q pattern %q: forest = %v, oracle = %v",
						stage, docStr, pats[i], got, want[i])
				}
			}
		}
		check("initial")
		for i := 1; i < len(pats); i += 2 {
			forest.Remove(hs[i])
			hs[i] = -1
		}
		check("after churn")
		for i := 1; i < len(pats); i += 2 {
			hs[i] = forest.Add(pats[i])
		}
		check("after re-add")

		// The prefiltering Engine must agree with the oracle too.
		eng := NewEngine(pats)
		got := eng.Match(doc)
		var oracle []int
		for i, w := range want {
			if w {
				oracle = append(oracle, i)
			}
		}
		if !reflect.DeepEqual(got, oracle) {
			t.Fatalf("doc %q: Engine.Match = %v, oracle = %v", docStr, got, oracle)
		}
	})
}
