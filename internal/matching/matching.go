// Package matching is the multi-subscription XML filtering layer the
// routing substrate uses: it matches each incoming document against a
// large set of tree-pattern subscriptions.
//
// Two engines live here. Forest (forest.go) is the hot-path engine: a
// shared hash-consed pattern forest evaluated in one post-order
// document traversal, deciding every pattern simultaneously with
// bitset operations — the broker's publish path and the overlay's
// per-link forwarding decisions run on it. Engine (below) is the
// candidate-pruning engine for batch workloads: a required-tag
// prefilter (every concrete tag in a pattern must occur in a matching
// document) narrows the candidate set before the exact matcher runs,
// in the spirit of the filtering engines the paper cites
// (XFilter/YFilter/XTrie).
package matching

import (
	"sync/atomic"

	"treesim/internal/bitset"
	"treesim/internal/intern"
	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

// Engine filters documents against a registered subscription set with
// a required-tag prefilter ahead of the exact matcher. Tag sets are
// interned-label bitsets, so the per-document work is integer ops over
// pooled buffers rather than string-map churn.
//
// An Engine is not safe for concurrent use (its statistics and scratch
// buffers are unguarded); wrap it or use one per goroutine. The hot
// concurrent paths use Forest instead.
type Engine struct {
	patterns []*pattern.Pattern
	// required holds each pattern's concrete tag set as interned syms,
	// sorted by label string.
	required [][]uint32
	// byTag buckets pattern indices by one designated required tag;
	// patterns with no concrete tags are always candidates.
	byTag      map[uint32][]int
	unfiltered []int

	// tbl interns the subscription vocabulary; document labels are
	// resolved read-only, so the table is bounded by the pattern set.
	tbl *intern.Table
	// docFreq[sym] counts documents (seen by Match) containing the tag
	// — the corpus statistics behind rarest-tag bucketing.
	docFreq []uint64

	// present / presentSyms are the reusable per-document tag set: the
	// bitset answers membership, the slice drives iteration and makes
	// clearing O(|distinct tags|) instead of O(universe).
	present     *bitset.Set
	presentSyms []uint32
	out         []int
	// fm shares one document flattening across all surviving
	// candidates of a Match call.
	fm pattern.FlatMatcher

	// statProbes / statCandidates / statMatched track prefilter
	// effectiveness: bucket consultations, exact-match candidate
	// evaluations, and successful matches. They are atomics so that
	// Stats/Probes may be read concurrently with a Match in flight
	// (the broker's stats scrape races the publish path); Match itself
	// remains single-goroutine per Engine.
	statProbes     atomic.Int64
	statCandidates atomic.Int64
	statMatched    atomic.Int64
	statDocs       atomic.Int64
}

// NewEngine returns an engine over the given subscriptions (the slice is
// not retained; patterns are).
func NewEngine(patterns []*pattern.Pattern) *Engine {
	e := &Engine{
		byTag:   make(map[uint32][]int),
		tbl:     intern.NewTable(),
		present: bitset.New(0),
	}
	for _, p := range patterns {
		e.Add(p)
	}
	return e
}

// Add registers a subscription and returns its index.
//
// The pattern is bucketed under its corpus-rarest required tag: the
// engine counts, per tag, how many matched documents contained it
// (Match feeds the counts), and picks the required tag with the lowest
// document frequency — the bucket that is consulted least often. With
// no corpus statistics yet (a cold engine, or all-unseen tags) the tie
// falls to the lexicographically greatest tag, the deterministic
// stand-in rule used before statistics exist.
func (e *Engine) Add(p *pattern.Pattern) int {
	idx := len(e.patterns)
	e.patterns = append(e.patterns, p)
	tags := requiredTags(p)
	syms := make([]uint32, len(tags))
	for i, tag := range tags {
		syms[i] = e.tbl.ID(tag)
	}
	e.required = append(e.required, syms)
	e.growUniverse()
	if len(syms) == 0 {
		e.unfiltered = append(e.unfiltered, idx)
	} else {
		key := e.bucketSym(syms)
		e.byTag[key] = append(e.byTag[key], idx)
	}
	return idx
}

// bucketSym picks the designated bucket tag for a pattern: lowest
// document frequency first, greatest label as the (cold-start)
// tie-break — syms parallels a label-sorted tag list, so scanning from
// the end prefers the greatest among equals.
func (e *Engine) bucketSym(syms []uint32) uint32 {
	best := syms[len(syms)-1]
	bestFreq := e.freq(best)
	for i := len(syms) - 2; i >= 0; i-- {
		if f := e.freq(syms[i]); f < bestFreq {
			best, bestFreq = syms[i], f
		}
	}
	return best
}

func (e *Engine) freq(sym uint32) uint64 {
	if int(sym) >= len(e.docFreq) {
		return 0
	}
	return e.docFreq[sym]
}

// growUniverse resizes the per-sym structures to the intern table.
func (e *Engine) growUniverse() {
	n := e.tbl.Len() + 1 // syms are 1-based
	for len(e.docFreq) < n {
		e.docFreq = append(e.docFreq, 0)
	}
	e.present.Grow(n)
}

// Rebucket re-derives every pattern's bucket tag from the current
// corpus statistics. Frequencies only accumulate for tags in the
// subscription vocabulary, so patterns added before the corpus was
// observed (or before their tags were interned by any subscription)
// sit in cold-start buckets; calling Rebucket after a warm-up pass
// moves them under their corpus-rarest tag.
func (e *Engine) Rebucket() {
	clear(e.byTag)
	for idx, syms := range e.required {
		if len(syms) == 0 {
			continue // stays in unfiltered
		}
		key := e.bucketSym(syms)
		e.byTag[key] = append(e.byTag[key], idx)
	}
}

// Len returns the number of registered subscriptions.
func (e *Engine) Len() int { return len(e.patterns) }

// Pattern returns the subscription at index i.
func (e *Engine) Pattern(i int) *pattern.Pattern { return e.patterns[i] }

// Match returns the indices of all subscriptions the document satisfies,
// in increasing order. The returned slice is a reusable buffer, valid
// only until the next Match call (nil when nothing matches).
func (e *Engine) Match(t *xmltree.Tree) []int {
	e.statDocs.Add(1)
	// Collect the document's interned tag set: clear only the syms set
	// by the previous document, then walk once with read-only lookups.
	for _, sym := range e.presentSyms {
		e.present.Remove(int(sym))
	}
	e.presentSyms = e.presentSyms[:0]
	if t != nil && t.Root != nil {
		t.Root.Walk(func(n *xmltree.Node) bool {
			if sym := e.tbl.Lookup(n.Label); sym != intern.NoSym && !e.present.Contains(int(sym)) {
				e.present.Add(int(sym))
				e.presentSyms = append(e.presentSyms, sym)
			}
			return true
		})
	}
	for _, sym := range e.presentSyms {
		e.docFreq[sym]++
	}

	out := e.out[:0]
	loaded := false
	consider := func(idx int) {
		e.statProbes.Add(1)
		for _, sym := range e.required[idx] {
			if !e.present.Contains(int(sym)) {
				return
			}
		}
		e.statCandidates.Add(1)
		// Flatten the document once, on the first candidate that
		// reaches the exact matcher.
		if !loaded {
			e.fm.Load(t)
			loaded = true
		}
		if e.fm.Matches(e.patterns[idx]) {
			e.statMatched.Add(1)
			out = append(out, idx)
		}
	}
	for _, idx := range e.unfiltered {
		consider(idx)
	}
	for _, sym := range e.presentSyms {
		for _, idx := range e.byTag[sym] {
			consider(idx)
		}
	}
	// Bucketing by a single tag yields each candidate at most once (a
	// pattern lives in exactly one bucket), so no dedupe is needed —
	// only ordering.
	insertionSort(out)
	e.out = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// Stats reports prefilter effectiveness counters: documents processed,
// exact-match candidate evaluations, and successful matches.
func (e *Engine) Stats() (docs, candidates, matched int) {
	return int(e.statDocs.Load()), int(e.statCandidates.Load()), int(e.statMatched.Load())
}

// Probes returns the number of per-pattern prefilter consultations —
// the work the single-tag bucketing exists to minimize (a pattern
// bucketed under a corpus-rare tag is consulted only when that tag
// actually occurs).
func (e *Engine) Probes() int { return int(e.statProbes.Load()) }

// requiredTags returns the sorted set of concrete tags in p. Any
// matching document must contain every one of them.
func requiredTags(p *pattern.Pattern) []string {
	set := make(map[string]struct{})
	var rec func(n *pattern.Node)
	rec = func(n *pattern.Node) {
		switch n.Label {
		case pattern.Root, pattern.Wildcard, pattern.Descendant:
		default:
			set[n.Label] = struct{}{}
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(p.Root)
	out := make([]string, 0, len(set))
	for tag := range set {
		out = append(out, tag)
	}
	// Insertion sort keeps this allocation-light for small sets.
	insertionSortStrings(out)
	return out
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func insertionSortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
