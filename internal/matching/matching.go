// Package matching is the multi-subscription XML filtering engine the
// routing substrate uses: it matches each incoming document against a
// large set of tree-pattern subscriptions. A required-tag prefilter
// (every concrete tag in a pattern must occur in a matching document)
// narrows the candidate set before the exact matcher runs, in the spirit
// of the filtering engines the paper cites (XFilter/YFilter/XTrie).
package matching

import (
	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

// Engine filters documents against a registered subscription set.
type Engine struct {
	patterns []*pattern.Pattern
	// required holds each pattern's concrete tag set.
	required [][]string
	// byTag buckets pattern indices by one designated required tag (the
	// lexicographically greatest, an arbitrary deterministic choice);
	// patterns with no concrete tags are always candidates.
	byTag      map[string][]int
	unfiltered []int

	// statCandidates / statMatched track prefilter effectiveness.
	statCandidates int
	statMatched    int
	statDocs       int
}

// NewEngine returns an engine over the given subscriptions (the slice is
// not retained; patterns are).
func NewEngine(patterns []*pattern.Pattern) *Engine {
	e := &Engine{byTag: make(map[string][]int)}
	for _, p := range patterns {
		e.Add(p)
	}
	return e
}

// Add registers a subscription and returns its index.
func (e *Engine) Add(p *pattern.Pattern) int {
	idx := len(e.patterns)
	e.patterns = append(e.patterns, p)
	tags := requiredTags(p)
	e.required = append(e.required, tags)
	if len(tags) == 0 {
		e.unfiltered = append(e.unfiltered, idx)
	} else {
		// tags is sorted; bucket by the last (rarest tags tend to be
		// deep/specific, and "greatest" is a deterministic stand-in
		// without corpus statistics).
		key := tags[len(tags)-1]
		e.byTag[key] = append(e.byTag[key], idx)
	}
	return idx
}

// Len returns the number of registered subscriptions.
func (e *Engine) Len() int { return len(e.patterns) }

// Pattern returns the subscription at index i.
func (e *Engine) Pattern(i int) *pattern.Pattern { return e.patterns[i] }

// Match returns the indices of all subscriptions the document satisfies,
// in increasing order.
func (e *Engine) Match(t *xmltree.Tree) []int {
	e.statDocs++
	present := docTags(t)
	var out []int
	consider := func(idx int) {
		for _, tag := range e.required[idx] {
			if _, ok := present[tag]; !ok {
				return
			}
		}
		e.statCandidates++
		if pattern.Matches(t, e.patterns[idx]) {
			e.statMatched++
			out = append(out, idx)
		}
	}
	for _, idx := range e.unfiltered {
		consider(idx)
	}
	for tag := range present {
		for _, idx := range e.byTag[tag] {
			consider(idx)
		}
	}
	// Bucketing by a single tag yields each candidate at most once (a
	// pattern lives in exactly one bucket), so no dedupe is needed —
	// only ordering.
	insertionSort(out)
	return out
}

// Stats reports prefilter effectiveness counters: documents processed,
// exact-match candidate evaluations, and successful matches.
func (e *Engine) Stats() (docs, candidates, matched int) {
	return e.statDocs, e.statCandidates, e.statMatched
}

// requiredTags returns the sorted set of concrete tags in p. Any
// matching document must contain every one of them.
func requiredTags(p *pattern.Pattern) []string {
	set := make(map[string]struct{})
	var rec func(n *pattern.Node)
	rec = func(n *pattern.Node) {
		switch n.Label {
		case pattern.Root, pattern.Wildcard, pattern.Descendant:
		default:
			set[n.Label] = struct{}{}
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(p.Root)
	out := make([]string, 0, len(set))
	for tag := range set {
		out = append(out, tag)
	}
	// Insertion sort keeps this allocation-light for small sets.
	insertionSortStrings(out)
	return out
}

func docTags(t *xmltree.Tree) map[string]struct{} {
	set := make(map[string]struct{})
	if t != nil && t.Root != nil {
		t.Root.Walk(func(n *xmltree.Node) bool {
			set[n.Label] = struct{}{}
			return true
		})
	}
	return set
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func insertionSortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
