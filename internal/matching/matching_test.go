package matching

import (
	"math/rand"
	"reflect"
	"testing"

	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

func TestEngineMatchesExactly(t *testing.T) {
	pats := []*pattern.Pattern{
		pattern.MustParse("/a/b"),
		pattern.MustParse("//c"),
		pattern.MustParse("/a[b][c]"),
		pattern.MustParse("/x"),
		pattern.MustParse("/*"),
	}
	eng := NewEngine(pats)
	doc, _ := xmltree.ParseCompact("a(b,c)")
	got := eng.Match(&xmltree.Tree{Root: doc.Root})
	want := []int{0, 1, 2, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Match = %v, want %v", got, want)
	}
}

func TestEngineAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	labels := []string{"a", "b", "c", "d"}
	var randDoc func(depth int) *xmltree.Node
	randDoc = func(depth int) *xmltree.Node {
		n := &xmltree.Node{Label: labels[rng.Intn(len(labels))]}
		if depth < 4 {
			for i := 0; i < rng.Intn(3); i++ {
				n.Children = append(n.Children, randDoc(depth+1))
			}
		}
		return n
	}
	pats := []*pattern.Pattern{
		pattern.MustParse("/a"), pattern.MustParse("/a/b"), pattern.MustParse("//c"),
		pattern.MustParse("//b[c]"), pattern.MustParse("/a[b][c]"), pattern.MustParse("/*/d"),
		pattern.MustParse("//a//d"), pattern.MustParse("/b/*"), pattern.MustParse("//d[a][b]"),
	}
	eng := NewEngine(pats)
	for trial := 0; trial < 300; trial++ {
		doc := &xmltree.Tree{Root: randDoc(1)}
		got := eng.Match(doc)
		var want []int
		for i, p := range pats {
			if pattern.Matches(doc, p) {
				want = append(want, i)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("doc %s: Match = %v, brute force = %v", doc, got, want)
		}
	}
}

func TestPrefilterReducesCandidates(t *testing.T) {
	// Patterns over disjoint tag vocabularies: a document with only
	// tags {a,b} should never evaluate the x/y/z patterns.
	var pats []*pattern.Pattern
	for _, s := range []string{"/a/b", "/x/y", "//z", "/x[y][z]"} {
		pats = append(pats, pattern.MustParse(s))
	}
	eng := NewEngine(pats)
	doc, _ := xmltree.ParseCompact("a(b)")
	eng.Match(doc)
	docs, cands, matched := eng.Stats()
	if docs != 1 {
		t.Errorf("docs = %d", docs)
	}
	if cands != 1 {
		t.Errorf("candidates = %d, want 1 (only /a/b shares tags)", cands)
	}
	if matched != 1 {
		t.Errorf("matched = %d, want 1", matched)
	}
}

func TestUnfilteredPatterns(t *testing.T) {
	// Pure wildcard/descendant patterns have no required tags and must
	// always be considered.
	eng := NewEngine([]*pattern.Pattern{pattern.MustParse("/*"), pattern.MustParse("//*")})
	doc, _ := xmltree.ParseCompact("whatever(child)")
	got := eng.Match(doc)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Match = %v, want [0 1]", got)
	}
}

func TestAddIncremental(t *testing.T) {
	eng := NewEngine(nil)
	if eng.Len() != 0 {
		t.Fatal("new engine not empty")
	}
	i0 := eng.Add(pattern.MustParse("/a"))
	i1 := eng.Add(pattern.MustParse("/b"))
	if i0 != 0 || i1 != 1 || eng.Len() != 2 {
		t.Errorf("Add indices %d,%d len %d", i0, i1, eng.Len())
	}
	if eng.Pattern(1).String() != "/b" {
		t.Errorf("Pattern(1) = %s", eng.Pattern(1))
	}
	doc, _ := xmltree.ParseCompact("b")
	if got := eng.Match(doc); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("Match = %v", got)
	}
}

// TestRarestTagBucketing shows the corpus-statistics bucketing rule
// cutting candidate evaluations on a skewed corpus: every document
// contains the common tag "zz" (also the lexicographically greatest,
// i.e. the cold-start choice), only a few contain the rare tag "aa".
func TestRarestTagBucketing(t *testing.T) {
	mkDoc := func(rare bool) *xmltree.Tree {
		s := "zz(x)"
		if rare {
			s = "zz(aa)"
		}
		d, err := xmltree.ParseCompact(s)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	corpus := func(n, rareEvery int) []*xmltree.Tree {
		docs := make([]*xmltree.Tree, n)
		for i := range docs {
			docs[i] = mkDoc(rareEvery > 0 && i%rareEvery == 0)
		}
		return docs
	}
	p := pattern.MustParse("/zz/aa") // requires both aa and zz

	// Cold engine: no statistics, so the pattern lands in the "zz"
	// bucket (greatest rule) and is consulted for every document.
	cold := NewEngine(nil)
	cold.Add(p)
	for _, d := range corpus(100, 10) {
		cold.Match(d)
	}
	if cold.Probes() != 100 {
		t.Fatalf("cold-start probes = %d, want 100 (bucketed by ubiquitous zz)", cold.Probes())
	}

	// Warmed engine: observe the skew (frequencies accumulate once the
	// tags are in the subscription vocabulary), then Rebucket — the
	// pattern moves under the rare "aa", so only the 1-in-10 documents
	// containing it consult the pattern at all.
	warm := NewEngine(nil)
	warm.Add(p)
	for _, d := range corpus(100, 10) {
		warm.Match(d)
	}
	warmup := warm.Probes()
	warm.Rebucket()
	for _, d := range corpus(100, 10) {
		warm.Match(d)
	}
	if got := warm.Probes() - warmup; got != 10 {
		t.Errorf("rebucketed probes = %d, want 10 (bucketed by rare aa)", got)
	}
	_, cands, matched := warm.Stats()
	if cands != 20 || matched != 20 {
		t.Errorf("candidates/matched = %d/%d, want 20/20", cands, matched)
	}

	// A pattern added after warm-up picks the rare bucket immediately.
	warm.Add(pattern.MustParse("//aa/zz"))
	probesBefore := warm.Probes()
	for _, d := range corpus(100, 0) { // no rare docs at all
		warm.Match(d)
	}
	if got := warm.Probes() - probesBefore; got != 0 {
		t.Errorf("post-warm-up Add: %d probes on aa-free corpus, want 0", got)
	}

	// Both engines agree on results regardless of bucketing.
	for _, rare := range []bool{true, false} {
		d := mkDoc(rare)
		if got, want := cold.Match(d), warm.Match(d); !reflect.DeepEqual(got, want) {
			t.Errorf("bucketing changed results: %v vs %v", got, want)
		}
	}
}

// TestMatchBufferReuse pins the documented contract: the returned
// slice is valid until the next Match, and empty results are nil.
func TestMatchBufferReuse(t *testing.T) {
	eng := NewEngine([]*pattern.Pattern{pattern.MustParse("/a"), pattern.MustParse("/b")})
	a, _ := xmltree.ParseCompact("a")
	b, _ := xmltree.ParseCompact("b")
	z, _ := xmltree.ParseCompact("z")
	if got := eng.Match(a); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Match(a) = %v", got)
	}
	if got := eng.Match(z); got != nil {
		t.Fatalf("Match(z) = %v, want nil", got)
	}
	if got := eng.Match(b); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Match(b) = %v", got)
	}
}
