package matching

import (
	"math/rand"
	"reflect"
	"testing"

	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

func TestEngineMatchesExactly(t *testing.T) {
	pats := []*pattern.Pattern{
		pattern.MustParse("/a/b"),
		pattern.MustParse("//c"),
		pattern.MustParse("/a[b][c]"),
		pattern.MustParse("/x"),
		pattern.MustParse("/*"),
	}
	eng := NewEngine(pats)
	doc, _ := xmltree.ParseCompact("a(b,c)")
	got := eng.Match(&xmltree.Tree{Root: doc.Root})
	want := []int{0, 1, 2, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Match = %v, want %v", got, want)
	}
}

func TestEngineAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	labels := []string{"a", "b", "c", "d"}
	var randDoc func(depth int) *xmltree.Node
	randDoc = func(depth int) *xmltree.Node {
		n := &xmltree.Node{Label: labels[rng.Intn(len(labels))]}
		if depth < 4 {
			for i := 0; i < rng.Intn(3); i++ {
				n.Children = append(n.Children, randDoc(depth+1))
			}
		}
		return n
	}
	pats := []*pattern.Pattern{
		pattern.MustParse("/a"), pattern.MustParse("/a/b"), pattern.MustParse("//c"),
		pattern.MustParse("//b[c]"), pattern.MustParse("/a[b][c]"), pattern.MustParse("/*/d"),
		pattern.MustParse("//a//d"), pattern.MustParse("/b/*"), pattern.MustParse("//d[a][b]"),
	}
	eng := NewEngine(pats)
	for trial := 0; trial < 300; trial++ {
		doc := &xmltree.Tree{Root: randDoc(1)}
		got := eng.Match(doc)
		var want []int
		for i, p := range pats {
			if pattern.Matches(doc, p) {
				want = append(want, i)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("doc %s: Match = %v, brute force = %v", doc, got, want)
		}
	}
}

func TestPrefilterReducesCandidates(t *testing.T) {
	// Patterns over disjoint tag vocabularies: a document with only
	// tags {a,b} should never evaluate the x/y/z patterns.
	var pats []*pattern.Pattern
	for _, s := range []string{"/a/b", "/x/y", "//z", "/x[y][z]"} {
		pats = append(pats, pattern.MustParse(s))
	}
	eng := NewEngine(pats)
	doc, _ := xmltree.ParseCompact("a(b)")
	eng.Match(doc)
	docs, cands, matched := eng.Stats()
	if docs != 1 {
		t.Errorf("docs = %d", docs)
	}
	if cands != 1 {
		t.Errorf("candidates = %d, want 1 (only /a/b shares tags)", cands)
	}
	if matched != 1 {
		t.Errorf("matched = %d, want 1", matched)
	}
}

func TestUnfilteredPatterns(t *testing.T) {
	// Pure wildcard/descendant patterns have no required tags and must
	// always be considered.
	eng := NewEngine([]*pattern.Pattern{pattern.MustParse("/*"), pattern.MustParse("//*")})
	doc, _ := xmltree.ParseCompact("whatever(child)")
	got := eng.Match(doc)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Match = %v, want [0 1]", got)
	}
}

func TestAddIncremental(t *testing.T) {
	eng := NewEngine(nil)
	if eng.Len() != 0 {
		t.Fatal("new engine not empty")
	}
	i0 := eng.Add(pattern.MustParse("/a"))
	i1 := eng.Add(pattern.MustParse("/b"))
	if i0 != 0 || i1 != 1 || eng.Len() != 2 {
		t.Errorf("Add indices %d,%d len %d", i0, i1, eng.Len())
	}
	if eng.Pattern(1).String() != "/b" {
		t.Errorf("Pattern(1) = %s", eng.Pattern(1))
	}
	doc, _ := xmltree.ParseCompact("b")
	if got := eng.Match(doc); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("Match = %v", got)
	}
}
