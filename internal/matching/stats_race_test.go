package matching

import (
	"sync"
	"testing"

	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

// TestStatsRaceWithMatch hammers Stats/Probes readers against a Match
// loop. Engine.Match is documented single-goroutine, but its stat
// counters are read concurrently by the broker's stats scrape — under
// -race this test fails if the counters regress to plain ints.
func TestStatsRaceWithMatch(t *testing.T) {
	pats := []*pattern.Pattern{
		pattern.MustParse("/a/b"),
		pattern.MustParse("//c"),
		pattern.MustParse("/a[b][c]"),
		pattern.MustParse("/x"),
	}
	eng := NewEngine(pats)
	doc, err := xmltree.ParseCompact("a(b,c(d))")
	if err != nil {
		t.Fatal(err)
	}
	tree := &xmltree.Tree{Root: doc.Root}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastDocs int
			for {
				select {
				case <-stop:
					return
				default:
				}
				docs, cands, matched := eng.Stats()
				probes := eng.Probes()
				if docs < lastDocs {
					t.Errorf("docs went backwards: %d -> %d", lastDocs, docs)
					return
				}
				lastDocs = docs
				if matched > cands || cands > probes {
					// Readers may observe mid-Match states where the
					// later-incremented counter lags, but never the
					// reverse ordering by more than one in-flight doc's
					// worth; only a sign of true corruption is fatal.
					if cands < 0 || matched < 0 || probes < 0 {
						t.Errorf("negative counters: probes=%d cands=%d matched=%d", probes, cands, matched)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 20000; i++ {
		eng.Match(tree)
	}
	close(stop)
	wg.Wait()
	docs, cands, matched := eng.Stats()
	if docs != 20000 {
		t.Fatalf("docs = %d, want 20000", docs)
	}
	if matched == 0 || cands < matched {
		t.Fatalf("implausible final counters: docs=%d cands=%d matched=%d", docs, cands, matched)
	}
}
