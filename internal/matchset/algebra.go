package matchset

import (
	"slices"
	"sort"
	"sync"

	"treesim/internal/sampling"
)

// Sorted-slice set algebra. Sets and Hashes values hold their document
// identifiers as immutable sorted []uint64 slices: unions are linear
// merges, intersections are merges or galloping binary searches when the
// operand sizes are skewed, and cardinalities are slice lengths. This
// keeps the SEL inner loop free of map allocation and per-element
// hashing, with cache-friendly sequential access.
//
// All operations write into pooled scratch buffers first; only results
// that do not alias an operand are copied out into exactly-sized slices.
// The pooling matters because SEL builds many short-lived intermediate
// values (running unions over synopsis children) whose buffers would
// otherwise churn the allocator.

// scratchPool recycles the buffers backing intermediate merge results.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]uint64, 0, 256)
		return &b
	},
}

// scratchGet returns a buffer with capacity at least n and length n.
func scratchGet(n int) *[]uint64 {
	p := scratchPool.Get().(*[]uint64)
	if cap(*p) < n {
		*p = make([]uint64, n)
	}
	*p = (*p)[:n]
	return p
}

func scratchPut(p *[]uint64) {
	*p = (*p)[:0]
	scratchPool.Put(p)
}

// aliasOf reports whether the first n scratch elements equal operand a
// (1) or operand b (2), or neither (0). When a merge result is identical
// to an operand the caller returns that operand's value unchanged —
// values are immutable, so aliasing is safe and saves both the copy and
// the result allocation.
func aliasOf(buf []uint64, n int, a, b []uint64) int {
	if n == len(a) && prefixEqual(buf[:n], a) {
		return 1
	}
	if n == len(b) && prefixEqual(buf[:n], b) {
		return 2
	}
	return 0
}

// prefixEqual reports whether two equal-length sorted slices are equal.
// For merge results a simple length check almost suffices (a union of
// size len(a) is a itself), but keeping the explicit comparison makes
// aliasOf safe for any merge kind at negligible cost.
func prefixEqual(s, t []uint64) bool {
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// materialize copies the first n scratch elements into an exactly-sized
// fresh slice and recycles the scratch buffer.
func materialize(buf *[]uint64, n int) []uint64 {
	out := make([]uint64, n)
	copy(out, (*buf)[:n])
	scratchPut(buf)
	return out
}

// mergeUnion writes the sorted union of a and b into dst (which must
// have length ≥ len(a)+len(b)) and returns the result length.
func mergeUnion(dst, a, b []uint64) int {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			dst[k] = x
			i++
		case y < x:
			dst[k] = y
			j++
		default:
			dst[k] = x
			i++
			j++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	k += copy(dst[k:], b[j:])
	return k
}

// gallopRatio is the size skew beyond which intersection switches from a
// linear merge to galloping binary search over the larger operand.
const gallopRatio = 16

// intersectInto writes the sorted intersection of a and b into dst
// (length ≥ min(len(a), len(b))) and returns the result length.
func intersectInto(dst, a, b []uint64) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= gallopRatio*len(a) {
		return gallopIntersect(dst, a, b)
	}
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case y < x:
			j++
		default:
			dst[k] = x
			k++
			i++
			j++
		}
	}
	return k
}

// intersectCount returns the size of the intersection of two sorted
// slices without writing the result anywhere — the allocation-free
// kernel behind IntersectCard, for callers (similarity rows, matrix
// rebuilds) that need only |a ∩ b| and would discard a materialized
// result immediately.
func intersectCount(a, b []uint64) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= gallopRatio*len(a) {
		return gallopCount(a, b)
	}
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case y < x:
			j++
		default:
			k++
			i++
			j++
		}
	}
	return k
}

// gallopCount is gallopIntersect without the destination buffer.
func gallopCount(a, b []uint64) int {
	k, lo := 0, 0
	for _, x := range a {
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < x {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(b) {
			hi = len(b)
		}
		idx := lo + sort.Search(hi-lo, func(i int) bool { return b[lo+i] >= x })
		if idx < len(b) && b[idx] == x {
			k++
			lo = idx + 1
		} else {
			lo = idx
		}
		if lo >= len(b) {
			break
		}
	}
	return k
}

// gallopIntersect intersects a (small) against b (large) by doubling
// probes from the current frontier followed by a binary search, so runs
// of misses in b cost O(log gap) instead of O(gap).
func gallopIntersect(dst, a, b []uint64) int {
	k, lo := 0, 0
	for _, x := range a {
		// Gallop: find hi with b[hi] >= x, doubling the step.
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < x {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(b) {
			hi = len(b)
		}
		// Binary search within (lo-1, hi].
		idx := lo + sort.Search(hi-lo, func(i int) bool { return b[lo+i] >= x })
		if idx < len(b) && b[idx] == x {
			dst[k] = x
			k++
			lo = idx + 1
		} else {
			lo = idx
		}
		if lo >= len(b) {
			break
		}
	}
	return k
}

// filterLevel writes the elements of ids whose sampling level is ≥ l
// into dst (length ≥ len(ids)) and returns the count. A nil hasher
// filters nothing (the caller had no hash function to subsample with).
func filterLevel(dst, ids []uint64, h *sampling.Hasher, l int) int {
	if h == nil {
		return copy(dst, ids)
	}
	k := 0
	for _, x := range ids {
		if h.Level(x) >= l {
			dst[k] = x
			k++
		}
	}
	return k
}

// sortedIDs returns the keys of a set map as a fresh sorted slice.
func sortedIDs(m map[uint64]struct{}) []uint64 {
	out := make([]uint64, 0, len(m))
	for x := range m {
		out = append(out, x)
	}
	slices.Sort(out)
	return out
}

// sortIDs sorts a slice of identifiers in place and deduplicates it.
func sortIDs(ids []uint64) []uint64 {
	slices.Sort(ids)
	return slices.Compact(ids)
}
