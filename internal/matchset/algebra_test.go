package matchset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"treesim/internal/sampling"
)

// Differential tests: the sorted-slice algebra must match a straight
// map-based reference model — the semantics the pre-slice implementation
// had — for Union, Intersect and Card, including the Hashes level-max
// combining rules.

// refUnion/refIntersect model Sets semantics over plain maps.
func refUnion(a, b map[uint64]bool) map[uint64]bool {
	out := make(map[uint64]bool)
	for x := range a {
		out[x] = true
	}
	for x := range b {
		out[x] = true
	}
	return out
}

func refIntersect(a, b map[uint64]bool) map[uint64]bool {
	out := make(map[uint64]bool)
	for x := range a {
		if b[x] {
			out[x] = true
		}
	}
	return out
}

// refHashUnion/refHashIntersect model Hashes semantics: combine at the
// max level, subsampling both sides to it.
func refHashUnion(h *sampling.Hasher, la int, a map[uint64]bool, lb int, b map[uint64]bool) (int, map[uint64]bool) {
	l := max(la, lb)
	out := make(map[uint64]bool)
	for x := range a {
		if h.Level(x) >= l {
			out[x] = true
		}
	}
	for x := range b {
		if h.Level(x) >= l {
			out[x] = true
		}
	}
	return l, out
}

func refHashIntersect(h *sampling.Hasher, la int, a map[uint64]bool, lb int, b map[uint64]bool) (int, map[uint64]bool) {
	l := max(la, lb)
	out := make(map[uint64]bool)
	for x := range a {
		if b[x] && h.Level(x) >= l {
			out[x] = true
		}
	}
	return l, out
}

func valueIDs(t *testing.T, v Value) []uint64 {
	t.Helper()
	switch x := v.(type) {
	case *setValue:
		return x.ids
	case *hashValue:
		return x.ids
	default:
		t.Fatalf("unexpected value type %T", v)
		return nil
	}
}

func sameSet(ids []uint64, m map[uint64]bool) bool {
	if len(ids) != len(m) {
		return false
	}
	for _, x := range ids {
		if !m[x] {
			return false
		}
	}
	return true
}

func randomIDs(rng *rand.Rand, n, space int) ([]uint64, map[uint64]bool) {
	m := make(map[uint64]bool)
	var ids []uint64
	for i := 0; i < n; i++ {
		x := uint64(rng.Intn(space))
		if !m[x] {
			m[x] = true
			ids = append(ids, x)
		}
	}
	return ids, m
}

func TestSetAlgebraDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		aIDs, am := randomIDs(rng, rng.Intn(80), 100)
		bIDs, bm := randomIDs(rng, rng.Intn(80), 100)
		av, bv := NewSetValue(aIDs...), NewSetValue(bIDs...)
		u := av.Union(bv)
		x := av.Intersect(bv)
		if !sameSet(valueIDs(t, u), refUnion(am, bm)) {
			return false
		}
		if !sameSet(valueIDs(t, x), refIntersect(am, bm)) {
			return false
		}
		// Operands must be untouched and results sorted.
		if av.Card() != float64(len(am)) || bv.Card() != float64(len(bm)) {
			return false
		}
		return sort.SliceIsSorted(valueIDs(t, u), func(i, j int) bool {
			return valueIDs(t, u)[i] < valueIDs(t, u)[j]
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHashAlgebraDifferential(t *testing.T) {
	h := sampling.NewHasher(99)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		la, lb := rng.Intn(3), rng.Intn(3)
		aIDs, _ := randomIDs(rng, rng.Intn(120), 400)
		bIDs, _ := randomIDs(rng, rng.Intn(120), 400)
		av := NewHashValue(h, la, aIDs...)
		bv := NewHashValue(h, lb, bIDs...)
		// The reference model starts from the values' retained IDs (the
		// constructor already filtered to each value's own level).
		am := make(map[uint64]bool)
		for _, x := range valueIDs(t, av) {
			am[x] = true
		}
		bm := make(map[uint64]bool)
		for _, x := range valueIDs(t, bv) {
			bm[x] = true
		}
		wl, wu := refHashUnion(h, la, am, lb, bm)
		u := av.Union(bv).(*hashValue)
		if u.level != wl && len(wu) > 0 {
			return false
		}
		if !sameSet(u.ids, wu) {
			return false
		}
		xl, xi := refHashIntersect(h, la, am, lb, bm)
		x := av.Intersect(bv).(*hashValue)
		if x.level != xl {
			return false
		}
		if !sameSet(x.ids, xi) {
			return false
		}
		// Card must be |ids|·2^level.
		return u.Card() == float64(len(wu))*float64(uint64(1)<<uint(u.level))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestHashEmptyValueAlgebra exercises the nil-hasher empty value the
// factory hands to SEL as ∅: it must behave as the identity for unions
// and the annihilator for intersections, without panicking on its nil
// hasher.
func TestHashEmptyValueAlgebra(t *testing.T) {
	h := sampling.NewHasher(7)
	f := NewFactory(KindHashes, 8, h, nil)
	empty := f.EmptyValue()
	v := NewHashValue(h, 1, 2, 4, 6, 8, 10, 12)
	if got := empty.Union(v); got.Card() != v.Card() {
		t.Errorf("∅∪v card = %v, want %v", got.Card(), v.Card())
	}
	if got := v.Union(empty); got.Card() != v.Card() {
		t.Errorf("v∪∅ card = %v, want %v", got.Card(), v.Card())
	}
	if got := empty.Intersect(v); !got.IsZero() {
		t.Errorf("∅∩v = %v, want zero", got.Card())
	}
	if got := v.Intersect(empty); !got.IsZero() {
		t.Errorf("v∩∅ = %v, want zero", got.Card())
	}
	if got := empty.Union(empty); !got.IsZero() {
		t.Error("∅∪∅ should stay zero")
	}
}

// TestGallopIntersect drives the skewed-size galloping path against the
// merge path.
func TestGallopIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	big := make([]uint64, 0, 20000)
	bm := make(map[uint64]bool)
	for i := 0; i < 20000; i++ {
		x := uint64(rng.Intn(1 << 20))
		if !bm[x] {
			bm[x] = true
			big = append(big, x)
		}
	}
	small := append([]uint64{}, big[:40]...) // guaranteed hits
	for i := 0; i < 40; i++ {                // plus likely misses
		small = append(small, uint64(rng.Intn(1<<20)))
	}
	want := make(map[uint64]bool)
	for _, x := range small {
		if bm[x] {
			want[x] = true
		}
	}
	sv, bv := NewSetValue(small...), NewSetValue(big...)
	if got := sv.Intersect(bv); !sameSet(valueIDs(t, got), want) {
		t.Errorf("gallop intersect: %d ids, want %d", int(got.Card()), len(want))
	}
	if got := bv.Intersect(sv); !sameSet(valueIDs(t, got), want) {
		t.Errorf("gallop intersect (swapped): %d ids, want %d", int(got.Card()), len(want))
	}
}

// TestAliasingInvariance checks the no-allocation fast paths: when one
// operand subsumes the other, the result aliases it — and later algebra
// on the result must not disturb the original.
func TestAliasingInvariance(t *testing.T) {
	a := NewSetValue(1, 2, 3, 4, 5)
	b := NewSetValue(2, 3)
	u := a.Union(b) // == a
	if u.Card() != 5 {
		t.Fatalf("union card = %v", u.Card())
	}
	x := u.Intersect(NewSetValue(9))
	if !x.IsZero() {
		t.Fatalf("intersect card = %v", x.Card())
	}
	if a.Card() != 5 || b.Card() != 2 {
		t.Error("aliased algebra mutated an operand")
	}
	i := a.Intersect(b) // == b
	if i.Card() != 2 || b.Card() != 2 {
		t.Errorf("subset intersect: got %v / %v", i.Card(), b.Card())
	}
}

// TestStoreValueSnapshotStability: a Value must stay valid (same
// contents) after further store mutations, because SEL memoizes values
// while the synopsis keeps streaming between queries.
func TestStoreValueSnapshotStability(t *testing.T) {
	f := NewFactory(KindSets, 0, nil, nil)
	st := f.NewStore()
	for i := 0; i < 10; i++ {
		st.Add(uint64(i))
	}
	v := st.Value()
	st.Add(100)
	st.Remove(3)
	if v.Card() != 10 {
		t.Errorf("snapshot card drifted to %v after mutation", v.Card())
	}
	v2 := st.Value()
	if v2.Card() != 10 { // 10 - 1 + 1
		t.Errorf("fresh value card = %v, want 10", v2.Card())
	}
	if !v2.(*setValue).Contains(100) || v2.(*setValue).Contains(3) {
		t.Error("fresh value does not reflect mutations")
	}
}

// TestIntersectCardDifferential pins IntersectCard to the reference
// Intersect(...).Card() across representations, sizes and level skews —
// the fast path must agree exactly, including the galloping regime.
func TestIntersectCardDifferential(t *testing.T) {
	h := sampling.NewHasher(7)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Skewed sizes exercise both the merge and gallop counters.
		na, nb := rng.Intn(200), rng.Intn(8)
		if rng.Intn(2) == 0 {
			na, nb = nb, na
		}
		aIDs, _ := randomIDs(rng, na, 500)
		bIDs, _ := randomIDs(rng, nb, 500)

		sa, sb := NewSetValue(aIDs...), NewSetValue(bIDs...)
		if IntersectCard(sa, sb) != sa.Intersect(sb).Card() {
			return false
		}

		la, lb := rng.Intn(3), rng.Intn(3)
		ha := NewHashValue(h, la, aIDs...)
		hb := NewHashValue(h, lb, bIDs...)
		return IntersectCard(ha, hb) == ha.Intersect(hb).Card()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestIntersectCardCounters checks the counters independence product
// (and the zero-total guard) against the materializing path.
func TestIntersectCardCounters(t *testing.T) {
	f := counterFactory(10)
	a, b := f.NewStore(), f.NewStore()
	for i := 0; i < 4; i++ {
		a.Add(uint64(i))
	}
	for i := 0; i < 5; i++ {
		b.Add(uint64(100 + i))
	}
	av, bv := a.Value(), b.Value()
	if got, want := IntersectCard(av, bv), av.Intersect(bv).Card(); got != want {
		t.Fatalf("IntersectCard = %v, want %v", got, want)
	}
	zero := counterFactory(0)
	za, zb := zero.NewStore(), zero.NewStore()
	za.Add(1)
	zb.Add(2)
	if got := IntersectCard(za.Value(), zb.Value()); got != 0 {
		t.Fatalf("zero-total IntersectCard = %v, want 0", got)
	}
}
