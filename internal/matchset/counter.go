package matchset

import "sync"

// counterStore is the Counters representation: one float64 count of the
// documents containing the node. Unlike Sets/Hashes stores, counter
// stores hold the *full* matching-set cardinality (the synopsis
// increments every node on a document's skeleton paths), because counts
// cannot be recovered by unioning descendant counts. Value caches its
// boxed snapshot like the other stores so quiescent query streams do
// not allocate per node.
type counterStore struct {
	f *Factory
	c float64

	snapMu sync.Mutex
	val    *countValue
	dirty  bool
}

func (s *counterStore) Kind() Kind { return KindCounters }

func (s *counterStore) Add(id uint64) {
	s.c++
	s.dirty = true
}

func (s *counterStore) Remove(id uint64) {
	panic("matchset: counters do not support removal")
}

func (s *counterStore) Value() Value {
	s.snapMu.Lock()
	if s.dirty || s.val == nil {
		s.val = &countValue{c: s.c, n: s.f.totalDocs}
		s.dirty = false
	}
	v := s.val
	s.snapMu.Unlock()
	return v
}

func (s *counterStore) Entries() int { return 1 }

func (s *counterStore) SetTo(v Value) {
	cv, ok := v.(*countValue)
	if !ok {
		panic(kindMismatch(s.Value(), v))
	}
	s.c = cv.c
	s.dirty = true
}

// countValue evaluates the SEL set algebra in "estimated count" space
// under independence assumptions (paper, Section 4): union is max,
// intersection is the product of the corresponding probabilities scaled
// back to a count: c1·c2 / |H|.
type countValue struct {
	c float64
	n func() float64
}

func (v *countValue) Kind() Kind    { return KindCounters }
func (v *countValue) Card() float64 { return v.c }
func (v *countValue) IsZero() bool  { return v.c == 0 }

func (v *countValue) Union(o Value) Value {
	ov, ok := o.(*countValue)
	if !ok {
		panic(kindMismatch(v, o))
	}
	// Max combining: one of the operands already is the union value
	// unless a totalDocs source needs grafting onto the larger side.
	big, small := v, ov
	if ov.c > v.c {
		big, small = ov, v
	}
	if big.n == nil && small.n != nil {
		return &countValue{c: big.c, n: small.n}
	}
	return big
}

func (v *countValue) Intersect(o Value) Value {
	ov, ok := o.(*countValue)
	if !ok {
		panic(kindMismatch(v, o))
	}
	n := v.n
	if n == nil {
		n = ov.n
	}
	total := 0.0
	if n != nil {
		total = n()
	}
	if total == 0 {
		return &countValue{c: 0, n: n}
	}
	return &countValue{c: v.c * ov.c / total, n: n}
}

// intersectCard mirrors Intersect's independence product without the
// intermediate value.
func (v *countValue) intersectCard(o Value) float64 {
	ov, ok := o.(*countValue)
	if !ok {
		panic(kindMismatch(v, o))
	}
	n := v.n
	if n == nil {
		n = ov.n
	}
	total := 0.0
	if n != nil {
		total = n()
	}
	if total == 0 {
		return 0
	}
	return v.c * ov.c / total
}

func (s *counterStore) Dump() Dump { return Dump{Kind: KindCounters, Counter: s.c} }
