package matchset

import (
	"testing"

	"treesim/internal/sampling"
)

func TestDumpRestoreCounter(t *testing.T) {
	f := counterFactory(10)
	st := f.NewStore()
	for i := 0; i < 7; i++ {
		st.Add(uint64(i))
	}
	d := st.Dump()
	if d.Kind != KindCounters || d.Counter != 7 {
		t.Fatalf("Dump = %+v", d)
	}
	re := f.Restore(d)
	if re.Kind() != KindCounters || re.Value().Card() != 7 {
		t.Errorf("restored counter = %v", re.Value().Card())
	}
}

func TestDumpRestoreSet(t *testing.T) {
	f := NewFactory(KindSets, 0, nil, nil)
	st := f.NewStore()
	for i := 0; i < 5; i++ {
		st.Add(uint64(i * 3))
	}
	d := st.Dump()
	if d.Kind != KindSets || len(d.IDs) != 5 {
		t.Fatalf("Dump = %+v", d)
	}
	re := f.Restore(d)
	if re.Kind() != KindSets || re.Entries() != 5 {
		t.Errorf("restored set entries = %d", re.Entries())
	}
	if re.Value().Intersect(st.Value()).Card() != 5 {
		t.Error("restored set content differs")
	}
}

func TestDumpRestoreHash(t *testing.T) {
	f := hashFactory(32, 7)
	st := f.NewStore()
	for i := 0; i < 500; i++ {
		st.Add(uint64(i))
	}
	d := st.Dump()
	if d.Kind != KindHashes || d.Level == 0 || len(d.IDs) > 32 {
		t.Fatalf("Dump = kind=%v level=%d ids=%d", d.Kind, d.Level, len(d.IDs))
	}
	re := f.Restore(d)
	if re.Kind() != KindHashes {
		t.Fatal("restored kind wrong")
	}
	// Cardinality estimate must be preserved exactly: same IDs, same
	// level.
	if a, b := st.Value().Card(), re.Value().Card(); a != b {
		t.Errorf("restored estimate %v, want %v", b, a)
	}
}

func TestRestoreKindMismatchPanics(t *testing.T) {
	f := NewFactory(KindSets, 0, nil, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f.Restore(Dump{Kind: KindHashes})
}

func TestStoreKinds(t *testing.T) {
	cases := []struct {
		f    *Factory
		want Kind
	}{
		{counterFactory(1), KindCounters},
		{NewFactory(KindSets, 0, nil, nil), KindSets},
		{hashFactory(8, 1), KindHashes},
	}
	for _, c := range cases {
		if got := c.f.NewStore().Kind(); got != c.want {
			t.Errorf("store kind = %v, want %v", got, c.want)
		}
		if got := c.f.Kind(); got != c.want {
			t.Errorf("factory kind = %v, want %v", got, c.want)
		}
		ev := c.f.EmptyValue()
		if ev.Kind() != c.want || !ev.IsZero() || ev.Card() != 0 {
			t.Errorf("empty value of %v: kind=%v zero=%v card=%v", c.want, ev.Kind(), ev.IsZero(), ev.Card())
		}
	}
}

func TestHashRemoveBestEffort(t *testing.T) {
	f := hashFactory(100, 3)
	st := f.NewStore()
	st.Add(5)
	st.Add(6)
	st.Remove(5)
	if st.Entries() != 1 {
		t.Errorf("Entries = %d, want 1", st.Entries())
	}
	// Removing an absent element is a no-op.
	st.Remove(99)
	if st.Entries() != 1 {
		t.Errorf("Entries = %d after no-op remove", st.Entries())
	}
}

func TestSetStoreSetTo(t *testing.T) {
	f := NewFactory(KindSets, 0, nil, nil)
	a, b := f.NewStore(), f.NewStore()
	a.Add(1)
	a.Add(2)
	b.SetTo(a.Value())
	if b.Entries() != 2 {
		t.Fatalf("SetTo entries = %d", b.Entries())
	}
	// SetTo must copy, not alias.
	a.Add(3)
	if b.Entries() != 2 {
		t.Error("SetTo aliased the source map")
	}
	// Kind mismatch panics.
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.SetTo(counterFactory(1).EmptyValue())
}

func TestCounterUnionNilTotalSource(t *testing.T) {
	// Union must propagate the total-docs source from either operand.
	f := counterFactory(4)
	a := f.NewStore()
	a.Add(1)
	a.Add(2)
	zero := countValue{} // no source
	u := zero.Union(a.Value())
	if u.Card() != 2 {
		t.Errorf("union card = %v", u.Card())
	}
	// Intersect through the recovered source still normalizes.
	x := u.Intersect(a.Value())
	if x.Card() != 1 { // 2*2/4
		t.Errorf("intersect card = %v, want 1", x.Card())
	}
	// Fully sourceless intersection degrades to zero.
	if got := (&countValue{c: 3}).Intersect(&countValue{c: 2}); got.Card() != 0 {
		t.Errorf("sourceless intersect = %v, want 0", got.Card())
	}
}

func TestHashIsZeroAndDumpOfEmpty(t *testing.T) {
	f := hashFactory(8, 2)
	st := f.NewStore()
	if !st.Value().IsZero() {
		t.Error("empty hash store value should be zero")
	}
	d := st.Dump()
	if len(d.IDs) != 0 || d.Level != 0 {
		t.Errorf("empty dump = %+v", d)
	}
	re := f.Restore(d)
	if re.Entries() != 0 {
		t.Error("restored empty store not empty")
	}
	_ = sampling.NewHasher(1) // keep import for potential extension
}
