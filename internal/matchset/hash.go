package matchset

import (
	"sync"

	"treesim/internal/sampling"
)

// hashStore is the Hashes representation: a bounded per-node distinct
// sample of the documents whose skeleton paths end at the node. Value
// snapshots the sample into an immutable sorted-slice value, cached
// until the next mutation (same discipline as setStore).
type hashStore struct {
	f *Factory
	s *sampling.DistinctSample

	snapMu sync.Mutex
	val    *hashValue
	dirty  bool
}

func (s *hashStore) Kind() Kind { return KindHashes }

func (s *hashStore) Add(id uint64) {
	s.s.Add(id)
	s.dirty = true
}

func (s *hashStore) Remove(id uint64) {
	s.s.Remove(id)
	s.dirty = true
}

func (s *hashStore) Value() Value {
	s.snapMu.Lock()
	if s.dirty || s.val == nil {
		s.val = &hashValue{level: s.s.Level(), ids: sortIDs(s.s.IDs()), hasher: s.f.hasher}
		s.dirty = false
	}
	v := s.val
	s.snapMu.Unlock()
	return v
}

func (s *hashStore) Entries() int { return s.s.Size() }

func (s *hashStore) SetTo(v Value) {
	hv, ok := v.(*hashValue)
	if !ok {
		panic(kindMismatch(s.Value(), v))
	}
	ns := sampling.NewDistinctSample(s.f.hasher, s.f.capacity)
	// Re-inserting IDs reconstructs the sample; the level can only grow
	// back to hv.level or beyond (capacity pressure), never shrink below
	// the IDs' own levels, so the estimate stays consistent.
	for _, x := range hv.ids {
		ns.Add(x)
	}
	// The rebuilt sample must not claim a sampling rate higher than the
	// value it came from: force the level up to hv.level if needed.
	ns.ForceLevel(hv.level)
	s.s = ns
	s.dirty = true
}

// hashValue is an immutable distinct-sample view: the sorted identifiers
// retained at the given sampling level. Every retained identifier has
// hash level ≥ the value's level — unions restore this invariant by
// subsampling the lower-level operand, and intersections inherit it from
// the max-level operand. Query-time unions and intersections are not
// capacity-bounded (unlike store maintenance), which only improves
// accuracy; levels still combine by max as required for correctness.
type hashValue struct {
	level  int
	ids    []uint64
	hasher *sampling.Hasher
}

// emptyHashValue is the shared ∅ of the Hashes representation. Its nil
// hasher is never consulted: unions with it short-circuit to the other
// operand, and intersections need no subsampling (see Intersect).
var emptyHashValue = &hashValue{}

func (v *hashValue) Kind() Kind   { return KindHashes }
func (v *hashValue) IsZero() bool { return len(v.ids) == 0 }

func (v *hashValue) Card() float64 {
	return float64(len(v.ids)) * float64(uint64(1)<<uint(v.level))
}

func (v *hashValue) Union(o Value) Value {
	ov, ok := o.(*hashValue)
	if !ok {
		panic(kindMismatch(v, o))
	}
	if len(v.ids) == 0 && v.level <= ov.level {
		return ov
	}
	if len(ov.ids) == 0 && ov.level <= v.level {
		return v
	}
	h := v.hasher
	if h == nil {
		h = ov.hasher
	}
	l := max(v.level, ov.level)
	a, b := v.ids, ov.ids
	// Subsample the lower-level operand to the common level l; the other
	// operand's elements qualify by the value invariant.
	var fa, fb *[]uint64
	if v.level < l {
		fa = scratchGet(len(a))
		a = (*fa)[:filterLevel(*fa, a, h, l)]
	}
	if ov.level < l {
		fb = scratchGet(len(b))
		b = (*fb)[:filterLevel(*fb, b, h, l)]
	}
	buf := scratchGet(len(a) + len(b))
	n := mergeUnion(*buf, a, b)
	alias := aliasOf(*buf, n, v.ids, ov.ids)
	if fa != nil {
		scratchPut(fa)
	}
	if fb != nil {
		scratchPut(fb)
	}
	switch alias {
	case 1:
		scratchPut(buf)
		if v.level == l {
			return v
		}
		return &hashValue{level: l, ids: v.ids, hasher: h}
	case 2:
		scratchPut(buf)
		if ov.level == l {
			return ov
		}
		return &hashValue{level: l, ids: ov.ids, hasher: h}
	}
	return &hashValue{level: l, ids: materialize(buf, n), hasher: h}
}

func (v *hashValue) Intersect(o Value) Value {
	ov, ok := o.(*hashValue)
	if !ok {
		panic(kindMismatch(v, o))
	}
	h := v.hasher
	if h == nil {
		h = ov.hasher
	}
	l := max(v.level, ov.level)
	// No level filtering needed: every element of the max-level operand
	// already has level ≥ l, and the intersection is a subset of it.
	m := min(len(v.ids), len(ov.ids))
	if m == 0 {
		if l == 0 && h == nil {
			return emptyHashValue
		}
		return &hashValue{level: l, hasher: h}
	}
	buf := scratchGet(m)
	n := intersectInto(*buf, v.ids, ov.ids)
	switch aliasOf(*buf, n, v.ids, ov.ids) {
	case 1:
		scratchPut(buf)
		if v.level == l {
			return v
		}
		return &hashValue{level: l, ids: v.ids, hasher: h}
	case 2:
		scratchPut(buf)
		if ov.level == l {
			return ov
		}
		return &hashValue{level: l, ids: ov.ids, hasher: h}
	}
	return &hashValue{level: l, ids: materialize(buf, n), hasher: h}
}

// intersectCard mirrors Intersect + Card without building the value:
// the intersection keeps the raw common identifiers at level
// max(v.level, ov.level), so its cardinality is the common count scaled
// by 2^level.
func (v *hashValue) intersectCard(o Value) float64 {
	ov, ok := o.(*hashValue)
	if !ok {
		panic(kindMismatch(v, o))
	}
	l := max(v.level, ov.level)
	return float64(intersectCount(v.ids, ov.ids)) * float64(uint64(1)<<uint(l))
}

// NewHashValue builds a Hashes-kind value directly; exported for tests.
func NewHashValue(hasher *sampling.Hasher, level int, ids ...uint64) Value {
	out := make([]uint64, 0, len(ids))
	for _, x := range ids {
		if hasher.Level(x) >= level {
			out = append(out, x)
		}
	}
	return &hashValue{level: level, ids: sortIDs(out), hasher: hasher}
}

func (s *hashStore) Dump() Dump {
	return Dump{Kind: KindHashes, Level: s.s.Level(), IDs: sortIDs(s.s.IDs())}
}
