package matchset

import "treesim/internal/sampling"

// hashStore is the Hashes representation: a bounded per-node distinct
// sample of the documents whose skeleton paths end at the node.
type hashStore struct {
	f *Factory
	s *sampling.DistinctSample
}

func (s *hashStore) Kind() Kind { return KindHashes }

func (s *hashStore) Add(id uint64) { s.s.Add(id) }

func (s *hashStore) Remove(id uint64) { s.s.Remove(id) }

func (s *hashStore) Value() Value {
	if s.s.Size() == 0 && s.s.Level() == 0 {
		return hashValue{hasher: s.f.hasher}
	}
	ids := make(map[uint64]struct{}, s.s.Size())
	for _, x := range s.s.IDs() {
		ids[x] = struct{}{}
	}
	return hashValue{level: s.s.Level(), ids: ids, hasher: s.f.hasher}
}

func (s *hashStore) Entries() int { return s.s.Size() }

func (s *hashStore) SetTo(v Value) {
	hv, ok := v.(hashValue)
	if !ok {
		panic(kindMismatch(s.Value(), v))
	}
	ns := sampling.NewDistinctSample(s.f.hasher, s.f.capacity)
	// Re-inserting IDs reconstructs the sample; the level can only grow
	// back to hv.level or beyond (capacity pressure), never shrink below
	// the IDs' own levels, so the estimate stays consistent.
	for x := range hv.ids {
		ns.Add(x)
	}
	// The rebuilt sample must not claim a sampling rate higher than the
	// value it came from: force the level up to hv.level if needed.
	ns.ForceLevel(hv.level)
	s.s = ns
}

// hashValue is an immutable distinct-sample view: the identifiers
// retained at the given sampling level. Query-time unions and
// intersections are not capacity-bounded (unlike store maintenance),
// which only improves accuracy; levels still combine by max as required
// for correctness.
type hashValue struct {
	level  int
	ids    map[uint64]struct{}
	hasher *sampling.Hasher
}

func (v hashValue) Kind() Kind   { return KindHashes }
func (v hashValue) IsZero() bool { return len(v.ids) == 0 }

func (v hashValue) Card() float64 {
	return float64(len(v.ids)) * float64(uint64(1)<<uint(v.level))
}

func (v hashValue) Union(o Value) Value {
	ov, ok := o.(hashValue)
	if !ok {
		panic(kindMismatch(v, o))
	}
	if len(v.ids) == 0 && v.level <= ov.level {
		return ov
	}
	if len(ov.ids) == 0 && ov.level <= v.level {
		return v
	}
	h := v.hasher
	if h == nil {
		h = ov.hasher
	}
	l := v.level
	if ov.level > l {
		l = ov.level
	}
	out := make(map[uint64]struct{}, len(v.ids)+len(ov.ids))
	for x := range v.ids {
		if h.Level(x) >= l {
			out[x] = struct{}{}
		}
	}
	for x := range ov.ids {
		if h.Level(x) >= l {
			out[x] = struct{}{}
		}
	}
	return hashValue{level: l, ids: out, hasher: h}
}

func (v hashValue) Intersect(o Value) Value {
	ov, ok := o.(hashValue)
	if !ok {
		panic(kindMismatch(v, o))
	}
	h := v.hasher
	if h == nil {
		h = ov.hasher
	}
	l := v.level
	if ov.level > l {
		l = ov.level
	}
	small, big := v.ids, ov.ids
	if len(big) < len(small) {
		small, big = big, small
	}
	out := make(map[uint64]struct{}, len(small))
	for x := range small {
		if h != nil && h.Level(x) < l {
			continue
		}
		if _, ok := big[x]; ok {
			out[x] = struct{}{}
		}
	}
	return hashValue{level: l, ids: out, hasher: h}
}

// NewHashValue builds a Hashes-kind value directly; exported for tests.
func NewHashValue(hasher *sampling.Hasher, level int, ids ...uint64) Value {
	m := make(map[uint64]struct{}, len(ids))
	for _, x := range ids {
		if hasher.Level(x) >= level {
			m[x] = struct{}{}
		}
	}
	return hashValue{level: level, ids: m, hasher: hasher}
}

func (s *hashStore) Dump() Dump {
	return Dump{Kind: KindHashes, Level: s.s.Level(), IDs: s.s.IDs()}
}
