// Package matchset implements the three matching-set representations of
// the paper (Section 3.2) behind a common interface:
//
//   - Counters: a per-node document count. Selectivity evaluation runs
//     under independence assumptions — union becomes max, intersection
//     becomes product (the baseline of Chan et al., VLDB'02).
//   - Sets: plain document-identifier sets, bounded globally by
//     document-level reservoir sampling (Vitter).
//   - Hashes: per-node bounded distinct samples (Gibbons) supporting
//     principled union/intersection/cardinality estimation (Ganguly et
//     al.).
//
// A Store is the mutable per-synopsis-node representation; a Value is an
// immutable query-time snapshot with set algebra, consumed by the SEL
// selectivity algorithm. Values alias store internals for efficiency and
// are invalidated by any synopsis mutation (the synopsis tracks a
// version stamp for exactly this reason).
package matchset

import (
	"fmt"

	"treesim/internal/sampling"
)

// Kind selects a matching-set representation.
type Kind int

const (
	// KindCounters stores one counter per node.
	KindCounters Kind = iota
	// KindSets stores exact ID sets over a reservoir-sampled document
	// stream.
	KindSets
	// KindHashes stores bounded distinct samples per node.
	KindHashes
)

func (k Kind) String() string {
	switch k {
	case KindCounters:
		return "Counters"
	case KindSets:
		return "Sets"
	case KindHashes:
		return "Hashes"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is an immutable query-time matching set. Implementations must
// never mutate their receivers or arguments; Union and Intersect return
// fresh (or safely aliased) values. Mixing Values of different kinds
// panics — it always indicates a bug.
type Value interface {
	// Kind identifies the representation.
	Kind() Kind
	// Union returns the union (counters: max).
	Union(Value) Value
	// Intersect returns the intersection (counters: product).
	Intersect(Value) Value
	// Card estimates the cardinality of the underlying document set.
	Card() float64
	// IsZero reports whether the value is known to be empty. Zero values
	// short-circuit unions and intersections in SEL.
	IsZero() bool
}

// cardIntersecter is implemented by values that can compute the
// cardinality of an intersection without materializing the result.
// Every built-in representation implements it; the interface exists so
// hand-rolled test Values that only satisfy Value keep working.
type cardIntersecter interface {
	intersectCard(Value) float64
}

// IntersectCard returns a.Intersect(b).Card() without allocating the
// intersection value. Similarity computations intersect once per
// subscription pair and use only the cardinality, so the materialized
// set (and its allocation) is pure waste on that path.
func IntersectCard(a, b Value) float64 {
	if ci, ok := a.(cardIntersecter); ok {
		return ci.intersectCard(b)
	}
	return a.Intersect(b).Card()
}

// Store is the mutable matching-set state attached to a synopsis node.
type Store interface {
	// Kind identifies the representation.
	Kind() Kind
	// Add records that the document with the given identifier matched.
	Add(id uint64)
	// Remove forgets a document (reservoir eviction). Counters do not
	// support removal and panic.
	Remove(id uint64)
	// Value snapshots the store as an immutable query value.
	Value() Value
	// Entries returns the number of stored entries for the paper's
	// synopsis size accounting (counters count as one entry).
	Entries() int
	// SetTo replaces the stored contents with the given value, applying
	// the store's capacity bound. Used by the pruning operations.
	SetTo(v Value)
	// Dump snapshots the store for serialization; Factory.Restore
	// rebuilds an equivalent store from it.
	Dump() Dump
}

// Dump is a serializable snapshot of a Store. Exactly the fields
// relevant to the store's kind are populated.
type Dump struct {
	// Kind identifies the representation.
	Kind Kind
	// Counter is the count (Counters only).
	Counter float64
	// Level is the distinct-sampling level (Hashes only).
	Level int
	// IDs are the retained document identifiers (Sets and Hashes).
	IDs []uint64
}

// Factory builds stores and empty values for one representation with
// shared configuration (hash function, capacities, stream length).
type Factory struct {
	kind Kind
	// capacity bounds per-node samples (Hashes). Sets are bounded
	// globally by the reservoir, Counters need no bound.
	capacity int
	hasher   *sampling.Hasher
	// totalDocs reports the current stream length |H|; counter values
	// need it to normalize intersections (product in probability space).
	totalDocs func() float64
	// emptyCount is the factory's shared empty counter value (needs the
	// totalDocs closure, so it cannot be a package singleton).
	emptyCount *countValue
}

// NewFactory returns a factory for the given kind.
//
//   - KindCounters requires totalDocs.
//   - KindSets requires nothing extra (capacity ignored).
//   - KindHashes requires hasher and capacity ≥ 1.
func NewFactory(kind Kind, capacity int, hasher *sampling.Hasher, totalDocs func() float64) *Factory {
	switch kind {
	case KindCounters:
		if totalDocs == nil {
			panic("matchset: counters require a totalDocs source")
		}
	case KindHashes:
		if hasher == nil || capacity < 1 {
			panic("matchset: hashes require a hasher and capacity >= 1")
		}
	case KindSets:
		// nothing
	default:
		panic(fmt.Sprintf("matchset: unknown kind %d", int(kind)))
	}
	f := &Factory{kind: kind, capacity: capacity, hasher: hasher, totalDocs: totalDocs}
	if kind == KindCounters {
		f.emptyCount = &countValue{c: 0, n: totalDocs}
	}
	return f
}

// Kind returns the representation this factory builds.
func (f *Factory) Kind() Kind { return f.kind }

// NewStore returns an empty store.
func (f *Factory) NewStore() Store {
	switch f.kind {
	case KindCounters:
		return &counterStore{f: f}
	case KindSets:
		return &setStore{ids: make(map[uint64]struct{})}
	default:
		return &hashStore{f: f, s: sampling.NewDistinctSample(f.hasher, f.capacity)}
	}
}

// Restore rebuilds a store from a Dump produced by a store of the same
// kind. It panics on kind mismatch.
func (f *Factory) Restore(d Dump) Store {
	if d.Kind != f.kind {
		panic(fmt.Sprintf("matchset: restore kind %s into factory of kind %s", d.Kind, f.kind))
	}
	switch f.kind {
	case KindCounters:
		return &counterStore{f: f, c: d.Counter}
	case KindSets:
		s := &setStore{ids: make(map[uint64]struct{}, len(d.IDs))}
		for _, x := range d.IDs {
			s.ids[x] = struct{}{}
		}
		return s
	default:
		hs := &hashStore{f: f, s: sampling.NewDistinctSample(f.hasher, f.capacity)}
		for _, x := range d.IDs {
			hs.s.Add(x)
		}
		hs.s.ForceLevel(d.Level)
		return hs
	}
}

// EmptyValue returns the empty query value of this representation. The
// result is a shared singleton (per factory for Counters, package-wide
// otherwise); callers treat it as immutable like every other Value.
func (f *Factory) EmptyValue() Value {
	switch f.kind {
	case KindCounters:
		return f.emptyCount
	case KindSets:
		return emptySetValue
	default:
		return emptyHashValue
	}
}

func kindMismatch(a, b Value) string {
	return fmt.Sprintf("matchset: mixed value kinds %s and %s", a.Kind(), b.Kind())
}
