package matchset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"treesim/internal/sampling"
)

func counterFactory(total float64) *Factory {
	return NewFactory(KindCounters, 0, nil, func() float64 { return total })
}

func hashFactory(capacity int, seed uint64) *Factory {
	return NewFactory(KindHashes, capacity, sampling.NewHasher(seed), nil)
}

func TestKindString(t *testing.T) {
	if KindCounters.String() != "Counters" || KindSets.String() != "Sets" || KindHashes.String() != "Hashes" {
		t.Error("Kind.String broken")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind string broken")
	}
}

func TestFactoryValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewFactory(KindCounters, 0, nil, nil) },
		func() { NewFactory(KindHashes, 0, sampling.NewHasher(1), nil) },
		func() { NewFactory(KindHashes, 10, nil, nil) },
		func() { NewFactory(Kind(42), 0, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCounterSemantics(t *testing.T) {
	f := counterFactory(6)
	st := f.NewStore()
	for i := 0; i < 3; i++ {
		st.Add(uint64(i))
	}
	v := st.Value()
	if v.Card() != 3 {
		t.Errorf("Card = %v, want 3", v.Card())
	}
	// The paper's Section 3.2 example: P(a/b)=1/2, P(a/d)=1/2,
	// independence gives P(a[b][d]) = c1*c2/N = 3*3/6 = 1.5 (i.e. 1/4 of
	// the 6 documents).
	st2 := f.NewStore()
	for i := 0; i < 3; i++ {
		st2.Add(uint64(10 + i))
	}
	inter := v.Intersect(st2.Value())
	if inter.Card() != 1.5 {
		t.Errorf("Intersect Card = %v, want 1.5", inter.Card())
	}
	// Union is max.
	st3 := f.NewStore()
	st3.Add(1)
	u := v.Union(st3.Value())
	if u.Card() != 3 {
		t.Errorf("Union Card = %v, want 3", u.Card())
	}
	if st.Entries() != 1 {
		t.Errorf("counter Entries = %d, want 1", st.Entries())
	}
}

func TestCounterRemovePanics(t *testing.T) {
	st := counterFactory(1).NewStore()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	st.Remove(0)
}

func TestCounterSetTo(t *testing.T) {
	f := counterFactory(10)
	a, b := f.NewStore(), f.NewStore()
	for i := 0; i < 4; i++ {
		a.Add(uint64(i))
	}
	b.SetTo(a.Value())
	if b.Value().Card() != 4 {
		t.Errorf("SetTo: Card = %v, want 4", b.Value().Card())
	}
}

func TestSetSemantics(t *testing.T) {
	f := NewFactory(KindSets, 0, nil, nil)
	a, b := f.NewStore(), f.NewStore()
	for i := 0; i < 4; i++ {
		a.Add(uint64(i)) // {0,1,2,3}
	}
	for i := 2; i < 6; i++ {
		b.Add(uint64(i)) // {2,3,4,5}
	}
	av, bv := a.Value(), b.Value()
	if got := av.Union(bv).Card(); got != 6 {
		t.Errorf("union card = %v, want 6", got)
	}
	if got := av.Intersect(bv).Card(); got != 2 {
		t.Errorf("intersect card = %v, want 2", got)
	}
	a.Remove(0)
	if got := a.Value().Card(); got != 3 {
		t.Errorf("after Remove card = %v, want 3", got)
	}
	if a.Entries() != 3 {
		t.Errorf("Entries = %d, want 3", a.Entries())
	}
	// Empty behaviour.
	e := f.EmptyValue()
	if !e.IsZero() || e.Card() != 0 {
		t.Error("empty set value should be zero")
	}
	if got := e.Union(av).Card(); got != av.Card() {
		t.Errorf("∅∪A card = %v, want %v", got, av.Card())
	}
	if got := e.Intersect(av).Card(); got != 0 {
		t.Errorf("∅∩A card = %v, want 0", got)
	}
}

func TestSetValueImmutability(t *testing.T) {
	a := NewSetValue(1, 2, 3)
	b := NewSetValue(3, 4)
	_ = a.Union(b)
	_ = a.Intersect(b)
	if a.Card() != 3 || b.Card() != 2 {
		t.Error("set algebra mutated its operands")
	}
}

func TestHashSemanticsLossless(t *testing.T) {
	// Below capacity, hash stores behave exactly like sets.
	f := hashFactory(1000, 3)
	a, b := f.NewStore(), f.NewStore()
	for i := 0; i < 300; i++ {
		a.Add(uint64(i))
	}
	for i := 200; i < 500; i++ {
		b.Add(uint64(i))
	}
	av, bv := a.Value(), b.Value()
	if got := av.Union(bv).Card(); got != 500 {
		t.Errorf("union card = %v, want 500", got)
	}
	if got := av.Intersect(bv).Card(); got != 100 {
		t.Errorf("intersect card = %v, want 100", got)
	}
}

func TestHashSemanticsSampled(t *testing.T) {
	// Above capacity, estimates stay close on average across seeds.
	const trueA, trueB, trueBoth = 8000, 8000, 4000
	var unionErr, interErr float64
	const seeds = 8
	for seed := uint64(0); seed < seeds; seed++ {
		f := hashFactory(256, seed+50)
		a, b := f.NewStore(), f.NewStore()
		for i := 0; i < trueA; i++ {
			a.Add(uint64(i))
		}
		for i := trueA - trueBoth; i < trueA-trueBoth+trueB; i++ {
			b.Add(uint64(i))
		}
		av, bv := a.Value(), b.Value()
		u := av.Union(bv).Card()
		x := av.Intersect(bv).Card()
		unionErr += math.Abs(u-12000) / 12000
		interErr += math.Abs(x-trueBoth) / trueBoth
	}
	if avg := unionErr / seeds; avg > 0.15 {
		t.Errorf("avg union error %v too high", avg)
	}
	if avg := interErr / seeds; avg > 0.3 {
		t.Errorf("avg intersection error %v too high", avg)
	}
}

func TestHashSetToRoundTrip(t *testing.T) {
	f := hashFactory(64, 9)
	a := f.NewStore()
	for i := 0; i < 5000; i++ {
		a.Add(uint64(i))
	}
	b := f.NewStore()
	b.SetTo(a.Value())
	// The rebuilt store must estimate a similar cardinality.
	ca, cb := a.Value().Card(), b.Value().Card()
	if math.Abs(ca-cb)/ca > 0.35 {
		t.Errorf("SetTo changed estimate too much: %v vs %v", ca, cb)
	}
	if b.Entries() > 64 {
		t.Errorf("SetTo exceeded capacity: %d", b.Entries())
	}
}

func TestMixedKindsPanic(t *testing.T) {
	sv := NewSetValue(1)
	hv := NewHashValue(sampling.NewHasher(1), 0, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mixed kinds")
		}
	}()
	sv.Union(hv)
}

func TestHashUnionLevelIsMax(t *testing.T) {
	h := sampling.NewHasher(17)
	// Construct values at explicit levels.
	ids := make([]uint64, 0, 100)
	for x := uint64(0); len(ids) < 100; x++ {
		if h.Level(x) >= 2 {
			ids = append(ids, x)
		}
	}
	v0 := NewHashValue(h, 0, ids[:50]...)
	v2 := NewHashValue(h, 2, ids[50:]...)
	u := v0.Union(v2).(*hashValue)
	if u.level != 2 {
		t.Errorf("union level = %d, want 2", u.level)
	}
	// All retained elements must satisfy the level constraint.
	for _, x := range u.ids {
		if h.Level(x) < 2 {
			t.Errorf("element %d below union level", x)
		}
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	// Union/intersect on Sets values agree with model map-based sets.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() (Value, map[uint64]bool) {
			m := make(map[uint64]bool)
			var ids []uint64
			for i := 0; i < rng.Intn(50); i++ {
				x := uint64(rng.Intn(60))
				if !m[x] {
					m[x] = true
					ids = append(ids, x)
				}
			}
			return NewSetValue(ids...), m
		}
		av, am := mk()
		bv, bm := mk()
		wantU, wantI := 0, 0
		for x := range am {
			if bm[x] {
				wantI++
			}
			wantU++
		}
		for x := range bm {
			if !am[x] {
				wantU++
			}
		}
		return av.Union(bv).Card() == float64(wantU) &&
			av.Intersect(bv).Card() == float64(wantI)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
