package matchset

import (
	"slices"
	"sync"
)

// setStore is the Sets representation: an exact set of document
// identifiers. Bounding happens globally, at the document level, via the
// reservoir owned by the synopsis: the store itself is unbounded but
// only ever holds identifiers of currently sampled documents.
//
// Mutation stays on a hash map (O(1) Add/Remove under reservoir churn);
// Value snapshots the map into an immutable sorted-slice value, cached
// until the next mutation so repeated queries over an unchanged store
// pay the sort (and the value allocation) once. The snapshot cache has
// its own mutex because concurrent queries may race to materialize it;
// mutations require the caller's exclusive lock as before.
type setStore struct {
	ids map[uint64]struct{}

	snapMu sync.Mutex
	val    *setValue
	dirty  bool
}

func (s *setStore) Kind() Kind { return KindSets }

func (s *setStore) Add(id uint64) {
	s.ids[id] = struct{}{}
	s.dirty = true
}

func (s *setStore) Remove(id uint64) {
	delete(s.ids, id)
	s.dirty = true
}

func (s *setStore) Value() Value {
	s.snapMu.Lock()
	if s.dirty || s.val == nil {
		s.val = &setValue{ids: sortedIDs(s.ids)}
		s.dirty = false
	}
	v := s.val
	s.snapMu.Unlock()
	return v
}

func (s *setStore) Entries() int { return len(s.ids) }

func (s *setStore) SetTo(v Value) {
	sv, ok := v.(*setValue)
	if !ok {
		panic(kindMismatch(s.Value(), v))
	}
	s.ids = make(map[uint64]struct{}, len(sv.ids))
	for _, x := range sv.ids {
		s.ids[x] = struct{}{}
	}
	s.dirty = true
}

// setValue is an immutable view of a sorted ID slice. A nil slice is the
// empty set. Union and Intersect never mutate; when a result equals one
// of the operands the operand itself is returned (no allocation).
type setValue struct {
	ids []uint64
}

// emptySetValue is the shared ∅ of the Sets representation.
var emptySetValue = &setValue{}

func (v *setValue) Kind() Kind    { return KindSets }
func (v *setValue) Card() float64 { return float64(len(v.ids)) }
func (v *setValue) IsZero() bool  { return len(v.ids) == 0 }

// Contains is used by tests and by exact-mode verification.
func (v *setValue) Contains(x uint64) bool {
	_, ok := slices.BinarySearch(v.ids, x)
	return ok
}

func (v *setValue) Union(o Value) Value {
	ov, ok := o.(*setValue)
	if !ok {
		panic(kindMismatch(v, o))
	}
	if len(v.ids) == 0 {
		return ov
	}
	if len(ov.ids) == 0 {
		return v
	}
	buf := scratchGet(len(v.ids) + len(ov.ids))
	n := mergeUnion(*buf, v.ids, ov.ids)
	switch aliasOf(*buf, n, v.ids, ov.ids) {
	case 1:
		scratchPut(buf)
		return v
	case 2:
		scratchPut(buf)
		return ov
	}
	return &setValue{ids: materialize(buf, n)}
}

func (v *setValue) Intersect(o Value) Value {
	ov, ok := o.(*setValue)
	if !ok {
		panic(kindMismatch(v, o))
	}
	m := min(len(v.ids), len(ov.ids))
	if m == 0 {
		return emptySetValue
	}
	buf := scratchGet(m)
	n := intersectInto(*buf, v.ids, ov.ids)
	if n == 0 {
		scratchPut(buf)
		return emptySetValue
	}
	switch aliasOf(*buf, n, v.ids, ov.ids) {
	case 1:
		scratchPut(buf)
		return v
	case 2:
		scratchPut(buf)
		return ov
	}
	return &setValue{ids: materialize(buf, n)}
}

// intersectCard implements the allocation-free IntersectCard fast path:
// the cardinality of a Sets intersection is the exact count of common
// identifiers.
func (v *setValue) intersectCard(o Value) float64 {
	ov, ok := o.(*setValue)
	if !ok {
		panic(kindMismatch(v, o))
	}
	return float64(intersectCount(v.ids, ov.ids))
}

// NewSetValue builds a Sets-kind value from explicit identifiers; it is
// exported for tests and for exact ground-truth evaluation.
func NewSetValue(ids ...uint64) Value {
	out := make([]uint64, len(ids))
	copy(out, ids)
	return &setValue{ids: sortIDs(out)}
}

func (s *setStore) Dump() Dump {
	return Dump{Kind: KindSets, IDs: sortedIDs(s.ids)}
}
