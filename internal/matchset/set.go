package matchset

// setStore is the Sets representation: an exact set of document
// identifiers. Bounding happens globally, at the document level, via the
// reservoir owned by the synopsis: the store itself is unbounded but
// only ever holds identifiers of currently sampled documents.
type setStore struct {
	ids map[uint64]struct{}
}

func (s *setStore) Kind() Kind { return KindSets }

func (s *setStore) Add(id uint64) { s.ids[id] = struct{}{} }

func (s *setStore) Remove(id uint64) { delete(s.ids, id) }

func (s *setStore) Value() Value {
	if len(s.ids) == 0 {
		return setValue{}
	}
	return setValue{ids: s.ids}
}

func (s *setStore) Entries() int { return len(s.ids) }

func (s *setStore) SetTo(v Value) {
	sv, ok := v.(setValue)
	if !ok {
		panic(kindMismatch(s.Value(), v))
	}
	s.ids = make(map[uint64]struct{}, len(sv.ids))
	for x := range sv.ids {
		s.ids[x] = struct{}{}
	}
}

// setValue is an immutable view of an ID set. A nil map is the empty
// set. Union and Intersect never mutate; when a result equals one of the
// operands it may alias that operand's map.
type setValue struct {
	ids map[uint64]struct{}
}

func (v setValue) Kind() Kind    { return KindSets }
func (v setValue) Card() float64 { return float64(len(v.ids)) }
func (v setValue) IsZero() bool  { return len(v.ids) == 0 }

// Contains is used by tests and by exact-mode verification.
func (v setValue) Contains(x uint64) bool {
	_, ok := v.ids[x]
	return ok
}

func (v setValue) Union(o Value) Value {
	ov, ok := o.(setValue)
	if !ok {
		panic(kindMismatch(v, o))
	}
	if len(v.ids) == 0 {
		return ov
	}
	if len(ov.ids) == 0 {
		return v
	}
	out := make(map[uint64]struct{}, len(v.ids)+len(ov.ids))
	for x := range v.ids {
		out[x] = struct{}{}
	}
	for x := range ov.ids {
		out[x] = struct{}{}
	}
	return setValue{ids: out}
}

func (v setValue) Intersect(o Value) Value {
	ov, ok := o.(setValue)
	if !ok {
		panic(kindMismatch(v, o))
	}
	small, big := v.ids, ov.ids
	if len(big) < len(small) {
		small, big = big, small
	}
	if len(small) == 0 {
		return setValue{}
	}
	out := make(map[uint64]struct{}, len(small))
	for x := range small {
		if _, ok := big[x]; ok {
			out[x] = struct{}{}
		}
	}
	return setValue{ids: out}
}

// NewSetValue builds a Sets-kind value from explicit identifiers; it is
// exported for tests and for exact ground-truth evaluation.
func NewSetValue(ids ...uint64) Value {
	m := make(map[uint64]struct{}, len(ids))
	for _, x := range ids {
		m[x] = struct{}{}
	}
	return setValue{ids: m}
}

func (s *setStore) Dump() Dump {
	ids := make([]uint64, 0, len(s.ids))
	for x := range s.ids {
		ids = append(ids, x)
	}
	return Dump{Kind: KindSets, IDs: ids}
}
