// Package metrics implements the paper's tree-pattern proximity metrics
// (Section 4):
//
//	M1(p,q) = P(p|q) = P(p∧q)/P(q)                      (asymmetric)
//	M2(p,q) = (P(p|q) + P(q|p)) / 2                      (symmetric)
//	M3(p,q) = P(p∧q) / P(p∨q)                            (symmetric)
//
// The formulas are evaluated over any probability source — the synopsis
// estimator or exact ground truth — so estimated and true similarities
// share one code path.
package metrics

import (
	"fmt"

	"treesim/internal/pattern"
)

// Metric identifies a proximity metric.
type Metric int

const (
	// M1 is the conditional probability P(p|q).
	M1 Metric = iota + 1
	// M2 is the mean of the two conditional probabilities.
	M2
	// M3 is the ratio of the joint probability to the union probability
	// (the Jaccard coefficient of the match sets).
	M3
)

func (m Metric) String() string {
	switch m {
	case M1:
		return "M1"
	case M2:
		return "M2"
	case M3:
		return "M3"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// All lists the three metrics in paper order.
var All = []Metric{M1, M2, M3}

// Symmetric reports whether the metric is symmetric in its arguments.
func (m Metric) Symmetric() bool { return m == M2 || m == M3 }

// Probs carries the three probabilities needed to evaluate any of the
// metrics for a pattern pair (p, q).
type Probs struct {
	// P is P(p), Q is P(q), And is P(p ∧ q).
	P, Q, And float64
}

// Eval computes the metric from the probabilities. Conventions for
// degenerate inputs: a conditional with zero condition probability is 0,
// and M3 with an empty union is 0. Estimated probabilities are not
// clamped: if the estimator claims P(p∧q) > P(q), M1 exceeds 1 and the
// error metrics will duly charge for it.
func (m Metric) Eval(pr Probs) float64 {
	switch m {
	case M1:
		return cond(pr.And, pr.Q)
	case M2:
		return (cond(pr.And, pr.Q) + cond(pr.And, pr.P)) / 2
	case M3:
		den := pr.P + pr.Q - pr.And
		if den <= 0 {
			return 0
		}
		return pr.And / den
	default:
		panic(fmt.Sprintf("metrics: unknown metric %d", int(m)))
	}
}

func cond(joint, given float64) float64 {
	if given == 0 {
		return 0
	}
	return joint / given
}

// Source supplies pattern probabilities; both the synopsis estimator and
// the exact ground-truth evaluator implement it.
type Source interface {
	// P estimates the probability that a document matches p.
	P(p *pattern.Pattern) float64
	// PAnd estimates the probability that a document matches both p and
	// q.
	PAnd(p, q *pattern.Pattern) float64
}

// Similarity evaluates metric m for the pair (p, q) over the given
// probability source.
func Similarity(src Source, m Metric, p, q *pattern.Pattern) float64 {
	return m.Eval(Probs{P: src.P(p), Q: src.P(q), And: src.PAnd(p, q)})
}
