package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"treesim/internal/matchset"
	"treesim/internal/pattern"
	"treesim/internal/selectivity"
	"treesim/internal/synopsis"
	"treesim/internal/xmltree"
)

func TestMetricFormulas(t *testing.T) {
	pr := Probs{P: 0.4, Q: 0.2, And: 0.1}
	if got := M1.Eval(pr); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("M1 = %v, want 0.5", got)
	}
	// M2 = (0.1/0.2 + 0.1/0.4)/2 = (0.5+0.25)/2 = 0.375
	if got := M2.Eval(pr); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("M2 = %v, want 0.375", got)
	}
	// M3 = 0.1/(0.4+0.2-0.1) = 0.2
	if got := M3.Eval(pr); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("M3 = %v, want 0.2", got)
	}
}

func TestDegenerateInputs(t *testing.T) {
	zero := Probs{}
	for _, m := range All {
		if got := m.Eval(zero); got != 0 {
			t.Errorf("%s(0,0,0) = %v, want 0", m, got)
		}
	}
	// Identical patterns: all metrics are 1.
	one := Probs{P: 0.3, Q: 0.3, And: 0.3}
	for _, m := range All {
		if got := m.Eval(one); math.Abs(got-1) > 1e-12 {
			t.Errorf("%s(identical) = %v, want 1", m, got)
		}
	}
	// Disjoint patterns: all metrics are 0.
	disj := Probs{P: 0.3, Q: 0.4, And: 0}
	for _, m := range All {
		if got := m.Eval(disj); got != 0 {
			t.Errorf("%s(disjoint) = %v, want 0", m, got)
		}
	}
}

func TestSymmetry(t *testing.T) {
	if M1.Symmetric() || !M2.Symmetric() || !M3.Symmetric() {
		t.Error("symmetry flags wrong")
	}
	f := func(p, q, and float64) bool {
		p, q, and = math.Abs(p), math.Abs(q), math.Abs(and)
		// Make a consistent triple: and ≤ min(p,q) ≤ 1.
		p, q = math.Mod(p, 1), math.Mod(q, 1)
		and = math.Mod(and, 1) * math.Min(p, q)
		a := Probs{P: p, Q: q, And: and}
		b := Probs{P: q, Q: p, And: and}
		return math.Abs(M2.Eval(a)-M2.Eval(b)) < 1e-12 &&
			math.Abs(M3.Eval(a)-M3.Eval(b)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMetricBounds(t *testing.T) {
	// For consistent probabilities (and ≤ min(p,q)), all metrics lie in
	// [0,1] and M3 ≤ min(conditionals).
	f := func(p, q, frac float64) bool {
		p = math.Mod(math.Abs(p), 1)
		q = math.Mod(math.Abs(q), 1)
		and := math.Mod(math.Abs(frac), 1) * math.Min(p, q)
		pr := Probs{P: p, Q: q, And: and}
		m1, m2, m3 := M1.Eval(pr), M2.Eval(pr), M3.Eval(pr)
		if m1 < 0 || m1 > 1+1e-12 || m2 < 0 || m2 > 1+1e-12 || m3 < 0 || m3 > 1+1e-12 {
			return false
		}
		// M3 ≤ M2 always (Jaccard ≤ mean of conditionals).
		return m3 <= m2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSimilarityOverEstimator(t *testing.T) {
	docs := []string{"a(b(e))", "a(b(f))", "a(b,c(f,o))", "a(d,c(f,o))", "a(d(e))", "a(d(q))"}
	s := synopsis.New(synopsis.Options{Kind: matchset.KindSets, SetCapacity: 1 << 20, Seed: 1})
	for _, d := range docs {
		tr, err := xmltree.ParseCompact(d)
		if err != nil {
			t.Fatal(err)
		}
		s.Insert(tr)
	}
	est := selectivity.New(s)
	p := pattern.MustParse("//f") // docs 1,2,3 => P = 1/2
	q := pattern.MustParse("//o") // docs 2,3   => P = 1/3
	// P(p∧q) = 1/3 (docs 2,3).
	if got := Similarity(est, M1, p, q); math.Abs(got-1) > 1e-12 {
		t.Errorf("M1(p|q) = %v, want 1 (every o-doc is an f-doc)", got)
	}
	if got := Similarity(est, M1, q, p); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("M1(q|p) = %v, want 2/3", got)
	}
	if got := Similarity(est, M2, p, q); math.Abs(got-(1+2.0/3)/2) > 1e-12 {
		t.Errorf("M2 = %v, want 5/6", got)
	}
	// M3 = (1/3)/(1/2 + 1/3 - 1/3) = 2/3.
	if got := Similarity(est, M3, p, q); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("M3 = %v, want 2/3", got)
	}
}

func TestUnknownMetricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Metric(0).Eval(Probs{})
}

func TestMetricString(t *testing.T) {
	if M1.String() != "M1" || M2.String() != "M2" || M3.String() != "M3" {
		t.Error("metric names wrong")
	}
	if Metric(9).String() != "Metric(9)" {
		t.Error("unknown metric name wrong")
	}
}
