package overlay

import (
	"treesim/internal/cluster"
	"treesim/internal/overlay/wire"
	"treesim/internal/pattern"
	"treesim/internal/selectivity"
)

// buildAdvertLocked aggregates the engine's current communities into
// the node's local advert under the given version. Per community the
// advertised patterns are a covering subset of the members
// (cluster.Cover under pattern containment — any document matching a
// member matches some advertised pattern, so coarse matching at peers
// is recall-preserving), optionally coarsened by subtree truncation.
// The digest is the estimator's selectivity of the representative.
// Caller holds the node lock; the engine takes its own read locks.
func (n *Node) buildAdvertLocked(version uint64) wire.Advert {
	views := n.eng.CommunityViews()
	est := n.eng.Estimator()
	adv := wire.Advert{Origin: n.cfg.ID, Version: version}
	for _, v := range views {
		idx := make([]int, len(v.Members))
		for i := range idx {
			idx[i] = i
		}
		kept := cluster.Cover(idx, func(a, b int) bool {
			return pattern.Contains(v.Members[a], v.Members[b])
		})
		seen := make(map[string]bool, len(kept))
		pats := make([]string, 0, len(kept))
		for _, k := range kept {
			p := v.Members[k]
			if n.cfg.MaxPatternNodes > 0 {
				p = truncatePattern(p, n.cfg.MaxPatternNodes)
			}
			// Canonicalize sorts child lists in place and p may be the
			// live registry's pattern (truncation returns it unchanged
			// when within budget), which concurrent publishes are
			// matching against — canonicalize a clone.
			s := p.Clone().Canonicalize().String()
			if !seen[s] { // truncation can collapse distinct covers
				seen[s] = true
				pats = append(pats, s)
			}
		}
		adv.Communities = append(adv.Communities, wire.Community{
			Patterns:    pats,
			Members:     len(v.Members),
			Selectivity: selectivity.Clamp01(est.Selectivity(v.Rep)),
		})
	}
	return adv
}

// truncatePattern generalizes p to at most maxNodes non-root nodes by
// dropping whole subtrees, depth-first. Removing a subtree removes a
// constraint, so the result always contains p — documents matching p
// still match it — which is exactly the trade an advertisement wants:
// smaller aggregates at the cost of forwarding precision, never recall.
// Descendant-operator nodes are kept only together with their single
// child (a dangling "//" is not a valid pattern).
func truncatePattern(p *pattern.Pattern, maxNodes int) *pattern.Pattern {
	if p == nil || p.Root == nil || p.Size() <= maxNodes {
		return p
	}
	budget := maxNodes
	root := &pattern.Node{Label: pattern.Root}
	for _, c := range p.Root.Children {
		if k := truncateNode(c, &budget); k != nil {
			root.Children = append(root.Children, k)
		}
	}
	return &pattern.Pattern{Root: root}
}

func truncateNode(c *pattern.Node, budget *int) *pattern.Node {
	if c.Label == pattern.Descendant {
		// "//" has exactly one child (pattern.Validate); keeping it
		// costs at least the operator node plus one child node.
		if *budget < 2 {
			return nil
		}
		*budget--
		child := truncateNode(c.Children[0], budget)
		if child == nil {
			*budget++
			return nil
		}
		return &pattern.Node{Label: pattern.Descendant, Children: []*pattern.Node{child}}
	}
	if *budget < 1 {
		return nil
	}
	*budget--
	out := &pattern.Node{Label: c.Label}
	for _, cc := range c.Children {
		if k := truncateNode(cc, budget); k != nil {
			out.Children = append(out.Children, k)
		}
	}
	return out
}
