package overlay

import (
	"math/rand"
	"testing"

	"treesim/internal/broker"
	"treesim/internal/dtd"
	"treesim/internal/pattern"
	"treesim/internal/querygen"
	"treesim/internal/xmlgen"
	"treesim/internal/xmltree"
)

// TestAdvertUsesCoveringSubset: a community holding both /a and /a/b
// advertises only /a — the containment cover — and the advert still
// attracts documents matching either member.
func TestAdvertUsesCoveringSubset(t *testing.T) {
	// Negative threshold: any similarity (the empty synopsis yields 0)
	// merges, so both subscriptions land in one community.
	eng := broker.New(broker.Config{Threshold: -1, Rebuild: broker.Never{}})
	defer eng.Close()
	n := New(eng, Config{ID: "x", AdvertPolicy: broker.Staleness{MaxStale: 1}})
	defer n.Close()

	if _, err := eng.Subscribe("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Subscribe("/a/b"); err != nil {
		t.Fatal(err)
	}
	info := n.Info()
	total := 0
	for _, c := range info.LocalAdvert.Communities {
		total += len(c.Patterns)
		for _, s := range c.Patterns {
			if s != "/a" {
				t.Fatalf("advert pattern %q, want the cover /a", s)
			}
		}
	}
	if total != 1 {
		t.Fatalf("advert carries %d patterns, want 1 (the cover)", total)
	}
}

// TestAdvertMemberCountsSurviveCovering: covering shrinks patterns, not
// the member census the digest reports.
func TestAdvertMemberCountsSurviveCovering(t *testing.T) {
	eng := broker.New(broker.Config{Threshold: -1, Rebuild: broker.Never{}})
	defer eng.Close()
	n := New(eng, Config{ID: "x", AdvertPolicy: broker.Staleness{MaxStale: 1}})
	defer n.Close()
	for _, expr := range []string{"/a", "/a/b", "/a/b/c"} {
		if _, err := eng.Subscribe(expr); err != nil {
			t.Fatal(err)
		}
	}
	members := 0
	for _, c := range n.Info().LocalAdvert.Communities {
		members += c.Members
	}
	if members != 3 {
		t.Fatalf("advert reports %d members, want 3", members)
	}
}

// TestTruncatePreservesContainment: for random DTD-derived patterns and
// documents, a document matching the original pattern always matches
// the truncated one (generalization never loses recall), and the
// truncated pattern respects the node budget and stays valid.
func TestTruncatePreservesContainment(t *testing.T) {
	d := dtd.Media()
	qg := querygen.New(d, querygen.Defaults(11))
	dg := xmlgen.New(d, xmlgen.Options{Seed: 12})
	docs := dg.GenerateN(60)
	rng := rand.New(rand.NewSource(13))
	checked := 0
	for i := 0; i < 300; i++ {
		p := qg.Generate()
		budget := 1 + rng.Intn(6)
		tr := truncatePattern(p, budget)
		if err := tr.Validate(); err != nil {
			t.Fatalf("truncate(%s, %d) invalid: %v", p, budget, err)
		}
		if tr.Size() > budget {
			t.Fatalf("truncate(%s, %d) has %d nodes", p, budget, tr.Size())
		}
		for _, dc := range docs {
			if pattern.Matches(dc, p) {
				checked++
				if !pattern.Matches(dc, tr) {
					t.Fatalf("doc matches %s but not its truncation %s (budget %d)", p, tr, budget)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("workload produced no matching (doc, pattern) pairs; test is vacuous")
	}
}

// TestTruncateKeepsDescendantsPaired: "//" never survives without its
// child.
func TestTruncateKeepsDescendantsPaired(t *testing.T) {
	p := pattern.MustParse("/a//b[c]//d")
	for budget := 1; budget <= p.Size(); budget++ {
		tr := truncatePattern(p, budget)
		if err := tr.Validate(); err != nil {
			t.Fatalf("budget %d: %v (pattern %s)", budget, err, tr)
		}
	}
}

// TestSelectivityDigestTracksStream: after observing a stream, the
// advertised digest reflects the representative's selectivity estimate.
func TestSelectivityDigestTracksStream(t *testing.T) {
	eng := broker.New(broker.Config{Threshold: 2, Rebuild: broker.Never{}})
	defer eng.Close()
	n := New(eng, Config{ID: "x", AdvertPolicy: broker.Staleness{MaxStale: 1}})
	defer n.Close()
	for i := 0; i < 20; i++ {
		s := "<a><b/></a>"
		if i%2 == 0 {
			s = "<z/>"
		}
		tr, err := xmltree.ParseString(s, xmltree.ParseOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := n.Publish(tr); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()
	if _, err := eng.Subscribe("/a/b"); err != nil {
		t.Fatal(err)
	}
	comms := n.Info().LocalAdvert.Communities
	if len(comms) != 1 {
		t.Fatalf("%d communities, want 1", len(comms))
	}
	if sel := comms[0].Selectivity; sel < 0.2 || sel > 0.8 {
		t.Fatalf("digest selectivity %v for a pattern matching half the stream", sel)
	}
}
