package overlay

import (
	"fmt"
	"testing"

	"treesim/internal/broker"
	"treesim/internal/dtd"
	"treesim/internal/overlay/wire"
	"treesim/internal/querygen"
	"treesim/internal/xmlgen"
)

// BenchmarkOverlayForwardPlan measures the per-publication forwarding
// decision: snapshot the per-link plan and run the coarse aggregate
// match (one forest match per candidate link) for a document, over a
// hub node peered with 8 links carrying 4 origins each, 64 aggregate
// patterns per origin.
func BenchmarkOverlayForwardPlan(b *testing.B) {
	const (
		links             = 8
		originsPerLink    = 4
		patternsPerOrigin = 64
	)
	d := dtd.NITFLike()
	docs := xmlgen.New(d, xmlgen.Calibrate(d, 100, 41)).GenerateN(64)
	pats := querygen.New(d, querygen.Defaults(43)).
		GenerateDistinct(links * originsPerLink * patternsPerOrigin)

	eng := broker.New(broker.Config{})
	defer eng.Close()
	hub := New(eng, Config{ID: "hub"})
	defer hub.Close()

	pi := 0
	for l := 0; l < links; l++ {
		peer := fmt.Sprintf("peer-%d", l)
		if err := hub.addPeerLink(peer, nopTransport{}); err != nil {
			b.Fatal(err)
		}
		var adverts []wire.Advert
		for o := 0; o < originsPerLink; o++ {
			exprs := make([]string, patternsPerOrigin)
			for i := range exprs {
				exprs[i] = pats[pi].String()
				pi++
			}
			adverts = append(adverts, wire.Advert{
				Origin:  fmt.Sprintf("origin-%d-%d", l, o),
				Version: 1,
				Communities: []wire.Community{
					{Patterns: exprs, Members: patternsPerOrigin, Selectivity: 0.5},
				},
			})
		}
		if err := hub.HandleAdvert(wire.AdvertBatch{From: peer, Adverts: adverts}); err != nil {
			b.Fatal(err)
		}
	}

	var forwards int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.mu.Lock()
		plan := hub.forwardPlanLocked("origin-0-0", "peer-0")
		hub.mu.Unlock()
		forwards += len(matchTargets(docs[i%len(docs)], plan))
	}
	b.StopTimer()
	b.ReportMetric(float64(forwards)/float64(b.N), "links/op")
}

// nopTransport swallows sends: the benchmark isolates the planning and
// matching cost from I/O.
type nopTransport struct{}

func (nopTransport) SendAdvert(wire.AdvertBatch) error  { return nil }
func (nopTransport) SendPublish(wire.Publication) error { return nil }
