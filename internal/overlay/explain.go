package overlay

import (
	"sort"
	"time"

	"treesim/internal/broker"
	"treesim/internal/xmltree"
)

// This file is the overlay's explainability and introspection surface:
// a side-effect-free dry run of the forwarding decision (ExplainForward)
// and read-only snapshots of the routing table and link health. Like
// broker.Engine.Explain, nothing here touches a publish path: no
// sequence numbers are assigned, no seen-set entries added, no bytes
// sent, no counters moved.

// OriginMatch records that an origin's advertised aggregate matched the
// explained document on some link — the reason a forward would happen.
type OriginMatch struct {
	Origin string `json:"origin"`
	// Version is the advert version whose aggregates matched, as
	// registered in the link's forest.
	Version uint64 `json:"version"`
	// Patterns is how many of the origin's advertised covering patterns
	// matched (≥1; more means the document is squarely inside the
	// aggregate, not grazing one cover).
	Patterns int `json:"patterns"`
}

// Forward-verdict reasons. Exactly one applies per link.
const (
	// ReasonMatch: some reachable origin's aggregate matched — forward.
	ReasonMatch = "match"
	// ReasonFlood: flood mode forwards on every eligible link.
	ReasonFlood = "flood"
	// ReasonNoMatch: aggregates were consulted and none matched.
	ReasonNoMatch = "no-match"
	// ReasonNoAggregates: no origin (besides the publication's own) is
	// routed via this link, so there is nothing to match against.
	ReasonNoAggregates = "no-aggregates"
	// ReasonDown: the link is in the damping set; forwarding skips it
	// until a maintenance probe recovers it.
	ReasonDown = "down"
	// ReasonArrival: the publication arrived on this link; forwarding
	// never echoes it back.
	ReasonArrival = "arrival"
)

// ForwardVerdict is one link's share of a forwarding decision.
type ForwardVerdict struct {
	// Peer is the link's peer node id.
	Peer string `json:"peer"`
	// Forward reports whether the document would be sent on this link;
	// Reason says why (ReasonMatch/ReasonFlood when forwarding, else
	// the skip cause).
	Forward bool   `json:"forward"`
	Reason  string `json:"reason"`
	// Matched lists the origins whose adverts matched (reason "match"),
	// sorted by origin.
	Matched []OriginMatch `json:"matched,omitempty"`
}

// ForwardExplanation is the full decision record for one document at
// one node: the local broker verdicts plus the per-link forward plan.
type ForwardExplanation struct {
	// Node is the explaining node's overlay id; Origin the publication
	// origin the plan assumed (this node for a local publish) and From
	// the assumed arrival link ("" for a local publish).
	Node   string `json:"node"`
	Origin string `json:"origin"`
	From   string `json:"from,omitempty"`
	// Local is the engine's delivery explanation (nil only if the
	// engine is closed mid-call).
	Local *broker.Explanation `json:"local"`
	// Links holds one verdict per attached link, sorted by peer id.
	Links []ForwardVerdict `json:"links"`
	// ForwardTo is the peer list the document would be sent to — the
	// plan's bottom line, comparable to a trace span's ForwardedTo.
	ForwardTo []string `json:"forward_to"`
}

// ExplainForward dry-runs the forwarding decision for a document:
// which links would receive a forward and why the others would not,
// plus the local engine's delivery explanation. origin and from
// parameterize the scenario — empty origin means "published locally at
// this node" (from must then be empty too); a non-empty origin with a
// from link explains a forwarded publication's next hop as
// HandlePublish would plan it (TTL and duplicate suppression excluded:
// they depend on per-publication state, not routing state).
func (n *Node) ExplainForward(t *xmltree.Tree, origin, from string) (*ForwardExplanation, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if origin == "" {
		origin = n.cfg.ID
	}
	ex := &ForwardExplanation{Node: n.cfg.ID, Origin: origin, From: from}
	// Snapshot every link's state under the node lock; matching happens
	// after release (linkForest synchronizes internally), mirroring the
	// real plan/match split in forwardPlanLocked + matchTargets.
	type probe struct {
		peer string
		lf   *linkForest
	}
	var probes []probe
	for id, l := range n.links {
		switch {
		case id == from:
			ex.Links = append(ex.Links, ForwardVerdict{Peer: id, Reason: ReasonArrival})
		case l.down:
			ex.Links = append(ex.Links, ForwardVerdict{Peer: id, Reason: ReasonDown})
		case n.cfg.Flood:
			ex.Links = append(ex.Links, ForwardVerdict{Peer: id, Forward: true, Reason: ReasonFlood})
		default:
			lf := n.forests[id]
			if lf == nil || !lf.hasOther(origin) {
				ex.Links = append(ex.Links, ForwardVerdict{Peer: id, Reason: ReasonNoAggregates})
				continue
			}
			probes = append(probes, probe{peer: id, lf: lf})
		}
	}
	n.mu.Unlock()

	for _, p := range probes {
		v := ForwardVerdict{Peer: p.peer, Reason: ReasonNoMatch}
		if ms := p.lf.explainMatch(t, origin); len(ms) > 0 {
			v.Forward = true
			v.Reason = ReasonMatch
			v.Matched = ms
		}
		ex.Links = append(ex.Links, v)
	}
	sort.Slice(ex.Links, func(i, j int) bool { return ex.Links[i].Peer < ex.Links[j].Peer })
	for _, v := range ex.Links {
		if v.Forward {
			ex.ForwardTo = append(ex.ForwardTo, v.Peer)
		}
	}

	local, err := n.eng.Explain(t)
	if err != nil {
		return nil, err
	}
	ex.Local = local
	return ex, nil
}

// explainMatch is matchAnyExcept's explanatory sibling: instead of a
// boolean it returns every origin (with advert version and matched-
// pattern count) whose aggregates the document matched on this link,
// sorted by origin.
func (lf *linkForest) explainMatch(t *xmltree.Tree, exclude string) []OriginMatch {
	lf.mu.RLock()
	defer lf.mu.RUnlock()
	ms := lf.forest.Match(t)
	defer ms.Release()
	var out []OriginMatch
	for o, oh := range lf.byOrigin {
		if o == exclude {
			continue
		}
		hits := 0
		for _, h := range oh.hs {
			if ms.Has(h) {
				hits++
			}
		}
		if hits > 0 {
			out = append(out, OriginMatch{Origin: o, Version: oh.version, Patterns: hits})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// RouteInfo is one routing-table row of IntrospectRoutes.
type RouteInfo struct {
	Origin  string `json:"origin"`
	Version uint64 `json:"version"`
	Hops    int    `json:"hops"`
	// Via is the next-hop link toward the origin (the accepted advert's
	// arrival link).
	Via string `json:"via"`
	// AgeMS is how long ago the origin was last heard from; the
	// soft-state sweeper expires entries older than the advert TTL.
	AgeMS int64 `json:"age_ms"`
	// Tombstone marks an entry the sweeper has expired (routes evicted,
	// version retained so stale adverts cannot resurrect them) or an
	// origin that advertised an empty aggregate.
	Tombstone bool `json:"tombstone,omitempty"`
	// Patterns and Members size the origin's advertised aggregates.
	Patterns int `json:"patterns"`
	Members  int `json:"members"`
}

// IntrospectRoutes snapshots the routing table, sorted by origin. The
// node lock is held only while copying.
func (n *Node) IntrospectRoutes() []RouteInfo {
	now := time.Now()
	n.mu.Lock()
	out := make([]RouteInfo, 0, len(n.table))
	for origin, e := range n.table {
		ri := RouteInfo{
			Origin:    origin,
			Version:   e.version,
			Hops:      e.hops,
			Via:       e.via,
			AgeMS:     now.Sub(e.lastSeen).Milliseconds(),
			Tombstone: e.expired || len(e.advertised) == 0,
		}
		for _, c := range e.advertised {
			ri.Patterns += len(c.Patterns)
			ri.Members += c.Members
		}
		out = append(out, ri)
	}
	n.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// LinkInfo is one link row of IntrospectLinks.
type LinkInfo struct {
	Peer string `json:"peer"`
	// Up mirrors the damping state: false means forwarding and gossip
	// skip the link and backoff-paced probes own it.
	Up bool `json:"up"`
	// Sends and Errors are the link's lifetime transport outcomes.
	Sends  uint64 `json:"sends"`
	Errors uint64 `json:"errors"`
	// Fails is the consecutive-failure streak; BackoffMS the current
	// probe backoff and NextProbeMS how far away the next probe is
	// (0 when the link is healthy).
	Fails       int   `json:"fails,omitempty"`
	BackoffMS   int64 `json:"backoff_ms,omitempty"`
	NextProbeMS int64 `json:"next_probe_ms,omitempty"`
	// LastError is the most recent send failure, cleared on recovery.
	LastError string `json:"last_error,omitempty"`
}

// IntrospectLinks snapshots per-link health, sorted by peer id.
func (n *Node) IntrospectLinks() []LinkInfo {
	now := time.Now()
	n.mu.Lock()
	out := make([]LinkInfo, 0, len(n.links))
	for id, l := range n.links {
		li := LinkInfo{
			Peer:      id,
			Up:        !l.down,
			Sends:     l.sends.Load(),
			Errors:    l.errs.Load(),
			Fails:     l.fails,
			LastError: l.lastErr,
		}
		if l.down {
			li.BackoffMS = l.backoff.Milliseconds()
			if d := l.nextRetry.Sub(now); d > 0 {
				li.NextProbeMS = d.Milliseconds()
			}
		}
		out = append(out, li)
	}
	n.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}
