package overlay

import (
	"reflect"
	"testing"
)

// TestExplainForwardMatchesTracedPublish is the overlay half of the
// explain acceptance check: on an a—b—c line, the forward plan
// ExplainForward predicts for a document must equal — link for link —
// what a traced publish of the same document actually does, and the
// local half must equal the engine's real delivery count.
func TestExplainForwardMatchesTracedPublish(t *testing.T) {
	a := newNode(t, "a", Config{})
	b := newNode(t, "b", Config{})
	c := newNode(t, "c", Config{})
	connect(t, a, b)
	connect(t, b, c)

	mustSubscribe(t, a, "/z")
	mustSubscribe(t, b, "//y")
	mustSubscribe(t, c, "/x/y")

	for _, xml := range []string{"<x><y/></x>", "<z/>", "<q/>", "<x><y><w/></y></x>"} {
		d := doc(t, xml)
		ex, err := a.ExplainForward(d, "", "")
		if err != nil {
			t.Fatal(err)
		}
		if ex.Node != "a" || ex.Origin != "a" || ex.From != "" {
			t.Fatalf("doc %s: explanation identity wrong: %+v", xml, ex)
		}
		res, sent, id, err := a.PublishTraced(d)
		if err != nil {
			t.Fatal(err)
		}
		if len(ex.ForwardTo) != sent {
			t.Fatalf("doc %s: plan forwards to %v, publish sent on %d links", xml, ex.ForwardTo, sent)
		}
		spans := a.TraceSpans(id)
		if len(spans) != 1 {
			t.Fatalf("doc %s: %d origin spans, want 1", xml, len(spans))
		}
		actual := append([]string(nil), spans[0].ForwardedTo...)
		if len(actual) == 0 {
			actual = nil
		}
		var predicted []string
		predicted = append(predicted, ex.ForwardTo...)
		if !reflect.DeepEqual(predicted, actual) {
			t.Fatalf("doc %s: predicted forwards %v, traced publish forwarded to %v", xml, predicted, actual)
		}
		if got := len(ex.Local.Deliveries); got != res.Deliveries {
			t.Fatalf("doc %s: plan predicts %d local deliveries, publish made %d", xml, got, res.Deliveries)
		}
		// Every verdict must carry a coherent reason.
		for _, v := range ex.Links {
			switch v.Reason {
			case ReasonMatch:
				if !v.Forward || len(v.Matched) == 0 {
					t.Fatalf("doc %s: match verdict without forwards/origins: %+v", xml, v)
				}
			case ReasonNoMatch, ReasonNoAggregates, ReasonDown, ReasonArrival:
				if v.Forward || len(v.Matched) != 0 {
					t.Fatalf("doc %s: skip verdict %q carries forward state: %+v", xml, v.Reason, v)
				}
			default:
				t.Fatalf("doc %s: unknown reason %q", xml, v.Reason)
			}
		}
	}
}

// TestExplainForwardArrivalScenario re-runs the plan as a mid-path hop
// would: a publication from origin a arriving at b on link a must never
// echo back (reason "arrival") and must forward toward c only when c's
// advertised aggregate matches — with the advert version the link
// forest actually holds.
func TestExplainForwardArrivalScenario(t *testing.T) {
	a := newNode(t, "a", Config{})
	b := newNode(t, "b", Config{})
	c := newNode(t, "c", Config{})
	connect(t, a, b)
	connect(t, b, c)
	mustSubscribe(t, c, "/x/y")

	ex, err := b.ExplainForward(doc(t, "<x><y/></x>"), "a", "a")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Origin != "a" || ex.From != "a" {
		t.Fatalf("scenario not honored: %+v", ex)
	}
	verdicts := map[string]ForwardVerdict{}
	for _, v := range ex.Links {
		verdicts[v.Peer] = v
	}
	if v := verdicts["a"]; v.Forward || v.Reason != ReasonArrival {
		t.Fatalf("arrival link verdict = %+v, want skip with reason arrival", v)
	}
	v, ok := verdicts["c"]
	if !ok || !v.Forward || v.Reason != ReasonMatch {
		t.Fatalf("verdict toward c = %+v, want forward on match", v)
	}
	if len(v.Matched) != 1 || v.Matched[0].Origin != "c" {
		t.Fatalf("matched origins toward c = %+v, want origin c", v.Matched)
	}
	// The version the explanation names must be the version b's routing
	// table holds for c.
	var want uint64
	for _, r := range b.IntrospectRoutes() {
		if r.Origin == "c" {
			want = r.Version
		}
	}
	if want == 0 || v.Matched[0].Version != want {
		t.Fatalf("advert version %d in verdict, routing table holds %d", v.Matched[0].Version, want)
	}
	// A no-match document still refuses the arrival link.
	ex2, err := b.ExplainForward(doc(t, "<q/>"), "a", "a")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ex2.Links {
		if v.Forward {
			t.Fatalf("no-match doc still forwards: %+v", v)
		}
	}
}

// TestIntrospectRoutesAndLinks pins the snapshot accessors on a live
// line topology: hops count up with distance, via names the next-hop
// link, and link health reads up with real send counters.
func TestIntrospectRoutesAndLinks(t *testing.T) {
	a := newNode(t, "a", Config{})
	b := newNode(t, "b", Config{})
	c := newNode(t, "c", Config{})
	connect(t, a, b)
	connect(t, b, c)
	mustSubscribe(t, a, "/p")
	mustSubscribe(t, c, "/x/y")

	routeTo := func(n *Node, origin string) (RouteInfo, bool) {
		for _, r := range n.IntrospectRoutes() {
			if r.Origin == origin {
				return r, true
			}
		}
		return RouteInfo{}, false
	}
	rc, ok := routeTo(a, "c")
	if !ok {
		t.Fatalf("a has no route to origin c: %+v", a.IntrospectRoutes())
	}
	// Hops counts intermediate relays: a direct neighbor's advert
	// arrives with 0, and each re-gossip adds one — so c, two links
	// away, shows 1 relay (b).
	if rc.Via != "b" || rc.Hops != 1 || rc.Version == 0 || rc.Tombstone {
		t.Fatalf("a's route to c = %+v, want via b, 1 relay, live", rc)
	}
	if rc.AgeMS < 0 || rc.Patterns == 0 || rc.Members == 0 {
		t.Fatalf("a's route to c carries implausible freshness/size: %+v", rc)
	}
	rb, ok := routeTo(c, "a")
	if !ok || rb.Via != "b" {
		t.Fatalf("c's route to a = %+v (ok=%v), want via b", rb, ok)
	}

	links := b.IntrospectLinks()
	if len(links) != 2 {
		t.Fatalf("b introspects %d links, want 2: %+v", len(links), links)
	}
	for _, l := range links {
		if !l.Up || l.Sends == 0 || l.Errors != 0 || l.LastError != "" {
			t.Fatalf("link %s not a healthy active link: %+v", l.Peer, l)
		}
		if l.Peer != "a" && l.Peer != "c" {
			t.Fatalf("unexpected peer %q", l.Peer)
		}
	}
	if links[0].Peer >= links[1].Peer {
		t.Fatalf("links not sorted by peer: %+v", links)
	}
}
