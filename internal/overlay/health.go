package overlay

import (
	"errors"
	"fmt"
	mathrand "math/rand"
	"sort"
	"time"

	"treesim/internal/broker"
)

// This file is the overlay's liveness machinery — the soft-state and
// self-healing layer that turns "links simply go quiet" into bounded
// failure detection and automatic repair:
//
//   - Soft-state adverts. Every node re-advertises its aggregate (under
//     a fresh version) every Config.AdvertRefresh; a routing-table
//     entry whose origin has not been heard from within
//     Config.AdvertTTL is expired and its aggregates evicted from the
//     link forests, so a dead origin stops attracting forwards after at
//     most one TTL.
//   - Link health. Every send outcome feeds per-link state: a failure
//     marks the link down (the damping set — forwarding plans and
//     gossip skip it), and the maintenance loop probes it on a capped
//     exponential backoff with jitter. The probe IS a full-state advert
//     sync (the AddPeer exchange re-run), so a recovered link comes
//     back with routing state already repaired — partition heal and
//     resync are the same act.
//   - Backpressure discrimination. A peer answering "busy" (HTTP 503 +
//     Retry-After, or broker.ErrBusy in-process) is alive; busy answers
//     never touch link health and are retried once after the hinted
//     delay, then shed.

// BusyError reports that a peer accepted the connection but shed the
// message under ingest backpressure; retry after the hinted delay. The
// HTTP transport produces it from 503 + Retry-After responses.
type BusyError struct {
	After time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("overlay: peer busy (retry after %v)", e.After)
}

// maxBusyWait caps how long a forwarding goroutine sleeps on a busy
// peer before the single retry — bounded politeness, not a queue.
const maxBusyWait = 500 * time.Millisecond

// busyAfter classifies an error as peer backpressure and returns the
// capped retry delay. A nil or non-busy error returns false.
func busyAfter(err error) (time.Duration, bool) {
	if err == nil {
		return 0, false
	}
	var be *BusyError
	if errors.As(err, &be) {
		after := be.After
		if after <= 0 || after > maxBusyWait {
			after = maxBusyWait
		}
		return after, true
	}
	if errors.Is(err, broker.ErrBusy) {
		return maxBusyWait, true
	}
	return 0, false
}

// recordSend folds one send outcome into the link's health state.
// Failures mark the link down and schedule the next probe under capped
// exponential backoff with ±25% jitter (de-synchronizing probe storms
// after a shared outage). A success on a down link means a maintenance
// probe — which carries the full-state resync batch — got through:
// the link rejoins the healthy set.
func (n *Node) recordSend(peerID string, err error) {
	// wentDown/recovered capture the transition under the lock; the
	// event records are emitted after release so a slow log sink never
	// stalls the node lock.
	var wentDown, recovered bool
	var backoff time.Duration
	n.mu.Lock()
	l, ok := n.links[peerID]
	if !ok {
		n.mu.Unlock()
		return // link replaced or removed mid-send
	}
	if err == nil {
		l.sends.Inc()
		if l.down {
			l.down = false
			l.up.Set(1)
			n.counters.linkRecovered.Add(1)
			n.counters.resyncs.Add(1)
			recovered = true
		}
		l.fails = 0
		l.backoff = 0
		l.lastErr = ""
	} else {
		l.errs.Inc()
		l.fails++
		l.lastErr = err.Error()
		if !l.down {
			l.down = true
			l.up.Set(0)
			n.counters.linkDowns.Add(1)
			wentDown = true
		}
		if l.backoff == 0 {
			l.backoff = n.cfg.RetryBase
		} else {
			l.backoff *= 2
		}
		if l.backoff > n.cfg.RetryMax {
			l.backoff = n.cfg.RetryMax
		}
		backoff = l.backoff
		// ±25% jitter; mathrand's global source is fine for scheduling.
		jitter := time.Duration(mathrand.Int63n(int64(l.backoff)/2+1)) - l.backoff/4
		l.nextRetry = time.Now().Add(l.backoff + jitter)
	}
	n.mu.Unlock()
	if wentDown {
		n.cfg.Logger.Warn("link down", "peer", peerID, "err", err.Error(), "backoff", backoff.String())
	}
	if recovered {
		n.cfg.Logger.Warn("link recovered", "peer", peerID)
	}
}

// runMaintenance is the background loop driving refresh, expiry, and
// down-link probes. It stops when the node closes.
func (n *Node) runMaintenance() {
	defer n.maintWG.Done()
	ticker := time.NewTicker(n.cfg.Maintenance)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		n.expireAdverts(now)
		n.probeDownLinks(now)
		n.refreshAdvert(now)
	}
}

// expireAdverts evicts routing-table entries whose origin has been
// silent past the advert TTL, in two phases. Phase one tombstones the
// entry at its OWN version: the patterns leave the table and the
// arrival link's forest, but both layers keep the version, so they
// agree that exactly version+1 (an origin that was merely paused and
// resumes with its next advert) revives the origin — tombstoning at
// version+1 here while deleting the table entry would let the table
// accept that advert while the forest rejected it as not-newer, a
// forwarding hole. Phase two, a full TTL later (by which time any
// in-flight advert at or below the tombstone's version has drained),
// deletes the tombstone from both layers so dead origins do not leak
// table entries forever.
func (n *Node) expireAdverts(now time.Time) {
	ttl := n.cfg.AdvertTTL
	if ttl <= 0 {
		return
	}
	n.mu.Lock()
	var tombstones, drops []forestUpdate
	for origin, e := range n.table {
		if now.Sub(e.lastSeen) <= ttl {
			continue
		}
		if e.expired {
			// Phase two: the tombstone has sat silent for another TTL.
			delete(n.table, origin)
			if lf := n.forests[e.via]; lf != nil {
				drops = append(drops, forestUpdate{lf: lf, origin: origin, version: e.version})
			}
			continue
		}
		// Phase one: tombstone in place.
		e.expired = true
		e.pats = nil
		e.advertised = nil
		e.lastSeen = now
		if lf := n.forests[e.via]; lf != nil {
			tombstones = append(tombstones, forestUpdate{lf: lf, origin: origin, version: e.version})
		}
		n.counters.advertsExpired.Add(1)
	}
	n.mu.Unlock()
	for _, u := range tombstones {
		u.lf.expire(u.origin, u.version)
		n.cfg.Logger.Warn("advert expired", "origin", u.origin, "version", u.version)
	}
	for _, u := range drops {
		u.lf.forget(u.origin, u.version)
	}
}

// probeDownLinks retries every marked-down link whose backoff has
// elapsed. The probe is syncPeer's full-state advert batch — on
// success the link's health resets (recordSend sees the send succeed)
// and the peer's routing state toward this node is repaired in the same
// exchange; the peer's own symmetric probe repairs the reverse
// direction.
func (n *Node) probeDownLinks(now time.Time) {
	n.mu.Lock()
	var due []string
	for id, l := range n.links {
		if l.down && !now.Before(l.nextRetry) {
			due = append(due, id)
		}
	}
	n.mu.Unlock()
	sort.Strings(due)
	for _, id := range due {
		n.syncPeer(id) // send outcome feeds recordSend via sendAdverts
	}
}

// refreshAdvert re-advertises the local aggregate (under a fresh
// version) when the keepalive period has elapsed without any
// churn-driven advertisement — the origin-side half of soft state.
func (n *Node) refreshAdvert(now time.Time) {
	if n.cfg.AdvertTTL <= 0 {
		return
	}
	n.mu.Lock()
	due := now.Sub(n.lastAdvert) >= n.cfg.AdvertRefresh
	n.mu.Unlock()
	if due {
		n.Advertise()
	}
}
