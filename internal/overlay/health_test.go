package overlay

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"treesim/internal/broker"
	"treesim/internal/overlay/wire"
)

// switchable is a fault-injection transport: flip down to sever the
// link (sends fail), flip it back to heal.
type switchable struct {
	inner Transport
	down  atomic.Bool
}

var errSevered = errors.New("link severed")

func (s *switchable) SendAdvert(b wire.AdvertBatch) error {
	if s.down.Load() {
		return errSevered
	}
	return s.inner.SendAdvert(b)
}

func (s *switchable) SendPublish(p wire.Publication) error {
	if s.down.Load() {
		return errSevered
	}
	return s.inner.SendPublish(p)
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// fastHealth is a liveness config tuned for test speed.
func fastHealth() Config {
	return Config{
		AdvertTTL:   150 * time.Millisecond,
		Maintenance: 10 * time.Millisecond,
		RetryBase:   20 * time.Millisecond,
		RetryMax:    100 * time.Millisecond,
	}
}

// TestAdvertExpiryClosesRoutes: when an origin goes silent (node
// closed, so no refresh adverts), its routes at the surviving peer must
// expire within the advert TTL and stop attracting forwards.
func TestAdvertExpiryClosesRoutes(t *testing.T) {
	a := newNode(t, "a", fastHealth())
	b := newNode(t, "b", fastHealth())
	connect(t, a, b)
	mustSubscribe(t, b, "/x/y")

	if _, sent, err := a.Publish(doc(t, "<x><y/></x>")); err != nil || sent != 1 {
		t.Fatalf("pre-failure publish: sent=%d err=%v, want 1", sent, err)
	}

	b.Close() // silent death: no unadvertise, just absence
	waitUntil(t, 3*time.Second, func() bool {
		return len(a.Info().Origins) == 0
	}, "a never expired b's advert")
	if got := a.Info().AdvertsExpired; got < 1 {
		t.Fatalf("AdvertsExpired = %d, want >= 1", got)
	}
	// The forwarding hole is closed: nothing matches, nothing is sent.
	if _, sent, err := a.Publish(doc(t, "<x><y/></x>")); err != nil || sent != 0 {
		t.Fatalf("post-expiry publish: sent=%d err=%v, want 0", sent, err)
	}
}

// silentTransport swallows adverts and counts publishes — a stand-in
// peer that never answers back, letting tests drive the receiving
// node's table directly through HandleAdvert.
type silentTransport struct{ pubs atomic.Uint64 }

func (c *silentTransport) SendAdvert(wire.AdvertBatch) error  { return nil }
func (c *silentTransport) SendPublish(wire.Publication) error { c.pubs.Add(1); return nil }

// TestExpiredOriginRevivesAtNextVersion: an origin that was merely
// paused (no crash, so no version jump) resumes with exactly
// version+1 after its routes expired. The expiry tombstone must sit at
// the entry's own version in BOTH the routing table and the link
// forest: a forest tombstone at version+1 would let the table accept
// the resume advert while the forest rejects it as not-newer — a table
// entry with no matchable patterns, i.e. a silent forwarding hole.
func TestExpiredOriginRevivesAtNextVersion(t *testing.T) {
	cfg := fastHealth()
	cfg.AdvertTTL = 500 * time.Millisecond // a wide window between expiry phases
	a := newNode(t, "a", cfg)
	if err := a.AddPeer("z", &silentTransport{}); err != nil {
		t.Fatal(err)
	}
	advert := func(version uint64) {
		t.Helper()
		if err := a.HandleAdvert(wire.AdvertBatch{From: "z", Adverts: []wire.Advert{{
			Origin:      "z",
			Version:     version,
			Communities: []wire.Community{{Patterns: []string{"/x/y"}, Members: 1, Selectivity: 0.5}},
		}}}); err != nil {
			t.Fatalf("HandleAdvert v%d: %v", version, err)
		}
	}
	advert(100)
	if _, sent, err := a.Publish(doc(t, "<x><y/></x>")); err != nil || sent != 1 {
		t.Fatalf("pre-expiry publish: sent=%d err=%v, want 1", sent, err)
	}

	// z goes silent. Phase one: the entry is tombstoned in place — still
	// listed, but with no patterns and no forwards.
	waitUntil(t, 3*time.Second, func() bool {
		og := a.Info().Origins
		return len(og) == 1 && og[0].Patterns == 0
	}, "z's advert never expired to a tombstone")
	if _, sent, err := a.Publish(doc(t, "<x><y/></x>")); err != nil || sent != 0 {
		t.Fatalf("post-expiry publish: sent=%d err=%v, want 0", sent, err)
	}

	// z resumes with its next version. Table and forest must both accept
	// it, restoring forwarding.
	advert(101)
	if _, sent, err := a.Publish(doc(t, "<x><y/></x>")); err != nil || sent != 1 {
		t.Fatalf("post-revival publish: sent=%d err=%v, want 1 (forest rejected the revived advert?)", sent, err)
	}

	// Silence again: phase one re-tombstones, phase two (a TTL later)
	// deletes the entry outright — dead origins do not leak table rows.
	waitUntil(t, 5*time.Second, func() bool {
		return len(a.Info().Origins) == 0
	}, "z's tombstone never swept from the table")
	// And a fully forgotten origin can still come back.
	advert(102)
	if _, sent, err := a.Publish(doc(t, "<x><y/></x>")); err != nil || sent != 1 {
		t.Fatalf("publish after full forget + revival: sent=%d err=%v, want 1", sent, err)
	}
}

// TestRefreshKeepsEntriesAlive: two healthy nodes must keep each
// other's table entries alive across several TTL periods via keepalive
// re-advertisement.
func TestRefreshKeepsEntriesAlive(t *testing.T) {
	a := newNode(t, "a", fastHealth())
	b := newNode(t, "b", fastHealth())
	connect(t, a, b)
	mustSubscribe(t, b, "/x/y")

	time.Sleep(3 * 150 * time.Millisecond) // 3 advert TTLs
	ai := a.Info()
	if len(ai.Origins) != 1 || ai.Origins[0].Origin != "b" {
		t.Fatalf("a's table after 3 TTLs: %+v, want b alive", ai.Origins)
	}
	if ai.AdvertsExpired != 0 {
		t.Fatalf("AdvertsExpired = %d, want 0 while b refreshes", ai.AdvertsExpired)
	}
	if _, sent, err := a.Publish(doc(t, "<x><y/></x>")); err != nil || sent != 1 {
		t.Fatalf("publish after refresh window: sent=%d err=%v, want 1", sent, err)
	}
}

// TestLinkDownProbeRecovery severs both directions of a link, verifies
// the damping set takes the link out of forwarding, accumulates churn
// during the partition, heals, and requires the backoff probes to
// recover the link AND resync the state advertised while it was down.
func TestLinkDownProbeRecovery(t *testing.T) {
	cfg := fastHealth()
	cfg.AdvertTTL = -1 // isolate link health from advert expiry
	a := newNode(t, "a", cfg)
	b := newNode(t, "b", cfg)
	ab := &switchable{inner: Inproc{Peer: b}}
	ba := &switchable{inner: Inproc{Peer: a}}
	if err := ConnectTransports(a, b, ab, ba); err != nil {
		t.Fatal(err)
	}
	subOld := mustSubscribe(t, b, "/x/y")

	// Sever. The next send from each side trips its link-health mark.
	ab.down.Store(true)
	ba.down.Store(true)
	a.Advertise()
	b.Advertise()
	ai := a.Info()
	if len(ai.DownPeers) != 1 || ai.DownPeers[0] != "b" || ai.LinkDowns < 1 {
		t.Fatalf("a after sever: down=%v linkDowns=%d, want [b] >=1", ai.DownPeers, ai.LinkDowns)
	}
	// Damping: a publication that would match b must not even attempt
	// the down link.
	errsBefore := a.Info().SendErrors
	if _, sent, err := a.Publish(doc(t, "<x><y/></x>")); err != nil || sent != 0 {
		t.Fatalf("publish into partition: sent=%d err=%v, want 0", sent, err)
	}
	if got := a.Info().SendErrors; got != errsBefore {
		t.Fatalf("publish touched a down link: SendErrors %d -> %d", errsBefore, got)
	}

	// Churn during the partition: gossip toward a is impossible now, so
	// only the heal-time resync can carry it.
	subNew := mustSubscribe(t, b, "/p/q")

	// Heal. Maintenance probes (capped backoff) must recover the link
	// and their full-state sync must deliver the partition-era advert.
	ab.down.Store(false)
	ba.down.Store(false)
	waitUntil(t, 3*time.Second, func() bool {
		return len(a.Info().DownPeers) == 0 && len(b.Info().DownPeers) == 0
	}, "links never recovered after heal")
	ai = a.Info()
	if ai.LinkRecoveries < 1 || ai.Resyncs < 1 {
		t.Fatalf("a after heal: recoveries=%d resyncs=%d, want >=1 each", ai.LinkRecoveries, ai.Resyncs)
	}

	// Routing is whole again, including the pattern subscribed mid-
	// partition.
	waitUntil(t, 3*time.Second, func() bool {
		_, sent, err := a.Publish(doc(t, "<p><q/></p>"))
		return err == nil && sent == 1
	}, "partition-era subscription never resynced to a")
	if ds := drainAll(t, b, subNew); len(ds) == 0 {
		t.Fatal("no delivery for partition-era subscription after heal")
	}
	if _, sent, err := a.Publish(doc(t, "<x><y/></x>")); err != nil || sent != 1 {
		t.Fatalf("pre-partition route after heal: sent=%d err=%v, want 1", sent, err)
	}
	if ds := drainAll(t, b, subOld); len(ds) == 0 {
		t.Fatal("no delivery for pre-partition subscription after heal")
	}
}

// busyTransport answers every publish with backpressure.
type busyTransport struct {
	inner  Transport
	busies atomic.Uint64
}

func (s *busyTransport) SendAdvert(b wire.AdvertBatch) error { return s.inner.SendAdvert(b) }
func (s *busyTransport) SendPublish(p wire.Publication) error {
	s.busies.Add(1)
	return &BusyError{After: time.Millisecond}
}

// TestBusyPeerIsNotDown: backpressure answers must be retried then
// shed without ever charging link health.
func TestBusyPeerIsNotDown(t *testing.T) {
	cfg := fastHealth()
	cfg.AdvertTTL = -1
	a := newNode(t, "a", cfg)
	b := newNode(t, "b", cfg)
	ab := &busyTransport{inner: Inproc{Peer: b}}
	if err := ConnectTransports(a, b, ab, Inproc{Peer: a}); err != nil {
		t.Fatal(err)
	}
	mustSubscribe(t, b, "/x/y")

	_, sent, err := a.Publish(doc(t, "<x><y/></x>"))
	if err != nil || sent != 0 {
		t.Fatalf("publish to busy peer: sent=%d err=%v, want 0 sent, nil err", sent, err)
	}
	ai := a.Info()
	if ai.PeerBusy < 1 {
		t.Fatalf("PeerBusy = %d, want >= 1", ai.PeerBusy)
	}
	if len(ai.DownPeers) != 0 || ai.LinkDowns != 0 || ai.SendErrors != 0 {
		t.Fatalf("busy peer charged link health: down=%v downs=%d errs=%d",
			ai.DownPeers, ai.LinkDowns, ai.SendErrors)
	}
	if got := ab.busies.Load(); got != 2 {
		t.Fatalf("busy peer saw %d attempts, want 2 (send + one retry)", got)
	}
}

func TestBusyAfterClassification(t *testing.T) {
	if _, busy := busyAfter(nil); busy {
		t.Fatal("nil error classified busy")
	}
	if _, busy := busyAfter(errors.New("boom")); busy {
		t.Fatal("ordinary error classified busy")
	}
	if after, busy := busyAfter(&BusyError{After: 10 * time.Millisecond}); !busy || after != 10*time.Millisecond {
		t.Fatalf("BusyError: after=%v busy=%v", after, busy)
	}
	// Hints are clamped to the bounded-politeness cap.
	if after, busy := busyAfter(&BusyError{After: time.Hour}); !busy || after != maxBusyWait {
		t.Fatalf("excessive hint: after=%v busy=%v, want cap %v", after, busy, maxBusyWait)
	}
	if after, busy := busyAfter(&BusyError{}); !busy || after != maxBusyWait {
		t.Fatalf("zero hint: after=%v busy=%v, want cap %v", after, busy, maxBusyWait)
	}
	// In-process backpressure (wrapped broker.ErrBusy) classifies too.
	wrapped := errors.Join(errors.New("overlay: inject"), broker.ErrBusy)
	if _, busy := busyAfter(wrapped); !busy {
		t.Fatal("wrapped broker.ErrBusy not classified busy")
	}
}

// TestHTTP503MapsToBusy: a 503 + Retry-After response becomes a
// BusyError; a bare 503 stays an ordinary (link-health) failure.
func TestHTTP503MapsToBusy(t *testing.T) {
	withHeader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		http.Error(w, "busy", http.StatusServiceUnavailable)
	}))
	defer withHeader.Close()
	tr := NewHTTPTransport(withHeader.URL, nil)
	err := tr.SendPublish(wire.Publication{From: "me", Origin: "o", Seq: 1, TTL: 2, XML: "<a/>"})
	var be *BusyError
	if !errors.As(err, &be) {
		t.Fatalf("503+Retry-After = %v, want BusyError", err)
	}
	if be.After != 2*time.Second {
		t.Fatalf("After = %v, want 2s", be.After)
	}

	bare := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
	}))
	defer bare.Close()
	tr2 := NewHTTPTransport(bare.URL, nil)
	err = tr2.SendPublish(wire.Publication{From: "me", Origin: "o", Seq: 1, TTL: 2, XML: "<a/>"})
	if err == nil {
		t.Fatal("bare 503 returned nil")
	}
	if errors.As(err, &be) {
		t.Fatal("bare 503 classified busy; must stay an ordinary failure")
	}
}

// TestSeenSetRemove exercises the backpressure unmark path, including
// the ring-slot integrity it must preserve.
func TestSeenSetRemove(t *testing.T) {
	s := newSeenSet(3)
	s.add("a")
	s.add("b")
	s.remove("a")
	if s.has("a") {
		t.Fatal("removed key still present")
	}
	if !s.has("b") {
		t.Fatal("unrelated key lost")
	}
	s.remove("zzz") // unknown: no-op
	// Re-add after remove, then push the set past capacity: the re-added
	// key must be evicted exactly once, never double-counted via a stale
	// ring slot.
	s.add("a")
	s.add("c") // ring full: ["", "b", "a"]? slots hold b, a and one blank
	s.add("d")
	s.add("e")
	s.add("f")
	if s.has("a") && s.has("b") && s.has("c") && s.has("d") && s.has("e") && s.has("f") {
		t.Fatal("seen set failed to evict past capacity")
	}
	if !s.has("f") {
		t.Fatal("most recent key evicted")
	}
	if len(s.m) > 3 {
		t.Fatalf("seen set grew past capacity: %d", len(s.m))
	}
}

// TestEpochFloor: MinEpoch must floor the boot epoch even when the
// clock says otherwise.
func TestEpochFloor(t *testing.T) {
	huge := uint64(1) << 62 // far above any UnixNano epoch
	n := newNode(t, "epoch", Config{MinEpoch: huge})
	ver, seq := n.Epoch()
	if ver <= huge || seq <= huge {
		t.Fatalf("Epoch() = %d, %d; want both > MinEpoch %d", ver, seq, huge)
	}
}
