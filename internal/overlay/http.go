package overlay

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"treesim/internal/broker"
	"treesim/internal/overlay/wire"
)

// HTTPTransport posts wire messages to a peer broker daemon's /peer/*
// endpoints.
type HTTPTransport struct {
	base   string
	client *http.Client
}

// NewPeerClient builds an HTTP client tuned for peer links: explicit
// dial, TLS and response-header deadlines under an overall per-request
// timeout, so a hung or blackholed peer surfaces as a link-health error
// within seconds instead of pinning a forwarding goroutine for the OS
// TCP timeout. timeout <= 0 defaults to 10s.
func NewPeerClient(timeout time.Duration) *http.Client {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	dial := timeout / 2
	if dial > 3*time.Second {
		dial = 3 * time.Second
	}
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: dial, KeepAlive: 15 * time.Second}).DialContext,
			TLSHandshakeTimeout:   dial,
			ResponseHeaderTimeout: timeout,
			MaxIdleConnsPerHost:   4,
			IdleConnTimeout:       90 * time.Second,
		},
	}
}

// NewHTTPTransport returns a transport for the peer at the given base
// URL (e.g. "http://127.0.0.1:8690"). A nil client gets the
// NewPeerClient default (explicit dial/send deadlines).
func NewHTTPTransport(base string, client *http.Client) *HTTPTransport {
	if client == nil {
		client = NewPeerClient(0)
	}
	return &HTTPTransport{base: base, client: client}
}

func (t *HTTPTransport) post(path string, body []byte) error {
	resp, err := t.client.Post(t.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		// 503 with Retry-After is the peer's backpressure signal — the
		// peer is alive but shedding; surface it as BusyError so the
		// sender backs off without charging link health. A 503 without
		// the header (closed peer) stays an ordinary failure.
		if resp.StatusCode == http.StatusServiceUnavailable {
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				after := time.Second
				if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
					after = time.Duration(secs) * time.Second
				}
				return &BusyError{After: after}
			}
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("overlay: POST %s%s: %s: %s", t.base, path, resp.Status, msg)
	}
	return nil
}

// SendAdvert implements Transport.
func (t *HTTPTransport) SendAdvert(b wire.AdvertBatch) error {
	data, err := wire.EncodeAdvertBatch(b)
	if err != nil {
		return err
	}
	return t.post("/peer/advert", data)
}

// SendPublish implements Transport.
func (t *HTTPTransport) SendPublish(p wire.Publication) error {
	data, err := wire.EncodePublication(p)
	if err != nil {
		return err
	}
	return t.post("/peer/publish", data)
}

// RegisterHTTP mounts the node's peer endpoints on mux:
//
//	POST /peer/advert   wire.AdvertBatch  → 204
//	POST /peer/publish  wire.Publication  → 204
//	GET  /peer/info     wire.Info
//
// A message whose sender is not yet a peer but carries a callback Addr
// auto-establishes the reverse link, so one-directional -peers
// configuration yields bidirectional federation.
func RegisterHTTP(mux *http.ServeMux, n *Node, maxBody int64, client *http.Client) {
	mux.HandleFunc("POST /peer/advert", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			peerError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		batch, err := wire.DecodeAdvertBatch(data)
		if err != nil {
			peerError(w, http.StatusBadRequest, "%v", err)
			return
		}
		autoPeer(n, batch.From, batch.Addr, client)
		if err := n.HandleAdvert(batch); err != nil {
			peerError(w, peerStatus(err), "%v", err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /peer/publish", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			peerError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		pub, err := wire.DecodePublication(data)
		if err != nil {
			peerError(w, http.StatusBadRequest, "%v", err)
			return
		}
		autoPeer(n, pub.From, pub.Addr, client)
		if err := n.HandlePublish(pub); err != nil {
			if errors.Is(err, broker.ErrBusy) {
				// Ingest backpressure: tell the peer to back off and
				// retry instead of blocking its forwarding goroutine.
				w.Header().Set("Retry-After", "1")
				peerError(w, http.StatusServiceUnavailable, "%v", err)
				return
			}
			peerError(w, peerStatus(err), "%v", err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /peer/info", func(w http.ResponseWriter, r *http.Request) {
		data, err := wire.EncodeInfo(n.Info())
		if err != nil {
			peerError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
}

// autoPeer establishes the reverse link to a not-yet-known sender that
// supplied a callback address.
func autoPeer(n *Node, from, addr string, client *http.Client) {
	if from == "" || addr == "" || from == n.ID() || n.HasPeer(from) {
		return
	}
	n.AddPeer(from, NewHTTPTransport(addr, client))
}

// DialPeer fetches the peer's identity from base+"/peer/info" and adds
// it as a peer over an HTTP transport. Callers retry: the peer daemon
// may not be up yet.
func DialPeer(n *Node, base string, client *http.Client) error {
	if client == nil {
		client = NewPeerClient(0)
	}
	resp, err := client.Get(base + "/peer/info")
	if err != nil {
		return err
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("overlay: GET %s/peer/info: %s", base, resp.Status)
	}
	info, err := wire.DecodeInfo(data)
	if err != nil {
		return err
	}
	if info.ID == n.ID() {
		return fmt.Errorf("overlay: peer %s is this node (%s)", base, info.ID)
	}
	return n.AddPeer(info.ID, NewHTTPTransport(base, client))
}

// peerStatus classifies a handler error: a closed overlay node or a
// closed broker engine is a transient server condition (503, the peer
// should stop sending here), anything else a bad request.
func peerStatus(err error) int {
	if errors.Is(err, ErrClosed) || errors.Is(err, broker.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func peerError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q}\n", fmt.Sprintf(format, args...))
}
