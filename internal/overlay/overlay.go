// Package overlay federates broker engines into a routed multi-broker
// topology — the network layer of the paper's scalable content-based
// routing story. Brokers do not exchange raw subscription tables:
// each node aggregates its local subscriptions into per-community
// advertisements (a covering subset of member patterns, extracted with
// cluster.Cover, optionally coarsened by truncation, plus a selectivity
// digest), and gossips versioned advertisement deltas to its peers.
// Every node keeps a per-link routing table mapping advertised
// aggregates to next hops, and forwards a publication over a link only
// when the document matches some aggregate reachable via that link —
// cheap, coarse, recall-preserving matching that happens before any
// peer does exact local matching. TTL and a seen-set suppress
// duplicates on cyclic topologies, so inter-broker traffic shrinks
// versus flooding while no delivery is lost.
//
// Advertisement propagation is origin-versioned gossip: an advert
// carries (origin, version, aggregates); a node accepts it if the
// version is new for that origin, records the arrival link as the next
// hop toward the origin, and re-gossips to its other links. Each
// version thus spans the network along its own broadcast tree, and
// publications flow down the reverse edges. A node whose subscriptions
// churn past its advertisement policy (the broker's rebuild-policy
// calculus) re-advertises under the next version; an origin with no
// subscriptions advertises an empty aggregate (a tombstone), closing
// the routes toward it.
//
// Trust and delivery model. Peer messages are validated (bounded,
// parseable) but not authenticated — like the daemon's subscribe and
// publish endpoints, the federation assumes a trusted network: any
// reachable sender could advertise aggregates under another node's
// origin and divert its traffic. Deploy peers on an isolated network
// or behind an authenticating proxy. Transport sends are synchronous
// and best-effort: an unreachable peer costs its transport timeout on
// the goroutine that advertises or forwards (publication forwarding
// chains block the upstream hop until the chain completes), and a
// failed send is counted, not retried — the next advert version
// resyncs routing state. Asynchronous per-link outbound queues are a
// ROADMAP item.
package overlay

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"treesim/internal/broker"
	"treesim/internal/overlay/wire"
	"treesim/internal/pattern"
	"treesim/internal/telemetry"
	"treesim/internal/xmltree"
)

// ErrClosed is returned by operations on a closed node.
var ErrClosed = fmt.Errorf("overlay: node closed")

// Config configures a Node. The zero value works: a random id, TTL 16,
// and a DirtyFraction re-advertisement policy.
type Config struct {
	// ID is this node's overlay identity (must be unique across the
	// federation; defaults to a random hex string).
	ID string
	// Addr, if set, is the callback base URL included in outgoing
	// messages so HTTP peers can auto-establish the reverse link.
	Addr string
	// TTL is the hop budget stamped on locally published documents
	// (default 16, capped at wire.MaxTTL).
	TTL int
	// SeenCapacity bounds the duplicate-suppression set (default 8192
	// publication ids, evicted FIFO).
	SeenCapacity int
	// AdvertPolicy decides when accumulated subscription churn warrants
	// re-advertising the local aggregate, consulted with the churn count
	// since the last advertisement and the live subscription count —
	// the same calculus as broker rebuild policies (default
	// broker.DirtyFraction{Fraction: 0.10, MinStale: 1}, so a lone
	// first subscription advertises immediately while a big registry
	// batches 10% of churn per advert). A full re-clustering always
	// re-advertises.
	AdvertPolicy broker.RebuildPolicy
	// MaxPatternNodes, when positive, coarsens advertised patterns to at
	// most that many nodes by dropping whole subtrees — the truncated
	// pattern contains the original, so recall is preserved and only
	// forwarding precision is traded for smaller adverts. 0 advertises
	// exact covering patterns.
	MaxPatternNodes int
	// Flood disables aggregate matching: publications are forwarded on
	// every link except the arrival one (TTL and duplicate suppression
	// still apply). This is the measurement baseline, not a mode for
	// production use.
	Flood bool

	// Telemetry is the metrics registry the node reports forwarding,
	// gossip, liveness, and per-link counters into (nil: a private
	// registry). Share the engine's registry so one scrape covers both.
	Telemetry *telemetry.Registry
	// TraceCapacity bounds the publication-trace span ring (hop records
	// retrievable via Node.TraceSpans and the daemon's GET /trace/{id}).
	// 0 means telemetry.DefaultTraceCapacity; negative disables tracing
	// entirely (publishes go out untraced).
	TraceCapacity int

	// MinEpoch, when set, floors the boot epoch used for the advert
	// version and publication sequence: a restarted node resumes at
	// max(clock epoch, MinEpoch+epochPad+1), so peers accept its state
	// even if the wall clock regressed across the restart. Brokers
	// persist their watermarks in snapshots and feed them back here;
	// because the persisted value is the watermark at the LAST SNAPSHOT
	// — adverts and publications issued after it exceed it — the floor
	// is padded by epochPad before use.
	MinEpoch uint64

	// AdvertTTL is the soft-state lifetime of a remote origin's routes:
	// a table entry not refreshed within the TTL is expired (its routes
	// evicted), closing the forwarding hole a silently dead peer would
	// otherwise leave forever. Origins re-advertise under a new version
	// every AdvertRefresh to stay alive. Default 60s; negative disables
	// expiry and refresh (the pre-liveness behavior, used by short-lived
	// harness runs).
	AdvertTTL time.Duration
	// AdvertRefresh is the keepalive re-advertisement period (default
	// AdvertTTL/3).
	AdvertRefresh time.Duration
	// Maintenance is the tick of the background maintenance loop that
	// drives refresh, expiry, and down-link retry probes (default 500ms).
	Maintenance time.Duration
	// RetryBase/RetryMax bound the capped exponential backoff (with
	// ±25% jitter) between retry probes to a marked-down link. Defaults
	// 250ms and 15s.
	RetryBase time.Duration
	RetryMax  time.Duration

	// Logger receives the node's operational event records — link
	// down/recovery transitions and advert expiries. State transitions
	// are emitted at WARN so an event ring teeing WARN+ retains them
	// even when console logging runs quieter. nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.ID == "" {
		var b [8]byte
		rand.Read(b[:])
		c.ID = "node-" + hex.EncodeToString(b[:])
	}
	if c.TTL <= 0 {
		c.TTL = 16
	}
	if c.TTL > wire.MaxTTL {
		c.TTL = wire.MaxTTL
	}
	if c.SeenCapacity <= 0 {
		c.SeenCapacity = 8192
	}
	if c.AdvertPolicy == nil {
		c.AdvertPolicy = broker.DirtyFraction{Fraction: 0.10, MinStale: 1}
	}
	if c.AdvertTTL == 0 {
		c.AdvertTTL = 60 * time.Second
	}
	if c.AdvertTTL < 0 {
		c.AdvertTTL = 0 // liveness disabled
	}
	if c.AdvertRefresh <= 0 {
		c.AdvertRefresh = c.AdvertTTL / 3
	}
	if c.Maintenance <= 0 {
		c.Maintenance = 500 * time.Millisecond
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 250 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 15 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// link is one attached peer, with its send-health state (guarded by the
// node lock; see health.go) and its per-link telemetry handles.
type link struct {
	id string
	tr Transport

	// sends/errs count successful and failed transport sends on this
	// link; up mirrors the damping state (1 healthy, 0 down) so a
	// scrape sees which links are currently out of rotation.
	sends *telemetry.Counter
	errs  *telemetry.Counter
	up    *telemetry.Gauge

	// down marks the link in the damping set: forwarding plans and
	// advert gossip skip it, and only the maintenance loop's backoff-
	// paced probes (full-state resyncs) touch it until one succeeds.
	down      bool
	fails     int
	backoff   time.Duration
	nextRetry time.Time
	// lastErr keeps the most recent send failure's message for
	// introspection; cleared when the link recovers.
	lastErr string
}

// nodeCounters are the node's lock-free operational counters — handles
// into the telemetry registry, so Info() and GET /metrics read the same
// atomics. CI's chaos-smoke asserts on
// treesim_overlay_link_recoveries_total after a partition heal.
type nodeCounters struct {
	forwardsSent *telemetry.Counter
	forwardsRecv *telemetry.Counter
	duplicates   *telemetry.Counter
	ttlDrops     *telemetry.Counter
	advertsSent  *telemetry.Counter
	advertsRecv  *telemetry.Counter
	published    *telemetry.Counter
	injected     *telemetry.Counter
	sendErrors   *telemetry.Counter

	advertsExpired *telemetry.Counter
	linkDowns      *telemetry.Counter
	linkRecovered  *telemetry.Counter
	resyncs        *telemetry.Counter
	peerBusy       *telemetry.Counter
	busyRejected   *telemetry.Counter
}

func newNodeCounters(reg *telemetry.Registry) nodeCounters {
	return nodeCounters{
		forwardsSent: reg.Counter("treesim_overlay_forwards_sent_total", "Publications forwarded to peers."),
		forwardsRecv: reg.Counter("treesim_overlay_forwards_recv_total", "Publications received from peers."),
		duplicates:   reg.Counter("treesim_overlay_duplicates_total", "Received publications suppressed as duplicates."),
		ttlDrops:     reg.Counter("treesim_overlay_ttl_drops_total", "Publications not re-forwarded because TTL expired."),
		advertsSent:  reg.Counter("treesim_overlay_adverts_sent_total", "Advert batches sent to peers."),
		advertsRecv:  reg.Counter("treesim_overlay_adverts_recv_total", "Advert batches received from peers."),
		published:    reg.Counter("treesim_overlay_published_total", "Documents published locally at this node."),
		injected:     reg.Counter("treesim_overlay_injected_total", "Forwarded documents injected into the local engine."),
		sendErrors:   reg.Counter("treesim_overlay_send_errors_total", "Transport send failures."),

		advertsExpired: reg.Counter("treesim_overlay_adverts_expired_total", "Routing-table entries expired by the soft-state advert TTL."),
		linkDowns:      reg.Counter("treesim_overlay_link_downs_total", "Links marked down after a send failure."),
		linkRecovered:  reg.Counter("treesim_overlay_link_recoveries_total", "Down links recovered by a maintenance probe."),
		resyncs:        reg.Counter("treesim_overlay_resyncs_total", "Full-state advert resyncs after link recovery."),
		peerBusy:       reg.Counter("treesim_overlay_peer_busy_total", "Sends answered with peer backpressure (busy)."),
		busyRejected:   reg.Counter("treesim_overlay_busy_rejected_total", "Received publications refused because the local engine shed them."),
	}
}

// Node is one federation member: a broker engine plus links, routing
// table and advertisement state. Create with New, wire with AddPeer (or
// Connect for in-process meshes), stop with Close.
type Node struct {
	cfg Config
	eng *broker.Engine

	mu    sync.Mutex
	links map[string]*link
	table map[string]*originEntry
	// forests holds one matching-engine instance per link: the shared
	// forest of every aggregate routed via that link, consulted by the
	// forwarding decision (outside the node lock — see linkForest).
	forests  map[string]*linkForest
	seen       *seenSet
	localVer   uint64
	local      wire.Advert
	advStale   int
	lastAdvert time.Time
	closed     bool

	// stop/maintWG manage the background maintenance goroutine
	// (refresh, expiry, down-link probes; see health.go).
	stop    chan struct{}
	maintWG sync.WaitGroup

	seq      atomic.Uint64
	counters nodeCounters
	// tel is the metrics registry (cfg.Telemetry or private); traces
	// the bounded span ring for publication tracing (nil: disabled).
	tel    *telemetry.Registry
	traces *telemetry.TraceRing
}

// New attaches a federation node to an engine and installs the engine's
// churn hook (the node re-advertises when churn crosses
// Config.AdvertPolicy). The engine must not have another churn hook
// user; Close uninstalls it.
// epochPad is the safety margin added above Config.MinEpoch when
// flooring the boot epoch. The persisted watermark trails the crashed
// node's live advert version / publication sequence by however many it
// issued after its last snapshot; 2^32 outruns any realistic
// inter-snapshot churn while consuming a negligible slice of the
// uint64 epoch space per restart.
const epochPad = 1 << 32

func New(eng *broker.Engine, cfg Config) *Node {
	n := &Node{
		cfg:     cfg.withDefaults(),
		eng:     eng,
		links:   make(map[string]*link),
		table:   make(map[string]*originEntry),
		forests: make(map[string]*linkForest),
		stop:    make(chan struct{}),
	}
	n.tel = n.cfg.Telemetry
	if n.tel == nil {
		n.tel = telemetry.NewRegistry()
	}
	n.counters = newNodeCounters(n.tel)
	if n.cfg.TraceCapacity >= 0 {
		n.traces = telemetry.NewTraceRing(n.cfg.TraceCapacity)
	}
	n.seen = newSeenSet(n.cfg.SeenCapacity)
	// Version and sequence numbers start at a boot epoch rather than 1:
	// a restarted node reuses its id (treesimd defaults it to the listen
	// address), and peers keep its old table entry and seen-set keys —
	// restarting below the old version would make them silently discard
	// every new advert ("stale") and the first publications
	// ("duplicate"). Nanosecond epochs are monotone across restarts and
	// leave ~2^63 headroom above any realistic churn rate; MinEpoch (a
	// persisted watermark) guards the clock-regression case.
	epoch := uint64(time.Now().UnixNano())
	if n.cfg.MinEpoch > 0 {
		// The persisted watermark is from the last snapshot, not crash
		// time: every advert version and publication sequence issued
		// between them exceeds it. Pad the floor so the boot epoch also
		// outruns those pre-crash live values — epochPad covers billions
		// of inter-snapshot operations and, against a healthy clock,
		// costs only ~4.3s of nanosecond-epoch headroom.
		floor := n.cfg.MinEpoch + epochPad
		if epoch <= floor {
			epoch = floor + 1
		}
	}
	n.seq.Store(epoch)
	n.mu.Lock()
	n.localVer = epoch
	n.local = n.buildAdvertLocked(n.localVer)
	n.lastAdvert = time.Now()
	n.mu.Unlock()
	eng.SetChurnHook(n.onChurn)
	n.maintWG.Add(1)
	go n.runMaintenance()
	return n
}

// Epoch returns the node's current advert version and publication
// sequence — the watermarks brokers persist so a restarted node's
// MinEpoch resumes above every value peers have seen.
func (n *Node) Epoch() (advertVersion, pubSeq uint64) {
	n.mu.Lock()
	v := n.localVer
	n.mu.Unlock()
	return v, n.seq.Load()
}

// ID returns the node's overlay identity.
func (n *Node) ID() string { return n.cfg.ID }

// Engine returns the attached broker engine.
func (n *Node) Engine() *broker.Engine { return n.eng }

// Close detaches the node: the churn hook is uninstalled, the
// maintenance loop stops, and subsequent publishes, handles and peer
// additions fail with ErrClosed. It does not close the engine (the
// caller owns it) and does not notify peers — their soft-state advert
// TTLs expire this node's routes and their link health marks the link
// down until it answers again.
func (n *Node) Close() {
	n.eng.SetChurnHook(nil)
	n.mu.Lock()
	if !n.closed {
		n.closed = true
		close(n.stop)
	}
	n.mu.Unlock()
	n.maintWG.Wait()
}

// onChurn is the engine hook: accumulate churn and re-advertise when
// the policy (or a completed re-clustering) says so.
func (n *Node) onChurn(ev broker.ChurnEvent) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.advStale++
	should := ev.Rebuilt || n.cfg.AdvertPolicy.ShouldRebuild(n.advStale, ev.Live)
	n.mu.Unlock()
	if should {
		n.Advertise()
	}
}

// Advertise rebuilds the local aggregate under the next version and
// pushes it to every peer. Called automatically per AdvertPolicy; also
// an explicit hook for harnesses and operators ("flush my aggregate
// now").
func (n *Node) Advertise() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	// Build under the lock so advert content is monotone in version:
	// a concurrent Advertise cannot pair an older snapshot with a newer
	// version number. The build reads engine snapshots (registry read
	// lock), which never takes the node lock — no inversion.
	n.localVer++
	n.local = n.buildAdvertLocked(n.localVer)
	n.advStale = 0
	n.lastAdvert = time.Now()
	adv := n.local
	targets := n.linksLocked("")
	n.mu.Unlock()
	n.sendAdverts(targets, []wire.Advert{adv})
	return nil
}

// AddPeer attaches a bidirectional-capable link to a peer and pushes
// the node's full routing state (local advert plus every known origin)
// over it, bringing the new neighbor up to date in one batch. Adding an
// existing peer id replaces its transport and resyncs. The peer must
// already know this node (or learn it from the sync batch's From/Addr,
// as the HTTP auto-peering glue does) for the sync to be accepted; when
// wiring two in-process nodes use Connect, which registers both links
// before syncing either way.
func (n *Node) AddPeer(id string, tr Transport) error {
	if err := n.addPeerLink(id, tr); err != nil {
		return err
	}
	return n.syncPeer(id)
}

// addPeerLink registers the link without pushing state.
func (n *Node) addPeerLink(id string, tr Transport) error {
	if id == n.cfg.ID {
		return fmt.Errorf("overlay: cannot peer with self (%q)", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	l := &link{
		id: id, tr: tr,
		sends: n.tel.Counter("treesim_overlay_link_sends_total", "Successful transport sends, per peer link.", "peer", id),
		errs:  n.tel.Counter("treesim_overlay_link_errors_total", "Failed transport sends, per peer link.", "peer", id),
		up:    n.tel.Gauge("treesim_overlay_link_up", "Link health: 1 healthy, 0 in the down/damping set.", "peer", id),
	}
	l.up.Set(1)
	n.links[id] = l
	return nil
}

// syncPeer pushes the full routing state over an existing link.
func (n *Node) syncPeer(id string) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	l, ok := n.links[id]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("overlay: sync to unknown peer %q", id)
	}
	adverts := make([]wire.Advert, 0, 1+len(n.table))
	adverts = append(adverts, n.local)
	origins := make([]string, 0, len(n.table))
	for origin := range n.table {
		if origin == id {
			// The peer is the authority on its own aggregate; echoing a
			// possibly stale copy back is pure noise.
			continue
		}
		origins = append(origins, origin)
	}
	sort.Strings(origins)
	for _, origin := range origins {
		adverts = append(adverts, n.table[origin].advert(origin))
	}
	n.mu.Unlock()
	n.sendAdverts([]*link{l}, adverts)
	return nil
}

// HasPeer reports whether a link to the given peer id exists.
func (n *Node) HasPeer(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.links[id]
	return ok
}

// HandleAdvert ingests an advertisement batch from a peer: new versions
// are recorded in the routing table and re-gossiped to the other links.
//
// The next hop is sticky. A fresher advert arriving on a link other
// than the entry's current via refreshes the version and aggregate
// content in place; the route itself moves only when the new path is
// strictly shorter (fewer hops), the current via link is down or gone,
// the entry is a tombstone being revived, or the via has carried no
// advert for this origin in AdvertTTL/2. Without stickiness the route
// follows whichever copy of each refresh flood lands first, and on
// multipath topologies a delayed or reordered direct copy briefly
// points two adjacent nodes at each other — a publication entering
// that two-cycle is split-horizon dropped and lost for every
// subscriber behind it. The quiet-via escape keeps liveness: when the
// path behind a healthy link is partitioned, refreshes stop flowing
// through it, and after half the advert TTL the freshest alternative
// link wins the route well before the entry itself would expire.
func (n *Node) HandleAdvert(batch wire.AdvertBatch) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if _, ok := n.links[batch.From]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("overlay: advert from unknown peer %q", batch.From)
	}
	n.counters.advertsRecv.Add(1)
	var accepted []wire.Advert
	var updates []forestUpdate
	var firstErr error
	now := time.Now()
	for _, a := range batch.Adverts {
		if a.Origin == n.cfg.ID {
			continue // our own advert reflected around a cycle
		}
		cur, known := n.table[a.Origin]
		if known && a.Version <= cur.version {
			if batch.From == cur.via {
				cur.viaSeen = now // a late copy on the via still proves the path
			}
			continue // stale or already known
		}
		entry, err := newOriginEntry(a, batch.From)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if known && !cur.expired && cur.via != batch.From && n.viaSticksLocked(cur, a, now) {
			// Freshness without a route move: update version, hops
			// estimate and aggregate content on the incumbent via, and
			// re-gossip under our route's hop count so downstream
			// staleness gates keep advancing.
			cur.version = a.Version
			cur.pats = entry.pats
			cur.advertised = entry.advertised
			cur.lastSeen = now
			lf := n.forests[cur.via]
			if lf == nil {
				lf = newLinkForest()
				n.forests[cur.via] = lf
			}
			updates = append(updates, forestUpdate{lf: lf, origin: a.Origin, version: a.Version, pats: entry.pats})
			if fwd := a; cur.hops+1 <= wire.MaxTTL {
				fwd.Hops = cur.hops + 1
				accepted = append(accepted, fwd)
			}
			continue
		}
		// Plan the forest updates — move the origin's aggregates into
		// the arrival link's forest, unlinking them from the old next
		// hop if it changed — but apply them only after the node lock
		// is released: forest mutation waits on in-flight document
		// matching (linkForest.mu), and n.mu must never transitively
		// wait on a match. Version gating inside linkForest makes the
		// out-of-order application this allows safe.
		if known && cur.via != batch.From {
			if lf := n.forests[cur.via]; lf != nil {
				updates = append(updates, forestUpdate{lf: lf, origin: a.Origin, version: a.Version})
			}
		}
		lf := n.forests[batch.From]
		if lf == nil {
			lf = newLinkForest()
			n.forests[batch.From] = lf
		}
		updates = append(updates, forestUpdate{lf: lf, origin: a.Origin, version: a.Version, pats: entry.pats})
		n.table[a.Origin] = entry
		if fwd := a; fwd.Hops+1 <= wire.MaxTTL {
			fwd.Hops++
			accepted = append(accepted, fwd)
		}
	}
	targets := n.linksLocked(batch.From)
	n.mu.Unlock()
	for _, u := range updates {
		u.lf.set(u.origin, u.version, u.pats)
	}
	if len(accepted) > 0 {
		n.sendAdverts(targets, accepted)
	}
	return firstErr
}

// viaSticksLocked decides whether a fresher advert arriving off-via
// leaves the route where it is. The incumbent holds as long as its
// link is up, the new path is no shorter, and the via has proven
// recently (within half the advert TTL) that it still carries this
// origin's floods. With liveness disabled (AdvertTTL 0) the quiet
// check is skipped — there is no timescale to age the via against,
// and entries never expire either.
func (n *Node) viaSticksLocked(cur *originEntry, a wire.Advert, now time.Time) bool {
	l, ok := n.links[cur.via]
	if !ok || l.down {
		return false
	}
	if a.Hops < cur.hops {
		return false
	}
	if ttl := n.cfg.AdvertTTL; ttl > 0 && now.Sub(cur.viaSeen) > ttl/2 {
		return false
	}
	return true
}

// forestUpdate is one link-forest mutation planned under the node lock
// and applied outside it (nil pats unlinks the origin from that link).
type forestUpdate struct {
	lf      *linkForest
	origin  string
	version uint64
	pats    []*pattern.Pattern
}

// Publish routes a locally published document: exact local matching
// through the engine first, then coarse aggregate matching per link to
// decide which peers receive a forward. It returns the local routing
// result and the number of links the document was forwarded on.
func (n *Node) Publish(t *xmltree.Tree) (broker.PublishResult, int, error) {
	res, sent, _, err := n.PublishTraced(t)
	return res, sent, err
}

// PublishTraced is Publish returning the publication's trace ID as
// well: a fresh random ID stamped into the wire frame, under which
// this node and every forwarding hop append a span (Node.TraceSpans;
// the daemon's GET /trace/{id}). Empty when tracing is disabled.
func (n *Node) PublishTraced(t *xmltree.Tree) (broker.PublishResult, int, string, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return broker.PublishResult{}, 0, "", ErrClosed
	}
	n.mu.Unlock()
	start := time.Now()
	res, err := n.eng.Publish(t)
	if err != nil {
		return res, 0, "", err
	}
	n.counters.published.Add(1)
	seq := n.seq.Add(1)
	var traceID string
	if n.traces != nil {
		traceID = telemetry.NewTraceID()
	}
	n.mu.Lock()
	n.seen.add(seenKey(n.cfg.ID, seq))
	plan := n.forwardPlanLocked(n.cfg.ID, "")
	n.mu.Unlock()
	targets := matchTargets(t, plan)
	sent, sentTo := n.sendPublication(targets, wire.Publication{
		Origin: n.cfg.ID,
		Seq:    seq,
		TTL:    n.cfg.TTL,
		Trace:  traceID,
	}, t)
	if n.traces != nil {
		n.traces.Add(telemetry.Span{
			Trace:       traceID,
			Node:        n.cfg.ID,
			Origin:      n.cfg.ID,
			Seq:         seq,
			StartUnixNS: start.UnixNano(),
			QueueWaitNS: res.IngestWaitNS,
			MatchNS:     res.MatchNS,
			Deliveries:  res.Deliveries,
			ForwardedTo: sentTo,
		})
	}
	return res, sent, traceID, nil
}

// TraceSpans returns the spans this node retains for a trace ID
// (oldest first; nil when tracing is disabled or the ID is unknown).
func (n *Node) TraceSpans(id string) []telemetry.Span {
	if n.traces == nil {
		return nil
	}
	return n.traces.Get(id)
}

// HandlePublish ingests a forwarded publication from a peer: duplicate
// suppression first (origin+seq needs no parsing — on cyclic
// topologies suppressed duplicates are routine and must stay cheap),
// then local delivery through the engine's remote-injection hook, then
// TTL-decremented coarse forwarding to further links. A publication
// whose payload turns out to be unparseable stays marked seen: its
// origin assigned that sequence to a malformed document, and replaying
// it cannot improve.
func (n *Node) HandlePublish(pub wire.Publication) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if _, ok := n.links[pub.From]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("overlay: publication from unknown peer %q", pub.From)
	}
	n.counters.forwardsRecv.Add(1)
	key := seenKey(pub.Origin, pub.Seq)
	if n.seen.has(key) {
		n.counters.duplicates.Add(1)
		n.mu.Unlock()
		return nil
	}
	n.seen.add(key)
	ttl := pub.TTL - 1
	n.mu.Unlock()
	start := time.Now()
	t, err := xmltree.ParseString(pub.XML, n.eng.Estimator().Config().ParseOptions)
	if err != nil {
		return fmt.Errorf("overlay: forwarded document from %q: %w", pub.From, err)
	}
	// Local injection happens BEFORE any forwarding: when the engine
	// sheds under backpressure the publication is unmarked from the seen
	// set and refused whole, so the upstream peer's retry is not
	// suppressed as a duplicate and cannot leave a permanent local hole.
	// No span is recorded for a shed publication — the upstream retry
	// that eventually lands writes this node's single span.
	res, err := n.eng.InjectRemote(t)
	if err != nil {
		if errors.Is(err, broker.ErrBusy) {
			n.mu.Lock()
			n.seen.remove(key)
			n.mu.Unlock()
			n.counters.busyRejected.Add(1)
		}
		return fmt.Errorf("overlay: inject from %q: %w", pub.From, err)
	}
	n.counters.injected.Add(1)
	var plan []forwardCandidate
	if ttl > 0 {
		n.mu.Lock()
		plan = n.forwardPlanLocked(pub.Origin, pub.From)
		n.mu.Unlock()
	} else {
		n.counters.ttlDrops.Add(1)
	}
	targets := matchTargets(t, plan)
	pub.TTL = ttl
	_, sentTo := n.sendPublication(targets, pub, t)
	if n.traces != nil && pub.Trace != "" {
		n.traces.Add(telemetry.Span{
			Trace:       pub.Trace,
			Node:        n.cfg.ID,
			From:        pub.From,
			Origin:      pub.Origin,
			Seq:         pub.Seq,
			StartUnixNS: start.UnixNano(),
			QueueWaitNS: res.IngestWaitNS,
			MatchNS:     res.MatchNS,
			Deliveries:  res.Deliveries,
			ForwardedTo: sentTo,
		})
	}
	return nil
}

// forwardCandidate is one link with its matching-engine instance,
// snapshotted under the node lock so the (expensive) document matching
// can run outside it — the linkForest synchronizes internally against
// concurrent advert updates.
type forwardCandidate struct {
	l       *link
	flood   bool
	lf      *linkForest
	exclude string // the publication's origin: its own aggregates are ignored
}

// forwardPlanLocked snapshots, per non-arrival link, the link forest a
// forwarding decision must consult: every origin routed via that link
// except the publication's own origin (it has the document already).
// In Flood mode every non-arrival link qualifies unconditionally.
func (n *Node) forwardPlanLocked(origin, exclude string) []forwardCandidate {
	var out []forwardCandidate
	if n.cfg.Flood {
		for _, l := range n.linksLocked(exclude) {
			out = append(out, forwardCandidate{l: l, flood: true})
		}
		return out
	}
	for _, l := range n.linksLocked(exclude) {
		if lf := n.forests[l.id]; lf != nil && lf.hasOther(origin) {
			out = append(out, forwardCandidate{l: l, lf: lf, exclude: origin})
		}
	}
	return out
}

// matchTargets runs the coarse aggregate match for a planned forward —
// outside the node lock, so concurrent publications and advert
// handling never serialize on pattern matching. Per candidate link it
// is one single-pass forest match over that link's aggregates.
func matchTargets(t *xmltree.Tree, plan []forwardCandidate) []*link {
	var out []*link
	for _, c := range plan {
		if c.flood {
			out = append(out, c.l)
			continue
		}
		if c.lf.matchAnyExcept(t, c.exclude) {
			out = append(out, c.l)
		}
	}
	return out
}

// linksLocked snapshots all healthy links except the named one, in id
// order — deterministic send order makes multi-hop propagation (and
// therefore measured forward counts) reproducible for a fixed topology.
// Marked-down links are skipped (the damping set): until a maintenance
// probe recovers one, no forwarding plan or gossip wastes a timeout on
// it.
func (n *Node) linksLocked(exclude string) []*link {
	out := make([]*link, 0, len(n.links))
	for id, l := range n.links {
		if id != exclude && !l.down {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// sendAdverts pushes adverts to the given links. A failed peer is
// counted and its link marked down (backed-off maintenance probes take
// over); the probe's full-state resync repairs whatever gossip it
// missed while down.
func (n *Node) sendAdverts(targets []*link, adverts []wire.Advert) {
	if len(targets) == 0 || len(adverts) == 0 {
		return
	}
	batch := wire.AdvertBatch{From: n.cfg.ID, Addr: n.cfg.Addr, Adverts: adverts}
	for _, l := range targets {
		if err := l.tr.SendAdvert(batch); err != nil {
			n.counters.sendErrors.Add(1)
			n.recordSend(l.id, err)
			continue
		}
		n.counters.advertsSent.Add(1)
		n.recordSend(l.id, nil)
	}
}

// sendPublication forwards one document to the given links, serializing
// it once. Returns the number of successful sends and, for traced
// publications, the ids of the links that accepted one (nil when the
// frame is untraced — the span is the only consumer, no need to
// allocate on every forward).
func (n *Node) sendPublication(targets []*link, pub wire.Publication, t *xmltree.Tree) (int, []string) {
	if len(targets) == 0 {
		return 0, nil
	}
	if pub.XML == "" {
		xmlStr, err := xmltree.XMLString(t, false)
		if err != nil {
			n.counters.sendErrors.Add(1)
			return 0, nil
		}
		pub.XML = xmlStr
	}
	pub.From = n.cfg.ID
	pub.Addr = n.cfg.Addr
	sent := 0
	var sentTo []string
	for _, l := range targets {
		err := l.tr.SendPublish(pub)
		if after, busy := busyAfter(err); busy {
			// Backpressure, not failure: the peer is up but shedding.
			// Back off once (capped) and retry; a second refusal sheds
			// the forward without touching link health.
			n.counters.peerBusy.Add(1)
			time.Sleep(after)
			err = l.tr.SendPublish(pub)
			if _, busy := busyAfter(err); busy {
				continue
			}
		}
		if err != nil {
			n.counters.sendErrors.Add(1)
			n.recordSend(l.id, err)
			continue
		}
		sent++
		n.counters.forwardsSent.Add(1)
		n.recordSend(l.id, nil)
		if pub.Trace != "" {
			sentTo = append(sentTo, l.id)
		}
	}
	return sent, sentTo
}

// Info snapshots the node for GET /peer/info and harness accounting.
func (n *Node) Info() wire.Info {
	n.mu.Lock()
	info := wire.Info{
		ID:          n.cfg.ID,
		Addr:        n.cfg.Addr,
		AdvertVer:   n.localVer,
		LocalAdvert: n.local,
	}
	for id, l := range n.links {
		info.Peers = append(info.Peers, id)
		if l.down {
			info.DownPeers = append(info.DownPeers, id)
		}
	}
	for origin, e := range n.table {
		info.Origins = append(info.Origins, e.summary(origin))
	}
	n.mu.Unlock()
	sort.Strings(info.Peers)
	sort.Strings(info.DownPeers)
	sort.Slice(info.Origins, func(i, j int) bool { return info.Origins[i].Origin < info.Origins[j].Origin })
	c := &n.counters
	info.ForwardsSent = c.forwardsSent.Load()
	info.ForwardsRecv = c.forwardsRecv.Load()
	info.Duplicates = c.duplicates.Load()
	info.TTLDrops = c.ttlDrops.Load()
	info.AdvertsSent = c.advertsSent.Load()
	info.AdvertsRecv = c.advertsRecv.Load()
	info.Published = c.published.Load()
	info.Injected = c.injected.Load()
	info.SendErrors = c.sendErrors.Load()
	info.AdvertsExpired = c.advertsExpired.Load()
	info.LinkDowns = c.linkDowns.Load()
	info.LinkRecoveries = c.linkRecovered.Load()
	info.Resyncs = c.resyncs.Load()
	info.PeerBusy = c.peerBusy.Load()
	info.BusyRejected = c.busyRejected.Load()
	return info
}

func seenKey(origin string, seq uint64) string {
	return origin + "\x00" + strconv.FormatUint(seq, 10)
}
