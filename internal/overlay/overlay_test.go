package overlay

import (
	"sync"
	"testing"

	"treesim/internal/broker"
	"treesim/internal/overlay/wire"
	"treesim/internal/xmltree"
)

// wire_batch builds a minimal advert batch claiming to come from n.
func wire_batch(n *Node) wire.AdvertBatch {
	return wire.AdvertBatch{From: n.ID(), Adverts: []wire.Advert{{Origin: n.ID(), Version: 99}}}
}

// newNode builds an engine+node pair with deterministic, test-friendly
// settings: exact-mode threshold (every subscription its own community)
// unless overridden, and immediate re-advertisement on every churn op.
func newNode(t *testing.T, id string, cfg Config) *Node {
	t.Helper()
	eng := broker.New(broker.Config{
		Threshold: 2, // unreachable similarity: singleton communities
		Rebuild:   broker.Never{},
	})
	t.Cleanup(func() { eng.Close() })
	cfg.ID = id
	if cfg.AdvertPolicy == nil {
		cfg.AdvertPolicy = broker.Staleness{MaxStale: 1}
	}
	n := New(eng, cfg)
	t.Cleanup(n.Close)
	return n
}

func doc(t *testing.T, s string) *xmltree.Tree {
	t.Helper()
	tree, err := xmltree.ParseString(s, xmltree.ParseOptions{})
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return tree
}

func mustSubscribe(t *testing.T, n *Node, expr string) uint64 {
	t.Helper()
	id, err := n.Engine().Subscribe(expr)
	if err != nil {
		t.Fatalf("subscribe %q: %v", expr, err)
	}
	return id
}

func drainAll(t *testing.T, n *Node, sub uint64) []broker.Delivery {
	t.Helper()
	ds, err := n.Engine().Drain(sub, 0, 0)
	if err != nil {
		t.Fatalf("drain %d: %v", sub, err)
	}
	return ds
}

func connect(t *testing.T, a, b *Node) {
	t.Helper()
	if err := Connect(a, b); err != nil {
		t.Fatalf("connect %s-%s: %v", a.ID(), b.ID(), err)
	}
}

// TestLineTopology routes across two hops: a subscription at C must
// attract publications from A through B, and documents matching nothing
// downstream must not leave A at all.
func TestLineTopology(t *testing.T) {
	a := newNode(t, "a", Config{})
	b := newNode(t, "b", Config{})
	c := newNode(t, "c", Config{})
	connect(t, a, b)
	connect(t, b, c)

	sub := mustSubscribe(t, c, "/x/y")

	// C's advert (triggered by the subscribe churn hook) must have
	// propagated through B to A already: sends are synchronous.
	if _, sent, err := a.Publish(doc(t, "<x><y/></x>")); err != nil || sent != 1 {
		t.Fatalf("matching publish: sent=%d err=%v, want 1 forward (toward b)", sent, err)
	}
	if _, sent, err := a.Publish(doc(t, "<z/>")); err != nil || sent != 0 {
		t.Fatalf("non-matching publish: sent=%d err=%v, want 0 forwards", sent, err)
	}
	ds := drainAll(t, c, sub)
	if len(ds) != 1 {
		t.Fatalf("c received %d deliveries, want 1", len(ds))
	}
	// The delivered document must be retrievable at C by sequence.
	if got := c.Engine().Document(ds[0].Doc); got == nil || got.Root.Label != "x" {
		t.Fatalf("c cannot resolve delivered doc %d: %v", ds[0].Doc, got)
	}
	bi := b.Info()
	if bi.ForwardsRecv != 1 || bi.ForwardsSent != 1 {
		t.Fatalf("b forwards recv=%d sent=%d, want 1/1", bi.ForwardsRecv, bi.ForwardsSent)
	}
}

// TestStarTopology: only the leaf with a matching subscription receives
// a forward from the hub.
func TestStarTopology(t *testing.T) {
	hub := newNode(t, "hub", Config{})
	leaves := []*Node{newNode(t, "l1", Config{}), newNode(t, "l2", Config{}), newNode(t, "l3", Config{})}
	for _, l := range leaves {
		connect(t, hub, l)
	}
	sub := mustSubscribe(t, leaves[1], "//beta")

	if _, sent, err := leaves[0].Publish(doc(t, "<root><beta/></root>")); err != nil || sent != 1 {
		t.Fatalf("leaf publish: sent=%d err=%v", sent, err)
	}
	hi := hub.Info()
	if hi.ForwardsSent != 1 {
		t.Fatalf("hub forwarded %d times, want 1 (only toward l2)", hi.ForwardsSent)
	}
	if got := len(drainAll(t, leaves[1], sub)); got != 1 {
		t.Fatalf("l2 got %d deliveries, want 1", got)
	}
	if got := leaves[2].Info().ForwardsRecv; got != 0 {
		t.Fatalf("l3 received %d forwards, want 0", got)
	}
}

// TestCycleDuplicateSuppression: on a triangle every node subscribes;
// each node still delivers each publication exactly once, with the
// seen-set absorbing the redundant path.
func TestCycleDuplicateSuppression(t *testing.T) {
	a := newNode(t, "a", Config{})
	b := newNode(t, "b", Config{})
	c := newNode(t, "c", Config{})
	connect(t, a, b)
	connect(t, b, c)
	connect(t, c, a)

	subs := map[*Node]uint64{
		a: mustSubscribe(t, a, "/m"),
		b: mustSubscribe(t, b, "/m"),
		c: mustSubscribe(t, c, "/m"),
	}
	const docs = 5
	for i := 0; i < docs; i++ {
		if _, _, err := a.Publish(doc(t, "<m/>")); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	for n, sub := range subs {
		if got := len(drainAll(t, n, sub)); got != docs {
			t.Fatalf("%s delivered %d, want %d", n.ID(), got, docs)
		}
	}
}

// TestSeenSetSuppressesReplays: the same publication arriving over two
// links is injected and forwarded once; the replay only bumps the
// duplicate counter.
func TestSeenSetSuppressesReplays(t *testing.T) {
	a := newNode(t, "a", Config{})
	b := newNode(t, "b", Config{})
	c := newNode(t, "c", Config{})
	connect(t, a, b)
	connect(t, c, b) // b in the middle
	sub := mustSubscribe(t, b, "/m")

	xml := "<m/>"
	pub := wire.Publication{From: "a", Origin: "a", Seq: 1, TTL: 4, XML: xml}
	if err := b.HandlePublish(pub); err != nil {
		t.Fatal(err)
	}
	replay := wire.Publication{From: "c", Origin: "a", Seq: 1, TTL: 4, XML: xml}
	if err := b.HandlePublish(replay); err != nil {
		t.Fatal(err)
	}
	if got := len(drainAll(t, b, sub)); got != 1 {
		t.Fatalf("b delivered %d copies, want 1", got)
	}
	info := b.Info()
	if info.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", info.Duplicates)
	}
	if info.Injected != 1 {
		t.Fatalf("injected = %d, want 1", info.Injected)
	}
}

// TestTombstoneStopsForwarding: after the only remote subscriber
// unsubscribes, the origin re-advertises an empty aggregate and
// publications stop flowing toward it.
func TestTombstoneStopsForwarding(t *testing.T) {
	a := newNode(t, "a", Config{})
	b := newNode(t, "b", Config{})
	connect(t, a, b)

	sub := mustSubscribe(t, b, "/x")
	if _, sent, _ := a.Publish(doc(t, "<x/>")); sent != 1 {
		t.Fatalf("pre-unsubscribe publish forwarded %d times, want 1", sent)
	}
	if !b.Engine().Unsubscribe(sub) {
		t.Fatal("unsubscribe failed")
	}
	if _, sent, _ := a.Publish(doc(t, "<x/>")); sent != 0 {
		t.Fatalf("post-unsubscribe publish forwarded %d times, want 0 (tombstone)", sent)
	}
	// The tombstone keeps the origin's version history: a's table still
	// knows b, at a higher version, with no aggregates.
	for _, o := range a.Info().Origins {
		if o.Origin == "b" && o.Patterns != 0 {
			t.Fatalf("b's tombstone still advertises %d patterns", o.Patterns)
		}
	}
}

// TestAdvertPolicyBatchesChurn: with a Staleness{MaxStale: 4} policy
// the node re-advertises once per 4 mutations, not on every subscribe.
func TestAdvertPolicyBatchesChurn(t *testing.T) {
	a := newNode(t, "a", Config{})
	b := newNode(t, "b", Config{AdvertPolicy: broker.Staleness{MaxStale: 4}})
	connect(t, a, b)

	base := b.Info().AdvertVer
	for i := 0; i < 3; i++ {
		mustSubscribe(t, b, "/q")
	}
	if got := b.Info().AdvertVer; got != base {
		t.Fatalf("advert version moved to %d after 3 ops (policy is 4), base %d", got, base)
	}
	mustSubscribe(t, b, "/q")
	if got := b.Info().AdvertVer; got != base+1 {
		t.Fatalf("advert version %d after 4 ops, want %d", got, base+1)
	}
	// A publication matching the batched subscriptions now forwards.
	if _, sent, _ := a.Publish(doc(t, "<q/>")); sent != 1 {
		t.Fatal("batched advert did not reach a")
	}
}

// TestLatePeerGetsFullState: a node joining after subscriptions exist
// receives the whole routing table in the AddPeer sync and can route
// immediately, including to origins two hops away.
func TestLatePeerGetsFullState(t *testing.T) {
	a := newNode(t, "a", Config{})
	b := newNode(t, "b", Config{})
	connect(t, a, b)
	sub := mustSubscribe(t, a, "/deep")

	c := newNode(t, "c", Config{})
	connect(t, b, c) // c learns about a's aggregate from b's full-state sync

	if _, sent, err := c.Publish(doc(t, "<deep/>")); err != nil || sent != 1 {
		t.Fatalf("late joiner publish: sent=%d err=%v", sent, err)
	}
	if got := len(drainAll(t, a, sub)); got != 1 {
		t.Fatalf("a delivered %d, want 1 (via b)", got)
	}
}

// TestTTLBoundsPropagation: a document stops after TTL hops even when
// aggregates match further downstream.
func TestTTLBoundsPropagation(t *testing.T) {
	nodes := []*Node{
		newNode(t, "n0", Config{TTL: 2}),
		newNode(t, "n1", Config{TTL: 2}),
		newNode(t, "n2", Config{TTL: 2}),
		newNode(t, "n3", Config{TTL: 2}),
	}
	for i := 0; i+1 < len(nodes); i++ {
		connect(t, nodes[i], nodes[i+1])
	}
	near := mustSubscribe(t, nodes[2], "/far")
	far := mustSubscribe(t, nodes[3], "/far")

	if _, _, err := nodes[0].Publish(doc(t, "<far/>")); err != nil {
		t.Fatal(err)
	}
	if got := len(drainAll(t, nodes[2], near)); got != 1 {
		t.Fatalf("2-hop subscriber delivered %d, want 1", got)
	}
	if got := len(drainAll(t, nodes[3], far)); got != 0 {
		t.Fatalf("3-hop subscriber delivered %d, want 0 (TTL 2)", got)
	}
	if nodes[2].Info().TTLDrops == 0 {
		t.Fatal("no TTL drop recorded at the horizon")
	}
}

// TestFloodModeForwardsEverywhere: the measurement baseline ignores
// aggregates and pushes every publication over every link.
func TestFloodModeForwardsEverywhere(t *testing.T) {
	a := newNode(t, "a", Config{Flood: true})
	b := newNode(t, "b", Config{Flood: true})
	c := newNode(t, "c", Config{Flood: true})
	connect(t, a, b)
	connect(t, b, c)

	if _, sent, _ := a.Publish(doc(t, "<nobody-wants-this/>")); sent != 1 {
		t.Fatalf("flood publish forwarded %d times from a, want 1", sent)
	}
	if got := c.Info().ForwardsRecv; got != 1 {
		t.Fatalf("flooded doc did not reach c (recv=%d)", got)
	}
}

// TestInjectRemoteCounted: overlay-delivered documents show up in the
// broker's RemoteInjected stat, separating federated from local load.
func TestInjectRemoteCounted(t *testing.T) {
	a := newNode(t, "a", Config{})
	b := newNode(t, "b", Config{})
	connect(t, a, b)
	mustSubscribe(t, b, "/x")
	if _, _, err := a.Publish(doc(t, "<x/>")); err != nil {
		t.Fatal(err)
	}
	bs := b.Engine().Stats()
	if bs.RemoteInjected != 1 || bs.Published != 1 {
		t.Fatalf("b stats: remote=%d published=%d, want 1/1", bs.RemoteInjected, bs.Published)
	}
	as := a.Engine().Stats()
	if as.RemoteInjected != 0 {
		t.Fatalf("a stats: remote=%d, want 0", as.RemoteInjected)
	}
}

// TestConcurrentPublishChurnAdvertise hammers publishes against
// churn-triggered re-advertisement on a connected pair (run with
// -race): advert building must never mutate patterns the publish path
// is concurrently matching.
func TestConcurrentPublishChurnAdvertise(t *testing.T) {
	a := newNode(t, "a", Config{})
	b := newNode(t, "b", Config{})
	connect(t, a, b)
	mustSubscribe(t, b, "/x") // keep every publish flowing toward b
	d := doc(t, "<x><b/><c/></x>")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if _, _, err := a.Publish(d); err != nil {
						return
					}
				}
			}
		}()
	}
	// Each subscription is a fresh pattern whose parse order differs
	// from canonical order ([c] before [b]), so the advert build's
	// canonicalization reorders child lists the injected publishes are
	// concurrently matching at b — unless the build works on clones.
	for i := 0; i < 50; i++ {
		id := mustSubscribe(t, b, "/x[c][b]")
		if i%2 == 0 {
			b.Engine().Unsubscribe(id)
		}
	}
	close(stop)
	wg.Wait()
}

// TestClosedNodeRefuses: operations after Close fail with ErrClosed and
// churn no longer triggers advertisement.
func TestClosedNodeRefuses(t *testing.T) {
	a := newNode(t, "a", Config{})
	b := newNode(t, "b", Config{})
	connect(t, a, b)
	a.Close()
	if _, _, err := a.Publish(doc(t, "<x/>")); err != ErrClosed {
		t.Fatalf("publish on closed node: %v, want ErrClosed", err)
	}
	if err := a.HandleAdvert(wire_batch(b)); err != ErrClosed {
		t.Fatalf("advert on closed node: %v, want ErrClosed", err)
	}
	ver := a.Info().AdvertVer
	mustSubscribe(t, a, "/x") // engine still works; hook is detached
	if got := a.Info().AdvertVer; got != ver {
		t.Fatalf("closed node re-advertised (version %d -> %d)", ver, got)
	}
}
