package overlay

// seenSet is a bounded duplicate-suppression set over publication ids
// (origin + sequence). Insertion past capacity evicts the oldest entry
// FIFO — old ids ceasing to be suppressed is safe because TTL bounds
// how long a publication can keep circulating. Callers hold the node
// lock.
type seenSet struct {
	m    map[string]struct{}
	ring []string
	next int
}

func newSeenSet(capacity int) *seenSet {
	return &seenSet{
		m:    make(map[string]struct{}, capacity),
		ring: make([]string, 0, capacity),
	}
}

func (s *seenSet) has(key string) bool {
	_, ok := s.m[key]
	return ok
}

func (s *seenSet) add(key string) {
	if _, ok := s.m[key]; ok {
		return
	}
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, key)
	} else {
		delete(s.m, s.ring[s.next])
		s.ring[s.next] = key
		s.next = (s.next + 1) % len(s.ring)
	}
	s.m[key] = struct{}{}
}

// remove un-marks a key — the backpressure path: a publication refused
// under load must not suppress the upstream peer's retry as a
// duplicate. The ring slot is blanked too (not just the map entry):
// leaving it would let a later re-add put the key in the ring twice,
// and the first slot's eviction would then delete the map entry while
// the key is still recent, silently re-admitting true duplicates.
// Removals are rare (sheds only), so the linear slot scan is fine.
func (s *seenSet) remove(key string) {
	if _, ok := s.m[key]; !ok {
		return
	}
	delete(s.m, key)
	for i, k := range s.ring {
		if k == key {
			s.ring[i] = "" // evicting "" later is a harmless map no-op
			break
		}
	}
}
