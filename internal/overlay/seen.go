package overlay

// seenSet is a bounded duplicate-suppression set over publication ids
// (origin + sequence). Insertion past capacity evicts the oldest entry
// FIFO — old ids ceasing to be suppressed is safe because TTL bounds
// how long a publication can keep circulating. Callers hold the node
// lock.
type seenSet struct {
	m    map[string]struct{}
	ring []string
	next int
}

func newSeenSet(capacity int) *seenSet {
	return &seenSet{
		m:    make(map[string]struct{}, capacity),
		ring: make([]string, 0, capacity),
	}
}

func (s *seenSet) has(key string) bool {
	_, ok := s.m[key]
	return ok
}

func (s *seenSet) add(key string) {
	if _, ok := s.m[key]; ok {
		return
	}
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, key)
	} else {
		delete(s.m, s.ring[s.next])
		s.ring[s.next] = key
		s.next = (s.next + 1) % len(s.ring)
	}
	s.m[key] = struct{}{}
}
