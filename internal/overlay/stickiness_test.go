package overlay

import (
	"testing"
	"time"

	"treesim/internal/overlay/wire"
)

// originAt finds origin's routing-table summary in n.Info, failing the
// test when the route is absent.
func originAt(t *testing.T, n *Node, origin string) wire.OriginInfo {
	t.Helper()
	for _, o := range n.Info().Origins {
		if o.Origin == origin {
			return o
		}
	}
	t.Fatalf("%s has no route for origin %q", n.ID(), origin)
	return wire.OriginInfo{}
}

// forge sends a hand-built advert for origin "a" into n, claiming to
// arrive from peer from.
func forge(t *testing.T, n *Node, from string, version uint64, hops int) {
	t.Helper()
	err := n.HandleAdvert(wire.AdvertBatch{From: from, Adverts: []wire.Advert{{
		Origin:      "a",
		Version:     version,
		Hops:        hops,
		Communities: []wire.Community{{Patterns: []string{"/x"}, Members: 1, Selectivity: 1}},
	}}})
	if err != nil {
		t.Fatalf("forged advert from %s: %v", from, err)
	}
}

// TestViaStickiness pins the sticky next-hop rules of HandleAdvert: a
// fresher advert arriving off the incumbent via refreshes the version
// in place, moves the route only when the new path is strictly
// shorter, and the quiet-via escape lets an alternative link take over
// once the incumbent stops carrying the origin's floods. Without
// stickiness the route follows whichever copy of a refresh flood lands
// first, and a reordered direct copy on a multipath topology briefly
// points two adjacent nodes at each other — a split-horizon black hole
// for any publication entering the cycle.
func TestViaStickiness(t *testing.T) {
	// Line a-b-c plus a spur c-d: c learns origin "a" via "b" at hops 1,
	// leaving "d" as the alternative link adverts are forged on.
	a := newNode(t, "a", Config{})
	b := newNode(t, "b", Config{})
	c := newNode(t, "c", Config{})
	d := newNode(t, "d", Config{})
	connect(t, a, b)
	connect(t, b, c)
	connect(t, c, d)

	mustSubscribe(t, a, "/x")
	if err := a.Advertise(); err != nil {
		t.Fatalf("advertise: %v", err)
	}
	cur := originAt(t, c, "a")
	if cur.Via != "b" || cur.Hops != 1 {
		t.Fatalf("route for a: via=%q hops=%d, want via b at 1 hop", cur.Via, cur.Hops)
	}

	// Fresher version on a longer path: version must advance, the route
	// must not move.
	forge(t, c, "d", cur.Version+10, 5)
	got := originAt(t, c, "a")
	if got.Via != "b" {
		t.Fatalf("equal-or-longer path stole the route: via=%q, want b", got.Via)
	}
	if got.Version != cur.Version+10 {
		t.Fatalf("off-via freshness not recorded: version=%d, want %d", got.Version, cur.Version+10)
	}

	// Strictly shorter path: the route moves.
	forge(t, c, "d", cur.Version+20, 0)
	if got = originAt(t, c, "a"); got.Via != "d" || got.Hops != 0 {
		t.Fatalf("shorter path did not win: via=%q hops=%d, want d at 0 hops", got.Via, got.Hops)
	}
}

// TestViaStickinessQuietVia: when the incumbent via stops carrying an
// origin's refresh floods for AdvertTTL/2, the next fresher advert on
// another link takes the route even at equal hop count.
func TestViaStickinessQuietVia(t *testing.T) {
	const ttl = 400 * time.Millisecond
	a := newNode(t, "a", Config{})
	b := newNode(t, "b", Config{})
	c := newNode(t, "c", Config{AdvertTTL: ttl})
	d := newNode(t, "d", Config{})
	connect(t, a, b)
	connect(t, b, c)
	connect(t, c, d)

	mustSubscribe(t, a, "/x")
	if err := a.Advertise(); err != nil {
		t.Fatalf("advertise: %v", err)
	}
	cur := originAt(t, c, "a")
	if cur.Via != "b" {
		t.Fatalf("route for a: via=%q, want b", cur.Via)
	}

	// Within the quiet window an equal-hops fresher advert must not
	// move the route.
	forge(t, c, "d", cur.Version+1, cur.Hops)
	if got := originAt(t, c, "a"); got.Via != "b" {
		t.Fatalf("route moved inside the quiet window: via=%q, want b", got.Via)
	}

	// Let the via go quiet past TTL/2 (but short of expiry, which the
	// stick above pushed out by refreshing lastSeen), then forge again.
	time.Sleep(ttl/2 + 50*time.Millisecond)
	forge(t, c, "d", cur.Version+2, cur.Hops)
	if got := originAt(t, c, "a"); got.Via != "d" {
		t.Fatalf("quiet via held the route: via=%q, want d", got.Via)
	}
}
