package overlay

import (
	"fmt"
	"sync"
	"time"

	"treesim/internal/matching"
	"treesim/internal/overlay/wire"
	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

// originEntry is one routing-table row: the latest aggregate advertised
// by an origin, with the link it arrived on as the next hop toward that
// origin. An entry with no communities is a tombstone — the origin has
// no subscriptions and never attracts forwards, but the version is kept
// so older adverts cannot resurrect routes. The matching itself lives
// in the per-link forests (linkForest); the entry keeps the parsed
// patterns only to (re)link them when the next hop changes.
type originEntry struct {
	version    uint64
	hops       int
	via        string // next-hop peer id (the arrival link)
	pats       []*pattern.Pattern
	advertised []wire.Community // as advertised, for re-gossip on AddPeer
	// lastSeen is when this origin was last heard from (a newer-version
	// advert accepted); the soft-state sweeper expires entries silent
	// past Config.AdvertTTL.
	lastSeen time.Time
	// viaSeen is when an advert for this origin last arrived on the via
	// link itself — any version, stale copies included, because a late
	// duplicate still proves the path carries this origin's floods. A
	// fresher advert on a different link normally refreshes the entry
	// without moving the route (next-hop stickiness); only when the via
	// has gone quiet for this origin does freshness elsewhere win the
	// route, so a partition behind a healthy link cannot black-hole
	// forwards forever.
	viaSeen time.Time
	// expired marks an entry the sweeper has tombstoned: its patterns
	// are gone from the link forests but the version is retained, so the
	// table and the forests agree that only a strictly newer advert
	// revives the origin. A silent origin merely paused (no version
	// advance) resumes at version+1, which both layers accept. The
	// tombstone itself is deleted a full TTL later, once in-flight
	// adverts at or below its version have drained.
	expired bool
}

// newOriginEntry parses an advert into a table entry. Patterns arrive
// codec-validated; a parse failure here (direct HandleAdvert callers)
// rejects the advert.
func newOriginEntry(a wire.Advert, via string) (*originEntry, error) {
	now := time.Now()
	e := &originEntry{version: a.Version, hops: a.Hops, via: via, advertised: a.Communities, lastSeen: now, viaSeen: now}
	for i, c := range a.Communities {
		for j, s := range c.Patterns {
			p, err := pattern.Parse(s)
			if err != nil {
				return nil, fmt.Errorf("overlay: advert %q community %d pattern %d: %w", a.Origin, i, j, err)
			}
			e.pats = append(e.pats, p)
		}
	}
	return e, nil
}

// advert reconstructs the wire advert for full-state sync to a new
// peer.
func (e *originEntry) advert(origin string) wire.Advert {
	hops := e.hops + 1
	if hops > wire.MaxTTL {
		hops = wire.MaxTTL
	}
	return wire.Advert{Origin: origin, Version: e.version, Hops: hops, Communities: e.advertised}
}

// summary condenses the entry for Info.
func (e *originEntry) summary(origin string) wire.OriginInfo {
	s := wire.OriginInfo{Origin: origin, Version: e.version, Hops: e.hops, Via: e.via, MinSel: 1}
	for _, c := range e.advertised {
		s.Patterns += len(c.Patterns)
		s.Members += c.Members
		if c.Selectivity < s.MinSel {
			s.MinSel = c.Selectivity
		}
	}
	if len(e.advertised) == 0 {
		s.MinSel = 0
	}
	return s
}

// linkForest is the per-link matching engine instance: one shared
// single-pass forest over every aggregate pattern advertised by every
// origin routed via that link. The forwarding decision for a link is
// one Forest.Match instead of a pattern.Matches loop over its origins'
// aggregates.
//
// Its own lock (not the node mutex) guards it: aggregate matching runs
// on publication paths concurrently with table updates, and the node
// lock is never held across document matching OR forest mutation —
// advert handling snapshots its updates under node.mu and applies them
// here after releasing it. Because application happens outside the
// node lock, two racing advert batches may apply out of order; every
// update carries the origin's advert version and stale ones are
// dropped (a removal leaves a versioned tombstone so an older set
// cannot resurrect patterns on the origin's previous link).
type linkForest struct {
	mu       sync.RWMutex
	forest   *matching.Forest
	byOrigin map[string]*originHandles
}

// originHandles is one origin's registration in a link forest. A nil
// or empty hs is a tombstone: the version is kept so older updates are
// recognized as stale, but the origin attracts no forwards.
type originHandles struct {
	version uint64
	hs      []int
}

func newLinkForest() *linkForest {
	return &linkForest{forest: matching.NewForest(), byOrigin: make(map[string]*originHandles)}
}

// set replaces origin's registered patterns with pats (nil/empty for a
// tombstone) if version is newer than what this link has seen.
func (lf *linkForest) set(origin string, version uint64, pats []*pattern.Pattern) {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	cur := lf.byOrigin[origin]
	if cur != nil && version <= cur.version {
		return // an update that lost the race to a newer one
	}
	if cur != nil {
		for _, h := range cur.hs {
			lf.forest.Remove(h)
		}
	}
	var hs []int
	if len(pats) > 0 {
		hs = make([]int, len(pats))
		for i, p := range pats {
			hs[i] = lf.forest.Add(p)
		}
	}
	lf.byOrigin[origin] = &originHandles{version: version, hs: hs}
}

// expire removes origin's patterns from this forest, leaving a
// tombstone at the given version — the version the routing table held
// when the origin went silent. Unlike set, an EQUAL version is
// tombstoned too (set would reject it as not-newer): expiry evicts the
// exact version it saw, so an origin resuming at version+1 clears both
// the table's and the forest's staleness gates together. A strictly
// newer registration (a racing advert that already revived the origin)
// is left alone.
func (lf *linkForest) expire(origin string, version uint64) {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	cur := lf.byOrigin[origin]
	if cur != nil && version < cur.version {
		return // a newer advert revived the origin; keep it
	}
	if cur != nil {
		for _, h := range cur.hs {
			lf.forest.Remove(h)
		}
	}
	lf.byOrigin[origin] = &originHandles{version: version}
}

// forget drops origin's tombstone bookkeeping entirely — the second
// phase of expiry, a full TTL after the tombstone, when any in-flight
// advert at or below its version has drained. A strictly newer
// registration is left alone.
func (lf *linkForest) forget(origin string, version uint64) {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	cur := lf.byOrigin[origin]
	if cur == nil || version < cur.version {
		return
	}
	for _, h := range cur.hs {
		lf.forest.Remove(h)
	}
	delete(lf.byOrigin, origin)
}

// hasOther reports whether any origin besides exclude has live
// patterns here — the cheap plan-time test for whether the link is
// worth matching.
func (lf *linkForest) hasOther(exclude string) bool {
	lf.mu.RLock()
	defer lf.mu.RUnlock()
	for o, oh := range lf.byOrigin {
		if o != exclude && len(oh.hs) > 0 {
			return true
		}
	}
	return false
}

// matchAnyExcept reports whether the document matches any aggregate of
// any origin routed via this link, ignoring the publication's own
// origin (it has the document already).
func (lf *linkForest) matchAnyExcept(t *xmltree.Tree, exclude string) bool {
	lf.mu.RLock()
	defer lf.mu.RUnlock()
	ms := lf.forest.Match(t)
	defer ms.Release()
	for o, oh := range lf.byOrigin {
		if o == exclude {
			continue
		}
		for _, h := range oh.hs {
			if ms.Has(h) {
				return true
			}
		}
	}
	return false
}
