package overlay

import (
	"fmt"
	"sort"

	"treesim/internal/overlay/wire"
	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

// originEntry is one routing-table row: the latest aggregate advertised
// by an origin, with the link it arrived on as the next hop toward that
// origin. An entry with no communities is a tombstone — the origin has
// no subscriptions and never attracts forwards, but the version is kept
// so older adverts cannot resurrect routes.
type originEntry struct {
	version    uint64
	hops       int
	via        string // next-hop peer id (the arrival link)
	comms      []aggComm
	advertised []wire.Community // as advertised, for re-gossip on AddPeer
}

// aggComm is one advertised community with its patterns parsed for
// matching.
type aggComm struct {
	pats    []*pattern.Pattern
	members int
	sel     float64
}

// newOriginEntry parses an advert into a table entry. Patterns arrive
// codec-validated; a parse failure here (direct HandleAdvert callers)
// rejects the advert.
func newOriginEntry(a wire.Advert, via string) (*originEntry, error) {
	e := &originEntry{version: a.Version, hops: a.Hops, via: via, advertised: a.Communities}
	for i, c := range a.Communities {
		ac := aggComm{members: c.Members, sel: c.Selectivity, pats: make([]*pattern.Pattern, len(c.Patterns))}
		for j, s := range c.Patterns {
			p, err := pattern.Parse(s)
			if err != nil {
				return nil, fmt.Errorf("overlay: advert %q community %d pattern %d: %w", a.Origin, i, j, err)
			}
			ac.pats[j] = p
		}
		e.comms = append(e.comms, ac)
	}
	// Most-selective aggregates first: a high selectivity digest means
	// the aggregate matches a large fraction of the stream, so testing
	// it first maximizes the chance of an early exit.
	sort.SliceStable(e.comms, func(i, j int) bool { return e.comms[i].sel > e.comms[j].sel })
	return e, nil
}

// match reports whether the document matches any advertised aggregate —
// the coarse routing test run once per link before forwarding.
func (e *originEntry) match(t *xmltree.Tree) bool {
	for _, c := range e.comms {
		for _, p := range c.pats {
			if pattern.Matches(t, p) {
				return true
			}
		}
	}
	return false
}

// advert reconstructs the wire advert for full-state sync to a new
// peer.
func (e *originEntry) advert(origin string) wire.Advert {
	hops := e.hops + 1
	if hops > wire.MaxTTL {
		hops = wire.MaxTTL
	}
	return wire.Advert{Origin: origin, Version: e.version, Hops: hops, Communities: e.advertised}
}

// summary condenses the entry for Info.
func (e *originEntry) summary(origin string) wire.OriginInfo {
	s := wire.OriginInfo{Origin: origin, Version: e.version, Hops: e.hops, Via: e.via, MinSel: 1}
	for _, c := range e.comms {
		s.Patterns += len(c.pats)
		s.Members += c.members
		if c.sel < s.MinSel {
			s.MinSel = c.sel
		}
	}
	if len(e.comms) == 0 {
		s.MinSel = 0
	}
	return s
}
