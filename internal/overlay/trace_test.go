package overlay

import (
	"strings"
	"testing"

	"treesim/internal/telemetry"
)

// collectSpans gathers every node's retained spans for one trace ID —
// what treesim-net and the daemon's /trace endpoint do across HTTP,
// done in-process here.
func collectSpans(nodes []*Node, id string) []telemetry.Span {
	var all []telemetry.Span
	for _, n := range nodes {
		all = append(all, n.TraceSpans(id)...)
	}
	return all
}

// TestPublicationTraceAcrossHops is the tentpole acceptance check in
// miniature: a trace ID injected at A must be retrievable at every hop
// of an A—B—C line, and the spans must assemble into a consistent
// forwarding tree (one origin span, every other span's From edge
// pointing at a node that also holds a span, at most one span per
// node).
func TestPublicationTraceAcrossHops(t *testing.T) {
	a := newNode(t, "a", Config{})
	b := newNode(t, "b", Config{})
	c := newNode(t, "c", Config{})
	nodes := []*Node{a, b, c}
	connect(t, a, b)
	connect(t, b, c)

	subB := mustSubscribe(t, b, "//y")
	subC := mustSubscribe(t, c, "/x/y")

	res, sent, id, err := a.PublishTraced(doc(t, "<x><y/></x>"))
	if err != nil || sent != 1 {
		t.Fatalf("traced publish: sent=%d err=%v", sent, err)
	}
	if len(id) != telemetry.TraceIDLen || strings.Trim(id, "0123456789abcdef") != "" {
		t.Fatalf("trace id %q is not %d hex chars", id, telemetry.TraceIDLen)
	}

	spans := collectSpans(nodes, id)
	if len(spans) != 3 {
		t.Fatalf("got %d spans for trace %s, want one per node: %+v", len(spans), id, spans)
	}
	byNode := map[string]telemetry.Span{}
	for _, sp := range spans {
		if _, dup := byNode[sp.Node]; dup {
			t.Fatalf("node %s recorded two spans for one trace", sp.Node)
		}
		byNode[sp.Node] = sp
		if sp.Trace != id || sp.Origin != "a" || sp.Seq == 0 {
			t.Fatalf("span carries wrong identity: %+v", sp)
		}
		if sp.MatchNS < 0 || sp.QueueWaitNS < 0 || sp.StartUnixNS <= 0 {
			t.Fatalf("span timings implausible: %+v", sp)
		}
	}
	// Tree shape: a is the root (no arrival link), every other span's
	// From edge lands on a node that forwarded to it.
	origin := byNode["a"]
	if origin.From != "" {
		t.Fatalf("origin span has arrival link %q, want none", origin.From)
	}
	for _, node := range []string{"b", "c"} {
		sp, ok := byNode[node]
		if !ok {
			t.Fatalf("no span at hop %s", node)
		}
		parent, ok := byNode[sp.From]
		if !ok {
			t.Fatalf("span at %s arrived from %q, which holds no span", node, sp.From)
		}
		found := false
		for _, to := range parent.ForwardedTo {
			if to == node {
				found = true
			}
		}
		if !found {
			t.Fatalf("parent %s span does not list %s in ForwardedTo %v", sp.From, node, parent.ForwardedTo)
		}
	}
	// Delivery counts line up with the subscriptions in place.
	if origin.Deliveries != res.Deliveries {
		t.Fatalf("origin span deliveries %d != publish result %d", origin.Deliveries, res.Deliveries)
	}
	if byNode["b"].Deliveries != 1 || byNode["c"].Deliveries != 1 {
		t.Fatalf("hop deliveries b=%d c=%d, want 1/1", byNode["b"].Deliveries, byNode["c"].Deliveries)
	}
	drainAll(t, b, subB)
	drainAll(t, c, subC)

	// A second publication gets a distinct ID and its own span set.
	_, _, id2, err := a.PublishTraced(doc(t, "<x><y/></x>"))
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatal("two publications share a trace id")
	}
	if got := len(collectSpans(nodes, id2)); got != 3 {
		t.Fatalf("second trace has %d spans, want 3", got)
	}
	if got := len(collectSpans(nodes, id)); got != 3 {
		t.Fatalf("first trace lost spans after second publish: %d", got)
	}
}

// TestTraceDisabled: TraceCapacity < 0 publishes untraced frames and
// retains nothing; Publish keeps working.
func TestTraceDisabled(t *testing.T) {
	a := newNode(t, "a", Config{TraceCapacity: -1})
	b := newNode(t, "b", Config{TraceCapacity: -1})
	connect(t, a, b)
	mustSubscribe(t, b, "//y")

	_, sent, id, err := a.PublishTraced(doc(t, "<x><y/></x>"))
	if err != nil || sent != 1 {
		t.Fatalf("publish with tracing off: sent=%d err=%v", sent, err)
	}
	if id != "" {
		t.Fatalf("tracing disabled but got id %q", id)
	}
	if spans := a.TraceSpans("anything"); spans != nil {
		t.Fatalf("disabled node returned spans: %v", spans)
	}
}

// TestOverlayMetricsExposition: node counters and per-link series land
// in a shared registry under their documented names.
func TestOverlayMetricsExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := newNode(t, "a", Config{Telemetry: reg})
	b := newNode(t, "b", Config{})
	connect(t, a, b)
	mustSubscribe(t, b, "//y")

	if _, sent, err := a.Publish(doc(t, "<x><y/></x>")); err != nil || sent != 1 {
		t.Fatalf("publish: sent=%d err=%v", sent, err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("overlay exposition does not parse: %v\n%s", err, sb.String())
	}
	sums := telemetry.SumByName(samples)
	ai := a.Info()
	for name, want := range map[string]float64{
		"treesim_overlay_published_total":     float64(ai.Published),
		"treesim_overlay_forwards_sent_total": float64(ai.ForwardsSent),
		"treesim_overlay_adverts_recv_total":  float64(ai.AdvertsRecv),
		"treesim_overlay_link_sends_total":    0, // ≥ forwards+adverts, checked below
		"treesim_overlay_link_up":             1,
	} {
		got, ok := sums[name]
		if !ok {
			t.Errorf("family %s missing from exposition", name)
			continue
		}
		if name == "treesim_overlay_link_sends_total" {
			if got < float64(ai.ForwardsSent) {
				t.Errorf("%s = %g, want >= %d", name, got, ai.ForwardsSent)
			}
			continue
		}
		if got != want {
			t.Errorf("%s = %g, Info says %g", name, got, want)
		}
	}
	// The per-link series must carry the peer label.
	found := false
	for _, s := range samples {
		if s.Name == "treesim_overlay_link_sends_total" && s.Labels["peer"] == "b" {
			found = true
		}
	}
	if !found {
		t.Error(`no treesim_overlay_link_sends_total{peer="b"} series`)
	}
}
