package overlay

import (
	"fmt"

	"treesim/internal/overlay/wire"
)

// Transport delivers wire messages to one peer node. Sends are
// synchronous: a nil return means the peer accepted the message.
type Transport interface {
	SendAdvert(wire.AdvertBatch) error
	SendPublish(wire.Publication) error
}

// Inproc is a Transport delivering to another Node in the same process.
// Messages pass through the wire codec — encoded and re-decoded — so
// in-process topologies (tests, cmd/treesim-net) exercise exactly the
// bytes HTTP peers would exchange, including canonicalization and
// validation.
type Inproc struct {
	Peer *Node
}

// SendAdvert implements Transport.
func (t Inproc) SendAdvert(b wire.AdvertBatch) error {
	data, err := wire.EncodeAdvertBatch(b)
	if err != nil {
		return fmt.Errorf("overlay: inproc advert: %w", err)
	}
	dec, err := wire.DecodeAdvertBatch(data)
	if err != nil {
		return fmt.Errorf("overlay: inproc advert: %w", err)
	}
	return t.Peer.HandleAdvert(dec)
}

// SendPublish implements Transport.
func (t Inproc) SendPublish(p wire.Publication) error {
	data, err := wire.EncodePublication(p)
	if err != nil {
		return fmt.Errorf("overlay: inproc publish: %w", err)
	}
	dec, err := wire.DecodePublication(data)
	if err != nil {
		return fmt.Errorf("overlay: inproc publish: %w", err)
	}
	return t.Peer.HandlePublish(dec)
}

// Connect links two nodes bidirectionally with in-process transports,
// exchanging full routing state both ways. Both links are registered
// before either sync, so neither side rejects the other's state batch
// as coming from an unknown peer.
func Connect(a, b *Node) error {
	return ConnectTransports(a, b, Inproc{Peer: b}, Inproc{Peer: a})
}

// ConnectTransports is Connect with caller-supplied transports for each
// direction (a→b via ab, b→a via ba) — the hook for fault-injecting
// wrappers in chaos tests and for mixed-transport topologies.
func ConnectTransports(a, b *Node, ab, ba Transport) error {
	if err := a.addPeerLink(b.ID(), ab); err != nil {
		return err
	}
	if err := b.addPeerLink(a.ID(), ba); err != nil {
		return err
	}
	if err := a.syncPeer(b.ID()); err != nil {
		return err
	}
	return b.syncPeer(a.ID())
}
