package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

// The trace field is the first optional addition to the publication
// frame since protocol version 1 shipped; these tests pin the
// compatibility contract in both directions.

// TestPublicationDecodeOldFrame: a frame encoded by a pre-trace peer
// (no "trace" key at all) must decode on a new node as an untraced
// publication — same protocol version, no error, empty Trace.
func TestPublicationDecodeOldFrame(t *testing.T) {
	old := `{"proto":1,"from":"a","origin":"b","seq":7,"ttl":3,"xml":"<doc/>"}`
	p, err := DecodePublication([]byte(old))
	if err != nil {
		t.Fatalf("old frame rejected: %v", err)
	}
	if p.Trace != "" {
		t.Fatalf("old frame decoded with trace %q, want empty", p.Trace)
	}
	if p.Origin != "b" || p.Seq != 7 || p.TTL != 3 {
		t.Fatalf("old frame fields mangled: %+v", p)
	}
}

// TestPublicationEncodeOmitsEmptyTrace: an untraced publication must
// serialize WITHOUT a trace key, so old peers (strict or not) see
// byte-identical frames to what a pre-trace node would send.
func TestPublicationEncodeOmitsEmptyTrace(t *testing.T) {
	enc, err := EncodePublication(Publication{From: "a", Origin: "b", Seq: 1, TTL: 1, XML: "<x/>"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(enc), "trace") {
		t.Fatalf("untraced frame leaks a trace key: %s", enc)
	}
}

// TestPublicationNewFrameAcceptedByOldDecoder simulates the old
// decoder: a struct without the Trace field unmarshalling a new frame.
// Unknown JSON keys are ignored, so the traced frame must decode
// cleanly — the trace is simply dropped at that hop.
func TestPublicationNewFrameAcceptedByOldDecoder(t *testing.T) {
	enc, err := EncodePublication(Publication{
		From: "a", Origin: "b", Seq: 2, TTL: 4, XML: "<x/>", Trace: "abcdef0123456789",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The pre-trace Publication shape, field for field.
	var oldShape struct {
		Proto  int    `json:"proto"`
		From   string `json:"from"`
		Addr   string `json:"addr,omitempty"`
		Origin string `json:"origin"`
		Seq    uint64 `json:"seq"`
		TTL    int    `json:"ttl"`
		XML    string `json:"xml"`
	}
	if err := json.Unmarshal(enc, &oldShape); err != nil {
		t.Fatalf("old decoder rejects traced frame: %v", err)
	}
	if oldShape.Origin != "b" || oldShape.Seq != 2 || oldShape.XML != "<x/>" {
		t.Fatalf("old decoder mangles traced frame: %+v", oldShape)
	}
}

// TestPublicationTraceRoundTripAndBounds: traced frames round-trip,
// oversized trace IDs are rejected on both paths.
func TestPublicationTraceRoundTripAndBounds(t *testing.T) {
	p := Publication{From: "a", Origin: "b", Seq: 3, TTL: 2, XML: "<x/>", Trace: "00ff00ff00ff00ff"}
	enc, err := EncodePublication(p)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodePublication(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Trace != p.Trace {
		t.Fatalf("trace %q round-tripped to %q", p.Trace, dec.Trace)
	}
	huge := p
	huge.Trace = strings.Repeat("x", MaxTraceLen+1)
	if _, err := EncodePublication(huge); err == nil {
		t.Error("encode accepted oversized trace")
	}
	frame, _ := json.Marshal(huge) // bypass encode validation
	var raw map[string]any
	_ = json.Unmarshal(frame, &raw)
	raw["proto"] = ProtocolVersion
	frame, _ = json.Marshal(raw)
	if _, err := DecodePublication(frame); err == nil {
		t.Error("decode accepted oversized trace")
	}
}
