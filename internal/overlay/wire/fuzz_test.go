package wire

import (
	"reflect"
	"testing"
)

// FuzzDecodeAdvert drives the advert codec with arbitrary bytes — peer
// brokers feed it straight from the network, so it must never panic,
// and anything it accepts must survive an encode/decode round trip
// unchanged (decode canonicalizes, so decode∘encode must be the
// identity on decoded batches).
func FuzzDecodeAdvert(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"proto":1,"from":"a","adverts":[]}`,
		`{"proto":1,"from":"a","adverts":[{"origin":"b","version":1,"communities":[]}]}`,
		`{"proto":1,"from":"a","addr":"http://127.0.0.1:1","adverts":[{"origin":"b","version":18446744073709551615,"hops":3,"communities":[{"patterns":["/media/CD[title]","//Mozart"],"members":7,"selectivity":0.25}]}]}`,
		`{"proto":1,"from":"a","adverts":[{"origin":"b","version":2,"communities":[{"patterns":["/a[c][b]"],"members":1,"selectivity":1}]}]}`,
		`{"proto":1,"from":"a","adverts":[{"origin":"b","version":2,"communities":[{"patterns":["/."],"members":0,"selectivity":0}]}]}`,
		`{"proto":1,"from":"a","adverts":[{"origin":"b","version":1,"communities":[{"patterns":["/a["],"members":1,"selectivity":0}]}]}`,
		`{"proto":2,"from":"a","adverts":[]}`,
		`{"proto":1,"from":"","adverts":[]}`,
		`{"proto":1,"from":"a","adverts":[{"origin":"b","version":1e2}]}`,
		`{"proto":1,"from":"a","unknown":true,"adverts":[{"origin":"b","version":1,"communities":[{"patterns":["//*"],"members":2,"selectivity":0.5}]}]}`,
		`[1,2,3]`,
		`{"proto":1,"from":"a","adverts":[{"origin":"b","version":1,"communities":[{"patterns":["/a\u0000b"],"members":1,"selectivity":0}]}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeAdvertBatch(data)
		if err != nil {
			return
		}
		enc, err := EncodeAdvertBatch(b)
		if err != nil {
			t.Fatalf("decoded batch does not re-encode: %v (%+v)", err, b)
		}
		b2, err := DecodeAdvertBatch(enc)
		if err != nil {
			t.Fatalf("encoded batch does not re-decode: %v (%s)", err, enc)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("decode→encode→decode changed the batch:\n%+v\n%+v", b, b2)
		}
		enc2, err := EncodeAdvertBatch(b2)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("encode is not byte-stable on decoded batches:\n%s\n%s", enc, enc2)
		}
	})
}
