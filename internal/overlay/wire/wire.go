// Package wire is the codec for the overlay federation's HTTP/JSON
// protocol. Brokers exchange three message kinds: advertisement batches
// (similarity-coarsened subscription aggregates, versioned per origin),
// publications (documents forwarded hop-by-hop with a TTL), and a node
// info snapshot (GET /peer/info).
//
// The codec is strict on decode: every accepted message is validated
// (protocol version, bounded sizes, parseable patterns, finite digests)
// and pattern expressions are canonicalized through the pattern parser,
// so a decoded value always re-encodes, and decode∘encode is the
// identity on decoded values — the invariant FuzzDecodeAdvert enforces.
// Unknown JSON fields are ignored for forward compatibility.
package wire

import (
	"encoding/json"
	"fmt"
	"math"

	"treesim/internal/pattern"
)

// ProtocolVersion is the overlay wire protocol version. Messages
// carrying a different version are rejected on decode.
const ProtocolVersion = 1

// Size caps enforced on decode. They bound the work a single message
// can demand from a receiving broker, not legitimate use.
const (
	// MaxOriginLen bounds node identifier length in bytes.
	MaxOriginLen = 256
	// MaxAdverts bounds origin adverts per batch.
	MaxAdverts = 4096
	// MaxCommunities bounds communities per advert.
	MaxCommunities = 4096
	// MaxPatterns bounds covering patterns per community.
	MaxPatterns = 4096
	// MaxPatternLen bounds one pattern expression in bytes.
	MaxPatternLen = 1 << 16
)

// Community is one advertised subscription aggregate: the covering
// patterns that stand for a community's members, plus a digest.
type Community struct {
	// Patterns are canonical pattern expressions that jointly contain
	// every member subscription of the community (a document matching
	// any member matches some listed pattern), so matching against them
	// is coarse but recall-preserving.
	Patterns []string `json:"patterns"`
	// Members is the number of subscriptions the aggregate stands for.
	Members int `json:"members"`
	// Selectivity is the advertising broker's estimate of the fraction
	// of stream documents matching the community representative, in
	// [0,1]. Receivers use it to order match attempts (most selective
	// aggregates are the likeliest hits).
	Selectivity float64 `json:"selectivity"`
}

// Advert is one origin's versioned subscription aggregate. An advert
// with no communities is a tombstone: the origin currently has no
// subscriptions and publications need not flow toward it.
type Advert struct {
	// Origin is the node id whose subscriptions this advert aggregates.
	Origin string `json:"origin"`
	// Version increases monotonically per origin; receivers keep only
	// the highest version seen.
	Version uint64 `json:"version"`
	// Hops is how many links the advert has traveled from its origin
	// (0 when the origin itself is the sender). Diagnostic.
	Hops int `json:"hops"`
	// Communities are the origin's aggregates, possibly empty.
	Communities []Community `json:"communities"`
}

// AdvertBatch is the body of POST /peer/advert: one or more origin
// adverts pushed over a link.
type AdvertBatch struct {
	// Proto is the wire protocol version (ProtocolVersion).
	Proto int `json:"proto"`
	// From is the sending node's id (the link peer, not necessarily any
	// advert's origin).
	From string `json:"from"`
	// Addr, if set, is a callback base URL the receiver can dial to
	// establish the reverse link (HTTP transport auto-peering).
	Addr string `json:"addr,omitempty"`
	// Adverts are the origin aggregates.
	Adverts []Advert `json:"adverts"`
}

// Publication is the body of POST /peer/publish: one document forwarded
// through the overlay.
type Publication struct {
	// Proto is the wire protocol version (ProtocolVersion).
	Proto int `json:"proto"`
	// From is the sending node's id (the previous hop).
	From string `json:"from"`
	// Addr, if set, is the sender's callback base URL (auto-peering).
	Addr string `json:"addr,omitempty"`
	// Origin is the node where the document was first published and Seq
	// that node's publish sequence number; together they identify the
	// publication for duplicate suppression.
	Origin string `json:"origin"`
	Seq    uint64 `json:"seq"`
	// TTL is the remaining hop budget; a node forwards with TTL-1 and
	// drops at 0.
	TTL int `json:"ttl"`
	// XML is the document serialization. The codec treats it as opaque
	// (the receiving broker parses it); only its size is bounded here.
	XML string `json:"xml"`
	// Trace is an optional telemetry trace ID stamped at the origin;
	// nodes handling a traced publication append hop spans retrievable
	// via the daemon's GET /trace/{id}. Optional and opaque: old peers
	// that predate the field drop it on re-encode (their Publication
	// struct has no slot for it), which degrades the trace to the hops
	// that understand it — never the routing. Empty means untraced.
	Trace string `json:"trace,omitempty"`
}

// MaxTTL bounds Publication.TTL; MaxXMLLen bounds Publication.XML;
// MaxTraceLen bounds Publication.Trace.
const (
	MaxTTL      = 64
	MaxXMLLen   = 4 << 20
	MaxTraceLen = 128
)

// OriginInfo summarizes one routing-table entry in Info.
type OriginInfo struct {
	Origin   string  `json:"origin"`
	Version  uint64  `json:"version"`
	Hops     int     `json:"hops"`
	Via      string  `json:"via"` // next-hop peer id
	Patterns int     `json:"patterns"`
	Members  int     `json:"members"`
	MinSel   float64 `json:"min_selectivity"`
}

// Info is the body of GET /peer/info: a node's identity, links and
// routing table, plus forwarding counters.
type Info struct {
	Proto        int          `json:"proto"`
	ID           string       `json:"id"`
	Addr         string       `json:"addr,omitempty"`
	AdvertVer    uint64       `json:"advert_version"`
	Peers        []string     `json:"peers"`
	Origins      []OriginInfo `json:"origins"`
	LocalAdvert  Advert       `json:"local_advert"`
	ForwardsSent uint64       `json:"forwards_sent"`
	ForwardsRecv uint64       `json:"forwards_recv"`
	Duplicates   uint64       `json:"duplicates"`
	TTLDrops     uint64       `json:"ttl_drops"`
	AdvertsSent  uint64       `json:"adverts_sent"`
	AdvertsRecv  uint64       `json:"adverts_recv"`
	Published    uint64       `json:"published"`
	Injected     uint64       `json:"injected"`

	// Liveness and backpressure counters (soft-state advert expiry,
	// per-link health, peer busy sheds). DownPeers lists the links
	// currently in the damping set.
	DownPeers      []string `json:"down_peers,omitempty"`
	SendErrors     uint64   `json:"send_errors"`
	AdvertsExpired uint64   `json:"adverts_expired"`
	LinkDowns      uint64   `json:"link_downs"`
	LinkRecoveries uint64   `json:"link_recoveries"`
	Resyncs        uint64   `json:"resyncs"`
	PeerBusy       uint64   `json:"peer_busy"`
	BusyRejected   uint64   `json:"busy_rejected"`
}

// EncodeAdvertBatch serializes a batch, stamping the protocol version.
// It validates but never writes into the batch's slices — senders hold
// them in live, concurrently-read node state; canonicalization is the
// decoder's job (the in-process advert builder already emits canonical
// expressions).
func EncodeAdvertBatch(b AdvertBatch) ([]byte, error) {
	b.Proto = ProtocolVersion
	if err := validateAdvertBatch(&b, false); err != nil {
		return nil, fmt.Errorf("wire: encode advert batch: %w", err)
	}
	return json.Marshal(b)
}

// DecodeAdvertBatch parses and validates a batch. Pattern expressions
// are canonicalized (parsed and re-serialized), so two decodes of
// equivalent spellings agree and the batch re-encodes byte-stably.
func DecodeAdvertBatch(data []byte) (AdvertBatch, error) {
	var b AdvertBatch
	if err := json.Unmarshal(data, &b); err != nil {
		return AdvertBatch{}, fmt.Errorf("wire: decode advert batch: %w", err)
	}
	if err := validateAdvertBatch(&b, true); err != nil {
		return AdvertBatch{}, fmt.Errorf("wire: decode advert batch: %w", err)
	}
	return b, nil
}

// validateAdvertBatch checks bounds; with canonicalize set it also
// rewrites pattern expressions to canonical form in place (decode-only:
// a freshly unmarshaled batch owns its slices).
func validateAdvertBatch(b *AdvertBatch, canonicalize bool) error {
	if b.Proto != ProtocolVersion {
		return fmt.Errorf("protocol version %d, want %d", b.Proto, ProtocolVersion)
	}
	if err := validateID(b.From, "from"); err != nil {
		return err
	}
	if len(b.Addr) > MaxOriginLen {
		return fmt.Errorf("addr longer than %d bytes", MaxOriginLen)
	}
	if len(b.Adverts) > MaxAdverts {
		return fmt.Errorf("%d adverts exceeds cap %d", len(b.Adverts), MaxAdverts)
	}
	for i := range b.Adverts {
		if err := validateAdvert(&b.Adverts[i], canonicalize); err != nil {
			return fmt.Errorf("advert %d: %w", i, err)
		}
	}
	return nil
}

func validateAdvert(a *Advert, canonicalize bool) error {
	if err := validateID(a.Origin, "origin"); err != nil {
		return err
	}
	if a.Hops < 0 || a.Hops > MaxTTL {
		return fmt.Errorf("hops %d outside [0,%d]", a.Hops, MaxTTL)
	}
	if len(a.Communities) > MaxCommunities {
		return fmt.Errorf("%d communities exceeds cap %d", len(a.Communities), MaxCommunities)
	}
	for i := range a.Communities {
		c := &a.Communities[i]
		if c.Members < 0 {
			return fmt.Errorf("community %d: negative member count", i)
		}
		if math.IsNaN(c.Selectivity) || c.Selectivity < 0 || c.Selectivity > 1 {
			return fmt.Errorf("community %d: selectivity %v outside [0,1]", i, c.Selectivity)
		}
		if len(c.Patterns) == 0 {
			return fmt.Errorf("community %d: no covering patterns", i)
		}
		if len(c.Patterns) > MaxPatterns {
			return fmt.Errorf("community %d: %d patterns exceeds cap %d", i, len(c.Patterns), MaxPatterns)
		}
		for j, s := range c.Patterns {
			if len(s) > MaxPatternLen {
				return fmt.Errorf("community %d: pattern %d longer than %d bytes", i, j, MaxPatternLen)
			}
			p, err := pattern.Parse(s)
			if err != nil {
				return fmt.Errorf("community %d: pattern %d: %w", i, j, err)
			}
			if canonicalize {
				c.Patterns[j] = p.Canonicalize().String()
			}
		}
	}
	return nil
}

// EncodePublication serializes a publication, stamping the protocol
// version.
func EncodePublication(p Publication) ([]byte, error) {
	p.Proto = ProtocolVersion
	if err := validatePublication(&p); err != nil {
		return nil, fmt.Errorf("wire: encode publication: %w", err)
	}
	return json.Marshal(p)
}

// DecodePublication parses and validates a publication. The document
// payload is bounded but not parsed here; the broker's XML parser is
// the authority on its content.
func DecodePublication(data []byte) (Publication, error) {
	var p Publication
	if err := json.Unmarshal(data, &p); err != nil {
		return Publication{}, fmt.Errorf("wire: decode publication: %w", err)
	}
	if err := validatePublication(&p); err != nil {
		return Publication{}, fmt.Errorf("wire: decode publication: %w", err)
	}
	return p, nil
}

func validatePublication(p *Publication) error {
	if p.Proto != ProtocolVersion {
		return fmt.Errorf("protocol version %d, want %d", p.Proto, ProtocolVersion)
	}
	if err := validateID(p.From, "from"); err != nil {
		return err
	}
	if err := validateID(p.Origin, "origin"); err != nil {
		return err
	}
	if len(p.Addr) > MaxOriginLen {
		return fmt.Errorf("addr longer than %d bytes", MaxOriginLen)
	}
	if p.TTL < 0 || p.TTL > MaxTTL {
		return fmt.Errorf("ttl %d outside [0,%d]", p.TTL, MaxTTL)
	}
	if len(p.XML) == 0 {
		return fmt.Errorf("empty document")
	}
	if len(p.XML) > MaxXMLLen {
		return fmt.Errorf("document longer than %d bytes", MaxXMLLen)
	}
	if len(p.Trace) > MaxTraceLen {
		return fmt.Errorf("trace id longer than %d bytes", MaxTraceLen)
	}
	return nil
}

// EncodeInfo serializes an info snapshot.
func EncodeInfo(i Info) ([]byte, error) {
	i.Proto = ProtocolVersion
	return json.Marshal(i)
}

// DecodeInfo parses an info snapshot (id is all the dialing side needs;
// the rest is diagnostic and accepted as-is).
func DecodeInfo(data []byte) (Info, error) {
	var i Info
	if err := json.Unmarshal(data, &i); err != nil {
		return Info{}, fmt.Errorf("wire: decode info: %w", err)
	}
	if i.Proto != ProtocolVersion {
		return Info{}, fmt.Errorf("wire: decode info: protocol version %d, want %d", i.Proto, ProtocolVersion)
	}
	if err := validateID(i.ID, "id"); err != nil {
		return Info{}, fmt.Errorf("wire: decode info: %w", err)
	}
	return i, nil
}

func validateID(id, field string) error {
	if id == "" {
		return fmt.Errorf("empty %s id", field)
	}
	if len(id) > MaxOriginLen {
		return fmt.Errorf("%s id longer than %d bytes", field, MaxOriginLen)
	}
	return nil
}
