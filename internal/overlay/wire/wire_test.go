package wire

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// jsonMarshalUnchecked serializes without the codec's validation, to
// craft invalid-on-the-wire batches.
func jsonMarshalUnchecked(b AdvertBatch) ([]byte, error) { return json.Marshal(b) }

func validBatch() AdvertBatch {
	return AdvertBatch{
		From: "node-a",
		Addr: "http://127.0.0.1:8690",
		Adverts: []Advert{
			{
				Origin:  "node-a",
				Version: 3,
				Communities: []Community{
					{Patterns: []string{"/media/CD[title]", "//Mozart"}, Members: 7, Selectivity: 0.25},
				},
			},
			{Origin: "node-b", Version: 1, Hops: 2}, // tombstone
		},
	}
}

func TestAdvertBatchRoundTrip(t *testing.T) {
	enc, err := EncodeAdvertBatch(validBatch())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeAdvertBatch(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Proto != ProtocolVersion || dec.From != "node-a" || len(dec.Adverts) != 2 {
		t.Fatalf("bad decode: %+v", dec)
	}
	enc2, err := EncodeAdvertBatch(dec)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	dec2, err := DecodeAdvertBatch(enc2)
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if !reflect.DeepEqual(dec, dec2) {
		t.Fatalf("round trip changed batch:\n%+v\n%+v", dec, dec2)
	}
}

func TestDecodeCanonicalizesPatterns(t *testing.T) {
	// Predicate order is semantically irrelevant; decode must normalize
	// it so equal aggregates compare equal on the receiving side.
	a := `{"proto":1,"from":"n","adverts":[{"origin":"n","version":1,
		"communities":[{"patterns":["/a[c][b]"],"members":1,"selectivity":0}]}]}`
	b := strings.Replace(a, "[c][b]", "[b][c]", 1)
	da, err := DecodeAdvertBatch([]byte(a))
	if err != nil {
		t.Fatalf("decode a: %v", err)
	}
	db, err := DecodeAdvertBatch([]byte(b))
	if err != nil {
		t.Fatalf("decode b: %v", err)
	}
	pa := da.Adverts[0].Communities[0].Patterns[0]
	pb := db.Adverts[0].Communities[0].Patterns[0]
	if pa != pb {
		t.Fatalf("canonicalization disagrees: %q vs %q", pa, pb)
	}
}

func TestDecodeAdvertBatchRejects(t *testing.T) {
	cases := map[string]func(*AdvertBatch){
		"empty from":       func(b *AdvertBatch) { b.From = "" },
		"long origin":      func(b *AdvertBatch) { b.Adverts[0].Origin = strings.Repeat("x", MaxOriginLen+1) },
		"negative members": func(b *AdvertBatch) { b.Adverts[0].Communities[0].Members = -1 },
		"selectivity > 1":  func(b *AdvertBatch) { b.Adverts[0].Communities[0].Selectivity = 1.5 },
		"bad pattern":      func(b *AdvertBatch) { b.Adverts[0].Communities[0].Patterns[0] = "/a[" },
		"patternless aggr": func(b *AdvertBatch) { b.Adverts[0].Communities[0].Patterns = nil },
		"negative hops":    func(b *AdvertBatch) { b.Adverts[0].Hops = -1 },
		"excessive hops":   func(b *AdvertBatch) { b.Adverts[0].Hops = MaxTTL + 1 },
	}
	for name, mutate := range cases {
		b := validBatch()
		mutate(&b)
		b.Proto = ProtocolVersion
		data, err := jsonMarshalUnchecked(b)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		if _, err := DecodeAdvertBatch(data); err == nil {
			t.Errorf("%s: decode accepted invalid batch", name)
		}
	}
	if _, err := DecodeAdvertBatch([]byte(`{"proto":2,"from":"n"}`)); err == nil {
		t.Error("decode accepted wrong protocol version")
	}
	if _, err := DecodeAdvertBatch([]byte("not json")); err == nil {
		t.Error("decode accepted non-JSON")
	}
}

func TestPublicationRoundTrip(t *testing.T) {
	p := Publication{From: "a", Origin: "b", Seq: 42, TTL: 7, XML: "<doc><x/></doc>"}
	enc, err := EncodePublication(p)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodePublication(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	p.Proto = ProtocolVersion
	if !reflect.DeepEqual(p, dec) {
		t.Fatalf("round trip changed publication: %+v vs %+v", p, dec)
	}
	for name, bad := range map[string]Publication{
		"empty doc":    {From: "a", Origin: "b", TTL: 1},
		"negative ttl": {From: "a", Origin: "b", TTL: -1, XML: "<x/>"},
		"huge ttl":     {From: "a", Origin: "b", TTL: MaxTTL + 1, XML: "<x/>"},
		"no origin":    {From: "a", TTL: 1, XML: "<x/>"},
	} {
		if _, err := EncodePublication(bad); err == nil {
			t.Errorf("%s: encode accepted invalid publication", name)
		}
	}
}

func TestInfoRoundTrip(t *testing.T) {
	i := Info{ID: "n1", Peers: []string{"n2"}, ForwardsSent: 9}
	enc, err := EncodeInfo(i)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeInfo(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.ID != "n1" || dec.ForwardsSent != 9 {
		t.Fatalf("bad decode: %+v", dec)
	}
	if _, err := DecodeInfo([]byte(`{"proto":1,"id":""}`)); err == nil {
		t.Error("decode accepted empty id")
	}
}
