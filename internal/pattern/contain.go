package pattern

// Containment and minimization of tree patterns.
//
// The paper (Section 1) discusses containment — p contains q, written
// q ⊑ p, iff every document matching q also matches p — as the
// inadequate-but-classical proximity relation that similarity metrics
// replace, and cites pattern minimization (Amer-Yahia et al., SIGMOD'01;
// Wood, WebDB'01) as the standard preprocessing for pattern queries.
// Both are useful to a content-based router (e.g. to collapse redundant
// subscriptions before clustering), so they are provided here.
//
// Contains implements the classical homomorphism test. For patterns
// combining descendants, wildcards and branching the test is sound but
// not complete (containment for XP{//,*,[]} is coNP-complete; the
// homomorphism characterization is exact for the fragments XP{//,[]}
// and XP{*,[]} — Miklau & Suciu, JACM'04). A true return value is
// always correct; a false may be a false negative only when "//", "*"
// and branching interact.

// edge is a pattern edge in axis form: the descendant operator nodes of
// the tree form are folded into edges labeled with their axis.
type edge struct {
	// desc is true for a descendant-axis edge (depth ≥ 1), false for a
	// child-axis edge (depth exactly 1).
	desc bool
	to   *axisNode
}

// axisNode is a pattern node in axis form: labels are tags or "*" only.
type axisNode struct {
	label string // tag or Wildcard; Root for the anchor node
	edges []edge
}

// toAxisForm converts the subtree rooted at n (a tree-form pattern node)
// into axis form. Descendant-operator nodes disappear into edge labels.
func toAxisForm(n *Node) *axisNode {
	out := &axisNode{label: n.Label}
	for _, c := range n.Children {
		if c.Label == Descendant {
			// The operator has exactly one child (Validate enforces it).
			out.edges = append(out.edges, edge{desc: true, to: toAxisForm(c.Children[0])})
		} else {
			out.edges = append(out.edges, edge{desc: false, to: toAxisForm(c)})
		}
	}
	return out
}

// Contains reports whether p contains q (q ⊑ p): every document
// matching q also matches p. Sound; see the completeness caveat above.
func Contains(p, q *Pattern) bool {
	if p == nil || q == nil || p.Root == nil || q.Root == nil {
		return false
	}
	// The empty pattern contains everything.
	if len(p.Root.Children) == 0 {
		return true
	}
	ph := toAxisForm(p.Root)
	qh := toAxisForm(q.Root)
	m := &homMatcher{memo: make(map[[2]*axisNode]bool)}
	// Every root constraint of p must be witnessed at q's root.
	for _, pe := range ph.edges {
		if !m.edgeMaps(pe, qh, true) {
			return false
		}
	}
	return true
}

// Equivalent reports whether p and q contain each other.
func Equivalent(p, q *Pattern) bool {
	return Contains(p, q) && Contains(q, p)
}

type homMatcher struct {
	memo map[[2]*axisNode]bool
}

// hom reports whether the p-subtree rooted at u can be homomorphically
// mapped onto the q-subtree rooted at v: labels are compatible
// (whatever v matches, u accepts) and every edge of u maps to an
// appropriate edge/path of v.
func (m *homMatcher) hom(u, v *axisNode) bool {
	key := [2]*axisNode{u, v}
	if r, ok := m.memo[key]; ok {
		return r
	}
	m.memo[key] = false // cycle-safe default; the structures are acyclic
	res := m.labelOK(u, v)
	if res {
		for _, pe := range u.edges {
			if !m.edgeMaps(pe, v, false) {
				res = false
				break
			}
		}
	}
	m.memo[key] = res
	return res
}

// labelOK: any document node v matches also satisfies u's label test.
func (m *homMatcher) labelOK(u, v *axisNode) bool {
	if u.label == Wildcard {
		return true
	}
	// u is a concrete tag: v must be the same tag (a wildcard v matches
	// nodes of other tags too).
	return u.label == v.label
}

// edgeMaps reports whether p-edge pe, anchored at q-node v, is entailed
// by q's structure. atRoot adapts the root semantics: p's root children
// constrain the document root itself, so a child-axis edge at the root
// maps onto q's root edges directly.
func (m *homMatcher) edgeMaps(pe edge, v *axisNode, atRoot bool) bool {
	_ = atRoot // root and inner anchoring share the same edge semantics
	if !pe.desc {
		// Child axis: must be witnessed by a child-axis edge of v.
		for _, qe := range v.edges {
			if !qe.desc && m.hom(pe.to, qe.to) {
				return true
			}
		}
		return false
	}
	// Descendant axis (depth ≥ 1): witnessed by any non-empty q-path.
	return m.descendantMaps(pe.to, v)
}

// descendantMaps reports whether target can be mapped at some node
// strictly below v in q.
func (m *homMatcher) descendantMaps(target *axisNode, v *axisNode) bool {
	for _, qe := range v.edges {
		if m.hom(target, qe.to) {
			return true
		}
		if m.descendantMaps(target, qe.to) {
			return true
		}
	}
	return false
}

// subsumesConstraint reports whether constraint a, attached to some
// context node, is implied by constraint b attached to the same context
// node (b ⊑ a as single-child constraint subtrees): whenever b holds, a
// holds. Both a and b are tree-form children of the same parent.
func subsumesConstraint(a, b *Node) bool {
	m := &homMatcher{memo: make(map[[2]*axisNode]bool)}
	anchor := &axisNode{label: Root}
	var ae, be edge
	if a.Label == Descendant {
		ae = edge{desc: true, to: toAxisForm(a.Children[0])}
	} else {
		ae = edge{desc: false, to: toAxisForm(a)}
	}
	if b.Label == Descendant {
		be = edge{desc: true, to: toAxisForm(b.Children[0])}
	} else {
		be = edge{desc: false, to: toAxisForm(b)}
	}
	anchor.edges = []edge{be}
	return m.edgeMaps(ae, anchor, false)
}

// Minimize returns an equivalent pattern with redundant branches
// removed: a child constraint implied by one of its siblings is dropped
// (Amer-Yahia et al., SIGMOD'01 — here using the sound homomorphism
// test, so minimization never removes a non-redundant branch). The
// input is not modified.
func (p *Pattern) Minimize() *Pattern {
	out := p.Clone()
	if out.Root != nil {
		minimizeNode(out.Root)
		// Dropping a branch can change subtree canonical keys, so a
		// canonical input's child order may no longer be sorted — the
		// minimized clone must re-canonicalize before String/Equal.
		out.canonical = false
	}
	return out
}

func minimizeNode(n *Node) {
	// Bottom-up: minimize children's subtrees first.
	for _, c := range n.Children {
		minimizeNode(c)
	}
	if len(n.Children) < 2 {
		return
	}
	// Drop any child implied by a kept sibling. Mutually-subsuming
	// (equivalent) children: keep the lexicographically smallest
	// canonical form for determinism.
	keep := make([]bool, len(n.Children))
	for i := range keep {
		keep[i] = true
	}
	keys := make([]string, len(n.Children))
	for i, c := range n.Children {
		keys[i] = (&Pattern{Root: &Node{Label: Root, Children: []*Node{cloneNode(c)}}}).Canonicalize().String()
	}
	for i, ci := range n.Children {
		if !keep[i] {
			continue
		}
		for j, cj := range n.Children {
			if i == j || !keep[j] || !keep[i] {
				continue
			}
			// ci is redundant if cj implies it.
			if subsumesConstraint(ci, cj) {
				if subsumesConstraint(cj, ci) {
					// Equivalent: drop the one with the larger key;
					// tie-break on index to guarantee progress.
					if keys[i] > keys[j] || (keys[i] == keys[j] && i > j) {
						keep[i] = false
					} else {
						keep[j] = false
					}
				} else {
					keep[i] = false
				}
			}
		}
	}
	var kept []*Node
	for i, c := range n.Children {
		if keep[i] {
			kept = append(kept, c)
		}
	}
	n.Children = kept
}
