package pattern

import (
	"math/rand"
	"testing"

	"treesim/internal/xmltree"
)

func TestContainsBasics(t *testing.T) {
	cases := []struct {
		p, q string // does p contain q?
		want bool
	}{
		{"/a", "/a", true},
		{"/a", "/b", false},
		{"/a", "/a/b", true},   // more constrained q
		{"/a/b", "/a", false},  // q is weaker
		{"//b", "/a/b", true},  // descendant generalizes a path
		{"/a/b", "//b", false}, // but not vice versa
		{"/*", "/a", true},     // wildcard generalizes a tag
		{"/a", "/*", false},    // a wildcard doc-root may not be a
		{"//*", "/a/b", true},  // something exists below the root? root itself qualifies
		{"/a[b]", "/a[b][c]", true},
		{"/a[b][c]", "/a[b]", false},
		{"/a//c", "/a/b/c", true},
		{"/a/b/c", "/a//c", false},
		{"//c", "/a//c", true},
		{"/a[//x]", "/a/b/x", true},
		{"/a[//x]", "/a/x", true}, // depth exactly 1 is a valid ≥1 path
		{"/.", "/a/b", true},      // the empty pattern contains all
		{"/a", "/.", false},
		{"/a/*/c", "/a/b/c", true},
		{"/a/b/c", "/a/*/c", false},
		{"//b[c]", "/a/b[c][d]", true},
		{"//b[c]", "/a/b[d]", false},
	}
	for _, c := range cases {
		p, q := MustParse(c.p), MustParse(c.q)
		if got := Contains(p, q); got != c.want {
			t.Errorf("Contains(%s, %s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestContainsFigure1(t *testing.T) {
	// The paper: "it trivially appears that pc contains pa", and there
	// is no containment between pa and pd.
	pa := MustParse("/media/CD/*/last/Mozart")
	pc := MustParse("/.[//CD]//Mozart")
	pd := MustParse("//composer/last/Mozart")
	if !Contains(pc, pa) {
		t.Error("pc should contain pa")
	}
	if Contains(pa, pc) {
		t.Error("pa should not contain pc")
	}
	if Contains(pa, pd) || Contains(pd, pa) {
		t.Error("pa and pd should be incomparable")
	}
}

func TestEquivalent(t *testing.T) {
	if !Equivalent(MustParse("/a[b][c]"), MustParse("/a[c][b]")) {
		t.Error("branch order should not matter")
	}
	if !Equivalent(MustParse("/a[b][b]"), MustParse("/a[b]")) {
		t.Error("duplicate branches are redundant")
	}
	if Equivalent(MustParse("/a/b"), MustParse("//b")) {
		t.Error("/a/b and //b are not equivalent")
	}
}

// TestContainsSoundness: whenever Contains(p, q) is true, every document
// matching q must match p.
func TestContainsSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	checked := 0
	for trial := 0; trial < 3000 && checked < 400; trial++ {
		p := randomPattern(rng)
		q := randomPattern(rng)
		if !Contains(p, q) {
			continue
		}
		checked++
		for i := 0; i < 30; i++ {
			d := randomDoc(rng)
			if Matches(d, q) && !Matches(d, p) {
				t.Fatalf("unsound: Contains(%s, %s) but doc %s matches q only", p, q, d)
			}
		}
	}
	if checked < 20 {
		t.Fatalf("too few positive containments exercised: %d", checked)
	}
}

func TestContainsReflexiveOnRandomPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		p := randomPattern(rng)
		if !Contains(p, p) {
			t.Fatalf("pattern does not contain itself: %s", p)
		}
	}
}

func TestMinimizeBasics(t *testing.T) {
	cases := map[string]string{
		"/a[b][b]":     "/a/b",
		"/a[b][//b]":   "/a/b",     // b implies //b
		"/a[b/c][b]":   "/a/b/c",   // b/c implies b
		"/a[b][c]":     "/a[b][c]", // nothing redundant
		"/a[*][b]":     "/a/b",     // b implies *
		"/a[//c][b/c]": "/a/b/c",   // b/c implies //c
		"/a/b":         "/a/b",
	}
	for in, want := range cases {
		got := MustParse(in).Minimize()
		wantP := MustParse(want)
		if !got.Equal(wantP) {
			t.Errorf("Minimize(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestMinimizeNested(t *testing.T) {
	// Redundancy below the top level.
	got := MustParse("/a/b[c][c][d]").Minimize()
	if !got.Equal(MustParse("/a/b[c][d]")) {
		t.Errorf("nested Minimize = %s", got)
	}
}

func TestMinimizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		p := randomPattern(rng)
		q := p.Minimize()
		if err := q.Validate(); err != nil {
			t.Fatalf("Minimize(%s) invalid: %v", p, err)
		}
		for i := 0; i < 20; i++ {
			d := randomDoc(rng)
			if Matches(d, p) != Matches(d, q) {
				t.Fatalf("Minimize changed semantics: p=%s q=%s doc=%s", p, q, d)
			}
		}
		if q.Size() > p.Size() {
			t.Fatalf("Minimize grew the pattern: %s -> %s", p, q)
		}
	}
}

func TestMinimizeDoesNotMutateInput(t *testing.T) {
	p := MustParse("/a[b][b]")
	before := p.String()
	_ = p.Minimize()
	if p.String() != before {
		t.Error("Minimize mutated its input")
	}
}

func TestContainsAgainstMatchSemantics(t *testing.T) {
	// Exhaustive-ish cross-check: for pattern pairs over a tiny
	// alphabet, if Contains says yes, no counterexample document may
	// exist among many random docs (soundness); additionally count how
	// often the homomorphism test agrees with a sampled containment
	// oracle, to catch gross incompleteness regressions.
	pats := []string{
		"/a", "/a/b", "//b", "/a[b]", "/a[b][c]", "/a//b", "/*", "//*",
		"/a/*", "/a[b/c]", "//b[c]", "/a[//c]",
	}
	rng := rand.New(rand.NewSource(31))
	var docs []*xmltree.Tree
	for i := 0; i < 400; i++ {
		docs = append(docs, randomDoc(rng))
	}
	agree, disagree := 0, 0
	for _, ps := range pats {
		for _, qs := range pats {
			p, q := MustParse(ps), MustParse(qs)
			hom := Contains(p, q)
			sampled := true // "no counterexample found"
			for _, d := range docs {
				if Matches(d, q) && !Matches(d, p) {
					sampled = false
					break
				}
			}
			if hom && !sampled {
				t.Fatalf("unsound: Contains(%s,%s)", ps, qs)
			}
			if hom == sampled {
				agree++
			} else {
				disagree++
			}
		}
	}
	// The sampled oracle over-approximates true containment, so some
	// disagreement is expected — but agreement should dominate.
	if agree < disagree {
		t.Errorf("homomorphism test disagrees with sampled oracle too often: %d vs %d", agree, disagree)
	}
}
