package pattern

import (
	"strings"
	"testing"
)

// FuzzParsePattern drives the XPath-subset parser with arbitrary input —
// the broker daemon feeds it straight from the network, so it must
// never panic, and anything it accepts must be a valid pattern that
// survives a serialize/re-parse round trip.
func FuzzParsePattern(f *testing.F) {
	for _, seed := range []string{
		"",
		"/",
		"/a",
		"//a",
		"/a/b[c]//d",
		"/media/CD/*/last/Mozart",
		"//CD[title]",
		"/.[//a]//b",
		"/a[b/c][*]//e",
		"/.[x]",
		"/a[.//b]",
		"///",
		"/a[",
		"[a]",
		"/a]b",
		"/a//",
		"/*",
		"/a[b][c][d]",
		"/a\x00b",
		strings.Repeat("/a", 200),
		strings.Repeat("/a[", 50),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted an invalid pattern: %v", s, verr)
		}
		out := p.String()
		q, err := Parse(out)
		if err != nil {
			t.Fatalf("accepted %q -> %q which does not re-parse: %v", s, out, err)
		}
		if !p.Equal(q) {
			t.Fatalf("round trip changed %q: %s vs %s", s, p, q)
		}
	})
}
