package pattern

import "treesim/internal/xmltree"

// Matches reports whether XML tree T satisfies pattern p (T |= p) under
// the exact semantics of Section 2.
//
// The root node "/." is treated specially: a root child labeled with a
// tag constrains the label of the document root itself; a root child
// "//" re-roots its subtree at some descendant-or-self of the document
// root. Below the root, a pattern node v constrains a context node t:
// a tag or "*" child requires a matching child of t, and "//" requires a
// matching descendant-or-self of t.
//
// Matching is memoized on (document node, pattern node) pairs, giving
// O(|T|·|p|) time per call.
func Matches(t *xmltree.Tree, p *Pattern) bool {
	if p == nil || p.Root == nil {
		return false
	}
	if len(p.Root.Children) == 0 {
		// The empty pattern imposes no constraints: every non-empty
		// document satisfies it.
		return t != nil && t.Root != nil
	}
	if t == nil || t.Root == nil {
		return false
	}
	m := &matcher{memo: make(map[memoKey]bool)}
	for _, v := range p.Root.Children {
		if !m.rootConstraint(t.Root, v) {
			return false
		}
	}
	return true
}

type memoKey struct {
	t *xmltree.Node
	v *Node
}

type matcher struct {
	// memo caches sat(t, v) results. rootConstraint is not memoized: it
	// is evaluated at most once per (descendant, root-child) pair and
	// delegates to sat immediately.
	memo map[memoKey]bool
}

// rootConstraint evaluates a child v of the pattern root against a
// candidate document root t, per the T |= p definition.
func (m *matcher) rootConstraint(t *xmltree.Node, v *Node) bool {
	switch v.Label {
	case Descendant:
		// tr has a descendant t' (possibly tr) such that the subtree
		// rooted at t' satisfies Subtree(v,p) re-rooted at "/.": the
		// operator's single child becomes a root constraint on t'.
		c := v.Children[0]
		return m.existsDescOrSelf(t, func(d *xmltree.Node) bool {
			return m.rootConstraint(d, c)
		})
	case Wildcard:
		for _, v2 := range v.Children {
			if !m.sat(t, v2) {
				return false
			}
		}
		return true
	default: // tag
		if t.Label != v.Label {
			return false
		}
		for _, v2 := range v.Children {
			if !m.sat(t, v2) {
				return false
			}
		}
		return true
	}
}

// sat evaluates (T, t) |= Subtree(v, p): constraint v holds relative to
// context node t.
func (m *matcher) sat(t *xmltree.Node, v *Node) bool {
	key := memoKey{t, v}
	if r, ok := m.memo[key]; ok {
		return r
	}
	// Mark in-progress as false; the recursion is over strictly smaller
	// (descendant, subtree) pairs so cycles cannot occur, this is just a
	// safe default before the computed value is stored.
	var res bool
	switch v.Label {
	case Descendant:
		res = m.existsDescOrSelf(t, func(d *xmltree.Node) bool {
			for _, v2 := range v.Children {
				if !m.sat(d, v2) {
					return false
				}
			}
			return true
		})
	case Wildcard:
		res = m.existsChild(t, func(c *xmltree.Node) bool {
			for _, v2 := range v.Children {
				if !m.sat(c, v2) {
					return false
				}
			}
			return true
		})
	default: // tag
		res = m.existsChild(t, func(c *xmltree.Node) bool {
			if c.Label != v.Label {
				return false
			}
			for _, v2 := range v.Children {
				if !m.sat(c, v2) {
					return false
				}
			}
			return true
		})
	}
	m.memo[key] = res
	return res
}

func (m *matcher) existsChild(t *xmltree.Node, f func(*xmltree.Node) bool) bool {
	for _, c := range t.Children {
		if f(c) {
			return true
		}
	}
	return false
}

func (m *matcher) existsDescOrSelf(t *xmltree.Node, f func(*xmltree.Node) bool) bool {
	if f(t) {
		return true
	}
	for _, c := range t.Children {
		if m.existsDescOrSelf(c, f) {
			return true
		}
	}
	return false
}

// MatchesSkeleton reports whether the skeleton of T satisfies p. The
// document synopsis observes skeleton trees, so this is the semantics the
// estimator approximates; it can differ from Matches on documents where
// same-tag siblings hold disjoint content (skeleton matching
// over-approximates: Matches(T,p) implies MatchesSkeleton(T,p)).
func MatchesSkeleton(t *xmltree.Tree, p *Pattern) bool {
	return Matches(xmltree.Skeleton(t), p)
}
