package pattern

import (
	"sync"

	"treesim/internal/xmltree"
)

// Matches reports whether XML tree T satisfies pattern p (T |= p) under
// the exact semantics of Section 2.
//
// The root node "/." is treated specially: a root child labeled with a
// tag constrains the label of the document root itself; a root child
// "//" re-roots its subtree at some descendant-or-self of the document
// root. Below the root, a pattern node v constrains a context node t:
// a tag or "*" child requires a matching child of t, and "//" requires a
// matching descendant-or-self of t.
//
// Matching is memoized on (document node, pattern node) pairs, giving
// O(|T|·|p|) time per call. The memo is a pooled flat byte slice
// indexed by document-node ordinal × pattern-node ordinal (both
// assigned by a BFS flattening), so the steady state allocates nothing
// — this is the cold-path matcher; the hot multi-pattern paths go
// through the shared forest engine in internal/matching, which uses
// this function as its reference oracle.
func Matches(t *xmltree.Tree, p *Pattern) bool {
	if p == nil || p.Root == nil {
		return false
	}
	if len(p.Root.Children) == 0 {
		// The empty pattern imposes no constraints: every non-empty
		// document satisfies it.
		return t != nil && t.Root != nil
	}
	if t == nil || t.Root == nil {
		return false
	}
	fm := matcherPool.Get().(*FlatMatcher)
	fm.Load(t)
	res := fm.Matches(p)
	matcherPool.Put(fm)
	return res
}

var matcherPool = sync.Pool{New: func() any { return new(FlatMatcher) }}

// FlatMatcher matches many patterns against one document, flattening
// the document only once (Matches flattens per call). Callers that
// evaluate several patterns per document — the prefiltering engine's
// candidate loop — Load the document and then test each pattern. The
// zero value is ready; a FlatMatcher is not safe for concurrent use
// and its arenas are reused across Load calls.
type FlatMatcher struct {
	m        matcher
	nonEmpty bool
}

// Load flattens the document the subsequent Matches calls run against.
func (fm *FlatMatcher) Load(t *xmltree.Tree) {
	fm.nonEmpty = t != nil && t.Root != nil
	if fm.nonEmpty {
		fm.m.doc.Load(t, nil)
	}
}

// Matches reports whether the loaded document satisfies p, with the
// exact Matches semantics.
func (fm *FlatMatcher) Matches(p *Pattern) bool {
	if p == nil || p.Root == nil {
		return false
	}
	if len(p.Root.Children) == 0 {
		return fm.nonEmpty
	}
	if !fm.nonEmpty {
		return false
	}
	m := &fm.m
	m.loadPattern(p)
	m.resetMemo(m.doc.Len())
	// The pattern root is arena node 0; its children are the root
	// constraints. rootConstraint is not memoized: it is evaluated at
	// most once per (descendant, root-child) pair and delegates to sat
	// immediately.
	for vi := m.pstart[0]; vi < m.pstart[0]+m.pcount[0]; vi++ {
		if !m.rootConstraint(0, vi) {
			return false
		}
	}
	return true
}

// matcher evaluates one (document, pattern) pair over flat BFS arenas:
// integer indices instead of pointers, and a flat slice memo instead of
// a map.
type matcher struct {
	doc xmltree.Flat

	// Pattern arena (BFS, node 0 = "/." root): labels and child ranges.
	plabels        []string
	pstart, pcount []int32
	pnodes         []*Node
	np             int

	// memo caches sat(t, v) at index t*np+v: 0 unknown, 1 false, 2 true.
	memo []uint8
}

func (m *matcher) loadPattern(p *Pattern) {
	m.plabels = m.plabels[:0]
	m.pstart = m.pstart[:0]
	m.pcount = m.pcount[:0]
	nodes := m.pnodes[:0]
	nodes = append(nodes, p.Root)
	for i := 0; i < len(nodes); i++ {
		n := nodes[i]
		m.plabels = append(m.plabels, n.Label)
		m.pstart = append(m.pstart, int32(len(nodes)))
		m.pcount = append(m.pcount, int32(len(n.Children)))
		nodes = append(nodes, n.Children...)
	}
	for i := range nodes {
		nodes[i] = nil
	}
	m.pnodes = nodes[:0]
	m.np = len(m.plabels)
}

func (m *matcher) resetMemo(nt int) {
	n := nt * m.np
	if cap(m.memo) < n {
		m.memo = make([]uint8, n)
		return
	}
	m.memo = m.memo[:n]
	clear(m.memo)
}

// rootConstraint evaluates a child v of the pattern root against a
// candidate document root t, per the T |= p definition.
func (m *matcher) rootConstraint(ti, vi int32) bool {
	switch m.plabels[vi] {
	case Descendant:
		// tr has a descendant t' (possibly tr) such that the subtree
		// rooted at t' satisfies Subtree(v,p) re-rooted at "/.": the
		// operator's single child becomes a root constraint on t'.
		if m.pcount[vi] == 0 {
			panic("pattern: descendant operator without child")
		}
		return m.rootDesc(ti, m.pstart[vi])
	case Wildcard:
		return m.allKidsSat(ti, vi)
	default: // tag
		if m.doc.Labels[ti] != m.plabels[vi] {
			return false
		}
		return m.allKidsSat(ti, vi)
	}
}

// rootDesc reports whether some descendant-or-self of document node ti
// satisfies root constraint vi.
func (m *matcher) rootDesc(ti, vi int32) bool {
	if m.rootConstraint(ti, vi) {
		return true
	}
	s, c := m.doc.ChildStart[ti], m.doc.ChildCount[ti]
	for k := s; k < s+c; k++ {
		if m.rootDesc(k, vi) {
			return true
		}
	}
	return false
}

// sat evaluates (T, t) |= Subtree(v, p): constraint v holds relative to
// context node t.
func (m *matcher) sat(ti, vi int32) bool {
	idx := int(ti)*m.np + int(vi)
	if v := m.memo[idx]; v != 0 {
		return v == 2
	}
	var res bool
	switch m.plabels[vi] {
	case Descendant:
		res = m.descSat(ti, vi)
	case Wildcard:
		s, c := m.doc.ChildStart[ti], m.doc.ChildCount[ti]
		for k := s; k < s+c; k++ {
			if m.allKidsSat(k, vi) {
				res = true
				break
			}
		}
	default: // tag
		s, c := m.doc.ChildStart[ti], m.doc.ChildCount[ti]
		for k := s; k < s+c; k++ {
			if m.doc.Labels[k] == m.plabels[vi] && m.allKidsSat(k, vi) {
				res = true
				break
			}
		}
	}
	if res {
		m.memo[idx] = 2
	} else {
		m.memo[idx] = 1
	}
	return res
}

// descSat reports whether some descendant-or-self of ti satisfies every
// child constraint of descendant-operator node vi.
func (m *matcher) descSat(ti, vi int32) bool {
	if m.allKidsSat(ti, vi) {
		return true
	}
	s, c := m.doc.ChildStart[ti], m.doc.ChildCount[ti]
	for k := s; k < s+c; k++ {
		if m.descSat(k, vi) {
			return true
		}
	}
	return false
}

// allKidsSat reports whether document node ti satisfies every child
// constraint of pattern node vi.
func (m *matcher) allKidsSat(ti, vi int32) bool {
	s, c := m.pstart[vi], m.pcount[vi]
	for k := s; k < s+c; k++ {
		if !m.sat(ti, k) {
			return false
		}
	}
	return true
}

// MatchesSkeleton reports whether the skeleton of T satisfies p. The
// document synopsis observes skeleton trees, so this is the semantics the
// estimator approximates; it can differ from Matches on documents where
// same-tag siblings hold disjoint content (skeleton matching
// over-approximates: Matches(T,p) implies MatchesSkeleton(T,p)).
func MatchesSkeleton(t *xmltree.Tree, p *Pattern) bool {
	return Matches(xmltree.Skeleton(t), p)
}
