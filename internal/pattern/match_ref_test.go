package pattern

import (
	"math/rand"
	"testing"

	"treesim/internal/xmltree"
)

// matchesRef is a direct, unoptimized transcription of the Section 2
// semantics (the pre-arena implementation, minus the memo). The
// arena-based Matches must agree with it on every input.
func matchesRef(t *xmltree.Tree, p *Pattern) bool {
	if p == nil || p.Root == nil {
		return false
	}
	if len(p.Root.Children) == 0 {
		return t != nil && t.Root != nil
	}
	if t == nil || t.Root == nil {
		return false
	}
	for _, v := range p.Root.Children {
		if !refRootConstraint(t.Root, v) {
			return false
		}
	}
	return true
}

func refRootConstraint(t *xmltree.Node, v *Node) bool {
	switch v.Label {
	case Descendant:
		c := v.Children[0]
		return refExistsDescOrSelf(t, func(d *xmltree.Node) bool {
			return refRootConstraint(d, c)
		})
	case Wildcard:
		return refAllSat(t, v.Children)
	default:
		return t.Label == v.Label && refAllSat(t, v.Children)
	}
}

func refSat(t *xmltree.Node, v *Node) bool {
	switch v.Label {
	case Descendant:
		return refExistsDescOrSelf(t, func(d *xmltree.Node) bool {
			return refAllSat(d, v.Children)
		})
	case Wildcard:
		for _, c := range t.Children {
			if refAllSat(c, v.Children) {
				return true
			}
		}
	default:
		for _, c := range t.Children {
			if c.Label == v.Label && refAllSat(c, v.Children) {
				return true
			}
		}
	}
	return false
}

func refAllSat(t *xmltree.Node, vs []*Node) bool {
	for _, v := range vs {
		if !refSat(t, v) {
			return false
		}
	}
	return true
}

func refExistsDescOrSelf(t *xmltree.Node, f func(*xmltree.Node) bool) bool {
	if f(t) {
		return true
	}
	for _, c := range t.Children {
		if refExistsDescOrSelf(c, f) {
			return true
		}
	}
	return false
}

// randTreeNode and randPatternNode generate small random inputs biased
// toward collisions (tiny label alphabet) so both match outcomes occur.
func randTreeNode(rng *rand.Rand, depth int) *xmltree.Node {
	labels := []string{"a", "b", "c", "d", "//", "*"}
	n := &xmltree.Node{Label: labels[rng.Intn(len(labels))]}
	if depth < 4 {
		for i := 0; i < rng.Intn(4); i++ {
			n.Children = append(n.Children, randTreeNode(rng, depth+1))
		}
	}
	return n
}

func randPatternNode(rng *rand.Rand, depth int) *Node {
	labels := []string{"a", "b", "c", "d", Wildcard}
	var n *Node
	if depth > 0 && rng.Intn(5) == 0 {
		// Descendant operator with its single mandatory child.
		n = &Node{Label: Descendant}
		child := randPatternNode(rng, depth+1)
		child.Label = labels[rng.Intn(len(labels))] // no "//" under "//"
		n.Children = []*Node{child}
		return n
	}
	n = &Node{Label: labels[rng.Intn(len(labels))]}
	if depth < 3 {
		for i := 0; i < rng.Intn(3); i++ {
			n.Children = append(n.Children, randPatternNode(rng, depth+1))
		}
	}
	return n
}

func TestMatchesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var matched, unmatched int
	for trial := 0; trial < 2000; trial++ {
		doc := &xmltree.Tree{Root: randTreeNode(rng, 0)}
		p := New()
		for i := 0; i < 1+rng.Intn(3); i++ {
			p.Root.Children = append(p.Root.Children, randPatternNode(rng, 1))
		}
		want := matchesRef(doc, p)
		if got := Matches(doc, p); got != want {
			t.Fatalf("doc %s, pattern %s: Matches = %v, reference = %v",
				doc, p, got, want)
		}
		if want {
			matched++
		} else {
			unmatched++
		}
	}
	if matched == 0 || unmatched == 0 {
		t.Fatalf("degenerate trial mix: %d matched, %d unmatched", matched, unmatched)
	}
}

func TestMatchesEdgeCases(t *testing.T) {
	doc := xmltree.New("a")
	cases := []struct {
		doc  *xmltree.Tree
		pat  *Pattern
		want bool
	}{
		{nil, MustParse("/a"), false},
		{&xmltree.Tree{}, MustParse("/a"), false},
		{doc, nil, false},
		{doc, &Pattern{}, false},
		{nil, New(), false}, // empty pattern, empty doc
		{&xmltree.Tree{}, New(), false},
		{doc, New(), true},           // empty pattern matches any non-empty doc
		{doc, MustParse("/."), true}, // explicit root form of the empty pattern
		{doc, MustParse("/a"), true},
		{doc, MustParse("/b"), false},
		{doc, MustParse("//a"), true}, // root "//" may bind the root itself
		{doc, MustParse("/*"), true},
	}
	for i, c := range cases {
		if got := Matches(c.doc, c.pat); got != c.want {
			t.Errorf("case %d: Matches = %v, want %v", i, got, c.want)
		}
	}
}
