package pattern

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses the XPath subset used by the paper into a tree pattern.
//
// Grammar (whitespace-insensitive around tokens):
//
//	pattern  = "/." pred* chain?          explicit root form
//	         | chain                      shorthand when the root has one child
//	chain    = ("/" | "//") step ( ("/" | "//") step )*
//	step     = (name | "*") pred*
//	pred     = "[" rel "]"
//	rel      = ("//" | ".//")? step ( ("/" | "//") step )*
//
// Examples: "/media/CD/*/last/Mozart", "//CD/Mozart",
// "/.[//CD]//Mozart", "//composer[first]/last/Mozart".
func Parse(s string) (*Pattern, error) {
	p := &parser{in: strings.TrimSpace(s)}
	pat, err := p.parsePattern()
	if err != nil {
		return nil, fmt.Errorf("pattern: parse %q: %w", s, err)
	}
	if err := pat.Validate(); err != nil {
		return nil, fmt.Errorf("pattern: parse %q: %w", s, err)
	}
	return pat, nil
}

// MustParse is Parse that panics on error, for tests and constants.
func MustParse(s string) *Pattern {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	in  string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.in) }

func (p *parser) peek(tok string) bool {
	return strings.HasPrefix(p.in[p.pos:], tok)
}

func (p *parser) accept(tok string) bool {
	if p.peek(tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

// acceptRoot consumes the explicit root token "/.". The "." must end
// the token: in "/.0" the first step is the label ".0" (labels may
// contain dots), not the root — treating "/." greedily there would make
// Parse disagree with its own String output.
func (p *parser) acceptRoot() bool {
	if !p.peek(Root) {
		return false
	}
	if rest := p.in[p.pos+len(Root):]; rest != "" && rest[0] != '[' && rest[0] != '/' {
		return false
	}
	p.pos += len(Root)
	return true
}

func (p *parser) parsePattern() (*Pattern, error) {
	pat := New()
	if p.in == "" || p.in == Root {
		p.pos = len(p.in)
		return pat, nil // empty pattern
	}
	if p.acceptRoot() {
		// Explicit root: predicates then an optional chain, all of
		// which become children of "/.".
		for p.peek("[") {
			c, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			pat.Root.Children = append(pat.Root.Children, c)
		}
		if !p.eof() {
			c, err := p.parseChain()
			if err != nil {
				return nil, err
			}
			pat.Root.Children = append(pat.Root.Children, c)
		}
	} else {
		c, err := p.parseChain()
		if err != nil {
			return nil, err
		}
		pat.Root.Children = append(pat.Root.Children, c)
	}
	if !p.eof() {
		return nil, fmt.Errorf("trailing input at offset %d", p.pos)
	}
	return pat, nil
}

// parseChain parses ("/"|"//") step ( ... )* and returns the topmost
// node of the resulting spine.
func (p *parser) parseChain() (*Node, error) {
	var top, cur *Node
	for {
		var sep string
		switch {
		case p.accept(Descendant):
			sep = Descendant
		case p.accept("/"):
			sep = "/"
		default:
			if top == nil {
				return nil, fmt.Errorf("expected '/' or '//' at offset %d", p.pos)
			}
			return top, nil
		}
		step, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		attach := step
		if sep == Descendant {
			attach = &Node{Label: Descendant, Children: []*Node{step}}
		}
		if top == nil {
			top = attach
		} else {
			cur.Children = append(cur.Children, attach)
		}
		cur = step
		if p.eof() || p.peek("]") {
			return top, nil
		}
	}
}

// parseStep parses (name | "*") pred*.
func (p *parser) parseStep() (*Node, error) {
	var label string
	if p.accept(Wildcard) {
		label = Wildcard
	} else {
		start := p.pos
		for !p.eof() && !isDelim(p.in[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return nil, fmt.Errorf("expected name or '*' at offset %d", p.pos)
		}
		label = p.in[start:p.pos]
		if label == "." || label == ".." {
			return nil, fmt.Errorf("axis step %q is not part of the language (offset %d)", label, start)
		}
		// Only space, tab and newline are step delimiters, but Parse
		// trims every Unicode space — a label holding any of the others
		// (\v, NBSP, …) would not survive a serialize/re-parse round
		// trip, so names exclude whitespace entirely.
		if strings.ContainsFunc(label, unicode.IsSpace) {
			return nil, fmt.Errorf("whitespace in name at offset %d", start)
		}
	}
	n := &Node{Label: label}
	for p.peek("[") {
		c, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, c)
	}
	return n, nil
}

// parsePred parses "[" rel "]" and returns the subtree's top node.
func (p *parser) parsePred() (*Node, error) {
	if !p.accept("[") {
		return nil, fmt.Errorf("expected '[' at offset %d", p.pos)
	}
	n, err := p.parseRel()
	if err != nil {
		return nil, err
	}
	if !p.accept("]") {
		return nil, fmt.Errorf("expected ']' at offset %d", p.pos)
	}
	return n, nil
}

// parseRel parses a relative path: optional leading "//" (or ".//"),
// then a step chain.
func (p *parser) parseRel() (*Node, error) {
	// ".//x" is accepted as a synonym for "//x". The dot is part of that
	// token only — a bare "." before a step would swallow the first
	// character of dotted labels like ".0".
	if p.peek("." + Descendant) {
		p.accept(".")
	}
	if p.accept(Descendant) {
		step, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		top := &Node{Label: Descendant, Children: []*Node{step}}
		if err := p.parseRelTail(step); err != nil {
			return nil, err
		}
		return top, nil
	}
	step, err := p.parseStep()
	if err != nil {
		return nil, err
	}
	if err := p.parseRelTail(step); err != nil {
		return nil, err
	}
	return step, nil
}

// parseRelTail continues a relative chain below cur until ']' or end.
func (p *parser) parseRelTail(cur *Node) error {
	for {
		var sep string
		switch {
		case p.accept(Descendant):
			sep = Descendant
		case p.accept("/"):
			sep = "/"
		default:
			return nil
		}
		step, err := p.parseStep()
		if err != nil {
			return err
		}
		attach := step
		if sep == Descendant {
			attach = &Node{Label: Descendant, Children: []*Node{step}}
		}
		cur.Children = append(cur.Children, attach)
		cur = step
	}
}

func isDelim(c byte) bool {
	switch c {
	case '/', '[', ']', '*', ' ', '\t', '\n', '(', ')':
		return true
	}
	return false
}

// String renders the pattern in the canonical XPath-subset form accepted
// by Parse. The pattern is canonicalized first, so equal patterns render
// identically.
func (p *Pattern) String() string {
	if p == nil || p.Root == nil || len(p.Root.Children) == 0 {
		return Root
	}
	q := p
	if !p.canonical {
		// Render from a canonicalized clone so String never reorders the
		// caller's pattern; an already-canonical pattern renders in
		// place (String only reads).
		q = p.Clone().Canonicalize()
	}
	kids := q.Root.Children
	var b strings.Builder
	if len(kids) > 1 {
		b.WriteString(Root)
		for _, c := range kids[:len(kids)-1] {
			b.WriteByte('[')
			b.WriteString(relChain(c))
			b.WriteByte(']')
		}
	}
	b.WriteString(absChain(kids[len(kids)-1]))
	return b.String()
}

// absChain renders a root child as an absolute chain ("/a..." or
// "//a...").
func absChain(n *Node) string {
	if n.Label == Descendant {
		return Descendant + stepChain(n.Children[0])
	}
	return "/" + stepChain(n)
}

// relChain renders a subtree as a relative chain suitable for a
// predicate.
func relChain(n *Node) string {
	if n.Label == Descendant {
		return Descendant + stepChain(n.Children[0])
	}
	return stepChain(n)
}

// stepChain renders a step node: its label, predicates for all children
// but the last, and the last child as the chain continuation.
func stepChain(n *Node) string {
	var b strings.Builder
	b.WriteString(n.Label)
	if len(n.Children) == 0 {
		return b.String()
	}
	for _, c := range n.Children[:len(n.Children)-1] {
		b.WriteByte('[')
		b.WriteString(relChain(c))
		b.WriteByte(']')
	}
	last := n.Children[len(n.Children)-1]
	if last.Label == Descendant {
		b.WriteString(Descendant)
		b.WriteString(stepChain(last.Children[0]))
	} else {
		b.WriteByte('/')
		b.WriteString(stepChain(last))
	}
	return b.String()
}
