// Package pattern implements the tree-pattern subscription language of
// Chand, Felber and Garofalakis (ICDE'07, Section 2): unordered
// node-labeled trees whose labels are element tags, the wildcard "*" or
// the descendant operator "//", rooted at a special node labeled "/.".
//
// The package provides a parser and serializer for the XPath subset the
// paper uses, the label partial order ⪯, exact match semantics T |= p
// against XML trees (used for ground truth), and the root-merge
// construction used to evaluate conjunctions P(p ∧ q).
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"treesim/internal/xmltree"
)

// Special labels. Any other label is an element tag.
const (
	// Root is the label of every pattern's root node ("/." in the paper).
	Root = "/."
	// Wildcard matches any single tag ("*").
	Wildcard = "*"
	// Descendant is the descendant operator ("//"): some (possibly
	// empty) path.
	Descendant = "//"
)

// Node is a node of a tree pattern.
type Node struct {
	// Label is a tag name, Wildcard, Descendant, or (for the root
	// node only) Root.
	Label string
	// Children are the node's child constraints. Order is irrelevant to
	// the semantics; Canonicalize produces a deterministic order.
	Children []*Node
}

// Pattern is a tree-pattern subscription. Root.Label is always "/.".
type Pattern struct {
	Root *Node

	// canonical records that Canonicalize has run and no canonicalizing
	// API has restructured the tree since, so repeat canonicalizations
	// (String, Equal, advert building on live registries) skip the
	// clone-and-sort. Callers that mutate Root's subtree directly after
	// canonicalizing must not rely on later String calls re-sorting —
	// the supported route is to mutate a Clone.
	canonical bool
}

// New returns an empty pattern (root only). An empty pattern matches
// every document.
func New() *Pattern {
	return &Pattern{Root: &Node{Label: Root}}
}

// AddChild appends a new child with the given label and returns it.
func (n *Node) AddChild(label string) *Node {
	c := &Node{Label: label}
	n.Children = append(n.Children, c)
	return c
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// LabelLeq reports a ⪯ b under the paper's partial order on labels:
// tag ⪯ tag' iff equal; tag ⪯ * ⪯ //. It answers "can a pattern node
// labeled b stand for a document node labeled a".
func LabelLeq(a, b string) bool {
	switch b {
	case Descendant:
		return true
	case Wildcard:
		return a != Descendant // any concrete tag or "*" is ⪯ "*"
	default:
		return a == b
	}
}

// Size returns the number of nodes in the pattern, excluding the root
// "/." marker (so the empty pattern has size 0).
func (p *Pattern) Size() int {
	if p == nil || p.Root == nil {
		return 0
	}
	return countNodes(p.Root) - 1
}

func countNodes(n *Node) int {
	s := 1
	for _, c := range n.Children {
		s += countNodes(c)
	}
	return s
}

// Height returns the height of the pattern: the number of nodes on the
// longest root-to-leaf path, excluding the "/." root. The empty pattern
// has height 0.
func (p *Pattern) Height() int {
	if p == nil || p.Root == nil {
		return 0
	}
	var h func(n *Node) int
	h = func(n *Node) int {
		max := 0
		for _, c := range n.Children {
			if d := h(c); d > max {
				max = d
			}
		}
		return max + 1
	}
	return h(p.Root) - 1
}

// Validate checks the structural well-formedness rules of Section 2:
// the root is labeled "/."; "/." appears nowhere else; every descendant
// operator has exactly one child, which is a regular node or a wildcard;
// labels are non-empty.
func (p *Pattern) Validate() error {
	if p == nil || p.Root == nil {
		return fmt.Errorf("pattern: nil pattern")
	}
	if p.Root.Label != Root {
		return fmt.Errorf("pattern: root must be labeled %q, got %q", Root, p.Root.Label)
	}
	var walk func(n *Node, isRoot bool) error
	walk = func(n *Node, isRoot bool) error {
		if !isRoot {
			switch n.Label {
			case Root:
				return fmt.Errorf("pattern: %q may only label the root", Root)
			case "":
				return fmt.Errorf("pattern: empty label")
			case Descendant:
				if len(n.Children) != 1 {
					return fmt.Errorf("pattern: descendant operator must have exactly one child, has %d", len(n.Children))
				}
				c := n.Children[0]
				if c.Label == Descendant {
					return fmt.Errorf("pattern: descendant operator cannot be the child of another descendant operator")
				}
			}
		}
		for _, c := range n.Children {
			if err := walk(c, false); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(p.Root, true)
}

// Clone returns a deep copy of the pattern.
func (p *Pattern) Clone() *Pattern {
	if p == nil || p.Root == nil {
		return New()
	}
	return &Pattern{Root: cloneNode(p.Root), canonical: p.canonical}
}

func cloneNode(n *Node) *Node {
	cp := &Node{Label: n.Label}
	if len(n.Children) > 0 {
		cp.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = cloneNode(c)
		}
	}
	return cp
}

// Canonicalize sorts every child list by the canonical string of the
// child subtree, producing a deterministic representation of the
// unordered pattern. It modifies the pattern in place and returns it.
// An already-canonical pattern (one Canonicalize has seen before) is
// returned unchanged without re-sorting.
func (p *Pattern) Canonicalize() *Pattern {
	if p != nil && p.Root != nil && !p.canonical {
		canonNode(p.Root)
		p.canonical = true
	}
	return p
}

func canonNode(n *Node) string {
	keys := make([]string, len(n.Children))
	for i, c := range n.Children {
		keys[i] = canonNode(c)
	}
	sort.Sort(&byKey{keys: keys, nodes: n.Children})
	var b strings.Builder
	b.WriteString(n.Label)
	if len(n.Children) > 0 {
		b.WriteByte('(')
		b.WriteString(strings.Join(keys, ","))
		b.WriteByte(')')
	}
	return b.String()
}

type byKey struct {
	keys  []string
	nodes []*Node
}

func (s *byKey) Len() int           { return len(s.keys) }
func (s *byKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *byKey) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.nodes[i], s.nodes[j] = s.nodes[j], s.nodes[i]
}

// Equal reports whether two patterns are identical as unordered trees.
func (p *Pattern) Equal(q *Pattern) bool {
	if p == nil || q == nil {
		return p == q
	}
	a, b := p, q
	if !a.canonical {
		a = p.Clone().Canonicalize()
	}
	if !b.canonical {
		b = q.Clone().Canonicalize()
	}
	return equalNodes(a.Root, b.Root)
}

func equalNodes(a, b *Node) bool {
	if a.Label != b.Label || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !equalNodes(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// MergeRoots builds the conjunction pattern p ∧ q by merging the root
// nodes of p and q (paper, Section 4): the result's root children are
// the union of both patterns' root children. The inputs are not
// modified.
func MergeRoots(p, q *Pattern) *Pattern {
	out := New()
	for _, c := range p.Root.Children {
		out.Root.Children = append(out.Root.Children, cloneNode(c))
	}
	for _, c := range q.Root.Children {
		out.Root.Children = append(out.Root.Children, cloneNode(c))
	}
	return out
}

// FromTree converts an XML tree into the pattern that requires exactly
// the tree's label structure (no wildcards or descendant operators).
// Useful in tests: FromTree(T) always matches T.
func FromTree(t *xmltree.Tree) *Pattern {
	p := New()
	if t == nil || t.Root == nil {
		return p
	}
	p.Root.Children = []*Node{treeToNode(t.Root)}
	return p
}

func treeToNode(n *xmltree.Node) *Node {
	out := &Node{Label: n.Label}
	for _, c := range n.Children {
		out.Children = append(out.Children, treeToNode(c))
	}
	return out
}
