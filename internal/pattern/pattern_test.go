package pattern

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"treesim/internal/xmltree"
)

func TestParseBasic(t *testing.T) {
	cases := map[string]string{
		"/a":                      "/a",
		"//a":                     "//a",
		"/a/b":                    "/a/b",
		"/a//b":                   "/a//b",
		"/a/*/c":                  "/a/*/c",
		"/a[b]/c":                 "/a[b]/c",
		"/a[b][c]/d":              "/a[b][c]/d",
		"/a[b/c]//d":              "/a[//d]/b/c", // canonical form reorders children
		"/a[//x]/b":               "/a[//x]/b",
		"/a[.//x]/b":              "/a[//x]/b",
		"/.[//CD]//Mozart":        "/.[//CD]//Mozart",
		"/.":                      "/.",
		"":                        "/.",
		"/media/CD/*/last/Mozart": "/media/CD/*/last/Mozart",
	}
	for in, want := range cases {
		p, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if got := p.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"a",      // relative path at top level
		"/",      // missing step
		"///a",   // empty step
		"/a[",    // unbalanced
		"/a[b",   // unbalanced
		"/a]",    // stray bracket
		"/a[]",   // empty predicate
		"/a//",   // descendant without child
		"/a[b]x", // trailing garbage
		"/a/./b", // "." is not a step
		"/..",    // not the root marker
		"/a[b]]", // double close
		"/a(b)",  // parens are not part of the language
	}
	for _, s := range bad {
		if p, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error, got %v", s, p)
		}
	}
}

func TestParseStructure(t *testing.T) {
	// /a[b]/c: root child a with children {b, c}.
	p := MustParse("/a[b]/c")
	if len(p.Root.Children) != 1 {
		t.Fatalf("root children = %d, want 1", len(p.Root.Children))
	}
	a := p.Root.Children[0]
	if a.Label != "a" || len(a.Children) != 2 {
		t.Fatalf("node a = %q with %d children", a.Label, len(a.Children))
	}
	// //a: root child "//" whose only child is a.
	p2 := MustParse("//a")
	d := p2.Root.Children[0]
	if d.Label != Descendant || len(d.Children) != 1 || d.Children[0].Label != "a" {
		t.Fatalf("//a parsed wrong: %v", p2)
	}
	// /.[x][y] root with two children.
	p3 := MustParse("/.[x][y]")
	if len(p3.Root.Children) != 2 {
		t.Fatalf("/.[x][y] root children = %d, want 2", len(p3.Root.Children))
	}
}

func TestValidate(t *testing.T) {
	// Hand-built invalid patterns.
	p := New()
	d := p.Root.AddChild(Descendant)
	if err := p.Validate(); err == nil {
		t.Error("descendant with no child should be invalid")
	}
	d.AddChild("a")
	if err := p.Validate(); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
	d.AddChild("b")
	if err := p.Validate(); err == nil {
		t.Error("descendant with two children should be invalid")
	}
	p2 := New()
	d2 := p2.Root.AddChild(Descendant)
	d2.AddChild(Descendant).AddChild("a")
	if err := p2.Validate(); err == nil {
		t.Error("//-child-of-// should be invalid")
	}
	p3 := New()
	p3.Root.AddChild(Root)
	if err := p3.Validate(); err == nil {
		t.Error("/. below root should be invalid")
	}
	p4 := &Pattern{Root: &Node{Label: "a"}}
	if err := p4.Validate(); err == nil {
		t.Error("root not labeled /. should be invalid")
	}
}

func TestLabelLeq(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"x", "x", true},
		{"x", "y", false},
		{"x", Wildcard, true},
		{"x", Descendant, true},
		{Wildcard, Descendant, true},
		{Wildcard, Wildcard, true},
		{Descendant, Wildcard, false},
		{Wildcard, "x", false},
		{Descendant, Descendant, true},
	}
	for _, c := range cases {
		if got := LabelLeq(c.a, c.b); got != c.want {
			t.Errorf("LabelLeq(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// figure1Tree builds the XML tree T of the paper's Figure 1.
func figure1Tree(t *testing.T) *xmltree.Tree {
	t.Helper()
	tr, err := xmltree.ParseCompact(
		"media(book(author(first(William),last(Shakespeare)),title(Hamlet))," +
			"CD(composer(first(Wolfgang),last(Mozart)),title(Requiem),interpreter(ensemble(BerlinerPhil))))")
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFigure1Examples(t *testing.T) {
	T := figure1Tree(t)
	cases := []struct {
		name, xpath string
		want        bool
	}{
		// pa: media root with CD child whose grandchild "last" has
		// sub-element "Mozart" — T matches (the "*" maps to composer).
		{"pa", "/media/CD/*/last/Mozart", true},
		// pb: a CD anywhere with a *direct* sub-element Mozart — no.
		{"pb", "//CD/Mozart", false},
		// pc: a CD somewhere and a Mozart somewhere — yes.
		{"pc", "/.[//CD]//Mozart", true},
		// pd: composer anywhere with child last and grandchild Mozart.
		{"pd", "//composer/last/Mozart", true},
	}
	for _, c := range cases {
		p := MustParse(c.xpath)
		if got := Matches(T, p); got != c.want {
			t.Errorf("%s = Matches(T, %q) = %v, want %v", c.name, c.xpath, got, c.want)
		}
	}
}

func TestMatchRootSemantics(t *testing.T) {
	T, _ := xmltree.ParseCompact("a(b(c),d)")
	cases := []struct {
		xpath string
		want  bool
	}{
		{"/a", true},
		{"/b", false}, // root label is a, not b
		{"/*", true},  // wildcard root
		{"//a", true}, // descendant-or-self finds the root itself
		{"//b", true}, // and inner nodes
		{"//c", true},
		{"//x", false},
		{"/a/b", true},
		{"/a/b/c", true},
		{"/a/c", false},    // c is not a direct child of a
		{"/a//c", true},    // but it is a descendant
		{"/a[b][d]", true}, // branching
		{"/a[b][x]", false},
		{"/a/b[c]", true},
		{"/a//b/c", true}, // zero-length descendant step
		{"/.", true},      // empty pattern matches everything
		{"/.[//b][//d]", true},
		{"/.[//b][//x]", false},
		{"/a/*", true},
		{"/a/*/c", true},
		{"/a/d/*", false}, // d is a leaf
	}
	for _, c := range cases {
		p := MustParse(c.xpath)
		if got := Matches(T, p); got != c.want {
			t.Errorf("Matches(T, %q) = %v, want %v", c.xpath, got, c.want)
		}
	}
}

func TestMatchEmptyDocument(t *testing.T) {
	if Matches(nil, MustParse("/a")) {
		t.Error("nil tree should not match /a")
	}
	if Matches(&xmltree.Tree{}, MustParse("/.")) {
		t.Error("empty tree should not match even the empty pattern")
	}
	if !Matches(xmltree.New("a"), MustParse("/.")) {
		t.Error("empty pattern should match a non-empty tree")
	}
}

func TestMergeRoots(t *testing.T) {
	p := MustParse("/a/b")
	q := MustParse("//c")
	pq := MergeRoots(p, q)
	if err := pq.Validate(); err != nil {
		t.Fatalf("merged pattern invalid: %v", err)
	}
	if len(pq.Root.Children) != 2 {
		t.Fatalf("merged root children = %d, want 2", len(pq.Root.Children))
	}
	T1, _ := xmltree.ParseCompact("a(b,c)")
	T2, _ := xmltree.ParseCompact("a(b)")
	if !Matches(T1, pq) {
		t.Error("T1 should match p∧q")
	}
	if Matches(T2, pq) {
		t.Error("T2 should not match p∧q (no c)")
	}
	// Merging must not alias the inputs.
	pq.Root.Children[0].Label = "zzz"
	if p.Root.Children[0].Label == "zzz" {
		t.Error("MergeRoots aliased its input")
	}
}

func TestMergeRootsConjunctionSemantics(t *testing.T) {
	// For any doc and patterns: Matches(T, p∧q) == Matches(T,p) && Matches(T,q).
	docs := []string{"a(b,c)", "a(b(c))", "c(a,b)", "a(b(e),d(f))"}
	pats := []string{"/a", "//b", "/a/b", "//c", "/a[b][c]", "/*/b"}
	for _, ds := range docs {
		T, err := xmltree.ParseCompact(ds)
		if err != nil {
			t.Fatal(err)
		}
		for _, ps := range pats {
			for _, qs := range pats {
				p, q := MustParse(ps), MustParse(qs)
				want := Matches(T, p) && Matches(T, q)
				if got := Matches(T, MergeRoots(p, q)); got != want {
					t.Errorf("doc %s: Matches(p∧q) p=%s q=%s = %v, want %v", ds, ps, qs, got, want)
				}
			}
		}
	}
}

func TestFromTreeAlwaysMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		T := randomDoc(rng)
		return Matches(T, FromTree(T))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSkeletonOverApproximates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		T := randomDoc(rng)
		p := randomPattern(rng)
		if Matches(T, p) && !MatchesSkeleton(T, p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestSkeletonSemanticsDiffer(t *testing.T) {
	// /a/b[c][d]: the doc has two b children, one holding c, one d.
	// The document does not match (no single b has both), but its
	// skeleton does.
	T, _ := xmltree.ParseCompact("a(b(c),b(d))")
	p := MustParse("/a/b[c][d]")
	if Matches(T, p) {
		t.Error("document should not match /a/b[c][d]")
	}
	if !MatchesSkeleton(T, p) {
		t.Error("skeleton should match /a/b[c][d]")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPattern(rng)
		s := p.String()
		q, err := Parse(s)
		if err != nil {
			t.Logf("serialize %v -> %q failed to re-parse: %v", p, s, err)
			return false
		}
		return p.Equal(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEqualIgnoresOrder(t *testing.T) {
	p := MustParse("/a[b][c]")
	q := MustParse("/a[c][b]")
	if !p.Equal(q) {
		t.Error("patterns differing only in child order should be equal")
	}
	r := MustParse("/a[b][b]")
	if p.Equal(r) {
		t.Error("different multiplicity should not be equal")
	}
}

func TestSizeHeight(t *testing.T) {
	p := MustParse("/a[b/c]//d")
	// Nodes: a, b, c, //, d = 5 (root "/." excluded).
	if got := p.Size(); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
	// Longest chain: a -> b -> c and a -> // -> d, both height 3.
	if got := p.Height(); got != 3 {
		t.Errorf("Height = %d, want 3", got)
	}
	if got := New().Size(); got != 0 {
		t.Errorf("empty Size = %d, want 0", got)
	}
	if got := New().Height(); got != 0 {
		t.Errorf("empty Height = %d, want 0", got)
	}
}

// randomDoc builds a random document over a small alphabet.
func randomDoc(rng *rand.Rand) *xmltree.Tree {
	labels := []string{"a", "b", "c", "d", "e"}
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		n := &xmltree.Node{Label: labels[rng.Intn(len(labels))]}
		if depth < 4 {
			for i := 0; i < rng.Intn(3); i++ {
				n.Children = append(n.Children, build(depth+1))
			}
		}
		return n
	}
	return &xmltree.Tree{Root: build(1)}
}

// randomPattern builds a random valid pattern over the same alphabet.
func randomPattern(rng *rand.Rand) *Pattern {
	labels := []string{"a", "b", "c", "d", "e"}
	var build func(depth int, allowDesc bool) *Node
	build = func(depth int, allowDesc bool) *Node {
		r := rng.Float64()
		var n *Node
		switch {
		case allowDesc && r < 0.15:
			n = &Node{Label: Descendant}
			n.Children = []*Node{build(depth+1, false)}
			return n
		case r < 0.3:
			n = &Node{Label: Wildcard}
		default:
			n = &Node{Label: labels[rng.Intn(len(labels))]}
		}
		if depth < 4 {
			for i := 0; i < rng.Intn(3); i++ {
				n.Children = append(n.Children, build(depth+1, true))
			}
		}
		return n
	}
	p := New()
	for i := 0; i < 1+rng.Intn(2); i++ {
		p.Root.Children = append(p.Root.Children, build(1, true))
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of invalid input should panic")
		}
	}()
	MustParse("///")
}

func TestStringStable(t *testing.T) {
	// String must not mutate the receiver.
	p := MustParse("/a[c][b]")
	before := make([]string, len(p.Root.Children[0].Children))
	for i, c := range p.Root.Children[0].Children {
		before[i] = c.Label
	}
	_ = p.String()
	for i, c := range p.Root.Children[0].Children {
		if c.Label != before[i] {
			t.Fatal("String mutated pattern child order")
		}
	}
	if !strings.HasPrefix(p.String(), "/a[") {
		t.Errorf("String = %q", p.String())
	}
}

// TestCanonicalFlagSkipsRework pins the canonical fast path: a pattern
// that has been canonicalized renders and compares without re-sorting,
// and Clone carries the flag.
func TestCanonicalFlagSkipsRework(t *testing.T) {
	p, err := Parse("/a[c]/b[z][y]")
	if err != nil {
		t.Fatal(err)
	}
	want := p.String()
	p.Canonicalize()
	if !p.canonical {
		t.Fatal("Canonicalize did not mark the pattern canonical")
	}
	if got := p.String(); got != want {
		t.Fatalf("canonical String = %q, want %q", got, want)
	}
	c := p.Clone()
	if !c.canonical {
		t.Fatal("Clone dropped the canonical flag")
	}
	if got := c.String(); got != want {
		t.Fatalf("clone String = %q, want %q", got, want)
	}
	// Canonicalize twice is idempotent and keeps equality semantics.
	q, _ := Parse("/a[b[y][z]][c]") // same pattern, different source order
	if !p.Equal(q.Canonicalize().Canonicalize()) {
		t.Fatal("canonicalized patterns no longer Equal")
	}
	// A freshly parsed pattern is not marked canonical (parse order is
	// source order).
	r, _ := Parse("/a[c][b]")
	if r.canonical {
		t.Fatal("Parse must not mark patterns canonical")
	}
}

// TestMinimizeClearsCanonicalFlag: minimizing can drop branches, which
// changes subtree canonical keys; the minimized clone must not inherit
// the input's canonical mark (regression for the canonical fast path).
func TestMinimizeClearsCanonicalFlag(t *testing.T) {
	p := MustParse("/a[b[*][c]][b[a]]")
	p.Canonicalize()
	m := p.Minimize()
	want := m.Clone()
	want.canonical = false
	if m.String() != want.Canonicalize().String() {
		t.Fatalf("minimized String %q != canonical form %q", m.String(), want.String())
	}
	q := MustParse(m.String())
	if !m.Equal(q) {
		t.Fatalf("minimized pattern not Equal to its own parse: %q", m.String())
	}
}
