package pattern

import (
	"math/rand"
	"testing"
)

// TestParseNeverPanics feeds random byte soup and random mutations of
// valid patterns to the parser: it must return an error or a valid
// pattern, never panic, and anything it accepts must survive a
// serialize/re-parse round trip.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	alphabet := []byte("/ab*[].(){}|,// \tz")
	for i := 0; i < 5000; i++ {
		n := rng.Intn(24)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		s := string(buf)
		p, err := Parse(s)
		if err != nil {
			continue
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted an invalid pattern: %v", s, verr)
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("accepted %q -> %q which does not re-parse: %v", s, p, err)
		}
		if !p.Equal(q) {
			t.Fatalf("round trip changed %q: %s vs %s", s, p, q)
		}
	}
}

// TestParseMutatedValid mutates valid patterns character by character.
func TestParseMutatedValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seeds := []string{
		"/a/b[c]//d",
		"/.[//CD]//Mozart",
		"/media/CD/*/last/Mozart",
		"/a[b/c][*]//e",
	}
	for i := 0; i < 3000; i++ {
		s := []byte(seeds[rng.Intn(len(seeds))])
		for k := 0; k < 1+rng.Intn(3); k++ {
			pos := rng.Intn(len(s))
			switch rng.Intn(3) {
			case 0:
				s[pos] = byte("/ab*[]."[rng.Intn(7)])
			case 1:
				s = append(s[:pos], s[pos+1:]...)
			default:
				s = append(s[:pos], append([]byte{byte("/[*]"[rng.Intn(4)])}, s[pos:]...)...)
			}
			if len(s) == 0 {
				break
			}
		}
		p, err := Parse(string(s))
		if err != nil {
			continue
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted invalid pattern: %v", s, verr)
		}
	}
}

// TestMatchesNeverPanics matches arbitrary valid patterns against
// arbitrary documents, including degenerate ones.
func TestMatchesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		p := randomPattern(rng)
		d := randomDoc(rng)
		_ = Matches(d, p)
		_ = MatchesSkeleton(d, p)
		_ = Contains(p, randomPattern(rng))
		_ = p.Minimize()
	}
}
