package persist

import (
	"io"
	"os"
)

// File is the slice of *os.File the store needs. Production code uses
// real files; fault-injection tests substitute implementations that
// fail on command (see internal/fault).
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate changes the file size without moving the offset.
	Truncate(size int64) error
	// Stat returns file metadata.
	Stat() (os.FileInfo, error)
	// Name returns the name the file was opened with.
	Name() string
}

// FS is the filesystem surface the store touches. Every byte the store
// persists flows through one of these calls, which is what makes
// deterministic disk-fault injection possible: wrap the FS, not the
// store.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens for reading only; also used to fsync directories.
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// OSFS is the real filesystem. The zero value is ready to use.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OSFS) Open(name string) (File, error) { return os.Open(name) }

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(name string) error { return os.Remove(name) }
