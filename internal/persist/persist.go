// Package persist is the broker's durability layer: an atomic
// point-in-time snapshot plus a write-ahead log of the subscription
// churn that followed it. The two files live side by side in a data
// directory:
//
//	<dir>/snapshot.snap   latest snapshot (atomic: temp + fsync + rename)
//	<dir>/wal.log         churn records appended since the snapshot
//
// Recovery loads the snapshot (if any) and replays the WAL tail.
// Records are LSN-numbered; the snapshot stamps the last LSN it covers,
// and replay skips records at or below that watermark, which makes
// recovery idempotent under every crash interleaving — including a
// crash between the snapshot rename and the WAL truncation that
// normally follows it (the stale records are simply skipped on the next
// boot).
//
// The WAL is length-prefixed and CRC-checked per record. A torn final
// record — the expected artifact of crashing mid-append — is detected,
// logged off, and the file is truncated back to the last intact record,
// so a crashed broker always reopens cleanly.
//
// The package is deliberately ignorant of broker internals: record
// payloads carry enough to replay a churn decision (the subscription
// expression and the community placement the broker chose), and the
// snapshot payload is an opaque byte slice the broker encodes itself.
package persist

// Record operation kinds.
const (
	// OpSubscribe records a committed subscription: the broker-assigned
	// id, the pattern expression, and the community group index the
	// clustering chose — the decision is logged, not re-derived, so
	// replay is deterministic even though the estimator state at replay
	// time differs from the state that drove the original assignment.
	OpSubscribe = "sub"
	// OpUnsubscribe records a committed removal by subscription id.
	OpUnsubscribe = "unsub"
	// OpRebuild records a full clustering rebuild as the complete
	// partition keyed by stable subscription ids.
	OpRebuild = "rebuild"
	// OpDeliver records the at-least-once deliveries of one published
	// document: the document's sequence number and serialized content,
	// plus the (subscription id, cursor) pairs the routing fan-out
	// enqueued. Only acked-mode subscriptions appear — at-most-once
	// deliveries are ephemeral by contract and never journaled.
	OpDeliver = "deliver"
	// OpAck records a committed cursor advance: every delivery of the
	// subscription with cursor ≤ Cursor is acknowledged and will never
	// be redelivered.
	OpAck = "ack"
	// OpDrained records that deliveries up to Cursor were handed to a
	// consumer (lease taken). A recovered broker treats them as the
	// in-flight window: still owed, and counted as redeliveries when
	// drained again.
	OpDrained = "drained"
	// OpBootEpoch records the overlay epoch (Seq) a federated broker
	// booted with. Snapshot watermarks alone understate a crashed node's
	// live counters, and two recoveries from the same stale snapshot
	// would otherwise floor the boot epoch at the identical value —
	// reusing the previous incarnation's sequence range, which peers'
	// seen-sets then silently suppress. Recovery takes the max of the
	// snapshot watermarks and every replayed boot record; the record is
	// only ever truncated by a snapshot whose own watermarks exceed it
	// (the node's live counters start at the boot epoch), so the floor
	// never regresses.
	OpBootEpoch = "boot"
)

// Record is one WAL entry. Fields beyond Op are populated per kind:
// OpSubscribe uses ID/Expr/Group, OpUnsubscribe uses ID, OpRebuild uses
// Groups/Reps.
type Record struct {
	// LSN is the log sequence number, assigned by Append; callers leave
	// it zero. Replay reports it.
	LSN uint64 `json:"lsn,omitempty"`
	// Op is the operation kind (OpSubscribe, OpUnsubscribe, OpRebuild).
	Op string `json:"op"`
	// ID is the subscription id the operation concerns.
	ID uint64 `json:"id,omitempty"`
	// Expr is the subscription's pattern expression (OpSubscribe).
	Expr string `json:"expr,omitempty"`
	// Group is the community group index the subscription was placed in,
	// or len(groups) at commit time when it founded a new community
	// (OpSubscribe).
	Group int `json:"group"`
	// Groups is the full partition after a rebuild, each group listing
	// its member subscription ids (OpRebuild).
	Groups [][]uint64 `json:"groups,omitempty"`
	// Reps lists each rebuilt group's representative subscription id,
	// parallel to Groups (OpRebuild).
	Reps []uint64 `json:"reps,omitempty"`
	// Mode is the subscription's delivery mode (OpSubscribe): 0
	// at-most-once (the default, omitted on the wire), 1 at-least-once.
	Mode uint8 `json:"mode,omitempty"`
	// Seq is the published document's sequence number and XML its
	// serialized content (OpDeliver). The content rides in the record so
	// recovery can repin documents the retention ring lost with the
	// process.
	Seq uint64 `json:"seq,omitempty"`
	XML string `json:"xml,omitempty"`
	// Subs/Cursors/Comms are the parallel per-delivery arrays of an
	// OpDeliver record: receiving subscription id, the cursor assigned,
	// and the matched community index.
	Subs    []uint64 `json:"subs,omitempty"`
	Cursors []uint64 `json:"cursors,omitempty"`
	Comms   []int    `json:"comms,omitempty"`
	// Cursor is the acknowledged (OpAck) or handed-out (OpDrained)
	// cursor watermark for subscription ID.
	Cursor uint64 `json:"cursor,omitempty"`
}
