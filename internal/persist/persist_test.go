package persist

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func replayAll(t *testing.T, s *Store) []Record {
	t.Helper()
	var recs []Record
	if err := s.Replay(func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	want := []Record{
		{Op: OpSubscribe, ID: 1, Expr: "/a/b", Group: 0},
		{Op: OpSubscribe, ID: 2, Expr: "/a//c", Group: 1},
		{Op: OpUnsubscribe, ID: 1},
		{Op: OpRebuild, Groups: [][]uint64{{2}}, Reps: []uint64{2}},
	}
	for _, r := range want {
		if _, err := s.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := s.Pending(); got != len(want) {
		t.Fatalf("Pending = %d, want %d", got, len(want))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	got := replayAll(t, s2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) {
			t.Errorf("record %d: LSN = %d, want %d", i, r.LSN, i+1)
		}
		w := want[i]
		if r.Op != w.Op || r.ID != w.ID || r.Expr != w.Expr || r.Group != w.Group {
			t.Errorf("record %d: got %+v, want %+v", i, r, w)
		}
	}
	// Appends after replay continue the LSN sequence.
	if _, err := s2.Append(Record{Op: OpUnsubscribe, ID: 2}); err != nil {
		t.Fatalf("Append after replay: %v", err)
	}
	if s2.lastLSN != uint64(len(want)+1) {
		t.Fatalf("lastLSN after post-replay append = %d, want %d", s2.lastLSN, len(want)+1)
	}
}

func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 1; i <= 3; i++ {
		if _, err := s.Append(Record{Op: OpSubscribe, ID: uint64(i), Expr: "/x"}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	s.Close()

	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the final frame at a few depths: mid-body, mid-header,
	// and down to nothing of the last record.
	for _, cut := range []int{1, len(data) / 10, walHeaderLen + 3} {
		if cut >= len(data) {
			continue
		}
		if err := os.WriteFile(walPath, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := openT(t, dir)
		recs := replayAll(t, s2)
		if len(recs) != 2 {
			t.Fatalf("cut %d: replayed %d records, want 2 (torn third dropped)", cut, len(recs))
		}
		// The torn tail must be physically gone: a fresh append then a
		// re-open must see exactly 3 intact records.
		if _, err := s2.Append(Record{Op: OpUnsubscribe, ID: 9}); err != nil {
			t.Fatalf("Append after trim: %v", err)
		}
		s2.Close()
		s3 := openT(t, dir)
		recs = replayAll(t, s3)
		if len(recs) != 3 || recs[2].ID != 9 {
			t.Fatalf("cut %d: after repair+append got %d records (last %+v)", cut, len(recs), recs[len(recs)-1])
		}
		s3.Close()
		if err := os.WriteFile(walPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWALCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 1; i <= 3; i++ {
		if _, err := s.Append(Record{Op: OpSubscribe, ID: uint64(i), Expr: "/x"}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	s.Close()

	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the second record's body: replay keeps record 1 and
	// treats everything from the corruption on as a torn tail.
	frame1 := walHeaderLen + int(binary.LittleEndian.Uint32(data[0:4]))
	data[frame1+walHeaderLen+9] ^= 0xff
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	recs := replayAll(t, s2)
	if len(recs) != 1 || recs[0].ID != 1 {
		t.Fatalf("replayed %v, want just record 1", recs)
	}
}

func TestWALCorruptLength(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if _, err := s.Append(Record{Op: OpSubscribe, ID: 1, Expr: "/x"}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// A giant length prefix must not provoke a giant allocation or an
	// error — just a torn tail.
	binary.LittleEndian.PutUint32(data[0:4], maxWALRecord+1)
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	if recs := replayAll(t, s2); len(recs) != 0 {
		t.Fatalf("replayed %v, want none", recs)
	}
}

func TestSnapshotRoundTripAndWatermark(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 1; i <= 2; i++ {
		if _, err := s.Append(Record{Op: OpSubscribe, ID: uint64(i), Expr: "/x"}); err != nil {
			t.Fatal(err)
		}
	}
	payload := []byte("state-at-lsn-2")
	if err := s.WriteSnapshot(payload, s.LastLSN()); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending after snapshot = %d, want 0", s.Pending())
	}
	// Churn after the snapshot lands in the (now empty) WAL with
	// continuing LSNs.
	if _, err := s.Append(Record{Op: OpUnsubscribe, ID: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openT(t, dir)
	defer s2.Close()
	got, ok, err := s2.LoadSnapshot()
	if err != nil || !ok {
		t.Fatalf("LoadSnapshot: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("snapshot payload = %q, want %q", got, payload)
	}
	recs := replayAll(t, s2)
	if len(recs) != 1 || recs[0].LSN != 3 || recs[0].Op != OpUnsubscribe {
		t.Fatalf("replayed %+v, want just the post-snapshot unsub at LSN 3", recs)
	}
}

func TestSnapshotPartialCoverageKeepsTail(t *testing.T) {
	// A record appended between a snapshot's state cut and its write is
	// NOT covered by the payload; WriteSnapshot stamped with the cut's
	// watermark must preserve it for replay instead of truncating it
	// away with the covered prefix.
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 1; i <= 2; i++ {
		if _, err := s.Append(Record{Op: OpSubscribe, ID: uint64(i), Expr: "/x"}); err != nil {
			t.Fatal(err)
		}
	}
	// The "state cut" happens here (covers LSNs 1-2)...
	if _, err := s.Append(Record{Op: OpSubscribe, ID: 3, Expr: "/y"}); err != nil { // ...then churn lands (LSN 3)...
		t.Fatal(err)
	}
	if err := s.WriteSnapshot([]byte("covers-1-2"), 2); err != nil { // ...and only then the snapshot writes.
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending after partial snapshot = %d, want 1 (the uncovered tail)", got)
	}
	s.Close()

	s2 := openT(t, dir)
	recs := replayAll(t, s2)
	if len(recs) != 1 || recs[0].LSN != 3 || recs[0].ID != 3 {
		t.Fatalf("replayed %+v, want just the uncovered LSN 3", recs)
	}
	// A fully covering snapshot then truncates as usual.
	if err := s2.WriteSnapshot([]byte("covers-1-2-3"), s2.LastLSN()); err != nil {
		t.Fatal(err)
	}
	if got := s2.Pending(); got != 0 {
		t.Fatalf("Pending after covering snapshot = %d, want 0", got)
	}
	s2.Close()
	s3 := openT(t, dir)
	defer s3.Close()
	if recs := replayAll(t, s3); len(recs) != 0 {
		t.Fatalf("replayed %+v after covering snapshot, want none", recs)
	}
	// Watermarks above the tail are clamped, never claiming coverage of
	// records that do not exist yet.
	if err := s3.WriteSnapshot([]byte("clamped"), 999); err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Append(Record{Op: OpSubscribe, ID: 4, Expr: "/z"}); err != nil {
		t.Fatal(err)
	}
	if got := s3.Pending(); got != 1 {
		t.Fatalf("Pending after post-clamp append = %d, want 1", got)
	}
}

func TestReplaySkipsStaleRecordsAfterSkewedCrash(t *testing.T) {
	// Simulate a crash between the snapshot rename and the WAL
	// truncation: the snapshot covers LSNs the WAL still holds. Replay
	// must skip them.
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 1; i <= 3; i++ {
		if _, err := s.Append(Record{Op: OpSubscribe, ID: uint64(i), Expr: "/x"}); err != nil {
			t.Fatal(err)
		}
	}
	walPath := filepath.Join(dir, walName)
	preTrunc, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot([]byte("covers-1-2-3"), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Record{Op: OpUnsubscribe, ID: 2}); err != nil { // LSN 4
		t.Fatal(err)
	}
	postSnap, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Reconstruct the skewed state: stale pre-snapshot records followed by
	// the genuine post-snapshot tail.
	if err := os.WriteFile(walPath, append(append([]byte{}, preTrunc...), postSnap...), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	recs := replayAll(t, s2)
	if len(recs) != 1 || recs[0].LSN != 4 || recs[0].ID != 2 {
		t.Fatalf("replayed %+v, want just LSN 4", recs)
	}
	// And the next append continues past everything.
	if _, err := s2.Append(Record{Op: OpSubscribe, ID: 5, Expr: "/y"}); err != nil {
		t.Fatal(err)
	}
	if s2.lastLSN != 5 {
		t.Fatalf("lastLSN = %d, want 5", s2.lastLSN)
	}
}

func TestSnapshotAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.WriteSnapshot([]byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot([]byte("v2"), 0); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// No temp debris left behind, and the latest payload wins.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != snapshotName && e.Name() != walName {
			t.Errorf("unexpected file in data dir: %s", e.Name())
		}
	}
	s2 := openT(t, dir)
	defer s2.Close()
	got, ok, err := s2.LoadSnapshot()
	if err != nil || !ok || string(got) != "v2" {
		t.Fatalf("LoadSnapshot = %q ok=%v err=%v, want v2", got, ok, err)
	}
}

func TestSnapshotEnvelope(t *testing.T) {
	in := &Snapshot{Broker: []byte("engine"), AdvertVersion: 7, PubSeq: 42}
	data, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Broker, in.Broker) || out.AdvertVersion != 7 || out.PubSeq != 42 {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}
