package persist

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// snapshotFormat versions the on-disk snapshot file. Decoders reject
// other versions rather than guess.
const snapshotFormat = 1

// snapFile is the on-disk snapshot container: an opaque payload plus
// the WAL watermark it covers, CRC-protected.
type snapFile struct {
	Format  int
	LastLSN uint64
	CRC     uint32 // crc32.ChecksumIEEE over Payload
	Payload []byte
}

// writeSnapshotFile atomically replaces path with a snapshot covering
// records up to lastLSN: write to a temp file in the same directory,
// fsync it, rename over the target, fsync the directory. A crash at any
// point leaves either the old snapshot or the new one, never a hybrid.
func writeSnapshotFile(fsys FS, path string, payload []byte, lastLSN uint64) error {
	var buf bytes.Buffer
	sf := snapFile{Format: snapshotFormat, LastLSN: lastLSN, CRC: crc32.ChecksumIEEE(payload), Payload: payload}
	if err := gob.NewEncoder(&buf).Encode(sf); err != nil {
		return fmt.Errorf("persist: encode snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("persist: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	defer fsys.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: close snapshot: %w", err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		return fmt.Errorf("persist: publish snapshot: %w", err)
	}
	return syncDir(fsys, dir)
}

// readSnapshotFile loads and verifies the snapshot at path. A missing
// file returns ok=false with no error.
func readSnapshotFile(fsys FS, path string) (payload []byte, lastLSN uint64, ok bool, err error) {
	data, err := fsys.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("persist: read snapshot: %w", err)
	}
	var sf snapFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&sf); err != nil {
		return nil, 0, false, fmt.Errorf("persist: decode snapshot: %w", err)
	}
	if sf.Format != snapshotFormat {
		return nil, 0, false, fmt.Errorf("persist: snapshot format %d, want %d", sf.Format, snapshotFormat)
	}
	if crc32.ChecksumIEEE(sf.Payload) != sf.CRC {
		return nil, 0, false, fmt.Errorf("persist: snapshot checksum mismatch")
	}
	return sf.Payload, sf.LastLSN, true, nil
}

func syncDir(fsys FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: sync dir: %w", err)
	}
	return nil
}

// Snapshot is the envelope brokers persist as the snapshot payload: the
// engine's encoded state plus the overlay's epoch watermarks, so a
// restarted node resumes its advert version and publication sequence
// above every value peers may already have seen — even if the wall
// clock regressed across the restart.
type Snapshot struct {
	// Broker is the engine state (broker.EncodeState).
	Broker []byte
	// AdvertVersion is the overlay node's advert version at save time.
	AdvertVersion uint64
	// PubSeq is the overlay node's publication sequence at save time.
	PubSeq uint64
}

// Encode serializes the envelope.
func (s *Snapshot) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("persist: encode snapshot envelope: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot parses an envelope produced by Encode.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("persist: decode snapshot envelope: %w", err)
	}
	return &s, nil
}
